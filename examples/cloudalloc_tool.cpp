// cloudalloc_tool — file-based workflow around the library, using the JSON
// serialization in model/serialize.h. Subcommands:
//
//   generate  --out=cloud.json [--clients=100] [--seed=1]
//       Write a Section-VI scenario to disk.
//   allocate  --cloud=cloud.json --out=alloc.json
//             [--method=heuristic|dist|ps|monte-carlo] [--mc-samples=100]
//             [--threads=N]
//       Solve and save the allocation. --threads sets the parallel
//       evaluation engine's worker count for heuristic/dist (1 =
//       sequential, 0 = hardware concurrency; the result is identical
//       either way, only faster).
//   audit     --cloud=cloud.json --alloc=alloc.json
//       Re-load both, audit feasibility, print the profit breakdown.
//   simulate  --cloud=cloud.json --alloc=alloc.json [--horizon=1000]
//             [--work-conserving]
//       Replay the allocation in the discrete-event simulator.
//   compare   --cloud=cloud.json [--mc-samples=50] [--sa-steps=200]
//       Run every solver on the cloud and print a profit/time table.
//   epochs    --cloud=cloud.json [--epochs=8] [--amplitude=0.4]
//             [--spikes=0.02] [--seed=1]
//       Drive the decision-epoch controller over a synthetic diurnal
//       trace and print the per-epoch report.
//
// Document schemas: docs/FORMAT.md.
//
// Everything round-trips: `generate | allocate | audit | simulate` uses
// only the files, so results are portable and replayable.
#include <chrono>
#include <iostream>
#include <string>

#include "alloc/allocator.h"
#include "baselines/monte_carlo.h"
#include "dist/manager.h"
#include "baselines/proportional_share.h"
#include "baselines/sa_alloc.h"
#include "common/args.h"
#include "epoch/controller.h"
#include "common/table.h"
#include "model/evaluator.h"
#include "model/feasibility.h"
#include "model/report.h"
#include "model/serialize.h"
#include "sim/runner.h"
#include "workload/scenario.h"
#include "workload/trace.h"

using namespace cloudalloc;

namespace {

int fail(const std::string& message) {
  std::cerr << "error: " << message << "\n";
  return 1;
}

std::optional<model::Cloud> load_cloud(const Args& args) {
  const std::string path = args.get("cloud", "");
  if (path.empty()) {
    std::cerr << "error: --cloud=<file> is required\n";
    return std::nullopt;
  }
  const auto text = model::load_text_file(path);
  if (!text) {
    std::cerr << "error: cannot read " << path << "\n";
    return std::nullopt;
  }
  std::string parse_error;
  const auto doc = Json::parse(*text, &parse_error);
  if (!doc) {
    std::cerr << "error: " << path << ": " << parse_error << "\n";
    return std::nullopt;
  }
  std::string schema_error;
  auto cloud = model::cloud_from_json(*doc, &schema_error);
  if (!cloud) std::cerr << "error: " << path << ": " << schema_error << "\n";
  return cloud;
}

std::optional<model::Allocation> load_allocation(const Args& args,
                                                 const model::Cloud& cloud) {
  const std::string path = args.get("alloc", "");
  if (path.empty()) {
    std::cerr << "error: --alloc=<file> is required\n";
    return std::nullopt;
  }
  const auto text = model::load_text_file(path);
  if (!text) {
    std::cerr << "error: cannot read " << path << "\n";
    return std::nullopt;
  }
  std::string parse_error;
  const auto doc = Json::parse(*text, &parse_error);
  if (!doc) {
    std::cerr << "error: " << path << ": " << parse_error << "\n";
    return std::nullopt;
  }
  std::string schema_error;
  auto alloc = model::allocation_from_json(cloud, *doc, &schema_error);
  if (!alloc) std::cerr << "error: " << path << ": " << schema_error << "\n";
  return alloc;
}

int cmd_generate(const Args& args) {
  workload::ScenarioParams params;
  params.num_clients = static_cast<int>(args.get_int("clients", 100));
  const auto cloud = workload::make_scenario(
      params, static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const std::string out = args.get("out", "cloud.json");
  if (!model::save_text_file(out, model::cloud_to_json(cloud).dump(2)))
    return fail("cannot write " + out);
  std::cout << "wrote " << out << " (" << cloud.num_clients() << " clients, "
            << cloud.num_servers() << " servers)\n";
  return 0;
}

int cmd_allocate(const Args& args) {
  auto cloud = load_cloud(args);
  if (!cloud) return 1;
  const std::string method = args.get("method", "heuristic");

  model::Allocation allocation(*cloud);
  if (method == "heuristic") {
    alloc::AllocatorOptions opts;
    opts.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    opts.num_threads = static_cast<int>(args.get_int("threads", 1));
    allocation = alloc::ResourceAllocator(opts).run(*cloud).allocation;
  } else if (method == "dist") {
    alloc::AllocatorOptions opts;
    opts.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    opts.num_threads = static_cast<int>(args.get_int("threads", 0));
    allocation =
        dist::DistributedAllocator(dist::DistributedOptions{opts})
            .run(*cloud)
            .allocation;
  } else if (method == "ps") {
    allocation = baselines::proportional_share_allocate(
                     *cloud, baselines::PsOptions{})
                     .allocation;
  } else if (method == "monte-carlo") {
    baselines::MonteCarloOptions opts;
    opts.samples = static_cast<int>(args.get_int("mc-samples", 100));
    allocation = baselines::monte_carlo_search(
                     *cloud, opts,
                     static_cast<std::uint64_t>(args.get_int("seed", 1)))
                     .best;
  } else {
    return fail("unknown --method (heuristic|dist|ps|monte-carlo)");
  }

  const std::string out = args.get("out", "alloc.json");
  if (!model::save_text_file(out,
                             model::allocation_to_json(allocation).dump(2)))
    return fail("cannot write " + out);
  std::cout << "method=" << method
            << " profit=" << Table::num(model::profit(allocation), 2)
            << " active_servers=" << allocation.num_active_servers()
            << " -> " << out << "\n";
  return 0;
}

int cmd_audit(const Args& args) {
  auto cloud = load_cloud(args);
  if (!cloud) return 1;
  auto allocation = load_allocation(args, *cloud);
  if (!allocation) return 1;

  const auto violations = model::check_feasibility(*allocation);
  std::cout << "feasibility: "
            << (violations.empty() ? "OK" : "VIOLATIONS") << "\n";
  for (const auto& v : violations) std::cout << "  " << v.describe() << "\n";

  model::ReportOptions options;
  options.max_clients = static_cast<int>(args.get_int("max-clients", 20));
  options.include_servers = args.get_bool("servers", false);
  model::print_report(std::cout, model::evaluate(*allocation),
                      cloud->num_servers(), options);
  return violations.empty() ? 0 : 2;
}

int cmd_simulate(const Args& args) {
  auto cloud = load_cloud(args);
  if (!cloud) return 1;
  auto allocation = load_allocation(args, *cloud);
  if (!allocation) return 1;

  sim::SimOptions opts;
  opts.horizon = args.get_double("horizon", 1000.0);
  opts.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (args.get_bool("work-conserving", false))
    opts.mode = sim::GpsMode::kWorkConserving;
  const auto report = sim::simulate_allocation(*allocation, opts);

  Table table({"client", "analytic_R", "sim_mean", "p95", "p99", "completed"});
  for (const auto& c : report.clients)
    table.add_row({std::to_string(c.id.value()),
                   Table::num(c.analytic_response, 3),
                   Table::num(c.mean_response, 3), Table::num(c.p95, 3),
                   Table::num(c.p99, 3), std::to_string(c.completed)});
  table.print(std::cout);
  std::cout << "mean |rel error| vs analytic model: "
            << Table::num(report.mean_abs_rel_error, 4) << "\n";
  return 0;
}

int cmd_compare(const Args& args) {
  auto cloud = load_cloud(args);
  if (!cloud) return 1;

  Table table({"method", "profit", "seconds", "active_servers"});
  auto add = [&](const char* name, double profit_value, double seconds,
                 int active) {
    table.add_row({name, Table::num(profit_value, 2), Table::num(seconds, 2),
                   std::to_string(active)});
  };

  {
    const auto t0 = std::chrono::steady_clock::now();
    const auto run = alloc::ResourceAllocator().run(*cloud);
    add("Resource_Alloc (proposed)", run.report.final_profit,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count(),
        run.report.active_servers);
  }
  {
    const auto t0 = std::chrono::steady_clock::now();
    const auto run = baselines::proportional_share_allocate(
        *cloud, baselines::PsOptions{});
    add("modified Proportional Share", run.profit,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count(),
        run.allocation.num_active_servers());
  }
  {
    baselines::MonteCarloOptions opts;
    opts.samples = static_cast<int>(args.get_int("mc-samples", 50));
    const auto t0 = std::chrono::steady_clock::now();
    const auto run = baselines::monte_carlo_search(*cloud, opts, 1);
    add("Monte-Carlo + local search", run.best_profit,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count(),
        run.best.num_active_servers());
  }
  {
    baselines::SaAllocOptions opts;
    opts.annealing.steps = static_cast<int>(args.get_int("sa-steps", 200));
    const auto t0 = std::chrono::steady_clock::now();
    const auto run = baselines::sa_allocate(*cloud, opts, 1);
    add("simulated annealing", run.profit,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count(),
        run.allocation.num_active_servers());
  }
  table.print(std::cout);
  return 0;
}

int cmd_epochs(const Args& args) {
  auto cloud = load_cloud(args);
  if (!cloud) return 1;

  workload::TraceParams trace_params;
  trace_params.epochs = static_cast<int>(args.get_int("epochs", 8));
  trace_params.amplitude = args.get_double("amplitude", 0.4);
  trace_params.spike_probability = args.get_double("spikes", 0.02);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto trace = workload::make_rate_trace(*cloud, trace_params, seed);

  epoch::Controller controller(*cloud, epoch::HoltPredictor(0.6, 0.3, 1.0));
  Table table({"epoch", "mode", "drift", "profit", "rounds", "active",
               "unassigned", "seconds"});
  auto add_row = [&](const epoch::EpochReport& report) {
    table.add_row({std::to_string(report.epoch),
                   report.cold_start ? "cold" : "warm",
                   Table::num(report.mean_drift, 3),
                   Table::num(report.profit, 1),
                   std::to_string(report.rounds_run),
                   std::to_string(report.active_servers),
                   std::to_string(report.unassigned_clients),
                   Table::num(report.wall_seconds, 2)});
  };
  add_row(controller.start());
  for (const auto& observed : trace) add_row(controller.step(observed));
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  if (args.positional().empty()) {
    std::cout << "usage: cloudalloc_tool <generate|allocate|audit|simulate> "
                 "[--flags]\n(see the header of examples/cloudalloc_tool.cpp)"
              << "\n";
    return 1;
  }
  const std::string& command = args.positional().front();
  if (command == "generate") return cmd_generate(args);
  if (command == "allocate") return cmd_allocate(args);
  if (command == "audit") return cmd_audit(args);
  if (command == "simulate") return cmd_simulate(args);
  if (command == "compare") return cmd_compare(args);
  if (command == "epochs") return cmd_epochs(args);
  return fail("unknown command: " + command);
}
