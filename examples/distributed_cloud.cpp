// Distributed decision making (Figure 1's architecture): a central
// manager and one agent per cluster exchange messages to parallelize the
// per-client Assign_Distribute pricing and the cluster-local improvement
// stages. Prints the message traffic and compares against the sequential
// allocator.
//
//   ./distributed_cloud [--clients=100] [--clusters=5] [--seed=4]
#include <iostream>

#include "alloc/allocator.h"
#include "common/args.h"
#include "common/table.h"
#include "dist/manager.h"
#include "model/evaluator.h"
#include "model/feasibility.h"
#include "workload/scenario.h"

using namespace cloudalloc;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  workload::ScenarioParams params;
  params.num_clients = static_cast<int>(args.get_int("clients", 100));
  params.num_clusters = static_cast<int>(args.get_int("clusters", 5));
  const auto cloud = workload::make_scenario(
      params, static_cast<std::uint64_t>(args.get_int("seed", 4)));

  alloc::AllocatorOptions opts;

  const auto sequential = alloc::ResourceAllocator(opts).run(cloud);
  const auto distributed = dist::DistributedAllocator(opts).run(cloud);

  Table table({"mode", "profit", "seconds", "rounds", "messages"});
  table.add_row({"sequential (central only)",
                 Table::num(sequential.report.final_profit, 1),
                 Table::num(sequential.report.wall_seconds, 3),
                 std::to_string(sequential.report.rounds_run), "0"});
  table.add_row({"distributed (agents per cluster)",
                 Table::num(distributed.report.final_profit, 1),
                 Table::num(distributed.report.wall_seconds, 3),
                 std::to_string(distributed.report.rounds_run),
                 std::to_string(distributed.report.messages)});
  table.print(std::cout);

  std::cout << "\nboth feasible: sequential="
            << model::is_feasible(sequential.allocation)
            << " distributed=" << model::is_feasible(distributed.allocation)
            << "\nthe distributed mode prices each client on all "
            << params.num_clusters
            << " clusters concurrently and runs the per-cluster improvement "
               "stages in parallel,\nkeeping only the cross-cluster "
               "reassignment at the central manager.\n";
  return 0;
}
