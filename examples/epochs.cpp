// Decision-epoch scenario (Section III): arrival rates follow a diurnal
// pattern with noise; the epoch::Controller predicts next-epoch rates
// (Holt double-exponential smoothing), warm-starts the allocator from the
// previous epoch's allocation, and falls back to a cold restart when the
// predicted drift is large. Each epoch the analytic model is cross-checked
// with the discrete-event simulator.
//
//   ./epochs [--clients=40] [--epochs=8] [--seed=3] [--amplitude=0.5]
#include <cmath>
#include <iostream>

#include "common/args.h"
#include "common/rng.h"
#include "common/table.h"
#include "epoch/controller.h"
#include "model/feasibility.h"
#include "sim/runner.h"
#include "workload/scenario.h"

using namespace cloudalloc;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  workload::ScenarioParams params;
  params.num_clients = static_cast<int>(args.get_int("clients", 40));
  const int epochs = static_cast<int>(args.get_int("epochs", 8));
  const double amplitude = args.get_double("amplitude", 0.5);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  const model::Cloud base = workload::make_scenario(params, seed);
  epoch::Controller controller(base, epoch::HoltPredictor(0.6, 0.3, 1.0));
  Rng rng(seed);

  Table table({"epoch", "mode", "drift", "dropped", "profit", "rounds",
               "active", "unassigned", "sim_err"});

  auto add_row = [&](const epoch::EpochReport& report) {
    sim::SimOptions sopts;
    sopts.horizon = 250.0;
    sopts.seed = seed + static_cast<std::uint64_t>(report.epoch);
    const auto sim_report =
        sim::simulate_allocation(controller.allocation(), sopts);
    table.add_row({std::to_string(report.epoch),
                   report.cold_start ? "cold" : "warm",
                   Table::num(report.mean_drift, 3),
                   std::to_string(report.transplant_dropped),
                   Table::num(report.profit, 1),
                   std::to_string(report.rounds_run),
                   std::to_string(report.active_servers),
                   std::to_string(report.unassigned_clients),
                   Table::num(sim_report.mean_abs_rel_error, 3)});
  };

  add_row(controller.start());
  for (int epoch = 1; epoch < epochs; ++epoch) {
    // Diurnal demand: a sine over the "day" plus per-client noise.
    const double phase =
        std::sin(2.0 * M_PI * static_cast<double>(epoch) / 8.0);
    std::vector<double> observed;
    for (const auto& c : base.clients()) {
      const double diurnal = 1.0 + amplitude * phase;
      const double noise = rng.uniform(0.9, 1.1);
      observed.push_back(std::max(0.05, c.lambda_agreed * diurnal * noise));
    }
    add_row(controller.step(observed));
    if (!model::is_feasible(controller.allocation())) {
      std::cout << "epoch " << epoch << ": INFEASIBLE allocation!\n";
      return 1;
    }
  }
  table.print(std::cout);
  std::cout << "\nthe controller warm-starts through gentle drift, "
               "cold-restarts on demand surges,\nand the simulator confirms "
               "the analytic response times every epoch.\n";
  return 0;
}
