// Server-consolidation scenario: the energy-cost angle the paper's
// introduction motivates. A fragmented allocation (as left behind by a
// day of churn, emulated with a random assignment) is re-optimized twice
// from the same start: once with the TurnOFF/reassignment stages disabled
// and once with the full heuristic. The difference is the operation cost
// the consolidation stages recover.
//
//   ./consolidation [--clients=40] [--seed=2]
#include <iostream>

#include "alloc/allocator.h"
#include "baselines/random_alloc.h"
#include "common/args.h"
#include "common/rng.h"
#include "common/table.h"
#include "model/evaluator.h"
#include "model/feasibility.h"
#include "workload/scenario.h"

using namespace cloudalloc;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  workload::ScenarioParams params;
  params.num_clients = static_cast<int>(args.get_int("clients", 60));
  // Small clients (low request rates) so one server can host several of
  // them: the regime where powering servers off actually pays. With the
  // paper's default rates each average client needs most of a server for
  // its delay target and dedicated hosting is already optimal.
  params.lambda_lo = 0.3;
  params.lambda_hi = 1.2;
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2));
  const auto cloud = workload::make_scenario(params, seed);

  // Yesterday's fragmented state: clients scattered at random.
  alloc::AllocatorOptions opts;
  Rng rng(seed);
  const model::Allocation fragmented =
      baselines::random_allocation(cloud, opts, rng);
  const auto fragmented_eval = model::evaluate(fragmented);

  // Re-optimization without the consolidation stages.
  alloc::AllocatorOptions no_consolidation = opts;
  no_consolidation.enable_turn_off = false;
  no_consolidation.enable_reassign = false;
  const auto kept_spread =
      alloc::ResourceAllocator(no_consolidation).improve(fragmented.clone());

  // Full heuristic from the same start.
  const auto consolidated =
      alloc::ResourceAllocator(opts).improve(fragmented.clone());

  const auto kept_eval = model::evaluate(kept_spread.allocation);
  const auto cons_eval = model::evaluate(consolidated.allocation);

  Table table({"state", "profit", "revenue", "op_cost", "active_servers"});
  table.add_row({"fragmented start", Table::num(fragmented_eval.profit, 1),
                 Table::num(fragmented_eval.revenue, 1),
                 Table::num(fragmented_eval.cost, 1),
                 std::to_string(fragmented_eval.active_servers)});
  table.add_row({"tuned, no TurnOFF/reassign", Table::num(kept_eval.profit, 1),
                 Table::num(kept_eval.revenue, 1),
                 Table::num(kept_eval.cost, 1),
                 std::to_string(kept_eval.active_servers)});
  table.add_row({"full Resource_Alloc", Table::num(cons_eval.profit, 1),
                 Table::num(cons_eval.revenue, 1),
                 Table::num(cons_eval.cost, 1),
                 std::to_string(cons_eval.active_servers)});
  table.print(std::cout);

  std::cout << "\nconsolidation powers off "
            << kept_eval.active_servers - cons_eval.active_servers
            << " additional servers and saves "
            << Table::num(kept_eval.cost - cons_eval.cost, 1)
            << " in operation cost; feasible="
            << model::is_feasible(consolidated.allocation) << "\n";
  return 0;
}
