// Quickstart: build a small cloud, run the profit-maximizing allocator,
// audit the result, and print the per-entity breakdown.
//
//   ./quickstart [--clients=30] [--seed=1]
#include <cmath>
#include <iostream>

#include "alloc/allocator.h"
#include "common/args.h"
#include "common/table.h"
#include "model/evaluator.h"
#include "model/feasibility.h"
#include "workload/scenario.h"

using namespace cloudalloc;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const int clients = static_cast<int>(args.get_int("clients", 30));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  // 1. Describe the cloud: 5 clusters of heterogeneous servers and a
  //    population of SLA clients (the paper's Section VI scenario family).
  workload::ScenarioParams params;
  params.num_clients = clients;
  const model::Cloud cloud = workload::make_scenario(params, seed);
  std::cout << "cloud: " << cloud.num_clusters() << " clusters, "
            << cloud.num_servers() << " servers, " << cloud.num_clients()
            << " clients\n";

  // 2. Run the Resource_Alloc heuristic.
  alloc::ResourceAllocator allocator;
  const auto result = allocator.run(cloud);
  std::cout << "initial profit " << result.report.initial_profit
            << " -> final profit " << result.report.final_profit << " after "
            << result.report.rounds_run << " local-search rounds ("
            << result.report.wall_seconds << "s)\n";

  // 3. Independently audit feasibility (constraints (3)-(12)).
  const auto violations = model::check_feasibility(result.allocation);
  std::cout << "feasibility: "
            << (violations.empty() ? "OK" : "VIOLATIONS FOUND") << "\n";
  for (const auto& v : violations) std::cout << "  " << v.describe() << "\n";

  // 4. Inspect the outcome.
  const auto breakdown = model::evaluate(result.allocation);
  std::cout << "revenue " << breakdown.revenue << ", cost " << breakdown.cost
            << ", active servers " << breakdown.active_servers << "/"
            << cloud.num_servers() << "\n\n";

  Table table({"client", "cluster", "servers", "response_time", "utility",
               "revenue"});
  for (const auto& c : breakdown.clients) {
    if (!c.assigned) {
      table.add_row(
          {std::to_string(c.id.value()), "-", "-", "unserved", "0", "0"});
      continue;
    }
    table.add_row(
        {std::to_string(c.id.value()),
         std::to_string(result.allocation.cluster_of(c.id).value()),
         std::to_string(result.allocation.placements(c.id).size()),
         Table::num(c.response_time, 3), Table::num(c.utility, 3),
         Table::num(c.revenue, 2)});
  }
  table.print(std::cout);
  return 0;
}
