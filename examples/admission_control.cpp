// Overload day ("black friday"): demand far exceeds the fleet. Forced
// serving packs queues until nobody's SLA pays; admission control serves
// the profitable subset well and declines the rest. The paper's
// formulation (constraint 6) serves everyone — this example shows why the
// allow_rejection extension exists and what it is worth.
//
//   ./admission_control [--clients=80] [--overload=4] [--seed=6]
#include <iostream>

#include "alloc/allocator.h"
#include "common/args.h"
#include "common/table.h"
#include "model/evaluator.h"
#include "model/feasibility.h"
#include "model/report.h"
#include "workload/scenario.h"

using namespace cloudalloc;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  workload::ScenarioParams params;
  params.num_clients = static_cast<int>(args.get_int("clients", 80));
  const double overload = args.get_double("overload", 4.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 6));
  const auto cloud =
      workload::make_overloaded_scenario(params, seed, overload);

  std::cout << "demand " << Table::num(cloud.total_demand_p(), 1)
            << " work/s vs capacity " << Table::num(cloud.total_cap_p(), 1)
            << " (" << Table::num(cloud.total_demand_p() / cloud.total_cap_p(), 2)
            << "x overloaded)\n\n";

  alloc::AllocatorOptions serve_all;  // the paper's constraint (6)
  const auto forced = alloc::ResourceAllocator(serve_all).run(cloud);

  alloc::AllocatorOptions selective = serve_all;
  selective.allow_rejection = true;
  const auto admitted = alloc::ResourceAllocator(selective).run(cloud);

  const auto forced_eval = model::evaluate(forced.allocation);
  const auto admitted_eval = model::evaluate(admitted.allocation);

  Table table({"policy", "profit", "revenue", "cost", "served", "active"});
  auto served = [&](const model::Allocation& alloc_state) {
    int n = 0;
    for (model::ClientId i : cloud.client_ids())
      if (alloc_state.is_assigned(i)) ++n;
    return n;
  };
  table.add_row({"serve everyone possible", Table::num(forced_eval.profit, 1),
                 Table::num(forced_eval.revenue, 1),
                 Table::num(forced_eval.cost, 1),
                 std::to_string(served(forced.allocation)) + "/" +
                     std::to_string(cloud.num_clients()),
                 std::to_string(forced_eval.active_servers)});
  table.add_row({"admission control", Table::num(admitted_eval.profit, 1),
                 Table::num(admitted_eval.revenue, 1),
                 Table::num(admitted_eval.cost, 1),
                 std::to_string(served(admitted.allocation)) + "/" +
                     std::to_string(cloud.num_clients()),
                 std::to_string(admitted_eval.active_servers)});
  table.print(std::cout);

  std::cout << "\nadmission control gives up "
            << served(forced.allocation) - served(admitted.allocation)
            << " marginal clients and gains "
            << Table::num(admitted_eval.profit - forced_eval.profit, 1)
            << " profit; both allocations feasible="
            << (model::is_feasible(forced.allocation) &&
                model::is_feasible(admitted.allocation))
            << "\n";
  return 0;
}
