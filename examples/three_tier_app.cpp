// Multi-tier deployment (the paper's Section VII future work): a fleet of
// classic three-tier web applications — a light web tier, a heavier app
// tier, and a disk-hungry database tier — allocated end-to-end. Shows the
// expansion, the per-tier placements, and the end-to-end SLA outcome.
//
//   ./three_tier_app [--apps=15] [--seed=5]
#include <iostream>

#include "common/args.h"
#include "common/rng.h"
#include "common/table.h"
#include "model/evaluator.h"
#include "model/feasibility.h"
#include "multitier/multitier.h"
#include "workload/scenario.h"

using namespace cloudalloc;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const int apps = static_cast<int>(args.get_int("apps", 15));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 5));

  // Topology + SLA classes from the paper's scenario family.
  workload::ScenarioParams params;
  params.num_clients = 1;
  const model::Cloud base = workload::make_scenario(params, seed);

  multitier::MultiTierInstance instance;
  instance.server_classes = base.server_classes();
  instance.servers = base.servers();
  instance.clusters = base.clusters();
  instance.utility_classes = base.utility_classes();

  Rng rng(seed);
  for (int a = 0; a < apps; ++a) {
    multitier::MultiTierClient app;
    app.id = a;
    app.utility_class = static_cast<model::UtilityClassId>(
        rng.uniform_int(0, static_cast<std::int64_t>(
                               instance.utility_classes.size()) -
                               1));
    app.lambda_agreed = app.lambda_pred = rng.uniform(0.5, 3.0);
    // web: cheap compute, chatty network, almost no state.
    app.tiers.push_back(multitier::TierDemand{rng.uniform(0.05, 0.15),
                                              rng.uniform(0.2, 0.4),
                                              rng.uniform(0.05, 0.15)});
    // app: the compute-heavy middle.
    app.tiers.push_back(multitier::TierDemand{rng.uniform(0.3, 0.6),
                                              rng.uniform(0.1, 0.2),
                                              rng.uniform(0.1, 0.3)});
    // db: moderate compute, big disk footprint.
    app.tiers.push_back(multitier::TierDemand{rng.uniform(0.15, 0.35),
                                              rng.uniform(0.05, 0.15),
                                              rng.uniform(0.8, 1.6)});
    instance.clients.push_back(std::move(app));
  }

  const auto result = multitier::allocate(instance);
  std::cout << "end-to-end profit " << Table::num(result.profit, 2)
            << ", active servers " << result.allocation.num_active_servers()
            << ", feasible=" << model::is_feasible(result.allocation)
            << "\n\n";

  Table table({"app", "lambda", "R_web", "R_app", "R_db", "R_total",
               "utility", "revenue"});
  for (int a = 0; a < apps; ++a) {
    double tier_r[3] = {0, 0, 0};
    for (model::ClientId i : result.expanded.cloud().client_ids()) {
      const auto& ref = result.expanded.refs[i.index()];
      if (ref.parent != a) continue;
      tier_r[ref.tier] = result.allocation.response_time(i);
    }
    const double r_total = multitier::end_to_end_response_time(
        result.expanded, result.allocation, a);
    const auto& app = instance.clients[static_cast<std::size_t>(a)];
    const double utility =
        instance.utility_classes[app.utility_class.index()]
            .fn->value(r_total);
    table.add_row({std::to_string(a), Table::num(app.lambda_agreed, 2),
                   Table::num(tier_r[0], 3), Table::num(tier_r[1], 3),
                   Table::num(tier_r[2], 3), Table::num(r_total, 3),
                   Table::num(utility, 3),
                   Table::num(utility * app.lambda_agreed, 2)});
  }
  table.print(std::cout);
  return 0;
}
