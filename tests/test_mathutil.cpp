#include "common/mathutil.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cloudalloc {
namespace {

TEST(Clamp, Basics) {
  EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(clamp(-1.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(2.0, 0.0, 1.0), 1.0);
}

TEST(Clamp, ToleratesInvertedBoundsFromRounding) {
  // lo slightly above hi: collapse to hi rather than crash.
  EXPECT_DOUBLE_EQ(clamp(0.5, 1.0 + 1e-12, 1.0), 1.0);
}

TEST(Near, AbsoluteAndRelative) {
  EXPECT_TRUE(near(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(near(1.0, 1.1));
  EXPECT_TRUE(near(1e9, 1e9 + 1.0, 1e-8));
}

TEST(RelGain, Basics) {
  EXPECT_NEAR(rel_gain(100.0, 110.0), 0.1, 1e-12);
  EXPECT_NEAR(rel_gain(100.0, 90.0), -0.1, 1e-12);
}

TEST(RelGain, GuardsZeroBase) {
  EXPECT_TRUE(std::isfinite(rel_gain(0.0, 5.0)));
}

TEST(Bisect, FindsRootOfLinear) {
  const double root =
      bisect([](double x) { return 2.0 * x - 1.0; }, 0.0, 1.0);
  EXPECT_NEAR(root, 0.5, 1e-10);
}

TEST(Bisect, FindsRootOfDecreasingFunction) {
  const double root = bisect([](double x) { return 1.0 - x * x; }, 0.0, 5.0);
  EXPECT_NEAR(root, 1.0, 1e-10);
}

TEST(Bisect, EndpointRoot) {
  EXPECT_DOUBLE_EQ(bisect([](double x) { return x; }, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(bisect([](double x) { return x - 1.0; }, 0.0, 1.0), 1.0);
}

TEST(Bisect, TranscendentalRoot) {
  const double root =
      bisect([](double x) { return std::cos(x) - x; }, 0.0, 1.0);
  EXPECT_NEAR(root, 0.7390851332, 1e-8);
}

TEST(GoldenSection, MinimizesParabola) {
  const double x =
      golden_section_min([](double v) { return (v - 2.0) * (v - 2.0); }, -10.0,
                         10.0);
  EXPECT_NEAR(x, 2.0, 1e-6);
}

TEST(GoldenSection, MinimumAtBoundary) {
  const double x =
      golden_section_min([](double v) { return v; }, 1.0, 3.0);
  EXPECT_NEAR(x, 1.0, 1e-6);
}

}  // namespace
}  // namespace cloudalloc
