#include "workload/churn.h"

#include <vector>

#include <gtest/gtest.h>

#include "workload/scenario.h"

namespace cloudalloc::workload {
namespace {

model::Cloud make_cloud(int clients = 24) {
  ScenarioParams params;
  params.num_clients = clients;
  params.servers_per_cluster = 6;
  return make_scenario(params, 77);
}

ChurnParams busy_params() {
  ChurnParams params;
  params.epochs = 12;
  params.initial_clients = 12;
  params.arrival_rate = 3.0;
  params.departure_probability = 0.15;
  params.demand_change_probability = 0.25;
  return params;
}

TEST(ChurnStream, SameSeedIsBitIdentical) {
  const auto cloud = make_cloud();
  const ChurnParams params = busy_params();
  const ChurnStream a = make_churn_stream(cloud, params, 42);
  const ChurnStream b = make_churn_stream(cloud, params, 42);
  ASSERT_EQ(a.initially_present, b.initially_present);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t t = 0; t < a.epochs.size(); ++t) {
    ASSERT_EQ(a.epochs[t].size(), b.epochs[t].size()) << "epoch " << t;
    for (std::size_t e = 0; e < a.epochs[t].size(); ++e) {
      EXPECT_EQ(a.epochs[t][e].kind, b.epochs[t][e].kind);
      EXPECT_EQ(a.epochs[t][e].client, b.epochs[t][e].client);
      // Bitwise: the serving layer's determinism contract rides on this.
      EXPECT_EQ(a.epochs[t][e].rate, b.epochs[t][e].rate);
    }
  }
}

TEST(ChurnStream, DifferentSeedsDiffer) {
  const auto cloud = make_cloud();
  const ChurnParams params = busy_params();
  const ChurnStream a = make_churn_stream(cloud, params, 1);
  const ChurnStream b = make_churn_stream(cloud, params, 2);
  int total_a = 0, total_b = 0;
  bool differ = false;
  for (std::size_t t = 0; t < a.epochs.size(); ++t) {
    total_a += static_cast<int>(a.epochs[t].size());
    total_b += static_cast<int>(b.epochs[t].size());
    if (a.epochs[t].size() != b.epochs[t].size()) differ = true;
  }
  EXPECT_TRUE(differ || total_a != total_b);
}

TEST(ChurnStream, InitialPresenceIsAPrefixOfTheUniverse) {
  const auto cloud = make_cloud();
  ChurnParams params = busy_params();
  params.initial_clients = 7;
  const ChurnStream stream = make_churn_stream(cloud, params, 9);
  ASSERT_EQ(stream.initially_present.size(), 7u);
  for (int i = 0; i < 7; ++i)
    EXPECT_EQ(stream.initially_present[static_cast<std::size_t>(i)],
              model::ClientId(i));
}

TEST(ChurnStream, EventsAreValidAgainstPresence) {
  const auto cloud = make_cloud();
  const ChurnParams params = busy_params();
  const ChurnStream stream = make_churn_stream(cloud, params, 1234);
  std::vector<bool> present(static_cast<std::size_t>(cloud.num_clients()),
                            false);
  for (model::ClientId i : stream.initially_present)
    present[i.index()] = true;

  ASSERT_EQ(stream.epochs.size(), static_cast<std::size_t>(params.epochs));
  for (const auto& events : stream.epochs) {
    std::vector<bool> seen(static_cast<std::size_t>(cloud.num_clients()),
                           false);
    for (const ChurnEvent& event : events) {
      ASSERT_TRUE(event.client.valid());
      ASSERT_LT(event.client.value(), cloud.num_clients());
      EXPECT_FALSE(seen[event.client.index()])
          << "client " << event.client << " appears twice in one epoch";
      seen[event.client.index()] = true;
      switch (event.kind) {
        case ChurnEvent::Kind::kArrival:
          EXPECT_FALSE(present[event.client.index()]);
          EXPECT_GE(event.rate, params.rate_floor);
          present[event.client.index()] = true;
          break;
        case ChurnEvent::Kind::kDeparture:
          EXPECT_TRUE(present[event.client.index()]);
          present[event.client.index()] = false;
          break;
        case ChurnEvent::Kind::kDemandChange:
          EXPECT_TRUE(present[event.client.index()]);
          EXPECT_GE(event.rate, params.rate_floor);
          break;
      }
    }
  }
}

TEST(ChurnStream, EpochOrdersDeparturesChangesArrivals) {
  const auto cloud = make_cloud();
  const ChurnStream stream = make_churn_stream(cloud, busy_params(), 5);
  for (const auto& events : stream.epochs) {
    int band = 0;  // 0 = departures, 1 = demand changes, 2 = arrivals
    for (const ChurnEvent& event : events) {
      const int event_band =
          event.kind == ChurnEvent::Kind::kDeparture     ? 0
          : event.kind == ChurnEvent::Kind::kDemandChange ? 1
                                                          : 2;
      EXPECT_GE(event_band, band);
      band = event_band;
    }
  }
}

TEST(ChurnStream, QuietParamsProduceNoEvents) {
  const auto cloud = make_cloud();
  ChurnParams params;
  params.epochs = 5;
  params.initial_clients = 10;
  params.arrival_rate = 0.0;
  params.departure_probability = 0.0;
  params.demand_change_probability = 0.0;
  const ChurnStream stream = make_churn_stream(cloud, params, 3);
  for (const auto& events : stream.epochs) EXPECT_TRUE(events.empty());
}

}  // namespace
}  // namespace cloudalloc::workload
