#include "multitier/multitier.h"

#include <cmath>

#include <gtest/gtest.h>

#include "model/evaluator.h"
#include "model/feasibility.h"
#include "workload/scenario.h"

namespace cloudalloc::multitier {
namespace {

MultiTierInstance tiny_instance(int tiers_per_client) {
  // Topology of the tiny single-tier scenario, multi-tier clients on top.
  const model::Cloud base = workload::make_tiny_scenario(1);
  MultiTierInstance instance;
  instance.server_classes = base.server_classes();
  instance.servers = base.servers();
  instance.clusters = base.clusters();
  instance.utility_classes = base.utility_classes();

  for (int i = 0; i < 2; ++i) {
    MultiTierClient c;
    c.id = i;
    c.utility_class = model::UtilityClassId{i % 2};
    c.lambda_agreed = c.lambda_pred = 1.0 + 0.5 * i;
    for (int t = 0; t < tiers_per_client; ++t)
      c.tiers.push_back(TierDemand{0.3 + 0.1 * t, 0.25 + 0.1 * t, 0.4});
    instance.clients.push_back(std::move(c));
  }
  return instance;
}

TEST(Expand, OneClientPerTier) {
  const auto instance = tiny_instance(3);
  const auto expanded = expand(instance);
  EXPECT_EQ(expanded.cloud().num_clients(), 6);
  EXPECT_EQ(expanded.refs.size(), 6u);
  EXPECT_EQ(expanded.refs[0].parent, 0);
  EXPECT_EQ(expanded.refs[2].tier, 2);
  EXPECT_EQ(expanded.refs[3].parent, 1);
  EXPECT_EQ(expanded.parent_tiers, std::vector<int>({3, 3}));
}

TEST(Expand, TierClientsCarryFullRateAndTierDemand) {
  const auto instance = tiny_instance(2);
  const auto expanded = expand(instance);
  for (model::ClientId i : expanded.cloud().client_ids()) {
    const auto& ref = expanded.refs[i.index()];
    const auto& parent =
        instance.clients[static_cast<std::size_t>(ref.parent)];
    const auto& c = expanded.cloud().client(i);
    EXPECT_DOUBLE_EQ(c.lambda_pred, parent.lambda_pred);
    EXPECT_DOUBLE_EQ(
        c.alpha_p,
        parent.tiers[static_cast<std::size_t>(ref.tier)].alpha_p);
  }
}

TEST(Expand, UtilityScaledByTierCount) {
  const auto instance = tiny_instance(2);
  const auto expanded = expand(instance);
  const auto& original =
      *instance.utility_classes[0].fn;  // class 0 of parent 0
  const auto& scaled = expanded.cloud().utility_of(model::ClientId{0});
  EXPECT_NEAR(scaled.max_value(), original.max_value() / 2.0, 1e-12);
  EXPECT_NEAR(scaled.slope(0.0), original.slope(0.0), 1e-12);
}

TEST(Expand, SingleTierKeepsOriginalUtility) {
  const auto instance = tiny_instance(1);
  const auto expanded = expand(instance);
  EXPECT_DOUBLE_EQ(expanded.cloud().utility_of(model::ClientId{0}).max_value(),
                   instance.utility_classes[0].fn->max_value());
}

TEST(Profit, MatchesExpandedEvaluatorInLinearRegion) {
  const auto instance = tiny_instance(2);
  const auto expanded = expand(instance);
  model::Allocation alloc(expanded.cloud());
  // Serve every tier generously so all utilities are in the interior.
  alloc.assign(model::ClientId{0}, model::ClusterId{0}, {model::Placement{model::ServerId{0}, 1.0, 0.45, 0.45}});
  alloc.assign(model::ClientId{1}, model::ClusterId{0}, {model::Placement{model::ServerId{1}, 1.0, 0.45, 0.45}});
  alloc.assign(model::ClientId{2}, model::ClusterId{1}, {model::Placement{model::ServerId{2}, 1.0, 0.45, 0.45}});
  alloc.assign(model::ClientId{3}, model::ClusterId{1}, {model::Placement{model::ServerId{3}, 1.0, 0.45, 0.45}});

  // In the linear region the expansion's profit is exactly the true one.
  const double expanded_profit = model::profit(alloc);
  const double true_profit = multitier_profit(instance, expanded, alloc);
  EXPECT_NEAR(true_profit, expanded_profit, 1e-9);
}

TEST(Profit, MissingTierEarnsNothing) {
  const auto instance = tiny_instance(2);
  const auto expanded = expand(instance);
  model::Allocation alloc(expanded.cloud());
  // Parent 0: only tier 0 of 2 served.
  alloc.assign(model::ClientId{0}, model::ClusterId{0}, {model::Placement{model::ServerId{0}, 1.0, 0.45, 0.45}});
  EXPECT_TRUE(std::isinf(end_to_end_response_time(expanded, alloc, 0)));
  // Revenue zero, but the serving server still costs.
  EXPECT_LT(multitier_profit(instance, expanded, alloc), 0.0);
}

TEST(Profit, EndToEndTimeIsSumOfTiers) {
  const auto instance = tiny_instance(2);
  const auto expanded = expand(instance);
  model::Allocation alloc(expanded.cloud());
  alloc.assign(model::ClientId{0}, model::ClusterId{0}, {model::Placement{model::ServerId{0}, 1.0, 0.45, 0.45}});
  alloc.assign(model::ClientId{1}, model::ClusterId{0}, {model::Placement{model::ServerId{1}, 1.0, 0.45, 0.45}});
  const double r0 = alloc.response_time(model::ClientId{0});
  const double r1 = alloc.response_time(model::ClientId{1});
  EXPECT_NEAR(end_to_end_response_time(expanded, alloc, 0), r0 + r1, 1e-12);
}

TEST(Allocate, SolvesTinyInstanceFeasibly) {
  const auto instance = tiny_instance(2);
  const auto result = allocate(instance);
  EXPECT_TRUE(model::is_feasible(result.allocation));
  EXPECT_GT(result.profit, 0.0);
  // Every tier of every parent served.
  for (std::size_t p = 0; p < instance.clients.size(); ++p)
    EXPECT_TRUE(std::isfinite(end_to_end_response_time(
        result.expanded, result.allocation, static_cast<int>(p))));
}

TEST(Allocate, ScenarioGeneratorProducesSolvableInstances) {
  const auto instance = make_multitier_scenario(20, 2, 3, 11);
  EXPECT_EQ(instance.clients.size(), 20u);
  for (const auto& c : instance.clients) {
    EXPECT_GE(c.tiers.size(), 2u);
    EXPECT_LE(c.tiers.size(), 3u);
  }
  const auto result = allocate(instance);
  EXPECT_TRUE(model::is_feasible(result.allocation));
  EXPECT_GT(result.profit, 0.0);
}

TEST(Allocate, SingleTierEquivalentToPlainAllocator) {
  // A 1-tier multitier instance must reduce to the ordinary problem.
  const auto instance = make_multitier_scenario(15, 1, 1, 13);
  const auto result = allocate(instance);
  const double direct = model::profit(result.allocation);
  EXPECT_NEAR(result.profit, direct, 1e-9);
}

class MultiTierProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultiTierProperty, FeasibleAcrossSeeds) {
  const auto instance = make_multitier_scenario(15, 1, 4, GetParam());
  const auto result = allocate(instance);
  EXPECT_TRUE(model::is_feasible(result.allocation));
  EXPECT_TRUE(std::isfinite(result.profit));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiTierProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace cloudalloc::multitier
