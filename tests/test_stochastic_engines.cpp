#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "opt/annealing.h"
#include "opt/exhaustive.h"
#include "opt/genetic.h"

namespace cloudalloc::opt {
namespace {

TEST(Annealing, MaximizesConcaveScalar) {
  Rng rng(1);
  auto neighbor = [](const double& x, Rng& r) {
    return x + r.uniform(-0.5, 0.5);
  };
  auto score = [](const double& x) { return -(x - 3.0) * (x - 3.0); };
  AnnealingOptions opts;
  opts.steps = 5000;
  double best_score = -1e300;
  const double best = anneal<double>(0.0, neighbor, score, opts, rng,
                                     &best_score);
  EXPECT_NEAR(best, 3.0, 0.1);
  EXPECT_NEAR(best_score, 0.0, 0.02);
}

TEST(Annealing, KeepsBestEverSeen) {
  Rng rng(2);
  // Score only x == 1 highly; neighbors jump randomly in {0,1,2}.
  auto neighbor = [](const int&, Rng& r) {
    return static_cast<int>(r.uniform_int(0, 2));
  };
  auto score = [](const int& x) { return x == 1 ? 10.0 : 0.0; };
  AnnealingOptions opts;
  opts.steps = 200;
  double best_score = 0.0;
  anneal<int>(0, neighbor, score, opts, rng, &best_score);
  EXPECT_DOUBLE_EQ(best_score, 10.0);
}

TEST(Annealing, DeterministicGivenSeed) {
  auto run = [] {
    Rng rng(7);
    AnnealingOptions opts;
    opts.steps = 500;
    double best_score = 0.0;
    anneal<double>(
        0.0, [](const double& x, Rng& r) { return x + r.uniform(-1, 1); },
        [](const double& x) { return -std::fabs(x - 5.0); }, opts, rng,
        &best_score);
    return best_score;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Genetic, SolvesOneMax) {
  Rng rng(3);
  auto fitness = [](const std::vector<int>& g) {
    double s = 0.0;
    for (int v : g) s += v;
    return s;
  };
  GeneticOptions opts;
  opts.generations = 100;
  const auto result = genetic_search(20, 2, fitness, opts, rng);
  EXPECT_GE(result.best_fitness, 19.0);
}

TEST(Genetic, SolvesTargetString) {
  Rng rng(4);
  const std::vector<int> target{2, 0, 1, 3, 2, 1, 0, 3};
  auto fitness = [&](const std::vector<int>& g) {
    double s = 0.0;
    for (std::size_t i = 0; i < g.size(); ++i)
      if (g[i] == target[i]) s += 1.0;
    return s;
  };
  GeneticOptions opts;
  opts.generations = 150;
  const auto result = genetic_search(8, 4, fitness, opts, rng);
  EXPECT_GE(result.best_fitness, 7.0);
}

TEST(Genetic, ElitismPreservesBest) {
  Rng rng(5);
  // Fitness landscape where mutation is very destructive.
  auto fitness = [](const std::vector<int>& g) {
    for (int v : g)
      if (v != 1) return 0.0;
    return 1.0;
  };
  GeneticOptions opts;
  opts.population = 8;
  opts.generations = 30;
  opts.mutation_rate = 0.5;
  const auto r1 = genetic_search(3, 2, fitness, opts, rng);
  // Nothing to assert beyond stability: fitness is in {0, 1}.
  EXPECT_TRUE(r1.best_fitness == 0.0 || r1.best_fitness == 1.0);
}

TEST(Exhaustive, FindsKnownOptimum) {
  // Score = assignment read as base-3 number; max is all (K-1).
  std::vector<int> best;
  double best_score = 0.0;
  enumerate_assignments(
      4, 3,
      [](const std::vector<int>& a) {
        double s = 0.0;
        for (int v : a) s = s * 3 + v;
        return s;
      },
      &best, &best_score);
  EXPECT_EQ(best, std::vector<int>({2, 2, 2, 2}));
}

TEST(Exhaustive, VisitsAllAssignments) {
  int calls = 0;
  enumerate_assignments(
      3, 2,
      [&calls](const std::vector<int>&) {
        ++calls;
        return 0.0;
      },
      nullptr, nullptr);
  EXPECT_EQ(calls, 8);
}

TEST(Exhaustive, RejectsHugeSpaces) {
  EXPECT_DEATH(enumerate_assignments(
                   100, 100, [](const std::vector<int>&) { return 0.0; },
                   nullptr, nullptr),
               "too large");
}

}  // namespace
}  // namespace cloudalloc::opt
