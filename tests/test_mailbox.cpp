// Mailbox semantics the dist protocol leans on: FIFO delivery, close
// wakes blocked receivers, queued messages drain after close, send after
// close is refused (and the result must be consumed), receive_for
// timeout behavior, and MPMC integrity under contention (the stress test
// is part of the TSan CI job).
#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dist/mailbox.h"

namespace cloudalloc::dist {
namespace {

using namespace std::chrono_literals;

TEST(Mailbox, FifoDelivery) {
  Mailbox<int> box;
  EXPECT_TRUE(box.send(1));
  EXPECT_TRUE(box.send(2));
  EXPECT_TRUE(box.send(3));
  EXPECT_EQ(box.receive(), 1);
  EXPECT_EQ(box.receive(), 2);
  EXPECT_EQ(box.receive(), 3);
  EXPECT_EQ(box.messages_sent(), 3u);
}

TEST(Mailbox, CloseWakesBlockedReceiver) {
  Mailbox<int> box;
  std::atomic<bool> woke{false};
  std::thread receiver([&] {
    EXPECT_FALSE(box.receive().has_value());
    woke = true;
  });
  // Give the receiver a chance to actually block before closing.
  std::this_thread::sleep_for(10ms);
  box.close();
  receiver.join();
  EXPECT_TRUE(woke.load());
}

TEST(Mailbox, SendAfterCloseIsRefused) {
  Mailbox<int> box;
  box.close();
  EXPECT_FALSE(box.send(1));
  EXPECT_EQ(box.messages_sent(), 0u);  // refused sends are not counted
  EXPECT_TRUE(box.closed());
}

TEST(Mailbox, QueuedMessagesDrainAfterClose) {
  Mailbox<int> box;
  EXPECT_TRUE(box.send(1));
  EXPECT_TRUE(box.send(2));
  box.close();
  // Already-queued messages survive the close and drain in order...
  EXPECT_EQ(box.receive(), 1);
  EXPECT_EQ(box.receive(), 2);
  // ...and only the drained+closed mailbox reports end-of-stream.
  EXPECT_FALSE(box.receive().has_value());
  EXPECT_EQ(box.messages_sent(), 2u);
}

TEST(Mailbox, ReceiveForTimesOutOnEmpty) {
  Mailbox<int> box;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(box.receive_for(30ms).has_value());
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(waited, 25ms);  // really waited (scheduler slop tolerated)
}

TEST(Mailbox, ReceiveForReturnsQueuedMessageImmediately) {
  Mailbox<int> box;
  EXPECT_TRUE(box.send(7));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(box.receive_for(10s), 7);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 5s);
}

TEST(Mailbox, ReceiveForWokenByLateSend) {
  Mailbox<int> box;
  std::thread sender([&box] {
    std::this_thread::sleep_for(20ms);
    EXPECT_TRUE(box.send(42));
  });
  EXPECT_EQ(box.receive_for(10s), 42);
  sender.join();
}

TEST(Mailbox, ReceiveForWokenByClose) {
  Mailbox<int> box;
  std::thread closer([&box] {
    std::this_thread::sleep_for(20ms);
    box.close();
  });
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(box.receive_for(10s).has_value());
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 5s);
  closer.join();
}

TEST(Mailbox, CrossThreadDelivery) {
  Mailbox<std::string> box;
  std::thread sender([&box] {
    for (int i = 0; i < 100; ++i)
      EXPECT_TRUE(box.send("msg" + std::to_string(i)));
  });
  std::set<std::string> got;
  for (int i = 0; i < 100; ++i) {
    auto m = box.receive();
    ASSERT_TRUE(m.has_value());
    got.insert(*m);
  }
  sender.join();
  EXPECT_EQ(got.size(), 100u);
}

// Multi-producer/multi-consumer integrity: every message delivered
// exactly once, none lost, none duplicated — under real contention.
// (Runs under TSan in CI; the mailbox is the substrate every protocol
// channel is built on.)
TEST(Mailbox, MultiProducerMultiConsumerStress) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 500;
  Mailbox<int> box;

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kPerProducer; ++i)
        EXPECT_TRUE(box.send(p * kPerProducer + i));
    });

  std::mutex got_mutex;
  std::vector<int> got;
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c)
    consumers.emplace_back([&box, &got, &got_mutex] {
      while (auto m = box.receive()) {
        std::lock_guard<std::mutex> lock(got_mutex);
        got.push_back(*m);
      }
    });

  for (auto& t : producers) t.join();
  box.close();  // consumers drain the queue, then unblock and exit
  for (auto& t : consumers) t.join();

  ASSERT_EQ(got.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  std::set<int> unique(got.begin(), got.end());
  EXPECT_EQ(unique.size(), got.size());  // exactly-once delivery
  EXPECT_EQ(box.messages_sent(), got.size());
}

}  // namespace
}  // namespace cloudalloc::dist
