// Admission-control extension: with allow_rejection the allocator may
// decline clients whose SLA revenue cannot cover the energy they cost.
#include <gtest/gtest.h>

#include "alloc/allocator.h"
#include "alloc/reassign.h"
#include "model/evaluator.h"
#include "model/feasibility.h"
#include "workload/scenario.h"

namespace cloudalloc::alloc {
namespace {

TEST(Admission, OffByDefaultServesEveryoneWhoFits) {
  workload::ScenarioParams params;
  params.num_clients = 25;
  const auto cloud = workload::make_scenario(params, 201);
  const auto result = ResourceAllocator().run(cloud);
  EXPECT_EQ(result.report.unassigned_clients, 0);
}

TEST(Admission, NeverDropsProfitableClients) {
  workload::ScenarioParams params;
  params.num_clients = 25;
  const auto cloud = workload::make_scenario(params, 203);
  AllocatorOptions opts;
  opts.allow_rejection = true;
  const auto result = ResourceAllocator(opts).run(cloud);
  // Default scenarios are profitable per client: nobody gets dropped.
  EXPECT_EQ(result.report.unassigned_clients, 0);
  EXPECT_TRUE(model::is_feasible(result.allocation));
}

TEST(Admission, RejectsLossMakingClients) {
  // A scenario where serving is a money-loser: flat tiny prices against
  // normal server costs.
  workload::ScenarioParams params;
  params.num_clients = 20;
  params.base_price_lo = 0.01;
  params.base_price_hi = 0.02;  // revenue ~0.05 per client
  const auto cloud = workload::make_scenario(params, 207);

  AllocatorOptions serve_all;
  const auto forced = ResourceAllocator(serve_all).run(cloud);

  AllocatorOptions reject;
  reject.allow_rejection = true;
  const auto selective = ResourceAllocator(reject).run(cloud);

  EXPECT_GT(selective.report.final_profit, forced.report.final_profit);
  EXPECT_GT(selective.report.unassigned_clients, 0);
  // Declining everyone yields exactly zero; never below.
  EXPECT_GE(selective.report.final_profit, -1e-9);
}

TEST(Admission, DropPassIsNoOpWhenDisabled) {
  workload::ScenarioParams params;
  params.num_clients = 15;
  const auto cloud = workload::make_scenario(params, 211);
  AllocatorOptions opts;  // allow_rejection = false
  auto result = ResourceAllocator(opts).run(cloud);
  EXPECT_DOUBLE_EQ(drop_unprofitable_clients(result.allocation, opts), 0.0);
}

TEST(Admission, DropPassRemovesOnlyNetLosers) {
  workload::ScenarioParams params;
  params.num_clients = 15;
  params.base_price_lo = 0.01;
  params.base_price_hi = 0.02;
  const auto cloud = workload::make_scenario(params, 213);
  AllocatorOptions serve_all;
  auto result = ResourceAllocator(serve_all).run(cloud);

  AllocatorOptions reject = serve_all;
  reject.allow_rejection = true;
  const double before = model::profit(result.allocation);
  const double delta =
      drop_unprofitable_clients(result.allocation, reject);
  EXPECT_GE(delta, 0.0);
  EXPECT_NEAR(model::profit(result.allocation), before + delta, 1e-9);
  EXPECT_TRUE(model::is_feasible(result.allocation));
}

}  // namespace
}  // namespace cloudalloc::alloc
