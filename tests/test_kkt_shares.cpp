#include "opt/kkt_shares.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace cloudalloc::opt {
namespace {

// Brute-force reference: grid search over the simplex (2 items).
double brute_force_two(const std::vector<ShareItem>& items, double budget,
                       int grid = 4000) {
  double best = -1e300;
  for (int g = 0; g <= grid; ++g) {
    const double phi0 = items[0].lo + (items[0].hi - items[0].lo) * g / grid;
    const double phi1 = std::min(items[1].hi, budget - phi0);
    if (phi1 < items[1].lo - 1e-9) continue;
    const double obj = shares_objective(items, {phi0, phi1});
    if (obj > best) best = obj;
  }
  return best;
}

ShareItem item(double w, double b, double l, double lo, double hi) {
  ShareItem it;
  it.weight = w;
  it.rate_factor = b;
  it.load = l;
  it.lo = lo;
  it.hi = hi;
  return it;
}

TEST(KktShares, SingleItemTakesWhatHelps) {
  // One item, budget 1: optimum is hi (more share always helps).
  const std::vector<ShareItem> items{item(1.0, 4.0, 1.0, 0.3, 1.0)};
  const auto sol = solve_shares(items, 1.0);
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->phi[0], 1.0, 1e-9);
}

TEST(KktShares, SymmetricItemsSplitEvenly) {
  const std::vector<ShareItem> items{item(1.0, 4.0, 1.0, 0.3, 1.0),
                                     item(1.0, 4.0, 1.0, 0.3, 1.0)};
  const auto sol = solve_shares(items, 1.0);
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->phi[0], 0.5, 1e-6);
  EXPECT_NEAR(sol->phi[1], 0.5, 1e-6);
  EXPECT_GT(sol->multiplier, 0.0);
}

TEST(KktShares, HeavierWeightGetsMore) {
  const std::vector<ShareItem> items{item(4.0, 4.0, 1.0, 0.3, 1.0),
                                     item(1.0, 4.0, 1.0, 0.3, 1.0)};
  const auto sol = solve_shares(items, 1.0);
  ASSERT_TRUE(sol.has_value());
  EXPECT_GT(sol->phi[0], sol->phi[1]);
  EXPECT_NEAR(sol->phi[0] + sol->phi[1], 1.0, 1e-6);
}

TEST(KktShares, ZeroWeightItemPinnedAtFloor) {
  const std::vector<ShareItem> items{item(0.0, 4.0, 1.0, 0.3, 1.0),
                                     item(1.0, 4.0, 1.0, 0.3, 1.0)};
  const auto sol = solve_shares(items, 1.0);
  ASSERT_TRUE(sol.has_value());
  EXPECT_DOUBLE_EQ(sol->phi[0], 0.3);
  EXPECT_NEAR(sol->phi[1], 0.7, 1e-6);
}

TEST(KktShares, AllZeroWeights) {
  const std::vector<ShareItem> items{item(0.0, 4.0, 1.0, 0.3, 1.0),
                                     item(0.0, 4.0, 1.0, 0.4, 1.0)};
  const auto sol = solve_shares(items, 1.0);
  ASSERT_TRUE(sol.has_value());
  EXPECT_DOUBLE_EQ(sol->phi[0], 0.3);
  EXPECT_DOUBLE_EQ(sol->phi[1], 0.4);
}

TEST(KktShares, SlackBudgetGivesCeilings) {
  const std::vector<ShareItem> items{item(1.0, 4.0, 1.0, 0.3, 0.4),
                                     item(1.0, 4.0, 1.0, 0.3, 0.4)};
  const auto sol = solve_shares(items, 1.0);
  ASSERT_TRUE(sol.has_value());
  EXPECT_DOUBLE_EQ(sol->phi[0], 0.4);
  EXPECT_DOUBLE_EQ(sol->phi[1], 0.4);
  EXPECT_DOUBLE_EQ(sol->multiplier, 0.0);
}

TEST(KktShares, InfeasibleWhenFloorsExceedBudget) {
  const std::vector<ShareItem> items{item(1.0, 4.0, 1.0, 0.6, 1.0),
                                     item(1.0, 4.0, 1.0, 0.6, 1.0)};
  EXPECT_FALSE(solve_shares(items, 1.0).has_value());
}

TEST(KktShares, InfeasibleWhenFloorCannotStabilize) {
  // lo * B <= load -> queue can never be stable at the floor.
  const std::vector<ShareItem> items{item(1.0, 4.0, 2.0, 0.5, 1.0)};
  EXPECT_FALSE(solve_shares(items, 1.0).has_value());
}

TEST(KktShares, ObjectiveInfiniteOnUnstableShares) {
  const std::vector<ShareItem> items{item(1.0, 4.0, 2.0, 0.6, 1.0)};
  EXPECT_TRUE(std::isinf(shares_objective(items, {0.5})));
}

TEST(KktShares, MatchesBruteForceOnTwoItems) {
  Rng rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<ShareItem> items;
    for (int i = 0; i < 2; ++i) {
      const double b = rng.uniform(2.0, 8.0);
      const double l = rng.uniform(0.2, 1.5);
      const double lo = (l + 0.05) / b;
      items.push_back(item(rng.uniform(0.1, 5.0), b, l, lo, 1.0));
    }
    if (items[0].lo + items[1].lo > 1.0) continue;
    const auto sol = solve_shares(items, 1.0);
    ASSERT_TRUE(sol.has_value());
    const double brute = brute_force_two(items, 1.0);
    EXPECT_NEAR(sol->objective, brute, 1e-3 * std::fabs(brute) + 1e-6)
        << "trial " << trial;
    EXPECT_GE(sol->objective, brute - 1e-4 * std::fabs(brute) - 1e-6);
  }
}

// Property sweep: solutions are always feasible and budget-tight when the
// budget binds.
class KktSharesProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KktSharesProperty, FeasibleAndTight) {
  Rng rng(GetParam());
  const int n = static_cast<int>(rng.uniform_int(1, 8));
  std::vector<ShareItem> items;
  double floor_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double b = rng.uniform(2.0, 8.0);
    const double l = rng.uniform(0.1, 1.0);
    const double lo = (l + 0.05) / b;
    floor_sum += lo;
    items.push_back(item(rng.uniform(0.0, 5.0), b, l, lo, 1.0));
  }
  const auto sol = solve_shares(items, 1.0);
  if (floor_sum > 1.0 + 1e-9) {
    EXPECT_FALSE(sol.has_value());
    return;
  }
  ASSERT_TRUE(sol.has_value());
  double sum = 0.0;
  bool any_weight = false;
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_GE(sol->phi[i], items[i].lo - 1e-9);
    EXPECT_LE(sol->phi[i], items[i].hi + 1e-9);
    sum += sol->phi[i];
    any_weight = any_weight || items[i].weight > 0.0;
  }
  EXPECT_LE(sum, 1.0 + 1e-6);
  if (any_weight) {
    EXPECT_NEAR(sum, 1.0, 1e-5);  // budget binds (hi = 1 each)
  }
  EXPECT_TRUE(std::isfinite(sol->objective));
}

INSTANTIATE_TEST_SUITE_P(Seeds, KktSharesProperty,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace cloudalloc::opt
