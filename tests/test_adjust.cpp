#include <gtest/gtest.h>

#include "alloc/adjust_dispersion.h"
#include "alloc/adjust_shares.h"
#include "alloc/initial.h"
#include "common/rng.h"
#include "model/evaluator.h"
#include "model/feasibility.h"
#include "workload/scenario.h"

namespace cloudalloc::alloc {
namespace {

using model::Allocation;
using model::Placement;

TEST(AdjustShares, ImprovesDeliberatelyBadSplit) {
  const auto cloud = workload::make_tiny_scenario(2);
  AllocatorOptions opts;
  Allocation alloc(cloud);
  // Two clients on server 0; client 1 (heavier load) starved, client 0
  // hogging. A rebalance must help.
  alloc.assign(model::ClientId{0}, model::ClusterId{0}, {Placement{model::ServerId{0}, 1.0, 0.80, 0.80}});
  alloc.assign(model::ClientId{1}, model::ClusterId{0}, {Placement{model::ServerId{0}, 1.0, 0.20, 0.20}});
  const double before = model::profit(alloc);
  const double delta = adjust_resource_shares(alloc, model::ServerId{0}, opts);
  EXPECT_GT(delta, 0.0);
  EXPECT_NEAR(model::profit(alloc), before + delta, 1e-9);
  EXPECT_TRUE(model::is_feasible(alloc));
}

TEST(AdjustShares, NoOpOnEmptyServer) {
  const auto cloud = workload::make_tiny_scenario(2);
  AllocatorOptions opts;
  Allocation alloc(cloud);
  EXPECT_DOUBLE_EQ(adjust_resource_shares(alloc, model::ServerId{0}, opts), 0.0);
}

TEST(AdjustShares, NeverDecreasesProfit) {
  workload::ScenarioParams params;
  params.num_clients = 30;
  params.servers_per_cluster = 6;
  const auto cloud = workload::make_scenario(params, 17);
  AllocatorOptions opts;
  Rng rng(17);
  Allocation alloc = build_initial_solution(cloud, opts, rng);
  const double before = model::profit(alloc);
  const double delta = adjust_all_shares(alloc, opts);
  EXPECT_GE(delta, 0.0);
  EXPECT_GE(model::profit(alloc), before - 1e-9);
  EXPECT_TRUE(model::is_feasible(alloc));
}

TEST(AdjustDispersion, NoOpForSingleSlice) {
  const auto cloud = workload::make_tiny_scenario(2);
  AllocatorOptions opts;
  Allocation alloc(cloud);
  alloc.assign(model::ClientId{0}, model::ClusterId{0}, {Placement{model::ServerId{0}, 1.0, 0.5, 0.5}});
  EXPECT_DOUBLE_EQ(adjust_dispersion_rates(alloc, model::ClientId{0}, opts), 0.0);
}

TEST(AdjustDispersion, RebalancesLopsidedSplit) {
  const auto cloud = workload::make_tiny_scenario(1);
  AllocatorOptions opts;
  Allocation alloc(cloud);
  // Client 0 split 90/10 over two servers with equal shares: convex
  // delay says closer-to-even (weighted by capacity) is better.
  alloc.assign(model::ClientId{0}, model::ClusterId{0},
               {Placement{model::ServerId{0}, 0.9, 0.4, 0.4}, Placement{model::ServerId{1}, 0.1, 0.4, 0.4}});
  const double before = model::profit(alloc);
  const double delta = adjust_dispersion_rates(alloc, model::ClientId{0}, opts);
  EXPECT_GE(delta, 0.0);
  EXPECT_GE(model::profit(alloc), before - 1e-9);
  EXPECT_TRUE(model::is_feasible(alloc));
}

TEST(AdjustDispersion, DropsNeedlessSecondServer) {
  // Very light client split over two servers: the linear P1 cost of the
  // second server can make consolidation worthwhile; at minimum the step
  // must not hurt.
  const auto cloud = workload::make_tiny_scenario(1);
  AllocatorOptions opts;
  Allocation alloc(cloud);
  alloc.assign(model::ClientId{0}, model::ClusterId{0},
               {Placement{model::ServerId{0}, 0.5, 0.45, 0.45}, Placement{model::ServerId{1}, 0.5, 0.05, 0.05}});
  const double before = model::profit(alloc);
  adjust_dispersion_rates(alloc, model::ClientId{0}, opts);
  EXPECT_GE(model::profit(alloc), before - 1e-9);
  EXPECT_TRUE(model::is_feasible(alloc));
}

TEST(AdjustDispersion, NeverDecreasesProfitOnScenarios) {
  workload::ScenarioParams params;
  params.num_clients = 30;
  params.servers_per_cluster = 6;
  const auto cloud = workload::make_scenario(params, 23);
  AllocatorOptions opts;
  Rng rng(23);
  Allocation alloc = build_initial_solution(cloud, opts, rng);
  const double before = model::profit(alloc);
  const double delta = adjust_all_dispersions(alloc, opts);
  EXPECT_GE(delta, 0.0);
  EXPECT_GE(model::profit(alloc), before - 1e-9);
  EXPECT_TRUE(model::is_feasible(alloc));
}

class AdjustProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdjustProperty, RepeatedAdjustmentMonotoneAndFeasible) {
  workload::ScenarioParams params;
  params.num_clients = 20;
  params.servers_per_cluster = 5;
  const auto cloud = workload::make_scenario(params, GetParam());
  AllocatorOptions opts;
  Rng rng(GetParam());
  Allocation alloc = build_initial_solution(cloud, opts, rng);
  double profit_now = model::profit(alloc);
  for (int round = 0; round < 3; ++round) {
    adjust_all_shares(alloc, opts);
    adjust_all_dispersions(alloc, opts);
    const double next = model::profit(alloc);
    EXPECT_GE(next, profit_now - 1e-9);
    profit_now = next;
    ASSERT_TRUE(model::is_feasible(alloc));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdjustProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace cloudalloc::alloc
