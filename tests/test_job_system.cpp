// Work-stealing scheduler tests (suite name JobSystem is matched by the CI
// TSan sweep — keep it if you rename anything here).
#include "dist/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <set>
#include <utility>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cloudalloc::dist {
namespace {

TEST(JobSystem, NestedParallelForFromWorkerThread) {
  ThreadPool pool(4);
  // Outer tasks fan out again from inside the pool: the worker must help
  // run the inner batch instead of deadlocking or CHECK-failing.
  std::vector<std::atomic<int>> hits(32 * 16);
  pool.parallel_for(32, [&](int outer) {
    pool.parallel_for(16, [&](int inner) {
      ++hits[static_cast<std::size_t>(outer * 16 + inner)];
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(JobSystem, DeeplyNestedFanOut) {
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  pool.parallel_for(4, [&](int) {
    pool.parallel_for(4, [&](int) {
      pool.parallel_for(4, [&](int) { ++leaves; });
    });
  });
  EXPECT_EQ(leaves.load(), 64);
}

TEST(JobSystem, ExceptionDrainsAllTasksAndRethrowsLowestIndex) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  // Two throwing slots; the contract is every task still runs and the
  // lowest-index exception wins regardless of execution order.
  try {
    pool.parallel_for(64, [&](int i) {
      ++ran;
      if (i == 5 || i == 40) throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 5");
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(JobSystem, ChunkedExceptionDrainsBeforeRethrow) {
  ThreadPool pool(3);
  std::atomic<int> covered{0};
  try {
    pool.parallel_for_chunked(100, 7, [&](int begin, int end) {
      covered += end - begin;
      if (begin == 21) throw std::runtime_error("boom");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(covered.load(), 100);
}

TEST(JobSystem, ShutdownDrainsPendingSubmits) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  // Queue far more tasks than workers, some slow, then shut down
  // immediately: every queued task must still run.
  for (int i = 0; i < 200; ++i) {
    pool.submit([&counter] {
      if (counter.load() % 50 == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++counter;
    });
  }
  pool.shutdown();
  EXPECT_EQ(counter.load(), 200);
}

TEST(JobSystem, StealHeavyStress) {
  ThreadPool pool(4);
  // Wildly unbalanced task costs force constant stealing; the sum checks
  // exactly-once execution under contention.
  constexpr int kTasks = 2000;
  std::atomic<long long> sum{0};
  for (int round = 0; round < 5; ++round) {
    sum = 0;
    pool.parallel_for(kTasks, [&](int i) {
      if (i % 97 == 0) {
        volatile long long spin = 0;
        for (int k = 0; k < 20000; ++k) spin = spin + k;
      }
      sum += i;
    });
    EXPECT_EQ(sum.load(), static_cast<long long>(kTasks) * (kTasks - 1) / 2);
  }
}

TEST(JobSystem, ConcurrentFanOutsFromExternalThreads) {
  ThreadPool pool(3);
  // Independent batches from several external threads share the pool; each
  // batch's barrier must only wait for its own tasks.
  std::vector<std::thread> callers;
  std::atomic<int> total{0};
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&pool, &total] {
      for (int round = 0; round < 10; ++round)
        pool.parallel_for(50, [&total](int) { ++total; });
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), 4 * 10 * 50);
}

TEST(JobSystem, ChunkBoundariesIndependentOfWorkerCount) {
  // The determinism contract: (n, grain) fully determines the chunk set.
  const auto boundaries = [](int workers, int n, int grain) {
    ThreadPool pool(workers);
    std::mutex m;
    std::set<std::pair<int, int>> chunks;
    pool.parallel_for_chunked(n, grain, [&](int begin, int end) {
      std::lock_guard<std::mutex> lock(m);
      chunks.insert({begin, end});
    });
    return chunks;
  };
  const auto expect = boundaries(1, 1003, 16);
  EXPECT_EQ(boundaries(2, 1003, 16), expect);
  EXPECT_EQ(boundaries(4, 1003, 16), expect);
  EXPECT_EQ(boundaries(8, 1003, 16), expect);
  // Exact coverage with a short last chunk.
  int covered = 0;
  int max_end = 0;
  for (const auto& [b, e] : expect) {
    covered += e - b;
    max_end = std::max(max_end, e);
  }
  EXPECT_EQ(covered, 1003);
  EXPECT_EQ(max_end, 1003);
}

TEST(JobSystem, SharedPoolIsReusedPerWorkerCount) {
  ThreadPool& a = ThreadPool::shared(3);
  ThreadPool& b = ThreadPool::shared(3);
  ThreadPool& c = ThreadPool::shared(2);
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  EXPECT_EQ(a.num_workers(), 3);
  EXPECT_EQ(c.num_workers(), 2);
  std::atomic<int> n{0};
  a.parallel_for(100, [&n](int) { ++n; });
  EXPECT_EQ(n.load(), 100);
}

TEST(JobSystem, SubmitFromWorkerThreadCompletes) {
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  std::mutex m;
  std::vector<std::future<void>> futures;
  // Workers may submit follow-up jobs but must not block on them (a
  // parked worker cannot help drain); the caller joins the futures.
  pool.parallel_for(8, [&](int) {
    auto f = pool.submit([&inner] { ++inner; });
    std::lock_guard<std::mutex> lock(m);
    futures.push_back(std::move(f));
  });
  for (auto& f : futures) f.get();
  EXPECT_EQ(inner.load(), 8);
}

}  // namespace
}  // namespace cloudalloc::dist
