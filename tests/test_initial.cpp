#include "alloc/initial.h"

#include <gtest/gtest.h>

#include "model/evaluator.h"
#include "model/feasibility.h"
#include "workload/scenario.h"

namespace cloudalloc::alloc {
namespace {

using model::Allocation;

TEST(GreedyInsert, AllClientsAssignedWhenCapacityAmple) {
  const auto cloud = workload::make_tiny_scenario(4);
  AllocatorOptions opts;
  std::vector<model::ClientId> order{model::ClientId{0}, model::ClientId{1},
                                     model::ClientId{2}, model::ClientId{3}};
  const Allocation alloc = greedy_insert(Allocation(cloud), order, opts);
  for (model::ClientId i : cloud.client_ids())
    EXPECT_TRUE(alloc.is_assigned(i));
  EXPECT_TRUE(model::is_feasible(alloc));
  EXPECT_GT(model::profit(alloc), 0.0);
}

TEST(GreedyInsert, OrderChangesOutcomeButNotFeasibility) {
  workload::ScenarioParams params;
  params.num_clients = 30;
  params.servers_per_cluster = 5;
  const auto cloud = workload::make_scenario(params, 11);
  AllocatorOptions opts;
  std::vector<model::ClientId> fwd, rev;
  for (model::ClientId i : cloud.client_ids()) fwd.push_back(i);
  rev.assign(fwd.rbegin(), fwd.rend());
  const Allocation a = greedy_insert(Allocation(cloud), fwd, opts);
  const Allocation b = greedy_insert(Allocation(cloud), rev, opts);
  EXPECT_TRUE(model::is_feasible(a));
  EXPECT_TRUE(model::is_feasible(b));
}

TEST(BuildInitialSolution, PicksBestOfMultiStart) {
  workload::ScenarioParams params;
  params.num_clients = 25;
  params.servers_per_cluster = 6;
  const auto cloud = workload::make_scenario(params, 5);

  AllocatorOptions one;
  one.num_initial_solutions = 1;
  AllocatorOptions many;
  many.num_initial_solutions = 6;

  // Multi-start with the same seed sees the single-start's order first,
  // so it can only do better or equal.
  Rng rng_one(9), rng_many(9);
  const double p_one =
      model::profit(build_initial_solution(cloud, one, rng_one));
  const double p_many =
      model::profit(build_initial_solution(cloud, many, rng_many));
  EXPECT_GE(p_many, p_one - 1e-9);
}

TEST(BuildInitialSolution, DeterministicGivenSeed) {
  workload::ScenarioParams params;
  params.num_clients = 15;
  const auto cloud = workload::make_scenario(params, 5);
  AllocatorOptions opts;
  Rng r1(3), r2(3);
  const double p1 = model::profit(build_initial_solution(cloud, opts, r1));
  const double p2 = model::profit(build_initial_solution(cloud, opts, r2));
  EXPECT_DOUBLE_EQ(p1, p2);
}

TEST(BuildFromAssignment, HonorsTheGivenClusters) {
  const auto cloud = workload::make_tiny_scenario(4);
  AllocatorOptions opts;
  const std::vector<model::ClusterId> assignment{
      model::ClusterId{0}, model::ClusterId{1}, model::ClusterId{0},
      model::ClusterId{1}};
  const Allocation alloc = build_from_assignment(cloud, assignment, opts);
  for (int i_raw = 0; i_raw < 4; ++i_raw) {
    const model::ClientId i{i_raw};
    if (!alloc.is_assigned(i)) continue;
    EXPECT_EQ(alloc.cluster_of(i), assignment[i.index()]);
  }
  EXPECT_TRUE(model::is_feasible(alloc));
}

TEST(BuildFromAssignment, SkipsNoCluster) {
  const auto cloud = workload::make_tiny_scenario(2);
  AllocatorOptions opts;
  const std::vector<model::ClusterId> assignment{model::kNoCluster,
                                                 model::ClusterId{1}};
  const Allocation alloc = build_from_assignment(cloud, assignment, opts);
  EXPECT_FALSE(alloc.is_assigned(model::ClientId{0}));
  EXPECT_TRUE(alloc.is_assigned(model::ClientId{1}));
}

TEST(BuildFromAssignment, OverloadLeavesSomeUnassigned) {
  workload::ScenarioParams params;
  params.num_clients = 40;
  const auto cloud = workload::make_overloaded_scenario(params, 21, 4.0);
  AllocatorOptions opts;
  std::vector<model::ClusterId> all_zero(40, model::ClusterId{0});
  const Allocation alloc = build_from_assignment(cloud, all_zero, opts);
  int unassigned = 0;
  for (model::ClientId i : cloud.client_ids())
    if (!alloc.is_assigned(i)) ++unassigned;
  EXPECT_GT(unassigned, 0);
  EXPECT_TRUE(model::is_feasible(alloc));
}

}  // namespace
}  // namespace cloudalloc::alloc
