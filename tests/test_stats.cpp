#include "common/stats.h"

#include <gtest/gtest.h>

namespace cloudalloc {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

// The n < 2 guard: with fewer than two samples there is no sample
// variance, so both it and the CI half-width must be exactly 0 — never
// NaN — because replication merges feed them straight into reports.
TEST(Summary, VarianceAndCiGuardFewerThanTwoSamples) {
  Summary none;
  EXPECT_DOUBLE_EQ(none.variance(), 0.0);
  EXPECT_DOUBLE_EQ(none.ci95_halfwidth(), 0.0);
  Summary one;
  one.add(7.25);
  EXPECT_DOUBLE_EQ(one.variance(), 0.0);
  EXPECT_DOUBLE_EQ(one.ci95_halfwidth(), 0.0);
  Summary two;
  two.add(1.0);
  two.add(3.0);
  EXPECT_GT(two.ci95_halfwidth(), 0.0);
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, CiShrinksWithSamples) {
  Summary small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 2);
  for (int i = 0; i < 1000; ++i) large.add(i % 2);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Summary, NegativeValues) {
  Summary s;
  s.add(-5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(MeanOf, EmptyAndBasic) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
}

TEST(Quantile, MedianOfOdd) {
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Quantile, Extremes) {
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 1.0), 3.0);
}

TEST(Quantile, Interpolates) {
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.25), 2.5);
}

}  // namespace
}  // namespace cloudalloc
