#include "opt/dp.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace cloudalloc::opt {
namespace {

// Exhaustive reference for small (J, G).
double brute_best(const std::vector<std::vector<double>>& scores, int G) {
  const std::size_t J = scores.size();
  std::vector<int> g(J, 0);
  double best = kDpInfeasible;
  for (;;) {
    int total = 0;
    for (int v : g) total += v;
    if (total == G) {
      double s = 0.0;
      bool ok = true;
      for (std::size_t j = 0; j < J; ++j) {
        if (scores[j][static_cast<std::size_t>(g[j])] <= kDpInfeasible) {
          ok = false;
          break;
        }
        s += scores[j][static_cast<std::size_t>(g[j])];
      }
      if (ok && s > best) best = s;
    }
    std::size_t pos = 0;
    while (pos < J) {
      if (++g[pos] <= G) break;
      g[pos] = 0;
      ++pos;
    }
    if (pos == J) break;
  }
  return best;
}

TEST(Dp, SingleServerTakesAll) {
  const std::vector<std::vector<double>> scores{{0.0, 1.0, 3.0, 4.0}};
  const auto result = dp_distribute(scores, 3);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->quanta, std::vector<int>({3}));
  EXPECT_DOUBLE_EQ(result->score, 4.0);
}

TEST(Dp, PrefersConcentrationWhenSuperadditive) {
  // Concave per-server? No: strictly better to give one server everything.
  const std::vector<std::vector<double>> scores{{0.0, 1.0, 5.0},
                                                {0.0, 1.0, 5.0}};
  const auto result = dp_distribute(scores, 2);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->score, 5.0);
}

TEST(Dp, SplitsWhenSubadditive) {
  const std::vector<std::vector<double>> scores{{0.0, 3.0, 4.0},
                                                {0.0, 3.0, 4.0}};
  const auto result = dp_distribute(scores, 2);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->quanta, std::vector<int>({1, 1}));
  EXPECT_DOUBLE_EQ(result->score, 6.0);
}

TEST(Dp, HonorsInfeasibleMarks) {
  // Server 0 cannot take 2 quanta; the only way to place G=2 is 1+1.
  const std::vector<std::vector<double>> scores{{0.0, 1.0, kDpInfeasible},
                                                {0.0, 1.0, 10.0}};
  const auto result = dp_distribute(scores, 2);
  ASSERT_TRUE(result.has_value());
  // 0+2 on server 1 scores 10, 1+1 scores 2: DP must pick 10.
  EXPECT_EQ(result->quanta, std::vector<int>({0, 2}));
}

TEST(Dp, InfeasibleWhenNothingFits) {
  const std::vector<std::vector<double>> scores{
      {0.0, kDpInfeasible, kDpInfeasible}};
  EXPECT_FALSE(dp_distribute(scores, 2).has_value());
}

TEST(Dp, NegativeScoresStillFeasible) {
  const std::vector<std::vector<double>> scores{{0.0, -5.0, -8.0},
                                                {0.0, -4.0, -9.0}};
  const auto result = dp_distribute(scores, 2);
  ASSERT_TRUE(result.has_value());
  // Options: (2,0) = -8, (1,1) = -9, (0,2) = -9; best is -8.
  EXPECT_DOUBLE_EQ(result->score, -8.0);
  EXPECT_EQ(result->quanta, std::vector<int>({2, 0}));
}

TEST(Dp, QuantaAlwaysSumToG) {
  Rng rng(555);
  for (int trial = 0; trial < 30; ++trial) {
    const int J = static_cast<int>(rng.uniform_int(1, 5));
    const int G = static_cast<int>(rng.uniform_int(1, 6));
    std::vector<std::vector<double>> scores(
        static_cast<std::size_t>(J),
        std::vector<double>(static_cast<std::size_t>(G) + 1, 0.0));
    for (auto& row : scores)
      for (std::size_t g = 1; g < row.size(); ++g)
        row[g] = rng.bernoulli(0.15) ? kDpInfeasible : rng.uniform(-3.0, 3.0);
    const auto result = dp_distribute(scores, G);
    const double brute = brute_best(scores, G);
    if (!result) {
      EXPECT_LE(brute, kDpInfeasible);
      continue;
    }
    int total = 0;
    for (int g : result->quanta) total += g;
    EXPECT_EQ(total, G);
    EXPECT_NEAR(result->score, brute, 1e-9);
  }
}

}  // namespace
}  // namespace cloudalloc::opt
