// Randomized robustness ("fuzz-lite") suites: feed the parser and the
// allocation state machine large volumes of random input and assert the
// strong invariants — no crashes, no aggregate drift, clean rejections.
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "alloc/adjust_dispersion.h"
#include "alloc/adjust_shares.h"
#include "alloc/assign_distribute.h"
#include "alloc/reassign.h"
#include "alloc/server_power.h"
#include "common/json.h"
#include "common/rng.h"
#include "model/evaluator.h"
#include "model/feasibility.h"
#include "model/serialize.h"
#include "workload/scenario.h"

namespace cloudalloc {
namespace {

TEST(JsonFuzz, RandomBytesNeverCrash) {
  Rng rng(4242);
  for (int trial = 0; trial < 2000; ++trial) {
    const int len = static_cast<int>(rng.uniform_int(0, 64));
    std::string input;
    for (int i = 0; i < len; ++i)
      input += static_cast<char>(rng.uniform_int(1, 255));
    std::string error;
    const auto doc = Json::parse(input, &error);
    if (!doc) {
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(JsonFuzz, RandomJsonLikeTokensNeverCrash) {
  Rng rng(999);
  const char* tokens[] = {"{", "}", "[", "]", ",",    ":",    "\"a\"",
                          "1", "-", "e", "true", "null", "\\"};
  for (int trial = 0; trial < 2000; ++trial) {
    std::string input;
    const int len = static_cast<int>(rng.uniform_int(1, 24));
    for (int i = 0; i < len; ++i)
      input += tokens[rng.index(std::size(tokens))];
    (void)Json::parse(input);
  }
}

TEST(JsonFuzz, GeneratedDocumentsAlwaysRoundTrip) {
  Rng rng(7777);
  // Random document generator, depth-bounded.
  std::function<Json(int)> gen = [&](int depth) -> Json {
    const int kind = static_cast<int>(rng.uniform_int(0, depth <= 0 ? 3 : 5));
    switch (kind) {
      case 0:
        return Json(nullptr);
      case 1:
        return Json(rng.bernoulli(0.5));
      case 2:
        return Json(rng.uniform(-1e6, 1e6));
      case 3: {
        std::string s;
        const int len = static_cast<int>(rng.uniform_int(0, 12));
        for (int i = 0; i < len; ++i)
          s += static_cast<char>(rng.uniform_int(32, 126));
        return Json(std::move(s));
      }
      case 4: {
        JsonArray arr;
        const int len = static_cast<int>(rng.uniform_int(0, 5));
        for (int i = 0; i < len; ++i) arr.push_back(gen(depth - 1));
        return Json(std::move(arr));
      }
      default: {
        JsonObject obj;
        const int len = static_cast<int>(rng.uniform_int(0, 5));
        for (int i = 0; i < len; ++i)
          obj.emplace("k" + std::to_string(i), gen(depth - 1));
        return Json(std::move(obj));
      }
    }
  };
  for (int trial = 0; trial < 300; ++trial) {
    const Json doc = gen(4);
    const auto reparsed = Json::parse(doc.dump(trial % 3 == 0 ? 2 : -1));
    ASSERT_TRUE(reparsed.has_value());
    EXPECT_EQ(reparsed->dump(), doc.dump());
  }
}

TEST(SerializeFuzz, CorruptedCloudDocumentsRejectCleanly) {
  const auto cloud = workload::make_tiny_scenario(3);
  const std::string text = model::cloud_to_json(cloud).dump();
  Rng rng(31337);
  int parsed_ok = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string corrupted = text;
    // Flip a few characters.
    const int flips = static_cast<int>(rng.uniform_int(1, 4));
    for (int f = 0; f < flips; ++f)
      corrupted[rng.index(corrupted.size())] =
          static_cast<char>(rng.uniform_int(32, 126));
    const auto doc = Json::parse(corrupted);
    if (!doc) continue;  // parse-level rejection: fine
    std::string error;
    // Schema-level rejection or success are both fine; death is not.
    // Note: value corruption that stays schema-valid may legitimately
    // produce a different cloud — only domain violations would CHECK, and
    // those only happen for out-of-domain numbers, so restrict flips to
    // printable chars (above) that usually break parsing first.
    const auto restored = model::cloud_from_json(*doc, &error);
    if (restored) ++parsed_ok;
  }
  // Some corruptions must have survived parsing across 400 trials;
  // the test's value is that none of them crashed.
  SUCCEED() << parsed_ok << " corrupted docs still deserialized";
}

TEST(AllocationFuzz, HeavyChurnKeepsAuditClean) {
  const auto cloud = workload::make_tiny_scenario(6);
  model::Allocation alloc(cloud);
  Rng rng(1717);
  for (int step = 0; step < 2000; ++step) {
    const auto i =
        static_cast<model::ClientId>(rng.index(
            static_cast<std::size_t>(cloud.num_clients())));
    if (alloc.is_assigned(i)) alloc.clear(i);
    if (rng.bernoulli(0.3)) continue;
    const auto k = model::ClusterId{static_cast<int>(rng.uniform_int(0, 1))};
    const auto& servers = cloud.cluster(k).servers;
    // Single- or two-server placements with conservative shares.
    if (rng.bernoulli(0.7)) {
      alloc.assign(i, k,
                   {model::Placement{servers[rng.index(servers.size())], 1.0,
                                     rng.uniform(0.0, 0.2),
                                     rng.uniform(0.0, 0.2)}});
    } else {
      alloc.assign(i, k,
                   {model::Placement{servers[0], 0.5, rng.uniform(0.0, 0.2),
                                     rng.uniform(0.0, 0.2)},
                    model::Placement{servers[1], 0.5, rng.uniform(0.0, 0.2),
                                     rng.uniform(0.0, 0.2)}});
    }
  }
  // The audit recomputes everything from scratch; only share/disk/load
  // bookkeeping errors would surface here (stability is not asserted: the
  // random shares are intentionally sloppy).
  for (model::ServerId j : cloud.server_ids()) {
    EXPECT_GE(alloc.used_phi_p(j), -1e-9);
    EXPECT_GE(alloc.used_disk(j), -1e-9);
  }
  const auto snapshot = alloc.clone();
  for (model::ClientId i : cloud.client_ids()) {
    EXPECT_EQ(snapshot.is_assigned(i), alloc.is_assigned(i));
    if (alloc.is_assigned(i)) alloc.clear(i);
  }
  // After clearing everyone, aggregates must return exactly to zero.
  for (model::ServerId j : cloud.server_ids()) {
    EXPECT_DOUBLE_EQ(alloc.used_phi_p(j), 0.0);
    EXPECT_DOUBLE_EQ(alloc.used_phi_n(j), 0.0);
    EXPECT_DOUBLE_EQ(alloc.used_disk(j), 0.0);
    EXPECT_DOUBLE_EQ(alloc.proc_load(j), 0.0);
  }
}

// Every parallel reduction in the allocator trusts the incremental
// model::profit() cache: per-start profits in the multi-start argmax, the
// before/after commit tests in the reassign apply phase. This fuzz drives
// the cache through randomized assign/clear/adjust sequences and asserts
// it always agrees with the from-scratch evaluate() oracle.
TEST(ProfitCacheFuzz, IncrementalMatchesScratchUnderRandomizedPasses) {
  workload::ScenarioParams params;
  params.num_clients = 14;
  params.servers_per_cluster = 4;
  const auto cloud = workload::make_scenario(params, 424242);
  alloc::AllocatorOptions opts;
  model::Allocation alloc(cloud);
  Rng rng(31415);

  const auto expect_cache_agrees = [&](int step) {
    const double incremental = model::profit(alloc);
    const double scratch = model::evaluate(alloc).profit;
    EXPECT_NEAR(incremental, scratch,
                1e-9 * std::max(1.0, std::fabs(scratch)))
        << "step " << step;
  };

  for (int step = 0; step < 400; ++step) {
    const auto action = rng.index(6);
    const auto i = static_cast<model::ClientId>(
        rng.index(static_cast<std::size_t>(cloud.num_clients())));
    switch (action) {
      case 0: {  // greedy (re)assign via the real insertion machinery
        if (alloc.is_assigned(i)) alloc.clear(i);
        auto plan = alloc::best_insertion(alloc, i, opts);
        if (plan) alloc.assign(i, plan->cluster, std::move(plan->placements));
        break;
      }
      case 1:
        if (alloc.is_assigned(i)) alloc.clear(i);
        break;
      case 2:
        alloc::adjust_all_shares(alloc, opts);
        break;
      case 3:
        alloc::adjust_all_dispersions(alloc, opts);
        break;
      case 4:
        alloc::adjust_server_power(alloc, opts);
        break;
      default:
        alloc::reassign_pass_snapshot(alloc, opts);
        break;
    }
    if (step % 7 == 0) expect_cache_agrees(step);
  }
  expect_cache_agrees(-1);
}

}  // namespace
}  // namespace cloudalloc
