#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "epoch/controller.h"
#include "workload/trace.h"
#include "epoch/predictor.h"
#include "model/feasibility.h"
#include "workload/scenario.h"

namespace cloudalloc::epoch {
namespace {

TEST(EwmaPredictor, ReturnsPriorBeforeObservations) {
  EwmaPredictor p(0.5, 2.0);
  EXPECT_DOUBLE_EQ(p.predict(), 2.0);
}

TEST(EwmaPredictor, FirstObservationSeeds) {
  EwmaPredictor p(0.5, 2.0);
  p.observe(6.0);
  EXPECT_DOUBLE_EQ(p.predict(), 6.0);
}

TEST(EwmaPredictor, ConvergesToConstantSignal) {
  EwmaPredictor p(0.3, 1.0);
  for (int i = 0; i < 50; ++i) p.observe(4.0);
  EXPECT_NEAR(p.predict(), 4.0, 1e-6);
}

TEST(EwmaPredictor, SmoothsNoise) {
  EwmaPredictor p(0.2, 1.0);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) p.observe(3.0 + rng.uniform(-1.0, 1.0));
  EXPECT_NEAR(p.predict(), 3.0, 0.3);
}

TEST(EwmaPredictor, CloneIsIndependent) {
  EwmaPredictor p(0.5, 1.0);
  p.observe(2.0);
  auto clone = p.clone();
  p.observe(10.0);
  EXPECT_DOUBLE_EQ(clone->predict(), 2.0);
  EXPECT_GT(p.predict(), 2.0);
}

TEST(SlidingMeanPredictor, AveragesWindow) {
  SlidingMeanPredictor p(3, 1.0);
  EXPECT_DOUBLE_EQ(p.predict(), 1.0);  // prior
  p.observe(1.0);
  p.observe(2.0);
  p.observe(3.0);
  EXPECT_DOUBLE_EQ(p.predict(), 2.0);
  p.observe(6.0);  // evicts the 1.0
  EXPECT_NEAR(p.predict(), 11.0 / 3.0, 1e-12);
}

TEST(SlidingMeanPredictor, WindowOfOneTracksLastValue) {
  SlidingMeanPredictor p(1, 1.0);
  p.observe(5.0);
  EXPECT_DOUBLE_EQ(p.predict(), 5.0);
  p.observe(2.0);
  EXPECT_DOUBLE_EQ(p.predict(), 2.0);
}

TEST(HoltPredictor, AnticipatesLinearRamp) {
  HoltPredictor holt(0.6, 0.4, 1.0);
  EwmaPredictor ewma(0.6, 1.0);
  double signal = 1.0;
  for (int i = 0; i < 40; ++i) {
    signal += 0.2;
    holt.observe(signal);
    ewma.observe(signal);
  }
  const double next = signal + 0.2;
  // Holt must beat plain EWMA on a ramp.
  EXPECT_LT(std::fabs(holt.predict() - next),
            std::fabs(ewma.predict() - next));
}

TEST(HoltPredictor, StableOnConstantSignal) {
  HoltPredictor p(0.5, 0.5, 1.0);
  for (int i = 0; i < 30; ++i) p.observe(2.5);
  EXPECT_NEAR(p.predict(), 2.5, 1e-6);
}

TEST(Predictors, SanitizeHelpersClampIntoTheLegalDomain) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(sanitize_observation(3.0, 7.0), 3.0);
  EXPECT_DOUBLE_EQ(sanitize_observation(-2.0, 7.0), 0.0);
  EXPECT_DOUBLE_EQ(sanitize_observation(nan, 7.0), 7.0);
  EXPECT_DOUBLE_EQ(sanitize_observation(inf, 7.0), 7.0);
  EXPECT_DOUBLE_EQ(sanitize_observation(-inf, 7.0), 7.0);
  EXPECT_DOUBLE_EQ(clamp_prediction(4.0), 4.0);
  EXPECT_DOUBLE_EQ(clamp_prediction(0.0), 1e-6);
  EXPECT_DOUBLE_EQ(clamp_prediction(-3.0), 1e-6);
  EXPECT_DOUBLE_EQ(clamp_prediction(nan), 1e-6);
  EXPECT_DOUBLE_EQ(clamp_prediction(inf), 1e-6);
}

TEST(Predictors, NonFiniteObservationsLeaveTheForecastOnTrack) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();

  EwmaPredictor ewma(0.5, 2.0);
  ewma.observe(4.0);
  const double before = ewma.predict();
  ewma.observe(nan);
  ewma.observe(inf);
  EXPECT_DOUBLE_EQ(ewma.predict(), before);

  SlidingMeanPredictor mean(3, 1.0);
  mean.observe(2.0);
  mean.observe(4.0);
  const double mean_before = mean.predict();
  mean.observe(nan);
  EXPECT_DOUBLE_EQ(mean.predict(), mean_before);

  HoltPredictor holt(0.5, 0.5, 1.0);
  holt.observe(3.0);
  holt.observe(3.5);
  holt.observe(inf);
  EXPECT_TRUE(std::isfinite(holt.predict()));
  EXPECT_GT(holt.predict(), 0.0);
}

TEST(Predictors, NegativeObservationsClampToZero) {
  // A meter can read nothing, not less than nothing: -5 is treated as 0,
  // and the prediction floor keeps the output strictly positive.
  EwmaPredictor ewma(1.0, 1.0);
  ewma.observe(-5.0);
  EXPECT_DOUBLE_EQ(ewma.predict(), 1e-6);
  SlidingMeanPredictor mean(2, 1.0);
  mean.observe(-3.0);
  mean.observe(6.0);
  EXPECT_DOUBLE_EQ(mean.predict(), 3.0);  // (0 + 6) / 2
}

TEST(PredictorBankTest, SeedsCloneAndPredictsPerClient) {
  const std::vector<double> seeds = {1.0, 2.0, 3.0};
  PredictorBank bank(EwmaPredictor(0.5, 9.0), seeds);
  ASSERT_EQ(bank.size(), 3);
  for (int i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(bank.predict(i), seeds[static_cast<std::size_t>(i)]);
  bank.observe(1, 4.0);  // only client 1 moves
  EXPECT_DOUBLE_EQ(bank.predict(0), 1.0);
  EXPECT_DOUBLE_EQ(bank.predict(1), 3.0);  // 0.5*4 + 0.5*2
  EXPECT_DOUBLE_EQ(bank.predict(2), 3.0);
}

TEST(PredictorBankTest, MeanDriftMatchesTheHandComputation) {
  PredictorBank bank(EwmaPredictor(1.0, 1.0), {2.0, 4.0});
  bank.observe_all({3.0, 2.0});  // predictions become 3 and 2
  // drift = (|3-2|/2 + |2-4|/4) / 2 = (0.5 + 0.5) / 2
  EXPECT_NEAR(bank.mean_drift({2.0, 4.0}), 0.5, 1e-12);
}

TEST(Predictors, NeverPredictNonPositive) {
  EwmaPredictor e(0.9, 1.0);
  e.observe(0.0);
  EXPECT_GT(e.predict(), 0.0);
  SlidingMeanPredictor s(2, 1.0);
  s.observe(0.0);
  s.observe(0.0);
  EXPECT_GT(s.predict(), 0.0);
  HoltPredictor h(0.9, 0.9, 1.0);
  h.observe(5.0);
  h.observe(0.0);
  h.observe(0.0);
  EXPECT_GT(h.predict(), 0.0);
}

class ControllerTest : public ::testing::Test {
 protected:
  static model::Cloud make_cloud() {
    workload::ScenarioParams params;
    params.num_clients = 20;
    params.servers_per_cluster = 6;
    return workload::make_scenario(params, 99);
  }
};

TEST_F(ControllerTest, StartProducesFeasibleAllocation) {
  Controller controller(make_cloud(), EwmaPredictor(0.5, 1.0));
  const auto report = controller.start();
  EXPECT_TRUE(report.cold_start);
  EXPECT_GT(report.profit, 0.0);
  EXPECT_TRUE(model::is_feasible(controller.allocation()));
}

TEST_F(ControllerTest, SmallDriftWarmStarts) {
  Controller controller(make_cloud(), EwmaPredictor(0.5, 1.0));
  controller.start();
  // Observed rates ~= contracted rates: tiny drift.
  std::vector<double> observed;
  for (const auto& c : controller.cloud().clients())
    observed.push_back(c.lambda_pred * 1.02);
  const auto report = controller.step(observed);
  EXPECT_FALSE(report.cold_start);
  EXPECT_LT(report.mean_drift, 0.1);
  EXPECT_TRUE(model::is_feasible(controller.allocation()));
  EXPECT_GT(report.profit, 0.0);
}

TEST_F(ControllerTest, LargeDriftForcesColdRestart) {
  ControllerOptions opts;
  opts.cold_restart_drift = 0.3;
  Controller controller(make_cloud(), EwmaPredictor(1.0, 1.0), opts);
  controller.start();
  std::vector<double> observed;
  for (const auto& c : controller.cloud().clients())
    observed.push_back(c.lambda_pred * 2.5);  // demand explosion
  const auto report = controller.step(observed);
  EXPECT_TRUE(report.cold_start);
  EXPECT_GT(report.mean_drift, 0.3);
  EXPECT_TRUE(model::is_feasible(controller.allocation()));
}

TEST_F(ControllerTest, PredictionsUpdateTheCloud) {
  Controller controller(make_cloud(), EwmaPredictor(1.0, 1.0));
  controller.start();
  std::vector<double> observed(20, 1.7);
  controller.step(observed);
  // alpha = 1 EWMA: predictions equal the observation exactly.
  for (const auto& c : controller.cloud().clients())
    EXPECT_NEAR(c.lambda_pred, 1.7, 1e-9);
  // Contracts are untouched.
  const auto base = make_cloud();
  for (model::ClientId i : base.client_ids())
    EXPECT_DOUBLE_EQ(controller.cloud().client(i).lambda_agreed,
                     base.client(i).lambda_agreed);
}

TEST_F(ControllerTest, DrivesAFullTraceEndToEnd) {
  // Integration with the workload trace generator: diurnal + spikes.
  const auto cloud = make_cloud();
  workload::TraceParams trace_params;
  trace_params.epochs = 6;
  trace_params.amplitude = 0.35;
  trace_params.spike_probability = 0.05;
  const auto trace = workload::make_rate_trace(cloud, trace_params, 55);

  Controller controller(cloud, HoltPredictor(0.6, 0.3, 1.0));
  controller.start();
  for (const auto& observed : trace) {
    const auto report = controller.step(observed);
    EXPECT_GT(report.profit, 0.0);
    ASSERT_TRUE(model::is_feasible(controller.allocation()));
  }
  EXPECT_EQ(controller.history().size(),
            static_cast<std::size_t>(trace_params.epochs) + 1);
  // At least one epoch should have warm-started under this gentle trace.
  int warm = 0;
  for (const auto& r : controller.history())
    if (!r.cold_start) ++warm;
  EXPECT_GT(warm, 0);
}

TEST_F(ControllerTest, SurvivesCorruptObservations) {
  // Prediction-error injection: a broken meter reports NaN, a counter
  // glitch reports negative, an overflow reports +inf. None of it may
  // reach the optimizer — predictions stay finite-positive, the epoch
  // completes, and the allocation stays feasible.
  Controller controller(make_cloud(), EwmaPredictor(0.5, 1.0));
  controller.start();
  std::vector<double> observed(20, 1.0);
  observed[3] = std::numeric_limits<double>::quiet_NaN();
  observed[7] = -4.0;
  observed[11] = std::numeric_limits<double>::infinity();
  const auto report = controller.step(observed);
  EXPECT_TRUE(std::isfinite(report.mean_drift));
  for (const auto& c : controller.cloud().clients()) {
    EXPECT_TRUE(std::isfinite(c.lambda_pred));
    EXPECT_GT(c.lambda_pred, 0.0);
  }
  EXPECT_TRUE(model::is_feasible(controller.allocation()));
}

TEST_F(ControllerTest, DecisionsArePinnedUnderSeededDrift) {
  // Two controllers over the same seeded drifting trace must make the
  // same cold/warm decisions and land on bitwise-equal profits — the
  // controller is a pure function of its observations.
  const auto cloud = make_cloud();
  workload::TraceParams trace_params;
  trace_params.epochs = 6;
  trace_params.amplitude = 0.5;
  trace_params.noise = 0.15;
  trace_params.spike_probability = 0.1;
  const auto trace = workload::make_rate_trace(cloud, trace_params, 202);

  Controller a(make_cloud(), HoltPredictor(0.6, 0.3, 1.0));
  Controller b(make_cloud(), HoltPredictor(0.6, 0.3, 1.0));
  a.start();
  b.start();
  int cold = 0, warm = 0;
  for (const auto& observed : trace) {
    const auto ra = a.step(observed);
    const auto rb = b.step(observed);
    EXPECT_EQ(ra.cold_start, rb.cold_start);
    EXPECT_EQ(ra.mean_drift, rb.mean_drift);  // bitwise
    EXPECT_EQ(ra.profit, rb.profit);          // bitwise
    EXPECT_EQ(ra.transplant_dropped, rb.transplant_dropped);
    (ra.cold_start ? cold : warm) += 1;
  }
  // The swinging trace must exercise BOTH controller branches, or this
  // pin proves less than it claims.
  EXPECT_GT(cold, 0);
  EXPECT_GT(warm, 0);
}

TEST_F(ControllerTest, MultiEpochRunStaysFeasibleAndRecorded) {
  Controller controller(make_cloud(), HoltPredictor(0.5, 0.3, 1.0));
  controller.start();
  Rng rng(123);
  for (int epoch = 1; epoch <= 4; ++epoch) {
    std::vector<double> observed;
    for (const auto& c : controller.cloud().clients())
      observed.push_back(
          std::max(0.1, c.lambda_agreed * rng.uniform(0.8, 1.2)));
    const auto report = controller.step(observed);
    EXPECT_EQ(report.epoch, epoch);
    ASSERT_TRUE(model::is_feasible(controller.allocation()));
  }
  EXPECT_EQ(controller.history().size(), 5u);
}

}  // namespace
}  // namespace cloudalloc::epoch
