// Shard-count determinism of the sharded greedy (alloc/sharded.h): every
// plan in a block is priced against the frozen block snapshot, so the
// resulting allocation must be bit-identical at ANY shard count and
// thread count, with pruning on or off. Also covered: the cluster_fanout
// probe window is a pure function of the client id, and sharded results
// stay feasible.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "alloc/allocator.h"
#include "alloc/initial.h"
#include "alloc/sharded.h"
#include "common/rng.h"
#include "model/evaluator.h"
#include "model/feasibility.h"
#include "workload/scenario.h"

namespace cloudalloc::alloc {
namespace {

model::Cloud make_cloud(int clients, std::uint64_t seed) {
  workload::ScenarioParams params;
  params.num_clients = clients;
  params.servers_per_cluster = 10;
  return workload::make_scenario(params, seed);
}

std::vector<model::ClientId> shuffled_order(const model::Cloud& cloud,
                                            std::uint64_t seed) {
  std::vector<model::ClientId> order;
  for (model::ClientId i : cloud.client_ids()) order.push_back(i);
  Rng rng(seed);
  rng.shuffle(order);
  return order;
}

void expect_identical(const model::Allocation& a, const model::Allocation& b) {
  const auto& cloud = a.cloud();
  for (model::ClientId i : cloud.client_ids()) {
    ASSERT_EQ(a.is_assigned(i), b.is_assigned(i)) << "client " << i;
    if (!a.is_assigned(i)) continue;
    EXPECT_EQ(a.cluster_of(i), b.cluster_of(i));
    const auto& pa = a.placements(i);
    const auto& pb = b.placements(i);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t s = 0; s < pa.size(); ++s) {
      EXPECT_EQ(pa[s].server, pb[s].server);
      EXPECT_DOUBLE_EQ(pa[s].psi, pb[s].psi);
      EXPECT_DOUBLE_EQ(pa[s].phi_p, pb[s].phi_p);
      EXPECT_DOUBLE_EQ(pa[s].phi_n, pb[s].phi_n);
    }
  }
}

// The core contract: one greedy pass, same order, shard counts 1/2/4/8,
// pruning on and off — six runs, one allocation.
TEST(ShardedGreedy, BitIdenticalAcrossShardCountsAndPruning) {
  const auto cloud = make_cloud(90, 11);
  const auto order = shuffled_order(cloud, 7);

  AllocatorOptions base_opts;
  base_opts.num_shards = 1;
  const model::Allocation base =
      sharded_greedy_insert(model::Allocation(cloud), order, base_opts);
  const double base_profit = model::profit(base);
  EXPECT_GT(base_profit, 0.0);

  for (int shards : {1, 2, 4, 8}) {
    for (int topk : {10, 0}) {  // 0 disables candidate pruning entirely
      AllocatorOptions opts;
      opts.num_shards = shards;
      opts.candidate_topk = topk;
      const model::Allocation run =
          sharded_greedy_insert(model::Allocation(cloud), order, opts);
      EXPECT_DOUBLE_EQ(model::profit(run), base_profit)
          << "shards " << shards << " topk " << topk;
      expect_identical(base, run);
    }
  }
}

// End to end: the full allocator (multi-start + local search) in sharded
// mode is a pure function of the scenario at any shard/thread count.
TEST(ShardedGreedy, FullAllocatorBitIdenticalAcrossShardsAndThreads) {
  const auto cloud = make_cloud(60, 13);
  AllocatorOptions opts;
  opts.seed = 5;
  opts.num_initial_solutions = 2;
  opts.max_local_search_rounds = 3;
  opts.num_shards = 1;
  opts.num_threads = 1;
  const auto base = ResourceAllocator(opts).run(cloud);

  for (int shards : {2, 4, 8}) {
    for (int threads : {1, 2}) {
      AllocatorOptions sopts = opts;
      sopts.num_shards = shards;
      sopts.num_threads = threads;
      const auto run = ResourceAllocator(sopts).run(cloud);
      EXPECT_DOUBLE_EQ(run.report.final_profit, base.report.final_profit)
          << "shards " << shards << " threads " << threads;
      expect_identical(base.allocation, run.allocation);
    }
  }
}

TEST(ShardedGreedy, ProducesFeasibleAllocation) {
  const auto cloud = make_cloud(70, 17);
  const auto order = shuffled_order(cloud, 3);
  AllocatorOptions opts;
  opts.num_shards = 4;
  const model::Allocation alloc =
      sharded_greedy_insert(model::Allocation(cloud), order, opts);
  const auto violations = model::check_feasibility(alloc);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front().describe());
}

TEST(ShardedGreedy, EmptyOrderIsANoOp) {
  const auto cloud = make_cloud(10, 19);
  AllocatorOptions opts;
  opts.num_shards = 4;
  const model::Allocation alloc =
      sharded_greedy_insert(model::Allocation(cloud), {}, opts);
  for (model::ClientId i : cloud.client_ids())
    EXPECT_FALSE(alloc.is_assigned(i));
}

// cluster_fanout restricts probing but stays deterministic and feasible:
// same options, two runs, identical allocations; the window never probes
// the same client into different clusters across shard counts.
TEST(ClusterFanout, DeterministicAndFeasible) {
  workload::ScenarioParams params;
  params.num_clients = 80;
  params.num_clusters = 10;
  params.servers_per_cluster = 6;
  const auto cloud = workload::make_scenario(params, 23);
  const auto order = shuffled_order(cloud, 5);

  AllocatorOptions opts;
  opts.num_shards = 1;
  opts.cluster_fanout = 3;
  const model::Allocation a =
      sharded_greedy_insert(model::Allocation(cloud), order, opts);
  EXPECT_TRUE(model::is_feasible(a));
  EXPECT_GT(model::profit(a), 0.0);

  for (int shards : {2, 8}) {
    AllocatorOptions sopts = opts;
    sopts.num_shards = shards;
    const model::Allocation b =
        sharded_greedy_insert(model::Allocation(cloud), order, sopts);
    expect_identical(a, b);
  }
}

}  // namespace
}  // namespace cloudalloc::alloc
