// End-to-end flows across modules: scenario -> heuristic -> audit ->
// discrete-event validation, epoch warm starts, and the experiment-level
// orderings the paper's figures rely on.
#include <cmath>

#include <gtest/gtest.h>

#include "alloc/allocator.h"
#include "baselines/monte_carlo.h"
#include "baselines/proportional_share.h"
#include "dist/manager.h"
#include "model/evaluator.h"
#include "model/feasibility.h"
#include "sim/runner.h"
#include "workload/scenario.h"

namespace cloudalloc {
namespace {

TEST(Integration, FullPipelineOnPaperScenario) {
  workload::ScenarioParams params;
  params.num_clients = 40;
  params.servers_per_cluster = 10;
  const auto cloud = workload::make_scenario(params, 71);

  alloc::ResourceAllocator allocator;
  const auto result = allocator.run(cloud);
  ASSERT_TRUE(model::is_feasible(result.allocation));

  const auto breakdown = model::evaluate(result.allocation);
  EXPECT_GT(breakdown.revenue, breakdown.cost);
  EXPECT_GT(breakdown.active_servers, 0);
  EXPECT_LT(breakdown.active_servers, cloud.num_servers());

  // The analytic response times the optimizer used must be reproduced by
  // the discrete-event simulator.
  sim::SimOptions sopts;
  sopts.horizon = 400.0;
  const auto sim_report = sim::simulate_allocation(result.allocation, sopts);
  EXPECT_LT(sim_report.mean_abs_rel_error, 0.25);
}

TEST(Integration, Figure4OrderingHolds) {
  // proposed >= MC-best * 0.9ish and PS clearly below proposed, per the
  // shape of Figure 4 (exact factors vary per scenario).
  workload::ScenarioParams params;
  params.num_clients = 40;
  params.servers_per_cluster = 10;
  const auto cloud = workload::make_scenario(params, 73);

  const auto ours = alloc::ResourceAllocator().run(cloud);
  const auto ps =
      baselines::proportional_share_allocate(cloud, baselines::PsOptions{});
  baselines::MonteCarloOptions mc;
  mc.samples = 20;
  const auto best = baselines::monte_carlo_search(cloud, mc, 73);

  EXPECT_GT(ours.report.final_profit, ps.profit);
  EXPECT_GE(ours.report.final_profit, 0.75 * best.best_profit);
}

TEST(Integration, Figure5OrderingHolds) {
  workload::ScenarioParams params;
  params.num_clients = 30;
  params.servers_per_cluster = 8;
  const auto cloud = workload::make_scenario(params, 79);
  baselines::MonteCarloOptions mc;
  mc.samples = 15;
  const auto result = baselines::monte_carlo_search(cloud, mc, 79);
  // Worst random start is far below its polished version, which is below
  // the best found.
  EXPECT_LT(result.worst_initial_profit, result.worst_polished_profit);
  EXPECT_LE(result.worst_polished_profit, result.best_profit);
}

TEST(Integration, EpochWarmStartPreservesFeasibility) {
  workload::ScenarioParams params;
  params.num_clients = 30;
  params.servers_per_cluster = 8;
  const auto cloud = workload::make_scenario(params, 83);

  alloc::ResourceAllocator allocator;
  auto epoch1 = allocator.run(cloud);
  const double p1 = epoch1.report.final_profit;

  // Epoch 2: demand shifted; reuse epoch-1 allocation as the warm start.
  // (Same cloud object here — the shift is emulated by re-improving.)
  auto epoch2 = allocator.improve(std::move(epoch1.allocation));
  EXPECT_TRUE(model::is_feasible(epoch2.allocation));
  EXPECT_GE(epoch2.report.final_profit, p1 - 1e-6);
}

TEST(Integration, DistributedAndSequentialBothFeasibleAndClose) {
  workload::ScenarioParams params;
  params.num_clients = 25;
  params.servers_per_cluster = 6;
  const auto cloud = workload::make_scenario(params, 89);
  alloc::AllocatorOptions opts;
  opts.max_local_search_rounds = 6;

  const auto seq = alloc::ResourceAllocator(opts).run(cloud);
  const auto dist = dist::DistributedAllocator(opts).run(cloud);
  EXPECT_TRUE(model::is_feasible(seq.allocation));
  EXPECT_TRUE(model::is_feasible(dist.allocation));
  EXPECT_NEAR(dist.report.final_profit, seq.report.final_profit,
              0.08 * std::fabs(seq.report.final_profit));
}

TEST(Integration, OverloadedCloudDegradesGracefully) {
  workload::ScenarioParams params;
  params.num_clients = 60;
  const auto cloud = workload::make_overloaded_scenario(params, 97, 5.0);
  const auto result = alloc::ResourceAllocator().run(cloud);
  ASSERT_TRUE(model::is_feasible(result.allocation));
  EXPECT_GT(result.report.unassigned_clients, 0);
  // Served clients still have stable queues (finite response times).
  for (model::ClientId i : cloud.client_ids()) {
    if (result.allocation.is_assigned(i)) {
      EXPECT_TRUE(std::isfinite(result.allocation.response_time(i)));
    }
  }
}

class IntegrationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntegrationSweep, HeuristicDominatesPsAcrossScenarios) {
  workload::ScenarioParams params;
  params.num_clients = 30;
  params.servers_per_cluster = 8;
  const auto cloud = workload::make_scenario(params, GetParam());
  const auto ours = alloc::ResourceAllocator().run(cloud);
  const auto ps =
      baselines::proportional_share_allocate(cloud, baselines::PsOptions{});
  EXPECT_GE(ours.report.final_profit, ps.profit)
      << "scenario seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegrationSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace cloudalloc
