#include "alloc/server_power.h"

#include <gtest/gtest.h>

#include "alloc/initial.h"
#include "common/rng.h"
#include "model/evaluator.h"
#include "model/feasibility.h"
#include "workload/scenario.h"

namespace cloudalloc::alloc {
namespace {

using model::Allocation;
using model::Placement;

TEST(TurnOff, ConsolidatesWastefulSpread) {
  const auto cloud = workload::make_tiny_scenario(2);
  AllocatorOptions opts;
  Allocation alloc(cloud);
  // Two tiny clients on two separate servers of cluster 0: paying two
  // fixed costs where one server would do.
  alloc.assign(model::ClientId{0}, model::ClusterId{0}, {Placement{model::ServerId{0}, 1.0, 0.35, 0.35}});
  alloc.assign(model::ClientId{1}, model::ClusterId{0}, {Placement{model::ServerId{1}, 1.0, 0.35, 0.35}});
  const double before = model::profit(alloc);
  const int active_before = alloc.num_active_servers();
  const double delta = turn_off_servers(alloc, model::ClusterId{0}, opts);
  EXPECT_GE(delta, 0.0);
  EXPECT_GE(model::profit(alloc), before - 1e-9);
  EXPECT_LE(alloc.num_active_servers(), active_before);
  EXPECT_TRUE(model::is_feasible(alloc));
  // Both clients must still be served.
  EXPECT_TRUE(alloc.is_assigned(model::ClientId{0}));
  EXPECT_TRUE(alloc.is_assigned(model::ClientId{1}));
}

TEST(TurnOff, LeavesNecessaryServersAlone) {
  const auto cloud = workload::make_tiny_scenario(8);
  AllocatorOptions opts;
  Allocation alloc(cloud);
  // Clients 6 (lambda 4.0, alpha_p 0.8) and 7 (lambda 4.5, alpha_p 0.85):
  // their combined load exceeds even the large server's capacity, so no
  // single server of cluster 0 can host both — consolidation must fail.
  alloc.assign(model::ClientId{6}, model::ClusterId{0}, {Placement{model::ServerId{0}, 1.0, 0.9, 0.9}});
  alloc.assign(model::ClientId{7}, model::ClusterId{0}, {Placement{model::ServerId{1}, 1.0, 0.9, 0.9}});
  turn_off_servers(alloc, model::ClusterId{0}, opts);
  EXPECT_TRUE(alloc.is_assigned(model::ClientId{6}));
  EXPECT_TRUE(alloc.is_assigned(model::ClientId{7}));
  EXPECT_EQ(alloc.num_active_servers(), 2);
}

TEST(TurnOn, HelpsDegradedClients) {
  const auto cloud = workload::make_tiny_scenario(3);
  AllocatorOptions opts;
  Allocation alloc(cloud);
  // Cram three clients onto one server with slim shares: they are all
  // degraded, and an idle server (id 1) is available.
  alloc.assign(model::ClientId{0}, model::ClusterId{0}, {Placement{model::ServerId{0}, 1.0, 0.20, 0.20}});
  alloc.assign(model::ClientId{1}, model::ClusterId{0}, {Placement{model::ServerId{0}, 1.0, 0.30, 0.30}});
  alloc.assign(model::ClientId{2}, model::ClusterId{0}, {Placement{model::ServerId{0}, 1.0, 0.45, 0.45}});
  const double before = model::profit(alloc);
  const double delta = turn_on_servers(alloc, model::ClusterId{0}, opts);
  EXPECT_GE(delta, 0.0);
  EXPECT_GE(model::profit(alloc), before - 1e-9);
  EXPECT_TRUE(model::is_feasible(alloc));
}

TEST(TurnOn, NoOpWhenEveryoneHappy) {
  const auto cloud = workload::make_tiny_scenario(1);
  AllocatorOptions opts;
  Allocation alloc(cloud);
  alloc.assign(model::ClientId{0}, model::ClusterId{0}, {Placement{model::ServerId{1}, 1.0, 0.9, 0.9}});  // lavish shares
  const double delta = turn_on_servers(alloc, model::ClusterId{0}, opts);
  EXPECT_DOUBLE_EQ(delta, 0.0);
}

TEST(AdjustServerPower, MonotoneAcrossClusters) {
  workload::ScenarioParams params;
  params.num_clients = 30;
  params.servers_per_cluster = 6;
  const auto cloud = workload::make_scenario(params, 31);
  AllocatorOptions opts;
  Rng rng(31);
  Allocation alloc = build_initial_solution(cloud, opts, rng);
  const double before = model::profit(alloc);
  const double delta = adjust_server_power(alloc, opts);
  EXPECT_GE(delta, -1e-9);
  EXPECT_GE(model::profit(alloc), before - 1e-9);
  EXPECT_TRUE(model::is_feasible(alloc));
}

class ServerPowerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ServerPowerProperty, NeverLosesClientsOrFeasibility) {
  workload::ScenarioParams params;
  params.num_clients = 24;
  params.servers_per_cluster = 5;
  const auto cloud = workload::make_scenario(params, GetParam());
  AllocatorOptions opts;
  Rng rng(GetParam());
  Allocation alloc = build_initial_solution(cloud, opts, rng);
  int assigned_before = 0;
  for (model::ClientId i : cloud.client_ids())
    if (alloc.is_assigned(i)) ++assigned_before;
  adjust_server_power(alloc, opts);
  int assigned_after = 0;
  for (model::ClientId i : cloud.client_ids())
    if (alloc.is_assigned(i)) ++assigned_after;
  EXPECT_GE(assigned_after, assigned_before);
  EXPECT_TRUE(model::is_feasible(alloc));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServerPowerProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace cloudalloc::alloc
