// SIMD-vs-scalar contracts of the lane-dispatched kernels (common/simd.h):
// every kernel must produce BITWISE-identical outputs at lane widths 1, 4
// and 8 (the kernels are pure elementwise IEEE chains compiled with
// -ffp-contract=off), and must match the historical scalar helpers they
// replaced operation-for-operation. Also covered: the hierarchical
// (bucketed) candidate index reproduces the exact full candidate order
// after arbitrary churn, and the batched free-disk screen agrees with the
// scalar filter on every server.
//
// Width sweeps use simd::override_width_for_test; on hardware without
// AVX2/AVX-512 the override clamps down and the sweep degenerates to the
// scalar path (trivially passing — the contract is about machines that DO
// have the wide paths).
#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "alloc/initial.h"
#include "alloc/options.h"
#include "alloc/share_policy.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "common/simd.h"
#include "model/residual.h"
#include "queueing/batch.h"
#include "queueing/gps.h"
#include "queueing/mm1.h"
#include "workload/scenario.h"

namespace cloudalloc {
namespace {

using alloc::AllocatorOptions;
using units::ArrivalRate;
using units::Share;
using units::Time;
using units::Work;
using units::WorkRate;

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Widths to sweep: always 1; 4 and 8 where the CPU supports them.
std::vector<int> sweep_widths() {
  std::vector<int> widths{1};
  if (simd::max_supported_width() >= 4) widths.push_back(4);
  if (simd::max_supported_width() >= 8) widths.push_back(8);
  return widths;
}

struct WidthRestorer {
  ~WidthRestorer() {
    simd::override_width_for_test(simd::max_supported_width());
  }
};

TEST(SimdKernels, QueueingKernelsBitwiseIdenticalAcrossWidths) {
  WidthRestorer restore;
  Rng rng(41);
  const std::size_t n = 137;  // odd: exercises the vector body AND the tail
  std::vector<Share> phi(n);
  std::vector<ArrivalRate> lambda(n), mu_ref(n);
  for (std::size_t i = 0; i < n; ++i) {
    phi[i] = Share{rng.uniform()};
    // Mix stable, critically loaded and unstable queues, plus a few
    // negative arrivals (the kernels blend them to +inf like the scalar
    // or_inf forms).
    lambda[i] = ArrivalRate{rng.uniform() * 4.0 - 0.5};
  }
  const WorkRate cap{3.7};
  const Work alpha{0.6};

  std::vector<std::vector<ArrivalRate>> mus;
  std::vector<std::vector<Time>> resp, two;
  for (int w : sweep_widths()) {
    simd::override_width_for_test(w);
    std::vector<ArrivalRate> mu(n);
    queueing::gps_service_rates(phi.data(), cap, alpha, mu.data(), n);
    std::vector<Time> r(n), t(n);
    queueing::mm1_response_times(lambda.data(), mu.data(), r.data(), n);
    queueing::two_stage_delays(lambda.data(), mu.data(), mu.data(), t.data(),
                               n);
    mus.push_back(std::move(mu));
    resp.push_back(std::move(r));
    two.push_back(std::move(t));
  }
  for (std::size_t w = 1; w < mus.size(); ++w) {
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(bits_equal(mus[0][i].value(), mus[w][i].value()))
          << "gps width sweep " << w << " element " << i;
      EXPECT_TRUE(bits_equal(resp[0][i].value(), resp[w][i].value()))
          << "mm1 width sweep " << w << " element " << i;
      EXPECT_TRUE(bits_equal(two[0][i].value(), two[w][i].value()))
          << "two-stage width sweep " << w << " element " << i;
    }
  }
  // Width-1 output equals the historical scalar helpers bit for bit.
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(bits_equal(
        mus[0][i].value(),
        queueing::gps_service_rate(phi[i], cap, alpha).value()));
    EXPECT_TRUE(
        bits_equal(resp[0][i].value(),
                   lambda[i].value() >= 0.0
                       ? queueing::mm1_response_time_or_inf(lambda[i],
                                                            mus[0][i])
                             .value()
                       : std::numeric_limits<double>::infinity()));
  }
}

/// The historical per-g scalar chain of Assign_Distribute's share sizing
/// (gps_min_share -> preferred_share -> clamp), as it was before the
/// batched grid replaced it.
std::optional<double> ref_size_share(ArrivalRate arrivals, double psi,
                                     WorkRate cap, Work alpha, Time zc,
                                     WorkRate slack_work,
                                     const AllocatorOptions& opts,
                                     double free_share) {
  const Share floor_share = queueing::gps_min_share(
      arrivals, cap, alpha, ArrivalRate{opts.stability_headroom});
  if (floor_share.value() > free_share + kEps) return std::nullopt;
  const Share share =
      alloc::preferred_share(arrivals, psi, cap, alpha, zc, slack_work, opts);
  return clamp(share.value(), floor_share.value(), free_share);
}

TEST(SimdKernels, ShareGridMatchesHistoricalScalarChainAtEveryWidth) {
  WidthRestorer restore;
  Rng rng(43);
  AllocatorOptions opts;
  for (int trial = 0; trial < 200; ++trial) {
    const int G = std::array<int, 4>{1, 4, 10, 23}[trial % 4];
    const ArrivalRate lambda{0.1 + rng.uniform() * 5.0};
    const WorkRate cap{2.0 + rng.uniform() * 4.0};
    const Work alpha{0.4 + rng.uniform() * 0.6};
    const WorkRate slack{0.1 + rng.uniform() * 2.0};
    const Time zc{trial % 3 == 0 ? std::numeric_limits<double>::infinity()
                                 : 0.5 + rng.uniform() * 9.5};
    const double free_share = rng.uniform();

    // Reference: the historical loop, stopping at the first infeasible g.
    std::vector<double> ref_phi(static_cast<std::size_t>(G) + 1);
    int ref_gmax = 0;
    for (int g = 1; g <= G; ++g) {
      const double psi = static_cast<double>(g) / static_cast<double>(G);
      const ArrivalRate arrivals = psi * lambda;
      const auto phi = ref_size_share(arrivals, psi, cap, alpha, zc, slack,
                                      opts, free_share);
      if (!phi) break;
      ref_phi[static_cast<std::size_t>(g)] = *phi;
      ref_gmax = g;
    }

    std::vector<ArrivalRate> arr(static_cast<std::size_t>(G) + 1);
    std::vector<Share> phi(static_cast<std::size_t>(G) + 1);
    for (int w : sweep_widths()) {
      simd::override_width_for_test(w);
      const int gmax = alloc::size_share_grid(lambda, G, cap, alpha, zc,
                                              slack, opts, free_share,
                                              arr.data(), phi.data());
      ASSERT_EQ(gmax, ref_gmax) << "trial " << trial << " width " << w;
      for (int g = 1; g <= gmax; ++g) {
        const auto gg = static_cast<std::size_t>(g);
        const double psi = static_cast<double>(g) / static_cast<double>(G);
        EXPECT_TRUE(bits_equal(arr[gg].value(), (psi * lambda).value()));
        EXPECT_TRUE(bits_equal(phi[gg].value(), ref_phi[gg]))
            << "trial " << trial << " width " << w << " g " << g;
      }
    }
  }
}

// --- hierarchical candidate index ---------------------------------------

model::Allocation churned_allocation(const model::Cloud& cloud,
                                     std::uint64_t seed) {
  std::vector<model::ClientId> order;
  for (model::ClientId i : cloud.client_ids()) order.push_back(i);
  Rng rng(seed);
  rng.shuffle(order);
  return alloc::greedy_insert(model::Allocation(cloud), order, {});
}

/// Brute-force reference: the exact candidate comparator over the view's
/// CURRENT residual state.
std::vector<model::ServerId> ref_order(const model::ResidualView& view,
                                       model::ClusterId k) {
  struct Key {
    double rate;
    double marg;
    model::ServerId id;
  };
  const auto& cloud = view.cloud();
  std::vector<Key> keys;
  for (model::ServerId j : cloud.cluster(k).servers) {
    const auto& sc = cloud.server_class_of(j);
    keys.push_back(Key{view.free_phi_p(j) * sc.cap_p, sc.marginal_cost(), j});
  }
  std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    if (a.rate != b.rate) return a.rate > b.rate;
    if (a.marg != b.marg) return a.marg < b.marg;
    return a.id > b.id;
  });
  std::vector<model::ServerId> order;
  for (const Key& key : keys) order.push_back(key.id);
  return order;
}

TEST(HierarchicalIndex, ReproducesExactOrderAfterChurn) {
  workload::ScenarioParams params;
  params.num_clients = 60;
  params.servers_per_cluster = 20;
  const auto cloud = workload::make_scenario(params, 29);
  const auto base = churned_allocation(cloud, 31);
  model::ResidualView view(base);

  // Fresh build matches the Allocation's settled order and the brute
  // reference.
  for (model::ClusterId k : cloud.cluster_ids()) {
    EXPECT_EQ(view.insertion_candidates(k), base.insertion_candidates(k));
    EXPECT_EQ(view.insertion_candidates(k), ref_order(view, k));
  }

  // Churn: vacate and re-add clients (dirtying servers through every
  // mutation path), then expect the incrementally maintained index to
  // still reproduce the exact order.
  Rng rng(37);
  model::ResidualView::Undo undo;
  for (int round = 0; round < 50; ++round) {
    const model::ClientId i{static_cast<int>(rng() % static_cast<std::uint64_t>(
        cloud.num_clients()))};
    if (!base.is_assigned(i)) continue;
    view.remove_client(i, base.placements(i), &undo);
    if (round % 3 == 0) {
      view.restore(undo);  // exact rollback also re-dirties
    } else {
      view.add_client(i, base.placements(i));
    }
    if (round % 7 == 0) {
      for (model::ClusterId k : cloud.cluster_ids())
        EXPECT_EQ(view.insertion_candidates(k), ref_order(view, k))
            << "round " << round;
    }
  }
  for (model::ClusterId k : cloud.cluster_ids())
    EXPECT_EQ(view.insertion_candidates(k), ref_order(view, k));
}

TEST(HierarchicalIndex, OrderedPrefixIsAPrefixOfTheFullOrder) {
  workload::ScenarioParams params;
  params.num_clients = 40;
  params.servers_per_cluster = 25;
  const auto cloud = workload::make_scenario(params, 47);
  const auto base = churned_allocation(cloud, 53);
  model::ResidualView view(base);

  for (model::ClusterId k : cloud.cluster_ids()) {
    const std::size_t m = cloud.cluster(k).servers.size();
    for (std::size_t n : {std::size_t{1}, std::size_t{3}, m / 2, m, m + 10}) {
      // Copy: growing the prefix (or a later full-order query) reuses the
      // same backing vector.
      const std::vector<model::ServerId> pre = view.ordered_prefix(k, n);
      ASSERT_GE(pre.size(), std::min(n, m));
      const std::vector<model::ServerId> full = view.insertion_candidates(k);
      ASSERT_EQ(full.size(), m);
      for (std::size_t idx = 0; idx < pre.size(); ++idx)
        EXPECT_EQ(pre[idx], full[idx]) << "n " << n << " idx " << idx;
    }
  }

  // A copied view drops the index and lazily rebuilds the same order.
  model::ResidualView copy = view;
  for (model::ClusterId k : cloud.cluster_ids())
    EXPECT_EQ(copy.insertion_candidates(k), view.insertion_candidates(k));
}

TEST(HierarchicalIndex, DiskScreenMatchesScalarFilter) {
  WidthRestorer restore;
  workload::ScenarioParams params;
  params.num_clients = 50;
  params.servers_per_cluster = 13;  // odd: vector body + tail
  const auto cloud = workload::make_scenario(params, 59);
  const auto base = churned_allocation(cloud, 61);
  model::ResidualView view(base);

  Rng rng(67);
  std::vector<std::uint8_t> ok;
  for (int w : sweep_widths()) {
    simd::override_width_for_test(w);
    for (model::ClusterId k : cloud.cluster_ids()) {
      const auto& servers = cloud.cluster(k).servers;
      for (int trial = 0; trial < 8; ++trial) {
        // Sweep needs across the free-disk range, including exact residual
        // values (the comparison boundary).
        const double need =
            trial < 4 ? rng.uniform() * 3.0
                      : view.free_disk(servers[static_cast<std::size_t>(
                            rng() % servers.size())]);
        ASSERT_TRUE(view.screen_free_disk(k, need, kEps, ok))
            << "generator no longer emits contiguous clusters";
        ASSERT_EQ(ok.size(), servers.size());
        for (std::size_t idx = 0; idx < servers.size(); ++idx) {
          const bool scalar = !(view.free_disk(servers[idx]) + kEps < need);
          EXPECT_EQ(ok[idx] != 0, scalar)
              << "width " << w << " cluster " << k << " idx " << idx;
        }
      }
    }
  }
}

}  // namespace
}  // namespace cloudalloc
