#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "alloc/allocator.h"
#include "alloc/initial.h"
#include "common/rng.h"
#include "dist/cluster_agent.h"
#include "dist/mailbox.h"
#include "dist/manager.h"
#include "dist/thread_pool.h"
#include "model/evaluator.h"
#include "model/feasibility.h"
#include "workload/scenario.h"

namespace cloudalloc::dist {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.parallel_for(50, [&hits](int i) { ++hits[static_cast<std::size_t>(i)]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, DestructorDrains) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) pool.submit([&counter] { ++counter; }).get();
  }
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, ShutdownDrainsQueuedWorkAndIsIdempotent) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.num_workers(), 2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
  pool.shutdown();
  EXPECT_EQ(counter.load(), 50);
  pool.shutdown();  // second call is a no-op
  EXPECT_EQ(pool.num_workers(), 0);
}

TEST(ThreadPool, ParallelForChunkedCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(103);
  pool.parallel_for_chunked(103, 16, [&hits](int begin, int end) {
    for (int i = begin; i < end; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForDrainsAllTasksBeforeRethrowing) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  bool threw = false;
  try {
    pool.parallel_for(64, [&completed](int i) {
      if (i == 5) throw std::runtime_error("task 5 failed");
      ++completed;
    });
  } catch (const std::runtime_error& e) {
    threw = true;
    EXPECT_STREQ(e.what(), "task 5 failed");
  }
  EXPECT_TRUE(threw);
  // The drain guarantee: when the exception reaches the caller, every
  // other task has already finished touching the shared captures.
  EXPECT_EQ(completed.load(), 63);
}

TEST(Mailbox, FifoDelivery) {
  Mailbox<int> box;
  box.send(1);
  box.send(2);
  box.send(3);
  EXPECT_EQ(box.receive(), 1);
  EXPECT_EQ(box.receive(), 2);
  EXPECT_EQ(box.receive(), 3);
  EXPECT_EQ(box.messages_sent(), 3u);
}

TEST(Mailbox, CloseWakesReceivers) {
  Mailbox<int> box;
  std::thread receiver([&box] { EXPECT_FALSE(box.receive().has_value()); });
  box.close();
  receiver.join();
  EXPECT_FALSE(box.send(1));
}

TEST(Mailbox, CrossThreadDelivery) {
  Mailbox<std::string> box;
  std::thread sender([&box] {
    for (int i = 0; i < 100; ++i) box.send("msg" + std::to_string(i));
  });
  std::set<std::string> got;
  for (int i = 0; i < 100; ++i) {
    auto m = box.receive();
    ASSERT_TRUE(m.has_value());
    got.insert(*m);
  }
  sender.join();
  EXPECT_EQ(got.size(), 100u);
}

TEST(ClusterAgent, EvaluatesOnlyItsCluster) {
  const auto cloud = workload::make_tiny_scenario(2);
  alloc::AllocatorOptions opts;
  model::Allocation snapshot(cloud);
  ClusterAgent agent(model::ClusterId{1}, opts);
  const auto plan = agent.evaluate_insertion(snapshot, model::ClientId{0});
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->cluster, model::ClusterId{1});
  for (const auto& p : plan->placements)
    EXPECT_EQ(cloud.server(p.server).cluster, model::ClusterId{1});
}

TEST(ClusterAgent, ImproveOnlyTouchesItsClients) {
  workload::ScenarioParams params;
  params.num_clients = 20;
  params.servers_per_cluster = 5;
  const auto cloud = workload::make_scenario(params, 51);
  alloc::AllocatorOptions opts;
  Rng rng(51);
  model::Allocation snapshot =
      alloc::build_initial_solution(cloud, opts, rng);
  ClusterAgent agent(model::ClusterId{0}, opts);
  const auto improvement = agent.improve(snapshot);
  EXPECT_EQ(improvement.cluster, model::ClusterId{0});
  EXPECT_GE(improvement.profit_delta, -1e-9);
  for (const auto& [i, placements] : improvement.placements) {
    EXPECT_EQ(snapshot.cluster_of(i), model::ClusterId{0});
    for (const auto& p : placements)
      EXPECT_EQ(cloud.server(p.server).cluster, model::ClusterId{0});
  }
}

TEST(DistributedAllocator, MatchesSequentialQuality) {
  workload::ScenarioParams params;
  params.num_clients = 30;
  params.servers_per_cluster = 6;
  const auto cloud = workload::make_scenario(params, 53);

  alloc::AllocatorOptions opts;
  opts.seed = 9;
  const auto sequential = alloc::ResourceAllocator(opts).run(cloud);
  const auto distributed =
      DistributedAllocator(DistributedOptions{opts}).run(cloud);

  EXPECT_TRUE(model::is_feasible(distributed.allocation));
  // Same machinery, same seed: results agree to small tolerance (the
  // distributed rounds interleave stages slightly differently).
  EXPECT_NEAR(distributed.report.final_profit,
              sequential.report.final_profit,
              0.05 * std::abs(sequential.report.final_profit));
  EXPECT_GT(distributed.report.messages, 0u);
}

TEST(DistributedAllocator, InitialGreedyIdenticalToSequential) {
  workload::ScenarioParams params;
  params.num_clients = 20;
  params.servers_per_cluster = 5;
  const auto cloud = workload::make_scenario(params, 59);
  alloc::AllocatorOptions opts;
  opts.seed = 4;
  opts.max_local_search_rounds = 0;  // isolate the greedy phase

  Rng rng(opts.seed);
  const auto seq = alloc::build_initial_solution(cloud, opts, rng);
  const auto dist = DistributedAllocator(DistributedOptions{opts}).run(cloud);
  EXPECT_NEAR(dist.report.initial_profit, model::profit(seq), 1e-9);
}

TEST(DistributedAllocator, FeasibleAcrossSeeds) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    workload::ScenarioParams params;
    params.num_clients = 20;
    params.servers_per_cluster = 5;
    const auto cloud = workload::make_scenario(params, seed);
    alloc::AllocatorOptions opts;
    opts.seed = seed;
    opts.max_local_search_rounds = 4;
    const auto result = DistributedAllocator(DistributedOptions{opts}).run(cloud);
    EXPECT_TRUE(model::is_feasible(result.allocation)) << "seed " << seed;
    EXPECT_GE(result.report.final_profit,
              result.report.initial_profit - 1e-9);
  }
}

}  // namespace
}  // namespace cloudalloc::dist
