#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "alloc/allocator.h"
#include "alloc/initial.h"
#include "common/rng.h"
#include "dist/cluster_agent.h"
#include "dist/manager.h"
#include "dist/thread_pool.h"
#include "model/evaluator.h"
#include "model/feasibility.h"
#include "workload/scenario.h"

namespace cloudalloc::dist {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.parallel_for(50, [&hits](int i) { ++hits[static_cast<std::size_t>(i)]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, DestructorDrains) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) pool.submit([&counter] { ++counter; }).get();
  }
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, ShutdownDrainsQueuedWorkAndIsIdempotent) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.num_workers(), 2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
  pool.shutdown();
  EXPECT_EQ(counter.load(), 50);
  pool.shutdown();  // second call is a no-op
  EXPECT_EQ(pool.num_workers(), 0);
}

TEST(ThreadPool, ParallelForChunkedCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(103);
  pool.parallel_for_chunked(103, 16, [&hits](int begin, int end) {
    for (int i = begin; i < end; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForDrainsAllTasksBeforeRethrowing) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  bool threw = false;
  try {
    pool.parallel_for(64, [&completed](int i) {
      if (i == 5) throw std::runtime_error("task 5 failed");
      ++completed;
    });
  } catch (const std::runtime_error& e) {
    threw = true;
    EXPECT_STREQ(e.what(), "task 5 failed");
  }
  EXPECT_TRUE(threw);
  // The drain guarantee: when the exception reaches the caller, every
  // other task has already finished touching the shared captures.
  EXPECT_EQ(completed.load(), 63);
}

TEST(ClusterAgent, EvaluatesOnlyItsCluster) {
  const auto cloud = workload::make_tiny_scenario(2);
  alloc::AllocatorOptions opts;
  model::Allocation snapshot(cloud);
  ClusterAgent agent(model::ClusterId{1}, opts);
  const auto plan = agent.evaluate_insertion(snapshot, model::ClientId{0});
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->cluster, model::ClusterId{1});
  for (const auto& p : plan->placements)
    EXPECT_EQ(cloud.server(p.server).cluster, model::ClusterId{1});
}

TEST(ClusterAgent, ImproveOnlyTouchesItsClients) {
  workload::ScenarioParams params;
  params.num_clients = 20;
  params.servers_per_cluster = 5;
  const auto cloud = workload::make_scenario(params, 51);
  alloc::AllocatorOptions opts;
  Rng rng(51);
  model::Allocation snapshot =
      alloc::build_initial_solution(cloud, opts, rng);
  ClusterAgent agent(model::ClusterId{0}, opts);
  const auto improvement = agent.improve(snapshot);
  EXPECT_EQ(improvement.cluster, model::ClusterId{0});
  EXPECT_GE(improvement.profit_delta, -1e-9);
  for (const auto& row : improvement.placements) {
    EXPECT_EQ(snapshot.cluster_of(row.client), model::ClusterId{0});
    for (const auto& p : row.placements)
      EXPECT_EQ(cloud.server(p.server).cluster, model::ClusterId{0});
  }
}

TEST(DistributedAllocator, MatchesSequentialQuality) {
  workload::ScenarioParams params;
  params.num_clients = 30;
  params.servers_per_cluster = 6;
  const auto cloud = workload::make_scenario(params, 53);

  alloc::AllocatorOptions opts;
  opts.seed = 9;
  const auto sequential = alloc::ResourceAllocator(opts).run(cloud);
  const auto distributed =
      DistributedAllocator(DistributedOptions{opts}).run(cloud);

  EXPECT_TRUE(model::is_feasible(distributed.allocation));
  // Same machinery, same seed: results agree to small tolerance (the
  // distributed rounds interleave stages slightly differently).
  EXPECT_NEAR(distributed.report.final_profit,
              sequential.report.final_profit,
              0.05 * std::abs(sequential.report.final_profit));
  EXPECT_GT(distributed.report.messages, 0u);
}

TEST(DistributedAllocator, InitialGreedyIdenticalToSequential) {
  workload::ScenarioParams params;
  params.num_clients = 20;
  params.servers_per_cluster = 5;
  const auto cloud = workload::make_scenario(params, 59);
  alloc::AllocatorOptions opts;
  opts.seed = 4;
  opts.max_local_search_rounds = 0;  // isolate the greedy phase

  Rng rng(opts.seed);
  const auto seq = alloc::build_initial_solution(cloud, opts, rng);
  const auto dist = DistributedAllocator(DistributedOptions{opts}).run(cloud);
  EXPECT_NEAR(dist.report.initial_profit, model::profit(seq), 1e-9);
}

TEST(DistributedAllocator, FeasibleAcrossSeeds) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    workload::ScenarioParams params;
    params.num_clients = 20;
    params.servers_per_cluster = 5;
    const auto cloud = workload::make_scenario(params, seed);
    alloc::AllocatorOptions opts;
    opts.seed = seed;
    opts.max_local_search_rounds = 4;
    const auto result = DistributedAllocator(DistributedOptions{opts}).run(cloud);
    EXPECT_TRUE(model::is_feasible(result.allocation)) << "seed " << seed;
    EXPECT_GE(result.report.final_profit,
              result.report.initial_profit - 1e-9);
  }
}

void expect_identical_allocations(const model::Allocation& a,
                                  const model::Allocation& b) {
  const auto& cloud = a.cloud();
  for (model::ClientId i : cloud.client_ids()) {
    ASSERT_EQ(a.is_assigned(i), b.is_assigned(i)) << "client " << i;
    if (!a.is_assigned(i)) continue;
    EXPECT_EQ(a.cluster_of(i), b.cluster_of(i));
    const auto& pa = a.placements(i);
    const auto& pb = b.placements(i);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t s = 0; s < pa.size(); ++s) {
      EXPECT_EQ(pa[s].server, pb[s].server);
      EXPECT_DOUBLE_EQ(pa[s].psi, pb[s].psi);
      EXPECT_DOUBLE_EQ(pa[s].phi_p, pb[s].phi_p);
      EXPECT_DOUBLE_EQ(pa[s].phi_n, pb[s].phi_n);
    }
  }
}

// Acceptance gate of the protocol rewrite: with a fault-free transport,
// the serialized message-passing deployment must be BIT-identical to the
// shared-memory deployment — same profits, same rounds, same placements —
// at every thread count. Everything that crosses the wire (doubles
// included) round-trips exactly, and both modes rebuild agent snapshots
// through protocol::rebuild_allocation.
TEST(DistributedAllocator, MessagePassingBitIdenticalToSharedMemory) {
  workload::ScenarioParams params;
  params.num_clients = 24;
  params.servers_per_cluster = 5;
  const auto cloud = workload::make_scenario(params, 77);
  for (int threads : {1, 4, 8}) {
    alloc::AllocatorOptions opts;
    opts.seed = 11;
    opts.max_local_search_rounds = 4;
    opts.num_threads = threads;

    DistributedOptions shared_opts{opts};
    shared_opts.mode = DistMode::kSharedMemory;
    DistributedOptions message_opts{opts};
    message_opts.mode = DistMode::kMessagePassing;

    const auto shared = DistributedAllocator(shared_opts).run(cloud);
    const auto message = DistributedAllocator(message_opts).run(cloud);

    EXPECT_DOUBLE_EQ(shared.report.initial_profit,
                     message.report.initial_profit)
        << "threads " << threads;
    EXPECT_DOUBLE_EQ(shared.report.final_profit, message.report.final_profit)
        << "threads " << threads;
    ASSERT_EQ(shared.report.round_profits.size(),
              message.report.round_profits.size())
        << "threads " << threads;
    for (std::size_t r = 0; r < shared.report.round_profits.size(); ++r)
      EXPECT_DOUBLE_EQ(shared.report.round_profits[r],
                       message.report.round_profits[r])
          << "threads " << threads << " round " << r;
    expect_identical_allocations(shared.allocation, message.allocation);
  }
}

// Regression for the epoch-deadline bug: DistributedAllocator::run used
// to ignore options.alloc.time_budget_ms entirely. A tiny budget must now
// truncate the improvement loop after round 1 (the deadline is checked
// between rounds, mirroring allocator.cpp's between-passes checks) while
// still returning the best completed checkpoint.
TEST(DistributedAllocator, TimeBudgetTruncatesAfterRoundOne) {
  workload::ScenarioParams params;
  params.num_clients = 20;
  params.servers_per_cluster = 5;
  const auto cloud = workload::make_scenario(params, 91);
  for (const DistMode mode :
       {DistMode::kMessagePassing, DistMode::kSharedMemory}) {
    alloc::AllocatorOptions opts;
    opts.seed = 6;
    opts.max_local_search_rounds = 12;
    opts.time_budget_ms = 1e-3;  // expires during round 1
    DistributedOptions dopts{opts};
    dopts.mode = mode;
    const auto result = DistributedAllocator(dopts).run(cloud);
    EXPECT_TRUE(result.report.truncated);
    EXPECT_EQ(result.report.rounds_run, 1);
    // The best checkpoint survives truncation: the returned allocation
    // realizes final_profit, which is the best seen so far.
    EXPECT_GE(result.report.final_profit,
              result.report.initial_profit - 1e-9);
    EXPECT_NEAR(model::profit(result.allocation), result.report.final_profit,
                1e-6 * std::max(1.0, std::fabs(result.report.final_profit)));
    EXPECT_TRUE(model::is_feasible(result.allocation));
  }
}

// An untruncated run must not set the flag.
TEST(DistributedAllocator, NoBudgetMeansNoTruncation) {
  workload::ScenarioParams params;
  params.num_clients = 15;
  params.servers_per_cluster = 4;
  const auto cloud = workload::make_scenario(params, 95);
  alloc::AllocatorOptions opts;
  opts.seed = 8;
  opts.max_local_search_rounds = 3;
  const auto result = DistributedAllocator(DistributedOptions{opts}).run(cloud);
  EXPECT_FALSE(result.report.truncated);
}

// Message accounting is real, not modeled: the transport's channel
// counters (Mailbox::messages_sent) are the single source of truth. The
// shared-memory mode sends nothing over a channel and must report zero.
TEST(DistributedAllocator, MessageAndByteCountsComeFromTheTransport) {
  workload::ScenarioParams params;
  params.num_clients = 15;
  params.servers_per_cluster = 4;
  const auto cloud = workload::make_scenario(params, 97);
  alloc::AllocatorOptions opts;
  opts.seed = 12;
  opts.max_local_search_rounds = 2;

  DistributedOptions message_opts{opts};
  const auto message = DistributedAllocator(message_opts).run(cloud);
  // Per completed round: K requests + K responses, plus K shutdowns.
  const auto K = static_cast<std::size_t>(cloud.num_clusters());
  const auto rounds = static_cast<std::size_t>(message.report.rounds_run);
  EXPECT_EQ(message.report.messages, 2 * K * rounds + K);
  EXPECT_GT(message.report.bytes, 0u);
  EXPECT_EQ(message.report.responses_missed, 0);
  EXPECT_EQ(message.report.stale_messages, 0u);

  DistributedOptions shared_opts{opts};
  shared_opts.mode = DistMode::kSharedMemory;
  const auto shared = DistributedAllocator(shared_opts).run(cloud);
  EXPECT_EQ(shared.report.messages, 0u);
  EXPECT_EQ(shared.report.bytes, 0u);
}

}  // namespace
}  // namespace cloudalloc::dist
