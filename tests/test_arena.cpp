#include "common/arena.h"

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace cloudalloc::common {
namespace {

bool aligned_to(const void* p, std::size_t align) {
  return (reinterpret_cast<std::uintptr_t>(p) & (align - 1)) == 0;
}

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  char* a = static_cast<char*>(arena.allocate(13, 1));
  double* d = static_cast<double*>(arena.allocate(sizeof(double), alignof(double)));
  char* b = static_cast<char*>(arena.allocate(40, 64));
  EXPECT_TRUE(aligned_to(d, alignof(double)));
  EXPECT_TRUE(aligned_to(b, 64));
  // Distinct live blocks never overlap: write patterns and read them back.
  std::memset(a, 0xaa, 13);
  *d = 1.5;
  std::memset(b, 0xbb, 40);
  for (int i = 0; i < 13; ++i) EXPECT_EQ(static_cast<unsigned char>(a[i]), 0xaa);
  EXPECT_EQ(*d, 1.5);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(static_cast<unsigned char>(b[i]), 0xbb);
}

TEST(Arena, ZeroByteAllocationReturnsUniquePointers) {
  Arena arena;
  void* a = arena.allocate(0);
  void* b = arena.allocate(0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(a, b);
}

TEST(Arena, ResetRecyclesPagesWithoutNewReservation) {
  Arena arena(1 << 10);
  // Force a multi-page chain, then verify the same footprint absorbs the
  // same traffic after reset() — steady state must not grow the arena.
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 200; ++i) arena.allocate(256, 16);
    if (round == 0) continue;
    arena.reset();
  }
  arena.reset();
  const std::size_t reserved = arena.bytes_reserved();
  EXPECT_GT(reserved, 0u);
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 200; ++i) arena.allocate(256, 16);
    arena.reset();
    EXPECT_EQ(arena.bytes_reserved(), reserved);
  }
  EXPECT_EQ(arena.bytes_used(), 0u);
}

TEST(Arena, OversizedRequestGetsItsOwnPage) {
  Arena arena(1 << 10);
  void* small = arena.allocate(64);
  void* big = arena.allocate(1 << 20);  // far larger than the bump page
  EXPECT_NE(small, nullptr);
  EXPECT_NE(big, nullptr);
  std::memset(big, 0xcd, 1 << 20);
  EXPECT_GE(arena.bytes_reserved(), std::size_t{1} << 20);
}

TEST(Arena, FrameRewindsExactlyWhenNoPageChained) {
  Arena arena;
  arena.allocate(64);  // settle the first page
  const std::size_t before = arena.bytes_used();
  {
    Arena::Frame frame(arena);
    arena.allocate(128);
    arena.allocate(32);
    EXPECT_GT(arena.bytes_used(), before);
  }
  EXPECT_EQ(arena.bytes_used(), before);
  // The rewound bytes are handed out again.
  void* again = arena.allocate(128);
  EXPECT_NE(again, nullptr);
}

TEST(Arena, MoveTransfersOwnership) {
  Arena arena;
  int* xs = arena.make_array<int>(100);
  for (int i = 0; i < 100; ++i) xs[i] = i;
  Arena stolen = std::move(arena);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(xs[i], i);
  EXPECT_GT(stolen.bytes_reserved(), 0u);
}

TEST(Arena, MakeArrayValueInitializes) {
  Arena arena;
  const int* xs = arena.make_array<int>(1000);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(xs[i], 0);
}

TEST(ArenaVector, PushBackGrowsAndKeepsContents) {
  Arena arena;
  ArenaVector<int> v(arena);
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), 1000u);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(v[static_cast<std::size_t>(i)], i);
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_GE(v.capacity(), 1000u);  // capacity survives clear()
}

TEST(ArenaVector, ResizeValueInitializesNewTail) {
  Arena arena;
  ArenaVector<int> v(arena);
  v.push_back(7);
  v.resize(10);
  ASSERT_EQ(v.size(), 10u);
  EXPECT_EQ(v[0], 7);
  for (std::size_t i = 1; i < 10; ++i) EXPECT_EQ(v[i], 0);
}

}  // namespace
}  // namespace cloudalloc::common
