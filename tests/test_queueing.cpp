#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "queueing/gps.h"
#include "queueing/mm1.h"
#include "queueing/response_time.h"

namespace cloudalloc::queueing {
namespace {

TEST(Mm1, StabilityBoundary) {
  EXPECT_TRUE(mm1_stable(0.9, 1.0));
  EXPECT_FALSE(mm1_stable(1.0, 1.0));
  EXPECT_FALSE(mm1_stable(1.1, 1.0));
  EXPECT_FALSE(mm1_stable(0.95, 1.0, /*margin=*/0.1));
}

TEST(Mm1, ResponseTimeClosedForm) {
  // mu=2, lambda=1 -> W = 1/(2-1) = 1.
  EXPECT_DOUBLE_EQ(mm1_response_time(1.0, 2.0), 1.0);
  // Zero load: W = 1/mu (pure service time).
  EXPECT_DOUBLE_EQ(mm1_response_time(0.0, 4.0), 0.25);
}

TEST(Mm1, LittleLawConsistency) {
  const double lambda = 1.5, mu = 2.0;
  // L = lambda * W.
  EXPECT_NEAR(mm1_number_in_system(lambda, mu),
              lambda * mm1_response_time(lambda, mu), 1e-12);
}

TEST(Mm1, WaitPlusServiceEqualsResponse) {
  const double lambda = 1.0, mu = 3.0;
  EXPECT_NEAR(mm1_waiting_time(lambda, mu) + 1.0 / mu,
              mm1_response_time(lambda, mu), 1e-12);
}

TEST(Mm1, UtilizationRatio) {
  EXPECT_DOUBLE_EQ(mm1_utilization(1.0, 4.0), 0.25);
}

TEST(Mm1, QuantileClosedForm) {
  const double lambda = 1.0, mu = 3.0;  // sojourn ~ Exp(2)
  EXPECT_DOUBLE_EQ(mm1_response_quantile(lambda, mu, 0.0), 0.0);
  EXPECT_NEAR(mm1_response_quantile(lambda, mu, 0.5),
              std::log(2.0) / 2.0, 1e-12);
  EXPECT_NEAR(mm1_response_quantile(lambda, mu, 0.95),
              std::log(20.0) / 2.0, 1e-12);
}

TEST(Mm1, MedianBelowMeanP99AboveMean) {
  const double lambda = 2.0, mu = 3.0;
  const double mean = mm1_response_time(lambda, mu);
  EXPECT_LT(mm1_response_quantile(lambda, mu, 0.5), mean);
  EXPECT_GT(mm1_response_quantile(lambda, mu, 0.99), mean);
}

TEST(Mm1, QuantileMonotoneInP) {
  double prev = -1.0;
  for (double p : {0.0, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double q = mm1_response_quantile(1.0, 2.0, p);
    EXPECT_GT(q, prev);
    prev = q;
  }
}

TEST(Mm1, OrInfVariant) {
  EXPECT_TRUE(std::isinf(mm1_response_time_or_inf(2.0, 1.0)));
  EXPECT_DOUBLE_EQ(mm1_response_time_or_inf(1.0, 2.0), 1.0);
}

TEST(Gps, ServiceRate) {
  // phi=0.5, C=4, alpha=0.5 -> mu = 4.
  EXPECT_DOUBLE_EQ(gps_service_rate(0.5, 4.0, 0.5), 4.0);
  EXPECT_DOUBLE_EQ(gps_service_rate(0.0, 4.0, 0.5), 0.0);
}

TEST(Gps, MinShareKeepsQueueStable) {
  const double phi = gps_min_share(2.0, 4.0, 0.5, 0.1);
  const double mu = gps_service_rate(phi, 4.0, 0.5);
  EXPECT_NEAR(mu, 2.1, 1e-12);
  EXPECT_TRUE(mm1_stable(2.0, mu));
}

TEST(Gps, ShareForResponseTimeRoundTrips) {
  const double lambda = 1.0, cap = 4.0, alpha = 0.5, target = 0.5;
  const double phi = gps_share_for_response_time(lambda, cap, alpha, target);
  const double mu = gps_service_rate(phi, cap, alpha);
  EXPECT_NEAR(mm1_response_time(lambda, mu), target, 1e-12);
}

TEST(Gps, ValidShares) {
  EXPECT_TRUE(gps_valid_shares({0.2, 0.3, 0.5}));
  EXPECT_TRUE(gps_valid_shares({}));
  EXPECT_FALSE(gps_valid_shares({0.6, 0.6}));
  EXPECT_FALSE(gps_valid_shares({-0.1, 0.2}));
}

TEST(ResponseTime, SingleSliceTwoStages) {
  // psi=1, phi=0.5 on both stages, C=4, alpha=0.5 -> mu=4 each stage.
  ServerSlice slice{1.0, 0.5, 0.5, 4.0, 4.0};
  const double lambda = 2.0;
  // Each stage: 1/(4-2) = 0.5; pipeline sum = 1.0.
  EXPECT_NEAR(slice_response_time(slice, lambda, 0.5, 0.5), 1.0, 1e-12);
  EXPECT_NEAR(client_response_time({slice}, lambda, 0.5, 0.5), 1.0, 1e-12);
}

TEST(ResponseTime, SplitTrafficAverages) {
  // Two identical slices, half traffic each: per-slice arrivals=1,
  // per-stage T = 1/(4-1); R = sum psi*T_j = 2 * 0.5 * (2/3) = 2/3.
  ServerSlice a{0.5, 0.5, 0.5, 4.0, 4.0};
  ServerSlice b{0.5, 0.5, 0.5, 4.0, 4.0};
  EXPECT_NEAR(client_response_time({a, b}, 2.0, 0.5, 0.5), 2.0 / 3.0, 1e-12);
}

TEST(ResponseTime, SplittingIdenticalServersHelps) {
  // With fixed shares, halving the traffic per server lowers R.
  ServerSlice whole{1.0, 0.5, 0.5, 4.0, 4.0};
  ServerSlice half_a{0.5, 0.5, 0.5, 4.0, 4.0};
  ServerSlice half_b{0.5, 0.5, 0.5, 4.0, 4.0};
  const double r_whole = client_response_time({whole}, 2.0, 0.5, 0.5);
  const double r_split = client_response_time({half_a, half_b}, 2.0, 0.5, 0.5);
  EXPECT_LT(r_split, r_whole);
}

TEST(ResponseTime, UnstableSliceIsInfinite) {
  ServerSlice slice{1.0, 0.1, 0.5, 4.0, 4.0};  // mu_p = 0.8 < lambda
  EXPECT_TRUE(
      std::isinf(client_response_time({slice}, 2.0, 0.5, 0.5)));
}

TEST(ResponseTime, ZeroPsiSlicesIgnored) {
  ServerSlice used{1.0, 0.5, 0.5, 4.0, 4.0};
  ServerSlice unused{0.0, 0.0, 0.0, 4.0, 4.0};  // would be unstable if used
  EXPECT_TRUE(std::isfinite(
      client_response_time({used, unused}, 2.0, 0.5, 0.5)));
}

TEST(Mm1, DeathOnUnstableInputs) {
  EXPECT_DEATH(mm1_response_time(2.0, 1.0), "stability");
  EXPECT_DEATH(mm1_number_in_system(1.0, 1.0), "stability");
  EXPECT_DEATH(mm1_response_quantile(2.0, 1.0, 0.5), "stability");
}

TEST(Mm1, DeathOnInvalidQuantile) {
  EXPECT_DEATH(mm1_response_quantile(1.0, 2.0, 1.0), "p");
  EXPECT_DEATH(mm1_response_quantile(1.0, 2.0, -0.1), "p");
}

TEST(Gps, DeathOnNonPositiveAlpha) {
  EXPECT_DEATH(gps_service_rate(0.5, 4.0, 0.0), "alpha");
}

TEST(ResponseTime, StabilityCheckHonorsHeadroom) {
  ServerSlice slice{1.0, 0.5, 0.5, 4.0, 4.0};  // mu = 4, arrivals = 2
  EXPECT_TRUE(slices_stable({slice}, 2.0, 0.5, 0.5));
  EXPECT_TRUE(slices_stable({slice}, 2.0, 0.5, 0.5, /*headroom=*/1.0));
  EXPECT_FALSE(slices_stable({slice}, 2.0, 0.5, 0.5, /*headroom=*/2.5));
}

}  // namespace
}  // namespace cloudalloc::queueing
