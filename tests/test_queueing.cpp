#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "queueing/gps.h"
#include "queueing/mm1.h"
#include "queueing/response_time.h"

namespace cloudalloc::queueing {
namespace {

using units::ArrivalRate;
using units::Share;
using units::Time;
using units::Work;
using units::WorkRate;

// Shorthand constructors: the tests build dimensioned inputs from literal
// scalars everywhere.
constexpr ArrivalRate rate(double v) { return ArrivalRate{v}; }
constexpr Share share(double v) { return Share{v}; }
constexpr Work work(double v) { return Work{v}; }
constexpr WorkRate cap(double v) { return WorkRate{v}; }

TEST(Mm1, StabilityBoundary) {
  EXPECT_TRUE(mm1_stable(rate(0.9), rate(1.0)));
  EXPECT_FALSE(mm1_stable(rate(1.0), rate(1.0)));
  EXPECT_FALSE(mm1_stable(rate(1.1), rate(1.0)));
  EXPECT_FALSE(mm1_stable(rate(0.95), rate(1.0), /*margin=*/rate(0.1)));
}

TEST(Mm1, ResponseTimeClosedForm) {
  // mu=2, lambda=1 -> W = 1/(2-1) = 1.
  EXPECT_DOUBLE_EQ(mm1_response_time(rate(1.0), rate(2.0)).value(), 1.0);
  // Zero load: W = 1/mu (pure service time).
  EXPECT_DOUBLE_EQ(mm1_response_time(rate(0.0), rate(4.0)).value(), 0.25);
}

TEST(Mm1, LittleLawConsistency) {
  const ArrivalRate lambda = rate(1.5), mu = rate(2.0);
  // L = lambda * W.
  EXPECT_NEAR(mm1_number_in_system(lambda, mu),
              lambda * mm1_response_time(lambda, mu), 1e-12);
}

TEST(Mm1, WaitPlusServiceEqualsResponse) {
  const ArrivalRate lambda = rate(1.0), mu = rate(3.0);
  EXPECT_NEAR(mm1_waiting_time(lambda, mu).value() + 1.0 / mu.value(),
              mm1_response_time(lambda, mu).value(), 1e-12);
}

TEST(Mm1, UtilizationRatio) {
  EXPECT_DOUBLE_EQ(mm1_utilization(rate(1.0), rate(4.0)), 0.25);
}

TEST(Mm1, QuantileClosedForm) {
  const ArrivalRate lambda = rate(1.0), mu = rate(3.0);  // sojourn ~ Exp(2)
  EXPECT_DOUBLE_EQ(mm1_response_quantile(lambda, mu, 0.0).value(), 0.0);
  EXPECT_NEAR(mm1_response_quantile(lambda, mu, 0.5).value(),
              std::log(2.0) / 2.0, 1e-12);
  EXPECT_NEAR(mm1_response_quantile(lambda, mu, 0.95).value(),
              std::log(20.0) / 2.0, 1e-12);
}

TEST(Mm1, MedianBelowMeanP99AboveMean) {
  const ArrivalRate lambda = rate(2.0), mu = rate(3.0);
  const Time mean = mm1_response_time(lambda, mu);
  EXPECT_LT(mm1_response_quantile(lambda, mu, 0.5), mean);
  EXPECT_GT(mm1_response_quantile(lambda, mu, 0.99), mean);
}

TEST(Mm1, QuantileMonotoneInP) {
  double prev = -1.0;
  for (double p : {0.0, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double q = mm1_response_quantile(rate(1.0), rate(2.0), p).value();
    EXPECT_GT(q, prev);
    prev = q;
  }
}

TEST(Mm1, OrInfVariant) {
  EXPECT_TRUE(std::isinf(mm1_response_time_or_inf(rate(2.0), rate(1.0)).value()));
  EXPECT_DOUBLE_EQ(mm1_response_time_or_inf(rate(1.0), rate(2.0)).value(), 1.0);
}

TEST(Gps, ServiceRate) {
  // phi=0.5, C=4, alpha=0.5 -> mu = 4.
  EXPECT_DOUBLE_EQ(gps_service_rate(share(0.5), cap(4.0), work(0.5)).value(),
                   4.0);
  EXPECT_DOUBLE_EQ(gps_service_rate(share(0.0), cap(4.0), work(0.5)).value(),
                   0.0);
}

TEST(Gps, MinShareKeepsQueueStable) {
  const Share phi = gps_min_share(rate(2.0), cap(4.0), work(0.5), rate(0.1));
  const ArrivalRate mu = gps_service_rate(phi, cap(4.0), work(0.5));
  EXPECT_NEAR(mu.value(), 2.1, 1e-12);
  EXPECT_TRUE(mm1_stable(rate(2.0), mu));
}

TEST(Gps, ShareForResponseTimeRoundTrips) {
  const ArrivalRate lambda = rate(1.0);
  const Share phi =
      gps_share_for_response_time(lambda, cap(4.0), work(0.5), Time{0.5});
  const ArrivalRate mu = gps_service_rate(phi, cap(4.0), work(0.5));
  EXPECT_NEAR(mm1_response_time(lambda, mu).value(), 0.5, 1e-12);
}

TEST(Gps, ValidShares) {
  EXPECT_TRUE(gps_valid_shares({share(0.2), share(0.3), share(0.5)}));
  EXPECT_TRUE(gps_valid_shares({}));
  EXPECT_FALSE(gps_valid_shares({share(0.6), share(0.6)}));
  EXPECT_FALSE(gps_valid_shares({share(-0.1), share(0.2)}));
}

TEST(ResponseTime, SingleSliceTwoStages) {
  // psi=1, phi=0.5 on both stages, C=4, alpha=0.5 -> mu=4 each stage.
  ServerSlice slice{1.0, share(0.5), share(0.5), cap(4.0), cap(4.0)};
  const ArrivalRate lambda = rate(2.0);
  // Each stage: 1/(4-2) = 0.5; pipeline sum = 1.0.
  EXPECT_NEAR(slice_response_time(slice, lambda, work(0.5), work(0.5)).value(),
              1.0, 1e-12);
  EXPECT_NEAR(
      client_response_time({slice}, lambda, work(0.5), work(0.5)).value(), 1.0,
      1e-12);
}

TEST(ResponseTime, SplitTrafficAverages) {
  // Two identical slices, half traffic each: per-slice arrivals=1,
  // per-stage T = 1/(4-1); R = sum psi*T_j = 2 * 0.5 * (2/3) = 2/3.
  ServerSlice a{0.5, share(0.5), share(0.5), cap(4.0), cap(4.0)};
  ServerSlice b{0.5, share(0.5), share(0.5), cap(4.0), cap(4.0)};
  EXPECT_NEAR(
      client_response_time({a, b}, rate(2.0), work(0.5), work(0.5)).value(),
      2.0 / 3.0, 1e-12);
}

TEST(ResponseTime, SplittingIdenticalServersHelps) {
  // With fixed shares, halving the traffic per server lowers R.
  ServerSlice whole{1.0, share(0.5), share(0.5), cap(4.0), cap(4.0)};
  ServerSlice half_a{0.5, share(0.5), share(0.5), cap(4.0), cap(4.0)};
  ServerSlice half_b{0.5, share(0.5), share(0.5), cap(4.0), cap(4.0)};
  const Time r_whole =
      client_response_time({whole}, rate(2.0), work(0.5), work(0.5));
  const Time r_split =
      client_response_time({half_a, half_b}, rate(2.0), work(0.5), work(0.5));
  EXPECT_LT(r_split, r_whole);
}

TEST(ResponseTime, UnstableSliceIsInfinite) {
  // mu_p = 0.8 < lambda
  ServerSlice slice{1.0, share(0.1), share(0.5), cap(4.0), cap(4.0)};
  EXPECT_TRUE(std::isinf(
      client_response_time({slice}, rate(2.0), work(0.5), work(0.5)).value()));
}

TEST(ResponseTime, ZeroPsiSlicesIgnored) {
  ServerSlice used{1.0, share(0.5), share(0.5), cap(4.0), cap(4.0)};
  // `unused` would be unstable if used.
  ServerSlice unused{0.0, share(0.0), share(0.0), cap(4.0), cap(4.0)};
  EXPECT_TRUE(std::isfinite(
      client_response_time({used, unused}, rate(2.0), work(0.5), work(0.5))
          .value()));
}

TEST(Mm1, DeathOnUnstableInputs) {
  EXPECT_DEATH(mm1_response_time(rate(2.0), rate(1.0)), "stability");
  EXPECT_DEATH(mm1_number_in_system(rate(1.0), rate(1.0)), "stability");
  EXPECT_DEATH(mm1_response_quantile(rate(2.0), rate(1.0), 0.5), "stability");
}

TEST(Mm1, DeathOnInvalidQuantile) {
  EXPECT_DEATH(mm1_response_quantile(rate(1.0), rate(2.0), 1.0), "p");
  EXPECT_DEATH(mm1_response_quantile(rate(1.0), rate(2.0), -0.1), "p");
}

TEST(Gps, DeathOnNonPositiveAlpha) {
  EXPECT_DEATH(gps_service_rate(share(0.5), cap(4.0), work(0.0)), "alpha");
}

TEST(ResponseTime, StabilityCheckHonorsHeadroom) {
  // mu = 4, arrivals = 2
  ServerSlice slice{1.0, share(0.5), share(0.5), cap(4.0), cap(4.0)};
  EXPECT_TRUE(slices_stable({slice}, rate(2.0), work(0.5), work(0.5)));
  EXPECT_TRUE(slices_stable({slice}, rate(2.0), work(0.5), work(0.5),
                            /*headroom=*/rate(1.0)));
  EXPECT_FALSE(slices_stable({slice}, rate(2.0), work(0.5), work(0.5),
                             /*headroom=*/rate(2.5)));
}

}  // namespace
}  // namespace cloudalloc::queueing
