// Fault injection: the message-passing manager must tolerate seeded
// drops, delays (reordering), duplicates, and agent crashes — always
// terminating, always returning the best completed round, and doing all
// of it DETERMINISTICALLY: the merged profit is a pure function of
// (cloud, options, FaultPlan), pinned by running every configuration
// twice and comparing bitwise. CI runs this under TSan; set
// CLOUDALLOC_FAULT_SWEEP=1 to widen the seed sweep.
//
// Timing note: per-round response timeouts are real wall-clock waits, so
// the scenarios here are small and the timeout (600 ms) is chosen to
// dwarf any plausible compute time — fault classification then depends
// only on the seeded schedule, not on scheduler luck.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dist/manager.h"
#include "dist/transport.h"
#include "model/evaluator.h"
#include "model/feasibility.h"
#include "workload/scenario.h"

namespace cloudalloc::dist {
namespace {

struct NamedPlan {
  const char* name;
  FaultPlan plan;
};

std::vector<NamedPlan> fault_plans() {
  std::vector<NamedPlan> plans;
  FaultPlan drops;
  drops.seed = 101;
  drops.drop_prob = 0.3;
  plans.push_back({"drops", drops});
  FaultPlan delay_dup;
  delay_dup.seed = 202;
  delay_dup.delay_prob = 0.35;
  delay_dup.delay_span = 2;
  delay_dup.duplicate_prob = 0.3;
  plans.push_back({"delay+dup", delay_dup});
  FaultPlan crashes;
  crashes.seed = 303;
  crashes.crash_prob = 1.0;  // every agent dies after two deliveries
  crashes.crash_after_deliveries = 2;
  plans.push_back({"crashes", crashes});
  FaultPlan combined;
  combined.seed = 404;
  combined.drop_prob = 0.15;
  combined.duplicate_prob = 0.15;
  combined.delay_prob = 0.2;
  combined.crash_prob = 0.5;
  combined.crash_after_deliveries = 3;
  plans.push_back({"combined", combined});
  return plans;
}

std::vector<std::uint64_t> sweep_seeds() {
  const char* env = std::getenv("CLOUDALLOC_FAULT_SWEEP");
  if (env != nullptr && *env != '\0') return {1, 2, 3, 4, 5, 6};
  return {1, 2};
}

DistributedOptions sweep_options(std::uint64_t seed, const FaultPlan& plan) {
  alloc::AllocatorOptions opts;
  opts.seed = seed;
  opts.max_local_search_rounds = 3;
  opts.dist_round_timeout_ms = 600.0;
  DistributedOptions dopts{opts};
  dopts.mode = DistMode::kMessagePassing;
  dopts.faults = plan;
  return dopts;
}

model::Cloud sweep_cloud(std::uint64_t seed) {
  workload::ScenarioParams params;
  params.num_clients = 12;
  params.num_clusters = 3;
  params.servers_per_cluster = 4;
  return workload::make_scenario(params, seed);
}

void expect_identical_allocations(const model::Allocation& a,
                                  const model::Allocation& b) {
  const auto& cloud = a.cloud();
  for (model::ClientId i : cloud.client_ids()) {
    ASSERT_EQ(a.is_assigned(i), b.is_assigned(i)) << "client " << i;
    if (!a.is_assigned(i)) continue;
    EXPECT_EQ(a.cluster_of(i), b.cluster_of(i));
    const auto& pa = a.placements(i);
    const auto& pb = b.placements(i);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t s = 0; s < pa.size(); ++s) {
      EXPECT_EQ(pa[s].server, pb[s].server);
      EXPECT_EQ(pa[s].psi, pb[s].psi);
      EXPECT_EQ(pa[s].phi_p, pb[s].phi_p);
      EXPECT_EQ(pa[s].phi_n, pb[s].phi_n);
    }
  }
}

// The acceptance gate: under every fault plan the run (a) terminates,
// (b) returns a feasible allocation realizing exactly the best profit of
// any completed round (never below it), and (c) is bit-for-bit
// reproducible — two runs with the same (cloud, options, plan) agree on
// profits, rounds, fault accounting, and the final placements.
TEST(DistributedFaults, SweepIsDeterministicAndNeverBelowBestRound) {
  bool saw_faults_bite = false;
  for (const NamedPlan& named : fault_plans()) {
    for (const std::uint64_t seed : sweep_seeds()) {
      SCOPED_TRACE(std::string(named.name) + " seed " + std::to_string(seed));
      const auto cloud = sweep_cloud(seed);
      const auto dopts = sweep_options(seed, named.plan);

      const auto first = DistributedAllocator(dopts).run(cloud);
      const auto second = DistributedAllocator(dopts).run(cloud);

      // --- invariants of each run.
      for (const auto* result : {&first, &second}) {
        EXPECT_TRUE(model::is_feasible(result->allocation));
        double best = result->report.initial_profit;
        for (const double p : result->report.round_profits)
          best = std::max(best, p);
        // Best-checkpoint backstop: losing messages or whole agents may
        // cost improvement, never regression below a completed round.
        EXPECT_DOUBLE_EQ(result->report.final_profit, best);
        EXPECT_GE(result->report.final_profit,
                  result->report.initial_profit);
        EXPECT_NEAR(
            model::profit(result->allocation), result->report.final_profit,
            1e-6 * std::max(1.0, std::fabs(result->report.final_profit)));
      }

      // --- bitwise run-to-run determinism.
      EXPECT_EQ(first.report.initial_profit, second.report.initial_profit);
      EXPECT_EQ(first.report.final_profit, second.report.final_profit);
      EXPECT_EQ(first.report.rounds_run, second.report.rounds_run);
      ASSERT_EQ(first.report.round_profits.size(),
                second.report.round_profits.size());
      for (std::size_t r = 0; r < first.report.round_profits.size(); ++r)
        EXPECT_EQ(first.report.round_profits[r],
                  second.report.round_profits[r])
            << "round " << r;
      // Attempted-traffic totals (messages/bytes) are deliberately NOT
      // compared under fault injection: agents keep draining queued or
      // fault-released requests on their own threads, so how many
      // response *attempts* they have made by the time the manager
      // snapshots the stats is a teardown race. What the manager MERGED
      // is deterministic regardless — that is what everything above and
      // below pins. (Fault-free accounting is pinned exactly in
      // test_dist.cpp's MessageAndByteCountsComeFromTheTransport.)
      EXPECT_EQ(first.report.responses_missed, second.report.responses_missed);
      EXPECT_EQ(first.report.stale_messages, second.report.stale_messages);
      EXPECT_EQ(first.report.agents_presumed_dead,
                second.report.agents_presumed_dead);
      EXPECT_EQ(first.report.truncated, second.report.truncated);
      expect_identical_allocations(first.allocation, second.allocation);

      if (first.report.responses_missed > 0 ||
          first.report.stale_messages > 0 ||
          first.report.agents_presumed_dead > 0)
        saw_faults_bite = true;
    }
  }
  // The sweep must actually exercise the tolerance paths, not vacuously
  // pass on a quiet transport.
  EXPECT_TRUE(saw_faults_bite);
}

// Crashing every agent early must leave the manager standing: it presumes
// them dead after refused sends / silent rounds and finishes with the
// rounds it completed.
TEST(DistributedFaults, SurvivesAllAgentsCrashing) {
  const auto cloud = sweep_cloud(3);
  FaultPlan plan;
  plan.seed = 7;
  plan.crash_prob = 1.0;
  plan.crash_after_deliveries = 1;  // dead after the very first request
  const auto dopts = sweep_options(3, plan);
  const auto result = DistributedAllocator(dopts).run(cloud);
  EXPECT_TRUE(model::is_feasible(result.allocation));
  EXPECT_GE(result.report.final_profit, result.report.initial_profit);
  EXPECT_GT(result.report.agents_presumed_dead, 0);
  EXPECT_NEAR(model::profit(result.allocation), result.report.final_profit,
              1e-6 * std::max(1.0, std::fabs(result.report.final_profit)));
}

// The epoch deadline holds even when the transport is hostile: the
// per-round wait is capped by the remaining budget, so lost responses
// cannot stall the manager past it.
TEST(DistributedFaults, DeadlineHoldsUnderFaults) {
  const auto cloud = sweep_cloud(5);
  FaultPlan plan;
  plan.seed = 11;
  plan.drop_prob = 0.5;
  plan.delay_prob = 0.3;
  auto dopts = sweep_options(5, plan);
  dopts.alloc.time_budget_ms = 1e-3;  // expires during round 1
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = DistributedAllocator(dopts).run(cloud);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_TRUE(result.report.truncated);
  EXPECT_EQ(result.report.rounds_run, 1);
  EXPECT_LT(elapsed, 30.0);  // loose: terminated promptly, no full timeouts
  EXPECT_GE(result.report.final_profit, result.report.initial_profit);
  EXPECT_TRUE(model::is_feasible(result.allocation));
}

// FaultyTransport itself is a deterministic function of its plan: the
// same seed yields the same delivered sequence (and the same fault
// counters) on every run.
TEST(FaultyTransport, ScheduleIsAPureFunctionOfThePlan) {
  const auto run_once = [](const FaultPlan& plan) {
    FaultyTransport transport(std::make_unique<ChannelTransport>(2), plan);
    for (int m = 0; m < 40; ++m)
      (void)transport.send_to_agent(0, "a" + std::to_string(m));
    for (int m = 0; m < 40; ++m)
      (void)transport.send_to_manager(1, "m" + std::to_string(m));
    transport.close_all();
    std::vector<std::string> delivered;
    while (auto bytes = transport.agent_receive(0))
      delivered.push_back(*bytes);
    while (auto env = transport.manager_receive_for(50.0))
      delivered.push_back("mgr:" + env->bytes);
    return std::make_pair(delivered, transport.stats());
  };

  FaultPlan plan;
  plan.seed = 99;
  plan.drop_prob = 0.25;
  plan.duplicate_prob = 0.25;
  plan.delay_prob = 0.25;
  plan.delay_span = 3;
  const auto [delivered1, stats1] = run_once(plan);
  const auto [delivered2, stats2] = run_once(plan);
  EXPECT_EQ(delivered1, delivered2);
  EXPECT_EQ(stats1.messages, stats2.messages);
  EXPECT_EQ(stats1.dropped, stats2.dropped);
  EXPECT_EQ(stats1.duplicated, stats2.duplicated);
  EXPECT_EQ(stats1.delayed, stats2.delayed);
  // The knobs actually fired on this schedule.
  EXPECT_GT(stats1.dropped, 0u);
  EXPECT_GT(stats1.duplicated, 0u);
  EXPECT_GT(stats1.delayed, 0u);
  // Attempted traffic is what send() saw, independent of fates.
  EXPECT_EQ(stats1.messages, 80u);

  // A different seed produces a different schedule (overwhelmingly).
  FaultPlan other = plan;
  other.seed = 100;
  const auto [delivered3, stats3] = run_once(other);
  EXPECT_NE(delivered1, delivered3);
}

}  // namespace
}  // namespace cloudalloc::dist
