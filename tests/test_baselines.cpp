#include <gtest/gtest.h>

#include "baselines/ga_alloc.h"
#include "baselines/monte_carlo.h"
#include "baselines/proportional_share.h"
#include "baselines/random_alloc.h"
#include "baselines/sa_alloc.h"
#include "common/stats.h"
#include "model/evaluator.h"
#include "model/feasibility.h"
#include "workload/scenario.h"

namespace cloudalloc::baselines {
namespace {

workload::ScenarioParams small_params() {
  workload::ScenarioParams params;
  params.num_clients = 25;
  params.servers_per_cluster = 6;
  return params;
}

TEST(RandomAlloc, FeasibleAndDeterministicPerSeed) {
  const auto cloud = workload::make_scenario(small_params(), 7);
  alloc::AllocatorOptions opts;
  Rng r1(3), r2(3);
  const auto a = random_allocation(cloud, opts, r1);
  const auto b = random_allocation(cloud, opts, r2);
  EXPECT_TRUE(model::is_feasible(a));
  EXPECT_DOUBLE_EQ(model::profit(a), model::profit(b));
}

TEST(MonteCarlo, BestDominatesWorstAndMean) {
  const auto cloud = workload::make_scenario(small_params(), 11);
  MonteCarloOptions opts;
  opts.samples = 12;
  const auto result = monte_carlo_search(cloud, opts, 1);
  EXPECT_GE(result.best_profit, result.worst_polished_profit);
  EXPECT_GE(result.worst_polished_profit, result.worst_initial_profit - 1e-9);
  EXPECT_GE(result.best_profit, result.mean_initial_profit);
  EXPECT_EQ(result.initial_profits.size(), 12u);
  EXPECT_TRUE(model::is_feasible(result.best));
}

TEST(MonteCarlo, PolishingHelps) {
  const auto cloud = workload::make_scenario(small_params(), 13);
  MonteCarloOptions opts;
  opts.samples = 8;
  const auto result = monte_carlo_search(cloud, opts, 2);
  for (std::size_t s = 0; s < result.initial_profits.size(); ++s)
    EXPECT_GE(result.polished_profits[s], result.initial_profits[s] - 1e-9);
}

TEST(MonteCarlo, MoreSamplesNeverHurt) {
  const auto cloud = workload::make_scenario(small_params(), 17);
  MonteCarloOptions few, many;
  few.samples = 4;
  many.samples = 16;
  const auto f = monte_carlo_search(cloud, few, 5);
  const auto m = monte_carlo_search(cloud, many, 5);
  // Same seed: the first 4 samples coincide, so more samples dominate.
  EXPECT_GE(m.best_profit, f.best_profit - 1e-9);
}

TEST(ProportionalShare, ProducesFeasibleAllocation) {
  const auto cloud = workload::make_scenario(small_params(), 19);
  const auto result = proportional_share_allocate(cloud, PsOptions{});
  EXPECT_TRUE(model::is_feasible(result.allocation));
  EXPECT_GT(result.profit, -1e300);
  EXPECT_GT(result.best_fraction, 0.0);
}

TEST(ProportionalShare, ActiveSetSweepPicksBest) {
  const auto cloud = workload::make_scenario(small_params(), 23);
  PsOptions sweep;
  PsOptions all_on;
  all_on.activation_fractions = {1.0};
  const auto swept = proportional_share_allocate(cloud, sweep);
  const auto fixed = proportional_share_allocate(cloud, all_on);
  EXPECT_GE(swept.profit, fixed.profit - 1e-9);
}

TEST(ProportionalShare, FixedActiveSetIsFeasibleToo) {
  const auto cloud = workload::make_scenario(small_params(), 29);
  std::vector<bool> active(static_cast<std::size_t>(cloud.num_servers()),
                           true);
  const auto alloc = ps_allocate_with_active_set(cloud, active, PsOptions{});
  EXPECT_TRUE(model::is_feasible(alloc));
}

TEST(SaAlloc, FeasibleAndBeatsTypicalRandom) {
  const auto cloud = workload::make_scenario(small_params(), 31);
  SaAllocOptions opts;
  opts.annealing.steps = 120;  // keep the test quick
  const auto result = sa_allocate(cloud, opts, 3);
  EXPECT_TRUE(model::is_feasible(result.allocation));
  EXPECT_GT(result.evaluations, 0);

  alloc::AllocatorOptions aopts;
  Summary random_profits;
  Rng rng(77);
  for (int s = 0; s < 5; ++s)
    random_profits.add(model::profit(random_allocation(cloud, aopts, rng)));
  EXPECT_GE(result.profit, random_profits.mean() - 1e-9);
}

TEST(GaAlloc, FeasibleResult) {
  const auto cloud = workload::make_scenario(small_params(), 37);
  GaAllocOptions opts;
  opts.genetic.population = 8;
  opts.genetic.generations = 10;
  const auto result = ga_allocate(cloud, opts, 4);
  EXPECT_TRUE(model::is_feasible(result.allocation));
}

}  // namespace
}  // namespace cloudalloc::baselines
