#include "common/json.h"

#include <gtest/gtest.h>

namespace cloudalloc {
namespace {

TEST(Json, ConstructsScalars) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(nullptr).is_null());
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(1.5).is_number());
  EXPECT_TRUE(Json(3).is_number());
  EXPECT_TRUE(Json("x").is_string());
}

TEST(Json, AccessorsReturnValues) {
  EXPECT_EQ(Json(true).as_bool(), true);
  EXPECT_DOUBLE_EQ(Json(2.5).as_number(), 2.5);
  EXPECT_EQ(Json(7).as_int(), 7);
  EXPECT_EQ(Json("hello").as_string(), "hello");
}

TEST(Json, ObjectAccess) {
  JsonObject o;
  o.emplace("a", 1);
  o.emplace("b", "two");
  const Json doc(std::move(o));
  EXPECT_EQ(doc.at("a").as_int(), 1);
  EXPECT_EQ(doc.at("b").as_string(), "two");
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_NE(doc.find("a"), nullptr);
}

TEST(Json, DumpScalars) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, DumpEscapesStrings) {
  EXPECT_EQ(Json("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(Json, DumpCompactContainer) {
  JsonObject o;
  o.emplace("k", JsonArray{Json(1), Json(2)});
  EXPECT_EQ(Json(std::move(o)).dump(), "{\"k\":[1,2]}");
}

TEST(Json, DumpIndented) {
  JsonObject o;
  o.emplace("k", 1);
  const std::string pretty = Json(std::move(o)).dump(2);
  EXPECT_NE(pretty.find("\n  \"k\": 1"), std::string::npos);
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::parse("null")->is_null());
  EXPECT_EQ(Json::parse("true")->as_bool(), true);
  EXPECT_DOUBLE_EQ(Json::parse("-2.5e2")->as_number(), -250.0);
  EXPECT_EQ(Json::parse("\"s\"")->as_string(), "s");
}

TEST(Json, ParseNestedDocument) {
  const auto doc = Json::parse(
      R"({"name": "x", "values": [1, 2, 3], "nested": {"flag": false}})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->at("name").as_string(), "x");
  EXPECT_EQ(doc->at("values").as_array().size(), 3u);
  EXPECT_EQ(doc->at("values").as_array()[2].as_int(), 3);
  EXPECT_FALSE(doc->at("nested").at("flag").as_bool());
}

TEST(Json, ParseWhitespaceTolerant) {
  EXPECT_TRUE(Json::parse("  {  \"a\" :\n[ ]\t}  ").has_value());
}

TEST(Json, ParseEscapes) {
  const auto doc = Json::parse(R"("a\"b\\c\ndA")");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->as_string(), "a\"b\\c\ndA");
}

TEST(Json, ParseRejectsMalformed) {
  std::string error;
  EXPECT_FALSE(Json::parse("{", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(Json::parse("tru").has_value());
  EXPECT_FALSE(Json::parse("1 2").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
  EXPECT_FALSE(Json::parse("").has_value());
}

TEST(Json, RoundTripsArbitraryDocument) {
  JsonObject inner;
  inner.emplace("pi", 3.14159);
  inner.emplace("n", -7);
  JsonArray arr;
  arr.emplace_back("s");
  arr.emplace_back(nullptr);
  arr.emplace_back(std::move(inner));
  JsonObject root;
  root.emplace("arr", std::move(arr));
  root.emplace("ok", true);
  const Json doc(std::move(root));

  for (int indent : {-1, 0, 2, 4}) {
    const auto reparsed = Json::parse(doc.dump(indent));
    ASSERT_TRUE(reparsed.has_value()) << "indent " << indent;
    EXPECT_EQ(reparsed->dump(), doc.dump());
  }
}

TEST(Json, NumbersSurviveRoundTrip) {
  for (double v : {0.0, -1.0, 1e-8, 123456789.123, 1e15, -2.5e-3}) {
    const auto doc = Json::parse(Json(v).dump());
    ASSERT_TRUE(doc.has_value());
    EXPECT_DOUBLE_EQ(doc->as_number(), v);
  }
}

}  // namespace
}  // namespace cloudalloc
