// Tests of the online serving layer: zero-churn bit-identity against the
// batch solver, admission threshold + hysteresis behavior, thread-count
// determinism of a whole churn run, migration-cost gating, and the
// warm-vs-full-resolve profit contract.
#include "serve/online.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "alloc/allocator.h"
#include "epoch/predictor.h"
#include "model/diff.h"
#include "model/feasibility.h"
#include "serve/driver.h"
#include "workload/churn.h"
#include "workload/scenario.h"

namespace cloudalloc::serve {
namespace {

using model::ClientId;
using model::Placement;

model::Cloud make_cloud(int clients = 24) {
  workload::ScenarioParams params;
  params.num_clients = clients;
  params.servers_per_cluster = 6;
  return workload::make_scenario(params, 77);
}

std::vector<ClientId> all_clients(const model::Cloud& cloud) {
  std::vector<ClientId> ids;
  for (ClientId i : cloud.client_ids()) ids.push_back(i);
  return ids;
}

workload::ChurnParams busy_churn() {
  workload::ChurnParams params;
  params.epochs = 10;
  params.initial_clients = 14;
  params.arrival_rate = 2.0;
  params.departure_probability = 0.12;
  params.demand_change_probability = 0.2;
  return params;
}

void expect_same_allocation(const model::Allocation& a,
                            const model::Allocation& b) {
  for (ClientId i : a.cloud().client_ids()) {
    ASSERT_EQ(a.is_assigned(i), b.is_assigned(i)) << "client " << i;
    if (!a.is_assigned(i)) continue;
    EXPECT_EQ(a.cluster_of(i), b.cluster_of(i));
    const std::vector<Placement>& pa = a.placements(i);
    const std::vector<Placement>& pb = b.placements(i);
    ASSERT_EQ(pa.size(), pb.size()) << "client " << i;
    for (std::size_t p = 0; p < pa.size(); ++p) {
      EXPECT_EQ(pa[p].server, pb[p].server);
      EXPECT_EQ(pa[p].psi, pb[p].psi);  // bitwise
      EXPECT_EQ(pa[p].phi_p, pb[p].phi_p);
      EXPECT_EQ(pa[p].phi_n, pb[p].phi_n);
    }
  }
}

// --- migration accounting ------------------------------------------------

TEST(RedirectedFraction, MeasuresTrafficThatActuallyMoves) {
  const model::ServerId s0(0), s1(1);
  const std::vector<Placement> at0 = {{s0, 1.0, 0.5, 0.5}};
  const std::vector<Placement> at1 = {{s1, 1.0, 0.5, 0.5}};
  const std::vector<Placement> split = {{s0, 0.4, 0.3, 0.3},
                                        {s1, 0.6, 0.4, 0.4}};
  EXPECT_DOUBLE_EQ(model::redirected_fraction(at0, at0), 0.0);
  EXPECT_DOUBLE_EQ(model::redirected_fraction(at0, at1), 1.0);
  EXPECT_DOUBLE_EQ(model::redirected_fraction(at0, split), 0.6);
  EXPECT_DOUBLE_EQ(model::redirected_fraction(split, at0), 0.6);
  // Full removal redirects everything; insertion from nothing is free.
  EXPECT_DOUBLE_EQ(model::redirected_fraction(at0, {}), 1.0);
  EXPECT_DOUBLE_EQ(model::redirected_fraction({}, at0), 0.0);
  // Share-only resize: psi untouched, no redirection.
  const std::vector<Placement> resized = {{s0, 1.0, 0.9, 0.7}};
  EXPECT_DOUBLE_EQ(model::redirected_fraction(at0, resized), 0.0);
}

// --- admission controller ------------------------------------------------

TEST(AdmissionControllerTest, ThresholdGatesOnMarginalProfit) {
  AdmissionOptions options;
  options.threshold = 2.0;
  AdmissionController admission(options);
  EXPECT_TRUE(admission.decide(ClientId(0), 3.0).admitted);
  EXPECT_FALSE(admission.decide(ClientId(1), 1.9).admitted);
  EXPECT_FALSE(
      admission.decide(ClientId(2), AdmissionController::kInfeasible)
          .admitted);
  EXPECT_EQ(admission.admitted(), 1);
  EXPECT_EQ(admission.rejected(), 2);
  EXPECT_EQ(admission.log().size(), 3u);
}

TEST(AdmissionControllerTest, HysteresisRaisesTheBarAfterARejection) {
  AdmissionOptions options;
  options.threshold = 1.0;
  options.hysteresis = 0.5;
  AdmissionController admission(options);
  EXPECT_DOUBLE_EQ(admission.current_bar(), 1.0);
  // At-threshold marginal admits while the door is open.
  EXPECT_TRUE(admission.decide(ClientId(0), 1.0).admitted);
  // A rejection raises the bar...
  EXPECT_FALSE(admission.decide(ClientId(1), 0.9).admitted);
  EXPECT_DOUBLE_EQ(admission.current_bar(), 1.5);
  // ...so the same at-threshold marginal now bounces (no flapping).
  EXPECT_FALSE(admission.decide(ClientId(2), 1.0).admitted);
  // A clearly profitable client re-opens the door.
  EXPECT_TRUE(admission.decide(ClientId(3), 2.0).admitted);
  EXPECT_DOUBLE_EQ(admission.current_bar(), 1.0);
}

// --- zero-churn bit-identity --------------------------------------------

TEST(OnlineServe, ZeroChurnWarmEpochsAreBitIdenticalToTheBatchSolve) {
  const alloc::AllocatorOptions alloc_opts;  // defaults, migration_cost = 0
  const alloc::ResourceAllocator batch(alloc_opts);
  const alloc::AllocatorResult reference = batch.run(make_cloud());

  OnlineOptions options;
  options.alloc = alloc_opts;
  const model::Cloud universe = make_cloud();
  OnlineServer server(make_cloud(), all_clients(universe), options);
  const EpochStats cold = server.start();
  EXPECT_TRUE(cold.full_resolve);
  EXPECT_EQ(server.profit(), reference.report.final_profit);  // bitwise

  for (int t = 0; t < 3; ++t) {
    const EpochStats stats = server.step({});
    EXPECT_FALSE(stats.full_resolve);
    EXPECT_EQ(stats.rounds_run, 0);
    EXPECT_EQ(stats.profit, reference.report.final_profit);  // bitwise
    EXPECT_EQ(stats.diff.moved, 0);
    EXPECT_EQ(stats.diff.arrived, 0);
    EXPECT_EQ(stats.diff.departed, 0);
  }
  expect_same_allocation(reference.allocation, server.allocation());
}

// --- serving under churn -------------------------------------------------

TEST(OnlineServe, ChurnRunStaysFeasibleAndMasksStayConsistent) {
  const model::Cloud universe = make_cloud(30);
  const workload::ChurnStream stream =
      make_churn_stream(universe, busy_churn(), 11);

  OnlineServer server(make_cloud(30), stream.initially_present, {});
  server.start();
  EXPECT_TRUE(model::is_feasible(server.allocation()));
  for (const auto& events : stream.epochs) {
    const EpochStats stats = server.step(events);
    ASSERT_TRUE(model::is_feasible(server.allocation()));
    EXPECT_GE(stats.present, stats.serving);  // serving is a subset
    for (ClientId i : server.cloud().client_ids()) {
      if (server.is_serving(i)) EXPECT_TRUE(server.is_present(i));
      EXPECT_EQ(server.is_serving(i), server.allocation().is_assigned(i));
    }
    // Every arrival got an admission decision (re-offered rate changes
    // can add more decisions, never fewer).
    EXPECT_GE(stats.admitted + stats.rejected, stats.arrivals);
  }
  EXPECT_EQ(server.history().size(),
            static_cast<std::size_t>(busy_churn().epochs) + 1);
}

TEST(OnlineServe, HighThresholdRejectsWhatZeroThresholdAdmits) {
  const model::Cloud universe = make_cloud(30);
  workload::ChurnParams churn = busy_churn();
  churn.departure_probability = 0.0;  // pure arrival pressure
  const workload::ChurnStream stream = make_churn_stream(universe, churn, 21);

  OnlineOptions open;
  OnlineOptions closed;
  closed.admission.threshold = 1e9;  // nobody's marginal clears this
  OnlineServer open_server(make_cloud(30), stream.initially_present, open);
  OnlineServer closed_server(make_cloud(30), stream.initially_present,
                             closed);
  open_server.start();
  closed_server.start();
  int open_admitted = 0, closed_admitted = 0;
  for (const auto& events : stream.epochs) {
    open_admitted += open_server.step(events).admitted;
    closed_admitted += closed_server.step(events).admitted;
  }
  EXPECT_GT(open_admitted, 0);
  EXPECT_EQ(closed_admitted, 0);
  EXPECT_EQ(closed_server.admission().admitted(), 0);
}

TEST(OnlineServe, HugeMigrationCostFreezesWarmEpochPlacements) {
  const model::Cloud universe = make_cloud(30);
  workload::ChurnParams churn = busy_churn();
  churn.arrival_rate = 0.5;
  const workload::ChurnStream stream = make_churn_stream(universe, churn, 31);

  OnlineOptions options;
  options.alloc.migration_cost = 1e9;  // no move can ever pay for itself
  options.resolve_churn_fraction = 1e9;  // never fall back to a full solve
  options.resolve_profit_gap = 1e9;
  OnlineServer server(make_cloud(30), stream.initially_present, options);
  server.start();
  double redirected = 0.0;
  for (const auto& events : stream.epochs) {
    const EpochStats stats = server.step(events);
    EXPECT_FALSE(stats.full_resolve);
    redirected += stats.diff.redirected;
    EXPECT_EQ(stats.diff.moved, 0);
  }
  EXPECT_EQ(redirected, 0.0);
}

TEST(OnlineServe, HeavyChurnTriggersAFullResolve) {
  const model::Cloud universe = make_cloud(30);
  const workload::ChurnStream stream =
      make_churn_stream(universe, busy_churn(), 41);

  OnlineOptions options;
  options.resolve_churn_fraction = 0.01;  // hair trigger
  OnlineServer server(make_cloud(30), stream.initially_present, options);
  server.start();
  bool any_full = false;
  for (const auto& events : stream.epochs)
    if (server.step(events).full_resolve && !events.empty()) any_full = true;
  EXPECT_TRUE(any_full);
}

TEST(OnlineServe, WarmStartTracksTheAlwaysResolveBaselineProfit) {
  const model::Cloud universe = make_cloud(30);
  const workload::ChurnStream stream =
      make_churn_stream(universe, busy_churn(), 51);

  OnlineOptions warm;
  warm.resolve_churn_fraction = 1e9;  // stay on the warm path
  warm.resolve_profit_gap = 1e9;
  OnlineOptions full;
  full.resolve_churn_fraction = 1e-9;  // any churn forces a full solve

  OnlineServer warm_server(make_cloud(30), stream.initially_present, warm);
  OnlineServer full_server(make_cloud(30), stream.initially_present, full);
  warm_server.start();
  full_server.start();
  for (const auto& events : stream.epochs) {
    warm_server.step(events);
    full_server.step(events);
  }
  // The warm path must hold the overwhelming share of the from-scratch
  // profit (the bench quantifies the latency side of this trade).
  EXPECT_GE(warm_server.profit(), 0.9 * full_server.profit());
}

// --- determinism (also runs under TSan in CI) ----------------------------

struct RunResult {
  double profit = 0.0;
  std::vector<AdmissionDecision> decisions;
};

RunResult run_stream(const workload::ChurnStream& stream, int threads,
                     const model::Allocation** out_alloc,
                     std::vector<OnlineServer>& keep_alive) {
  OnlineOptions options;
  options.alloc.num_threads = threads;
  options.admission.threshold = 0.5;
  options.admission.hysteresis = 0.25;
  keep_alive.emplace_back(make_cloud(30), stream.initially_present, options);
  OnlineServer& server = keep_alive.back();
  server.start();
  for (const auto& events : stream.epochs) server.step(events);
  *out_alloc = &server.allocation();
  return {server.profit(), server.admission().log()};
}

TEST(OnlineChurn, DeterministicAcrossThreadCounts) {
  const model::Cloud universe = make_cloud(30);
  const workload::ChurnStream stream =
      make_churn_stream(universe, busy_churn(), 61);

  std::vector<OnlineServer> servers;
  servers.reserve(3);
  const model::Allocation* alloc1 = nullptr;
  const model::Allocation* alloc4 = nullptr;
  const model::Allocation* alloc8 = nullptr;
  const RunResult r1 = run_stream(stream, 1, &alloc1, servers);
  const RunResult r4 = run_stream(stream, 4, &alloc4, servers);
  const RunResult r8 = run_stream(stream, 8, &alloc8, servers);

  EXPECT_EQ(r1.profit, r4.profit);  // bitwise
  EXPECT_EQ(r1.profit, r8.profit);
  ASSERT_EQ(r1.decisions.size(), r4.decisions.size());
  ASSERT_EQ(r1.decisions.size(), r8.decisions.size());
  for (std::size_t d = 0; d < r1.decisions.size(); ++d) {
    for (const RunResult* other : {&r4, &r8}) {
      EXPECT_EQ(r1.decisions[d].client, other->decisions[d].client);
      EXPECT_EQ(r1.decisions[d].admitted, other->decisions[d].admitted);
      EXPECT_EQ(r1.decisions[d].marginal_profit,
                other->decisions[d].marginal_profit);  // bitwise
      EXPECT_EQ(r1.decisions[d].bar, other->decisions[d].bar);
    }
  }
  expect_same_allocation(*alloc1, *alloc4);
  expect_same_allocation(*alloc1, *alloc8);
}

// --- the online driver ---------------------------------------------------

TEST(OnlineDriverTest, DerivesDemandChangesFromPredictionDrift) {
  const model::Cloud universe = make_cloud();
  DriverOptions options;
  options.demand_change_drift = 0.1;
  OnlineDriver driver(make_cloud(), all_clients(universe),
                      epoch::EwmaPredictor(1.0, 1.0), options);
  driver.start();

  // Every client's demand jumps 50%: alpha = 1 EWMA predicts the jump
  // verbatim, far past the 10% drift gate.
  std::vector<double> observed;
  for (const auto& client : universe.clients())
    observed.push_back(client.lambda_pred * 1.5);
  const EpochStats stats = driver.step({}, observed);
  EXPECT_GT(stats.demand_changes, 0);
  EXPECT_TRUE(model::is_feasible(driver.server().allocation()));

  // Steady observations afterwards: drift below the gate, no events.
  const EpochStats quiet = driver.step({}, observed);
  EXPECT_EQ(quiet.demand_changes, 0);
}

}  // namespace
}  // namespace cloudalloc::serve
