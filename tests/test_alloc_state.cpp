// The allocation-state engine's contract: ledger and view stay bitwise
// synchronized under every committed mutation, phases preserve the
// from-scratch invariants, checkpoints round-trip, corruption trips the
// checker, and the engine-backed allocator is bit-identical at every
// thread count and with candidate pruning on or off.
#include "model/alloc_state.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "alloc/adjust_dispersion.h"
#include "alloc/adjust_shares.h"
#include "alloc/allocator.h"
#include "alloc/assign_distribute.h"
#include "alloc/initial.h"
#include "alloc/reassign.h"
#include "alloc/server_power.h"
#include "common/rng.h"
#include "dist/parallel_eval.h"
#include "model/evaluator.h"
#include "workload/scenario.h"

namespace cloudalloc::model {
namespace {

workload::ScenarioParams small_params() {
  workload::ScenarioParams params;
  params.num_clients = 30;
  params.servers_per_cluster = 8;
  return params;
}

TEST(AllocState, AssignClearFuzzKeepsLedgerAndViewInLockstep) {
  const auto cloud = workload::make_scenario(small_params(), 3);
  alloc::AllocatorOptions opts;
  AllocState state(cloud);
  Rng rng(17);

  for (int step = 0; step < 400; ++step) {
    const auto i =
        static_cast<ClientId>(rng.index(static_cast<std::size_t>(
            cloud.num_clients())));
    if (state.ledger().is_assigned(i) && rng.uniform() < 0.4) {
      state.clear(i);
    } else {
      const auto k = static_cast<ClusterId>(
          rng.uniform_int(0, cloud.num_clusters() - 1));
      const auto plan = alloc::assign_distribute(state.view(), i, k, opts);
      if (!plan) continue;
      state.assign(i, plan->cluster, plan->placements);
    }
    if (step % 50 == 0) {
      ASSERT_TRUE(state.aggregates_consistent());
    }
  }
  EXPECT_TRUE(state.aggregates_consistent());
}

TEST(AllocState, EnginePhasesPreserveInvariants) {
  const auto cloud = workload::make_scenario(small_params(), 7);
  alloc::AllocatorOptions opts;
  Rng rng(opts.seed);
  dist::ParallelEval eval;
  AllocState state(alloc::build_initial_solution(cloud, opts, rng, eval));
  ASSERT_TRUE(state.aggregates_consistent());

  alloc::reassign_pass(state, opts);
  EXPECT_TRUE(state.aggregates_consistent());
  alloc::adjust_all_shares(state, opts);
  EXPECT_TRUE(state.aggregates_consistent());
  alloc::adjust_all_dispersions(state, opts);
  EXPECT_TRUE(state.aggregates_consistent());
  alloc::adjust_server_power(state, opts);
  EXPECT_TRUE(state.aggregates_consistent());
  alloc::reassign_pass_snapshot(state, opts, eval);
  EXPECT_TRUE(state.aggregates_consistent());
}

TEST(AllocState, CheckpointMaterializeRoundTrips) {
  const auto cloud = workload::make_scenario(small_params(), 11);
  alloc::AllocatorOptions opts;
  Rng rng(opts.seed);
  dist::ParallelEval eval;
  AllocState state(alloc::build_initial_solution(cloud, opts, rng, eval));

  const double profit_at_ckpt = state.profit();
  const AllocState::Checkpoint ckpt = state.checkpoint(profit_at_ckpt);

  // Mutate past the checkpoint; materialization must restore the old
  // placements, not the current ones.
  alloc::adjust_all_shares(state, opts);
  alloc::reassign_pass(state, opts);

  const Allocation restored = state.materialize(ckpt);
  for (ClientId i : cloud.client_ids()) {
    ASSERT_EQ(restored.cluster_of(i), ckpt.cluster_of[i.index()]);
    const auto& want = ckpt.placements[i.index()];
    const auto& got = restored.placements(i);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t n = 0; n < want.size(); ++n) {
      EXPECT_EQ(got[n].server, want[n].server);
      EXPECT_EQ(got[n].psi, want[n].psi);
      EXPECT_EQ(got[n].phi_p, want[n].phi_p);
      EXPECT_EQ(got[n].phi_n, want[n].phi_n);
    }
  }
  // Re-evaluating the materialized allocation may differ from the carried
  // scalar by summation-order ulps only.
  EXPECT_NEAR(model::profit(restored), profit_at_ckpt,
              1e-9 * std::max(1.0, std::fabs(profit_at_ckpt)));
}

TEST(AllocState, CorruptedAggregateTripsTheChecker) {
  const auto cloud = workload::make_scenario(small_params(), 13);
  alloc::AllocatorOptions opts;
  Rng rng(opts.seed);
  dist::ParallelEval eval;
  AllocState state(alloc::build_initial_solution(cloud, opts, rng, eval));
  ASSERT_TRUE(state.aggregates_consistent());

  state.corrupt_aggregate_for_test(ServerId{0}, 1e-3);
  EXPECT_FALSE(state.aggregates_consistent());
  EXPECT_DEATH(state.check_invariants(), "");
}

TEST(AllocState, AllocatorBitIdenticalAcrossThreadCounts) {
  workload::ScenarioParams params;
  params.num_clients = 40;
  params.servers_per_cluster = 10;
  for (std::uint64_t seed : {5, 19}) {
    const auto cloud = workload::make_scenario(params, seed);
    double profit_1t = 0.0;
    for (int threads : {1, 4, 8}) {
      alloc::AllocatorOptions opts;
      opts.num_threads = threads;
      const auto result = alloc::ResourceAllocator(opts).run(cloud);
      if (threads == 1)
        profit_1t = result.report.final_profit;
      else
        EXPECT_EQ(result.report.final_profit, profit_1t)
            << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(AllocState, AllocatorBitIdenticalWithPruningOnAndOff) {
  workload::ScenarioParams params;
  params.num_clients = 40;
  params.servers_per_cluster = 10;
  const auto cloud = workload::make_scenario(params, 23);

  alloc::AllocatorOptions pruned;  // default: candidate_topk on
  alloc::AllocatorOptions exact;
  exact.candidate_topk = 0;
  const auto a = alloc::ResourceAllocator(pruned).run(cloud);
  const auto b = alloc::ResourceAllocator(exact).run(cloud);
  EXPECT_EQ(a.report.final_profit, b.report.final_profit);
}

}  // namespace
}  // namespace cloudalloc::model
