#include "common/rng.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace cloudalloc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(2.0, 6.0);
  EXPECT_NEAR(sum / n, 4.0, 0.02);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.005);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(29);
  for (int i = 0; i < 10'000; ++i) EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(31);
  double sum = 0.0, sq = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(37);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, IndexWithinBound) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(17), 17u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(43);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyMoves) {
  Rng rng(47);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(53);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (parent() == child()) ++equal;
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace cloudalloc
