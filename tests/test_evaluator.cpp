#include "model/evaluator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "workload/scenario.h"

namespace cloudalloc::model {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest() : cloud_(workload::make_tiny_scenario(3)) {}
  Cloud cloud_;
};

TEST_F(EvaluatorTest, EmptyAllocationHasZeroProfit) {
  Allocation alloc(cloud_);
  EXPECT_DOUBLE_EQ(profit(alloc), 0.0);
  const auto breakdown = evaluate(alloc);
  EXPECT_DOUBLE_EQ(breakdown.revenue, 0.0);
  EXPECT_DOUBLE_EQ(breakdown.cost, 0.0);
  EXPECT_EQ(breakdown.active_servers, 0);
}

TEST_F(EvaluatorTest, HandComputedSingleClient) {
  Allocation alloc(cloud_);
  // Client 0: utility class 0 = Linear(2.5, 0.6); lambda_a = lambda = 1,
  // alpha_p = 0.5, alpha_n = 0.6. Server 0: small class, cap 4/4,
  // P0 = 1, P1 = 2.
  alloc.assign(ClientId{0}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.5, 0.5}});
  const double r = 1.0 / (0.5 * 4.0 / 0.5 - 1.0) +
                   1.0 / (0.5 * 4.0 / 0.6 - 1.0);
  const double revenue = 1.0 * (2.5 - 0.6 * r);
  const double util = 1.0 * 0.5 / 4.0;  // lambda*alpha/cap
  const double cost = 1.0 + 2.0 * util;
  EXPECT_NEAR(profit(alloc), revenue - cost, 1e-12);

  const auto breakdown = evaluate(alloc);
  EXPECT_NEAR(breakdown.revenue, revenue, 1e-12);
  EXPECT_NEAR(breakdown.cost, cost, 1e-12);
  EXPECT_NEAR(breakdown.profit, revenue - cost, 1e-12);
  EXPECT_EQ(breakdown.active_servers, 1);
  EXPECT_TRUE(breakdown.clients[0].assigned);
  EXPECT_NEAR(breakdown.clients[0].response_time, r, 1e-12);
  EXPECT_FALSE(breakdown.clients[1].assigned);
}

TEST_F(EvaluatorTest, UnassignedClientEarnsNothing) {
  Allocation alloc(cloud_);
  EXPECT_DOUBLE_EQ(client_revenue(alloc, ClientId{0}), 0.0);
}

TEST_F(EvaluatorTest, UnstableClientEarnsNothingButServerStillCosts) {
  Allocation alloc(cloud_);
  alloc.assign(ClientId{0}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.01, 0.5}});  // unstable p-stage
  EXPECT_DOUBLE_EQ(client_revenue(alloc, ClientId{0}), 0.0);
  EXPECT_GT(server_cost(alloc, ServerId{0}), 0.0);
  EXPECT_LT(profit(alloc), 0.0);
}

TEST_F(EvaluatorTest, UtilityClampedToZeroPastCrossing) {
  Allocation alloc(cloud_);
  // Give client 0 barely-stable shares so R is huge.
  const double phi_min_p = (1.0 + 0.01) * 0.5 / 4.0;
  const double phi_min_n = (1.0 + 0.01) * 0.6 / 4.0;
  alloc.assign(ClientId{0}, ClusterId{0}, {Placement{ServerId{0}, 1.0, phi_min_p, phi_min_n}});
  const double r = alloc.response_time(ClientId{0});
  EXPECT_GT(r, cloud_.utility_of(ClientId{0}).zero_crossing());
  EXPECT_DOUBLE_EQ(client_revenue(alloc, ClientId{0}), 0.0);
}

TEST_F(EvaluatorTest, InactiveServerCostsNothing) {
  Allocation alloc(cloud_);
  EXPECT_DOUBLE_EQ(server_cost(alloc, ServerId{0}), 0.0);
}

TEST_F(EvaluatorTest, CostGrowsWithUtilization) {
  Allocation alloc1(cloud_);
  alloc1.assign(ClientId{0}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.5, 0.5}});  // lambda 1
  Allocation alloc2(cloud_);
  alloc2.assign(ClientId{1}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.5, 0.5}});  // lambda 1.5
  EXPECT_LT(server_cost(alloc1, ServerId{0}), server_cost(alloc2, ServerId{0}));
}

TEST_F(EvaluatorTest, CachedProfitTracksScratchEvaluationUnderChurn) {
  // profit() is incrementally cached; evaluate() recomputes from scratch.
  // Drive heavy churn and require exact agreement throughout.
  Allocation alloc(cloud_);
  Rng rng(4242);
  for (int step = 0; step < 300; ++step) {
    const ClientId i =
        static_cast<ClientId>(rng.uniform_int(0, cloud_.num_clients() - 1));
    if (alloc.is_assigned(i)) alloc.clear(i);
    if (rng.bernoulli(0.6)) {
      const ClusterId k = ClusterId{static_cast<int>(rng.uniform_int(0, 1))};
      const auto& servers = cloud_.cluster(k).servers;
      alloc.assign(i, k,
                   {Placement{servers[rng.index(servers.size())], 1.0,
                              rng.uniform(0.3, 0.6), rng.uniform(0.3, 0.6)}});
    }
    ASSERT_NEAR(profit(alloc), evaluate(alloc).profit, 1e-9)
        << "at step " << step;
  }
}

TEST_F(EvaluatorTest, CloneCarriesAValidProfitCache) {
  Allocation alloc(cloud_);
  alloc.assign(ClientId{0}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.5, 0.5}});
  (void)profit(alloc);  // warm the cache
  Allocation copy = alloc.clone();
  copy.assign(ClientId{1}, ClusterId{0}, {Placement{ServerId{1}, 1.0, 0.5, 0.5}});
  EXPECT_NEAR(profit(copy), evaluate(copy).profit, 1e-9);
  EXPECT_NEAR(profit(alloc), evaluate(alloc).profit, 1e-9);
}

TEST_F(EvaluatorTest, ProfitMatchesBreakdownOnRandomStates) {
  Allocation alloc(cloud_);
  alloc.assign(ClientId{0}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.4, 0.4}});
  alloc.assign(ClientId{1}, ClusterId{0}, {Placement{ServerId{1}, 1.0, 0.5, 0.5}});
  alloc.assign(ClientId{2}, ClusterId{1}, {Placement{ServerId{2}, 0.5, 0.4, 0.4}, Placement{ServerId{3}, 0.5, 0.4, 0.4}});
  const auto breakdown = evaluate(alloc);
  EXPECT_NEAR(breakdown.profit, profit(alloc), 1e-12);
  EXPECT_EQ(breakdown.active_servers, alloc.num_active_servers());
}

}  // namespace
}  // namespace cloudalloc::model
