#include "common/check.h"

#include <type_traits>

#include <gtest/gtest.h>

#include "common/strong_id.h"
#include "common/units.h"
#include "model/types.h"

namespace cloudalloc {
namespace {

// ---------------------------------------------------------------------------
// CHECK / CHECK_MSG abort with a diagnosable message: the failed
// expression, the source file, and the caller-provided context all have
// to survive into the death message, or a production CHECK trip is
// undebuggable.
// ---------------------------------------------------------------------------

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, FailureMessageContainsExpression) {
  EXPECT_DEATH(CHECK(1 == 2), "CHECK failed: 1 == 2");
}

TEST(CheckDeathTest, FailureMessageContainsFile) {
  EXPECT_DEATH(CHECK(false), "test_check\\.cpp");
}

TEST(CheckDeathTest, CheckMsgCarriesContext) {
  EXPECT_DEATH(CHECK_MSG(2 + 2 == 5, "arithmetic is broken"),
               "CHECK failed: 2 \\+ 2 == 5.*arithmetic is broken");
}

TEST(CheckDeathTest, PassingCheckIsSilent) {
  CHECK(1 + 1 == 2);
  CHECK_MSG(true, "never printed");
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Compile-time negative space of Id<Tag>. These assert that the
// *absence* of operations is stable API: if someone adds an implicit
// conversion or a cross-family comparison, this file stops compiling.
// (The probes are concepts so an absent operator is a substitution
// failure instead of a hard error.)
// ---------------------------------------------------------------------------

template <class A, class B>
concept CanEq = requires(A a, B b) { a == b; };
template <class A, class B>
concept CanLt = requires(A a, B b) { a < b; };
template <class A, class B>
concept CanAdd = requires(A a, B b) { a + b; };
template <class A, class B>
concept CanSub = requires(A a, B b) { a - b; };
template <class A, class B>
concept CanMul = requires(A a, B b) { a * b; };
template <class A>
concept CanPreIncrement = requires(A a) { ++a; };
template <class V, class I>
concept CanIndex = requires(V v, I i) { v[i]; };

// Construction from a raw index is explicit in both directions.
static_assert(!std::is_convertible_v<int, model::ClientId>);
static_assert(!std::is_convertible_v<model::ClientId, int>);
static_assert(std::is_constructible_v<model::ClientId, int>);

// Id families never interconvert or compare across tags.
static_assert(!std::is_convertible_v<model::ClientId, model::ServerId>);
static_assert(!std::is_constructible_v<model::ServerId, model::ClientId>);
static_assert(!CanEq<model::ClientId, model::ServerId>);
static_assert(!CanLt<model::ClientId, model::ClusterId>);

// No accidental arithmetic on ids; index math must go through value().
static_assert(!CanAdd<model::ClientId, model::ClientId>);
static_assert(!CanPreIncrement<model::ClientId>);
static_assert(!CanAdd<model::ClientId, int>);

// Same-family comparison still works, and the wrapper costs nothing.
static_assert(model::ClientId{2} == model::ClientId{2});
static_assert(model::ClientId{1} < model::ClientId{3});
static_assert(sizeof(model::ClientId) == sizeof(int));
static_assert(std::is_trivially_copyable_v<model::ClientId>);
static_assert(!model::ClientId{}.valid());
static_assert(model::kNoServerClass == model::ServerClassId::kNone);
static_assert(model::kNoUtilityClass == model::UtilityClassId::kNone);

// ---------------------------------------------------------------------------
// Compile-time negative space of Quantity<Dim>: only the dimension map
// in common/units.h exists; everything else must fail to compile.
// ---------------------------------------------------------------------------

using units::ArrivalRate;
using units::Share;
using units::Time;
using units::Work;
using units::WorkRate;

// No implicit double boundary in either direction.
static_assert(!std::is_convertible_v<double, ArrivalRate>);
static_assert(!std::is_convertible_v<ArrivalRate, double>);
static_assert(std::is_constructible_v<ArrivalRate, double>);

// Cross-dimension sums and comparisons do not exist.
static_assert(!CanAdd<ArrivalRate, Work>);
static_assert(!CanSub<ArrivalRate, WorkRate>);
static_assert(!CanEq<Time, Work>);
static_assert(!CanLt<Share, Time>);

// Products outside the dimension map do not exist (rate*rate, time*time,
// share*share have no physical meaning in the model).
static_assert(!CanMul<ArrivalRate, ArrivalRate>);
static_assert(!CanMul<Time, Time>);
static_assert(!CanMul<Share, Share>);

// The sanctioned algebra, evaluated at compile time.
static_assert(ArrivalRate{2.0} * Work{0.5} == WorkRate{1.0});
static_assert(Share{0.5} * WorkRate{4.0} == WorkRate{2.0});
static_assert(WorkRate{2.0} / Work{0.5} == ArrivalRate{4.0});
static_assert(1.0 / ArrivalRate{4.0} == Time{0.25});
static_assert(ArrivalRate{3.0} / ArrivalRate{1.5} == 2.0);

// Zero-overhead layout.
static_assert(sizeof(ArrivalRate) == sizeof(double));
static_assert(std::is_trivially_copyable_v<ArrivalRate>);
static_assert(std::is_trivially_copyable_v<Time>);

// IdVector is indexable only by its own family.
static_assert(CanIndex<IdVector<model::ServerId, double>, model::ServerId>);
static_assert(!CanIndex<IdVector<model::ServerId, double>, model::ClientId>);
static_assert(!CanIndex<IdVector<model::ServerId, double>, int>);

}  // namespace
}  // namespace cloudalloc
