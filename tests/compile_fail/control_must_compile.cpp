// Positive control for the compile-fail harness: this snippet uses the
// same headers and build flags as its siblings and MUST compile. If it
// does not, the harness is misconfigured (bad include path, wrong
// standard) and every "expected failure" would be vacuous.
#include "common/units.h"
#include "model/types.h"

namespace model = cloudalloc::model;
namespace units = cloudalloc::units;

double fine() {
  const model::ServerId s{1};
  const units::WorkRate load = units::ArrivalRate{2.0} * units::Work{0.5};
  return static_cast<double>(s.value()) + load.value();
}
