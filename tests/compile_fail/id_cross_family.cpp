// MUST NOT COMPILE: a client id is not a server id. Passing one id
// family where another is expected has to be rejected at the call site,
// not discovered as a mispriced server at run time.
#include "model/types.h"

namespace model = cloudalloc::model;

double price_server(model::ServerId s) { return static_cast<double>(s.value()); }

double oops() {
  const model::ClientId c{3};
  return price_server(c);  // cross-family argument: no conversion exists
}
