// MUST NOT COMPILE: requests/time + work/request is dimensional
// nonsense. The Quantity layer defines addition only within a single
// dimension, so this sum has no operator to bind to.
#include "common/units.h"

namespace units = cloudalloc::units;

double oops() {
  const units::ArrivalRate lambda{2.0};
  const units::Work alpha{0.5};
  return (lambda + alpha).value();  // mixed-dimension sum: no operator+
}
