// Must NOT compile under clang -Wthread-safety -Werror=thread-safety:
// writing a GUARDED_BY field without holding its mutex is the bug class
// the whole capability layer exists to reject (a racy counter bump here
// is a silently-wrong profit in a sharded solve). Expected diagnostic:
//   writing variable 'count_' requires holding mutex 'mutex_' exclusively
#include "common/sync.h"

namespace {

class Counter {
 public:
  // No lock taken: under the annotations this is a compile error, not a
  // TSan lottery ticket.
  void bump_unlocked() { ++count_; }

 private:
  cloudalloc::sync::Mutex mutex_;
  int count_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

void touch() { Counter().bump_unlocked(); }
