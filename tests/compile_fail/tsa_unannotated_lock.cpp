// Must NOT compile under clang -Wthread-safety -Werror=thread-safety:
// a manual lock() with no matching unlock on the exit path leaks the
// capability — the classic early-return deadlock. The scoped MutexLock
// cannot express this bug, which is exactly why manual lock()/unlock()
// calls stay annotated (ACQUIRE/RELEASE on sync::Mutex) and analyzed.
// Expected diagnostic:
//   mutex 'g_mutex' is still held at the end of function
#include "common/sync.h"

namespace {

cloudalloc::sync::Mutex g_mutex;
int g_value GUARDED_BY(g_mutex) = 0;

int read_with_leaked_lock() {
  g_mutex.lock();
  return g_value;  // returns without releasing: analysis rejects this
}

}  // namespace

int touch() { return read_with_leaked_lock(); }
