// Control snippet for the thread-safety compile-fail checks: correct
// capability usage MUST compile under
//   clang++ -Wthread-safety -Werror=thread-safety
// or the two expected-failure snippets (tsa_unguarded_write,
// tsa_unannotated_lock) prove nothing. It exercises the full pattern
// the codebase uses: GUARDED_BY fields read/written under a scoped
// MutexLock, and the explicit CondVar wait loop from common/sync.h's
// file comment.
#include "common/sync.h"

namespace {

cloudalloc::sync::Mutex g_mutex;
cloudalloc::sync::CondVar g_cv;
bool g_ready GUARDED_BY(g_mutex) = false;
int g_value GUARDED_BY(g_mutex) = 0;

int read_locked() {
  cloudalloc::sync::MutexLock lock(g_mutex);
  return g_value;
}

void publish(int value) {
  {
    cloudalloc::sync::MutexLock lock(g_mutex);
    g_value = value;
    g_ready = true;
  }
  g_cv.notify_all();
}

int await_value() {
  cloudalloc::sync::MutexLock lock(g_mutex);
  while (!g_ready) g_cv.wait(lock);
  return g_value;
}

// Odr-use everything so no -Wunused variant can reject the control.
int use_all() { return read_locked() + (publish(1), await_value()); }

}  // namespace

int touch() { return use_all(); }
