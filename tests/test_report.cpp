#include "model/report.h"

#include <sstream>

#include <gtest/gtest.h>

#include "workload/scenario.h"

namespace cloudalloc::model {
namespace {

ProfitBreakdown sample_breakdown() {
  const Cloud cloud = workload::make_tiny_scenario(3);
  Allocation alloc(cloud);
  alloc.assign(ClientId{0}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.5, 0.5}});
  alloc.assign(ClientId{1}, ClusterId{0}, {Placement{ServerId{1}, 1.0, 0.6, 0.6}});
  // Client 2 left unserved.
  return evaluate(alloc);
}

TEST(Report, SummaryLineMentionsTheNumbers) {
  const auto breakdown = sample_breakdown();
  const std::string line = summary_line(breakdown, 4);
  EXPECT_NE(line.find("profit"), std::string::npos);
  EXPECT_NE(line.find("2/4 active"), std::string::npos);
  EXPECT_NE(line.find("2/3 served"), std::string::npos);
}

TEST(Report, ClientTableSortsUnservedFirst) {
  const auto breakdown = sample_breakdown();
  std::ostringstream os;
  client_table(breakdown).print(os);
  const std::string out = os.str();
  const auto unserved_pos = out.find("unserved");
  ASSERT_NE(unserved_pos, std::string::npos);
  // The unserved row appears before any served revenue rows.
  const auto first_data_row = out.find('\n', out.find("---"));
  EXPECT_LT(unserved_pos, out.find("0.", first_data_row));
}

TEST(Report, MaxClientsTruncates) {
  const auto breakdown = sample_breakdown();
  ReportOptions options;
  options.max_clients = 1;
  EXPECT_EQ(client_table(breakdown, options).rows(), 1u);
  options.max_clients = 0;
  EXPECT_EQ(client_table(breakdown, options).rows(), 3u);
}

TEST(Report, ServerTableListsOnlyActive) {
  const auto breakdown = sample_breakdown();
  EXPECT_EQ(server_table(breakdown).rows(), 2u);
}

TEST(Report, PrintReportCombinesSections) {
  const auto breakdown = sample_breakdown();
  std::ostringstream os;
  ReportOptions options;
  options.include_servers = true;
  print_report(os, breakdown, 4, options);
  const std::string out = os.str();
  EXPECT_NE(out.find("profit"), std::string::npos);
  EXPECT_NE(out.find("response_time"), std::string::npos);
  EXPECT_NE(out.find("utilization_p"), std::string::npos);
}

}  // namespace
}  // namespace cloudalloc::model
