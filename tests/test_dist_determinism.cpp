// Determinism and parity guarantees of the distributed mode, run-to-run:
// the multi-threaded manager must be a pure function of (cloud, options),
// independent of thread scheduling.
#include <algorithm>

#include <gtest/gtest.h>

#include "dist/manager.h"
#include "model/evaluator.h"
#include "model/feasibility.h"
#include "workload/scenario.h"

namespace cloudalloc::dist {
namespace {

model::Cloud make_cloud(std::uint64_t seed) {
  workload::ScenarioParams params;
  params.num_clients = 25;
  params.servers_per_cluster = 6;
  return workload::make_scenario(params, seed);
}

TEST(DistDeterminism, SameSeedSameProfitAcrossRuns) {
  const auto cloud = make_cloud(61);
  alloc::AllocatorOptions opts;
  opts.seed = 2;
  opts.max_local_search_rounds = 5;
  DistributedAllocator allocator(opts);
  const auto a = allocator.run(cloud);
  const auto b = allocator.run(cloud);
  EXPECT_DOUBLE_EQ(a.report.final_profit, b.report.final_profit);
  EXPECT_EQ(a.report.rounds_run, b.report.rounds_run);
}

TEST(DistDeterminism, IdenticalAssignmentsAcrossRuns) {
  const auto cloud = make_cloud(67);
  alloc::AllocatorOptions opts;
  opts.seed = 3;
  opts.max_local_search_rounds = 3;
  DistributedAllocator allocator(opts);
  const auto a = allocator.run(cloud);
  const auto b = allocator.run(cloud);
  for (model::ClientId i : cloud.client_ids()) {
    ASSERT_EQ(a.allocation.is_assigned(i), b.allocation.is_assigned(i));
    if (!a.allocation.is_assigned(i)) continue;
    EXPECT_EQ(a.allocation.cluster_of(i), b.allocation.cluster_of(i));
    const auto& pa = a.allocation.placements(i);
    const auto& pb = b.allocation.placements(i);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t s = 0; s < pa.size(); ++s) {
      EXPECT_EQ(pa[s].server, pb[s].server);
      EXPECT_DOUBLE_EQ(pa[s].psi, pb[s].psi);
      EXPECT_DOUBLE_EQ(pa[s].phi_p, pb[s].phi_p);
    }
  }
}

TEST(DistDeterminism, MessageCountIsDeterministic) {
  const auto cloud = make_cloud(71);
  alloc::AllocatorOptions opts;
  opts.seed = 4;
  opts.max_local_search_rounds = 2;
  DistributedAllocator allocator(opts);
  const auto a = allocator.run(cloud);
  const auto b = allocator.run(cloud);
  EXPECT_EQ(a.report.messages, b.report.messages);
}

void expect_identical(const model::Allocation& a, const model::Allocation& b) {
  const auto& cloud = a.cloud();
  for (model::ClientId i : cloud.client_ids()) {
    ASSERT_EQ(a.is_assigned(i), b.is_assigned(i)) << "client " << i;
    if (!a.is_assigned(i)) continue;
    EXPECT_EQ(a.cluster_of(i), b.cluster_of(i));
    const auto& pa = a.placements(i);
    const auto& pb = b.placements(i);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t s = 0; s < pa.size(); ++s) {
      EXPECT_EQ(pa[s].server, pb[s].server);
      EXPECT_DOUBLE_EQ(pa[s].psi, pb[s].psi);
      EXPECT_DOUBLE_EQ(pa[s].phi_p, pb[s].phi_p);
      EXPECT_DOUBLE_EQ(pa[s].phi_n, pb[s].phi_n);
    }
  }
}

// The parallel evaluation engine's acceptance bar: the same seed produces
// a bit-identical allocation at any thread count.
TEST(ThreadDeterminism, SequentialAllocatorIdenticalAcrossThreadCounts) {
  const auto cloud = make_cloud(73);
  alloc::AllocatorOptions opts;
  opts.seed = 5;
  opts.num_initial_solutions = 4;
  opts.max_local_search_rounds = 4;
  opts.num_threads = 1;
  const auto base = alloc::ResourceAllocator(opts).run(cloud);
  for (int threads : {2, 8}) {
    alloc::AllocatorOptions topts = opts;
    topts.num_threads = threads;
    const auto run = alloc::ResourceAllocator(topts).run(cloud);
    EXPECT_DOUBLE_EQ(run.report.final_profit, base.report.final_profit)
        << "threads " << threads;
    expect_identical(base.allocation, run.allocation);
  }
}

TEST(ThreadDeterminism, DistributedIdenticalAcrossThreadCounts) {
  const auto cloud = make_cloud(79);
  alloc::AllocatorOptions opts;
  opts.seed = 6;
  opts.num_initial_solutions = 4;
  opts.max_local_search_rounds = 4;
  opts.num_threads = 1;
  const auto base = DistributedAllocator(opts).run(cloud);
  for (int threads : {2, 8}) {
    alloc::AllocatorOptions topts = opts;
    topts.num_threads = threads;
    const auto run = DistributedAllocator(topts).run(cloud);
    EXPECT_DOUBLE_EQ(run.report.final_profit, base.report.final_profit)
        << "threads " << threads;
    EXPECT_EQ(run.report.rounds_run, base.report.rounds_run);
    expect_identical(base.allocation, run.allocation);
  }
}

// Regression for the dipped-round bug: the manager used to report and
// return the profit of the *final* improvement round even when that round
// dipped below an earlier one (its old stop rule broke exactly on the
// first non-improving round, so any dip became the returned allocation).
// This scenario/seed pair deterministically produces a final round whose
// profit is below the best-seen round; with best-seen tracking the
// returned allocation must realize the best profit, not the dipped one.
TEST(DistRegression, DippedFinalRoundDoesNotDegradeResult) {
  workload::ScenarioParams params;
  params.num_clients = 25;
  params.servers_per_cluster = 6;
  const auto cloud = workload::make_scenario(params, 2);
  alloc::AllocatorOptions opts;
  opts.seed = 2;
  opts.max_local_search_rounds = 8;
  const auto result = DistributedAllocator(opts).run(cloud);
  const auto& profits = result.report.round_profits;
  ASSERT_FALSE(profits.empty());

  double best_round = result.report.initial_profit;
  for (double p : profits) best_round = std::max(best_round, p);
  // The scenario must actually exhibit the dip, or this test guards
  // nothing: the last round ends below the best seen.
  ASSERT_LT(profits.back(), best_round - 1e-9)
      << "scenario no longer produces a dipped final round; re-pin seeds";

  // Best-seen tracking: the report and the returned allocation both
  // realize the best profit ever seen, not the final round's.
  EXPECT_DOUBLE_EQ(result.report.final_profit, best_round);
  EXPECT_NEAR(model::profit(result.allocation), best_round, 1e-9);
  EXPECT_GE(result.report.final_profit,
            result.report.initial_profit - 1e-9);
}

}  // namespace
}  // namespace cloudalloc::dist
