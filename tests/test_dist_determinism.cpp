// Determinism and parity guarantees of the distributed mode, run-to-run:
// the multi-threaded manager must be a pure function of (cloud, options),
// independent of thread scheduling.
#include <gtest/gtest.h>

#include "dist/manager.h"
#include "model/evaluator.h"
#include "model/feasibility.h"
#include "workload/scenario.h"

namespace cloudalloc::dist {
namespace {

model::Cloud make_cloud(std::uint64_t seed) {
  workload::ScenarioParams params;
  params.num_clients = 25;
  params.servers_per_cluster = 6;
  return workload::make_scenario(params, seed);
}

TEST(DistDeterminism, SameSeedSameProfitAcrossRuns) {
  const auto cloud = make_cloud(61);
  alloc::AllocatorOptions opts;
  opts.seed = 2;
  opts.max_local_search_rounds = 5;
  DistributedAllocator allocator({opts});
  const auto a = allocator.run(cloud);
  const auto b = allocator.run(cloud);
  EXPECT_DOUBLE_EQ(a.report.final_profit, b.report.final_profit);
  EXPECT_EQ(a.report.rounds_run, b.report.rounds_run);
}

TEST(DistDeterminism, IdenticalAssignmentsAcrossRuns) {
  const auto cloud = make_cloud(67);
  alloc::AllocatorOptions opts;
  opts.seed = 3;
  opts.max_local_search_rounds = 3;
  DistributedAllocator allocator({opts});
  const auto a = allocator.run(cloud);
  const auto b = allocator.run(cloud);
  for (model::ClientId i = 0; i < cloud.num_clients(); ++i) {
    ASSERT_EQ(a.allocation.is_assigned(i), b.allocation.is_assigned(i));
    if (!a.allocation.is_assigned(i)) continue;
    EXPECT_EQ(a.allocation.cluster_of(i), b.allocation.cluster_of(i));
    const auto& pa = a.allocation.placements(i);
    const auto& pb = b.allocation.placements(i);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t s = 0; s < pa.size(); ++s) {
      EXPECT_EQ(pa[s].server, pb[s].server);
      EXPECT_DOUBLE_EQ(pa[s].psi, pb[s].psi);
      EXPECT_DOUBLE_EQ(pa[s].phi_p, pb[s].phi_p);
    }
  }
}

TEST(DistDeterminism, MessageCountIsDeterministic) {
  const auto cloud = make_cloud(71);
  alloc::AllocatorOptions opts;
  opts.seed = 4;
  opts.max_local_search_rounds = 2;
  DistributedAllocator allocator({opts});
  const auto a = allocator.run(cloud);
  const auto b = allocator.run(cloud);
  EXPECT_EQ(a.report.messages, b.report.messages);
}

}  // namespace
}  // namespace cloudalloc::dist
