// The wire protocol end to end: codec round trips are bitwise, malformed
// frames are rejected (never fatal), AgentActor's versioned-delta replica
// follows the idempotence contract of dist/protocol.h, and a greedy built
// purely from BidRequest/BidResponse exchanges prices insertions
// bit-identically to local ClusterAgent evaluation.
#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "alloc/initial.h"
#include "common/rng.h"
#include "dist/cluster_agent.h"
#include "dist/codec.h"
#include "dist/protocol.h"
#include "dist/transport.h"
#include "model/evaluator.h"
#include "model/feasibility.h"
#include "workload/scenario.h"

namespace cloudalloc::dist {
namespace {

constexpr std::uint64_t kEpoch = 42;

/// Dense placement rows of an allocation (one per client, id order) — the
/// same shape the manager ships as deltas.
std::vector<protocol::ClientPlacements> rows_of(const model::Allocation& a) {
  std::vector<protocol::ClientPlacements> rows;
  for (model::ClientId i : a.cloud().client_ids()) {
    protocol::ClientPlacements row;
    row.client = i;
    if (a.is_assigned(i)) {
      row.cluster = a.cluster_of(i);
      row.placements = a.placements(i);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

model::Allocation initial_allocation(const model::Cloud& cloud,
                                     const alloc::AllocatorOptions& opts) {
  Rng rng(opts.seed);
  return alloc::build_initial_solution(cloud, opts, rng);
}

// --- codec ---------------------------------------------------------------

TEST(Codec, AgentMessagesRoundTripBitwise) {
  workload::ScenarioParams params;
  params.num_clients = 12;
  params.servers_per_cluster = 4;
  const auto cloud = workload::make_scenario(params, 21);
  alloc::AllocatorOptions opts;
  opts.seed = 3;
  const auto alloc0 = initial_allocation(cloud, opts);

  protocol::ImproveRequest improve;
  improve.epoch = kEpoch;
  improve.round = 7;
  improve.cluster = model::ClusterId{1};
  improve.delta.base_version = 2;
  improve.delta.target_version = 5;
  improve.delta.changes = rows_of(alloc0);

  const std::string bytes = codec::encode(protocol::AgentMessage{improve});
  const auto decoded = codec::decode_agent_message(bytes);
  ASSERT_TRUE(decoded.has_value());
  const auto* req = std::get_if<protocol::ImproveRequest>(&*decoded);
  ASSERT_NE(req, nullptr);
  EXPECT_EQ(req->epoch, kEpoch);
  EXPECT_EQ(req->round, 7);
  EXPECT_EQ(req->cluster, model::ClusterId{1});
  EXPECT_EQ(req->delta.base_version, 2);
  EXPECT_EQ(req->delta.target_version, 5);
  ASSERT_EQ(req->delta.changes.size(), improve.delta.changes.size());
  for (std::size_t r = 0; r < req->delta.changes.size(); ++r) {
    const auto& got = req->delta.changes[r];
    const auto& want = improve.delta.changes[r];
    EXPECT_EQ(got.client, want.client);
    EXPECT_EQ(got.cluster, want.cluster);
    ASSERT_EQ(got.placements.size(), want.placements.size());
    for (std::size_t p = 0; p < got.placements.size(); ++p) {
      EXPECT_EQ(got.placements[p].server, want.placements[p].server);
      // Exact ==: the %.17g codec round-trips every double bit for bit.
      EXPECT_EQ(got.placements[p].psi, want.placements[p].psi);
      EXPECT_EQ(got.placements[p].phi_p, want.placements[p].phi_p);
      EXPECT_EQ(got.placements[p].phi_n, want.placements[p].phi_n);
    }
  }
  // Strongest form: decode(encode(m)) re-encodes to the same bytes.
  EXPECT_EQ(codec::encode(*decoded), bytes);

  protocol::BidRequest bid;
  bid.epoch = kEpoch;
  bid.seq = 19;
  bid.cluster = model::ClusterId{0};
  bid.client = model::ClientId{4};
  bid.delta.base_version = 1;
  bid.delta.target_version = 1;
  const std::string bid_bytes = codec::encode(protocol::AgentMessage{bid});
  const auto bid_decoded = codec::decode_agent_message(bid_bytes);
  ASSERT_TRUE(bid_decoded.has_value());
  EXPECT_EQ(codec::encode(*bid_decoded), bid_bytes);
  const auto* breq = std::get_if<protocol::BidRequest>(&*bid_decoded);
  ASSERT_NE(breq, nullptr);
  EXPECT_EQ(breq->seq, 19);
  EXPECT_EQ(breq->client, model::ClientId{4});

  const std::string bye =
      codec::encode(protocol::AgentMessage{protocol::Shutdown{kEpoch}});
  const auto bye_decoded = codec::decode_agent_message(bye);
  ASSERT_TRUE(bye_decoded.has_value());
  EXPECT_TRUE(std::holds_alternative<protocol::Shutdown>(*bye_decoded));
  EXPECT_EQ(codec::encode(*bye_decoded), bye);
}

TEST(Codec, ManagerMessagesRoundTripBitwise) {
  // Deliberately awkward doubles: non-terminating binary fractions and a
  // value one ulp away from 1.0 must survive the trip unchanged.
  protocol::BidResponse bid;
  bid.epoch = kEpoch;
  bid.seq = 3;
  bid.cluster = model::ClusterId{2};
  bid.state_version = 9;
  bid.applied = true;
  bid.feasible = true;
  bid.score = 0.1 + 0.2;
  bid.placements.push_back(
      model::Placement{model::ServerId{5}, 1.0 / 3.0,
                       std::nextafter(1.0, 2.0), 2.0 / 7.0});
  const std::string bytes = codec::encode(protocol::ManagerMessage{bid});
  const auto decoded = codec::decode_manager_message(bytes);
  ASSERT_TRUE(decoded.has_value());
  const auto* resp = std::get_if<protocol::BidResponse>(&*decoded);
  ASSERT_NE(resp, nullptr);
  EXPECT_EQ(resp->score, 0.1 + 0.2);
  ASSERT_EQ(resp->placements.size(), 1u);
  EXPECT_EQ(resp->placements[0].psi, 1.0 / 3.0);
  EXPECT_EQ(resp->placements[0].phi_p, std::nextafter(1.0, 2.0));
  EXPECT_EQ(resp->placements[0].phi_n, 2.0 / 7.0);
  EXPECT_EQ(codec::encode(*decoded), bytes);

  protocol::ImproveResponse improve;
  improve.epoch = kEpoch;
  improve.round = 2;
  improve.cluster = model::ClusterId{0};
  improve.state_version = 4;
  improve.applied = true;
  improve.improvement.cluster = model::ClusterId{0};
  improve.improvement.profit_delta = 1e-17;
  protocol::ClientPlacements evicted;
  evicted.client = model::ClientId{6};  // eviction row: kNoCluster, empty
  improve.improvement.placements.push_back(evicted);
  const std::string ibytes = codec::encode(protocol::ManagerMessage{improve});
  const auto idecoded = codec::decode_manager_message(ibytes);
  ASSERT_TRUE(idecoded.has_value());
  const auto* iresp = std::get_if<protocol::ImproveResponse>(&*idecoded);
  ASSERT_NE(iresp, nullptr);
  EXPECT_EQ(iresp->improvement.profit_delta, 1e-17);
  ASSERT_EQ(iresp->improvement.placements.size(), 1u);
  EXPECT_EQ(iresp->improvement.placements[0].cluster, model::kNoCluster);
  EXPECT_TRUE(iresp->improvement.placements[0].placements.empty());
  EXPECT_EQ(codec::encode(*idecoded), ibytes);
}

TEST(Codec, MalformedFramesAreRejectedNotFatal) {
  const std::string cases[] = {
      "",
      "not json at all",
      "{}",
      R"({"proto":99,"type":"shutdown","epoch":1})",       // future proto
      R"({"proto":1,"epoch":1})",                          // missing type
      R"({"proto":1,"type":"no_such_type","epoch":1})",
      R"({"proto":1,"type":"improve_request","epoch":1})",  // missing body
      R"({"proto":1,"type":"improve_request","epoch":1,"round":0,)"
      R"("cluster":0,"delta":{"base":0,"target":1,"changes":[{"client":-7,)"
      R"("cluster":0,"placements":[]}]}})",                // negative client id
  };
  for (const std::string& bytes : cases) {
    std::string error;
    EXPECT_FALSE(codec::decode_agent_message(bytes, &error).has_value())
        << bytes;
    EXPECT_FALSE(error.empty()) << bytes;
  }
  // Truncating a valid frame must fail cleanly too.
  protocol::ImproveRequest improve;
  improve.epoch = kEpoch;
  const std::string valid = codec::encode(protocol::AgentMessage{improve});
  EXPECT_FALSE(
      codec::decode_agent_message(valid.substr(0, valid.size() - 3)));
  // An agent message is not a manager message and vice versa.
  EXPECT_FALSE(codec::decode_manager_message(valid).has_value());
}

// --- AgentActor delta semantics -----------------------------------------

class ActorHarness {
 public:
  ActorHarness(const model::Cloud& cloud, model::ClusterId cluster,
               const alloc::AllocatorOptions& opts)
      : transport_(cluster.value() + 1),
        actor_(cloud, cluster, opts, kEpoch, &transport_),
        thread_([this] { actor_.run(); }) {}

  ~ActorHarness() {
    transport_.close_all();
    thread_.join();
  }

  bool send(const protocol::AgentMessage& message, int agent = 0) {
    return transport_.send_to_agent(agent, codec::encode(message));
  }

  /// Receives and decodes the next manager-bound message (5 s cushion —
  /// the channel is reliable, so this never times out in practice).
  std::optional<protocol::ManagerMessage> receive(std::string* raw = nullptr) {
    auto env = transport_.manager_receive_for(5000.0);
    if (!env) return std::nullopt;
    if (raw != nullptr) *raw = env->bytes;
    return codec::decode_manager_message(env->bytes);
  }

  Transport& transport() { return transport_; }

 private:
  ChannelTransport transport_;
  AgentActor actor_;
  std::thread thread_;
};

protocol::ImproveRequest improve_request(
    int round, std::int64_t base, std::int64_t target,
    std::vector<protocol::ClientPlacements> changes = {},
    std::uint64_t epoch = kEpoch) {
  protocol::ImproveRequest req;
  req.epoch = epoch;
  req.round = round;
  req.cluster = model::ClusterId{0};
  req.delta.base_version = base;
  req.delta.target_version = target;
  req.delta.changes = std::move(changes);
  return req;
}

TEST(AgentActor, DeltaSemanticsFollowTheProtocolContract) {
  workload::ScenarioParams params;
  params.num_clients = 12;
  params.servers_per_cluster = 4;
  const auto cloud = workload::make_scenario(params, 31);
  alloc::AllocatorOptions opts;
  opts.seed = 5;
  const auto alloc0 = initial_allocation(cloud, opts);

  ActorHarness harness(cloud, model::ClusterId{0}, opts);

  // Round 1: fresh replica, delta 0 -> 1 applies.
  ASSERT_TRUE(harness.send(
      protocol::AgentMessage{improve_request(1, 0, 1, rows_of(alloc0))}));
  std::string round1_bytes;
  auto msg = harness.receive(&round1_bytes);
  ASSERT_TRUE(msg.has_value());
  auto* resp = std::get_if<protocol::ImproveResponse>(&*msg);
  ASSERT_NE(resp, nullptr);
  EXPECT_EQ(resp->round, 1);
  EXPECT_TRUE(resp->applied);
  EXPECT_EQ(resp->state_version, 1);
  EXPECT_FALSE(resp->improvement.placements.empty());

  // A delta whose base the replica never saw is refused; the response
  // reports the version actually held so the manager can rebase.
  ASSERT_TRUE(
      harness.send(protocol::AgentMessage{improve_request(2, 5, 6)}));
  msg = harness.receive();
  ASSERT_TRUE(msg.has_value());
  resp = std::get_if<protocol::ImproveResponse>(&*msg);
  ASSERT_NE(resp, nullptr);
  EXPECT_EQ(resp->round, 2);
  EXPECT_FALSE(resp->applied);
  EXPECT_EQ(resp->state_version, 1);  // replica untouched

  // Rebased delta from the reported version lands on the target.
  ASSERT_TRUE(harness.send(
      protocol::AgentMessage{improve_request(3, 1, 6, rows_of(alloc0))}));
  msg = harness.receive();
  ASSERT_TRUE(msg.has_value());
  resp = std::get_if<protocol::ImproveResponse>(&*msg);
  ASSERT_NE(resp, nullptr);
  EXPECT_TRUE(resp->applied);
  EXPECT_EQ(resp->state_version, 6);

  // A duplicated round-1 request (late network copy) is answered by
  // resending the cached encoded response VERBATIM — the replica, now at
  // version 6, is not regressed and the stages are not re-run.
  ASSERT_TRUE(harness.send(
      protocol::AgentMessage{improve_request(1, 0, 1, rows_of(alloc0))}));
  std::string duplicate_bytes;
  msg = harness.receive(&duplicate_bytes);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(duplicate_bytes, round1_bytes);

  // Messages for another epoch are ignored outright: no reply, no state
  // change (the next real exchange still sees version 6).
  ASSERT_TRUE(harness.send(protocol::AgentMessage{
      improve_request(9, 6, 7, {}, kEpoch + 1)}));
  ASSERT_TRUE(
      harness.send(protocol::AgentMessage{improve_request(4, 6, 6)}));
  msg = harness.receive();
  ASSERT_TRUE(msg.has_value());
  resp = std::get_if<protocol::ImproveResponse>(&*msg);
  ASSERT_NE(resp, nullptr);
  EXPECT_EQ(resp->round, 4);
  EXPECT_EQ(resp->state_version, 6);

  // A corrupted frame is skipped without killing the actor.
  ASSERT_TRUE(harness.transport().send_to_agent(0, "garbage {{{"));
  ASSERT_TRUE(
      harness.send(protocol::AgentMessage{improve_request(5, 6, 6)}));
  msg = harness.receive();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(std::get_if<protocol::ImproveResponse>(&*msg)->round, 5);

  // Polite shutdown ends the loop (the harness destructor would otherwise
  // end it via close_all — this exercises the Shutdown path).
  ASSERT_TRUE(harness.send(protocol::AgentMessage{protocol::Shutdown{kEpoch}}));
}

// --- remote bidding ------------------------------------------------------

// A greedy assignment driven purely by BidRequest/BidResponse exchanges
// prices every insertion bit-identically to calling the ClusterAgent core
// locally on an equally-rebuilt snapshot: the protocol adds serialization
// but no numeric drift.
TEST(AgentActor, GreedyByBidsMatchesLocalEvaluationBitwise) {
  workload::ScenarioParams params;
  params.num_clients = 10;
  params.servers_per_cluster = 4;
  const auto cloud = workload::make_scenario(params, 37);
  const int K = cloud.num_clusters();
  alloc::AllocatorOptions opts;
  opts.seed = 7;

  ChannelTransport transport(K);
  std::vector<std::unique_ptr<AgentActor>> actors;
  std::vector<std::thread> threads;
  for (int k = 0; k < K; ++k) {
    actors.push_back(std::make_unique<AgentActor>(
        cloud, model::ClusterId{k}, opts, kEpoch, &transport));
    // Capture the actor pointer, not the vector: a later push_back may
    // reallocate `actors` while this thread is already running.
    AgentActor* actor = actors.back().get();
    threads.emplace_back([actor] { actor->run(); });
  }

  // Manager-side ledger: dense rows + the authoritative state version.
  model::Allocation ledger(cloud);
  std::int64_t version = 0;
  std::vector<protocol::ClientPlacements> last_change;
  std::int64_t seq = 0;

  for (model::ClientId i : cloud.client_ids()) {
    // Broadcast: bring every replica to `version` (reliable transport, so
    // every agent sits exactly one delta behind) and price client i.
    for (int k = 0; k < K; ++k) {
      protocol::BidRequest req;
      req.epoch = kEpoch;
      req.seq = seq;
      req.cluster = model::ClusterId{k};
      req.client = i;
      req.delta.base_version = version > 0 ? version - 1 : 0;
      req.delta.target_version = version;
      req.delta.changes = last_change;
      ASSERT_TRUE(transport.send_to_agent(
          k, codec::encode(protocol::AgentMessage{req})));
    }
    // The local oracle sees a snapshot rebuilt exactly as the agents
    // rebuild theirs (same assign order, then settled).
    model::Allocation snapshot =
        protocol::rebuild_allocation(cloud, rows_of(ledger));
    (void)model::profit(snapshot);

    int best_cluster = -1;
    double best_score = 0.0;
    std::vector<model::Placement> best_placements;
    for (int n = 0; n < K; ++n) {
      auto env = transport.manager_receive_for(5000.0);
      ASSERT_TRUE(env.has_value());
      auto msg = codec::decode_manager_message(env->bytes);
      ASSERT_TRUE(msg.has_value());
      const auto* resp = std::get_if<protocol::BidResponse>(&*msg);
      ASSERT_NE(resp, nullptr);
      EXPECT_EQ(resp->seq, seq);
      EXPECT_TRUE(resp->applied);
      EXPECT_EQ(resp->state_version, version);

      const int k = resp->cluster.value();
      const auto local = ClusterAgent(resp->cluster, opts)
                             .evaluate_insertion(snapshot, i);
      ASSERT_EQ(resp->feasible, local.has_value()) << "cluster " << k;
      if (!resp->feasible) continue;
      EXPECT_EQ(resp->score, local->score) << "cluster " << k;  // bitwise
      ASSERT_EQ(resp->placements.size(), local->placements.size());
      for (std::size_t p = 0; p < resp->placements.size(); ++p) {
        EXPECT_EQ(resp->placements[p].server, local->placements[p].server);
        EXPECT_EQ(resp->placements[p].psi, local->placements[p].psi);
        EXPECT_EQ(resp->placements[p].phi_p, local->placements[p].phi_p);
        EXPECT_EQ(resp->placements[p].phi_n, local->placements[p].phi_n);
      }
      if (best_cluster < 0 || resp->score > best_score ||
          (resp->score == best_score && k < best_cluster)) {
        best_cluster = k;
        best_score = resp->score;
        best_placements = resp->placements;
      }
    }
    ++seq;
    if (best_cluster < 0) {
      last_change.clear();
      continue;  // version unchanged; next delta is empty
    }
    ledger.assign(i, model::ClusterId{best_cluster},
                  std::vector<model::Placement>(best_placements));
    protocol::ClientPlacements row;
    row.client = i;
    row.cluster = model::ClusterId{best_cluster};
    row.placements = best_placements;
    last_change.assign(1, std::move(row));
    ++version;
  }

  EXPECT_TRUE(model::is_feasible(ledger));
  int assigned = 0;
  for (model::ClientId i : cloud.client_ids())
    if (ledger.is_assigned(i)) ++assigned;
  EXPECT_GT(assigned, 0);

  for (int k = 0; k < K; ++k)
    (void)transport.send_to_agent(
        k, codec::encode(protocol::AgentMessage{protocol::Shutdown{kEpoch}}));
  transport.close_all();
  for (auto& t : threads) t.join();
}

}  // namespace
}  // namespace cloudalloc::dist
