// Tail-latency (percentile) SLAs: pricing the p95/p99 instead of the mean.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "alloc/allocator.h"
#include "model/evaluator.h"
#include "model/feasibility.h"
#include "model/serialize.h"
#include "queueing/mm1.h"
#include "sim/runner.h"
#include "workload/scenario.h"

namespace cloudalloc::model {
namespace {

TEST(TailSla, ScalesTheMeanByTheExponentialLaw) {
  const auto inner = std::make_shared<LinearUtility>(3.0, 0.5);
  TailLatencyUtility tail(inner, 0.95);
  const double scale = -std::log(0.05);
  EXPECT_NEAR(tail.scale(), scale, 1e-12);
  // Pricing at mean r means pricing the inner at the p95 = scale * r.
  for (double r : {0.1, 0.5, 1.0})
    EXPECT_DOUBLE_EQ(tail.value(r), inner->value(r * scale));
}

TEST(TailSla, ZeroCrossingShrinksByScale) {
  const auto inner = std::make_shared<LinearUtility>(3.0, 0.5);
  TailLatencyUtility tail(inner, 0.95);
  EXPECT_NEAR(tail.zero_crossing(), inner->zero_crossing() / tail.scale(),
              1e-12);
  // Tail SLAs are strictly harsher: the crossing is earlier.
  EXPECT_LT(tail.zero_crossing(), inner->zero_crossing());
}

TEST(TailSla, SlopeReflectsTheChainRule) {
  const auto inner = std::make_shared<LinearUtility>(3.0, 0.5);
  TailLatencyUtility tail(inner, 0.9);
  EXPECT_NEAR(tail.slope(0.1), tail.scale() * 0.5, 1e-12);
}

TEST(TailSla, MatchesMm1QuantileOnSingleQueue) {
  // Pricing tail.value(mean) must equal inner.value(actual p-quantile)
  // for a single M/M/1 queue.
  const double lambda = 1.0, mu = 3.0;
  const double mean = queueing::mm1_response_time(units::ArrivalRate{lambda},
                                                  units::ArrivalRate{mu})
                          .value();
  const double q95 =
      queueing::mm1_response_quantile(units::ArrivalRate{lambda},
                                      units::ArrivalRate{mu}, 0.95)
          .value();
  const auto inner = std::make_shared<LinearUtility>(5.0, 0.8);
  TailLatencyUtility tail(inner, 0.95);
  EXPECT_NEAR(tail.value(mean), inner->value(q95), 1e-12);
}

TEST(TailSla, AllocatorServesTailSlaClients) {
  const Cloud base = workload::make_tiny_scenario(1);
  std::vector<UtilityClass> utilities;
  utilities.push_back(UtilityClass{
      UtilityClassId{0},
      std::make_shared<TailLatencyUtility>(
          std::make_shared<LinearUtility>(6.0, 0.4), 0.95)});
  std::vector<Client> clients;
  for (int i = 0; i < 3; ++i) {
    Client c;
    c.id = ClientId{i};
    c.lambda_agreed = c.lambda_pred = 0.8 + 0.3 * i;
    c.alpha_p = 0.5;
    c.alpha_n = 0.5;
    c.disk = 0.4;
    clients.push_back(c);
  }
  const Cloud cloud(base.server_classes(), base.servers(), base.clusters(),
                    std::move(utilities), std::move(clients));
  const auto result = alloc::ResourceAllocator().run(cloud);
  EXPECT_TRUE(is_feasible(result.allocation));
  EXPECT_GT(result.report.final_profit, 0.0);
  // Tail pricing forces much tighter responses than the mean-based
  // crossing (15): everyone must sit under zc/scale ~= 5.
  for (ClientId i : cloud.client_ids())
    EXPECT_LT(result.allocation.response_time(i),
              cloud.utility_of(i).zero_crossing());
}

TEST(TailSla, SimulatedP95MatchesThePricedQuantile) {
  // A single-slice client: the simulator's measured p95 should be close
  // to scale * simulated mean, which is what the utility prices.
  const Cloud base = workload::make_tiny_scenario(1);
  Allocation alloc(base);
  alloc.assign(ClientId{0}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.5, 0.5}});
  sim::SimOptions opts;
  opts.horizon = 4000.0;
  opts.seed = 91;
  const auto report = sim::simulate_allocation(alloc, opts);
  const auto& c = report.clients[0];
  const double scale = -std::log(0.05);
  // Two pipelined stages: the hypoexponential p95 is below the
  // single-exponential scaling (conservative pricing), but within ~30%.
  EXPECT_LT(c.p95, scale * c.mean_response);
  EXPECT_GT(c.p95, 0.6 * scale * c.mean_response);
}

TEST(TailSla, SerializesAndRestores) {
  const auto inner = std::make_shared<LinearUtility>(3.0, 0.5);
  const Cloud base = workload::make_tiny_scenario(1);
  std::vector<UtilityClass> utilities;
  utilities.push_back(UtilityClass{
      UtilityClassId{0}, std::make_shared<TailLatencyUtility>(inner, 0.99)});
  Client c;
  c.id = ClientId{0};
  const Cloud cloud(base.server_classes(), base.servers(), base.clusters(),
                    utilities, {c});
  const auto restored = cloud_from_json(cloud_to_json(cloud));
  ASSERT_TRUE(restored.has_value());
  for (double r : {0.0, 0.2, 0.5, 1.0})
    EXPECT_DOUBLE_EQ(restored->utility_of(ClientId{0}).value(r),
                     cloud.utility_of(ClientId{0}).value(r));
}

}  // namespace
}  // namespace cloudalloc::model
