#include "workload/scenario.h"

#include <gtest/gtest.h>

namespace cloudalloc::workload {
namespace {

TEST(Scenario, DefaultShapeMatchesPaper) {
  const auto cloud = make_scenario(ScenarioParams{}, 1);
  EXPECT_EQ(cloud.num_clusters(), 5);
  EXPECT_EQ(cloud.server_classes().size(), 10u);
  EXPECT_EQ(cloud.utility_classes().size(), 5u);
  EXPECT_EQ(cloud.num_clients(), 100);
  EXPECT_EQ(cloud.num_servers(), 175);
}

TEST(Scenario, DeterministicPerSeed) {
  const auto a = make_scenario(ScenarioParams{}, 9);
  const auto b = make_scenario(ScenarioParams{}, 9);
  ASSERT_EQ(a.num_clients(), b.num_clients());
  for (model::ClientId i : a.client_ids()) {
    EXPECT_DOUBLE_EQ(a.client(i).lambda_pred, b.client(i).lambda_pred);
    EXPECT_DOUBLE_EQ(a.client(i).alpha_p, b.client(i).alpha_p);
    EXPECT_DOUBLE_EQ(a.client(i).disk, b.client(i).disk);
  }
  for (model::ServerId j : a.server_ids())
    EXPECT_EQ(a.server(j).server_class, b.server(j).server_class);
}

TEST(Scenario, DifferentSeedsDiffer) {
  const auto a = make_scenario(ScenarioParams{}, 1);
  const auto b = make_scenario(ScenarioParams{}, 2);
  bool any_diff = false;
  for (model::ClientId i : a.client_ids())
    any_diff =
        any_diff || a.client(i).lambda_pred != b.client(i).lambda_pred;
  EXPECT_TRUE(any_diff);
}

TEST(Scenario, ParameterRangesHonored) {
  const ScenarioParams p;
  const auto cloud = make_scenario(p, 3);
  for (const auto& c : cloud.clients()) {
    EXPECT_GE(c.alpha_p, p.alpha_lo);
    EXPECT_LE(c.alpha_p, p.alpha_hi);
    EXPECT_GE(c.alpha_n, p.alpha_lo);
    EXPECT_LE(c.alpha_n, p.alpha_hi);
    EXPECT_GE(c.lambda_agreed, p.lambda_lo);
    EXPECT_LE(c.lambda_agreed, p.lambda_hi);
    EXPECT_GE(c.disk, p.disk_lo);
    EXPECT_LE(c.disk, p.disk_hi);
  }
  for (const auto& sc : cloud.server_classes()) {
    EXPECT_GE(sc.cap_p, p.cap_lo);
    EXPECT_LE(sc.cap_p, p.cap_hi);
    EXPECT_GE(sc.cost_fixed, p.cost_fixed_lo);
    EXPECT_LE(sc.cost_fixed, p.cost_fixed_hi);
    EXPECT_GE(sc.cost_per_util, p.cost_util_lo);
    EXPECT_LE(sc.cost_per_util, p.cost_util_hi);
  }
}

TEST(Scenario, PredictionFactorScalesLambdaPred) {
  ScenarioParams p;
  p.prediction_factor = 0.8;
  const auto cloud = make_scenario(p, 4);
  for (const auto& c : cloud.clients())
    EXPECT_NEAR(c.lambda_pred, 0.8 * c.lambda_agreed, 1e-12);
}

TEST(Scenario, CapacityComfortablyCoversDefaultDemand) {
  const auto cloud = make_scenario(ScenarioParams{}, 5);
  EXPECT_GT(cloud.total_cap_p(), cloud.total_demand_p());
}

TEST(TinyScenario, IsSmallAndValid) {
  const auto cloud = make_tiny_scenario(4);
  EXPECT_EQ(cloud.num_clients(), 4);
  EXPECT_EQ(cloud.num_servers(), 4);
}

TEST(OverloadedScenario, DemandExceedsCapacity) {
  ScenarioParams p;
  p.num_clients = 60;
  const auto cloud = make_overloaded_scenario(p, 6, 4.0);
  EXPECT_GT(cloud.total_demand_p(), cloud.total_cap_p());
}

}  // namespace
}  // namespace cloudalloc::workload
