// Focused unit tests of the modified Proportional-Share baseline's
// internal behaviors (Section VI): class-aware ordering, First-Fit
// splitting, pool rejection, and the activation sweep.
#include "baselines/proportional_share.h"

#include <gtest/gtest.h>

#include "model/evaluator.h"
#include "model/feasibility.h"
#include "workload/scenario.h"

namespace cloudalloc::baselines {
namespace {

TEST(PsInternals, EmptyActiveSetServesNobody) {
  const auto cloud = workload::make_tiny_scenario(3);
  std::vector<bool> active(static_cast<std::size_t>(cloud.num_servers()),
                           false);
  const auto alloc = ps_allocate_with_active_set(cloud, active, PsOptions{});
  for (model::ClientId i : cloud.client_ids())
    EXPECT_FALSE(alloc.is_assigned(i));
  EXPECT_DOUBLE_EQ(model::profit(alloc), 0.0);
}

TEST(PsInternals, SingleServerPoolStillServes) {
  const auto cloud = workload::make_tiny_scenario(2);
  std::vector<bool> active(static_cast<std::size_t>(cloud.num_servers()),
                           false);
  active[1] = true;  // only the large server of cluster 0
  const auto alloc = ps_allocate_with_active_set(cloud, active, PsOptions{});
  EXPECT_TRUE(model::is_feasible(alloc));
  int served = 0;
  for (model::ClientId i : cloud.client_ids())
    if (alloc.is_assigned(i)) {
      ++served;
      for (const auto& p : alloc.placements(i))
        EXPECT_EQ(p.server, model::ServerId{1});
    }
  EXPECT_GT(served, 0);
}

TEST(PsInternals, TinyPoolRejectsClientsInsteadOfOverloading) {
  workload::ScenarioParams params;
  params.num_clients = 60;
  params.servers_per_cluster = 1;  // 5 servers total: far too small
  const auto cloud = workload::make_scenario(params, 401);
  std::vector<bool> active(static_cast<std::size_t>(cloud.num_servers()),
                           true);
  const auto alloc = ps_allocate_with_active_set(cloud, active, PsOptions{});
  EXPECT_TRUE(model::is_feasible(alloc));
  int unserved = 0;
  for (model::ClientId i : cloud.client_ids())
    if (!alloc.is_assigned(i)) ++unserved;
  EXPECT_GT(unserved, 0);
}

TEST(PsInternals, SteeperSlopesAllocateFirstAndEarnBetterLatency) {
  // With contention, the class-aware ordering should give steep-slope
  // clients better response times on average.
  workload::ScenarioParams params;
  params.num_clients = 40;
  params.servers_per_cluster = 4;  // tight
  const auto cloud = workload::make_scenario(params, 403);
  const auto result = proportional_share_allocate(cloud, PsOptions{});
  double steep_r = 0.0, flat_r = 0.0;
  int steep_n = 0, flat_n = 0;
  for (model::ClientId i : cloud.client_ids()) {
    if (!result.allocation.is_assigned(i)) continue;
    const double r = result.allocation.response_time(i);
    if (cloud.utility_of(i).slope(0.0) > 0.7) {
      steep_r += r;
      ++steep_n;
    } else {
      flat_r += r;
      ++flat_n;
    }
  }
  if (steep_n > 0 && flat_n > 0) {
    EXPECT_LE(steep_r / steep_n, 1.3 * (flat_r / flat_n));
  }
}

TEST(PsInternals, SweepNeverWorseThanItsWorstMember) {
  const auto cloud =
      workload::make_scenario(workload::ScenarioParams{}, 407);
  PsOptions sweep;
  sweep.activation_fractions = {0.3, 0.6, 1.0};
  const auto best = proportional_share_allocate(cloud, sweep);
  for (double f : sweep.activation_fractions) {
    PsOptions single;
    single.activation_fractions = {f};
    const auto one = proportional_share_allocate(cloud, single);
    EXPECT_GE(best.profit, one.profit - 1e-9) << "fraction " << f;
  }
}

TEST(PsInternals, DiskLimitsFirstFitPlacement) {
  // Give clients huge disks so each server can host at most one.
  workload::ScenarioParams params;
  params.num_clients = 10;
  params.servers_per_cluster = 6;
  params.disk_lo = 1.9;
  params.disk_hi = 2.0;  // server cap_m in [2, 6]
  const auto cloud = workload::make_scenario(params, 409);
  std::vector<bool> active(static_cast<std::size_t>(cloud.num_servers()),
                           true);
  const auto alloc = ps_allocate_with_active_set(cloud, active, PsOptions{});
  EXPECT_TRUE(model::is_feasible(alloc));
  for (model::ServerId j : cloud.server_ids())
    EXPECT_LE(alloc.used_disk(j), cloud.server_class_of(j).cap_m + 1e-9);
}

}  // namespace
}  // namespace cloudalloc::baselines
