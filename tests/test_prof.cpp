#include "common/prof.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "dist/thread_pool.h"

namespace cloudalloc::prof {
namespace {

/// Zones compare names by pointer, so tests share literal constants.
constexpr const char* kZoneA = "test.zone_a";
constexpr const char* kZoneB = "test.zone_b";

class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    reset();
  }
  void TearDown() override {
    set_enabled(false);
    reset();
  }
};

const PhaseRow* find_row(const std::vector<PhaseRow>& rows, const char* name) {
  for (const PhaseRow& r : rows)
    if (r.name == name) return &r;
  return nullptr;
}

TEST_F(ProfTest, DisabledZonesRecordNothing) {
  set_enabled(false);
  { Zone zone(kZoneA); }
  const auto rows = aggregate();
  EXPECT_EQ(find_row(rows, kZoneA), nullptr);
}

TEST_F(ProfTest, ZonesAggregateCountAndTime) {
  for (int i = 0; i < 10; ++i) {
    Zone zone(kZoneA);
  }
  {
    Zone zone(kZoneB);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto rows = aggregate();
  const PhaseRow* a = find_row(rows, kZoneA);
  const PhaseRow* b = find_row(rows, kZoneB);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->count, 10);
  EXPECT_EQ(b->count, 1);
  EXPECT_GE(b->total_ms, 1.0);
  // Sorted by total time descending: the slept zone leads.
  EXPECT_EQ(rows.front().name, kZoneB);
}

TEST_F(ProfTest, MacroAndNestingWork) {
  {
    PROF_ZONE(kZoneA);
    PROF_ZONE(kZoneB);  // nested in the same scope: distinct zones
  }
  const auto rows = aggregate();
  EXPECT_NE(find_row(rows, kZoneA), nullptr);
  EXPECT_NE(find_row(rows, kZoneB), nullptr);
}

TEST_F(ProfTest, ResetClearsAggregates) {
  { Zone zone(kZoneA); }
  const auto before = aggregate();
  ASSERT_NE(find_row(before, kZoneA), nullptr);
  reset();
  const auto after = aggregate();
  EXPECT_EQ(find_row(after, kZoneA), nullptr);
}

TEST_F(ProfTest, WorkerThreadZonesAreMerged) {
  dist::ThreadPool pool(3);
  pool.parallel_for(50, [](int) { Zone zone(kZoneA); });
  pool.shutdown();
  const auto rows = aggregate();
  const PhaseRow* a = find_row(rows, kZoneA);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->count, 50);
}

TEST_F(ProfTest, RingWrapKeepsAggregatesExact) {
  // Far more events than the per-thread ring holds: the trace drops the
  // oldest, but the per-phase accumulators must stay exact.
  constexpr int kEvents = (1 << 16) + 5000;
  for (int i = 0; i < kEvents; ++i) {
    Zone zone(kZoneA);
  }
  const auto rows = aggregate();
  const PhaseRow* a = find_row(rows, kZoneA);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->count, kEvents);
}

TEST_F(ProfTest, PrintTableListsEveryZone) {
  { Zone zone(kZoneA); }
  { Zone zone(kZoneB); }
  std::ostringstream os;
  print_table(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("test.zone_a"), std::string::npos);
  EXPECT_NE(out.find("test.zone_b"), std::string::npos);
  EXPECT_NE(out.find("count"), std::string::npos);
}

TEST_F(ProfTest, ChromeTraceDumpIsWellFormedJson) {
  { Zone zone(kZoneA); }
  const std::string path = ::testing::TempDir() + "prof_trace_test.json";
  ASSERT_TRUE(dump_chrome_trace(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("test.zone_a"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cloudalloc::prof
