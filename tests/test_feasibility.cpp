#include "model/feasibility.h"

#include <gtest/gtest.h>

#include "workload/scenario.h"

namespace cloudalloc::model {
namespace {

class FeasibilityTest : public ::testing::Test {
 protected:
  FeasibilityTest() : cloud_(workload::make_tiny_scenario(3)) {}

  bool has_kind(const std::vector<Violation>& vs, ViolationKind kind) {
    for (const auto& v : vs)
      if (v.kind == kind) return true;
    return false;
  }

  Cloud cloud_;
};

TEST_F(FeasibilityTest, EmptyAllocationIsFeasible) {
  Allocation alloc(cloud_);
  EXPECT_TRUE(is_feasible(alloc));
}

TEST_F(FeasibilityTest, WellFormedAllocationIsFeasible) {
  Allocation alloc(cloud_);
  alloc.assign(ClientId{0}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.5, 0.5}});
  alloc.assign(ClientId{1}, ClusterId{1}, {Placement{ServerId{2}, 1.0, 0.6, 0.6}});
  EXPECT_TRUE(is_feasible(alloc));
}

TEST_F(FeasibilityTest, DetectsShareOverflow) {
  Allocation alloc(cloud_);
  alloc.assign(ClientId{0}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.7, 0.3}});
  alloc.assign(ClientId{1}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.7, 0.3}});
  const auto violations = check_feasibility(alloc);
  EXPECT_TRUE(has_kind(violations, ViolationKind::kShareOverflowP));
  EXPECT_FALSE(is_feasible(alloc));
}

TEST_F(FeasibilityTest, DetectsCommShareOverflowSeparately) {
  Allocation alloc(cloud_);
  alloc.assign(ClientId{0}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.3, 0.8}});
  alloc.assign(ClientId{1}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.3, 0.8}});
  const auto violations = check_feasibility(alloc);
  EXPECT_TRUE(has_kind(violations, ViolationKind::kShareOverflowN));
  EXPECT_FALSE(has_kind(violations, ViolationKind::kShareOverflowP));
}

TEST_F(FeasibilityTest, DetectsDiskOverflow) {
  // Tiny scenario: server 0 (small) has cap_m = 4; clients 0..2 have disks
  // 0.5, 0.75, 1.0. Use a bigger population to overflow.
  const Cloud cloud = workload::make_tiny_scenario(8);
  Allocation alloc(cloud);
  // Clients 0..7 disks: 0.5..2.25 summing well past 4 on one server.
  for (ClientId i : cloud.client_ids())
    alloc.assign(i, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.05, 0.05}});
  const auto violations = check_feasibility(alloc);
  EXPECT_TRUE(has_kind(violations, ViolationKind::kDiskOverflow));
}

TEST_F(FeasibilityTest, DetectsUnstableQueue) {
  Allocation alloc(cloud_);
  alloc.assign(ClientId{0}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.01, 0.5}});
  const auto violations = check_feasibility(alloc);
  EXPECT_TRUE(has_kind(violations, ViolationKind::kUnstableQueue));
}

TEST_F(FeasibilityTest, ViolationDescriptionsAreInformative) {
  Allocation alloc(cloud_);
  alloc.assign(ClientId{0}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.7, 0.3}});
  alloc.assign(ClientId{1}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.7, 0.3}});
  const auto violations = check_feasibility(alloc);
  ASSERT_FALSE(violations.empty());
  EXPECT_FALSE(violations.front().describe().empty());
}

TEST_F(FeasibilityTest, ToleranceAbsorbsRounding) {
  Allocation alloc(cloud_);
  alloc.assign(ClientId{0}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.5 + 1e-9, 0.5}});
  alloc.assign(ClientId{1}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.5, 0.5 - 1e-9}});
  EXPECT_TRUE(is_feasible(alloc, 1e-6));
}

}  // namespace
}  // namespace cloudalloc::model
