#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/args.h"
#include "common/table.h"

namespace cloudalloc {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"a", "long-header"});
  t.add_row({"xxxxxx", "1"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("xxxxxx"), std::string::npos);
  // Header, separator, one row.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(1.0, 0), "1");
}

TEST(Table, CountsRows) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvBasic) {
  Table t({"a", "b"});
  t.add_row({"1", "x"});
  t.add_row({"2", "y"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,x\n2,y\n");
}

TEST(Table, CsvQuotesSpecialCells) {
  Table t({"name", "note"});
  t.add_row({"with,comma", "with\"quote"});
  EXPECT_EQ(t.to_csv(), "name,note\n\"with,comma\",\"with\"\"quote\"\n");
}

TEST(Table, CsvWriteRoundTrips) {
  Table t({"x"});
  t.add_row({"42"});
  const std::string path = "/tmp/cloudalloc_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "x\n42\n");
  EXPECT_FALSE(t.write_csv("/nonexistent/dir/file.csv"));
}

TEST(Args, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--clients=50", "--seed=7"};
  Args args(3, argv);
  EXPECT_EQ(args.get_int("clients", 0), 50);
  EXPECT_EQ(args.get_int("seed", 0), 7);
}

TEST(Args, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--name", "value"};
  Args args(3, argv);
  EXPECT_EQ(args.get("name", ""), "value");
}

TEST(Args, BareFlagIsTrue) {
  const char* argv[] = {"prog", "--verbose"};
  Args args(2, argv);
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(Args, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  Args args(1, argv);
  EXPECT_EQ(args.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
  EXPECT_FALSE(args.get_bool("missing", false));
  EXPECT_FALSE(args.has("missing"));
}

TEST(Args, PositionalAndDoubleDash) {
  const char* argv[] = {"prog", "pos1", "--", "--not-a-flag"};
  Args args(4, argv);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "pos1");
  EXPECT_EQ(args.positional()[1], "--not-a-flag");
}

TEST(Args, ParsesDouble) {
  const char* argv[] = {"prog", "--x=2.5"};
  Args args(2, argv);
  EXPECT_DOUBLE_EQ(args.get_double("x", 0.0), 2.5);
}

}  // namespace
}  // namespace cloudalloc
