#include "alloc/allocator.h"

#include <gtest/gtest.h>

#include "alloc/initial.h"
#include "baselines/proportional_share.h"
#include "baselines/random_alloc.h"
#include "common/rng.h"
#include "model/evaluator.h"
#include "model/feasibility.h"
#include "opt/exhaustive.h"
#include "workload/scenario.h"

namespace cloudalloc::alloc {
namespace {

using model::Allocation;

workload::ScenarioParams small_params() {
  workload::ScenarioParams params;
  params.num_clients = 30;
  params.servers_per_cluster = 8;
  return params;
}

TEST(ResourceAllocator, ProducesFeasibleProfitableAllocation) {
  const auto cloud = workload::make_scenario(small_params(), 101);
  ResourceAllocator allocator;
  const auto result = allocator.run(cloud);
  EXPECT_TRUE(model::is_feasible(result.allocation));
  EXPECT_GT(result.report.final_profit, 0.0);
  EXPECT_GE(result.report.final_profit, result.report.initial_profit - 1e-9);
  EXPECT_EQ(result.report.unassigned_clients, 0);
  EXPECT_GT(result.report.rounds_run, 0);
}

TEST(ResourceAllocator, LocalSearchImprovesInitialSolution) {
  const auto cloud = workload::make_scenario(small_params(), 103);
  ResourceAllocator allocator;
  const auto result = allocator.run(cloud);
  // On random scenarios the local search nearly always finds something.
  EXPECT_GE(result.report.final_profit, result.report.initial_profit);
}

TEST(ResourceAllocator, ImproveIsMonotoneFromArbitraryStart) {
  const auto cloud = workload::make_scenario(small_params(), 107);
  AllocatorOptions opts;
  Rng rng(107);
  Allocation random_start =
      baselines::random_allocation(cloud, opts, rng);
  const double before = model::profit(random_start);
  ResourceAllocator allocator(opts);
  const auto result = allocator.improve(std::move(random_start));
  EXPECT_GE(result.report.final_profit, before - 1e-9);
  EXPECT_TRUE(model::is_feasible(result.allocation));
}

TEST(ResourceAllocator, DeterministicGivenSeed) {
  const auto cloud = workload::make_scenario(small_params(), 109);
  AllocatorOptions opts;
  opts.seed = 5;
  ResourceAllocator allocator(opts);
  const double p1 = allocator.run(cloud).report.final_profit;
  const double p2 = allocator.run(cloud).report.final_profit;
  EXPECT_DOUBLE_EQ(p1, p2);
}

TEST(ResourceAllocator, BeatsProportionalShare) {
  const auto cloud = workload::make_scenario(small_params(), 113);
  ResourceAllocator allocator;
  const auto ours = allocator.run(cloud);
  const auto ps =
      baselines::proportional_share_allocate(cloud, baselines::PsOptions{});
  EXPECT_GT(ours.report.final_profit, ps.profit);
}

TEST(ResourceAllocator, StageTogglesAreRespected) {
  const auto cloud = workload::make_scenario(small_params(), 127);
  AllocatorOptions off;
  off.enable_adjust_shares = false;
  off.enable_adjust_dispersion = false;
  off.enable_turn_on = false;
  off.enable_turn_off = false;
  off.enable_reassign = false;
  off.max_local_search_rounds = 3;
  ResourceAllocator bare(off);
  const auto result = bare.run(cloud);
  // With every stage off, improvement rounds change nothing.
  EXPECT_NEAR(result.report.final_profit, result.report.initial_profit,
              1e-9);
}

TEST(ResourceAllocator, SurvivesOverload) {
  workload::ScenarioParams params;
  params.num_clients = 50;
  const auto cloud = workload::make_overloaded_scenario(params, 131, 4.0);
  ResourceAllocator allocator;
  const auto result = allocator.run(cloud);
  EXPECT_TRUE(model::is_feasible(result.allocation));
  EXPECT_GT(result.report.unassigned_clients, 0);  // genuinely overloaded
}

TEST(ResourceAllocator, NearOptimalOnTinyInstanceVsExhaustive) {
  const auto cloud = workload::make_tiny_scenario(4);
  AllocatorOptions opts;
  opts.num_initial_solutions = 5;
  ResourceAllocator allocator(opts);
  const auto ours = allocator.run(cloud);

  // Exhaustive over cluster assignments, decoding with the same insertion
  // machinery plus full improvement.
  double best = -1e300;
  opt::enumerate_assignments(
      cloud.num_clients(), cloud.num_clusters(),
      [&](const std::vector<int>& a) {
        std::vector<model::ClusterId> assignment(a.begin(), a.end());
        Allocation alloc = build_from_assignment(cloud, assignment, opts);
        const auto improved = allocator.improve(std::move(alloc));
        return improved.report.final_profit;
      },
      nullptr, &best);

  // The paper reports <=9% gaps at 20+ clients; tiny 4-client instances
  // are the heuristic's hardest regime, so allow a 20% band here (the
  // Figure-4 bench checks the paper-scale gap).
  EXPECT_GE(ours.report.final_profit, 0.80 * best);
}

TEST(ResourceAllocator, TimeBudgetCutsRoundsShort) {
  workload::ScenarioParams params;
  params.num_clients = 60;
  const auto cloud = workload::make_scenario(params, 137);

  AllocatorOptions unlimited;
  const auto full = ResourceAllocator(unlimited).run(cloud);

  AllocatorOptions tight;
  tight.time_budget_ms = 1.0;  // well under one round's cost at N=60
  const auto budgeted = ResourceAllocator(tight).run(cloud);

  EXPECT_LE(budgeted.report.rounds_run, full.report.rounds_run);
  EXPECT_LE(budgeted.report.rounds_run, 2);
  // Still a valid, committed allocation.
  EXPECT_TRUE(model::is_feasible(budgeted.allocation));
  EXPECT_GE(budgeted.report.final_profit,
            budgeted.report.initial_profit - 1e-9);
}

TEST(ResourceAllocator, ZeroBudgetMeansUnlimited) {
  workload::ScenarioParams params;
  params.num_clients = 20;
  const auto cloud = workload::make_scenario(params, 139);
  AllocatorOptions opts;
  opts.time_budget_ms = 0.0;
  const auto result = ResourceAllocator(opts).run(cloud);
  EXPECT_GT(result.report.rounds_run, 0);
}

class AllocatorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocatorProperty, FeasibleAndBeatsRandomAcrossSeeds) {
  workload::ScenarioParams params;
  params.num_clients = 25;
  params.servers_per_cluster = 6;
  const auto cloud = workload::make_scenario(params, GetParam());
  AllocatorOptions opts;
  opts.seed = GetParam();
  ResourceAllocator allocator(opts);
  const auto result = allocator.run(cloud);
  ASSERT_TRUE(model::is_feasible(result.allocation));

  Rng rng(GetParam() + 1000);
  const double random_profit =
      model::profit(baselines::random_allocation(cloud, opts, rng));
  EXPECT_GE(result.report.final_profit, random_profit);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace cloudalloc::alloc
