#include "model/cloud.h"

#include <gtest/gtest.h>

#include "workload/scenario.h"

namespace cloudalloc::model {
namespace {

TEST(Cloud, TinyScenarioShape) {
  const Cloud cloud = workload::make_tiny_scenario(3);
  EXPECT_EQ(cloud.num_clients(), 3);
  EXPECT_EQ(cloud.num_clusters(), 2);
  EXPECT_EQ(cloud.num_servers(), 4);
  EXPECT_EQ(cloud.server_classes().size(), 2u);
  EXPECT_EQ(cloud.utility_classes().size(), 2u);
}

TEST(Cloud, AccessorsAreConsistent) {
  const Cloud cloud = workload::make_tiny_scenario(2);
  for (ServerId j : cloud.server_ids()) {
    const Server& sv = cloud.server(j);
    EXPECT_EQ(sv.id, j);
    const Cluster& cl = cloud.cluster(sv.cluster);
    bool found = false;
    for (ServerId s : cl.servers) found = found || (s == j);
    EXPECT_TRUE(found) << "server must be listed in its cluster";
    EXPECT_EQ(cloud.server_class_of(j).id, sv.server_class);
  }
  for (ClientId i : cloud.client_ids()) {
    EXPECT_EQ(cloud.client(i).id, i);
    EXPECT_GT(cloud.utility_of(i).max_value(), 0.0);
  }
}

TEST(Cloud, TotalCapacityAndDemand) {
  const Cloud cloud = workload::make_tiny_scenario(2);
  // Two clusters x (small 4.0 + large 6.0).
  EXPECT_DOUBLE_EQ(cloud.total_cap_p(), 20.0);
  const double expected_demand = 1.0 * 0.5 + 1.5 * 0.55;
  EXPECT_NEAR(cloud.total_demand_p(), expected_demand, 1e-12);
}

TEST(Cloud, ValidatesServerClusterMembership) {
  std::vector<ServerClass> classes{
      ServerClass{ServerClassId{0}, "c", 1.0, 1.0, 1.0, 0.0, 0.0}};
  std::vector<UtilityClass> utilities{
      UtilityClass{UtilityClassId{0}, std::make_shared<LinearUtility>(1.0, 1.0)}};
  std::vector<Server> servers{Server{ServerId{0}, ClusterId{0}, ServerClassId{0}, {}}};
  // Cluster does not list server 0 -> invariant violation.
  std::vector<Cluster> clusters{Cluster{ClusterId{0}, "k", {}}};
  std::vector<Client> clients;
  EXPECT_DEATH(Cloud(classes, servers, clusters, utilities, clients),
               "every server");
}

TEST(Cloud, ValidatesClientParameters) {
  std::vector<ServerClass> classes{
      ServerClass{ServerClassId{0}, "c", 1.0, 1.0, 1.0, 0.0, 0.0}};
  std::vector<UtilityClass> utilities{
      UtilityClass{UtilityClassId{0}, std::make_shared<LinearUtility>(1.0, 1.0)}};
  std::vector<Server> servers{Server{ServerId{0}, ClusterId{0}, ServerClassId{0}, {}}};
  std::vector<Cluster> clusters{Cluster{ClusterId{0}, "k", {ServerId{0}}}};
  Client bad;
  bad.id = ClientId{0};
  bad.lambda_pred = -1.0;  // invalid
  std::vector<Client> clients{bad};
  EXPECT_DEATH(Cloud(classes, servers, clusters, utilities, clients),
               "lambda_pred");
}

TEST(Cloud, ValidatesDenseIds) {
  std::vector<ServerClass> classes{
      ServerClass{ServerClassId{5}, "c", 1.0, 1.0, 1.0, 0.0, 0.0}};  // id != position
  EXPECT_DEATH(Cloud(classes, {}, {}, {}, {}), "dense");
}

}  // namespace
}  // namespace cloudalloc::model
