// Determinism guarantees of the simulator and the replication runner
// (mirrors test_dist_determinism.cpp for the allocator): a seed fully
// determines a SimulationReport, and run_replications is a pure function
// of (allocation, options) — independent of the worker thread count.
#include <algorithm>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "alloc/allocator.h"
#include "sim/replication.h"
#include "workload/scenario.h"

namespace cloudalloc::sim {
namespace {

// An Allocation references its Cloud, so the pair must live together.
struct Fixture {
  explicit Fixture(std::uint64_t seed)
      : cloud(workload::make_scenario(
            [] {
              workload::ScenarioParams params;
              params.num_clients = 12;
              params.servers_per_cluster = 4;
              return params;
            }(),
            seed)),
        allocation(alloc::ResourceAllocator().run(cloud).allocation) {}
  model::Cloud cloud;
  model::Allocation allocation;
};

void expect_identical(const SimulationReport& a, const SimulationReport& b) {
  EXPECT_EQ(a.total_completed, b.total_completed);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_DOUBLE_EQ(a.mean_abs_rel_error, b.mean_abs_rel_error);
  ASSERT_EQ(a.clients.size(), b.clients.size());
  for (std::size_t c = 0; c < a.clients.size(); ++c) {
    const ClientSimStats& ca = a.clients[c];
    const ClientSimStats& cb = b.clients[c];
    EXPECT_EQ(ca.id, cb.id);
    EXPECT_EQ(ca.completed, cb.completed);
    EXPECT_DOUBLE_EQ(ca.mean_response, cb.mean_response);
    EXPECT_DOUBLE_EQ(ca.ci95, cb.ci95);
    EXPECT_DOUBLE_EQ(ca.analytic_response, cb.analytic_response);
    EXPECT_DOUBLE_EQ(ca.p50, cb.p50);
    EXPECT_DOUBLE_EQ(ca.p95, cb.p95);
    EXPECT_DOUBLE_EQ(ca.p99, cb.p99);
  }
  ASSERT_EQ(a.servers.size(), b.servers.size());
  for (std::size_t s = 0; s < a.servers.size(); ++s) {
    EXPECT_EQ(a.servers[s].id, b.servers[s].id);
    EXPECT_DOUBLE_EQ(a.servers[s].measured_util_p,
                     b.servers[s].measured_util_p);
    EXPECT_DOUBLE_EQ(a.servers[s].analytic_util_p,
                     b.servers[s].analytic_util_p);
  }
}

void expect_identical(const ReplicationReport& a, const ReplicationReport& b) {
  EXPECT_EQ(a.replications, b.replications);
  EXPECT_EQ(a.total_completed, b.total_completed);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_DOUBLE_EQ(a.mean_abs_rel_error, b.mean_abs_rel_error);
  ASSERT_EQ(a.clients.size(), b.clients.size());
  for (std::size_t c = 0; c < a.clients.size(); ++c) {
    const ClientReplicationStats& ca = a.clients[c];
    const ClientReplicationStats& cb = b.clients[c];
    EXPECT_EQ(ca.id, cb.id);
    EXPECT_EQ(ca.observations, cb.observations);
    EXPECT_EQ(ca.completed_total, cb.completed_total);
    EXPECT_DOUBLE_EQ(ca.mean_response, cb.mean_response);
    EXPECT_DOUBLE_EQ(ca.ci95, cb.ci95);
    EXPECT_DOUBLE_EQ(ca.p50, cb.p50);
    EXPECT_DOUBLE_EQ(ca.p95, cb.p95);
    EXPECT_DOUBLE_EQ(ca.p99, cb.p99);
  }
  ASSERT_EQ(a.servers.size(), b.servers.size());
  for (std::size_t s = 0; s < a.servers.size(); ++s) {
    EXPECT_EQ(a.servers[s].id, b.servers[s].id);
    EXPECT_DOUBLE_EQ(a.servers[s].measured_util_p,
                     b.servers[s].measured_util_p);
    EXPECT_DOUBLE_EQ(a.servers[s].ci95, b.servers[s].ci95);
  }
}

TEST(SimDeterminism, SameSeedBitIdenticalReport) {
  const Fixture fx(41);
  SimOptions opts;
  opts.horizon = 600.0;
  opts.seed = 7;
  const auto a = simulate_allocation(fx.allocation, opts);
  const auto b = simulate_allocation(fx.allocation, opts);
  EXPECT_GT(a.total_completed, 0u);
  expect_identical(a, b);
}

TEST(SimDeterminism, DifferentSeedsDiffer) {
  const Fixture fx(43);
  SimOptions a_opts, b_opts;
  a_opts.horizon = b_opts.horizon = 600.0;
  a_opts.seed = 7;
  b_opts.seed = 8;
  const auto a = simulate_allocation(fx.allocation, a_opts);
  const auto b = simulate_allocation(fx.allocation, b_opts);
  ASSERT_FALSE(a.clients.empty());
  EXPECT_NE(a.clients[0].mean_response, b.clients[0].mean_response);
}

TEST(ReplicationSeeds, DeterministicAndDistinct) {
  const auto a = replication_seeds(99, 16);
  const auto b = replication_seeds(99, 16);
  EXPECT_EQ(a, b);
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = i + 1; j < a.size(); ++j)
      EXPECT_NE(a[i], a[j]) << "replications " << i << " and " << j;
  // The schedule is a prefix property: raising R extends it, so cached
  // low-R results stay comparable.
  const auto prefix = replication_seeds(99, 4);
  EXPECT_TRUE(std::equal(prefix.begin(), prefix.end(), a.begin()));
}

// The acceptance bar of the parallel fan-out: 1 worker thread and 4 must
// produce bit-identical merged reports.
TEST(ReplicationDeterminism, IdenticalAtOneAndFourThreads) {
  const Fixture fx(47);
  ReplicationOptions opts;
  opts.sim.horizon = 400.0;
  opts.sim.seed = 3;
  opts.replications = 8;
  opts.num_threads = 1;
  const auto base = run_replications(fx.allocation, opts);
  EXPECT_EQ(base.replications, 8);
  EXPECT_GT(base.total_completed, 0u);
  for (int threads : {2, 4}) {
    ReplicationOptions topts = opts;
    topts.num_threads = threads;
    const auto run = run_replications(fx.allocation, topts);
    expect_identical(base, run);
  }
}

TEST(ReplicationRunner, AcrossReplicationCiIsProper) {
  const Fixture fx(53);
  ReplicationOptions opts;
  opts.sim.horizon = 500.0;
  opts.sim.seed = 5;
  opts.replications = 8;
  const auto report = run_replications(fx.allocation, opts);
  ASSERT_FALSE(report.clients.empty());
  for (const auto& c : report.clients) {
    if (c.observations < 2) continue;
    EXPECT_GT(c.ci95, 0.0) << "client " << c.id;
    EXPECT_GT(c.mean_response, 0.0);
    EXPECT_LE(c.observations, opts.replications);
  }
}

TEST(ReplicationRunner, SingleReplicationMatchesDirectRun) {
  // R = 1 degenerates to one simulation at the first derived seed; the
  // merged means must equal that run's means exactly (and the
  // across-replication CI collapses to 0 with a single observation).
  const Fixture fx(59);
  ReplicationOptions opts;
  opts.sim.horizon = 400.0;
  opts.sim.seed = 11;
  opts.replications = 1;
  const auto merged = run_replications(fx.allocation, opts);
  SimOptions direct = opts.sim;
  direct.seed = replication_seeds(opts.sim.seed, 1)[0];
  const auto single = simulate_allocation(fx.allocation, direct);
  ASSERT_EQ(merged.clients.size(), single.clients.size());
  for (std::size_t c = 0; c < merged.clients.size(); ++c) {
    EXPECT_EQ(merged.clients[c].completed_total, single.clients[c].completed);
    if (single.clients[c].completed == 0) continue;
    EXPECT_DOUBLE_EQ(merged.clients[c].mean_response,
                     single.clients[c].mean_response);
    EXPECT_DOUBLE_EQ(merged.clients[c].ci95, 0.0);
  }
}

}  // namespace
}  // namespace cloudalloc::sim
