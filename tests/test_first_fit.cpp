#include "opt/first_fit.h"

#include <gtest/gtest.h>

namespace cloudalloc::opt {
namespace {

TEST(FirstFitSplit, FitsInFirstBin) {
  std::vector<double> free{5.0, 5.0};
  const auto pieces = first_fit_split(3.0, free, {0, 1});
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].bin, 0u);
  EXPECT_DOUBLE_EQ(pieces[0].amount, 3.0);
  EXPECT_DOUBLE_EQ(free[0], 2.0);
}

TEST(FirstFitSplit, SplitsAcrossBins) {
  std::vector<double> free{2.0, 5.0};
  const auto pieces = first_fit_split(3.0, free, {0, 1});
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_DOUBLE_EQ(pieces[0].amount, 2.0);
  EXPECT_DOUBLE_EQ(pieces[1].amount, 1.0);
  EXPECT_DOUBLE_EQ(free[0], 0.0);
  EXPECT_DOUBLE_EQ(free[1], 4.0);
}

TEST(FirstFitSplit, RespectsOrder) {
  std::vector<double> free{5.0, 5.0};
  const auto pieces = first_fit_split(3.0, free, {1, 0});
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].bin, 1u);
}

TEST(FirstFitSplit, PartialWhenCapacityShort) {
  std::vector<double> free{1.0, 1.0};
  const auto pieces = first_fit_split(5.0, free, {0, 1});
  double placed = 0.0;
  for (const auto& p : pieces) placed += p.amount;
  EXPECT_DOUBLE_EQ(placed, 2.0);
}

TEST(FirstFitSplit, ZeroDemand) {
  std::vector<double> free{1.0};
  EXPECT_TRUE(first_fit_split(0.0, free, {0}).empty());
}

TEST(FirstFitSplit, SkipsEmptyBins) {
  std::vector<double> free{0.0, 3.0};
  const auto pieces = first_fit_split(2.0, free, {0, 1});
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].bin, 1u);
}

TEST(FirstFitDecreasing, PacksLargestFirst) {
  std::vector<double> free{10.0};
  const auto bins = first_fit_decreasing({3.0, 7.0}, free);
  EXPECT_EQ(bins[0], 0);
  EXPECT_EQ(bins[1], 0);
  EXPECT_DOUBLE_EQ(free[0], 0.0);
}

TEST(FirstFitDecreasing, MarksUnplaceable) {
  std::vector<double> free{2.0};
  const auto bins = first_fit_decreasing({3.0, 1.0}, free);
  EXPECT_EQ(bins[0], -1);
  EXPECT_EQ(bins[1], 0);
}

TEST(FirstFitDecreasing, ClassicWorstCaseStillValid) {
  std::vector<double> free{10.0, 10.0, 10.0};
  const auto bins = first_fit_decreasing({6.0, 6.0, 5.0, 5.0, 4.0, 4.0}, free);
  for (int b : bins) EXPECT_NE(b, -1);
  for (double f : free) EXPECT_GE(f, -1e-12);
}

}  // namespace
}  // namespace cloudalloc::opt
