#include "model/allocation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "workload/scenario.h"

namespace cloudalloc::model {
namespace {

class AllocationTest : public ::testing::Test {
 protected:
  AllocationTest() : cloud_(workload::make_tiny_scenario(3)) {}
  Cloud cloud_;
};

TEST_F(AllocationTest, StartsEmpty) {
  Allocation alloc(cloud_);
  for (ClientId i : cloud_.client_ids()) {
    EXPECT_FALSE(alloc.is_assigned(i));
    EXPECT_EQ(alloc.cluster_of(i), kNoCluster);
    EXPECT_TRUE(alloc.placements(i).empty());
  }
  for (ServerId j : cloud_.server_ids()) {
    EXPECT_FALSE(alloc.active(j));
    EXPECT_DOUBLE_EQ(alloc.used_phi_p(j), 0.0);
    EXPECT_DOUBLE_EQ(alloc.proc_load(j), 0.0);
  }
  EXPECT_EQ(alloc.num_active_servers(), 0);
}

TEST_F(AllocationTest, AssignUpdatesAggregates) {
  Allocation alloc(cloud_);
  // Client 0: lambda=1.0, alpha_p=0.5, disk=0.5. Server 0 in cluster 0.
  alloc.assign(ClientId{0}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.4, 0.3}});
  EXPECT_TRUE(alloc.is_assigned(ClientId{0}));
  EXPECT_EQ(alloc.cluster_of(ClientId{0}), ClusterId{0});
  EXPECT_TRUE(alloc.active(ServerId{0}));
  EXPECT_EQ(alloc.num_active_servers(), 1);
  EXPECT_DOUBLE_EQ(alloc.used_phi_p(ServerId{0}), 0.4);
  EXPECT_DOUBLE_EQ(alloc.used_phi_n(ServerId{0}), 0.3);
  EXPECT_DOUBLE_EQ(alloc.used_disk(ServerId{0}), 0.5);
  EXPECT_DOUBLE_EQ(alloc.proc_load(ServerId{0}), 1.0 * 0.5);
  EXPECT_EQ(alloc.clients_on(ServerId{0}).size(), 1u);
}

TEST_F(AllocationTest, ClearRestoresEmptyState) {
  Allocation alloc(cloud_);
  alloc.assign(ClientId{0}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.4, 0.3}});
  alloc.clear(ClientId{0});
  EXPECT_FALSE(alloc.is_assigned(ClientId{0}));
  EXPECT_FALSE(alloc.active(ServerId{0}));
  EXPECT_DOUBLE_EQ(alloc.used_phi_p(ServerId{0}), 0.0);
  EXPECT_DOUBLE_EQ(alloc.used_disk(ServerId{0}), 0.0);
  EXPECT_DOUBLE_EQ(alloc.proc_load(ServerId{0}), 0.0);
}

TEST_F(AllocationTest, ReassignReplacesFootprint) {
  Allocation alloc(cloud_);
  alloc.assign(ClientId{0}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.4, 0.3}});
  // Move to the other server of cluster 0.
  alloc.assign(ClientId{0}, ClusterId{0}, {Placement{ServerId{1}, 1.0, 0.2, 0.2}});
  EXPECT_DOUBLE_EQ(alloc.used_phi_p(ServerId{0}), 0.0);
  EXPECT_DOUBLE_EQ(alloc.used_phi_p(ServerId{1}), 0.2);
  EXPECT_FALSE(alloc.active(ServerId{0}));
  EXPECT_TRUE(alloc.active(ServerId{1}));
}

TEST_F(AllocationTest, SplitPlacementAcrossServers) {
  Allocation alloc(cloud_);
  alloc.assign(ClientId{0}, ClusterId{0},
               {Placement{ServerId{0}, 0.5, 0.3, 0.3}, Placement{ServerId{1}, 0.5, 0.2, 0.2}});
  EXPECT_EQ(alloc.placements(ClientId{0}).size(), 2u);
  // Disk is consumed on every hosting server (constraint 8).
  EXPECT_DOUBLE_EQ(alloc.used_disk(ServerId{0}), 0.5);
  EXPECT_DOUBLE_EQ(alloc.used_disk(ServerId{1}), 0.5);
  // Processing load splits by psi.
  EXPECT_DOUBLE_EQ(alloc.proc_load(ServerId{0}), 0.5 * 1.0 * 0.5);
}

TEST_F(AllocationTest, MultipleClientsShareServer) {
  Allocation alloc(cloud_);
  alloc.assign(ClientId{0}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.3, 0.3}});
  alloc.assign(ClientId{1}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.4, 0.2}});
  EXPECT_NEAR(alloc.used_phi_p(ServerId{0}), 0.7, 1e-12);
  EXPECT_EQ(alloc.clients_on(ServerId{0}).size(), 2u);
  alloc.clear(ClientId{0});
  EXPECT_NEAR(alloc.used_phi_p(ServerId{0}), 0.4, 1e-12);
  EXPECT_EQ(alloc.clients_on(ServerId{0}).size(), 1u);
}

TEST_F(AllocationTest, ResponseTimeMatchesQueueingModel) {
  Allocation alloc(cloud_);
  // Client 0: lambda=1, alpha_p=0.5, alpha_n=0.6; server 0: cap 4/4.
  alloc.assign(ClientId{0}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.5, 0.5}});
  // mu_p = 0.5*4/0.5 = 4; mu_n = 0.5*4/0.6 = 10/3.
  const double expected = 1.0 / (4.0 - 1.0) + 1.0 / (10.0 / 3.0 - 1.0);
  EXPECT_NEAR(alloc.response_time(ClientId{0}), expected, 1e-12);
}

TEST_F(AllocationTest, ResponseTimeInfiniteWhenUnassignedOrUnstable) {
  Allocation alloc(cloud_);
  EXPECT_TRUE(std::isinf(alloc.response_time(ClientId{0})));
  alloc.assign(ClientId{0}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.01, 0.5}});  // mu_p = 0.08 < 1
  EXPECT_TRUE(std::isinf(alloc.response_time(ClientId{0})));
}

TEST_F(AllocationTest, FreeCapacitiesAccountBackground) {
  Cloud cloud = [] {
    Cloud c = workload::make_tiny_scenario(1);
    return c;
  }();
  // Tiny scenario has no background; emulate via direct construction is
  // heavyweight, so just verify free_* = 1 - used here.
  Allocation alloc(cloud);
  alloc.assign(ClientId{0}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.25, 0.5}});
  EXPECT_DOUBLE_EQ(alloc.free_phi_p(ServerId{0}), 0.75);
  EXPECT_DOUBLE_EQ(alloc.free_phi_n(ServerId{0}), 0.5);
  EXPECT_DOUBLE_EQ(alloc.free_disk(ServerId{0}), 4.0 - 0.5);
}

TEST_F(AllocationTest, CloneIsDeep) {
  Allocation alloc(cloud_);
  alloc.assign(ClientId{0}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.3, 0.3}});
  Allocation copy = alloc.clone();
  copy.clear(ClientId{0});
  EXPECT_TRUE(alloc.is_assigned(ClientId{0}));
  EXPECT_FALSE(copy.is_assigned(ClientId{0}));
  EXPECT_TRUE(alloc.active(ServerId{0}));
}

TEST_F(AllocationTest, RejectsCrossClusterPlacement) {
  Allocation alloc(cloud_);
  // Server 2 belongs to cluster 1; assigning it under cluster 0 dies.
  EXPECT_DEATH(alloc.assign(ClientId{0}, ClusterId{0}, {Placement{ServerId{2}, 1.0, 0.3, 0.3}}),
               "assigned cluster");
}

TEST_F(AllocationTest, RejectsPsiNotSummingToOne) {
  Allocation alloc(cloud_);
  EXPECT_DEATH(alloc.assign(ClientId{0}, ClusterId{0}, {Placement{ServerId{0}, 0.5, 0.3, 0.3}}),
               "psi must sum");
}

TEST_F(AllocationTest, RejectsDuplicateServerPlacements) {
  Allocation alloc(cloud_);
  EXPECT_DEATH(
      alloc.assign(ClientId{0}, ClusterId{0},
                   {Placement{ServerId{0}, 0.5, 0.1, 0.1}, Placement{ServerId{0}, 0.5, 0.1, 0.1}}),
      "one placement per server");
}

// Property: random assign/clear churn never corrupts aggregates.
TEST_F(AllocationTest, FootprintChurnStaysConsistent) {
  Allocation alloc(cloud_);
  Rng rng(99);
  for (int step = 0; step < 500; ++step) {
    const ClientId i =
        static_cast<ClientId>(rng.uniform_int(0, cloud_.num_clients() - 1));
    if (alloc.is_assigned(i) && rng.bernoulli(0.4)) {
      alloc.clear(i);
    } else {
      if (alloc.is_assigned(i)) alloc.clear(i);
      const ClusterId k = ClusterId{static_cast<int>(rng.uniform_int(0, 1))};
      const auto& servers = cloud_.cluster(k).servers;
      const ServerId j = servers[rng.index(servers.size())];
      alloc.assign(i, k,
                   {Placement{j, 1.0, rng.uniform(0.05, 0.3),
                              rng.uniform(0.05, 0.3)}});
    }
  }
  // Recompute aggregates from scratch and compare.
  for (ServerId j : cloud_.server_ids()) {
    double phi_p = 0.0, disk = 0.0, load = 0.0;
    int hosted = 0;
    for (ClientId i : cloud_.client_ids()) {
      if (!alloc.is_assigned(i)) continue;
      for (const auto& p : alloc.placements(i)) {
        if (p.server != j) continue;
        phi_p += p.phi_p;
        disk += cloud_.client(i).disk;
        load += p.psi * cloud_.client(i).lambda_pred * cloud_.client(i).alpha_p;
        ++hosted;
      }
    }
    EXPECT_NEAR(alloc.used_phi_p(j), phi_p, 1e-9);
    EXPECT_NEAR(alloc.used_disk(j), disk, 1e-9);
    EXPECT_NEAR(alloc.proc_load(j), load, 1e-9);
    EXPECT_EQ(static_cast<int>(alloc.clients_on(j).size()), hosted);
  }
}

}  // namespace
}  // namespace cloudalloc::model
