#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "model/evaluator.h"
#include "queueing/mm1.h"
#include "sim/event_queue.h"
#include "sim/gps_station.h"
#include "sim/runner.h"
#include "sim/simulation.h"
#include "workload/scenario.h"

namespace cloudalloc::sim {
namespace {

// Queue/clock tests carry the event's identity in `target`; `kind` and
// `flow` are opaque payload to the queue.
Event tagged(std::int32_t tag) {
  return Event{EventKind::kSourceArrival, tag, 0};
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  q.schedule(3.0, tagged(3));
  q.schedule(1.0, tagged(1));
  q.schedule(2.0, tagged(2));
  std::vector<int> fired;
  while (auto e = q.pop()) fired.push_back(e->second.target);
  EXPECT_EQ(fired, std::vector<int>({1, 2, 3}));
}

TEST(EventQueue, TieBreaksFifo) {
  EventQueue q;
  q.schedule(1.0, tagged(1));
  q.schedule(1.0, tagged(2));
  std::vector<int> fired;
  while (auto e = q.pop()) {
    EXPECT_DOUBLE_EQ(e->first, 1.0);
    fired.push_back(e->second.target);
  }
  EXPECT_EQ(fired, std::vector<int>({1, 2}));
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  const EventId id = q.schedule(1.0, tagged(1));
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop().has_value());
}

TEST(EventQueue, CancelUnknownIdIsNoOp) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
  EXPECT_TRUE(q.empty());
  const EventId id = q.schedule(1.0, tagged(1));
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // double-cancel
}

TEST(EventQueue, StaleIdCannotCancelRecycledSlot) {
  EventQueue q;
  const EventId first = q.schedule(1.0, tagged(1));
  ASSERT_TRUE(q.cancel(first));
  // Drain so the slot is recycled, then let a new event claim it: the
  // generation bump must keep the stale handle dead.
  q.schedule(2.0, tagged(2));
  while (q.pop().has_value()) {
  }
  const EventId reused = q.schedule(3.0, tagged(3));
  EXPECT_FALSE(q.cancel(first));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(reused));
}

// The compaction regression test: a schedule/cancel churn loop (the
// work-conserving station replans — and cancels — one completion per
// busy-set change) must not accumulate dead entries or grow the node
// slab without bound.
TEST(EventQueue, CancelChurnKeepsMemoryBounded) {
  EventQueue q;
  // A resident population of live far-future events, as a real run has.
  for (int i = 0; i < 64; ++i) q.schedule(1000.0 + i, tagged(i));
  for (int i = 0; i < 200000; ++i) {
    const EventId id = q.schedule(10.0 + 1e-6 * i, tagged(i));
    ASSERT_TRUE(q.cancel(id));
    // Dead nodes may linger only until compaction kicks in: the chained
    // total stays within the policy bound entries <= 2 * live + O(1).
    ASSERT_LE(q.entries(), 2 * q.size() + 80);
  }
  EXPECT_EQ(q.size(), 64u);
  // The slab tracks the in-flight high-water mark, not the churn volume.
  EXPECT_LE(q.pool_size(), 256u);
}

TEST(EventQueue, SteadyStateChurnReusesPooledNodes) {
  EventQueue q;
  for (int i = 0; i < 32; ++i) q.schedule(static_cast<double>(i), tagged(i));
  const std::size_t high_water = q.pool_size();
  double t = 32.0;
  for (int i = 0; i < 100000; ++i) {
    auto e = q.pop();
    ASSERT_TRUE(e.has_value());
    q.schedule(t, e->second);
    t += 1.0;
  }
  EXPECT_EQ(q.pool_size(), high_water);
  EXPECT_EQ(q.size(), 32u);
}

TEST(Simulation, ClockAdvancesWithEvents) {
  Simulation sim(1);
  std::vector<double> times;
  sim.schedule_in(2.0, tagged(0));
  sim.schedule_in(1.0, tagged(1));
  sim.run_until([&](const Event& ev) {
    times.push_back(sim.now());
    if (ev.target == 1) sim.schedule_in(0.5, tagged(2));
  });
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
  EXPECT_DOUBLE_EQ(times[2], 2.0);
  EXPECT_EQ(sim.executed(), 3u);
}

TEST(Simulation, HorizonStopsExecution) {
  Simulation sim(1);
  int fired = 0;
  sim.schedule_in(1.0, tagged(1));
  sim.schedule_in(5.0, tagged(2));
  sim.run_until([&](const Event&) { ++fired; }, 2.0);
  EXPECT_EQ(fired, 1);
  // The clock parks at the horizon, not at the dropped event's time.
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

/// One flow's traffic in the mini run loop below: GPS weight, mean job
/// work (the paper's alpha), Poisson arrival rate, and the warmup cutoff
/// before which sojourns are not recorded.
struct FlowTraffic {
  double phi;
  double alpha;
  double lambda;
  double warmup;
};

/// The runner's loop in miniature: drives one station with self-re-arming
/// Poisson sources (one per flow) until `horizon`, then drains. Returns
/// per-flow sojourn summaries; keeps every sample when asked.
std::vector<Summary> drive_station(
    GpsMode mode, double capacity, const std::vector<FlowTraffic>& traffic,
    double horizon, std::uint64_t seed,
    std::vector<std::vector<double>>* samples = nullptr) {
  Simulation sim(seed);
  RequestPool pool;
  std::vector<GpsStation::Flow> arena;
  arena.reserve(traffic.size());
  GpsStation station(sim, pool, arena, /*station_id=*/0, capacity, mode,
                     static_cast<int>(traffic.size()));
  for (const FlowTraffic& t : traffic) station.add_flow(t.phi, t.alpha);
  for (std::size_t f = 0; f < traffic.size(); ++f)
    sim.schedule_in(
        sim.rng().exponential(traffic[f].lambda),
        Event{EventKind::kSourceArrival, static_cast<std::int32_t>(f), 0});
  std::vector<Summary> sojourns(traffic.size());
  if (samples) samples->assign(traffic.size(), {});
  Event ev;
  while (sim.next(ev)) {
    switch (ev.kind) {
      case EventKind::kSourceArrival: {
        if (sim.now() >= horizon) break;  // stop generating, drain
        const auto f = static_cast<std::size_t>(ev.target);
        station.arrive(ev.target, sim.now());
        sim.schedule_in(sim.rng().exponential(traffic[f].lambda), ev);
        break;
      }
      case EventKind::kStationComplete: {
        const double start = station.finish_head(ev.flow);
        const auto f = static_cast<std::size_t>(ev.flow);
        if (start > traffic[f].warmup) {
          const double sojourn = sim.now() - start;
          sojourns[f].add(sojourn);
          if (samples) (*samples)[f].push_back(sojourn);
        }
        station.resume(ev.flow);
        break;
      }
    }
  }
  return sojourns;
}

// Single GPS flow = M/M/1: tail percentiles must match the exponential
// sojourn law T_p = -ln(1-p)/(mu - lambda).
TEST(GpsStation, SingleFlowQuantilesMatchMm1Law) {
  const double phi = 0.5, alpha = 0.5, lambda = 2.0;
  const double mu = phi * 4.0 / alpha;  // 4.0
  std::vector<std::vector<double>> samples;
  const auto sojourns =
      drive_station(GpsMode::kIsolated, 4.0, {{phi, alpha, lambda, 300.0}},
                    /*horizon=*/8000.0, 77, &samples);
  ASSERT_GT(sojourns[0].count(), 5000u);
  for (double p : {0.5, 0.9, 0.95}) {
    const double expected =
        queueing::mm1_response_quantile(units::ArrivalRate{lambda},
                                        units::ArrivalRate{mu}, p)
            .value();
    const double measured = cloudalloc::quantile(samples[0], p);
    EXPECT_NEAR(measured, expected, 0.10 * expected) << "quantile p=" << p;
  }
}

// Single GPS flow = M/M/1: simulated mean sojourn must match 1/(mu-lambda).
TEST(GpsStation, SingleFlowMatchesMm1) {
  const double phi = 0.5, alpha = 0.5, lambda = 2.0;
  const double mu = phi * 4.0 / alpha;  // 4.0
  const auto sojourns =
      drive_station(GpsMode::kIsolated, 4.0, {{phi, alpha, lambda, 200.0}},
                    /*horizon=*/4000.0, 42);
  const double expected =
      queueing::mm1_response_time(units::ArrivalRate{lambda},
                                  units::ArrivalRate{mu})
          .value();
  EXPECT_GT(sojourns[0].count(), 1000u);
  EXPECT_NEAR(sojourns[0].mean(), expected,
              4.0 * sojourns[0].ci95_halfwidth() + 0.05 * expected);
}

// Two isolated flows behave as independent M/M/1 queues.
TEST(GpsStation, TwoIsolatedFlowsMatchTheory) {
  const double lambda0 = 2.0, lambda1 = 1.5;
  const auto sojourns = drive_station(
      GpsMode::kIsolated, 6.0,
      {{0.5, 0.6, lambda0, 200.0}, {0.3, 0.4, lambda1, 200.0}},
      /*horizon=*/3000.0, 43);
  const double e0 =
      queueing::mm1_response_time(units::ArrivalRate{lambda0},
                                  units::ArrivalRate{0.5 * 6.0 / 0.6})
          .value();
  const double e1 =
      queueing::mm1_response_time(units::ArrivalRate{lambda1},
                                  units::ArrivalRate{0.3 * 6.0 / 0.4})
          .value();
  EXPECT_NEAR(sojourns[0].mean(), e0,
              4.0 * sojourns[0].ci95_halfwidth() + 0.05 * e0);
  EXPECT_NEAR(sojourns[1].mean(), e1,
              4.0 * sojourns[1].ci95_halfwidth() + 0.05 * e1);
}

// Work-conserving GPS can only be (weakly) faster than isolated shares.
TEST(GpsStation, WorkConservingDominatesIsolated) {
  // A second, lightly loaded flow leaves idle capacity to reclaim.
  const std::vector<FlowTraffic> traffic = {{0.5, 0.5, 3.0, 100.0},
                                            {0.5, 0.5, 0.3, 100.0}};
  const auto isolated =
      drive_station(GpsMode::kIsolated, 4.0, traffic, /*horizon=*/2000.0, 44);
  const auto conserving = drive_station(GpsMode::kWorkConserving, 4.0,
                                        traffic, /*horizon=*/2000.0, 44);
  EXPECT_LT(conserving[0].mean(), isolated[0].mean() * 1.02);
}

TEST(GpsStation, RejectsOverfullWeights) {
  Simulation sim(1);
  RequestPool pool;
  std::vector<GpsStation::Flow> arena;
  arena.reserve(2);
  GpsStation station(sim, pool, arena, 0, 4.0, GpsMode::kIsolated, 2);
  station.add_flow(0.7, 1.0);
  EXPECT_DEATH(station.add_flow(0.5, 1.0), "sum to");
}

TEST(GpsStation, RejectsFlowsBeyondReservedSpan) {
  Simulation sim(1);
  RequestPool pool;
  std::vector<GpsStation::Flow> arena;
  arena.reserve(1);
  GpsStation station(sim, pool, arena, 0, 4.0, GpsMode::kIsolated, 1);
  station.add_flow(0.3, 1.0);
  EXPECT_DEATH(station.add_flow(0.3, 1.0), "span exhausted");
}

TEST(Runner, ValidatesAnalyticModelOnTinyAllocation) {
  const auto cloud = workload::make_tiny_scenario(3);
  model::Allocation alloc(cloud);
  alloc.assign(model::ClientId{0}, model::ClusterId{0}, {model::Placement{model::ServerId{0}, 1.0, 0.5, 0.5}});
  alloc.assign(model::ClientId{1}, model::ClusterId{0}, {model::Placement{model::ServerId{1}, 1.0, 0.6, 0.6}});
  alloc.assign(model::ClientId{2}, model::ClusterId{1},
               {model::Placement{model::ServerId{2}, 0.5, 0.4, 0.4},
                model::Placement{model::ServerId{3}, 0.5, 0.4, 0.4}});
  SimOptions opts;
  opts.horizon = 3000.0;
  opts.seed = 5;
  const auto report = simulate_allocation(alloc, opts);
  ASSERT_EQ(report.clients.size(), 3u);
  EXPECT_GT(report.total_completed, 1000u);
  for (const auto& c : report.clients) {
    EXPECT_GT(c.completed, 100u);
    EXPECT_NEAR(c.mean_response, c.analytic_response,
                4.0 * c.ci95 + 0.08 * c.analytic_response)
        << "client " << c.id;
  }
  EXPECT_LT(report.mean_abs_rel_error, 0.10);
}

TEST(Runner, UnassignedClientsGenerateNothing) {
  const auto cloud = workload::make_tiny_scenario(2);
  model::Allocation alloc(cloud);
  alloc.assign(model::ClientId{0}, model::ClusterId{0}, {model::Placement{model::ServerId{0}, 1.0, 0.5, 0.5}});
  SimOptions opts;
  opts.horizon = 200.0;
  const auto report = simulate_allocation(alloc, opts);
  EXPECT_EQ(report.clients.size(), 1u);  // only the assigned client
}

TEST(Runner, PercentilesAreOrderedAndBracketTheMean) {
  const auto cloud = workload::make_tiny_scenario(2);
  model::Allocation alloc(cloud);
  alloc.assign(model::ClientId{0}, model::ClusterId{0}, {model::Placement{model::ServerId{0}, 1.0, 0.5, 0.5}});
  SimOptions opts;
  opts.horizon = 1500.0;
  opts.seed = 21;
  const auto report = simulate_allocation(alloc, opts);
  ASSERT_EQ(report.clients.size(), 1u);
  const auto& c = report.clients[0];
  EXPECT_GT(c.p50, 0.0);
  EXPECT_LE(c.p50, c.p95);
  EXPECT_LE(c.p95, c.p99);
  // Exponential-ish sojourns: median below mean, p99 well above.
  EXPECT_LT(c.p50, c.mean_response);
  EXPECT_GT(c.p99, c.mean_response);
}

TEST(Runner, PercentileCollectionCanBeDisabled) {
  const auto cloud = workload::make_tiny_scenario(1);
  model::Allocation alloc(cloud);
  alloc.assign(model::ClientId{0}, model::ClusterId{0}, {model::Placement{model::ServerId{0}, 1.0, 0.5, 0.5}});
  SimOptions opts;
  opts.horizon = 300.0;
  opts.collect_percentiles = false;
  const auto report = simulate_allocation(alloc, opts);
  EXPECT_DOUBLE_EQ(report.clients[0].p50, 0.0);
  EXPECT_DOUBLE_EQ(report.clients[0].p99, 0.0);
}

TEST(Runner, MeasuredUtilizationTracksAnalytic) {
  const auto cloud = workload::make_tiny_scenario(2);
  model::Allocation alloc(cloud);
  alloc.assign(model::ClientId{0}, model::ClusterId{0}, {model::Placement{model::ServerId{0}, 1.0, 0.5, 0.5}});
  alloc.assign(model::ClientId{1}, model::ClusterId{0}, {model::Placement{model::ServerId{0}, 1.0, 0.4, 0.4}});
  SimOptions opts;
  opts.horizon = 3000.0;
  opts.seed = 23;
  const auto report = simulate_allocation(alloc, opts);
  ASSERT_EQ(report.servers.size(), 1u);
  const auto& s = report.servers[0];
  EXPECT_GT(s.analytic_util_p, 0.0);
  EXPECT_NEAR(s.measured_util_p, s.analytic_util_p,
              0.1 * s.analytic_util_p + 0.01);
}

TEST(Runner, DemandFactorScalesCompletedRequests) {
  const auto cloud = workload::make_tiny_scenario(1);
  model::Allocation alloc(cloud);
  alloc.assign(model::ClientId{0}, model::ClusterId{0}, {model::Placement{model::ServerId{0}, 1.0, 0.6, 0.6}});
  SimOptions base, doubled;
  base.horizon = doubled.horizon = 2000.0;
  base.seed = doubled.seed = 31;
  base.collect_percentiles = doubled.collect_percentiles = false;
  doubled.demand_factor = 2.0;
  const auto r1 = simulate_allocation(alloc, base);
  const auto r2 = simulate_allocation(alloc, doubled);
  EXPECT_NEAR(static_cast<double>(r2.total_completed),
              2.0 * static_cast<double>(r1.total_completed),
              0.1 * static_cast<double>(r2.total_completed));
}

TEST(Runner, DynamicDispatchMatchesStaticAtPlannedLoad) {
  // Split client, demand as planned: both dispatchers deliver similar
  // mean response times (dynamic may be modestly better).
  const auto cloud = workload::make_tiny_scenario(1);
  model::Allocation alloc(cloud);
  alloc.assign(model::ClientId{0}, model::ClusterId{0},
               {model::Placement{model::ServerId{0}, 0.5, 0.4, 0.4},
                model::Placement{model::ServerId{1}, 0.5, 0.4, 0.4}});
  SimOptions stat, dyn;
  stat.horizon = dyn.horizon = 3000.0;
  stat.seed = dyn.seed = 33;
  stat.collect_percentiles = dyn.collect_percentiles = false;
  dyn.dispatch = DispatchPolicy::kLeastExpectedWait;
  const auto r_static = simulate_allocation(alloc, stat);
  const auto r_dynamic = simulate_allocation(alloc, dyn);
  EXPECT_LE(r_dynamic.clients[0].mean_response,
            r_static.clients[0].mean_response * 1.1);
}

TEST(Runner, DynamicDispatchAbsorbsOverload) {
  // Demand 25% above plan: reacting to backlog must not be worse than
  // blindly sampling psi.
  const auto cloud = workload::make_tiny_scenario(1);
  model::Allocation alloc(cloud);
  alloc.assign(model::ClientId{0}, model::ClusterId{0},
               {model::Placement{model::ServerId{0}, 0.5, 0.35, 0.35},
                model::Placement{model::ServerId{1}, 0.5, 0.35, 0.35}});
  SimOptions stat, dyn;
  stat.horizon = dyn.horizon = 3000.0;
  stat.seed = dyn.seed = 37;
  stat.demand_factor = dyn.demand_factor = 1.25;
  stat.collect_percentiles = dyn.collect_percentiles = false;
  dyn.dispatch = DispatchPolicy::kLeastExpectedWait;
  const auto r_static = simulate_allocation(alloc, stat);
  const auto r_dynamic = simulate_allocation(alloc, dyn);
  EXPECT_LE(r_dynamic.clients[0].mean_response,
            r_static.clients[0].mean_response * 1.05);
}

TEST(Runner, WorkConservingModeRunsAndIsNoSlower) {
  const auto cloud = workload::make_tiny_scenario(2);
  model::Allocation alloc(cloud);
  alloc.assign(model::ClientId{0}, model::ClusterId{0}, {model::Placement{model::ServerId{0}, 1.0, 0.4, 0.4}});
  alloc.assign(model::ClientId{1}, model::ClusterId{0}, {model::Placement{model::ServerId{0}, 1.0, 0.5, 0.5}});
  SimOptions iso, wc;
  iso.horizon = wc.horizon = 2000.0;
  iso.seed = wc.seed = 11;
  wc.mode = GpsMode::kWorkConserving;
  const auto r_iso = simulate_allocation(alloc, iso);
  const auto r_wc = simulate_allocation(alloc, wc);
  double mean_iso = 0.0, mean_wc = 0.0;
  for (const auto& c : r_iso.clients) mean_iso += c.mean_response;
  for (const auto& c : r_wc.clients) mean_wc += c.mean_response;
  EXPECT_LE(mean_wc, mean_iso * 1.05);
}

}  // namespace
}  // namespace cloudalloc::sim
