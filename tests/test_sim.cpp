#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "model/evaluator.h"
#include "queueing/mm1.h"
#include "sim/event_queue.h"
#include "sim/gps_station.h"
#include "sim/runner.h"
#include "sim/simulation.h"
#include "workload/scenario.h"

namespace cloudalloc::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  while (auto e = q.pop()) e->second();
  EXPECT_EQ(fired, std::vector<int>({1, 2, 3}));
}

TEST(EventQueue, TieBreaksFifo) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(1.0, [&] { fired.push_back(2); });
  while (auto e = q.pop()) e->second();
  EXPECT_EQ(fired, std::vector<int>({1, 2}));
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(1.0, [&] { fired = true; });
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsNoOp) {
  EventQueue q;
  q.cancel(12345);
  EXPECT_TRUE(q.empty());
}

TEST(Simulation, ClockAdvancesWithEvents) {
  Simulation sim(1);
  std::vector<double> times;
  sim.schedule_in(2.0, [&] { times.push_back(sim.now()); });
  sim.schedule_in(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule_in(0.5, [&] { times.push_back(sim.now()); });
  });
  sim.run_until();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
  EXPECT_DOUBLE_EQ(times[2], 2.0);
}

TEST(Simulation, HorizonStopsExecution) {
  Simulation sim(1);
  int fired = 0;
  sim.schedule_in(1.0, [&] { ++fired; });
  sim.schedule_in(5.0, [&] { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 1);
}

// Single GPS flow = M/M/1: tail percentiles must match the exponential
// sojourn law T_p = -ln(1-p)/(mu - lambda).
TEST(GpsStation, SingleFlowQuantilesMatchMm1Law) {
  Simulation sim(77);
  GpsStation station(sim, /*capacity=*/4.0, GpsMode::kIsolated);
  std::vector<double> sojourns;
  const double phi = 0.5, alpha = 0.5, lambda = 2.0;
  const double mu = phi * 4.0 / alpha;  // 4.0
  const int flow = station.add_flow(phi, alpha, [&](double start) {
    if (start > 300.0) sojourns.push_back(sim.now() - start);
  });
  std::function<void()> arrive = [&] {
    if (sim.now() >= 8000.0) return;
    station.arrive(flow, sim.now());
    sim.schedule_in(sim.rng().exponential(lambda), arrive);
  };
  sim.schedule_in(sim.rng().exponential(lambda), arrive);
  sim.run_until();
  ASSERT_GT(sojourns.size(), 5000u);
  for (double p : {0.5, 0.9, 0.95}) {
    const double expected = queueing::mm1_response_quantile(lambda, mu, p);
    const double measured = cloudalloc::quantile(sojourns, p);
    EXPECT_NEAR(measured, expected, 0.10 * expected)
        << "quantile p=" << p;
  }
}

// Single GPS flow = M/M/1: simulated mean sojourn must match 1/(mu-lambda).
TEST(GpsStation, SingleFlowMatchesMm1) {
  Simulation sim(42);
  GpsStation station(sim, /*capacity=*/4.0, GpsMode::kIsolated);
  Summary sojourns;
  const double phi = 0.5, alpha = 0.5, lambda = 2.0;
  const double mu = phi * 4.0 / alpha;  // 4.0
  const int flow = station.add_flow(phi, alpha, [&](double start) {
    if (start > 200.0) sojourns.add(sim.now() - start);
  });
  // Poisson arrivals until t = 4000.
  std::function<void()> arrive = [&] {
    if (sim.now() >= 4000.0) return;
    station.arrive(flow, sim.now());
    sim.schedule_in(sim.rng().exponential(lambda), arrive);
  };
  sim.schedule_in(sim.rng().exponential(lambda), arrive);
  sim.run_until();
  const double expected = queueing::mm1_response_time(lambda, mu);
  EXPECT_GT(sojourns.count(), 1000u);
  EXPECT_NEAR(sojourns.mean(), expected, 4.0 * sojourns.ci95_halfwidth() +
                                             0.05 * expected);
}

// Two isolated flows behave as independent M/M/1 queues.
TEST(GpsStation, TwoIsolatedFlowsMatchTheory) {
  Simulation sim(43);
  GpsStation station(sim, 6.0, GpsMode::kIsolated);
  Summary s0, s1;
  const int f0 = station.add_flow(0.5, 0.6, [&](double start) {
    if (start > 200.0) s0.add(sim.now() - start);
  });
  const int f1 = station.add_flow(0.3, 0.4, [&](double start) {
    if (start > 200.0) s1.add(sim.now() - start);
  });
  const double lambda0 = 2.0, lambda1 = 1.5;
  std::function<void()> a0 = [&] {
    if (sim.now() >= 3000.0) return;
    station.arrive(f0, sim.now());
    sim.schedule_in(sim.rng().exponential(lambda0), a0);
  };
  std::function<void()> a1 = [&] {
    if (sim.now() >= 3000.0) return;
    station.arrive(f1, sim.now());
    sim.schedule_in(sim.rng().exponential(lambda1), a1);
  };
  sim.schedule_in(0.01, a0);
  sim.schedule_in(0.02, a1);
  sim.run_until();
  const double e0 = queueing::mm1_response_time(lambda0, 0.5 * 6.0 / 0.6);
  const double e1 = queueing::mm1_response_time(lambda1, 0.3 * 6.0 / 0.4);
  EXPECT_NEAR(s0.mean(), e0, 4.0 * s0.ci95_halfwidth() + 0.05 * e0);
  EXPECT_NEAR(s1.mean(), e1, 4.0 * s1.ci95_halfwidth() + 0.05 * e1);
}

// Work-conserving GPS can only be (weakly) faster than isolated shares.
TEST(GpsStation, WorkConservingDominatesIsolated) {
  auto run = [](GpsMode mode) {
    Simulation sim(44);
    GpsStation station(sim, 4.0, mode);
    Summary sojourns;
    const int f0 = station.add_flow(0.5, 0.5, [&](double start) {
      if (start > 100.0) sojourns.add(sim.now() - start);
    });
    // A second, lightly loaded flow leaves idle capacity to reclaim.
    const int f1 = station.add_flow(0.5, 0.5, [](double) {});
    const double lambda0 = 3.0, lambda1 = 0.3;
    std::function<void()> a0 = [&] {
      if (sim.now() >= 2000.0) return;
      station.arrive(f0, sim.now());
      sim.schedule_in(sim.rng().exponential(lambda0), a0);
    };
    std::function<void()> a1 = [&] {
      if (sim.now() >= 2000.0) return;
      station.arrive(f1, sim.now());
      sim.schedule_in(sim.rng().exponential(lambda1), a1);
    };
    sim.schedule_in(0.01, a0);
    sim.schedule_in(0.02, a1);
    sim.run_until();
    return sojourns.mean();
  };
  const double isolated = run(GpsMode::kIsolated);
  const double conserving = run(GpsMode::kWorkConserving);
  EXPECT_LT(conserving, isolated * 1.02);
}

TEST(GpsStation, RejectsOverfullWeights) {
  Simulation sim(1);
  GpsStation station(sim, 4.0, GpsMode::kIsolated);
  station.add_flow(0.7, 1.0, [](double) {});
  EXPECT_DEATH(station.add_flow(0.5, 1.0, [](double) {}), "sum to");
}

TEST(Runner, ValidatesAnalyticModelOnTinyAllocation) {
  const auto cloud = workload::make_tiny_scenario(3);
  model::Allocation alloc(cloud);
  alloc.assign(0, 0, {model::Placement{0, 1.0, 0.5, 0.5}});
  alloc.assign(1, 0, {model::Placement{1, 1.0, 0.6, 0.6}});
  alloc.assign(2, 1,
               {model::Placement{2, 0.5, 0.4, 0.4},
                model::Placement{3, 0.5, 0.4, 0.4}});
  SimOptions opts;
  opts.horizon = 3000.0;
  opts.seed = 5;
  const auto report = simulate_allocation(alloc, opts);
  ASSERT_EQ(report.clients.size(), 3u);
  EXPECT_GT(report.total_completed, 1000u);
  for (const auto& c : report.clients) {
    EXPECT_GT(c.completed, 100u);
    EXPECT_NEAR(c.mean_response, c.analytic_response,
                4.0 * c.ci95 + 0.08 * c.analytic_response)
        << "client " << c.id;
  }
  EXPECT_LT(report.mean_abs_rel_error, 0.10);
}

TEST(Runner, UnassignedClientsGenerateNothing) {
  const auto cloud = workload::make_tiny_scenario(2);
  model::Allocation alloc(cloud);
  alloc.assign(0, 0, {model::Placement{0, 1.0, 0.5, 0.5}});
  SimOptions opts;
  opts.horizon = 200.0;
  const auto report = simulate_allocation(alloc, opts);
  EXPECT_EQ(report.clients.size(), 1u);  // only the assigned client
}

TEST(Runner, PercentilesAreOrderedAndBracketTheMean) {
  const auto cloud = workload::make_tiny_scenario(2);
  model::Allocation alloc(cloud);
  alloc.assign(0, 0, {model::Placement{0, 1.0, 0.5, 0.5}});
  SimOptions opts;
  opts.horizon = 1500.0;
  opts.seed = 21;
  const auto report = simulate_allocation(alloc, opts);
  ASSERT_EQ(report.clients.size(), 1u);
  const auto& c = report.clients[0];
  EXPECT_GT(c.p50, 0.0);
  EXPECT_LE(c.p50, c.p95);
  EXPECT_LE(c.p95, c.p99);
  // Exponential-ish sojourns: median below mean, p99 well above.
  EXPECT_LT(c.p50, c.mean_response);
  EXPECT_GT(c.p99, c.mean_response);
}

TEST(Runner, PercentileCollectionCanBeDisabled) {
  const auto cloud = workload::make_tiny_scenario(1);
  model::Allocation alloc(cloud);
  alloc.assign(0, 0, {model::Placement{0, 1.0, 0.5, 0.5}});
  SimOptions opts;
  opts.horizon = 300.0;
  opts.collect_percentiles = false;
  const auto report = simulate_allocation(alloc, opts);
  EXPECT_DOUBLE_EQ(report.clients[0].p50, 0.0);
  EXPECT_DOUBLE_EQ(report.clients[0].p99, 0.0);
}

TEST(Runner, MeasuredUtilizationTracksAnalytic) {
  const auto cloud = workload::make_tiny_scenario(2);
  model::Allocation alloc(cloud);
  alloc.assign(0, 0, {model::Placement{0, 1.0, 0.5, 0.5}});
  alloc.assign(1, 0, {model::Placement{0, 1.0, 0.4, 0.4}});
  SimOptions opts;
  opts.horizon = 3000.0;
  opts.seed = 23;
  const auto report = simulate_allocation(alloc, opts);
  ASSERT_EQ(report.servers.size(), 1u);
  const auto& s = report.servers[0];
  EXPECT_GT(s.analytic_util_p, 0.0);
  EXPECT_NEAR(s.measured_util_p, s.analytic_util_p,
              0.1 * s.analytic_util_p + 0.01);
}

TEST(Runner, DemandFactorScalesCompletedRequests) {
  const auto cloud = workload::make_tiny_scenario(1);
  model::Allocation alloc(cloud);
  alloc.assign(0, 0, {model::Placement{0, 1.0, 0.6, 0.6}});
  SimOptions base, doubled;
  base.horizon = doubled.horizon = 2000.0;
  base.seed = doubled.seed = 31;
  base.collect_percentiles = doubled.collect_percentiles = false;
  doubled.demand_factor = 2.0;
  const auto r1 = simulate_allocation(alloc, base);
  const auto r2 = simulate_allocation(alloc, doubled);
  EXPECT_NEAR(static_cast<double>(r2.total_completed),
              2.0 * static_cast<double>(r1.total_completed),
              0.1 * static_cast<double>(r2.total_completed));
}

TEST(Runner, DynamicDispatchMatchesStaticAtPlannedLoad) {
  // Split client, demand as planned: both dispatchers deliver similar
  // mean response times (dynamic may be modestly better).
  const auto cloud = workload::make_tiny_scenario(1);
  model::Allocation alloc(cloud);
  alloc.assign(0, 0,
               {model::Placement{0, 0.5, 0.4, 0.4},
                model::Placement{1, 0.5, 0.4, 0.4}});
  SimOptions stat, dyn;
  stat.horizon = dyn.horizon = 3000.0;
  stat.seed = dyn.seed = 33;
  stat.collect_percentiles = dyn.collect_percentiles = false;
  dyn.dispatch = DispatchPolicy::kLeastExpectedWait;
  const auto r_static = simulate_allocation(alloc, stat);
  const auto r_dynamic = simulate_allocation(alloc, dyn);
  EXPECT_LE(r_dynamic.clients[0].mean_response,
            r_static.clients[0].mean_response * 1.1);
}

TEST(Runner, DynamicDispatchAbsorbsOverload) {
  // Demand 25% above plan: reacting to backlog must not be worse than
  // blindly sampling psi.
  const auto cloud = workload::make_tiny_scenario(1);
  model::Allocation alloc(cloud);
  alloc.assign(0, 0,
               {model::Placement{0, 0.5, 0.35, 0.35},
                model::Placement{1, 0.5, 0.35, 0.35}});
  SimOptions stat, dyn;
  stat.horizon = dyn.horizon = 3000.0;
  stat.seed = dyn.seed = 37;
  stat.demand_factor = dyn.demand_factor = 1.25;
  stat.collect_percentiles = dyn.collect_percentiles = false;
  dyn.dispatch = DispatchPolicy::kLeastExpectedWait;
  const auto r_static = simulate_allocation(alloc, stat);
  const auto r_dynamic = simulate_allocation(alloc, dyn);
  EXPECT_LE(r_dynamic.clients[0].mean_response,
            r_static.clients[0].mean_response * 1.05);
}

TEST(Runner, WorkConservingModeRunsAndIsNoSlower) {
  const auto cloud = workload::make_tiny_scenario(2);
  model::Allocation alloc(cloud);
  alloc.assign(0, 0, {model::Placement{0, 1.0, 0.4, 0.4}});
  alloc.assign(1, 0, {model::Placement{0, 1.0, 0.5, 0.5}});
  SimOptions iso, wc;
  iso.horizon = wc.horizon = 2000.0;
  iso.seed = wc.seed = 11;
  wc.mode = GpsMode::kWorkConserving;
  const auto r_iso = simulate_allocation(alloc, iso);
  const auto r_wc = simulate_allocation(alloc, wc);
  double mean_iso = 0.0, mean_wc = 0.0;
  for (const auto& c : r_iso.clients) mean_iso += c.mean_response;
  for (const auto& c : r_wc.clients) mean_wc += c.mean_response;
  EXPECT_LE(mean_wc, mean_iso * 1.05);
}

}  // namespace
}  // namespace cloudalloc::sim
