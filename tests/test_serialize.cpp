#include "model/serialize.h"

#include <gtest/gtest.h>

#include "alloc/allocator.h"
#include "model/evaluator.h"
#include "model/feasibility.h"
#include "workload/scenario.h"

namespace cloudalloc::model {
namespace {

TEST(SerializeCloud, RoundTripsTinyScenario) {
  const Cloud original = workload::make_tiny_scenario(4);
  const Json doc = cloud_to_json(original);
  std::string error;
  const auto restored = cloud_from_json(doc, &error);
  ASSERT_TRUE(restored.has_value()) << error;

  EXPECT_EQ(restored->num_clients(), original.num_clients());
  EXPECT_EQ(restored->num_servers(), original.num_servers());
  EXPECT_EQ(restored->num_clusters(), original.num_clusters());
  for (ClientId i : original.client_ids()) {
    EXPECT_DOUBLE_EQ(restored->client(i).lambda_pred,
                     original.client(i).lambda_pred);
    EXPECT_DOUBLE_EQ(restored->client(i).alpha_p, original.client(i).alpha_p);
    EXPECT_DOUBLE_EQ(restored->client(i).disk, original.client(i).disk);
    for (double r : {0.1, 1.0, 3.0})
      EXPECT_DOUBLE_EQ(restored->utility_of(i).value(r),
                       original.utility_of(i).value(r));
  }
  for (ServerId j : original.server_ids()) {
    EXPECT_EQ(restored->server(j).cluster, original.server(j).cluster);
    EXPECT_DOUBLE_EQ(restored->server_class_of(j).cap_p,
                     original.server_class_of(j).cap_p);
  }
}

TEST(SerializeCloud, RoundTripsThroughText) {
  const Cloud original =
      workload::make_scenario(workload::ScenarioParams{}, 77);
  const std::string text = cloud_to_json(original).dump(2);
  const auto doc = Json::parse(text);
  ASSERT_TRUE(doc.has_value());
  const auto restored = cloud_from_json(*doc);
  ASSERT_TRUE(restored.has_value());
  EXPECT_DOUBLE_EQ(restored->total_cap_p(), original.total_cap_p());
  EXPECT_DOUBLE_EQ(restored->total_demand_p(), original.total_demand_p());
}

TEST(SerializeCloud, PreservesStepUtilities) {
  std::vector<ServerClass> classes{
      ServerClass{ServerClassId{0}, "c", 4.0, 4.0, 4.0, 1.0, 1.0}};
  std::vector<UtilityClass> utilities{UtilityClass{
      UtilityClassId{0}, std::make_shared<StepUtility>(std::vector<double>{1.0, 2.0},
                                       std::vector<double>{5.0, 2.0})}};
  std::vector<Server> servers{Server{ServerId{0}, ClusterId{0}, ServerClassId{0}, {}}};
  std::vector<Cluster> clusters{Cluster{ClusterId{0}, "k", {ServerId{0}}}};
  Client c;
  c.id = ClientId{0};
  const Cloud original(classes, servers, clusters, utilities, {c});

  const auto restored = cloud_from_json(cloud_to_json(original));
  ASSERT_TRUE(restored.has_value());
  for (double r : {0.5, 1.0, 1.5, 2.0, 2.5})
    EXPECT_DOUBLE_EQ(restored->utility_of(ClientId{0}).value(r),
                     original.utility_of(ClientId{0}).value(r));
}

TEST(SerializeCloud, PreservesBackgroundLoad) {
  std::vector<ServerClass> classes{
      ServerClass{ServerClassId{0}, "c", 4.0, 4.0, 4.0, 1.0, 1.0}};
  std::vector<UtilityClass> utilities{
      UtilityClass{UtilityClassId{0}, std::make_shared<LinearUtility>(2.0, 0.5)}};
  Server sv{ServerId{0}, ClusterId{0}, ServerClassId{0},
            BackgroundLoad{0.25, 0.1, 1.5, true}};
  std::vector<Cluster> clusters{Cluster{ClusterId{0}, "k", {ServerId{0}}}};
  Client c;
  c.id = ClientId{0};
  const Cloud original(classes, {sv}, clusters, utilities, {c});

  const auto restored = cloud_from_json(cloud_to_json(original));
  ASSERT_TRUE(restored.has_value());
  EXPECT_DOUBLE_EQ(restored->server(ServerId{0}).background.phi_p, 0.25);
  EXPECT_DOUBLE_EQ(restored->server(ServerId{0}).background.disk, 1.5);
  EXPECT_TRUE(restored->server(ServerId{0}).background.keeps_on);
}

TEST(SerializeCloud, RejectsWrongFormat) {
  std::string error;
  EXPECT_FALSE(cloud_from_json(Json(JsonObject{}), &error).has_value());
  EXPECT_FALSE(error.empty());
  JsonObject o;
  o.emplace("format", "something.else");
  EXPECT_FALSE(cloud_from_json(Json(std::move(o))).has_value());
}

TEST(SerializeAllocation, RoundTripsSolvedAllocation) {
  const Cloud cloud = workload::make_tiny_scenario(4);
  const auto solved = alloc::ResourceAllocator().run(cloud);
  const Json doc = allocation_to_json(solved.allocation);

  std::string error;
  const auto restored = allocation_from_json(cloud, doc, &error);
  ASSERT_TRUE(restored.has_value()) << error;
  EXPECT_TRUE(is_feasible(*restored));
  EXPECT_DOUBLE_EQ(profit(*restored), profit(solved.allocation));
  for (ClientId i : cloud.client_ids()) {
    EXPECT_EQ(restored->cluster_of(i), solved.allocation.cluster_of(i));
    EXPECT_EQ(restored->placements(i).size(),
              solved.allocation.placements(i).size());
  }
}

TEST(SerializeAllocation, UnassignedClientsStayUnassigned) {
  const Cloud cloud = workload::make_tiny_scenario(3);
  Allocation partial(cloud);
  partial.assign(ClientId{1}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.5, 0.5}});
  const auto restored =
      allocation_from_json(cloud, allocation_to_json(partial));
  ASSERT_TRUE(restored.has_value());
  EXPECT_FALSE(restored->is_assigned(ClientId{0}));
  EXPECT_TRUE(restored->is_assigned(ClientId{1}));
  EXPECT_FALSE(restored->is_assigned(ClientId{2}));
}

TEST(SerializeAllocation, RejectsOutOfRangeIds) {
  const Cloud cloud = workload::make_tiny_scenario(2);
  Allocation alloc(cloud);
  alloc.assign(ClientId{0}, ClusterId{0}, {Placement{ServerId{0}, 1.0, 0.5, 0.5}});
  Json doc = allocation_to_json(alloc);
  // Corrupt the client id.
  JsonObject root = doc.as_object();
  JsonArray assignments = root.at("assignments").as_array();
  JsonObject entry = assignments[0].as_object();
  entry["client"] = Json(99);
  assignments[0] = Json(std::move(entry));
  root["assignments"] = Json(std::move(assignments));
  std::string error;
  EXPECT_FALSE(
      allocation_from_json(cloud, Json(std::move(root)), &error).has_value());
  EXPECT_NE(error.find("client"), std::string::npos);
}

TEST(SerializeFiles, SaveAndLoadRoundTrip) {
  const std::string path = "/tmp/cloudalloc_test_file.json";
  ASSERT_TRUE(save_text_file(path, "{\"x\": 1}"));
  const auto text = load_text_file(path);
  ASSERT_TRUE(text.has_value());
  EXPECT_EQ(*text, "{\"x\": 1}");
  EXPECT_FALSE(load_text_file("/nonexistent/dir/file.json").has_value());
}

}  // namespace
}  // namespace cloudalloc::model
