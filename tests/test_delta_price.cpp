#include "alloc/delta_price.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "alloc/assign_distribute.h"
#include "alloc/options.h"
#include "model/allocation.h"
#include "model/evaluator.h"
#include "model/residual.h"
#include "workload/scenario.h"

namespace cloudalloc::alloc {
namespace {

using model::Allocation;
using model::ClientId;
using model::Cloud;
using model::ClusterId;
using model::ResidualView;
using model::ServerId;

// The delta pricer claims exactness against the full evaluator; a profit
// is O(10^2) here, so 1e-9 absolute leaves no room for anything but
// benign summation-order rounding.
constexpr double kTol = 1e-9;

/// Builds a half-loaded allocation: the first `placed` clients are
/// inserted greedily, the rest stay unassigned as probe material.
Allocation half_loaded(const Cloud& cloud, int placed,
                       const AllocatorOptions& opts) {
  Allocation alloc(cloud);
  for (int i_raw = 0; i_raw < placed; ++i_raw) {
    const ClientId i{i_raw};
    const auto plan = best_insertion(alloc, i, opts);
    if (plan) alloc.assign(i, plan->cluster, plan->placements);
  }
  return alloc;
}

/// Full server-aggregate fingerprint of a view, for bitwise-restore
/// assertions (exact equality on every field the probes read).
std::vector<double> fingerprint(const ResidualView& view) {
  const Cloud& cloud = view.cloud();
  std::vector<double> fp;
  for (ServerId j : cloud.server_ids()) {
    fp.push_back(view.free_phi_p(j));
    fp.push_back(view.free_phi_n(j));
    fp.push_back(view.free_disk(j));
    fp.push_back(view.proc_load(j));
    fp.push_back(static_cast<double>(view.hosted_clients(j)));
  }
  return fp;
}

TEST(DeltaPriceTest, InsertionDeltaMatchesCloneOracle) {
  AllocatorOptions opts;
  for (std::uint64_t seed : {1, 5, 9, 23}) {
    workload::ScenarioParams params;
    params.num_clients = 60;
    params.background_probability = (seed % 2 == 1) ? 0.3 : 0.0;
    const Cloud cloud = workload::make_scenario(params, seed);
    const Allocation alloc = half_loaded(cloud, 30, opts);
    model::profit(alloc);  // settle caches before snapshotting
    const ResidualView view(alloc);

    int priced = 0;
    for (int i_raw = 30; i_raw < cloud.num_clients(); ++i_raw) {
      const ClientId i{i_raw};
      const auto plan = best_insertion(view, i, opts);
      if (!plan) continue;
      const double delta = insertion_delta(view, i, plan->placements);

      Allocation trial = alloc.clone();
      const double before = model::profit(trial);
      trial.assign(i, plan->cluster, plan->placements);
      const double after = model::profit(trial);
      EXPECT_NEAR(delta, after - before, kTol)
          << "seed=" << seed << " client=" << i;
      ++priced;
    }
    EXPECT_GT(priced, 0) << "seed=" << seed;
  }
}

TEST(DeltaPriceTest, RemovalDeltaMatchesCloneOracle) {
  AllocatorOptions opts;
  for (std::uint64_t seed : {2, 7, 13}) {
    workload::ScenarioParams params;
    params.num_clients = 60;
    params.background_probability = (seed % 2 == 1) ? 0.3 : 0.0;
    const Cloud cloud = workload::make_scenario(params, seed);
    const Allocation alloc = half_loaded(cloud, 40, opts);
    model::profit(alloc);
    const ResidualView view(alloc);

    int priced = 0;
    for (int i_raw = 0; i_raw < 40; ++i_raw) {
      const ClientId i{i_raw};
      if (!alloc.is_assigned(i)) continue;
      const double delta = removal_delta(view, i, alloc.placements(i));

      Allocation trial = alloc.clone();
      const double before = model::profit(trial);
      trial.clear(i);
      const double after = model::profit(trial);
      EXPECT_NEAR(delta, after - before, kTol)
          << "seed=" << seed << " client=" << i;
      ++priced;
    }
    EXPECT_GT(priced, 0) << "seed=" << seed;
  }
}

TEST(DeltaPriceTest, ReplaceDeltaMatchesOracleAndRestoresView) {
  AllocatorOptions opts;
  workload::ScenarioParams params;
  params.num_clients = 60;
  const Cloud cloud = workload::make_scenario(params, 3);
  const Allocation alloc = half_loaded(cloud, 40, opts);
  model::profit(alloc);
  ResidualView view(alloc);
  const std::vector<double> fp_before = fingerprint(view);

  InsertionConstraints constraints;
  int priced = 0;
  for (int i_raw = 0; i_raw < 40; ++i_raw) {
    const ClientId i{i_raw};
    if (!alloc.is_assigned(i)) continue;
    // Re-place into a different cluster so old and new placements differ.
    const ClusterId other{(alloc.cluster_of(i).value() + 1) %
                          cloud.num_clusters()};
    const auto old_ps = alloc.placements(i);

    // Price the insertion against the vacated state, like the passes do.
    ResidualView probe = view;
    probe.remove_client(i, old_ps);
    const auto plan = assign_distribute(probe, i, other, opts, constraints);
    if (!plan) continue;

    const double delta = replace_delta(view, i, old_ps, plan->placements);

    Allocation trial = alloc.clone();
    const double before = model::profit(trial);
    trial.clear(i);
    trial.assign(i, other, plan->placements);
    const double after = model::profit(trial);
    EXPECT_NEAR(delta, after - before, kTol) << "client=" << i;
    ++priced;
  }
  EXPECT_GT(priced, 0);

  // replace_delta speculates inside the view but must hand it back
  // bitwise-unchanged.
  const std::vector<double> fp_after = fingerprint(view);
  ASSERT_EQ(fp_before.size(), fp_after.size());
  for (std::size_t n = 0; n < fp_before.size(); ++n)
    EXPECT_EQ(fp_before[n], fp_after[n]) << "fingerprint slot " << n;
}

TEST(DeltaPriceTest, TopKContainsArgmaxOrFallback) {
  // With pruning on, every insertion either solves over a certified top-K
  // set — which must then contain every server the exact optimum uses —
  // or falls back to the exact scan.
  AllocatorOptions exact_opts;
  AllocatorOptions pruned_opts;
  pruned_opts.candidate_topk = 4;
  pruned_opts.candidate_backoff = false;  // deterministic attempt counts

  workload::ScenarioParams params;
  params.num_clients = 60;
  const Cloud cloud = workload::make_scenario(params, 17);
  const Allocation alloc = half_loaded(cloud, 30, exact_opts);
  model::profit(alloc);

  int attempts = 0;
  for (int i_raw = 30; i_raw < cloud.num_clients(); ++i_raw) {
    const ClientId i{i_raw};
    for (ClusterId k : cloud.cluster_ids()) {
      const auto exact = assign_distribute(alloc, i, k, exact_opts);
      if (!exact) continue;

      InsertionStats stats;
      const auto pruned = assign_distribute(alloc, i, k, pruned_opts, {},
                                            &stats);
      ASSERT_TRUE(pruned.has_value());
      ++attempts;
      if (stats.exact_fallbacks > 0) continue;  // exact scan ran — fine
      ASSERT_GT(stats.pruned_solves, 0);
      for (const auto& p : exact->placements) {
        const bool kept =
            std::find(stats.last_pruned_set.begin(),
                      stats.last_pruned_set.end(),
                      p.server) != stats.last_pruned_set.end();
        EXPECT_TRUE(kept) << "client=" << i << " cluster=" << k
                          << " argmax server " << p.server
                          << " missing from certified top-K set";
      }
    }
  }
  EXPECT_GT(attempts, 0);
}

TEST(DeltaPriceTest, PrunedEqualsFullScan) {
  // Certified-or-fallback means pruning may never change the answer: same
  // score, same placements, bit for bit.
  AllocatorOptions exact_opts;
  AllocatorOptions pruned_opts;
  pruned_opts.candidate_topk = 4;
  pruned_opts.candidate_backoff = false;  // deterministic attempt counts

  for (std::uint64_t seed : {17, 29}) {
    workload::ScenarioParams params;
    params.num_clients = 60;
    const Cloud cloud = workload::make_scenario(params, seed);
    const Allocation alloc = half_loaded(cloud, 30, exact_opts);
    model::profit(alloc);

    for (int i_raw = 30; i_raw < cloud.num_clients(); ++i_raw) {
      const ClientId i{i_raw};
      for (ClusterId k : cloud.cluster_ids()) {
        const auto exact = assign_distribute(alloc, i, k, exact_opts);
        const auto pruned = assign_distribute(alloc, i, k, pruned_opts);
        ASSERT_EQ(exact.has_value(), pruned.has_value());
        if (!exact) continue;
        EXPECT_EQ(exact->score, pruned->score);
        ASSERT_EQ(exact->placements.size(), pruned->placements.size());
        for (std::size_t n = 0; n < exact->placements.size(); ++n) {
          EXPECT_EQ(exact->placements[n].server, pruned->placements[n].server);
          EXPECT_EQ(exact->placements[n].psi, pruned->placements[n].psi);
          EXPECT_EQ(exact->placements[n].phi_p, pruned->placements[n].phi_p);
          EXPECT_EQ(exact->placements[n].phi_n, pruned->placements[n].phi_n);
        }
      }
    }
  }
}

TEST(DeltaPriceTest, TieHeavyTwinCertificationPrunesWithExclusions) {
  // Single-class clusters with identical residuals are the worst case for
  // a score-bound certificate (every candidate ties) and the best case
  // for twin certification: the K cut lands inside a run of bitwise
  // twins, the selection extends the run only up to G included members,
  // and certified() discharges the excluded twins. The pruned solve must
  // then actually run — real exclusions, no exact fallback — and still
  // match the full scan bit for bit.
  AllocatorOptions exact_opts;
  AllocatorOptions pruned_opts;
  pruned_opts.candidate_topk = 12;
  pruned_opts.candidate_backoff = false;  // deterministic attempt counts

  workload::ScenarioParams params;
  params.num_clients = 24;
  params.num_server_classes = 1;
  params.servers_per_cluster = 14;
  for (std::uint64_t seed : {31, 47}) {
    const Cloud cloud = workload::make_scenario(params, seed);
    const Allocation alloc(cloud);
    model::profit(alloc);  // settle caches before snapshotting

    int pruned_with_exclusions = 0;
    for (ClientId i : cloud.client_ids()) {
      for (ClusterId k : cloud.cluster_ids()) {
        const auto exact = assign_distribute(alloc, i, k, exact_opts);
        InsertionStats stats;
        const auto pruned =
            assign_distribute(alloc, i, k, pruned_opts, {}, &stats);
        ASSERT_EQ(exact.has_value(), pruned.has_value());
        if (!exact) continue;
        if (stats.pruned_solves > 0 &&
            static_cast<int>(stats.last_pruned_set.size()) <
                params.servers_per_cluster)
          ++pruned_with_exclusions;
        EXPECT_EQ(exact->score, pruned->score);
        ASSERT_EQ(exact->placements.size(), pruned->placements.size());
        for (std::size_t n = 0; n < exact->placements.size(); ++n) {
          EXPECT_EQ(exact->placements[n].server, pruned->placements[n].server);
          EXPECT_EQ(exact->placements[n].psi, pruned->placements[n].psi);
          EXPECT_EQ(exact->placements[n].phi_p, pruned->placements[n].phi_p);
          EXPECT_EQ(exact->placements[n].phi_n, pruned->placements[n].phi_n);
        }
      }
    }
    EXPECT_GT(pruned_with_exclusions, 0) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace cloudalloc::alloc
