#include "workload/trace.h"

#include <cmath>

#include <gtest/gtest.h>

#include "workload/scenario.h"

namespace cloudalloc::workload {
namespace {

model::Cloud small_cloud() {
  ScenarioParams params;
  params.num_clients = 10;
  params.servers_per_cluster = 2;
  return make_scenario(params, 1);
}

TEST(Trace, ShapeMatchesRequest) {
  const auto cloud = small_cloud();
  TraceParams params;
  params.epochs = 6;
  const auto trace = make_rate_trace(cloud, params, 7);
  ASSERT_EQ(trace.size(), 6u);
  for (const auto& epoch : trace)
    EXPECT_EQ(epoch.size(), static_cast<std::size_t>(cloud.num_clients()));
}

TEST(Trace, DeterministicPerSeed) {
  const auto cloud = small_cloud();
  TraceParams params;
  const auto a = make_rate_trace(cloud, params, 9);
  const auto b = make_rate_trace(cloud, params, 9);
  EXPECT_EQ(a, b);
  const auto c = make_rate_trace(cloud, params, 10);
  EXPECT_NE(a, c);
}

TEST(Trace, RatesArePositive) {
  const auto cloud = small_cloud();
  TraceParams params;
  params.amplitude = 0.9;
  params.noise = 0.5;
  const auto trace = make_rate_trace(cloud, params, 11);
  for (const auto& epoch : trace)
    for (double r : epoch) EXPECT_GT(r, 0.0);
}

TEST(Trace, NoNoiseNoAmplitudeIsFlat) {
  const auto cloud = small_cloud();
  TraceParams params;
  params.amplitude = 0.0;
  params.noise = 0.0;
  params.epochs = 3;
  const auto trace = make_rate_trace(cloud, params, 13);
  for (const auto& epoch : trace)
    for (model::ClientId i : cloud.client_ids())
      EXPECT_NEAR(epoch[i.index()],
                  cloud.client(i).lambda_agreed, 1e-12);
}

TEST(Trace, DiurnalPeaksAtQuarterPeriod) {
  const auto cloud = small_cloud();
  TraceParams params;
  params.epochs = 8;
  params.period = 8;
  params.amplitude = 0.5;
  params.noise = 0.0;
  const auto trace = make_rate_trace(cloud, params, 15);
  // sin peaks at t=2 (quarter of 8) and troughs at t=6.
  EXPECT_GT(trace[2][0], trace[0][0]);
  EXPECT_LT(trace[6][0], trace[0][0]);
  EXPECT_NEAR(trace[2][0], cloud.client(model::ClientId{0}).lambda_agreed * 1.5, 1e-9);
}

TEST(Trace, GrowthCompounds) {
  const auto cloud = small_cloud();
  TraceParams params;
  params.epochs = 4;
  params.amplitude = 0.0;
  params.noise = 0.0;
  params.growth_per_epoch = 0.1;
  const auto trace = make_rate_trace(cloud, params, 17);
  // Epoch t carries (1.1)^t.
  EXPECT_NEAR(trace[3][0] / trace[0][0], 1.1 * 1.1 * 1.1, 1e-9);
}

TEST(Trace, SpikesAppearWithProbability) {
  const auto cloud = small_cloud();
  TraceParams params;
  params.epochs = 50;
  params.amplitude = 0.0;
  params.noise = 0.0;
  params.spike_probability = 0.2;
  params.spike_factor = 5.0;
  const auto trace = make_rate_trace(cloud, params, 19);
  int spikes = 0, total = 0;
  for (const auto& epoch : trace)
    for (model::ClientId i : cloud.client_ids()) {
      ++total;
      if (epoch[i.index()] >
          cloud.client(i).lambda_agreed * 2.0)
        ++spikes;
    }
  const double frequency = static_cast<double>(spikes) / total;
  EXPECT_NEAR(frequency, 0.2, 0.06);
}

}  // namespace
}  // namespace cloudalloc::workload
