// End-to-end behavior with discrete (staircase) SLAs: the related work the
// paper extends (Zhang & Ardagna) prices discrete response-time brackets.
// The heuristic drives StepUtility through its secant-slope linearization;
// these tests pin down that the whole pipeline still works and earns.
#include <memory>

#include <gtest/gtest.h>

#include "alloc/allocator.h"
#include "common/rng.h"
#include "model/evaluator.h"
#include "model/feasibility.h"
#include "workload/scenario.h"

namespace cloudalloc {
namespace {

/// The tiny topology with staircase utility classes instead of linear.
model::Cloud step_cloud(int num_clients) {
  const model::Cloud base = workload::make_tiny_scenario(1);
  std::vector<model::UtilityClass> utilities;
  utilities.push_back(model::UtilityClass{
      model::UtilityClassId{0},
      std::make_shared<model::StepUtility>(
             std::vector<double>{0.8, 1.6, 3.0},
             std::vector<double>{3.0, 2.0, 0.8})});
  utilities.push_back(model::UtilityClass{
      model::UtilityClassId{1},
      std::make_shared<model::StepUtility>(
             std::vector<double>{0.5, 1.2},
             std::vector<double>{4.0, 1.5})});

  std::vector<model::Client> clients;
  Rng rng(17);
  for (int i = 0; i < num_clients; ++i) {
    model::Client c;
    c.id = model::ClientId{i};
    c.utility_class = model::UtilityClassId{i % 2};
    c.lambda_agreed = c.lambda_pred = rng.uniform(0.5, 2.0);
    c.alpha_p = rng.uniform(0.4, 0.8);
    c.alpha_n = rng.uniform(0.4, 0.8);
    c.disk = rng.uniform(0.2, 0.8);
    clients.push_back(c);
  }
  return model::Cloud(base.server_classes(), base.servers(), base.clusters(),
                      std::move(utilities), std::move(clients));
}

TEST(StepSla, AllocatorProducesFeasibleProfitableResult) {
  const auto cloud = step_cloud(4);
  const auto result = alloc::ResourceAllocator().run(cloud);
  EXPECT_TRUE(model::is_feasible(result.allocation));
  EXPECT_GT(result.report.final_profit, 0.0);
  EXPECT_EQ(result.report.unassigned_clients, 0);
}

TEST(StepSla, RevenueLandsOnAStep) {
  const auto cloud = step_cloud(2);
  const auto result = alloc::ResourceAllocator().run(cloud);
  const auto breakdown = model::evaluate(result.allocation);
  for (const auto& c : breakdown.clients) {
    if (!c.assigned) continue;
    // Delivered utility must be one of the class's discrete levels (or 0).
    const auto& fn = cloud.utility_of(c.id);
    bool on_step = c.utility == 0.0;
    for (double r = 0.0; r <= fn.zero_crossing(); r += 0.01)
      on_step = on_step || c.utility == fn.value(r);
    EXPECT_TRUE(on_step) << "client " << c.id << " utility " << c.utility;
  }
}

TEST(StepSla, LocalSearchMonotoneUnderStaircase) {
  const auto cloud = step_cloud(5);
  alloc::AllocatorOptions opts;
  alloc::ResourceAllocator allocator(opts);
  const auto result = allocator.run(cloud);
  EXPECT_GE(result.report.final_profit, result.report.initial_profit - 1e-9);
}

TEST(StepSla, SecantSlopeGuidesTowardHigherSteps) {
  // A generously provisioned client should land inside the first bracket
  // (maximum price), not merely above zero.
  const auto cloud = step_cloud(1);
  const auto result = alloc::ResourceAllocator().run(cloud);
  const auto breakdown = model::evaluate(result.allocation);
  ASSERT_TRUE(breakdown.clients[0].assigned);
  const auto& fn = cloud.utility_of(model::ClientId{0});
  EXPECT_DOUBLE_EQ(breakdown.clients[0].utility, fn.max_value());
}

TEST(StepSla, MixedLinearAndStepClassesCoexist) {
  const model::Cloud base = workload::make_tiny_scenario(1);
  std::vector<model::UtilityClass> utilities;
  utilities.push_back(model::UtilityClass{
      model::UtilityClassId{0},
      std::make_shared<model::LinearUtility>(3.0, 0.8)});
  utilities.push_back(model::UtilityClass{
      model::UtilityClassId{1},
      std::make_shared<model::StepUtility>(std::vector<double>{1.0, 2.0},
                                              std::vector<double>{3.0, 1.0})});
  std::vector<model::Client> clients;
  for (int i = 0; i < 4; ++i) {
    model::Client c;
    c.id = model::ClientId{i};
    c.utility_class = model::UtilityClassId{i % 2};
    c.lambda_agreed = c.lambda_pred = 1.0 + 0.3 * i;
    c.alpha_p = 0.5;
    c.alpha_n = 0.5;
    c.disk = 0.5;
    clients.push_back(c);
  }
  const model::Cloud cloud(base.server_classes(), base.servers(),
                           base.clusters(), std::move(utilities),
                           std::move(clients));
  const auto result = alloc::ResourceAllocator().run(cloud);
  EXPECT_TRUE(model::is_feasible(result.allocation));
  EXPECT_GT(result.report.final_profit, 0.0);
}

}  // namespace
}  // namespace cloudalloc
