#include "model/utility.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace cloudalloc::model {
namespace {

TEST(LinearUtility, ValueAndClipping) {
  LinearUtility u(2.0, 0.5);
  EXPECT_DOUBLE_EQ(u.value(0.0), 2.0);
  EXPECT_DOUBLE_EQ(u.value(2.0), 1.0);
  EXPECT_DOUBLE_EQ(u.value(4.0), 0.0);   // exactly at zero crossing
  EXPECT_DOUBLE_EQ(u.value(10.0), 0.0);  // clipped, never negative
}

TEST(LinearUtility, ZeroCrossing) {
  LinearUtility u(2.0, 0.5);
  EXPECT_DOUBLE_EQ(u.zero_crossing(), 4.0);
}

TEST(LinearUtility, FlatUtilityNeverCrosses) {
  LinearUtility u(2.0, 0.0);
  EXPECT_TRUE(std::isinf(u.zero_crossing()));
  EXPECT_DOUBLE_EQ(u.value(1e9), 2.0);
  EXPECT_DOUBLE_EQ(u.slope(5.0), 0.0);
}

TEST(LinearUtility, SlopeInsideAndPastCrossing) {
  LinearUtility u(2.0, 0.5);
  EXPECT_DOUBLE_EQ(u.slope(1.0), 0.5);
  EXPECT_DOUBLE_EQ(u.slope(100.0), 0.0);
}

TEST(LinearUtility, NonIncreasingProperty) {
  LinearUtility u(3.0, 0.7);
  double prev = std::numeric_limits<double>::infinity();
  for (double r = 0.0; r < 10.0; r += 0.1) {
    const double v = u.value(r);
    EXPECT_LE(v, prev);
    EXPECT_GE(v, 0.0);
    prev = v;
  }
}

TEST(LinearUtility, CloneIsIndependentCopy) {
  LinearUtility u(2.0, 0.5);
  auto c = u.clone();
  EXPECT_DOUBLE_EQ(c->value(1.0), u.value(1.0));
  EXPECT_DOUBLE_EQ(c->max_value(), 2.0);
}

TEST(StepUtility, ValuesAtThresholds) {
  StepUtility u({1.0, 2.0, 4.0}, {3.0, 2.0, 1.0});
  EXPECT_DOUBLE_EQ(u.value(0.0), 3.0);
  EXPECT_DOUBLE_EQ(u.value(1.0), 3.0);   // inclusive threshold
  EXPECT_DOUBLE_EQ(u.value(1.5), 2.0);
  EXPECT_DOUBLE_EQ(u.value(3.0), 1.0);
  EXPECT_DOUBLE_EQ(u.value(4.0), 1.0);
  EXPECT_DOUBLE_EQ(u.value(4.1), 0.0);
}

TEST(StepUtility, MaxAndCrossing) {
  StepUtility u({1.0, 2.0}, {5.0, 1.0});
  EXPECT_DOUBLE_EQ(u.max_value(), 5.0);
  EXPECT_DOUBLE_EQ(u.zero_crossing(), 2.0);
}

TEST(StepUtility, SecantSlope) {
  StepUtility u({1.0, 2.0}, {5.0, 1.0});
  EXPECT_DOUBLE_EQ(u.slope(0.5), 2.5);  // 5 / 2
  EXPECT_DOUBLE_EQ(u.slope(3.0), 0.0);  // past crossing
}

TEST(StepUtility, NonIncreasingProperty) {
  StepUtility u({0.5, 1.0, 2.0, 4.0}, {8.0, 4.0, 2.0, 1.0});
  double prev = std::numeric_limits<double>::infinity();
  for (double r = 0.0; r < 6.0; r += 0.05) {
    const double v = u.value(r);
    EXPECT_LE(v, prev);
    prev = v;
  }
}

TEST(StepUtility, CloneMatches) {
  StepUtility u({1.0, 2.0}, {5.0, 1.0});
  auto c = u.clone();
  for (double r = 0.0; r < 3.0; r += 0.1)
    EXPECT_DOUBLE_EQ(c->value(r), u.value(r));
}

}  // namespace
}  // namespace cloudalloc::model
