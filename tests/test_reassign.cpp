#include "alloc/reassign.h"

#include <gtest/gtest.h>

#include "alloc/initial.h"
#include "common/rng.h"
#include "dist/parallel_eval.h"
#include "dist/thread_pool.h"
#include "model/evaluator.h"
#include "model/feasibility.h"
#include "workload/scenario.h"

namespace cloudalloc::alloc {
namespace {

using model::Allocation;

TEST(Reassign, ImprovesBadClusterAssignment) {
  workload::ScenarioParams params;
  params.num_clients = 30;
  params.servers_per_cluster = 6;
  const auto cloud = workload::make_scenario(params, 41);
  AllocatorOptions opts;
  // Cram everyone into cluster 0.
  std::vector<model::ClusterId> all_zero(30, model::ClusterId{0});
  Allocation alloc = build_from_assignment(cloud, all_zero, opts);
  const double before = model::profit(alloc);
  const double delta = reassign_pass(alloc, opts);
  EXPECT_GT(delta, 0.0);
  EXPECT_GT(model::profit(alloc), before);
  EXPECT_TRUE(model::is_feasible(alloc));
}

TEST(Reassign, RetriesUnassignedClients) {
  workload::ScenarioParams params;
  params.num_clients = 40;
  params.servers_per_cluster = 8;
  const auto cloud = workload::make_scenario(params, 43);
  AllocatorOptions opts;
  // Everyone in cluster 0 overloads it, leaving some unassigned.
  std::vector<model::ClusterId> all_zero(40, model::ClusterId{0});
  Allocation alloc = build_from_assignment(cloud, all_zero, opts);
  int unassigned_before = 0;
  for (model::ClientId i : cloud.client_ids())
    if (!alloc.is_assigned(i)) ++unassigned_before;
  reassign_until_steady(alloc, opts);
  int unassigned_after = 0;
  for (model::ClientId i : cloud.client_ids())
    if (!alloc.is_assigned(i)) ++unassigned_after;
  EXPECT_LE(unassigned_after, unassigned_before);
  EXPECT_TRUE(model::is_feasible(alloc));
}

TEST(Reassign, SteadyStateIsFixedPoint) {
  workload::ScenarioParams params;
  params.num_clients = 20;
  const auto cloud = workload::make_scenario(params, 47);
  AllocatorOptions opts;
  Rng rng(47);
  Allocation alloc = build_initial_solution(cloud, opts, rng);
  reassign_until_steady(alloc, opts, 20);
  const double steady = model::profit(alloc);
  const double extra = reassign_pass(alloc, opts);
  EXPECT_NEAR(model::profit(alloc), steady, 1e-6 * std::abs(steady) + 1e-6);
  EXPECT_LE(extra, 1e-4 * std::max(std::abs(steady), 1.0));
}

TEST(ReassignSnapshot, ImprovesBadClusterAssignment) {
  workload::ScenarioParams params;
  params.num_clients = 30;
  params.servers_per_cluster = 6;
  const auto cloud = workload::make_scenario(params, 41);
  AllocatorOptions opts;
  std::vector<model::ClusterId> all_zero(30, model::ClusterId{0});
  Allocation alloc = build_from_assignment(cloud, all_zero, opts);
  const double before = model::profit(alloc);
  const double delta = reassign_pass_snapshot(alloc, opts);
  EXPECT_GT(delta, 0.0);
  EXPECT_GT(model::profit(alloc), before);
  EXPECT_TRUE(model::is_feasible(alloc));
}

TEST(ReassignSnapshot, IdenticalInlineAndPooled) {
  workload::ScenarioParams params;
  params.num_clients = 35;
  params.servers_per_cluster = 6;
  const auto cloud = workload::make_scenario(params, 43);
  AllocatorOptions opts;
  std::vector<model::ClusterId> all_zero(35, model::ClusterId{0});
  Allocation inline_alloc = build_from_assignment(cloud, all_zero, opts);
  Allocation pooled_alloc = inline_alloc.clone();

  const double d1 = reassign_pass_snapshot(inline_alloc, opts);
  dist::ThreadPool pool(4);
  dist::ParallelEval eval(&pool);
  const double d2 = reassign_pass_snapshot(pooled_alloc, opts, eval);

  EXPECT_DOUBLE_EQ(d1, d2);
  for (model::ClientId i : cloud.client_ids()) {
    ASSERT_EQ(inline_alloc.is_assigned(i), pooled_alloc.is_assigned(i));
    if (!inline_alloc.is_assigned(i)) continue;
    EXPECT_EQ(inline_alloc.cluster_of(i), pooled_alloc.cluster_of(i));
    const auto& pa = inline_alloc.placements(i);
    const auto& pb = pooled_alloc.placements(i);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t s = 0; s < pa.size(); ++s) {
      EXPECT_EQ(pa[s].server, pb[s].server);
      EXPECT_DOUBLE_EQ(pa[s].psi, pb[s].psi);
      EXPECT_DOUBLE_EQ(pa[s].phi_p, pb[s].phi_p);
    }
  }
}

TEST(ReassignSnapshot, MonotoneOnGreedyStart) {
  workload::ScenarioParams params;
  params.num_clients = 25;
  params.servers_per_cluster = 5;
  const auto cloud = workload::make_scenario(params, 53);
  AllocatorOptions opts;
  Rng rng(53);
  Allocation alloc = build_initial_solution(cloud, opts, rng);
  double profit_now = model::profit(alloc);
  for (int round = 0; round < 3; ++round) {
    reassign_pass_snapshot(alloc, opts);
    const double next = model::profit(alloc);
    EXPECT_GE(next, profit_now - 1e-9);
    profit_now = next;
    ASSERT_TRUE(model::is_feasible(alloc));
  }
}

class ReassignProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReassignProperty, MonotoneAndFeasible) {
  workload::ScenarioParams params;
  params.num_clients = 25;
  params.servers_per_cluster = 5;
  const auto cloud = workload::make_scenario(params, GetParam());
  AllocatorOptions opts;
  Rng rng(GetParam() * 7 + 1);
  // Random (not greedy) start exercises more reassign paths.
  std::vector<model::ClusterId> assignment(25);
  for (auto& k : assignment)
    k = static_cast<model::ClusterId>(
        rng.uniform_int(0, cloud.num_clusters() - 1));
  Allocation alloc = build_from_assignment(cloud, assignment, opts);
  double profit_now = model::profit(alloc);
  for (int round = 0; round < 3; ++round) {
    reassign_pass(alloc, opts);
    const double next = model::profit(alloc);
    EXPECT_GE(next, profit_now - 1e-9);
    profit_now = next;
    ASSERT_TRUE(model::is_feasible(alloc));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReassignProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace cloudalloc::alloc
