// Differential testing: the closed-form KKT solvers against slow
// projected-gradient references on random instances far larger than the
// grid-search oracles can handle.
#include "opt/reference_solvers.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace cloudalloc::opt {
namespace {

TEST(ProjectCappedBox, IdentityInsideTheSet) {
  const auto v = project_capped_box({0.2, 0.3}, {0.0, 0.0}, {1.0, 1.0}, 1.0);
  EXPECT_DOUBLE_EQ(v[0], 0.2);
  EXPECT_DOUBLE_EQ(v[1], 0.3);
}

TEST(ProjectCappedBox, ClampsToBox) {
  const auto v =
      project_capped_box({-0.5, 2.0}, {0.1, 0.0}, {1.0, 0.8}, 2.0);
  EXPECT_DOUBLE_EQ(v[0], 0.1);
  EXPECT_DOUBLE_EQ(v[1], 0.8);
}

TEST(ProjectCappedBox, EnforcesBudgetBySharedShift) {
  const auto v = project_capped_box({0.9, 0.9}, {0.0, 0.0}, {1.0, 1.0}, 1.0);
  EXPECT_NEAR(v[0] + v[1], 1.0, 1e-9);
  EXPECT_NEAR(v[0], v[1], 1e-9);  // symmetric inputs stay symmetric
}

TEST(ProjectCappedBox, RespectsFloorsUnderPressure) {
  const auto v = project_capped_box({0.9, 0.9}, {0.6, 0.0}, {1.0, 1.0}, 1.0);
  EXPECT_GE(v[0], 0.6 - 1e-12);
  EXPECT_NEAR(v[0] + v[1], 1.0, 1e-9);
}

class SharesDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SharesDifferential, ClosedFormMatchesProjectedGradient) {
  Rng rng(GetParam());
  const int n = static_cast<int>(rng.uniform_int(2, 12));
  std::vector<ShareItem> items;
  double floor_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    ShareItem it;
    it.weight = rng.bernoulli(0.15) ? 0.0 : rng.uniform(0.1, 4.0);
    it.rate_factor = rng.uniform(2.0, 8.0);
    it.load = rng.uniform(0.02, 1.5 / n);
    it.lo = (it.load + 0.02) / it.rate_factor;
    it.hi = rng.bernoulli(0.3) ? rng.uniform(it.lo, 1.0) : 1.0;
    floor_sum += it.lo;
    items.push_back(it);
  }
  if (floor_sum > 1.0) return;  // infeasible instance: skip

  const auto fast = solve_shares(items, 1.0);
  const auto slow = solve_shares_reference(items, 1.0);
  ASSERT_EQ(fast.has_value(), slow.has_value());
  if (!fast) return;
  // The closed form is exact; the reference must not beat it (beyond its
  // own convergence tolerance), and must come close.
  EXPECT_GE(fast->objective, slow->objective - 1e-6);
  EXPECT_NEAR(fast->objective, slow->objective,
              1e-2 * std::fabs(fast->objective) + 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharesDifferential,
                         ::testing::Range<std::uint64_t>(1, 25));

class DispersionDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DispersionDifferential, ClosedFormMatchesProjectedGradient) {
  Rng rng(GetParam() * 31 + 7);
  const double lambda = rng.uniform(0.5, 3.0);
  const int n = static_cast<int>(rng.uniform_int(2, 10));
  std::vector<DispersionItem> items;
  double cap_sum = 0.0;
  for (int j = 0; j < n; ++j) {
    DispersionItem it;
    it.mu_p = rng.uniform(1.3, 4.0) * lambda;
    it.mu_n = rng.uniform(1.3, 4.0) * lambda;
    it.lin_cost = rng.uniform(0.0, 1.5);
    it.cap = std::min(1.0, 0.9 * std::min(it.mu_p, it.mu_n) / lambda);
    cap_sum += it.cap;
    items.push_back(it);
  }
  if (cap_sum < 1.0) return;

  const double weight = rng.uniform(0.05, 3.0);
  const auto fast = solve_dispersion(items, lambda, weight);
  const auto slow = solve_dispersion_reference(items, lambda, weight);
  ASSERT_EQ(fast.has_value(), slow.has_value());
  if (!fast) return;
  EXPECT_LE(fast->objective, slow->objective + 1e-6);
  EXPECT_NEAR(fast->objective, slow->objective,
              1e-2 * std::fabs(fast->objective) + 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DispersionDifferential,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace cloudalloc::opt
