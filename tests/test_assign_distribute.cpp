#include "alloc/assign_distribute.h"

#include <cmath>

#include <gtest/gtest.h>

#include "model/evaluator.h"
#include "model/feasibility.h"
#include "workload/scenario.h"

namespace cloudalloc::alloc {
namespace {

using model::Allocation;
using model::Placement;

class AssignDistributeTest : public ::testing::Test {
 protected:
  AssignDistributeTest() : cloud_(workload::make_tiny_scenario(4)) {}
  model::Cloud cloud_;
  AllocatorOptions opts_;
};

TEST_F(AssignDistributeTest, ProducesFeasiblePlan) {
  Allocation alloc(cloud_);
  const auto plan = assign_distribute(alloc, model::ClientId{0}, model::ClusterId{0}, opts_);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->cluster, model::ClusterId{0});
  alloc.assign(model::ClientId{0}, plan->cluster, plan->placements);
  EXPECT_TRUE(model::is_feasible(alloc));
  EXPECT_TRUE(std::isfinite(alloc.response_time(model::ClientId{0})));
}

TEST_F(AssignDistributeTest, PsiQuantizedOnGrid) {
  Allocation alloc(cloud_);
  opts_.psi_grid = 4;
  const auto plan = assign_distribute(alloc, model::ClientId{0}, model::ClusterId{0}, opts_);
  ASSERT_TRUE(plan.has_value());
  for (const Placement& p : plan->placements) {
    const double quanta = p.psi * 4.0;
    EXPECT_NEAR(quanta, std::round(quanta), 1e-9);
  }
}

TEST_F(AssignDistributeTest, ScoreTracksRealProfitOrdering) {
  // Inserting into an empty cluster should look at least as good as
  // inserting into one whose servers are nearly saturated.
  Allocation alloc(cloud_);
  // Saturate cluster 0 shares with clients 1..3.
  alloc.assign(model::ClientId{1}, model::ClusterId{0}, {Placement{model::ServerId{0}, 1.0, 0.9, 0.9}});
  alloc.assign(model::ClientId{2}, model::ClusterId{0}, {Placement{model::ServerId{1}, 1.0, 0.9, 0.9}});
  const auto plan0 = assign_distribute(alloc, model::ClientId{0}, model::ClusterId{0}, opts_);
  const auto plan1 = assign_distribute(alloc, model::ClientId{0}, model::ClusterId{1}, opts_);
  ASSERT_TRUE(plan1.has_value());
  if (plan0) {
    EXPECT_GE(plan1->score, plan0->score);
  }
}

TEST_F(AssignDistributeTest, RespectsDiskConstraint) {
  // Fill server disk so the client cannot land there.
  Allocation alloc(cloud_);
  // Tiny scenario cluster 0 = servers {0 (cap_m 4), 1 (cap_m 6)}.
  // Client 3 disk = 1.25; others 0.5, 0.75, 1.0. Shares below are sized to
  // keep every queue stable so the fixture itself is feasible.
  alloc.assign(model::ClientId{0}, model::ClusterId{0}, {Placement{model::ServerId{0}, 1.0, 0.35, 0.35}});
  alloc.assign(model::ClientId{1}, model::ClusterId{0}, {Placement{model::ServerId{0}, 1.0, 0.35, 0.35}});
  alloc.assign(model::ClientId{2}, model::ClusterId{0}, {Placement{model::ServerId{1}, 1.0, 0.40, 0.40}});
  const auto plan = assign_distribute(alloc, model::ClientId{3}, model::ClusterId{0}, opts_);
  ASSERT_TRUE(plan.has_value());
  Allocation trial = alloc.clone();
  trial.assign(model::ClientId{3}, model::ClusterId{0}, plan->placements);
  EXPECT_TRUE(model::is_feasible(trial));
}

TEST_F(AssignDistributeTest, ExcludedServerNeverUsed) {
  Allocation alloc(cloud_);
  InsertionConstraints constraints;
  constraints.exclude = model::ServerId{0};
  const auto plan = assign_distribute(alloc, model::ClientId{0}, model::ClusterId{0}, opts_, constraints);
  ASSERT_TRUE(plan.has_value());
  for (const Placement& p : plan->placements)
    EXPECT_NE(p.server, model::ServerId{0});
}

TEST_F(AssignDistributeTest, ActiveOnlyConstraintHonored) {
  Allocation alloc(cloud_);
  InsertionConstraints constraints;
  constraints.allow_inactive = false;
  // Nothing is active yet -> no candidates.
  EXPECT_FALSE(assign_distribute(alloc, model::ClientId{0}, model::ClusterId{0}, opts_, constraints).has_value());
  // Activate server 1, then only server 1 is eligible.
  alloc.assign(model::ClientId{1}, model::ClusterId{0}, {Placement{model::ServerId{1}, 1.0, 0.3, 0.3}});
  const auto plan = assign_distribute(alloc, model::ClientId{0}, model::ClusterId{0}, opts_, constraints);
  ASSERT_TRUE(plan.has_value());
  for (const Placement& p : plan->placements)
    EXPECT_EQ(p.server, model::ServerId{1});
}

TEST_F(AssignDistributeTest, ActivationCostDiscouragesNewServers) {
  // With one server already active and roomy, the plan should prefer it
  // over paying a second P0.
  Allocation alloc(cloud_);
  alloc.assign(model::ClientId{1}, model::ClusterId{0}, {Placement{model::ServerId{1}, 1.0, 0.2, 0.2}});
  const auto plan = assign_distribute(alloc, model::ClientId{0}, model::ClusterId{0}, opts_);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->placements.size(), 1u);
  EXPECT_EQ(plan->placements[0].server, model::ServerId{1});
}

TEST_F(AssignDistributeTest, HeavyClientSplitsAcrossServers) {
  // A demand that exceeds any single server's stable capacity must split.
  auto cloud = workload::make_tiny_scenario(1);
  // tiny client 0: lambda 1.0 — too small; instead shrink shares by
  // pre-loading the servers.
  Allocation alloc(cloud);
  (void)alloc;
  // Build a dedicated heavy scenario instead.
  workload::ScenarioParams params;
  params.num_clients = 1;
  params.num_clusters = 1;
  params.num_server_classes = 1;
  params.servers_per_cluster = 4;
  params.lambda_lo = params.lambda_hi = 8.0;
  params.alpha_lo = params.alpha_hi = 1.0;  // demand 8 > cap <= 6
  const auto heavy = workload::make_scenario(params, 3);
  Allocation heavy_alloc(heavy);
  const auto plan = assign_distribute(heavy_alloc, model::ClientId{0}, model::ClusterId{0}, opts_);
  ASSERT_TRUE(plan.has_value());
  EXPECT_GE(plan->placements.size(), 2u);
  heavy_alloc.assign(model::ClientId{0}, model::ClusterId{0}, plan->placements);
  EXPECT_TRUE(model::is_feasible(heavy_alloc));
}

TEST_F(AssignDistributeTest, ReturnsNulloptWhenImpossible) {
  workload::ScenarioParams params;
  params.num_clients = 1;
  params.num_clusters = 1;
  params.num_server_classes = 1;
  params.servers_per_cluster = 1;
  params.lambda_lo = params.lambda_hi = 40.0;  // hopeless demand
  params.alpha_lo = params.alpha_hi = 1.0;
  const auto impossible = workload::make_scenario(params, 3);
  Allocation alloc(impossible);
  EXPECT_FALSE(assign_distribute(alloc, model::ClientId{0}, model::ClusterId{0}, opts_).has_value());
}

TEST_F(AssignDistributeTest, BestInsertionPicksArgmaxCluster) {
  Allocation alloc(cloud_);
  // Saturate cluster 0 completely.
  alloc.assign(model::ClientId{1}, model::ClusterId{0}, {Placement{model::ServerId{0}, 1.0, 0.95, 0.95}});
  alloc.assign(model::ClientId{2}, model::ClusterId{0}, {Placement{model::ServerId{1}, 1.0, 0.95, 0.95}});
  const auto best = best_insertion(alloc, model::ClientId{0}, opts_);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->cluster, model::ClusterId{1});
}

class AssignDistributeProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AssignDistributeProperty, CommittedPlansStayFeasible) {
  workload::ScenarioParams params;
  params.num_clients = 20;
  params.servers_per_cluster = 6;
  const auto cloud = workload::make_scenario(params, GetParam());
  AllocatorOptions opts;
  Allocation alloc(cloud);
  for (model::ClientId i : cloud.client_ids()) {
    const auto plan = best_insertion(alloc, i, opts);
    if (!plan) continue;
    alloc.assign(i, plan->cluster, plan->placements);
    ASSERT_TRUE(model::is_feasible(alloc)) << "after client " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssignDistributeProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace cloudalloc::alloc
