// The paper's "initial cluster state": servers that already carry load
// before the epoch's clients arrive. The allocator must treat reserved
// capacity as gone and the keeps_on servers' fixed cost as unavoidable.
#include <gtest/gtest.h>

#include "alloc/allocator.h"
#include "model/evaluator.h"
#include "model/feasibility.h"
#include "workload/scenario.h"

namespace cloudalloc {
namespace {

workload::ScenarioParams bg_params(double probability) {
  workload::ScenarioParams params;
  params.num_clients = 25;
  params.servers_per_cluster = 8;
  params.background_probability = probability;
  return params;
}

TEST(Background, GeneratorPopulatesBackgroundLoad) {
  const auto cloud = workload::make_scenario(bg_params(0.5), 301);
  int loaded = 0;
  for (const auto& sv : cloud.servers()) {
    if (!sv.background.keeps_on) continue;
    ++loaded;
    EXPECT_GE(sv.background.phi_p, 0.0);
    EXPECT_LE(sv.background.phi_p, 0.4);
    EXPECT_LE(sv.background.disk,
              0.4 * cloud.server_class_of(sv.id).cap_m + 1e-9);
  }
  // ~half of 40 servers; generous bounds.
  EXPECT_GT(loaded, 8);
  EXPECT_LT(loaded, 35);
}

TEST(Background, ReservedCapacityIsUnavailable) {
  const auto cloud = workload::make_scenario(bg_params(1.0), 303);
  model::Allocation alloc(cloud);
  for (model::ServerId j : cloud.server_ids()) {
    EXPECT_NEAR(alloc.free_phi_p(j), 1.0 - cloud.server(j).background.phi_p,
                1e-12);
    EXPECT_NEAR(alloc.free_disk(j),
                cloud.server_class_of(j).cap_m - cloud.server(j).background.disk,
                1e-12);
    // keeps_on servers are active (and cost) even while hosting nobody.
    EXPECT_TRUE(alloc.active(j));
  }
  EXPECT_GT(model::evaluate(alloc).cost, 0.0);
}

TEST(Background, AllocatorStaysFeasibleWithBackground) {
  const auto cloud = workload::make_scenario(bg_params(0.6), 307);
  const auto result = alloc::ResourceAllocator().run(cloud);
  ASSERT_TRUE(model::is_feasible(result.allocation));
  // Committed shares (clients + background) never exceed the server.
  for (model::ServerId j : cloud.server_ids()) {
    EXPECT_LE(result.allocation.used_phi_p(j), 1.0 + 1e-6);
    EXPECT_LE(result.allocation.used_phi_n(j), 1.0 + 1e-6);
  }
}

TEST(Background, KeepsOnServersAreNeverTurnedOff) {
  const auto cloud = workload::make_scenario(bg_params(1.0), 311);
  const auto result = alloc::ResourceAllocator().run(cloud);
  for (model::ServerId j : cloud.server_ids())
    EXPECT_TRUE(result.allocation.active(j));
}

TEST(Background, BackgroundLoweredProfitVersusCleanCloud) {
  const auto clean = workload::make_scenario(bg_params(0.0), 313);
  const auto busy = workload::make_scenario(bg_params(0.8), 313);
  const double p_clean =
      alloc::ResourceAllocator().run(clean).report.final_profit;
  const double p_busy =
      alloc::ResourceAllocator().run(busy).report.final_profit;
  // Same clients, but sunk fixed costs + reserved capacity: strictly worse.
  EXPECT_LT(p_busy, p_clean);
}

}  // namespace
}  // namespace cloudalloc
