#include "opt/dispersion.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace cloudalloc::opt {
namespace {

DispersionItem item(double mu_p, double mu_n, double lin_cost, double cap) {
  DispersionItem it;
  it.mu_p = mu_p;
  it.mu_n = mu_n;
  it.lin_cost = lin_cost;
  it.cap = cap;
  return it;
}

// Brute force over two servers: psi0 on a grid, psi1 = 1 - psi0.
double brute_force_two(const std::vector<DispersionItem>& items, double lambda,
                       double delay_weight, int grid = 4000) {
  double best = 1e300;
  for (int g = 0; g <= grid; ++g) {
    const double psi0 = static_cast<double>(g) / grid;
    const double psi1 = 1.0 - psi0;
    if (psi0 > items[0].cap + 1e-12 || psi1 > items[1].cap + 1e-12) continue;
    const double obj =
        dispersion_objective(items, lambda, delay_weight, {psi0, psi1});
    if (obj < best) best = obj;
  }
  return best;
}

TEST(Dispersion, SymmetricServersSplitEvenly) {
  const std::vector<DispersionItem> items{item(4.0, 4.0, 0.0, 1.0),
                                          item(4.0, 4.0, 0.0, 1.0)};
  const auto sol = solve_dispersion(items, 2.0, 1.0);
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->psi[0], 0.5, 1e-4);
  EXPECT_NEAR(sol->psi[1], 0.5, 1e-4);
}

TEST(Dispersion, FasterServerGetsMoreTraffic) {
  const std::vector<DispersionItem> items{item(8.0, 8.0, 0.0, 1.0),
                                          item(4.0, 4.0, 0.0, 1.0)};
  const auto sol = solve_dispersion(items, 2.0, 1.0);
  ASSERT_TRUE(sol.has_value());
  EXPECT_GT(sol->psi[0], sol->psi[1]);
  EXPECT_NEAR(sol->psi[0] + sol->psi[1], 1.0, 1e-6);
}

TEST(Dispersion, LinearCostSteersAwayFromExpensiveServer) {
  const std::vector<DispersionItem> no_cost{item(4.0, 4.0, 0.0, 1.0),
                                            item(4.0, 4.0, 0.0, 1.0)};
  const std::vector<DispersionItem> costly{item(4.0, 4.0, 2.0, 1.0),
                                           item(4.0, 4.0, 0.0, 1.0)};
  const auto base = solve_dispersion(no_cost, 2.0, 1.0);
  const auto sol = solve_dispersion(costly, 2.0, 1.0);
  ASSERT_TRUE(base && sol);
  EXPECT_LT(sol->psi[0], base->psi[0]);
}

TEST(Dispersion, ZeroDelayWeightFillsCheapestFirst) {
  const std::vector<DispersionItem> items{item(4.0, 4.0, 3.0, 1.0),
                                          item(4.0, 4.0, 1.0, 0.6)};
  const auto sol = solve_dispersion(items, 2.0, 0.0);
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->psi[1], 0.6, 1e-9);  // cheap server up to its cap
  EXPECT_NEAR(sol->psi[0], 0.4, 1e-9);
}

TEST(Dispersion, RespectsCaps) {
  const std::vector<DispersionItem> items{item(20.0, 20.0, 0.0, 0.3),
                                          item(4.0, 4.0, 0.0, 1.0)};
  const auto sol = solve_dispersion(items, 2.0, 1.0);
  ASSERT_TRUE(sol.has_value());
  EXPECT_LE(sol->psi[0], 0.3 + 1e-9);
}

TEST(Dispersion, InfeasibleWhenCapsBelowOne) {
  const std::vector<DispersionItem> items{item(4.0, 4.0, 0.0, 0.3),
                                          item(4.0, 4.0, 0.0, 0.4)};
  EXPECT_FALSE(solve_dispersion(items, 2.0, 1.0).has_value());
}

TEST(Dispersion, InfeasibleWhenCapViolatesStability) {
  // cap = 1 but mu_p = 1.5 < cap*lambda = 2.
  const std::vector<DispersionItem> items{item(1.5, 4.0, 0.0, 1.0),
                                          item(4.0, 4.0, 0.0, 1.0)};
  EXPECT_FALSE(solve_dispersion(items, 2.0, 1.0).has_value());
}

TEST(Dispersion, ObjectiveInfiniteWhenUnstable) {
  const std::vector<DispersionItem> items{item(1.0, 1.0, 0.0, 1.0)};
  EXPECT_TRUE(std::isinf(dispersion_objective(items, 2.0, 1.0, {1.0})));
}

TEST(Dispersion, MatchesBruteForceOnTwoServers) {
  Rng rng(777);
  for (int trial = 0; trial < 50; ++trial) {
    const double lambda = rng.uniform(0.5, 3.0);
    std::vector<DispersionItem> items;
    for (int j = 0; j < 2; ++j) {
      const double mu_p = rng.uniform(1.3, 3.0) * lambda;
      const double mu_n = rng.uniform(1.3, 3.0) * lambda;
      const double cap =
          std::min(1.0, 0.95 * std::min(mu_p, mu_n) / lambda);
      items.push_back(item(mu_p, mu_n, rng.uniform(0.0, 1.0), cap));
    }
    if (items[0].cap + items[1].cap < 1.0) continue;
    const double weight = rng.uniform(0.1, 3.0);
    const auto sol = solve_dispersion(items, lambda, weight);
    ASSERT_TRUE(sol.has_value()) << "trial " << trial;
    const double brute = brute_force_two(items, lambda, weight);
    EXPECT_NEAR(sol->objective, brute, 1e-3 * std::fabs(brute) + 1e-4)
        << "trial " << trial;
  }
}

class DispersionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DispersionProperty, FeasibleUnitSplit) {
  Rng rng(GetParam());
  const double lambda = rng.uniform(0.5, 4.0);
  const int n = static_cast<int>(rng.uniform_int(1, 6));
  std::vector<DispersionItem> items;
  double cap_sum = 0.0;
  for (int j = 0; j < n; ++j) {
    const double mu_p = rng.uniform(1.2, 4.0) * lambda;
    const double mu_n = rng.uniform(1.2, 4.0) * lambda;
    const double cap = std::min(1.0, 0.9 * std::min(mu_p, mu_n) / lambda);
    cap_sum += cap;
    items.push_back(item(mu_p, mu_n, rng.uniform(0.0, 2.0), cap));
  }
  const auto sol = solve_dispersion(items, lambda, rng.uniform(0.0, 2.0));
  if (cap_sum < 1.0 - 1e-9) {
    EXPECT_FALSE(sol.has_value());
    return;
  }
  ASSERT_TRUE(sol.has_value());
  double sum = 0.0;
  for (std::size_t j = 0; j < items.size(); ++j) {
    EXPECT_GE(sol->psi[j], -1e-9);
    EXPECT_LE(sol->psi[j], items[j].cap + 1e-9);
    sum += sol->psi[j];
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);
  EXPECT_TRUE(std::isfinite(sol->objective));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DispersionProperty,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace cloudalloc::opt
