# Marks tools/ as a package so the analyzer runs as `python3 -m
# tools.analyze` from the repo root (how CI and tools/lint.py invoke it).
