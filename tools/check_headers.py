#!/usr/bin/env python3
"""Header self-containment gate.

Compiles every public header under src/ as its own translation unit
(`#include "the/header.h"` and nothing else, -fsyntax-only), so a
header that silently leans on a transitive include — the classic "works
until someone reorders the includes" landmine — fails here instead of
in a future refactor. CI runs this in the lint job; locally:

    python3 tools/check_headers.py            # all headers
    python3 tools/check_headers.py -j 8       # parallel
    python3 tools/check_headers.py src/dist   # subset

The compiler honors $CXX (default: c++). Headers compile with the same
language standard as the build (C++20) and -I src.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def check_header(cxx: str, rel: str, build_dir: pathlib.Path) -> str | None:
    """Returns the compiler error text, or None when self-contained."""
    stem = rel.replace("/", "_")
    tu = build_dir / f"{stem}.cpp"
    tu.write_text(f'#include "{rel[len("src/"):]}"\n', encoding="utf-8")
    proc = subprocess.run(
        [cxx, "-std=c++20", "-fsyntax-only", "-I", str(REPO_ROOT / "src"),
         "-Wall", "-Wextra", str(tu)],
        capture_output=True, text=True)
    if proc.returncode == 0:
        return None
    return proc.stderr.strip() or f"{cxx} exited {proc.returncode}"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("subset", nargs="*",
                        help="restrict to headers under these paths")
    parser.add_argument("-j", "--jobs", type=int,
                        default=os.cpu_count() or 1)
    args = parser.parse_args()

    cxx = os.environ.get("CXX", "c++")
    headers = sorted(
        p.relative_to(REPO_ROOT).as_posix()
        for p in (REPO_ROOT / "src").rglob("*.h"))
    if args.subset:
        prefixes = tuple(s.rstrip("/") for s in args.subset)
        headers = [h for h in headers if h.startswith(prefixes)]
    if not headers:
        print("no headers matched", file=sys.stderr)
        return 1

    failures: list[tuple[str, str]] = []
    with tempfile.TemporaryDirectory(prefix="hdrcheck_") as tmp:
        build_dir = pathlib.Path(tmp)
        with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
            futures = {
                pool.submit(check_header, cxx, rel, build_dir): rel
                for rel in headers
            }
            for future in concurrent.futures.as_completed(futures):
                rel = futures[future]
                error = future.result()
                if error is not None:
                    failures.append((rel, error))

    for rel, error in sorted(failures):
        print(f"NOT SELF-CONTAINED: {rel}\n{error}\n")
    print(f"check_headers: {len(headers)} headers, "
          f"{len(failures)} failure(s)", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
