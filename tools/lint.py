#!/usr/bin/env python3
"""Back-compat shim: the regex linter grew into the tools/analyze
package (real C++ lexer, rule registry, inline waivers, committed
baseline, JSON report — see DESIGN.md section 16).

This entry point survives so local habits and scripts keep working;
it forwards every argument to `python3 -m tools.analyze`.
"""

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools.analyze.__main__ import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
