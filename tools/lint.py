#!/usr/bin/env python3
"""Repo-specific lint rules that clang-tidy cannot express.

Each rule maps to a bug class this codebase has actually been designed
against (see DESIGN.md section 11 for the rule -> bug-class table):

  naked-new      `new`/`malloc` outside the dedicated pool allocators.
                 The simulator recycles requests through
                 sim/request_pool.h precisely so the event loop never
                 touches the general-purpose heap; a stray `new` there
                 is a latent fragmentation/latency bug and everywhere
                 else it is a leak waiting for an early return.
  std-function   `std::function` in src/sim/ or the hot allocator
                 paths. A std::function per event/candidate means one
                 type-erased heap allocation and an indirect call in
                 loops that run millions of times; the typed-event core
                 (sim/event.h) exists to remove exactly that. Cold
                 control-plane code may use it freely.
  bare-assert    `assert()` in non-test sources. NDEBUG strips asserts
                 in release builds, and the optimizer's validity domains
                 (queue stability, share bounds) must stay guarded in
                 production: violating them yields silently-wrong
                 profits, not crashes. Use CHECK/CHECK_MSG from
                 common/check.h, which stay on in all build types.
  raw-intrinsics x86 intrinsics or GCC vector extensions outside
                 src/common/. common/simd.h is the single sanctioned
                 lane abstraction: it carries the bit-identity contract
                 (-ffp-contract=off, width-independent results) and the
                 runtime dispatch. A raw `_mm256_*` call or ad-hoc
                 `vector_size` type elsewhere silently forks that
                 contract — kernels written against it stop being
                 bitwise-reproducible across lane widths.
  raw-thread     `std::thread`/`std::jthread`/`std::async` outside
                 src/dist/. The work-stealing pool (dist/thread_pool.h)
                 is the one sanctioned execution backend: it carries
                 the determinism contract, the drain-before-rethrow
                 exception contract, and the shared-pool reuse that
                 keeps epochs from paying thread spawn/join. An ad-hoc
                 thread elsewhere forks all three and is invisible to
                 the TSan sweep's scheduler stress. Tests may spawn
                 threads to exercise concurrency from the outside.

A finding can be waived on its line with `// lint: allow(<rule>)` and a
justification; the waiver is part of the diff and shows up in review.

Usage: tools/lint.py [--root DIR]    exits 1 if any rule fires.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# Directories whose sources are scanned at all.
SCAN_DIRS = ("src", "bench", "examples", "tests")

# Files allowed to allocate directly: the pool implementations.
POOL_FILES = {
    "src/sim/request_pool.h",
    "src/common/arena.h",
}

# std::function is banned here: the simulator core and the allocator's
# per-candidate hot paths.
HOT_PATH_PREFIXES = (
    "src/sim/",
    "src/alloc/delta_price",
    "src/alloc/share_policy",
    "src/alloc/assign_distribute",
    "src/alloc/reassign",
)

# Test sources may use assert/gtest freely.
TEST_PREFIXES = ("tests/",)

# The only home for SIMD lane types and intrinsics (see common/simd.h).
SIMD_HOME_PREFIXES = ("src/common/",)

# The only home for raw thread spawning (see dist/thread_pool.h).
THREAD_HOME_PREFIXES = ("src/dist/",)

ALLOW_RE = re.compile(r"//\s*lint:\s*allow\((?P<rule>[a-z-]+)\)")

NAKED_NEW_RE = re.compile(r"(?:^|[^:_\w.])new\s+[A-Za-z_(]|\bmalloc\s*\(")
STD_FUNCTION_RE = re.compile(r"\bstd::function\b")
BARE_ASSERT_RE = re.compile(r"(?:^|[^_\w.])assert\s*\(")
RAW_INTRINSICS_RE = re.compile(
    r"immintrin\.h|\b_mm\d*_\w+|__m(?:128|256|512)[id]?\b"
    r"|__builtin_ia32_\w+|\bvector_size\b")
# std::thread spawns; the lookahead spares std::thread::hardware_concurrency
# (a query, not a spawn).
RAW_THREAD_RE = re.compile(r"\bstd::j?thread\b(?!::)|\bstd::async\s*\(")


def strip_noncode(line: str) -> str:
    """Remove string/char literals and trailing // comments.

    Single-line approximation: multi-line raw strings and block comments
    are rare in this codebase and handled by the caller's block-comment
    state machine.
    """
    out = []
    i = 0
    n = len(line)
    while i < n:
        ch = line[i]
        if ch == '"' or ch == "'":
            quote = ch
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            out.append(quote + quote)  # keep token boundaries
            continue
        if ch == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(ch)
        i += 1
    return "".join(out)


def scan_file(root: pathlib.Path, rel: str) -> list[str]:
    findings = []
    is_test = rel.startswith(TEST_PREFIXES)
    is_pool = rel in POOL_FILES
    is_hot = rel.startswith(HOT_PATH_PREFIXES)

    in_block_comment = False
    for lineno, raw in enumerate(
            (root / rel).read_text(encoding="utf-8").splitlines(), start=1):
        line = raw
        # Block-comment state machine (no code+comment mixing on one
        # line in this codebase's style, so whole-line skip is fine).
        if in_block_comment:
            if "*/" in line:
                in_block_comment = False
                line = line.split("*/", 1)[1]
            else:
                continue
        if "/*" in line and "*/" not in line:
            in_block_comment = True
            line = line.split("/*", 1)[0]

        allow = ALLOW_RE.search(raw)
        code = strip_noncode(line)

        def report(rule: str, message: str) -> None:
            if allow and allow.group("rule") == rule:
                return
            findings.append(f"{rel}:{lineno}: [{rule}] {message}")

        if not is_pool and NAKED_NEW_RE.search(code):
            report("naked-new",
                   "direct heap allocation; use the pool allocators or a "
                   "container (see sim/request_pool.h)")
        if is_hot and STD_FUNCTION_RE.search(code):
            report("std-function",
                   "type-erased callable in a hot path; use a template "
                   "parameter or the typed-event core (sim/event.h)")
        if not is_test and BARE_ASSERT_RE.search(code):
            report("bare-assert",
                   "assert() vanishes under NDEBUG; use CHECK/CHECK_MSG "
                   "from common/check.h")
        if not rel.startswith(SIMD_HOME_PREFIXES) and \
                RAW_INTRINSICS_RE.search(code):
            report("raw-intrinsics",
                   "raw intrinsics / vector extensions outside "
                   "src/common/; write kernels against common/simd.h so "
                   "the bit-identity contract holds")
        if not is_test and not rel.startswith(THREAD_HOME_PREFIXES) and \
                RAW_THREAD_RE.search(code):
            report("raw-thread",
                   "ad-hoc thread spawn outside src/dist/; run work "
                   "through dist::ThreadPool (shared() for repeated "
                   "solves) so determinism and exception contracts hold")
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    args = parser.parse_args()

    root = (pathlib.Path(args.root) if args.root
            else pathlib.Path(__file__).resolve().parent.parent)

    findings: list[str] = []
    scanned = 0
    for scan_dir in SCAN_DIRS:
        base = root / scan_dir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".h", ".cpp", ".cc"):
                continue
            rel = path.relative_to(root).as_posix()
            scanned += 1
            findings.extend(scan_file(root, rel))

    for f in findings:
        print(f)
    print(f"lint.py: scanned {scanned} files, "
          f"{len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
