"""Committed-findings baseline.

The baseline lets a new rule land before the last offender is fixed:
known findings are recorded in tools/analyze/baseline.json (committed,
reviewed like code) and the analyzer fails only on findings NOT in it.
Shrinking the baseline is always safe; growing it is a reviewed diff.

Keying: a baseline entry is (file, rule, sha1 of the lexed code text of
the offending line, occurrence index among identical keys in that file).
Line numbers are deliberately NOT part of the key — inserting a comment
above a baselined finding must not resurrect it — but editing the
offending line itself invalidates the entry, which is exactly the
moment a human should re-decide.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable

from tools.analyze.rules import Finding

FORMAT_VERSION = 1


def _code_hash(code: str) -> str:
    normalized = " ".join(code.split())
    return hashlib.sha1(normalized.encode("utf-8")).hexdigest()[:16]


def finding_keys(findings: Iterable[Finding]) -> list[str]:
    """Stable keys, occurrence-disambiguated in input (file) order."""
    seen: dict[str, int] = {}
    keys = []
    for f in findings:
        base = f"{f.file}|{f.rule}|{_code_hash(f.code)}"
        occ = seen.get(base, 0)
        seen[base] = occ + 1
        keys.append(f"{base}|{occ}")
    return keys


def load(path) -> set[str]:
    if not path.exists():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline format {data.get('format')!r}")
    return set(data.get("findings", []))


def save(path, findings: Iterable[Finding]) -> None:
    keys = sorted(finding_keys(findings))
    payload = {
        "format": FORMAT_VERSION,
        "comment": (
            "Known findings the analyzer tolerates. Remove entries as "
            "offenders are fixed; additions are a reviewed diff. "
            "Regenerate with: python3 -m tools.analyze --update-baseline"),
        "findings": keys,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def split_new(findings: list[Finding],
              baseline_keys: set[str]) -> tuple[list[Finding], list[Finding]]:
    """Partitions into (new, baselined) by stable key."""
    new: list[Finding] = []
    old: list[Finding] = []
    for f, key in zip(findings, finding_keys(findings)):
        (old if key in baseline_keys else new).append(f)
    return new, old
