"""The concrete project-invariant rules.

Each rule maps to a bug class this codebase has actually been designed
against (rule -> bug-class table in DESIGN.md section 16). The first
five are ports of the historical tools/lint.py rules onto the real
lexer; the rest encode contracts that earlier PRs stated only in prose.

Path scoping is repo-relative posix. Fixture tests under
tools/analyze/fixtures/ pin both the firing and the non-firing side of
every rule; change a rule here and the fixtures tell you what you
changed.
"""

from __future__ import annotations

import posixpath
import re
from typing import Iterator

from tools.analyze.rules import Finding, SourceFile, register

# --- shared path scopes ----------------------------------------------------

# Files allowed to allocate directly: the pool implementations.
POOL_FILES = {
    "src/sim/request_pool.h",
    "src/common/arena.h",
}

# std::function is banned here: the simulator core and the allocator's
# per-candidate hot paths.
HOT_PATH_PREFIXES = (
    "src/sim/",
    "src/alloc/delta_price",
    "src/alloc/share_policy",
    "src/alloc/assign_distribute",
    "src/alloc/reassign",
)

# Test sources may use assert/gtest/raw threads/raw mutexes freely:
# exercising concurrency from the outside is their job.
TEST_PREFIXES = ("tests/",)

# The only home for SIMD lane types and intrinsics (see common/simd.h).
SIMD_HOME_PREFIXES = ("src/common/",)

# The only home for raw thread spawning (see dist/thread_pool.h).
THREAD_HOME_PREFIXES = ("src/dist/",)

# The only home for raw std::mutex / std::condition_variable: the
# annotated capability wrappers.
SYNC_HOME = "src/common/sync.h"

# Kernel translation units where sequential float accumulation order is
# part of the bit-identity contract (DESIGN.md sections 8/13).
KERNEL_PREFIXES = ("src/queueing/", "src/alloc/", "src/model/", "src/sim/")


def _in_src(rel: str) -> bool:
    return rel.startswith("src/")


def _is_test(rel: str) -> bool:
    return rel.startswith(TEST_PREFIXES)


# --- ported rules ----------------------------------------------------------

_NAKED_NEW_RE = re.compile(r"(?:^|[^:_\w.])new\s+[A-Za-z_(]|\bmalloc\s*\(")


@register(
    "naked-new",
    "direct heap allocation outside the dedicated pool allocators")
def naked_new(source: SourceFile) -> Iterator[Finding]:
    if source.rel in POOL_FILES:
        return
    for line in source.lines:
        if _NAKED_NEW_RE.search(line.code):
            yield Finding(
                source.rel, line.lineno, "naked-new",
                "direct heap allocation; use the pool allocators or a "
                "container (see sim/request_pool.h)")


_STD_FUNCTION_RE = re.compile(r"\bstd::function\b")


@register(
    "std-function",
    "type-erased callables in the simulator core / allocator hot paths")
def std_function(source: SourceFile) -> Iterator[Finding]:
    if not source.rel.startswith(HOT_PATH_PREFIXES):
        return
    for line in source.lines:
        if _STD_FUNCTION_RE.search(line.code):
            yield Finding(
                source.rel, line.lineno, "std-function",
                "type-erased callable in a hot path; use a template "
                "parameter or the typed-event core (sim/event.h)")


_BARE_ASSERT_RE = re.compile(r"(?:^|[^_\w.])assert\s*\(")


@register(
    "bare-assert",
    "assert() in non-test sources vanishes under NDEBUG")
def bare_assert(source: SourceFile) -> Iterator[Finding]:
    if _is_test(source.rel):
        return
    for line in source.lines:
        if _BARE_ASSERT_RE.search(line.code):
            yield Finding(
                source.rel, line.lineno, "bare-assert",
                "assert() vanishes under NDEBUG; use CHECK/CHECK_MSG "
                "from common/check.h")


_RAW_INTRINSICS_RE = re.compile(
    r"immintrin\.h|\b_mm\d*_\w+|__m(?:128|256|512)[id]?\b"
    r"|__builtin_ia32_\w+|\bvector_size\b")


@register(
    "raw-intrinsics",
    "SIMD intrinsics / vector extensions outside common/simd.h's home")
def raw_intrinsics(source: SourceFile) -> Iterator[Finding]:
    if source.rel.startswith(SIMD_HOME_PREFIXES):
        return
    for line in source.lines:
        if _RAW_INTRINSICS_RE.search(line.code):
            yield Finding(
                source.rel, line.lineno, "raw-intrinsics",
                "raw intrinsics / vector extensions outside src/common/; "
                "write kernels against common/simd.h so the bit-identity "
                "contract holds")


# std::thread spawns; the lookahead spares
# std::thread::hardware_concurrency (a query, not a spawn).
_RAW_THREAD_RE = re.compile(r"\bstd::j?thread\b(?!::)|\bstd::async\s*\(")


@register(
    "raw-thread",
    "ad-hoc std::thread/std::async outside the work-stealing pool's home")
def raw_thread(source: SourceFile) -> Iterator[Finding]:
    if _is_test(source.rel) or source.rel.startswith(THREAD_HOME_PREFIXES):
        return
    for line in source.lines:
        if _RAW_THREAD_RE.search(line.code):
            yield Finding(
                source.rel, line.lineno, "raw-thread",
                "ad-hoc thread spawn outside src/dist/; run work through "
                "dist::ThreadPool (shared() for repeated solves) so "
                "determinism and exception contracts hold")


# --- new rules -------------------------------------------------------------

_NAKED_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock"
    r"|shared_lock|condition_variable(?:_any)?)\b")


@register(
    "naked-mutex",
    "raw std:: synchronization primitives outside common/sync.h")
def naked_mutex(source: SourceFile) -> Iterator[Finding]:
    """common/sync.h wraps every primitive with Clang Thread Safety
    Analysis capability annotations; a naked std::mutex elsewhere opts
    its critical sections out of -Wthread-safety entirely. Tests are
    exempt (they exercise concurrency from the outside)."""
    if not _in_src(source.rel) or source.rel == SYNC_HOME:
        return
    for line in source.lines:
        if _NAKED_MUTEX_RE.search(line.code):
            yield Finding(
                source.rel, line.lineno, "naked-mutex",
                "raw std:: synchronization primitive outside "
                "common/sync.h; use sync::Mutex / sync::MutexLock / "
                "sync::CondVar so clang -Wthread-safety sees the lock "
                "discipline")


_UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s*"
    r"(?P<name>\w+)\s*[;({=]")
_UNORDERED_TYPE_RE = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\b")
_RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*?:\s*(?P<expr>[^)]+)\)")
_BEGIN_CALL_RE = re.compile(r"\b(?P<name>\w+)\s*\.\s*c?begin\s*\(")


@register(
    "unordered-iteration",
    "iteration over unordered containers in deterministic paths")
def unordered_iteration(source: SourceFile) -> Iterator[Finding]:
    """Hash-map iteration order is libstdc++-version- and seed-dependent;
    anything it feeds — profits, reports, wire bytes — stops being
    bit-reproducible. Point lookups are fine; iteration is not. The
    scope is all of src/ because every src/ path can feed profit or a
    serialized report (the seed tree is fully ordered-container based).
    """
    if not _in_src(source.rel):
        return
    declared: set[str] = set()
    for line in source.lines:
        for m in _UNORDERED_DECL_RE.finditer(line.code):
            declared.add(m.group("name"))
        for m in _RANGE_FOR_RE.finditer(line.code):
            expr = m.group("expr").strip()
            token = re.sub(r"[&*\s]", "", expr.split(".")[0].split("->")[0])
            if token in declared or _UNORDERED_TYPE_RE.search(expr):
                yield Finding(
                    source.rel, line.lineno, "unordered-iteration",
                    "range-for over an unordered container: iteration "
                    "order is not deterministic; use std::map/std::vector "
                    "or sort the keys first")
        for m in _BEGIN_CALL_RE.finditer(line.code):
            if m.group("name") in declared:
                yield Finding(
                    source.rel, line.lineno, "unordered-iteration",
                    "iterator walk over an unordered container: iteration "
                    "order is not deterministic; use std::map/std::vector "
                    "or sort the keys first")


# Copy-construction forms: `Allocation x = y;` (initializer with no call
# parens) and `Allocation x(y)` / `Allocation x{y}` with a lone
# identifier argument. Arguments naming the cloud are the explicit
# from-Cloud constructor, not a copy.
_ALLOC_COPY_INIT_RE = re.compile(
    r"\b(?:model::)?Allocation\s+\w+\s*=\s*(?P<init>[^;(]+);")
_ALLOC_COPY_CTOR_RE = re.compile(
    r"\b(?:model::)?Allocation\s+\w+\s*[({]\s*(?P<arg>\w+)\s*[)}]")
_CLONE_CALL_RE = re.compile(r"\.\s*clone\s*\(\s*\)")


@register(
    "allocation-copy",
    "Allocation deep copies outside the documented clone boundaries")
def allocation_copy(source: SourceFile) -> Iterator[Finding]:
    """An Allocation copy is thirteen server-length arrays plus the
    per-client placement rows — the exact traffic PRs 2-3 removed from
    the hot paths. The only sanctioned copies are the two documented
    clone() boundaries (agent snapshot, greedy-base construction), each
    carrying an inline waiver. clone() calls are only attributed in
    files that mention Allocation at all, so other types' clone()
    methods (e.g. epoch predictors) never false-positive."""
    if not _in_src(source.rel) or source.rel == "src/model/allocation.h":
        return
    mentions_allocation = "Allocation" in source.code_text()
    for line in source.lines:
        m = _ALLOC_COPY_INIT_RE.search(line.code)
        if m is not None:
            yield Finding(
                source.rel, line.lineno, "allocation-copy",
                "Allocation copy-initialization from an lvalue; price "
                "deltas against the existing state (alloc::MoveEngine) "
                "or go through a documented clone() boundary")
        m = _ALLOC_COPY_CTOR_RE.search(line.code)
        if m is not None and "cloud" not in m.group("arg").lower():
            yield Finding(
                source.rel, line.lineno, "allocation-copy",
                "Allocation copy construction; price deltas against the "
                "existing state (alloc::MoveEngine) or go through a "
                "documented clone() boundary")
        if mentions_allocation and _CLONE_CALL_RE.search(line.code):
            yield Finding(
                source.rel, line.lineno, "allocation-copy",
                "clone() outside the documented boundaries (agent "
                "snapshot, greedy-base construction); new boundaries "
                "need a waiver with a justification")


@register(
    "float-accumulate",
    "std::accumulate over floats in kernel translation units")
def float_accumulate(source: SourceFile) -> Iterator[Finding]:
    """std::accumulate's fold order and init-type promotion are easy to
    change silently (an int init truncates doubles; a refactor to a
    different execution policy reorders the sum). Kernel TUs carry the
    bit-identity contract, so sums there are written as explicit
    sequential loops (or through common/simd.h horizontal adds, which
    pin the lane-reduction order)."""
    if not source.rel.startswith(KERNEL_PREFIXES):
        return
    for line in source.lines:
        if "std::accumulate" in line.code:
            yield Finding(
                source.rel, line.lineno, "float-accumulate",
                "std::accumulate in a kernel TU; write the reduction as "
                "an explicit sequential loop so the fold order is part "
                "of the code, not the library")


# --- layering --------------------------------------------------------------

# Include-graph layers, lowest first. An include is legal iff the target
# layer is <= the including file's layer. Derived from the actual
# dependency structure (DESIGN.md section 16):
#
#   common -> queueing -> model -> opt -> workload
#     -> [exec infra: thread_pool / parallel_eval / mailbox]
#     -> alloc -> {dist, baselines, epoch, sim} -> multitier -> serve
#
# The dist/ directory deliberately spans two layers: the execution
# infrastructure (ThreadPool, ParallelEval, Mailbox) sits BELOW alloc —
# the allocator fans out onto it — while the message-passing manager /
# agents / protocol sit above alloc. The file-level overrides encode
# that split; everything else is directory-granular.
DIR_LAYERS = {
    "common": 0,
    "queueing": 10,
    "model": 20,
    "opt": 25,
    "workload": 30,
    "alloc": 40,
    "dist": 50,
    "baselines": 50,
    "epoch": 50,
    "sim": 50,
    "multitier": 55,
    "serve": 60,
}

FILE_LAYERS = {
    "dist/thread_pool.h": 35,
    "dist/thread_pool.cpp": 35,
    "dist/parallel_eval.h": 35,
    "dist/mailbox.h": 35,
}


def _layer_of(rel_to_src: str) -> int | None:
    if rel_to_src in FILE_LAYERS:
        return FILE_LAYERS[rel_to_src]
    top = rel_to_src.split("/", 1)[0]
    return DIR_LAYERS.get(top)


@register(
    "layering",
    "include-graph back-edges against the documented layer order")
def layering(source: SourceFile) -> Iterator[Finding]:
    if not _in_src(source.rel):
        return
    rel_to_src = posixpath.relpath(source.rel, "src")
    own = _layer_of(rel_to_src)
    if own is None:
        return
    for line in source.lines:
        if line.include is None or "/" not in line.include:
            continue  # system headers and flat includes are out of scope
        target = _layer_of(line.include)
        if target is None:
            continue
        if target > own:
            yield Finding(
                source.rel, line.lineno, "layering",
                f"include of '{line.include}' (layer {target}) from layer "
                f"{own}: back-edge against the documented layer order "
                "(see DESIGN.md section 16); invert the dependency or "
                "move the shared piece down")
