"""Rule registry, findings, and inline waivers.

A rule is a callable registered under a unique name; it receives a
SourceFile (lexed lines + repo-relative path) and yields Findings. The
registry is the single source of truth consumed by the CLI, the fixture
tests, and the docs table in DESIGN.md section 16.

Waivers: a finding is waived by a comment on the same physical line,

    // analyze: allow(rule-name) -- justification

(the legacy `// lint: allow(rule-name)` spelling from the old lint.py
is still honored, so existing waivers keep working). The waiver is part
of the diff and shows up in review; the analyzer records waived findings
in the JSON report but never fails on them.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Callable, Iterable, Iterator

from tools.analyze import lexer

_ALLOW_RE = re.compile(
    r"//\s*(?:analyze|lint):\s*allow\((?P<rules>[a-z-]+(?:\s*,\s*[a-z-]+)*)\)")


@dataclasses.dataclass
class Finding:
    file: str  # repo-relative posix path
    line: int  # 1-based
    rule: str
    message: str
    code: str = ""  # the offending code text (lexed), for baseline keys
    waived: bool = False

    def location(self) -> str:
        return f"{self.file}:{self.line}"

    def render(self) -> str:
        tag = " (waived)" if self.waived else ""
        return f"{self.file}:{self.line}: [{self.rule}]{tag} {self.message}"


class SourceFile:
    """A lexed file plus its repo-relative identity."""

    def __init__(self, rel: str, lines: list[lexer.CodeLine]):
        self.rel = rel
        self.lines = lines
        self._text = None

    @classmethod
    def from_path(cls, root, rel: str) -> "SourceFile":
        return cls(rel, lexer.scan_file(root / rel))

    @classmethod
    def from_text(cls, rel: str, text: str) -> "SourceFile":
        return cls(rel, lexer.scan(text))

    def code_text(self) -> str:
        """Whole-file code text (comments/strings blanked), cached."""
        if self._text is None:
            self._text = "\n".join(line.code for line in self.lines)
        return self._text

    def waivers_on(self, lineno: int) -> set[str]:
        """Waivers covering `lineno`: on the line itself, or in the
        contiguous block of comment-only lines directly above it (where
        multi-line justifications live)."""
        waivers = self._collect_allows(lineno)
        k = lineno - 1
        while k >= 1 and self.lines[k - 1].raw.lstrip().startswith("//"):
            waivers |= self._collect_allows(k)
            k -= 1
        return waivers

    def _collect_allows(self, lineno: int) -> set[str]:
        m = _ALLOW_RE.search(self.lines[lineno - 1].raw)
        if m is None:
            return set()
        return {r.strip() for r in m.group("rules").split(",")}


@dataclasses.dataclass
class Rule:
    name: str
    doc: str  # one-line "what + why" shown by --list-rules
    check: Callable[[SourceFile], Iterable[Finding]]


_REGISTRY: dict[str, Rule] = {}


def register(name: str, doc: str):
    """Decorator: registers `fn(SourceFile) -> Iterable[Finding]`."""

    def wrap(fn):
        if name in _REGISTRY:
            raise ValueError(f"duplicate rule name: {name}")
        _REGISTRY[name] = Rule(name=name, doc=doc, check=fn)
        return fn

    return wrap


def all_rules() -> list[Rule]:
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_rules(names: Iterable[str] | None) -> list[Rule]:
    if names is None:
        return all_rules()
    unknown = sorted(set(names) - set(_REGISTRY))
    if unknown:
        raise KeyError(f"unknown rule(s): {', '.join(unknown)}")
    return [_REGISTRY[name] for name in sorted(set(names))]


def run_rules(source: SourceFile,
              rules: Iterable[Rule]) -> Iterator[Finding]:
    """Runs rules over one file, resolving inline waivers."""
    for rule in rules:
        for finding in rule.check(source):
            if rule.name in source.waivers_on(finding.line):
                finding.waived = True
            if not finding.code and 1 <= finding.line <= len(source.lines):
                finding.code = source.lines[finding.line - 1].code.strip()
            yield finding
