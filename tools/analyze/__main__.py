"""CLI for the project invariant analyzer.

Usage (from the repo root):

    python3 -m tools.analyze                    # scan, gate on baseline
    python3 -m tools.analyze --json report.json # also write a JSON report
    python3 -m tools.analyze --update-baseline  # re-bless current findings
    python3 -m tools.analyze --list-rules       # rule name + one-liner

Exit status: 1 iff any finding is neither waived inline nor present in
the committed baseline (tools/analyze/baseline.json). CI uploads the
JSON report as an artifact and fails on exactly that condition, so "CI
is red" and "there is an unreviewed invariant violation" are the same
statement.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from tools.analyze import baseline as baseline_mod
from tools.analyze import cpp_rules  # noqa: F401  (registers the rules)
from tools.analyze import rules as rules_mod

# Directories whose sources are scanned at all.
SCAN_DIRS = ("src", "bench", "examples", "tests")
EXTENSIONS = (".h", ".cpp", ".cc")


def scan_tree(root: pathlib.Path, active) -> list[rules_mod.Finding]:
    findings: list[rules_mod.Finding] = []
    scanned = 0
    for scan_dir in SCAN_DIRS:
        base = root / scan_dir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in EXTENSIONS:
                continue
            rel = path.relative_to(root).as_posix()
            scanned += 1
            source = rules_mod.SourceFile.from_path(root, rel)
            findings.extend(rules_mod.run_rules(source, active))
    print(f"analyze: scanned {scanned} files with {len(active)} rules",
          file=sys.stderr)
    return findings


def write_report(path: pathlib.Path, findings, new, baselined) -> None:
    new_set = {id(f) for f in new}
    base_set = {id(f) for f in baselined}
    payload = {
        "tool": "tools/analyze",
        "format": 1,
        "rules": [{"name": r.name, "doc": r.doc}
                  for r in rules_mod.all_rules()],
        "findings": [
            {
                "file": f.file,
                "line": f.line,
                "rule": f.rule,
                "message": f.message,
                "code": f.code,
                "status": ("waived" if f.waived else
                           "baselined" if id(f) in base_set else
                           "new" if id(f) in new_set else "unknown"),
            }
            for f in findings
        ],
        "summary": {
            "total": len(findings),
            "new": len(new),
            "baselined": len(baselined),
            "waived": sum(1 for f in findings if f.waived),
        },
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="tools.analyze", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above this "
                             "package)")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule subset (default: all)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a machine-readable report here")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="baseline file (default: "
                             "tools/analyze/baseline.json)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to bless every current "
                             "unwaived finding, then exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule registry and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in rules_mod.all_rules():
            print(f"{rule.name:22s} {rule.doc}")
        return 0

    root = (pathlib.Path(args.root).resolve() if args.root
            else pathlib.Path(__file__).resolve().parent.parent.parent)
    baseline_path = (pathlib.Path(args.baseline) if args.baseline
                     else root / "tools" / "analyze" / "baseline.json")

    names = (None if args.rules is None
             else [r.strip() for r in args.rules.split(",") if r.strip()])
    active = rules_mod.get_rules(names)

    findings = scan_tree(root, active)
    unwaived = [f for f in findings if not f.waived]

    if args.update_baseline:
        baseline_mod.save(baseline_path, unwaived)
        print(f"analyze: baseline rewritten with {len(unwaived)} "
              f"finding(s) -> {baseline_path}", file=sys.stderr)
        return 0

    baseline_keys = baseline_mod.load(baseline_path)
    new, baselined = baseline_mod.split_new(unwaived, baseline_keys)

    if args.json:
        write_report(pathlib.Path(args.json), findings, new, baselined)

    for f in new:
        print(f.render())
    stale = len(baseline_keys) - len(baselined)
    print(
        f"analyze: {len(findings)} finding(s): {len(new)} new, "
        f"{len(baselined)} baselined, "
        f"{sum(1 for f in findings if f.waived)} waived"
        + (f"; {stale} stale baseline entr(y/ies) — consider "
           f"--update-baseline" if stale > 0 else ""),
        file=sys.stderr)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
