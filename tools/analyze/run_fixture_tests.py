#!/usr/bin/env python3
"""Fixture-driven rule tests for the project invariant analyzer.

Every fixture under tools/analyze/fixtures/ is a small C++ file whose
first line declares how the analyzer must treat it:

    // analyze-fixture: path=<pretend-repo-path> rule=<name> expect=fire
    // analyze-fixture: path=<pretend-repo-path> rule=<name> expect=clean

The file is lexed and scanned AS IF it lived at the pretend path (rules
are path-scoped: the same bytes can be legal in src/common/ and illegal
in src/alloc/). `fire` asserts at least one unwaived finding of the
named rule; `clean` asserts none. Both directions exist for every rule,
so a rule that silently stops firing — or starts firing on sanctioned
code — fails ctest (AnalyzerRuleFixtures), not a future reviewer.

Run directly: python3 tools/analyze/run_fixture_tests.py
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools.analyze import cpp_rules  # noqa: F401, E402  (registers rules)
from tools.analyze import rules as rules_mod  # noqa: E402

DIRECTIVE_RE = re.compile(
    r"//\s*analyze-fixture:\s*path=(?P<path>\S+)\s+rule=(?P<rule>[a-z-]+)"
    r"\s+expect=(?P<expect>fire|clean)")

FIXTURE_DIR = pathlib.Path(__file__).resolve().parent / "fixtures"


def run_fixture(path: pathlib.Path) -> str | None:
    """Returns an error string, or None on pass."""
    text = path.read_text(encoding="utf-8")
    m = DIRECTIVE_RE.match(text)
    if m is None:
        return f"{path.name}: missing or malformed analyze-fixture directive"
    rule_name = m.group("rule")
    try:
        rules = rules_mod.get_rules([rule_name])
    except KeyError as e:
        return f"{path.name}: {e}"
    source = rules_mod.SourceFile.from_text(m.group("path"), text)
    findings = [f for f in rules_mod.run_rules(source, rules)
                if not f.waived]
    fired = len(findings) > 0
    want_fire = m.group("expect") == "fire"
    if fired == want_fire:
        return None
    if want_fire:
        return (f"{path.name}: expected rule '{rule_name}' to fire at "
                f"pretend path {m.group('path')}, but it stayed silent")
    lines = "; ".join(f"line {f.line}: {f.message}" for f in findings)
    return (f"{path.name}: expected rule '{rule_name}' to stay silent at "
            f"pretend path {m.group('path')}, but it fired: {lines}")


def main() -> int:
    fixtures = sorted(FIXTURE_DIR.glob("*.cpp"))
    if not fixtures:
        print("no fixtures found", file=sys.stderr)
        return 1

    # Coverage gate: every registered rule needs both a fire and a clean
    # fixture, so new rules cannot land untested.
    directions: dict[str, set[str]] = {}
    errors: list[str] = []
    for path in fixtures:
        m = DIRECTIVE_RE.match(path.read_text(encoding="utf-8"))
        if m is not None:
            directions.setdefault(m.group("rule"), set()).add(
                m.group("expect"))
        error = run_fixture(path)
        if error is not None:
            errors.append(error)

    for rule in rules_mod.all_rules():
        missing = {"fire", "clean"} - directions.get(rule.name, set())
        for direction in sorted(missing):
            errors.append(
                f"rule '{rule.name}' has no expect={direction} fixture; "
                f"add one under tools/analyze/fixtures/")

    for error in errors:
        print(f"FAIL {error}")
    print(f"analyzer fixtures: {len(fixtures)} run, "
          f"{len(errors)} failure(s)", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
