// analyze-fixture: path=src/model/report.cpp rule=unordered-iteration expect=clean
#include <unordered_map>
// Point lookups are fine: no iteration order is observable.
double lookup(const std::unordered_map<int, double>& m, int k) {
  std::unordered_map<int, double> cache = m;
  auto it = cache.find(k);
  return it == cache.end() ? 0.0 : it->second;
}
