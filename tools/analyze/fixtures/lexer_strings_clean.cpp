// analyze-fixture: path=src/model/doc.cpp rule=naked-mutex expect=clean
// Rule tokens in comments, strings, and raw strings must never fire:
// std::mutex in a comment is not code.
const char* kDoc = "use std::mutex via common/sync.h";
const char* kRaw = R"(std::lock_guard<std::mutex> lock(m);)";
/* std::condition_variable in a block comment
   spanning lines */
int answer() { return 42; }
