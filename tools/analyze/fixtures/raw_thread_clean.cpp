// analyze-fixture: path=src/dist/thread_pool.cpp rule=raw-thread expect=clean
#include <thread>
// The pool's own workers, plus the query form everywhere:
unsigned hw() { return std::thread::hardware_concurrency(); }
