// analyze-fixture: path=src/serve/cache.cpp rule=naked-new expect=fire
// The waiver block above a line covers that line only: the second
// allocation below still fires.
void grow() {
  // analyze: allow(naked-new) -- bootstrap allocation, freed at exit;
  // the justification may wrap onto several comment lines.
  int* a = new int[8];
  int* b = new int[8];
  (void)a;
  (void)b;
}
