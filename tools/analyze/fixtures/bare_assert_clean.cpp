// analyze-fixture: path=tests/test_mm1.cpp rule=bare-assert expect=clean
#include <cassert>
void check_case() { assert(1 + 1 == 2); }
