// analyze-fixture: path=src/serve/driver.cpp rule=layering expect=clean
// serve sits on top; reaching down is the point.
#include "alloc/allocator.h"
#include "common/sync.h"
#include "model/allocation.h"
