// analyze-fixture: path=src/model/hooks.h rule=layering expect=fire
// model (layer 20) must not reach up into serve (layer 60).
#include "serve/online_server.h"
