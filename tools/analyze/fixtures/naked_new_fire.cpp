// analyze-fixture: path=src/serve/cache.cpp rule=naked-new expect=fire
void grow() {
  int* p = new int[64];
  (void)p;
}
