// analyze-fixture: path=src/common/simd.h rule=raw-intrinsics expect=clean
// common/ is the single sanctioned lane-abstraction home.
typedef double vec4 __attribute__((vector_size(32)));
