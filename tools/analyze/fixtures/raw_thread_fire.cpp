// analyze-fixture: path=src/serve/poller.cpp rule=raw-thread expect=fire
#include <thread>
void spawn() { std::thread([] {}).join(); }
