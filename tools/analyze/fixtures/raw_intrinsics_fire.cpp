// analyze-fixture: path=src/alloc/kernel.cpp rule=raw-intrinsics expect=fire
typedef double vec4 __attribute__((vector_size(32)));
vec4 add(vec4 a, vec4 b) { return a + b; }
