// analyze-fixture: path=src/model/registry.cpp rule=naked-mutex expect=fire
#include <mutex>
std::mutex g_mutex;
void touch() { std::lock_guard<std::mutex> lock(g_mutex); }
