// analyze-fixture: path=src/common/arena.h rule=naked-new expect=clean
// Pool implementations are the sanctioned home for raw allocation.
inline void* grab(unsigned n) { return new char[n]; }
