// analyze-fixture: path=src/model/report.cpp rule=unordered-iteration expect=fire
#include <unordered_map>
double sum_profits(const std::unordered_map<int, double>& by_cluster) {
  std::unordered_map<int, double> local = by_cluster;
  double total = 0.0;
  for (const auto& kv : local) total += kv.second;
  return total;
}
