// analyze-fixture: path=src/queueing/batch.cpp rule=float-accumulate expect=clean
#include <vector>
// Explicit sequential loop: the fold order is part of the code.
double total(const std::vector<double>& xs) {
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum;
}
