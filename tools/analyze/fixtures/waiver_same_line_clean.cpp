// analyze-fixture: path=src/model/registry.cpp rule=naked-mutex expect=clean
#include <mutex>
std::mutex g_special;  // analyze: allow(naked-mutex)
