// analyze-fixture: path=src/model/registry.cpp rule=naked-mutex expect=clean
#include "common/sync.h"
cloudalloc::sync::Mutex g_mutex;
void touch() { cloudalloc::sync::MutexLock lock(g_mutex); }
