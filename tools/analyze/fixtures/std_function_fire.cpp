// analyze-fixture: path=src/sim/dispatch.cpp rule=std-function expect=fire
#include <functional>
void on_event(const std::function<void(int)>& fn) { fn(0); }
