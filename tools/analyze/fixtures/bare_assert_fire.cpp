// analyze-fixture: path=src/queueing/mm1.cpp rule=bare-assert expect=fire
#include <cassert>
double respond(double rho) {
  assert(rho < 1.0);
  return 1.0 / (1.0 - rho);
}
