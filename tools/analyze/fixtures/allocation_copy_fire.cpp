// analyze-fixture: path=src/opt/walker.cpp rule=allocation-copy expect=fire
#include "model/allocation.h"
using cloudalloc::model::Allocation;
double walk(const Allocation& current) {
  Allocation trial = current;
  Allocation other(trial);
  Allocation third = current.clone();
  (void)other;
  (void)third;
  return 0.0;
}
