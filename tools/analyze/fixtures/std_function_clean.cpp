// analyze-fixture: path=src/serve/driver.cpp rule=std-function expect=clean
// Cold control-plane code may use type erasure freely.
#include <functional>
void on_epoch(const std::function<void()>& fn) { fn(); }
