// analyze-fixture: path=src/queueing/batch.cpp rule=float-accumulate expect=fire
#include <numeric>
#include <vector>
double total(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}
