// analyze-fixture: path=src/opt/walker.cpp rule=allocation-copy expect=clean
#include "model/allocation.h"
using cloudalloc::model::Allocation;
using cloudalloc::model::Cloud;
double walk(const Cloud& cloud) {
  Allocation fresh(cloud);            // explicit from-Cloud constructor
  const Allocation& ref = fresh;      // references are not copies
  (void)ref;
  return 0.0;
}
