"""Comment/string/raw-string-aware C++ line scanner.

The old tools/lint.py stripped comments with per-line regex heuristics
and a "this codebase never mixes code and block comments on one line"
assumption. This lexer drops the assumptions: it walks the file once,
character by character, tracking

  - // line comments,
  - /* ... */ block comments (any nesting of lines, code after the
    closing marker on the same line is kept),
  - "..." and '...' literals with escape handling,
  - R"delim( ... )delim" raw strings (the delimiter is captured, so a
    `)"` inside the raw body does not terminate it),

and emits, per physical line, the code text with comment and literal
*contents* blanked out. Literal quotes are kept as empty tokens (`""`)
so token boundaries survive; everything else keeps its column position,
which keeps rule regexes honest about word boundaries.

The scanner also records #include targets per line, which the layering
rule consumes without re-parsing.
"""

from __future__ import annotations

import dataclasses
import re

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+["<]([^">]+)[">]')
# Raw-string opener: an R (optionally u8R/uR/UR/LR) followed by "delim(.
_RAW_OPEN_RE = re.compile(r'(?:u8|u|U|L)?R"([^()\\ \t\v\f\n]{0,16})\(')


@dataclasses.dataclass
class CodeLine:
    """One physical line of a scanned file."""

    lineno: int  # 1-based
    code: str  # comment/string contents blanked out
    raw: str  # the original line (waiver comments live here)
    include: str | None  # #include target, if the line is an include


def scan(text: str) -> list[CodeLine]:
    """Lexes `text` into CodeLines. Never raises on malformed input:
    an unterminated construct simply swallows the rest of the file,
    which is also what a compiler would effectively do."""
    lines: list[CodeLine] = []
    code_chars: list[str] = []
    raw_chars: list[str] = []
    lineno = 1

    # Scanner state across characters.
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR, RAW_STRING = range(6)
    state = NORMAL
    raw_delim = ""  # active raw-string delimiter

    def flush_line() -> None:
        nonlocal code_chars, raw_chars, lineno
        raw = "".join(raw_chars)
        code = "".join(code_chars)
        # Includes are matched against the RAW line: the code view blanks
        # string contents, which would erase the very path we need.
        m = _INCLUDE_RE.match(raw)
        lines.append(
            CodeLine(lineno=lineno, code=code, raw=raw,
                     include=m.group(1) if m else None))
        code_chars = []
        raw_chars = []
        lineno += 1

    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        raw_chars.append(ch) if ch != "\n" else None

        if ch == "\n":
            if state == LINE_COMMENT:
                state = NORMAL
            flush_line()
            i += 1
            continue

        if state == NORMAL:
            if ch == "/" and i + 1 < n and text[i + 1] == "/":
                state = LINE_COMMENT
                i += 2
                raw_chars.append("/")
                continue
            if ch == "/" and i + 1 < n and text[i + 1] == "*":
                state = BLOCK_COMMENT
                i += 2
                raw_chars.append("*")
                continue
            m = _RAW_OPEN_RE.match(text, i) if ch in "RuUL" else None
            if m is not None:
                state = RAW_STRING
                raw_delim = m.group(1)
                skip = m.end() - i
                raw_chars.extend(text[i + 1:m.end()])
                code_chars.append('""')  # empty token placeholder
                i = m.end()
                continue
            if ch == '"':
                state = STRING
                code_chars.append('""')
                i += 1
                continue
            if ch == "'":
                state = CHAR
                code_chars.append("''")
                i += 1
                continue
            code_chars.append(ch)
            i += 1
            continue

        if state in (LINE_COMMENT, BLOCK_COMMENT):
            if state == BLOCK_COMMENT and ch == "*" and i + 1 < n and \
                    text[i + 1] == "/":
                state = NORMAL
                i += 2
                raw_chars.append("/")
                continue
            i += 1
            continue

        if state == STRING or state == CHAR:
            quote = '"' if state == STRING else "'"
            if ch == "\\" and i + 1 < n:
                if text[i + 1] != "\n":
                    raw_chars.append(text[i + 1])
                i += 2
                continue
            if ch == quote:
                state = NORMAL
            i += 1
            continue

        # RAW_STRING: look for )delim"
        closer = ")" + raw_delim + '"'
        if text.startswith(closer, i):
            raw_chars.extend(closer[1:])
            state = NORMAL
            i += len(closer)
            continue
        i += 1

    if raw_chars or code_chars:
        flush_line()
    return lines


def scan_file(path) -> list[CodeLine]:
    return scan(path.read_text(encoding="utf-8"))
