"""Project invariant analyzer: the static-analysis layer clang cannot see.

Clang Thread Safety Analysis (common/sync.h + the thread-safety CI job)
enforces lock discipline; clang-tidy enforces general C++ hygiene. This
package enforces the invariants that are *project* contracts — bit-exact
determinism, the single sanctioned home for each dangerous primitive,
the layering of the include graph — none of which a generic tool can
know about. See DESIGN.md section 16 for the architecture and the
rule -> bug-class table.

Components:
  lexer.py      comment/string/raw-string-aware C++ line scanner; rules
                only ever see real code text, so a rule name in a comment
                or a log string can never fire.
  rules.py      Finding, the rule registry, and inline-waiver parsing
                (`// analyze: allow(rule) -- why`; the legacy
                `// lint: allow(rule)` spelling still works).
  cpp_rules.py  the concrete rules.
  baseline.py   committed-findings baseline: load/save/diff keyed on
                (file, rule, code-text hash, occurrence) so findings
                survive unrelated line drift but not edits to the line.
  __main__.py   CLI: scan, JSON report, baseline gating.

Entry point: `python3 -m tools.analyze` from the repo root (or via the
tools/lint.py shim). Exit status 1 iff any finding is neither waived
inline nor present in the committed baseline.
"""
