file(REMOVE_RECURSE
  "CMakeFiles/three_tier_app.dir/three_tier_app.cpp.o"
  "CMakeFiles/three_tier_app.dir/three_tier_app.cpp.o.d"
  "three_tier_app"
  "three_tier_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/three_tier_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
