# Empty dependencies file for three_tier_app.
# This may be replaced when dependencies are built.
