file(REMOVE_RECURSE
  "CMakeFiles/cloudalloc_tool.dir/cloudalloc_tool.cpp.o"
  "CMakeFiles/cloudalloc_tool.dir/cloudalloc_tool.cpp.o.d"
  "cloudalloc_tool"
  "cloudalloc_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudalloc_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
