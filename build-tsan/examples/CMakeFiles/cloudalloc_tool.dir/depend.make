# Empty dependencies file for cloudalloc_tool.
# This may be replaced when dependencies are built.
