# Empty dependencies file for distributed_cloud.
# This may be replaced when dependencies are built.
