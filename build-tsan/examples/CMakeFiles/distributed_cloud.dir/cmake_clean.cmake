file(REMOVE_RECURSE
  "CMakeFiles/distributed_cloud.dir/distributed_cloud.cpp.o"
  "CMakeFiles/distributed_cloud.dir/distributed_cloud.cpp.o.d"
  "distributed_cloud"
  "distributed_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
