
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/distributed_cloud.cpp" "examples/CMakeFiles/distributed_cloud.dir/distributed_cloud.cpp.o" "gcc" "examples/CMakeFiles/distributed_cloud.dir/distributed_cloud.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/alloc/CMakeFiles/cloudalloc_alloc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dist/CMakeFiles/cloudalloc_dist.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workload/CMakeFiles/cloudalloc_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/opt/CMakeFiles/cloudalloc_opt.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dist/CMakeFiles/cloudalloc_pool.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/model/CMakeFiles/cloudalloc_model.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/queueing/CMakeFiles/cloudalloc_queueing.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/cloudalloc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
