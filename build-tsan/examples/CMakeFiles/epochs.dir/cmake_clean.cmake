file(REMOVE_RECURSE
  "CMakeFiles/epochs.dir/epochs.cpp.o"
  "CMakeFiles/epochs.dir/epochs.cpp.o.d"
  "epochs"
  "epochs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epochs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
