# Empty compiler generated dependencies file for epochs.
# This may be replaced when dependencies are built.
