# Empty dependencies file for test_server_power.
# This may be replaced when dependencies are built.
