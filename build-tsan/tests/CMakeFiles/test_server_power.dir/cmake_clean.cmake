file(REMOVE_RECURSE
  "CMakeFiles/test_server_power.dir/test_server_power.cpp.o"
  "CMakeFiles/test_server_power.dir/test_server_power.cpp.o.d"
  "test_server_power"
  "test_server_power.pdb"
  "test_server_power[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_server_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
