# Empty dependencies file for test_mathutil.
# This may be replaced when dependencies are built.
