file(REMOVE_RECURSE
  "CMakeFiles/test_mathutil.dir/test_mathutil.cpp.o"
  "CMakeFiles/test_mathutil.dir/test_mathutil.cpp.o.d"
  "test_mathutil"
  "test_mathutil.pdb"
  "test_mathutil[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mathutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
