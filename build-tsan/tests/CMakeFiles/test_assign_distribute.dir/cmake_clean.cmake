file(REMOVE_RECURSE
  "CMakeFiles/test_assign_distribute.dir/test_assign_distribute.cpp.o"
  "CMakeFiles/test_assign_distribute.dir/test_assign_distribute.cpp.o.d"
  "test_assign_distribute"
  "test_assign_distribute.pdb"
  "test_assign_distribute[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assign_distribute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
