# Empty compiler generated dependencies file for test_assign_distribute.
# This may be replaced when dependencies are built.
