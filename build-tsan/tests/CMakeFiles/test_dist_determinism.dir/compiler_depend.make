# Empty compiler generated dependencies file for test_dist_determinism.
# This may be replaced when dependencies are built.
