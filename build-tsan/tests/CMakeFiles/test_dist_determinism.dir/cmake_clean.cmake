file(REMOVE_RECURSE
  "CMakeFiles/test_dist_determinism.dir/test_dist_determinism.cpp.o"
  "CMakeFiles/test_dist_determinism.dir/test_dist_determinism.cpp.o.d"
  "test_dist_determinism"
  "test_dist_determinism.pdb"
  "test_dist_determinism[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
