file(REMOVE_RECURSE
  "CMakeFiles/test_dist_faults.dir/test_dist_faults.cpp.o"
  "CMakeFiles/test_dist_faults.dir/test_dist_faults.cpp.o.d"
  "test_dist_faults"
  "test_dist_faults.pdb"
  "test_dist_faults[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
