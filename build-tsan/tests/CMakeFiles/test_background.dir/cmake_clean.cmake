file(REMOVE_RECURSE
  "CMakeFiles/test_background.dir/test_background.cpp.o"
  "CMakeFiles/test_background.dir/test_background.cpp.o.d"
  "test_background"
  "test_background.pdb"
  "test_background[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_background.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
