file(REMOVE_RECURSE
  "CMakeFiles/test_adjust.dir/test_adjust.cpp.o"
  "CMakeFiles/test_adjust.dir/test_adjust.cpp.o.d"
  "test_adjust"
  "test_adjust.pdb"
  "test_adjust[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adjust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
