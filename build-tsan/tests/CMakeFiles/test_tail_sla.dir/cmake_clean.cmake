file(REMOVE_RECURSE
  "CMakeFiles/test_tail_sla.dir/test_tail_sla.cpp.o"
  "CMakeFiles/test_tail_sla.dir/test_tail_sla.cpp.o.d"
  "test_tail_sla"
  "test_tail_sla.pdb"
  "test_tail_sla[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tail_sla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
