# Empty compiler generated dependencies file for test_tail_sla.
# This may be replaced when dependencies are built.
