file(REMOVE_RECURSE
  "CMakeFiles/test_multitier.dir/test_multitier.cpp.o"
  "CMakeFiles/test_multitier.dir/test_multitier.cpp.o.d"
  "test_multitier"
  "test_multitier.pdb"
  "test_multitier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multitier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
