# Empty dependencies file for test_multitier.
# This may be replaced when dependencies are built.
