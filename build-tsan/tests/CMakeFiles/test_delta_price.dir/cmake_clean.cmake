file(REMOVE_RECURSE
  "CMakeFiles/test_delta_price.dir/test_delta_price.cpp.o"
  "CMakeFiles/test_delta_price.dir/test_delta_price.cpp.o.d"
  "test_delta_price"
  "test_delta_price.pdb"
  "test_delta_price[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delta_price.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
