# Empty dependencies file for test_delta_price.
# This may be replaced when dependencies are built.
