# Empty dependencies file for test_reference_solvers.
# This may be replaced when dependencies are built.
