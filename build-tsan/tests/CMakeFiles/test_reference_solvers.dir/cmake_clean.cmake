file(REMOVE_RECURSE
  "CMakeFiles/test_reference_solvers.dir/test_reference_solvers.cpp.o"
  "CMakeFiles/test_reference_solvers.dir/test_reference_solvers.cpp.o.d"
  "test_reference_solvers"
  "test_reference_solvers.pdb"
  "test_reference_solvers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reference_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
