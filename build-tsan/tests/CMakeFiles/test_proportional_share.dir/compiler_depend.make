# Empty compiler generated dependencies file for test_proportional_share.
# This may be replaced when dependencies are built.
