file(REMOVE_RECURSE
  "CMakeFiles/test_proportional_share.dir/test_proportional_share.cpp.o"
  "CMakeFiles/test_proportional_share.dir/test_proportional_share.cpp.o.d"
  "test_proportional_share"
  "test_proportional_share.pdb"
  "test_proportional_share[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proportional_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
