file(REMOVE_RECURSE
  "CMakeFiles/test_dispersion.dir/test_dispersion.cpp.o"
  "CMakeFiles/test_dispersion.dir/test_dispersion.cpp.o.d"
  "test_dispersion"
  "test_dispersion.pdb"
  "test_dispersion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dispersion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
