# Empty compiler generated dependencies file for test_dispersion.
# This may be replaced when dependencies are built.
