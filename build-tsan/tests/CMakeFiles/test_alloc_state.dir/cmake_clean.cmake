file(REMOVE_RECURSE
  "CMakeFiles/test_alloc_state.dir/test_alloc_state.cpp.o"
  "CMakeFiles/test_alloc_state.dir/test_alloc_state.cpp.o.d"
  "test_alloc_state"
  "test_alloc_state.pdb"
  "test_alloc_state[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alloc_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
