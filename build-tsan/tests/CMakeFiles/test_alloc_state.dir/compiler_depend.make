# Empty compiler generated dependencies file for test_alloc_state.
# This may be replaced when dependencies are built.
