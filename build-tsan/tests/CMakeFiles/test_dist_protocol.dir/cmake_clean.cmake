file(REMOVE_RECURSE
  "CMakeFiles/test_dist_protocol.dir/test_dist_protocol.cpp.o"
  "CMakeFiles/test_dist_protocol.dir/test_dist_protocol.cpp.o.d"
  "test_dist_protocol"
  "test_dist_protocol.pdb"
  "test_dist_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
