# Empty dependencies file for test_dist_protocol.
# This may be replaced when dependencies are built.
