file(REMOVE_RECURSE
  "CMakeFiles/test_reassign.dir/test_reassign.cpp.o"
  "CMakeFiles/test_reassign.dir/test_reassign.cpp.o.d"
  "test_reassign"
  "test_reassign.pdb"
  "test_reassign[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reassign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
