# Empty dependencies file for test_reassign.
# This may be replaced when dependencies are built.
