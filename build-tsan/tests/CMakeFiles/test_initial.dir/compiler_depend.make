# Empty compiler generated dependencies file for test_initial.
# This may be replaced when dependencies are built.
