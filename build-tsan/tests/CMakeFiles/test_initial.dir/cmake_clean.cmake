file(REMOVE_RECURSE
  "CMakeFiles/test_initial.dir/test_initial.cpp.o"
  "CMakeFiles/test_initial.dir/test_initial.cpp.o.d"
  "test_initial"
  "test_initial.pdb"
  "test_initial[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_initial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
