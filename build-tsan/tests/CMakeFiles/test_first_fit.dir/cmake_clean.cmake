file(REMOVE_RECURSE
  "CMakeFiles/test_first_fit.dir/test_first_fit.cpp.o"
  "CMakeFiles/test_first_fit.dir/test_first_fit.cpp.o.d"
  "test_first_fit"
  "test_first_fit.pdb"
  "test_first_fit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_first_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
