# Empty compiler generated dependencies file for test_first_fit.
# This may be replaced when dependencies are built.
