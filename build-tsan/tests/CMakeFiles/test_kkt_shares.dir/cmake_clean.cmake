file(REMOVE_RECURSE
  "CMakeFiles/test_kkt_shares.dir/test_kkt_shares.cpp.o"
  "CMakeFiles/test_kkt_shares.dir/test_kkt_shares.cpp.o.d"
  "test_kkt_shares"
  "test_kkt_shares.pdb"
  "test_kkt_shares[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kkt_shares.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
