# Empty compiler generated dependencies file for test_kkt_shares.
# This may be replaced when dependencies are built.
