# Empty dependencies file for test_table_args.
# This may be replaced when dependencies are built.
