file(REMOVE_RECURSE
  "CMakeFiles/test_table_args.dir/test_table_args.cpp.o"
  "CMakeFiles/test_table_args.dir/test_table_args.cpp.o.d"
  "test_table_args"
  "test_table_args.pdb"
  "test_table_args[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table_args.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
