# Empty compiler generated dependencies file for test_stochastic_engines.
# This may be replaced when dependencies are built.
