file(REMOVE_RECURSE
  "CMakeFiles/test_stochastic_engines.dir/test_stochastic_engines.cpp.o"
  "CMakeFiles/test_stochastic_engines.dir/test_stochastic_engines.cpp.o.d"
  "test_stochastic_engines"
  "test_stochastic_engines.pdb"
  "test_stochastic_engines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stochastic_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
