file(REMOVE_RECURSE
  "CMakeFiles/test_step_sla.dir/test_step_sla.cpp.o"
  "CMakeFiles/test_step_sla.dir/test_step_sla.cpp.o.d"
  "test_step_sla"
  "test_step_sla.pdb"
  "test_step_sla[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_step_sla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
