# Empty dependencies file for test_step_sla.
# This may be replaced when dependencies are built.
