file(REMOVE_RECURSE
  "CMakeFiles/cloudalloc_queueing.dir/batch.cpp.o"
  "CMakeFiles/cloudalloc_queueing.dir/batch.cpp.o.d"
  "CMakeFiles/cloudalloc_queueing.dir/gps.cpp.o"
  "CMakeFiles/cloudalloc_queueing.dir/gps.cpp.o.d"
  "CMakeFiles/cloudalloc_queueing.dir/mm1.cpp.o"
  "CMakeFiles/cloudalloc_queueing.dir/mm1.cpp.o.d"
  "CMakeFiles/cloudalloc_queueing.dir/response_time.cpp.o"
  "CMakeFiles/cloudalloc_queueing.dir/response_time.cpp.o.d"
  "libcloudalloc_queueing.a"
  "libcloudalloc_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudalloc_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
