
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/queueing/batch.cpp" "src/queueing/CMakeFiles/cloudalloc_queueing.dir/batch.cpp.o" "gcc" "src/queueing/CMakeFiles/cloudalloc_queueing.dir/batch.cpp.o.d"
  "/root/repo/src/queueing/gps.cpp" "src/queueing/CMakeFiles/cloudalloc_queueing.dir/gps.cpp.o" "gcc" "src/queueing/CMakeFiles/cloudalloc_queueing.dir/gps.cpp.o.d"
  "/root/repo/src/queueing/mm1.cpp" "src/queueing/CMakeFiles/cloudalloc_queueing.dir/mm1.cpp.o" "gcc" "src/queueing/CMakeFiles/cloudalloc_queueing.dir/mm1.cpp.o.d"
  "/root/repo/src/queueing/response_time.cpp" "src/queueing/CMakeFiles/cloudalloc_queueing.dir/response_time.cpp.o" "gcc" "src/queueing/CMakeFiles/cloudalloc_queueing.dir/response_time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/cloudalloc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
