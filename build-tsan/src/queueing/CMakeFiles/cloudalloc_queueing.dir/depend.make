# Empty dependencies file for cloudalloc_queueing.
# This may be replaced when dependencies are built.
