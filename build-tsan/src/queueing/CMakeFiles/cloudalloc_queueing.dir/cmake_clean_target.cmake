file(REMOVE_RECURSE
  "libcloudalloc_queueing.a"
)
