file(REMOVE_RECURSE
  "libcloudalloc_pool.a"
)
