# Empty dependencies file for cloudalloc_pool.
# This may be replaced when dependencies are built.
