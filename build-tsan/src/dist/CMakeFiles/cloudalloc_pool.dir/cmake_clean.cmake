file(REMOVE_RECURSE
  "CMakeFiles/cloudalloc_pool.dir/thread_pool.cpp.o"
  "CMakeFiles/cloudalloc_pool.dir/thread_pool.cpp.o.d"
  "libcloudalloc_pool.a"
  "libcloudalloc_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudalloc_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
