file(REMOVE_RECURSE
  "CMakeFiles/cloudalloc_dist.dir/cluster_agent.cpp.o"
  "CMakeFiles/cloudalloc_dist.dir/cluster_agent.cpp.o.d"
  "CMakeFiles/cloudalloc_dist.dir/codec.cpp.o"
  "CMakeFiles/cloudalloc_dist.dir/codec.cpp.o.d"
  "CMakeFiles/cloudalloc_dist.dir/manager.cpp.o"
  "CMakeFiles/cloudalloc_dist.dir/manager.cpp.o.d"
  "CMakeFiles/cloudalloc_dist.dir/protocol.cpp.o"
  "CMakeFiles/cloudalloc_dist.dir/protocol.cpp.o.d"
  "CMakeFiles/cloudalloc_dist.dir/transport.cpp.o"
  "CMakeFiles/cloudalloc_dist.dir/transport.cpp.o.d"
  "libcloudalloc_dist.a"
  "libcloudalloc_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudalloc_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
