file(REMOVE_RECURSE
  "libcloudalloc_dist.a"
)
