
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/cluster_agent.cpp" "src/dist/CMakeFiles/cloudalloc_dist.dir/cluster_agent.cpp.o" "gcc" "src/dist/CMakeFiles/cloudalloc_dist.dir/cluster_agent.cpp.o.d"
  "/root/repo/src/dist/codec.cpp" "src/dist/CMakeFiles/cloudalloc_dist.dir/codec.cpp.o" "gcc" "src/dist/CMakeFiles/cloudalloc_dist.dir/codec.cpp.o.d"
  "/root/repo/src/dist/manager.cpp" "src/dist/CMakeFiles/cloudalloc_dist.dir/manager.cpp.o" "gcc" "src/dist/CMakeFiles/cloudalloc_dist.dir/manager.cpp.o.d"
  "/root/repo/src/dist/protocol.cpp" "src/dist/CMakeFiles/cloudalloc_dist.dir/protocol.cpp.o" "gcc" "src/dist/CMakeFiles/cloudalloc_dist.dir/protocol.cpp.o.d"
  "/root/repo/src/dist/transport.cpp" "src/dist/CMakeFiles/cloudalloc_dist.dir/transport.cpp.o" "gcc" "src/dist/CMakeFiles/cloudalloc_dist.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/alloc/CMakeFiles/cloudalloc_alloc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dist/CMakeFiles/cloudalloc_pool.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/model/CMakeFiles/cloudalloc_model.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/queueing/CMakeFiles/cloudalloc_queueing.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/opt/CMakeFiles/cloudalloc_opt.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/cloudalloc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
