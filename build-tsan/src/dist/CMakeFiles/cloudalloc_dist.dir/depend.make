# Empty dependencies file for cloudalloc_dist.
# This may be replaced when dependencies are built.
