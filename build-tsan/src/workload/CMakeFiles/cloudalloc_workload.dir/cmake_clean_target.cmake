file(REMOVE_RECURSE
  "libcloudalloc_workload.a"
)
