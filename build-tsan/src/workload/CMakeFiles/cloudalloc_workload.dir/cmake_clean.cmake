file(REMOVE_RECURSE
  "CMakeFiles/cloudalloc_workload.dir/scenario.cpp.o"
  "CMakeFiles/cloudalloc_workload.dir/scenario.cpp.o.d"
  "CMakeFiles/cloudalloc_workload.dir/trace.cpp.o"
  "CMakeFiles/cloudalloc_workload.dir/trace.cpp.o.d"
  "libcloudalloc_workload.a"
  "libcloudalloc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudalloc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
