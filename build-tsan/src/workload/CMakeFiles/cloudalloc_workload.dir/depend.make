# Empty dependencies file for cloudalloc_workload.
# This may be replaced when dependencies are built.
