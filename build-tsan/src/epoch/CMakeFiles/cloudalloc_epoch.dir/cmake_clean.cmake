file(REMOVE_RECURSE
  "CMakeFiles/cloudalloc_epoch.dir/controller.cpp.o"
  "CMakeFiles/cloudalloc_epoch.dir/controller.cpp.o.d"
  "CMakeFiles/cloudalloc_epoch.dir/predictor.cpp.o"
  "CMakeFiles/cloudalloc_epoch.dir/predictor.cpp.o.d"
  "libcloudalloc_epoch.a"
  "libcloudalloc_epoch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudalloc_epoch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
