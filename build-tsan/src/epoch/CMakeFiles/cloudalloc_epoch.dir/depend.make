# Empty dependencies file for cloudalloc_epoch.
# This may be replaced when dependencies are built.
