file(REMOVE_RECURSE
  "libcloudalloc_epoch.a"
)
