# Empty dependencies file for cloudalloc_common.
# This may be replaced when dependencies are built.
