file(REMOVE_RECURSE
  "libcloudalloc_common.a"
)
