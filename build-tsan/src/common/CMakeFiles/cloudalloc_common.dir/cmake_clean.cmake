file(REMOVE_RECURSE
  "CMakeFiles/cloudalloc_common.dir/args.cpp.o"
  "CMakeFiles/cloudalloc_common.dir/args.cpp.o.d"
  "CMakeFiles/cloudalloc_common.dir/check.cpp.o"
  "CMakeFiles/cloudalloc_common.dir/check.cpp.o.d"
  "CMakeFiles/cloudalloc_common.dir/json.cpp.o"
  "CMakeFiles/cloudalloc_common.dir/json.cpp.o.d"
  "CMakeFiles/cloudalloc_common.dir/log.cpp.o"
  "CMakeFiles/cloudalloc_common.dir/log.cpp.o.d"
  "CMakeFiles/cloudalloc_common.dir/mathutil.cpp.o"
  "CMakeFiles/cloudalloc_common.dir/mathutil.cpp.o.d"
  "CMakeFiles/cloudalloc_common.dir/rng.cpp.o"
  "CMakeFiles/cloudalloc_common.dir/rng.cpp.o.d"
  "CMakeFiles/cloudalloc_common.dir/stats.cpp.o"
  "CMakeFiles/cloudalloc_common.dir/stats.cpp.o.d"
  "CMakeFiles/cloudalloc_common.dir/table.cpp.o"
  "CMakeFiles/cloudalloc_common.dir/table.cpp.o.d"
  "libcloudalloc_common.a"
  "libcloudalloc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudalloc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
