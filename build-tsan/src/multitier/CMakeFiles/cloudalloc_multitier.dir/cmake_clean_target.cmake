file(REMOVE_RECURSE
  "libcloudalloc_multitier.a"
)
