# Empty dependencies file for cloudalloc_multitier.
# This may be replaced when dependencies are built.
