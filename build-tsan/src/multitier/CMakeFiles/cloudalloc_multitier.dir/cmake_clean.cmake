file(REMOVE_RECURSE
  "CMakeFiles/cloudalloc_multitier.dir/multitier.cpp.o"
  "CMakeFiles/cloudalloc_multitier.dir/multitier.cpp.o.d"
  "libcloudalloc_multitier.a"
  "libcloudalloc_multitier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudalloc_multitier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
