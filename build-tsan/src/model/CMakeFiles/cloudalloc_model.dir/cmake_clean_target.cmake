file(REMOVE_RECURSE
  "libcloudalloc_model.a"
)
