# Empty dependencies file for cloudalloc_model.
# This may be replaced when dependencies are built.
