
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/alloc_state.cpp" "src/model/CMakeFiles/cloudalloc_model.dir/alloc_state.cpp.o" "gcc" "src/model/CMakeFiles/cloudalloc_model.dir/alloc_state.cpp.o.d"
  "/root/repo/src/model/allocation.cpp" "src/model/CMakeFiles/cloudalloc_model.dir/allocation.cpp.o" "gcc" "src/model/CMakeFiles/cloudalloc_model.dir/allocation.cpp.o.d"
  "/root/repo/src/model/cloud.cpp" "src/model/CMakeFiles/cloudalloc_model.dir/cloud.cpp.o" "gcc" "src/model/CMakeFiles/cloudalloc_model.dir/cloud.cpp.o.d"
  "/root/repo/src/model/evaluator.cpp" "src/model/CMakeFiles/cloudalloc_model.dir/evaluator.cpp.o" "gcc" "src/model/CMakeFiles/cloudalloc_model.dir/evaluator.cpp.o.d"
  "/root/repo/src/model/feasibility.cpp" "src/model/CMakeFiles/cloudalloc_model.dir/feasibility.cpp.o" "gcc" "src/model/CMakeFiles/cloudalloc_model.dir/feasibility.cpp.o.d"
  "/root/repo/src/model/report.cpp" "src/model/CMakeFiles/cloudalloc_model.dir/report.cpp.o" "gcc" "src/model/CMakeFiles/cloudalloc_model.dir/report.cpp.o.d"
  "/root/repo/src/model/residual.cpp" "src/model/CMakeFiles/cloudalloc_model.dir/residual.cpp.o" "gcc" "src/model/CMakeFiles/cloudalloc_model.dir/residual.cpp.o.d"
  "/root/repo/src/model/serialize.cpp" "src/model/CMakeFiles/cloudalloc_model.dir/serialize.cpp.o" "gcc" "src/model/CMakeFiles/cloudalloc_model.dir/serialize.cpp.o.d"
  "/root/repo/src/model/utility.cpp" "src/model/CMakeFiles/cloudalloc_model.dir/utility.cpp.o" "gcc" "src/model/CMakeFiles/cloudalloc_model.dir/utility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/cloudalloc_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/queueing/CMakeFiles/cloudalloc_queueing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
