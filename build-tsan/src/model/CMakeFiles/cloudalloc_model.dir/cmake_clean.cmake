file(REMOVE_RECURSE
  "CMakeFiles/cloudalloc_model.dir/alloc_state.cpp.o"
  "CMakeFiles/cloudalloc_model.dir/alloc_state.cpp.o.d"
  "CMakeFiles/cloudalloc_model.dir/allocation.cpp.o"
  "CMakeFiles/cloudalloc_model.dir/allocation.cpp.o.d"
  "CMakeFiles/cloudalloc_model.dir/cloud.cpp.o"
  "CMakeFiles/cloudalloc_model.dir/cloud.cpp.o.d"
  "CMakeFiles/cloudalloc_model.dir/evaluator.cpp.o"
  "CMakeFiles/cloudalloc_model.dir/evaluator.cpp.o.d"
  "CMakeFiles/cloudalloc_model.dir/feasibility.cpp.o"
  "CMakeFiles/cloudalloc_model.dir/feasibility.cpp.o.d"
  "CMakeFiles/cloudalloc_model.dir/report.cpp.o"
  "CMakeFiles/cloudalloc_model.dir/report.cpp.o.d"
  "CMakeFiles/cloudalloc_model.dir/residual.cpp.o"
  "CMakeFiles/cloudalloc_model.dir/residual.cpp.o.d"
  "CMakeFiles/cloudalloc_model.dir/serialize.cpp.o"
  "CMakeFiles/cloudalloc_model.dir/serialize.cpp.o.d"
  "CMakeFiles/cloudalloc_model.dir/utility.cpp.o"
  "CMakeFiles/cloudalloc_model.dir/utility.cpp.o.d"
  "libcloudalloc_model.a"
  "libcloudalloc_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudalloc_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
