
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/annealing.cpp" "src/opt/CMakeFiles/cloudalloc_opt.dir/annealing.cpp.o" "gcc" "src/opt/CMakeFiles/cloudalloc_opt.dir/annealing.cpp.o.d"
  "/root/repo/src/opt/dispersion.cpp" "src/opt/CMakeFiles/cloudalloc_opt.dir/dispersion.cpp.o" "gcc" "src/opt/CMakeFiles/cloudalloc_opt.dir/dispersion.cpp.o.d"
  "/root/repo/src/opt/dp.cpp" "src/opt/CMakeFiles/cloudalloc_opt.dir/dp.cpp.o" "gcc" "src/opt/CMakeFiles/cloudalloc_opt.dir/dp.cpp.o.d"
  "/root/repo/src/opt/exhaustive.cpp" "src/opt/CMakeFiles/cloudalloc_opt.dir/exhaustive.cpp.o" "gcc" "src/opt/CMakeFiles/cloudalloc_opt.dir/exhaustive.cpp.o.d"
  "/root/repo/src/opt/first_fit.cpp" "src/opt/CMakeFiles/cloudalloc_opt.dir/first_fit.cpp.o" "gcc" "src/opt/CMakeFiles/cloudalloc_opt.dir/first_fit.cpp.o.d"
  "/root/repo/src/opt/genetic.cpp" "src/opt/CMakeFiles/cloudalloc_opt.dir/genetic.cpp.o" "gcc" "src/opt/CMakeFiles/cloudalloc_opt.dir/genetic.cpp.o.d"
  "/root/repo/src/opt/kkt_shares.cpp" "src/opt/CMakeFiles/cloudalloc_opt.dir/kkt_shares.cpp.o" "gcc" "src/opt/CMakeFiles/cloudalloc_opt.dir/kkt_shares.cpp.o.d"
  "/root/repo/src/opt/reference_solvers.cpp" "src/opt/CMakeFiles/cloudalloc_opt.dir/reference_solvers.cpp.o" "gcc" "src/opt/CMakeFiles/cloudalloc_opt.dir/reference_solvers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/cloudalloc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
