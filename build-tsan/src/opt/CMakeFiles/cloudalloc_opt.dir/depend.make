# Empty dependencies file for cloudalloc_opt.
# This may be replaced when dependencies are built.
