file(REMOVE_RECURSE
  "libcloudalloc_opt.a"
)
