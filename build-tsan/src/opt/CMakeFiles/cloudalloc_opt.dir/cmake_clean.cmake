file(REMOVE_RECURSE
  "CMakeFiles/cloudalloc_opt.dir/annealing.cpp.o"
  "CMakeFiles/cloudalloc_opt.dir/annealing.cpp.o.d"
  "CMakeFiles/cloudalloc_opt.dir/dispersion.cpp.o"
  "CMakeFiles/cloudalloc_opt.dir/dispersion.cpp.o.d"
  "CMakeFiles/cloudalloc_opt.dir/dp.cpp.o"
  "CMakeFiles/cloudalloc_opt.dir/dp.cpp.o.d"
  "CMakeFiles/cloudalloc_opt.dir/exhaustive.cpp.o"
  "CMakeFiles/cloudalloc_opt.dir/exhaustive.cpp.o.d"
  "CMakeFiles/cloudalloc_opt.dir/first_fit.cpp.o"
  "CMakeFiles/cloudalloc_opt.dir/first_fit.cpp.o.d"
  "CMakeFiles/cloudalloc_opt.dir/genetic.cpp.o"
  "CMakeFiles/cloudalloc_opt.dir/genetic.cpp.o.d"
  "CMakeFiles/cloudalloc_opt.dir/kkt_shares.cpp.o"
  "CMakeFiles/cloudalloc_opt.dir/kkt_shares.cpp.o.d"
  "CMakeFiles/cloudalloc_opt.dir/reference_solvers.cpp.o"
  "CMakeFiles/cloudalloc_opt.dir/reference_solvers.cpp.o.d"
  "libcloudalloc_opt.a"
  "libcloudalloc_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudalloc_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
