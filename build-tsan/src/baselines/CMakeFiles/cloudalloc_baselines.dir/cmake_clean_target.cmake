file(REMOVE_RECURSE
  "libcloudalloc_baselines.a"
)
