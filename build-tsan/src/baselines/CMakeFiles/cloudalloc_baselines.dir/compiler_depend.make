# Empty compiler generated dependencies file for cloudalloc_baselines.
# This may be replaced when dependencies are built.
