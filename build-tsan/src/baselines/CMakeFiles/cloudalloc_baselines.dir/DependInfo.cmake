
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/ga_alloc.cpp" "src/baselines/CMakeFiles/cloudalloc_baselines.dir/ga_alloc.cpp.o" "gcc" "src/baselines/CMakeFiles/cloudalloc_baselines.dir/ga_alloc.cpp.o.d"
  "/root/repo/src/baselines/monte_carlo.cpp" "src/baselines/CMakeFiles/cloudalloc_baselines.dir/monte_carlo.cpp.o" "gcc" "src/baselines/CMakeFiles/cloudalloc_baselines.dir/monte_carlo.cpp.o.d"
  "/root/repo/src/baselines/proportional_share.cpp" "src/baselines/CMakeFiles/cloudalloc_baselines.dir/proportional_share.cpp.o" "gcc" "src/baselines/CMakeFiles/cloudalloc_baselines.dir/proportional_share.cpp.o.d"
  "/root/repo/src/baselines/random_alloc.cpp" "src/baselines/CMakeFiles/cloudalloc_baselines.dir/random_alloc.cpp.o" "gcc" "src/baselines/CMakeFiles/cloudalloc_baselines.dir/random_alloc.cpp.o.d"
  "/root/repo/src/baselines/sa_alloc.cpp" "src/baselines/CMakeFiles/cloudalloc_baselines.dir/sa_alloc.cpp.o" "gcc" "src/baselines/CMakeFiles/cloudalloc_baselines.dir/sa_alloc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/alloc/CMakeFiles/cloudalloc_alloc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/model/CMakeFiles/cloudalloc_model.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/queueing/CMakeFiles/cloudalloc_queueing.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/opt/CMakeFiles/cloudalloc_opt.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dist/CMakeFiles/cloudalloc_pool.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/cloudalloc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
