file(REMOVE_RECURSE
  "CMakeFiles/cloudalloc_baselines.dir/ga_alloc.cpp.o"
  "CMakeFiles/cloudalloc_baselines.dir/ga_alloc.cpp.o.d"
  "CMakeFiles/cloudalloc_baselines.dir/monte_carlo.cpp.o"
  "CMakeFiles/cloudalloc_baselines.dir/monte_carlo.cpp.o.d"
  "CMakeFiles/cloudalloc_baselines.dir/proportional_share.cpp.o"
  "CMakeFiles/cloudalloc_baselines.dir/proportional_share.cpp.o.d"
  "CMakeFiles/cloudalloc_baselines.dir/random_alloc.cpp.o"
  "CMakeFiles/cloudalloc_baselines.dir/random_alloc.cpp.o.d"
  "CMakeFiles/cloudalloc_baselines.dir/sa_alloc.cpp.o"
  "CMakeFiles/cloudalloc_baselines.dir/sa_alloc.cpp.o.d"
  "libcloudalloc_baselines.a"
  "libcloudalloc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudalloc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
