file(REMOVE_RECURSE
  "libcloudalloc_sim.a"
)
