file(REMOVE_RECURSE
  "CMakeFiles/cloudalloc_sim.dir/event_queue.cpp.o"
  "CMakeFiles/cloudalloc_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/cloudalloc_sim.dir/replication.cpp.o"
  "CMakeFiles/cloudalloc_sim.dir/replication.cpp.o.d"
  "CMakeFiles/cloudalloc_sim.dir/runner.cpp.o"
  "CMakeFiles/cloudalloc_sim.dir/runner.cpp.o.d"
  "libcloudalloc_sim.a"
  "libcloudalloc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudalloc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
