# Empty compiler generated dependencies file for cloudalloc_sim.
# This may be replaced when dependencies are built.
