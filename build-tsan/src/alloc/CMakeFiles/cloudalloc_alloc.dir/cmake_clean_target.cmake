file(REMOVE_RECURSE
  "libcloudalloc_alloc.a"
)
