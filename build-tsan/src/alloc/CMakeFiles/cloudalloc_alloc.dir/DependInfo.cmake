
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/adjust_dispersion.cpp" "src/alloc/CMakeFiles/cloudalloc_alloc.dir/adjust_dispersion.cpp.o" "gcc" "src/alloc/CMakeFiles/cloudalloc_alloc.dir/adjust_dispersion.cpp.o.d"
  "/root/repo/src/alloc/adjust_shares.cpp" "src/alloc/CMakeFiles/cloudalloc_alloc.dir/adjust_shares.cpp.o" "gcc" "src/alloc/CMakeFiles/cloudalloc_alloc.dir/adjust_shares.cpp.o.d"
  "/root/repo/src/alloc/allocator.cpp" "src/alloc/CMakeFiles/cloudalloc_alloc.dir/allocator.cpp.o" "gcc" "src/alloc/CMakeFiles/cloudalloc_alloc.dir/allocator.cpp.o.d"
  "/root/repo/src/alloc/assign_distribute.cpp" "src/alloc/CMakeFiles/cloudalloc_alloc.dir/assign_distribute.cpp.o" "gcc" "src/alloc/CMakeFiles/cloudalloc_alloc.dir/assign_distribute.cpp.o.d"
  "/root/repo/src/alloc/delta_price.cpp" "src/alloc/CMakeFiles/cloudalloc_alloc.dir/delta_price.cpp.o" "gcc" "src/alloc/CMakeFiles/cloudalloc_alloc.dir/delta_price.cpp.o.d"
  "/root/repo/src/alloc/initial.cpp" "src/alloc/CMakeFiles/cloudalloc_alloc.dir/initial.cpp.o" "gcc" "src/alloc/CMakeFiles/cloudalloc_alloc.dir/initial.cpp.o.d"
  "/root/repo/src/alloc/move_engine.cpp" "src/alloc/CMakeFiles/cloudalloc_alloc.dir/move_engine.cpp.o" "gcc" "src/alloc/CMakeFiles/cloudalloc_alloc.dir/move_engine.cpp.o.d"
  "/root/repo/src/alloc/reassign.cpp" "src/alloc/CMakeFiles/cloudalloc_alloc.dir/reassign.cpp.o" "gcc" "src/alloc/CMakeFiles/cloudalloc_alloc.dir/reassign.cpp.o.d"
  "/root/repo/src/alloc/server_power.cpp" "src/alloc/CMakeFiles/cloudalloc_alloc.dir/server_power.cpp.o" "gcc" "src/alloc/CMakeFiles/cloudalloc_alloc.dir/server_power.cpp.o.d"
  "/root/repo/src/alloc/share_policy.cpp" "src/alloc/CMakeFiles/cloudalloc_alloc.dir/share_policy.cpp.o" "gcc" "src/alloc/CMakeFiles/cloudalloc_alloc.dir/share_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/model/CMakeFiles/cloudalloc_model.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/opt/CMakeFiles/cloudalloc_opt.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dist/CMakeFiles/cloudalloc_pool.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/queueing/CMakeFiles/cloudalloc_queueing.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/cloudalloc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
