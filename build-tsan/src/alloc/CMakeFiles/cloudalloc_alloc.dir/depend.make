# Empty dependencies file for cloudalloc_alloc.
# This may be replaced when dependencies are built.
