file(REMOVE_RECURSE
  "CMakeFiles/cloudalloc_alloc.dir/adjust_dispersion.cpp.o"
  "CMakeFiles/cloudalloc_alloc.dir/adjust_dispersion.cpp.o.d"
  "CMakeFiles/cloudalloc_alloc.dir/adjust_shares.cpp.o"
  "CMakeFiles/cloudalloc_alloc.dir/adjust_shares.cpp.o.d"
  "CMakeFiles/cloudalloc_alloc.dir/allocator.cpp.o"
  "CMakeFiles/cloudalloc_alloc.dir/allocator.cpp.o.d"
  "CMakeFiles/cloudalloc_alloc.dir/assign_distribute.cpp.o"
  "CMakeFiles/cloudalloc_alloc.dir/assign_distribute.cpp.o.d"
  "CMakeFiles/cloudalloc_alloc.dir/delta_price.cpp.o"
  "CMakeFiles/cloudalloc_alloc.dir/delta_price.cpp.o.d"
  "CMakeFiles/cloudalloc_alloc.dir/initial.cpp.o"
  "CMakeFiles/cloudalloc_alloc.dir/initial.cpp.o.d"
  "CMakeFiles/cloudalloc_alloc.dir/move_engine.cpp.o"
  "CMakeFiles/cloudalloc_alloc.dir/move_engine.cpp.o.d"
  "CMakeFiles/cloudalloc_alloc.dir/reassign.cpp.o"
  "CMakeFiles/cloudalloc_alloc.dir/reassign.cpp.o.d"
  "CMakeFiles/cloudalloc_alloc.dir/server_power.cpp.o"
  "CMakeFiles/cloudalloc_alloc.dir/server_power.cpp.o.d"
  "CMakeFiles/cloudalloc_alloc.dir/share_policy.cpp.o"
  "CMakeFiles/cloudalloc_alloc.dir/share_policy.cpp.o.d"
  "libcloudalloc_alloc.a"
  "libcloudalloc_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudalloc_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
