file(REMOVE_RECURSE
  "CMakeFiles/tab_model_validation.dir/tab_model_validation.cpp.o"
  "CMakeFiles/tab_model_validation.dir/tab_model_validation.cpp.o.d"
  "tab_model_validation"
  "tab_model_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_model_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
