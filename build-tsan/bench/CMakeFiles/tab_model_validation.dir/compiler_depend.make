# Empty compiler generated dependencies file for tab_model_validation.
# This may be replaced when dependencies are built.
