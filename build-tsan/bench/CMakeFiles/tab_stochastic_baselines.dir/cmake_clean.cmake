file(REMOVE_RECURSE
  "CMakeFiles/tab_stochastic_baselines.dir/tab_stochastic_baselines.cpp.o"
  "CMakeFiles/tab_stochastic_baselines.dir/tab_stochastic_baselines.cpp.o.d"
  "tab_stochastic_baselines"
  "tab_stochastic_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_stochastic_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
