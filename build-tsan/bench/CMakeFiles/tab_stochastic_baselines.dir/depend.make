# Empty dependencies file for tab_stochastic_baselines.
# This may be replaced when dependencies are built.
