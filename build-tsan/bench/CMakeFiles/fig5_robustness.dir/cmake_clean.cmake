file(REMOVE_RECURSE
  "CMakeFiles/fig5_robustness.dir/fig5_robustness.cpp.o"
  "CMakeFiles/fig5_robustness.dir/fig5_robustness.cpp.o.d"
  "fig5_robustness"
  "fig5_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
