# Empty dependencies file for fig5_robustness.
# This may be replaced when dependencies are built.
