# Empty dependencies file for fig4_profit_vs_clients.
# This may be replaced when dependencies are built.
