file(REMOVE_RECURSE
  "CMakeFiles/fig4_profit_vs_clients.dir/fig4_profit_vs_clients.cpp.o"
  "CMakeFiles/fig4_profit_vs_clients.dir/fig4_profit_vs_clients.cpp.o.d"
  "fig4_profit_vs_clients"
  "fig4_profit_vs_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_profit_vs_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
