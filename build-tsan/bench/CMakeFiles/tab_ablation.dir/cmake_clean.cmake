file(REMOVE_RECURSE
  "CMakeFiles/tab_ablation.dir/tab_ablation.cpp.o"
  "CMakeFiles/tab_ablation.dir/tab_ablation.cpp.o.d"
  "tab_ablation"
  "tab_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
