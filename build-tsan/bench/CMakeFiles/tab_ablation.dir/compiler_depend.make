# Empty compiler generated dependencies file for tab_ablation.
# This may be replaced when dependencies are built.
