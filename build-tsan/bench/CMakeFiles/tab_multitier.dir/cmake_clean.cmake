file(REMOVE_RECURSE
  "CMakeFiles/tab_multitier.dir/tab_multitier.cpp.o"
  "CMakeFiles/tab_multitier.dir/tab_multitier.cpp.o.d"
  "tab_multitier"
  "tab_multitier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_multitier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
