# Empty dependencies file for tab_multitier.
# This may be replaced when dependencies are built.
