# Empty dependencies file for tab_distributed_speedup.
# This may be replaced when dependencies are built.
