file(REMOVE_RECURSE
  "CMakeFiles/tab_distributed_speedup.dir/tab_distributed_speedup.cpp.o"
  "CMakeFiles/tab_distributed_speedup.dir/tab_distributed_speedup.cpp.o.d"
  "tab_distributed_speedup"
  "tab_distributed_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_distributed_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
