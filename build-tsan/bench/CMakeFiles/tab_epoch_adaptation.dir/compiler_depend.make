# Empty compiler generated dependencies file for tab_epoch_adaptation.
# This may be replaced when dependencies are built.
