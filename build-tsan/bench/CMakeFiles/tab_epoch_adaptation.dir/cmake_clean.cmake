file(REMOVE_RECURSE
  "CMakeFiles/tab_epoch_adaptation.dir/tab_epoch_adaptation.cpp.o"
  "CMakeFiles/tab_epoch_adaptation.dir/tab_epoch_adaptation.cpp.o.d"
  "tab_epoch_adaptation"
  "tab_epoch_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_epoch_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
