file(REMOVE_RECURSE
  "CMakeFiles/tab_scalability.dir/tab_scalability.cpp.o"
  "CMakeFiles/tab_scalability.dir/tab_scalability.cpp.o.d"
  "tab_scalability"
  "tab_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
