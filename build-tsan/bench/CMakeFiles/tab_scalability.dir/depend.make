# Empty dependencies file for tab_scalability.
# This may be replaced when dependencies are built.
