# Empty dependencies file for tab_dispatch_robustness.
# This may be replaced when dependencies are built.
