file(REMOVE_RECURSE
  "CMakeFiles/tab_dispatch_robustness.dir/tab_dispatch_robustness.cpp.o"
  "CMakeFiles/tab_dispatch_robustness.dir/tab_dispatch_robustness.cpp.o.d"
  "tab_dispatch_robustness"
  "tab_dispatch_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_dispatch_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
