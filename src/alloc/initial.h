// Initial-solution construction (Section V-A): randomized-order greedy
// insertion, repeated num_initial_solutions times, keeping the best.
// Also provides build_from_assignment, the shared "decode a cluster
// assignment vector into a full allocation" used by the Monte-Carlo,
// SA and GA baselines.
#pragma once

#include <vector>

#include "alloc/assign_distribute.h"
#include "common/rng.h"
#include "dist/parallel_eval.h"
#include "model/allocation.h"

namespace cloudalloc::alloc {

/// One greedy pass: clients in `order` are inserted one at a time into the
/// cluster with the best Assign_Distribute score. Clients that fit nowhere
/// are left unassigned. Starts from `base` (which carries background load
/// and possibly earlier epochs' state).
model::Allocation greedy_insert(const model::Allocation& base,
                                const std::vector<model::ClientId>& order,
                                const AllocatorOptions& opts);

/// The paper's multi-start initial solution: `opts.num_initial_solutions`
/// random client orders, best profit wins. All orders are drawn from `rng`
/// up front (in start order), making every greedy start an independent
/// pure task that can run concurrently on `eval`; the argmax reduction
/// (highest profit, lowest start index on ties) is then bit-identical at
/// any thread count, and identical to the historical sequential loop.
model::Allocation build_initial_solution(const model::Cloud& cloud,
                                         const AllocatorOptions& opts,
                                         Rng& rng,
                                         const dist::ParallelEval& eval = {});

/// Decodes a fixed client->cluster map (assignment[i] = cluster of client
/// i, or kNoCluster to skip) into an allocation by inserting clients in
/// index order. Infeasible clients are left unassigned.
model::Allocation build_from_assignment(
    const model::Cloud& cloud, const std::vector<model::ClusterId>& assignment,
    const AllocatorOptions& opts);

}  // namespace cloudalloc::alloc
