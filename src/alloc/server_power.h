// TurnON_servers / TurnOFF_servers (Section V-B-2): the integer moves of
// the local search, trading utility improvements against server operation
// cost.
//
// TurnON: for each server class with an inactive unit in the cluster, one
// candidate server is provisionally opened; degraded clients "bid" by
// re-running their full insertion with the candidate available, with the
// fixed cost P0 treated as sunk during bidding (the paper's decomposition)
// and charged at the commit gate: the whole bundle is kept only if true
// profit improved.
//
// TurnOFF: active servers are ranked by their approximated utility
// contribution, lowest first; each candidate's clients are evicted and
// re-inserted over the remaining *active* servers of the cluster, and the
// shutdown is committed only if true profit improved.
#pragma once

#include "alloc/options.h"
#include "model/alloc_state.h"
#include "model/allocation.h"

namespace cloudalloc::alloc {

/// One TurnON pass over cluster k. Returns the realized profit delta.
double turn_on_servers(model::Allocation& alloc, model::ClusterId k,
                       const AllocatorOptions& opts);
double turn_on_servers(model::AllocState& state, model::ClusterId k,
                       const AllocatorOptions& opts);

/// One TurnOFF pass over cluster k. Returns the realized profit delta.
double turn_off_servers(model::Allocation& alloc, model::ClusterId k,
                        const AllocatorOptions& opts);
double turn_off_servers(model::AllocState& state, model::ClusterId k,
                        const AllocatorOptions& opts);

/// Runs both passes over every cluster; returns the total delta.
double adjust_server_power(model::Allocation& alloc,
                           const AllocatorOptions& opts);
double adjust_server_power(model::AllocState& state,
                           const AllocatorOptions& opts);

}  // namespace cloudalloc::alloc
