// Adjust_ResourceShares (Section V-B-1): per-server convex reallocation of
// GPS shares with dispersion rates frozen. For each resource (processing,
// communication) the shares of all slices on the server are re-balanced by
// the KKT water-filling solver; the paper shows the minimization form is
// convex, so the closed form + bisection is exact for the linearized
// utility. Applied only when it does not decrease the true (clipped)
// profit, which keeps the outer local search monotone.
#pragma once

#include "alloc/options.h"
#include "model/alloc_state.h"
#include "model/allocation.h"

namespace cloudalloc::alloc {

/// Re-balances both resources' shares on server j. Returns the profit
/// delta actually realized (0 when the step was skipped or reverted).
double adjust_resource_shares(model::Allocation& alloc, model::ServerId j,
                              const AllocatorOptions& opts);
double adjust_resource_shares(model::AllocState& state, model::ServerId j,
                              const AllocatorOptions& opts);

/// Runs adjust_resource_shares over every active server; returns the total
/// realized profit delta.
double adjust_all_shares(model::Allocation& alloc,
                         const AllocatorOptions& opts);
double adjust_all_shares(model::AllocState& state,
                         const AllocatorOptions& opts);

}  // namespace cloudalloc::alloc
