#include "alloc/adjust_dispersion.h"

#include <cmath>
#include <vector>

#include "alloc/delta_price.h"
#include "common/check.h"
#include "common/mathutil.h"
#include "model/alloc_state.h"
#include "opt/dispersion.h"
#include "queueing/gps.h"

namespace cloudalloc::alloc {
namespace {

using model::AllocState;
using model::Allocation;
using model::Client;
using model::ClientId;
using model::Placement;

/// psi below this after re-optimization drops the slice entirely.
constexpr double kDropThreshold = 1e-4;

}  // namespace

double adjust_dispersion_rates(AllocState& state, ClientId i,
                               const AllocatorOptions& opts) {
  const Allocation& ledger = state.ledger();
  if (!ledger.is_assigned(i)) return 0.0;
  const auto& cloud = state.cloud();
  const Client& c = cloud.client(i);
  const std::vector<Placement> current = ledger.placements(i);
  if (current.size() < 2) return 0.0;  // nothing to re-split

  const double before = state.profit();
  const double r_now = ledger.response_time(i);
  const double slope = std::isfinite(r_now) ? cloud.utility_of(i).slope(r_now)
                                            : cloud.utility_of(i).slope(0.0);
  const double delay_weight = slope * c.lambda_agreed;

  std::vector<opt::DispersionItem> items;
  items.reserve(current.size());
  for (const Placement& p : current) {
    const auto& sc = cloud.server_class_of(p.server);
    opt::DispersionItem it;
    it.mu_p = queueing::gps_service_rate(units::Share{p.phi_p},
                                         units::WorkRate{sc.cap_p},
                                         units::Work{c.alpha_p})
                  .value();
    it.mu_n = queueing::gps_service_rate(units::Share{p.phi_n},
                                         units::WorkRate{sc.cap_n},
                                         units::Work{c.alpha_n})
                  .value();
    it.lin_cost = sc.cost_per_util * c.lambda_pred * c.alpha_p / sc.cap_p;
    // Stability cap with headroom, against the slower stage.
    const double mu_min = std::min(it.mu_p, it.mu_n);
    it.cap = clamp((mu_min - opts.stability_headroom) / c.lambda_pred, 0.0,
                   1.0);
    items.push_back(it);
  }

  const auto sol = opt::solve_dispersion(items, c.lambda_pred, delay_weight);
  if (!sol) return 0.0;

  std::vector<Placement> next;
  double psi_sum = 0.0;
  for (std::size_t idx = 0; idx < current.size(); ++idx) {
    if (sol->psi[idx] < kDropThreshold) continue;
    Placement p = current[idx];
    p.psi = sol->psi[idx];
    psi_sum += p.psi;
    next.push_back(p);
  }
  if (next.empty() || !near(psi_sum, 1.0, 1e-3)) return 0.0;
  // Renormalize the rounding left by dropped slices.
  for (Placement& p : next) p.psi /= psi_sum;

  // A re-split redirects psi between the client's servers — under
  // migration pricing the improvement must cover the redirected traffic.
  const double penalty = migration_penalty(opts, current, next);
  state.assign(i, ledger.cluster_of(i), next);
  const double after = state.profit();
  if (after + 1e-12 < before + penalty) {
    state.assign(i, ledger.cluster_of(i), current);
    return 0.0;
  }
  return after - before;
}

double adjust_all_dispersions(AllocState& state, const AllocatorOptions& opts) {
  double delta = 0.0;
  for (ClientId i : state.cloud().client_ids())
    delta += adjust_dispersion_rates(state, i, opts);
  return delta;
}

double adjust_dispersion_rates(Allocation& alloc, ClientId i,
                               const AllocatorOptions& opts) {
  AllocState state(std::move(alloc));
  const double delta = adjust_dispersion_rates(state, i, opts);
  alloc = std::move(state).release();
  return delta;
}

double adjust_all_dispersions(Allocation& alloc,
                              const AllocatorOptions& opts) {
  AllocState state(std::move(alloc));
  const double delta = adjust_all_dispersions(state, opts);
  alloc = std::move(state).release();
  return delta;
}

}  // namespace cloudalloc::alloc
