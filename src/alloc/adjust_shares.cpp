#include "alloc/adjust_shares.h"

#include <cmath>
#include <utility>
#include <vector>

#include "alloc/share_policy.h"
#include "common/check.h"
#include "common/mathutil.h"
#include "model/alloc_state.h"
#include "opt/kkt_shares.h"
#include "queueing/gps.h"

namespace cloudalloc::alloc {
namespace {

using model::AllocState;
using model::Allocation;
using model::Client;
using model::ClientId;
using model::Placement;
using model::ServerClass;
using model::ServerId;

/// Finds the index of client i's placement on server j.
std::size_t placement_index(const Allocation& alloc, ClientId i, ServerId j) {
  const auto& ps = alloc.placements(i);
  for (std::size_t idx = 0; idx < ps.size(); ++idx)
    if (ps[idx].server == j) return idx;
  CHECK_MSG(false, "client has no placement on server");
  return 0;
}

}  // namespace

double adjust_resource_shares(AllocState& state, ServerId j,
                              const AllocatorOptions& opts) {
  const auto& cloud = state.cloud();
  const Allocation& ledger = state.ledger();
  const ServerClass& sc = cloud.server_class_of(j);
  const std::vector<ClientId> clients = ledger.clients_on(j);  // copy
  if (clients.empty()) return 0.0;

  // Profit-affecting state before the move (only this server's clients and
  // this server's cost can change).
  const double before = state.profit();

  // Budgets exclude background reservations.
  const double budget_p =
      1.0 - cloud.server(j).background.phi_p;
  const double budget_n =
      1.0 - cloud.server(j).background.phi_n;

  const ShareSizing sizing = ShareSizing::from(cloud);
  std::vector<opt::ShareItem> items_p, items_n;
  items_p.reserve(clients.size());
  items_n.reserve(clients.size());
  for (ClientId i : clients) {
    const Client& c = cloud.client(i);
    const Placement& p =
        ledger.placements(i)[placement_index(ledger, i, j)];
    // Weight by the slope at the origin (the paper's linear form): using
    // the local slope would zero out clients currently past their
    // zero-crossing and make them unrecoverable.
    const double slope = cloud.utility_of(i).slope(0.0);
    const units::Time zc{cloud.utility_of(i).zero_crossing()};
    const double w = slope * c.lambda_agreed * p.psi;
    const units::ArrivalRate load{p.psi * c.lambda_pred};

    // Ceilings follow the share policy so rebalancing cannot freeze the
    // whole server at 100% and block future client moves.
    opt::ShareItem ip;
    ip.weight = w;
    ip.rate_factor = sc.cap_p / c.alpha_p;
    ip.load = load.value();
    ip.lo = queueing::gps_min_share(load, units::WorkRate{sc.cap_p},
                                    units::Work{c.alpha_p},
                                    units::ArrivalRate{opts.stability_headroom})
                .value();
    ip.hi = clamp(share_cap(load, p.psi, units::WorkRate{sc.cap_p},
                            units::Work{c.alpha_p}, zc, sizing.slack_work_p,
                            opts)
                      .value(),
                  ip.lo, budget_p);
    items_p.push_back(ip);

    opt::ShareItem in;
    in.weight = w;
    in.rate_factor = sc.cap_n / c.alpha_n;
    in.load = load.value();
    in.lo = queueing::gps_min_share(load, units::WorkRate{sc.cap_n},
                                    units::Work{c.alpha_n},
                                    units::ArrivalRate{opts.stability_headroom})
                .value();
    in.hi = clamp(share_cap(load, p.psi, units::WorkRate{sc.cap_n},
                            units::Work{c.alpha_n}, zc, sizing.slack_work_n,
                            opts)
                      .value(),
                  in.lo, budget_n);
    items_n.push_back(in);
  }

  const auto sol_p = opt::solve_shares(items_p, budget_p);
  const auto sol_n = opt::solve_shares(items_n, budget_n);
  if (!sol_p || !sol_n) return 0.0;  // floors do not fit; keep current shares

  // Apply unconditionally: this is the exact optimum of the linearized
  // convex subproblem under the policy ceilings. It may momentarily lower
  // clipped profit (shares shrink toward their caps), but the freed
  // capacity is what lets reassignment serve waiting clients — the outer
  // loop keeps the best allocation it has seen.
  for (std::size_t idx = 0; idx < clients.size(); ++idx) {
    const ClientId i = clients[idx];
    std::vector<Placement> ps = ledger.placements(i);
    Placement& mine = ps[placement_index(ledger, i, j)];
    mine.phi_p = sol_p->phi[idx];
    mine.phi_n = sol_n->phi[idx];
    state.assign(i, ledger.cluster_of(i), std::move(ps));
  }
  return state.profit() - before;
}

double adjust_all_shares(AllocState& state, const AllocatorOptions& opts) {
  double delta = 0.0;
  for (ServerId j : state.cloud().server_ids())
    if (state.ledger().active(j))
      delta += adjust_resource_shares(state, j, opts);
  return delta;
}

double adjust_resource_shares(Allocation& alloc, ServerId j,
                              const AllocatorOptions& opts) {
  AllocState state(std::move(alloc));
  const double delta = adjust_resource_shares(state, j, opts);
  alloc = std::move(state).release();
  return delta;
}

double adjust_all_shares(Allocation& alloc, const AllocatorOptions& opts) {
  AllocState state(std::move(alloc));
  const double delta = adjust_all_shares(state, opts);
  alloc = std::move(state).release();
  return delta;
}

}  // namespace cloudalloc::alloc
