// ViewScratchPool: reusable ResidualView scratch copies for the snapshot
// fan-outs (sharded pricing, snapshot reassign).
//
// The dominant allocation traffic at 100k clients used to be the per-chunk
// `ResidualView scratch = frozen;` copy: reassign_pass_snapshot prices in
// chunks of 16 clients, which meant ~n/16 full copies of thirteen
// server-length arrays per pass. The pool replaces that with a small set
// of long-lived slots, each refreshed at most once per frozen snapshot:
//
//   - Every settle point (once per block / per pass) draws a fresh stamp.
//   - acquire() hands out a free slot. If the slot's stamp matches, its
//     contents are already bitwise-equal to `frozen` — chunks mutate the
//     scratch only via remove/restore pairs, and restore is bitwise-exact
//     — so no copy happens at all. On mismatch the slot is refreshed via
//     ResidualView::operator=, which keeps vector capacity (including the
//     candidate-index bucket vectors), so steady state allocates nothing.
//
// Determinism: plans are pure functions of the frozen snapshot's residual
// values (the lazy candidate index caches ordering work, never answers —
// see residual.h), and every slot holds a bitwise-equal copy of the same
// snapshot, so WHICH slot a chunk gets — and whether it was recycled —
// cannot change a single plan bit at any worker count.
//
// Exception safety: a throw mid-probe can leave a lease's scratch between
// a remove and its restore. The lease detects unwinding and poisons the
// slot (stamp 0), forcing a recopy on next acquire.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <optional>
#include <vector>

#include "common/sync.h"
#include "model/residual.h"

namespace cloudalloc::alloc {

class ViewScratchPool {
 public:
  class Lease {
   public:
    Lease(ViewScratchPool* pool, std::size_t index, model::ResidualView* view)
        : pool_(pool),
          index_(index),
          view_(view),
          unwind_depth_(std::uncaught_exceptions()) {}
    ~Lease() {
      if (pool_ == nullptr) return;
      pool_->release(index_, std::uncaught_exceptions() > unwind_depth_);
    }
    Lease(Lease&& other) noexcept
        : pool_(other.pool_),
          index_(other.index_),
          view_(other.view_),
          unwind_depth_(other.unwind_depth_) {
      other.pool_ = nullptr;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;

    model::ResidualView& view() { return *view_; }

   private:
    ViewScratchPool* pool_;
    std::size_t index_;
    model::ResidualView* view_;
    int unwind_depth_;
  };

  /// Hands out a scratch copy of `frozen` for the snapshot epoch `stamp`
  /// (from next_stamp()). Recycles a stamp-matching slot without copying
  /// when one is free; otherwise refreshes (or creates) a slot. The
  /// refresh copy runs outside the pool lock, so concurrent acquires
  /// never serialize on each other's copies.
  Lease acquire(const model::ResidualView& frozen, std::uint64_t stamp) {
    Slot* slot = nullptr;
    std::size_t index = 0;
    bool fresh = false;
    {
      sync::MutexLock lock(mutex_);
      // Prefer a slot already holding this snapshot (zero-copy path).
      for (std::size_t s = 0; s < slots_.size(); ++s) {
        if (!slots_[s]->in_use && slots_[s]->stamp == stamp) {
          slot = slots_[s].get();
          index = s;
          break;
        }
      }
      if (slot == nullptr) {
        for (std::size_t s = 0; s < slots_.size(); ++s) {
          if (!slots_[s]->in_use) {
            slot = slots_[s].get();
            index = s;
            break;
          }
        }
      }
      if (slot == nullptr) {
        slots_.push_back(std::make_unique<Slot>());
        slot = slots_.back().get();
        index = slots_.size() - 1;
      }
      slot->in_use = true;
      fresh = slot->stamp != stamp;
      slot->stamp = stamp;
    }
    if (fresh) {
      if (slot->view.has_value()) {
        *slot->view = frozen;  // capacity-preserving refresh
      } else {
        slot->view.emplace(frozen);
      }
    }
    return Lease(this, index, &*slot->view);
  }

  /// Process-wide pool. Slot count converges to the peak number of
  /// concurrently probing workers; memory is reclaimed at process exit.
  static ViewScratchPool& instance() {
    static ViewScratchPool pool;
    return pool;
  }

  /// Fresh snapshot-epoch stamp. Never returns 0 (the poisoned value).
  static std::uint64_t next_stamp() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }

 private:
  struct Slot {
    std::optional<model::ResidualView> view;
    std::uint64_t stamp = 0;  ///< 0 = empty or poisoned
    bool in_use = false;
  };

  void release(std::size_t index, bool poison) {
    sync::MutexLock lock(mutex_);
    if (poison) slots_[index]->stamp = 0;
    slots_[index]->in_use = false;
  }

  sync::Mutex mutex_;
  /// Slot headers (stamp/in_use) are mutated only under mutex_; the view
  /// payload of an acquired slot is deliberately refreshed OUTSIDE the
  /// lock (in_use marks exclusive ownership), which is why the guard sits
  /// on the vector, not inside Slot.
  std::vector<std::unique_ptr<Slot>> slots_ GUARDED_BY(mutex_);
};

}  // namespace cloudalloc::alloc
