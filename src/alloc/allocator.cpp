#include "alloc/allocator.h"

#include <chrono>
#include <cmath>
#include <memory>

#include "alloc/adjust_dispersion.h"
#include "alloc/adjust_shares.h"
#include "alloc/initial.h"
#include "alloc/reassign.h"
#include "alloc/server_power.h"
#include "common/log.h"
#include "common/prof.h"
#include "common/rng.h"
#include "model/alloc_state.h"
#include "dist/parallel_eval.h"
#include "dist/thread_pool.h"

namespace cloudalloc::alloc {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Pool for the parallel evaluation engine; null when one worker suffices
/// (ParallelEval then runs everything inline — same results either way).
/// The pool is the process-wide shared one: online epochs and repeated
/// solves reuse warm workers instead of spawning and joining threads per
/// call.
dist::ThreadPool* make_pool(const AllocatorOptions& options) {
  const int workers = dist::resolve_workers(options.num_threads);
  if (workers <= 1) return nullptr;
  return &dist::ThreadPool::shared(workers);
}

}  // namespace

ResourceAllocator::ResourceAllocator(AllocatorOptions options)
    : options_(options) {}

AllocatorResult ResourceAllocator::run(const model::Cloud& cloud) const {
  Rng rng(options_.seed);
  dist::ThreadPool* pool = make_pool(options_);
  const dist::ParallelEval eval(pool);
  model::Allocation initial = [&] {
    PROF_ZONE("alloc.initial");
    return build_initial_solution(cloud, options_, rng, eval);
  }();
  model::AllocState state(std::move(initial));
  AllocatorReport report = improve_state_impl(state, state.profit());
  return AllocatorResult{std::move(state).release(), std::move(report)};
}

AllocatorResult ResourceAllocator::improve(model::Allocation initial) const {
  model::AllocState state(std::move(initial));
  AllocatorReport report = improve_state_impl(state, state.profit());
  return AllocatorResult{std::move(state).release(), std::move(report)};
}

AllocatorReport ResourceAllocator::improve_state(
    model::AllocState& state) const {
  return improve_state_impl(state, state.profit());
}

AllocatorReport ResourceAllocator::improve_state_impl(
    model::AllocState& state, double initial_profit) const {
  const auto start = Clock::now();
  dist::ThreadPool* pool = make_pool(options_);
  const dist::ParallelEval eval(pool);
  AllocatorReport report;
  report.initial_profit = initial_profit;

  // The epoch deadline is checked between passes, not just per round: one
  // long round must not blow the budget the predictions were made for.
  const auto over_budget = [&] {
    return options_.time_budget_ms > 0.0 &&
           seconds_since(start) * 1000.0 >= options_.time_budget_ms;
  };

  // One engine for the whole local search: every phase mutates the
  // caller's ledger+view pair, and the best round survives as a placement
  // checkpoint (no Allocation clones anywhere in the loop).
  // The share rebalance is applied unconditionally (see adjust_shares.cpp),
  // so a round can transiently dip; keep the best state ever seen.
  model::AllocState::Checkpoint best = state.checkpoint(initial_profit);
  double best_profit = initial_profit;
  double profit_now = initial_profit;
  int stalled_rounds = 0;
  for (int round = 0; round < options_.max_local_search_rounds; ++round) {
    RoundTrace trace;
    trace.round = round;
    if (options_.enable_adjust_shares) {
      PROF_ZONE("alloc.adjust_shares");
      trace.delta_shares = adjust_all_shares(state, options_);
      state.debug_check_invariants();
      trace.truncated = over_budget();
    }
    if (!trace.truncated && options_.enable_adjust_dispersion) {
      PROF_ZONE("alloc.adjust_dispersion");
      trace.delta_dispersion = adjust_all_dispersions(state, options_);
      state.debug_check_invariants();
      trace.truncated = over_budget();
    }
    if (!trace.truncated) {
      PROF_ZONE("alloc.server_power");
      trace.delta_power = adjust_server_power(state, options_);
      state.debug_check_invariants();
      trace.truncated = over_budget();
    }
    if (!trace.truncated && options_.enable_reassign) {
      PROF_ZONE("alloc.reassign");
      trace.delta_reassign = reassign_pass_snapshot(state, options_, eval);
      state.debug_check_invariants();
      trace.truncated = over_budget();
    }
    if (!trace.truncated && options_.allow_rejection) {
      PROF_ZONE("alloc.drop_unprofitable");
      trace.delta_reassign += drop_unprofitable_clients(state, options_);
      state.debug_check_invariants();
      trace.truncated = over_budget();
    }

    const double profit_after = state.profit();
    trace.profit_after = profit_after;
    report.rounds.push_back(trace);
    report.rounds_run = round + 1;
    const double significant =
        options_.steady_tolerance * std::max(std::fabs(best_profit), 1.0);
    if (profit_after > best_profit + significant) {
      stalled_rounds = 0;
    } else {
      ++stalled_rounds;
    }
    if (profit_after > best_profit) {
      best_profit = profit_after;
      best = state.checkpoint(profit_after);
    }

    if (options_.verbose)
      CLOG(kInfo) << "round " << round << ": profit " << profit_after
                  << " (gain " << profit_after - profit_now << ")"
                  << (trace.truncated ? " [truncated: epoch deadline]" : "");
    profit_now = profit_after;
    if (trace.truncated) break;  // epoch deadline
    // Rounds can dip (unconditional share rebalance) before a later round
    // recovers more; stop only after two rounds without a new best.
    if (stalled_rounds >= 2) break;
  }

  // Materialize the best checkpoint once, at the report boundary, and
  // leave the engine holding it (warm starts keep improving from here).
  // The reported profit is the carried best-round scalar, exactly as
  // before.
  state.adopt(model::AllocState(state.materialize(best)));
  report.final_profit = best_profit;
  report.active_servers = state.ledger().num_active_servers();
  for (model::ClientId i : state.cloud().client_ids())
    if (!state.ledger().is_assigned(i)) ++report.unassigned_clients;
  report.wall_seconds = seconds_since(start);
  return report;
}

}  // namespace cloudalloc::alloc
