#include "alloc/reassign.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <vector>

#include "alloc/assign_distribute.h"
#include "common/check.h"
#include "common/mathutil.h"
#include "model/evaluator.h"

namespace cloudalloc::alloc {

using model::Allocation;
using model::ClientId;
using model::ClusterId;

double reassign_pass(Allocation& alloc, const AllocatorOptions& opts) {
  const auto& cloud = alloc.cloud();
  std::vector<ClientId> order(static_cast<std::size_t>(cloud.num_clients()));
  std::iota(order.begin(), order.end(), 0);
  // Worst-served first (unassigned clients sort to the front: R = +inf).
  std::sort(order.begin(), order.end(), [&](ClientId a, ClientId b) {
    return alloc.response_time(a) > alloc.response_time(b);
  });

  double delta = 0.0;
  for (ClientId i : order) {
    const double before = model::profit(alloc);
    const bool was_assigned = alloc.is_assigned(i);
    const ClusterId old_cluster =
        was_assigned ? alloc.cluster_of(i) : model::kNoCluster;
    const std::vector<model::Placement> old_placements =
        was_assigned ? alloc.placements(i) : std::vector<model::Placement>{};

    if (was_assigned) alloc.clear(i);
    auto plan = best_insertion(alloc, i, opts);
    if (!plan) {
      if (was_assigned) alloc.assign(i, old_cluster, old_placements);
      continue;
    }
    alloc.assign(i, plan->cluster, std::move(plan->placements));
    const double after = model::profit(alloc);
    if (after + 1e-12 < before) {
      alloc.clear(i);
      if (was_assigned) alloc.assign(i, old_cluster, old_placements);
      continue;
    }
    delta += after - before;
  }
  return delta;
}

double reassign_pass_snapshot(Allocation& alloc, const AllocatorOptions& opts,
                              const dist::ParallelEval& eval) {
  const auto& cloud = alloc.cloud();
  const int n = cloud.num_clients();
  if (n == 0) return 0.0;
  std::vector<ClientId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  // Worst-served first (unassigned clients sort to the front: R = +inf);
  // stable so equal response times keep client-id order at any thread
  // count and across standard libraries.
  std::stable_sort(order.begin(), order.end(), [&](ClientId a, ClientId b) {
    return alloc.response_time(a) > alloc.response_time(b);
  });

  // Phase 1: price every client's best move against a frozen snapshot.
  // Each chunk works on a private clone and restores it after probing a
  // client, so every plan depends only on the snapshot — not on chunk
  // boundaries or scheduling. Chunk size is fixed (never derived from the
  // worker count) for the same reason.
  model::Allocation snapshot = alloc.clone();
  (void)model::profit(snapshot);  // settle caches: clones become pure reads
  CHECK(snapshot.profit_settled());
  constexpr int kChunk = 16;
  std::vector<std::optional<InsertionPlan>> plans(static_cast<std::size_t>(n));
  eval.for_chunks(n, kChunk, [&](int begin, int end) {
    model::Allocation scratch = snapshot.clone();
    for (int idx = begin; idx < end; ++idx) {
      const ClientId i = order[static_cast<std::size_t>(idx)];
      const bool was_assigned = scratch.is_assigned(i);
      const ClusterId old_cluster =
          was_assigned ? scratch.cluster_of(i) : model::kNoCluster;
      const std::vector<model::Placement> old_placements =
          was_assigned ? scratch.placements(i)
                       : std::vector<model::Placement>{};
      if (was_assigned) scratch.clear(i);
      plans[static_cast<std::size_t>(idx)] = best_insertion(scratch, i, opts);
      if (was_assigned) scratch.assign(i, old_cluster, old_placements);
    }
  });

  // Phase 2: apply sequentially in the fixed order. Earlier winners may
  // have consumed the capacity a snapshot plan assumed, so re-validate the
  // fit and fall back to a live re-price when it no longer holds.
  const auto fits = [&](ClientId i, const InsertionPlan& plan) {
    constexpr double kSlack = 1e-9;
    const double disk = cloud.client(i).disk;
    for (const model::Placement& p : plan.placements) {
      if (p.phi_p > alloc.free_phi_p(p.server) + kSlack) return false;
      if (p.phi_n > alloc.free_phi_n(p.server) + kSlack) return false;
      if (disk > alloc.free_disk(p.server) + kSlack) return false;
    }
    return true;
  };

  double delta = 0.0;
  for (int idx = 0; idx < n; ++idx) {
    if (!plans[static_cast<std::size_t>(idx)]) continue;
    const ClientId i = order[static_cast<std::size_t>(idx)];
    const double before = model::profit(alloc);
    const bool was_assigned = alloc.is_assigned(i);
    const ClusterId old_cluster =
        was_assigned ? alloc.cluster_of(i) : model::kNoCluster;
    const std::vector<model::Placement> old_placements =
        was_assigned ? alloc.placements(i) : std::vector<model::Placement>{};

    if (was_assigned) alloc.clear(i);
    std::optional<InsertionPlan> plan = plans[static_cast<std::size_t>(idx)];
    if (!fits(i, *plan)) plan = best_insertion(alloc, i, opts);
    if (!plan) {
      if (was_assigned) alloc.assign(i, old_cluster, old_placements);
      continue;
    }
    alloc.assign(i, plan->cluster, std::move(plan->placements));
    const double after = model::profit(alloc);
    if (after + 1e-12 < before) {
      alloc.clear(i);
      if (was_assigned) alloc.assign(i, old_cluster, old_placements);
      continue;
    }
    delta += after - before;
  }
  return delta;
}

double drop_unprofitable_clients(Allocation& alloc,
                                 const AllocatorOptions& opts) {
  if (!opts.allow_rejection) return 0.0;
  double delta = 0.0;
  for (ClientId i = 0; i < alloc.cloud().num_clients(); ++i) {
    if (!alloc.is_assigned(i)) continue;
    const double before = model::profit(alloc);
    const ClusterId k = alloc.cluster_of(i);
    const std::vector<model::Placement> saved = alloc.placements(i);
    alloc.clear(i);
    const double after = model::profit(alloc);
    if (after > before + 1e-12) {
      delta += after - before;
    } else {
      alloc.assign(i, k, saved);
    }
  }
  return delta;
}

double reassign_until_steady(Allocation& alloc, const AllocatorOptions& opts,
                             int max_rounds) {
  double total = 0.0;
  for (int round = 0; round < max_rounds; ++round) {
    const double base = std::fabs(model::profit(alloc));
    const double delta = reassign_pass(alloc, opts);
    total += delta;
    if (delta <= opts.steady_tolerance * std::max(base, 1.0)) break;
  }
  return total;
}

}  // namespace cloudalloc::alloc
