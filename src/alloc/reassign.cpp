#include "alloc/reassign.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <vector>

#include "alloc/assign_distribute.h"
#include "alloc/delta_price.h"
#include "common/check.h"
#include "common/mathutil.h"
#include "model/evaluator.h"
#include "model/residual.h"

namespace cloudalloc::alloc {

using model::Allocation;
using model::ClientId;
using model::ClusterId;
using model::ResidualView;

namespace {

/// Moves whose delta-priced profit change is below this are rejected
/// without touching the Allocation. The screen is three orders of
/// magnitude wider than the exact commit test's 1e-12, and the predicted
/// delta agrees with the exact one to rounding of the full-profit
/// magnitude, so the screen only drops moves the exact test would reject
/// anyway; borderline moves still go through commit/rollback.
constexpr double kPredictReject = 1e-9;

/// Applies `plan` to client i with the exact-profit accept test (commit
/// only if true profit does not regress past 1e-12), rolling the
/// Allocation back otherwise. `profit_now` carries the settled profit
/// across calls so nothing is re-evaluated between moves; `live` is
/// re-synced from the allocation's post-move aggregates either way (a
/// rollback's remove/add round trip drifts them by ulps, so mirroring the
/// ops instead would let the view diverge from the allocation).
bool commit_move(Allocation& alloc, ResidualView& live, ClientId i,
                 bool was_assigned, const InsertionPlan& plan,
                 double& profit_now, double& delta) {
  const ClusterId old_cluster =
      was_assigned ? alloc.cluster_of(i) : model::kNoCluster;
  std::vector<model::Placement> old_placements;  // materialized only here,
  if (was_assigned) {                            // once a move is attempted
    old_placements = alloc.placements(i);
    alloc.clear(i);
  }
  alloc.assign(i, plan.cluster, plan.placements);
  const double after = model::profit(alloc);
  const auto resync = [&](const std::vector<model::Placement>& ps) {
    for (const model::Placement& p : ps) live.resync_server(alloc, p.server);
  };
  if (after + 1e-12 < profit_now) {
    alloc.clear(i);
    if (was_assigned) alloc.assign(i, old_cluster, old_placements);
    // No re-evaluation on rollback: the restored profit equals profit_now
    // up to the round trip's rounding, and the next exact evaluation
    // repairs the caches from the rolled-back state anyway.
    resync(old_placements);
    resync(plan.placements);
    return false;
  }
  delta += after - profit_now;
  profit_now = after;
  resync(old_placements);
  resync(plan.placements);
  return true;
}

}  // namespace

double reassign_pass(Allocation& alloc, const AllocatorOptions& opts) {
  const auto& cloud = alloc.cloud();
  std::vector<ClientId> order(static_cast<std::size_t>(cloud.num_clients()));
  std::iota(order.begin(), order.end(), 0);
  // Worst-served first (unassigned clients sort to the front: R = +inf).
  std::sort(order.begin(), order.end(), [&](ClientId a, ClientId b) {
    return alloc.response_time(a) > alloc.response_time(b);
  });

  // Settle once; from here profit is tracked through commit_move and moves
  // are pre-screened on a delta-priced view, so clients whose probe finds
  // no (worthwhile) move cost zero Allocation churn and zero cache repair.
  double profit_now = model::profit(alloc);
  ResidualView live(alloc);
  ResidualView::Undo undo;

  double delta = 0.0;
  for (ClientId i : order) {
    const bool was_assigned = alloc.is_assigned(i);
    std::optional<InsertionPlan> plan;
    double predicted = 0.0;
    if (was_assigned) {
      const std::vector<model::Placement>& old_ps = alloc.placements(i);
      const double vacate = removal_delta(live, i, old_ps);
      live.remove_client(i, old_ps, &undo);
      plan = best_insertion(live, i, opts);
      if (plan) predicted = vacate + insertion_delta(live, i, plan->placements);
      live.restore(undo);
    } else {
      plan = best_insertion(live, i, opts);
      if (plan) predicted = insertion_delta(live, i, plan->placements);
    }
    if (!plan || predicted < -kPredictReject) continue;
    commit_move(alloc, live, i, was_assigned, *plan, profit_now, delta);
  }
  return delta;
}

double reassign_pass_snapshot(Allocation& alloc, const AllocatorOptions& opts,
                              const dist::ParallelEval& eval) {
  const auto& cloud = alloc.cloud();
  const int n = cloud.num_clients();
  if (n == 0) return 0.0;
  std::vector<ClientId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  // Worst-served first (unassigned clients sort to the front: R = +inf);
  // stable so equal response times keep client-id order at any thread
  // count and across standard libraries.
  std::stable_sort(order.begin(), order.end(), [&](ClientId a, ClientId b) {
    return alloc.response_time(a) > alloc.response_time(b);
  });

  // Phase 1: price every client's best move against a frozen SoA snapshot
  // of the settled allocation. Each chunk copies the flat view (a handful
  // of vector copies — no Allocation::clone anywhere) and probes each
  // client by vacate/probe/restore, so every plan depends only on the
  // snapshot — not on chunk boundaries or scheduling. Chunk size is fixed
  // (never derived from the worker count) for the same reason. The settled
  // allocation itself is only read (placements), which the frozen-snapshot
  // contract allows.
  double profit_now = model::profit(alloc);  // settle: reads become pure
  CHECK(alloc.profit_settled());
  const ResidualView base(alloc);
  constexpr int kChunk = 16;
  std::vector<std::optional<InsertionPlan>> plans(static_cast<std::size_t>(n));
  eval.for_chunks(n, kChunk, [&](int begin, int end) {
    ResidualView scratch = base;
    ResidualView::Undo undo;
    for (int idx = begin; idx < end; ++idx) {
      const ClientId i = order[static_cast<std::size_t>(idx)];
      if (alloc.is_assigned(i)) {
        scratch.remove_client(i, alloc.placements(i), &undo);
        plans[static_cast<std::size_t>(idx)] =
            best_insertion(scratch, i, opts);
        scratch.restore(undo);
      } else {
        plans[static_cast<std::size_t>(idx)] =
            best_insertion(scratch, i, opts);
      }
    }
  });

  // Phase 2: apply sequentially in the fixed order against the live state,
  // mirrored by a view kept bitwise in sync with the allocation. Earlier
  // winners may have consumed the capacity a snapshot plan assumed, so
  // re-validate the fit and fall back to a live re-price when it no longer
  // holds.
  ResidualView live = base;
  ResidualView::Undo undo;
  const auto fits = [&](ClientId i, const InsertionPlan& plan) {
    constexpr double kSlack = 1e-9;
    const double disk = cloud.client(i).disk;
    for (const model::Placement& p : plan.placements) {
      if (p.phi_p > live.free_phi_p(p.server) + kSlack) return false;
      if (p.phi_n > live.free_phi_n(p.server) + kSlack) return false;
      if (disk > live.free_disk(p.server) + kSlack) return false;
    }
    return true;
  };

  double delta = 0.0;
  for (int idx = 0; idx < n; ++idx) {
    if (!plans[static_cast<std::size_t>(idx)]) continue;
    const ClientId i = order[static_cast<std::size_t>(idx)];
    const bool was_assigned = alloc.is_assigned(i);
    std::optional<InsertionPlan> plan =
        std::move(plans[static_cast<std::size_t>(idx)]);
    double predicted = 0.0;
    if (was_assigned) {
      const std::vector<model::Placement>& old_ps = alloc.placements(i);
      const double vacate = removal_delta(live, i, old_ps);
      live.remove_client(i, old_ps, &undo);
      if (!fits(i, *plan)) plan = best_insertion(live, i, opts);
      if (plan) predicted = vacate + insertion_delta(live, i, plan->placements);
      live.restore(undo);
    } else {
      if (!fits(i, *plan)) plan = best_insertion(live, i, opts);
      if (plan) predicted = insertion_delta(live, i, plan->placements);
    }
    if (!plan || predicted < -kPredictReject) continue;
    commit_move(alloc, live, i, was_assigned, *plan, profit_now, delta);
  }
  return delta;
}

double drop_unprofitable_clients(Allocation& alloc,
                                 const AllocatorOptions& opts) {
  if (!opts.allow_rejection) return 0.0;
  double delta = 0.0;
  for (ClientId i = 0; i < alloc.cloud().num_clients(); ++i) {
    if (!alloc.is_assigned(i)) continue;
    const double before = model::profit(alloc);
    const ClusterId k = alloc.cluster_of(i);
    const std::vector<model::Placement> saved = alloc.placements(i);
    alloc.clear(i);
    const double after = model::profit(alloc);
    if (after > before + 1e-12) {
      delta += after - before;
    } else {
      alloc.assign(i, k, saved);
    }
  }
  return delta;
}

double reassign_until_steady(Allocation& alloc, const AllocatorOptions& opts,
                             int max_rounds) {
  double total = 0.0;
  for (int round = 0; round < max_rounds; ++round) {
    const double base = std::fabs(model::profit(alloc));
    const double delta = reassign_pass(alloc, opts);
    total += delta;
    if (delta <= opts.steady_tolerance * std::max(base, 1.0)) break;
  }
  return total;
}

}  // namespace cloudalloc::alloc
