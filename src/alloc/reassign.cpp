#include "alloc/reassign.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <vector>

#include "alloc/assign_distribute.h"
#include "alloc/delta_price.h"
#include "alloc/move_engine.h"
#include "alloc/scratch.h"
#include "common/check.h"
#include "common/mathutil.h"
#include "common/prof.h"
#include "model/alloc_state.h"
#include "model/residual.h"

namespace cloudalloc::alloc {

using model::AllocState;
using model::Allocation;
using model::ClientId;
using model::ClusterId;
using model::ResidualView;

namespace {

/// Moves whose delta-priced profit change is below this are rejected
/// without touching the ledger. The screen is three orders of magnitude
/// wider than the exact commit test's 1e-12, and the predicted delta
/// agrees with the exact one to rounding of the full-profit magnitude, so
/// the screen only drops moves the exact test would reject anyway;
/// borderline moves still go through commit/rollback.
constexpr double kPredictReject = 1e-9;

/// Online-serving insertability (AllocatorOptions::insertable): the retry
/// of unassigned clients must not insert one outside the mask — absent or
/// rejected clients are the serving layer's to admit, not the repair
/// pass's.
bool may_insert(const AllocatorOptions& opts, ClientId i) {
  return opts.insertable == nullptr || (*opts.insertable)[i.index()] != 0;
}

}  // namespace

double reassign_pass(AllocState& state, const AllocatorOptions& opts) {
  const auto& cloud = state.cloud();
  std::vector<ClientId> order;
  order.reserve(static_cast<std::size_t>(cloud.num_clients()));
  for (ClientId i : cloud.client_ids()) order.push_back(i);
  // Worst-served first (unassigned clients sort to the front: R = +inf).
  std::sort(order.begin(), order.end(), [&](ClientId a, ClientId b) {
    return state.ledger().response_time(a) > state.ledger().response_time(b);
  });

  // Settle once; from here profit is tracked through commits and moves are
  // pre-screened on the engine's delta-priced view, so clients whose probe
  // finds no (worthwhile) move cost zero ledger churn and zero cache
  // repair.
  double profit_now = state.profit();
  MoveEngine mover(state, opts);

  double delta = 0.0;
  for (ClientId i : order) {
    const bool was_assigned = state.ledger().is_assigned(i);
    if (!was_assigned && !may_insert(opts, i)) continue;
    MoveEngine::Proposal prop = mover.propose_best(i);
    if (!prop.plan || prop.predicted < -kPredictReject) continue;
    mover.commit(i, was_assigned, *prop.plan, profit_now, delta);
  }
  return delta;
}

double reassign_pass_snapshot(AllocState& state, const AllocatorOptions& opts,
                              const dist::ParallelEval& eval) {
  const auto& cloud = state.cloud();
  const int n = cloud.num_clients();
  if (n == 0) return 0.0;
  const Allocation& ledger = state.ledger();
  std::vector<ClientId> order;
  order.reserve(static_cast<std::size_t>(n));
  for (ClientId i : cloud.client_ids()) order.push_back(i);
  // Worst-served first (unassigned clients sort to the front: R = +inf);
  // stable so equal response times keep client-id order at any thread
  // count and across standard libraries.
  std::stable_sort(order.begin(), order.end(), [&](ClientId a, ClientId b) {
    return ledger.response_time(a) > ledger.response_time(b);
  });

  // Phase 1: price every client's best move against a frozen SoA snapshot
  // of the settled engine state. Each chunk leases a pooled scratch view —
  // refreshed at most once per worker per pass instead of copied per
  // chunk, which was the dominant allocation traffic at 100k clients — and
  // probes each client by vacate/probe/restore; restore is bitwise-exact,
  // so a recycled scratch is indistinguishable from a fresh copy and every
  // plan depends only on the snapshot — not on chunk boundaries or
  // scheduling. Chunk size is fixed (never derived from the worker count)
  // for the same reason. The settled ledger itself is only read
  // (placements), which the frozen-snapshot contract allows.
  double profit_now = state.profit();  // settle: reads become pure
  CHECK(ledger.profit_settled());
  const ResidualView& base = state.view();
  const std::uint64_t stamp = ViewScratchPool::next_stamp();
  constexpr int kChunk = 16;
  std::vector<std::optional<InsertionPlan>> plans(static_cast<std::size_t>(n));
  {
    PROF_ZONE("reassign.price");
    eval.for_chunks(n, kChunk, [&](int begin, int end) {
      ViewScratchPool::Lease lease =
          ViewScratchPool::instance().acquire(base, stamp);
      ResidualView& scratch = lease.view();
      ResidualView::Undo undo;
      for (int idx = begin; idx < end; ++idx) {
        const ClientId i = order[static_cast<std::size_t>(idx)];
        if (!ledger.is_assigned(i) && !may_insert(opts, i)) continue;
        if (ledger.is_assigned(i)) {
          scratch.remove_client(i, ledger.placements(i), &undo);
          plans[static_cast<std::size_t>(idx)] =
              best_insertion(scratch, i, opts);
          scratch.restore(undo);
        } else {
          plans[static_cast<std::size_t>(idx)] =
              best_insertion(scratch, i, opts);
        }
      }
    });
  }

  // Phase 2: apply sequentially in the fixed order against the live
  // engine. Earlier winners may have consumed the capacity a snapshot
  // plan assumed, so re-validate the fit and fall back to a live re-price
  // when it no longer holds.
  PROF_ZONE("reassign.apply");
  MoveEngine mover(state, opts);
  ResidualView& live = state.view();
  ResidualView::Undo undo;

  double delta = 0.0;
  for (int idx = 0; idx < n; ++idx) {
    if (!plans[static_cast<std::size_t>(idx)]) continue;
    const ClientId i = order[static_cast<std::size_t>(idx)];
    const bool was_assigned = ledger.is_assigned(i);
    std::optional<InsertionPlan> plan =
        std::move(plans[static_cast<std::size_t>(idx)]);
    double predicted = 0.0;
    if (was_assigned) {
      const std::vector<model::Placement>& old_ps = ledger.placements(i);
      const double vacate = removal_delta(live, i, old_ps);
      live.remove_client(i, old_ps, &undo);
      if (!mover.fits(i, *plan)) plan = best_insertion(live, i, opts);
      if (plan)
        predicted = vacate + insertion_delta(live, i, plan->placements) -
                    migration_penalty(opts, old_ps, plan->placements);
      live.restore(undo);
    } else {
      if (!mover.fits(i, *plan)) plan = best_insertion(live, i, opts);
      if (plan) predicted = insertion_delta(live, i, plan->placements);
    }
    if (!plan || predicted < -kPredictReject) continue;
    mover.commit(i, was_assigned, *plan, profit_now, delta);
  }
  return delta;
}

double drop_unprofitable_clients(AllocState& state,
                                 const AllocatorOptions& opts) {
  if (!opts.allow_rejection) return 0.0;
  double delta = 0.0;
  for (ClientId i : state.cloud().client_ids()) {
    if (!state.ledger().is_assigned(i)) continue;
    const double before = state.profit();
    const ClusterId k = state.ledger().cluster_of(i);
    const std::vector<model::Placement> saved = state.ledger().placements(i);
    state.clear(i);
    const double after = state.profit();
    if (after > before + 1e-12) {
      delta += after - before;
    } else {
      state.assign(i, k, saved);
    }
  }
  return delta;
}

double reassign_until_steady(AllocState& state, const AllocatorOptions& opts,
                             int max_rounds) {
  double total = 0.0;
  for (int round = 0; round < max_rounds; ++round) {
    const double base = std::fabs(state.profit());
    const double delta = reassign_pass(state, opts);
    total += delta;
    if (delta <= opts.steady_tolerance * std::max(base, 1.0)) break;
  }
  return total;
}

// --- Allocation wrappers (adopt -> run -> release; the move in and out
// copies nothing and changes no state bits) ------------------------------

double reassign_pass(Allocation& alloc, const AllocatorOptions& opts) {
  AllocState state(std::move(alloc));
  const double delta = reassign_pass(state, opts);
  alloc = std::move(state).release();
  return delta;
}

double reassign_pass_snapshot(Allocation& alloc, const AllocatorOptions& opts,
                              const dist::ParallelEval& eval) {
  AllocState state(std::move(alloc));
  const double delta = reassign_pass_snapshot(state, opts, eval);
  alloc = std::move(state).release();
  return delta;
}

double drop_unprofitable_clients(Allocation& alloc,
                                 const AllocatorOptions& opts) {
  AllocState state(std::move(alloc));
  const double delta = drop_unprofitable_clients(state, opts);
  alloc = std::move(state).release();
  return delta;
}

double reassign_until_steady(Allocation& alloc, const AllocatorOptions& opts,
                             int max_rounds) {
  AllocState state(std::move(alloc));
  const double delta = reassign_until_steady(state, opts, max_rounds);
  alloc = std::move(state).release();
  return delta;
}

}  // namespace cloudalloc::alloc
