#include "alloc/reassign.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "alloc/assign_distribute.h"
#include "common/mathutil.h"
#include "model/evaluator.h"

namespace cloudalloc::alloc {

using model::Allocation;
using model::ClientId;
using model::ClusterId;

double reassign_pass(Allocation& alloc, const AllocatorOptions& opts) {
  const auto& cloud = alloc.cloud();
  std::vector<ClientId> order(static_cast<std::size_t>(cloud.num_clients()));
  std::iota(order.begin(), order.end(), 0);
  // Worst-served first (unassigned clients sort to the front: R = +inf).
  std::sort(order.begin(), order.end(), [&](ClientId a, ClientId b) {
    return alloc.response_time(a) > alloc.response_time(b);
  });

  double delta = 0.0;
  for (ClientId i : order) {
    const double before = model::profit(alloc);
    const bool was_assigned = alloc.is_assigned(i);
    const ClusterId old_cluster =
        was_assigned ? alloc.cluster_of(i) : model::kNoCluster;
    const std::vector<model::Placement> old_placements =
        was_assigned ? alloc.placements(i) : std::vector<model::Placement>{};

    if (was_assigned) alloc.clear(i);
    auto plan = best_insertion(alloc, i, opts);
    if (!plan) {
      if (was_assigned) alloc.assign(i, old_cluster, old_placements);
      continue;
    }
    alloc.assign(i, plan->cluster, std::move(plan->placements));
    const double after = model::profit(alloc);
    if (after + 1e-12 < before) {
      alloc.clear(i);
      if (was_assigned) alloc.assign(i, old_cluster, old_placements);
      continue;
    }
    delta += after - before;
  }
  return delta;
}

double drop_unprofitable_clients(Allocation& alloc,
                                 const AllocatorOptions& opts) {
  if (!opts.allow_rejection) return 0.0;
  double delta = 0.0;
  for (ClientId i = 0; i < alloc.cloud().num_clients(); ++i) {
    if (!alloc.is_assigned(i)) continue;
    const double before = model::profit(alloc);
    const ClusterId k = alloc.cluster_of(i);
    const std::vector<model::Placement> saved = alloc.placements(i);
    alloc.clear(i);
    const double after = model::profit(alloc);
    if (after > before + 1e-12) {
      delta += after - before;
    } else {
      alloc.assign(i, k, saved);
    }
  }
  return delta;
}

double reassign_until_steady(Allocation& alloc, const AllocatorOptions& opts,
                             int max_rounds) {
  double total = 0.0;
  for (int round = 0; round < max_rounds; ++round) {
    const double base = std::fabs(model::profit(alloc));
    const double delta = reassign_pass(alloc, opts);
    total += delta;
    if (delta <= opts.steady_tolerance * std::max(base, 1.0)) break;
  }
  return total;
}

}  // namespace cloudalloc::alloc
