#include "alloc/assign_distribute.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>

#include "alloc/share_policy.h"
#include "common/check.h"
#include "common/mathutil.h"
#include "model/residual.h"
#include "opt/dp.h"
#include "queueing/batch.h"
#include "queueing/gps.h"
#include "queueing/mm1.h"

namespace cloudalloc::alloc {
namespace {

using model::Allocation;
using model::Client;
using model::ClientId;
using model::Cloud;
using model::ClusterId;
using model::Placement;
using model::ResidualView;
using model::ServerClass;
using model::ServerId;
using units::ArrivalRate;
using units::Share;
using units::Time;
using units::Work;
using units::WorkRate;

/// Shares chosen for one (server, quantum-count) option plus its score.
struct SliceOption {
  double phi_p = 0.0;
  double phi_n = 0.0;
  double score = opt::kDpInfeasible;
};

/// Per-call scratch for the batched scoring passes: one entry per quantum
/// count (index g, entry 0 unused), reused across candidate servers. Also
/// holds the same-class row-reuse memo (see score_rows).
struct Scratch {
  std::vector<ArrivalRate> arr, mu_p, mu_n;
  std::vector<Share> phi_p, phi_n;
  std::vector<Time> delay;
  std::vector<int> memo_row;            // (class, active) -> scored row idx
  std::vector<Share> need_p, need_n;    // per class: g=G share demand
  std::vector<std::uint8_t> need_ready;
  void resize(std::size_t width) {
    arr.resize(width);
    phi_p.resize(width);
    phi_n.resize(width);
    mu_p.resize(width);
    mu_n.resize(width);
    delay.resize(width);
  }
  void reset_memo(std::size_t num_classes) {
    memo_row.assign(2 * num_classes, -1);
    need_p.resize(num_classes);
    need_n.resize(num_classes);
    need_ready.assign(num_classes, 0);
  }
};

/// The eq.-8 candidate filter: in-cluster, not excluded, enough free disk,
/// active when required. Applied identically when building the full list
/// and when walking the candidate index, so the top-K subset is always a
/// subsequence of the full list.
template <class State>
bool candidate_ok(const State& state, ServerId j, const Client& c,
                  const InsertionConstraints& constraints) {
  if (j == constraints.exclude) return false;
  if (!constraints.allow_inactive && !state.active(j)) return false;
  if (state.free_disk(j) + kEps < c.disk) return false;
  return true;
}

/// Fills the (server, quanta) score table for `cands`. Three passes per
/// server: size the shares (stopping at the first infeasible g — larger g
/// only needs more capacity), then the batched service-rate and two-stage
/// delay kernels over the feasible prefix, then the score combination.
/// The arithmetic is operation-for-operation the scalar
/// gps_service_rate / mm1_response_time form, so batching never changes a
/// score bit.
template <class State>
void score_rows(const State& state, const Cloud& cloud, const Client& c,
                double slope, Time zc, const ShareSizing& sizing,
                const AllocatorOptions& opts, int G,
                const std::vector<ServerId>& cands,
                std::vector<std::vector<SliceOption>>& options,
                std::vector<std::vector<double>>& scores, Scratch& scratch) {
  const std::size_t width = static_cast<std::size_t>(G) + 1;
  // Callers hand in long-lived buffers; resize + per-row assign below
  // reuses row capacity instead of reallocating every call.
  options.resize(cands.size());
  scores.resize(cands.size());
  scratch.resize(width);
  scratch.reset_memo(cloud.server_classes().size());

  for (std::size_t idx = 0; idx < cands.size(); ++idx) {
    const ServerId j = cands[idx];
    const ServerClass& sc = cloud.server_class_of(j);
    const double free_p = state.free_phi_p(j);
    const double free_n = state.free_phi_n(j);
    const bool was_active = state.active(j);

    // Same-class row reuse: the shares depend on the server only through
    // its class and its free capacity, and both the stability floor and
    // the preferred size grow with g — so when the g=G demand fits the
    // free capacity, no share on this row ever touched the clamp and the
    // whole row is a pure function of (class, active). Rows copied here
    // are bitwise identical to recomputing them.
    const std::size_t cls = cloud.server(j).server_class.index();
    if (scratch.need_ready[cls] == 0) {
      const ArrivalRate lambda{c.lambda_pred};
      const Share floor_p = queueing::gps_min_share(
          lambda, WorkRate{sc.cap_p}, Work{c.alpha_p},
          ArrivalRate{opts.stability_headroom});
      const Share floor_n = queueing::gps_min_share(
          lambda, WorkRate{sc.cap_n}, Work{c.alpha_n},
          ArrivalRate{opts.stability_headroom});
      scratch.need_p[cls] = std::max(
          floor_p, preferred_share(lambda, 1.0, WorkRate{sc.cap_p},
                                   Work{c.alpha_p}, zc, sizing.slack_work_p,
                                   opts));
      scratch.need_n[cls] = std::max(
          floor_n, preferred_share(lambda, 1.0, WorkRate{sc.cap_n},
                                   Work{c.alpha_n}, zc, sizing.slack_work_n,
                                   opts));
      scratch.need_ready[cls] = 1;
    }
    const bool unclamped = scratch.need_p[cls].value() <= free_p &&
                           scratch.need_n[cls].value() <= free_n;
    const std::size_t key = 2 * cls + (was_active ? 1 : 0);
    if (unclamped && scratch.memo_row[key] >= 0) {
      const auto src = static_cast<std::size_t>(scratch.memo_row[key]);
      options[idx] = options[src];
      scores[idx] = scores[src];
      continue;
    }

    options[idx].assign(width, SliceOption{});
    scores[idx].assign(width, opt::kDpInfeasible);
    scores[idx][0] = 0.0;
    options[idx][0].score = 0.0;

    // Batched share sizing over the whole psi grid (SIMD lanes; bitwise
    // the historical per-g size_share loop — see size_share_grid). The
    // feasible prefix is the min over the two resources, exactly where
    // the scalar loop's first-infeasible break landed.
    const int gmax = std::min(
        size_share_grid(ArrivalRate{c.lambda_pred}, G, WorkRate{sc.cap_p},
                        Work{c.alpha_p}, zc, sizing.slack_work_p, opts,
                        free_p, scratch.arr.data(), scratch.phi_p.data()),
        size_share_grid(ArrivalRate{c.lambda_pred}, G, WorkRate{sc.cap_n},
                        Work{c.alpha_n}, zc, sizing.slack_work_n, opts,
                        free_n, scratch.arr.data(), scratch.phi_n.data()));
    if (gmax == 0) continue;

    const auto n = static_cast<std::size_t>(gmax);
    queueing::gps_service_rates(scratch.phi_p.data() + 1, WorkRate{sc.cap_p},
                                Work{c.alpha_p}, scratch.mu_p.data() + 1, n);
    queueing::gps_service_rates(scratch.phi_n.data() + 1, WorkRate{sc.cap_n},
                                Work{c.alpha_n}, scratch.mu_n.data() + 1, n);
    queueing::two_stage_delays(scratch.arr.data() + 1, scratch.mu_p.data() + 1,
                               scratch.mu_n.data() + 1,
                               scratch.delay.data() + 1, n);

    for (int g = 1; g <= gmax; ++g) {
      const std::size_t gg = static_cast<std::size_t>(g);
      const double psi = static_cast<double>(g) / static_cast<double>(G);
      double score = -c.lambda_agreed * slope * psi * scratch.delay[gg].value();
      score -= sc.cost_per_util * psi * c.lambda_pred * c.alpha_p / sc.cap_p;
      if (!was_active) score -= sc.cost_fixed;
      options[idx][gg] = SliceOption{scratch.phi_p[gg].value(),
                                     scratch.phi_n[gg].value(), score};
      scores[idx][gg] = score;
    }
    if (unclamped) scratch.memo_row[key] = static_cast<int>(idx);
  }
}

/// Exactness certificate for a top-K solve. Every score term of an
/// excluded server j is non-positive and its delay at any quantum count is
/// bounded below by the delay of the full free share at the one-quantum
/// arrival rate, so f_j(g) <= g * u_j with
///
///   u_j = -(lambda_a * slope * dmin_j + P1_j * lambda * alpha_p / Cp_j) / G.
///
/// A split handing h >= 1 quanta to excluded servers therefore scores at
/// most h * max_j(u_j) + totals[G - h]. When every such bound sits
/// STRICTLY below the pruned optimum (with a relative margin), no
/// excluded server can participate in — or tie — any optimal split, and
/// the exact DP over all candidates returns the identical placements: the
/// excluded rows' only contribution is the exact +0.0 of zero quanta, so
/// every surviving cell value and every tie-break the traceback sees is
/// unchanged.
///
/// Twin redundancy: the strict bound can never discharge an excluded
/// server whose score row bitwise-equals an included one (it ties by
/// construction). But score rows are pure functions of the exact key
/// (class, active, bits(free_phi_p), bits(free_phi_n)), and the grouped
/// DP's strictly-greater update resolves every tie toward the
/// latest-scanned row — so within a group of twin rows the exact
/// traceback only ever places quanta on the highest-id min(m, G) members
/// (each used row takes >= 1 of the G quanta). An excluded twin is
/// therefore redundant — same cell values, untouched by the traceback —
/// whenever (a) the included twins of its group number at least
/// min(m, G) and (b) every included twin has a higher id, i.e. the group
/// was cut by the id-descending prefix of the candidate index. Such
/// twins are skipped by the bound scan instead of failing it.
template <class State>
bool certified(const State& state, const Cloud& cloud, const Client& c,
               double slope, Time zc, const ShareSizing& sizing,
               const AllocatorOptions& opts, int G,
               const std::vector<ServerId>& cands,
               const std::vector<ServerId>& pruned,
               const opt::DpResult& dp) {
  // The bound needs non-negative revenue/slope (guaranteed by the utility
  // interface); bail to the exact scan rather than trust it otherwise.
  if (c.lambda_agreed < 0.0 || slope < 0.0) return false;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Policy delay floor, independent of the server and of g: a slice's
  // share never exceeds max(preferred, floor) whatever the free capacity,
  // so its per-stage service slack (mu - lambda) never exceeds
  // max(slack_max / alpha, stability_headroom) — the preferred share's
  // slack is min(psi * slack_work, alpha / (theta * zc)) and the floor
  // pins the slack to exactly the headroom. The free-capacity bound below
  // can still be tighter on nearly-full servers; each server takes the
  // larger of the two.
  const auto policy_dmin = [&](Work alpha, WorkRate slack_work) {
    WorkRate slack_max = slack_work;
    if (std::isfinite(zc.value()) && zc.value() > 0.0)
      slack_max = std::min(slack_max,
                           alpha / (opts.delay_target_fraction * zc));
    return 1.0 / std::max(slack_max / alpha,
                          ArrivalRate{opts.stability_headroom});
  };
  const Time dmin_policy = policy_dmin(Work{c.alpha_p}, sizing.slack_work_p) +
                           policy_dmin(Work{c.alpha_n}, sizing.slack_work_n);

  // Group the candidate rows by their exact row key (see score_rows: a
  // row reads the server only through class, activity, and the two free
  // shares). Bitwise-equal keys => bitwise-equal rows => twins. The
  // groups live in a reused flat buffer scanned linearly: this runs once
  // per pruned attempt on a few dozen rows, where a node-based map's
  // allocations would dominate the whole certification.
  using TwinKey = std::array<std::uint64_t, 3>;
  struct TwinGroup {
    TwinKey key;
    int members = 0;   ///< rows with this key among cands
    int included = 0;  ///< of those, rows in the pruned set
    ServerId min_included{std::numeric_limits<int>::max()};
  };
  const auto key_of = [&](ServerId j) {
    const auto cls =
        static_cast<std::uint64_t>(cloud.server(j).server_class.value());
    return TwinKey{(cls << 1) | (state.active(j) ? 1u : 0u),
                   std::bit_cast<std::uint64_t>(state.free_phi_p(j)),
                   std::bit_cast<std::uint64_t>(state.free_phi_n(j))};
  };
  thread_local std::vector<TwinGroup> twins;
  twins.clear();
  const auto group_of = [&](const TwinKey& key) -> TwinGroup& {
    for (TwinGroup& g : twins)
      if (g.key == key) return g;
    twins.push_back(TwinGroup{key});
    return twins.back();
  };
  {
    std::size_t pi = 0;
    for (ServerId j : cands) {
      const bool included = pi < pruned.size() && pruned[pi] == j;
      if (included) ++pi;
      TwinGroup& g = group_of(key_of(j));
      ++g.members;
      if (included) {
        ++g.included;
        g.min_included = std::min(g.min_included, j);
      }
    }
  }

  const ArrivalRate arr1 = ArrivalRate{c.lambda_pred} / static_cast<double>(G);
  double ubest = 0.0;
  bool any_excluded_feasible = false;
  std::size_t pi = 0;  // pruned is a subsequence of cands
  for (ServerId j : cands) {
    if (pi < pruned.size() && pruned[pi] == j) {
      ++pi;
      continue;
    }
    const TwinGroup& tg = group_of(key_of(j));
    if (tg.included >= std::min(tg.members, G) && j < tg.min_included)
      continue;  // redundant twin — see the comment above
    const ServerClass& sc = cloud.server_class_of(j);
    const double free_p = state.free_phi_p(j);
    const double free_n = state.free_phi_n(j);
    // size_share's stability-floor test at one quantum; failing it means
    // the row is all-infeasible past g=0 and constrains nothing.
    if (queueing::gps_min_share(arr1, WorkRate{sc.cap_p}, Work{c.alpha_p},
                                ArrivalRate{opts.stability_headroom})
            .value() > free_p + kEps)
      continue;
    if (queueing::gps_min_share(arr1, WorkRate{sc.cap_n}, Work{c.alpha_n},
                                ArrivalRate{opts.stability_headroom})
            .value() > free_n + kEps)
      continue;
    const ArrivalRate mu_p_max = queueing::gps_service_rate(
        Share{free_p}, WorkRate{sc.cap_p}, Work{c.alpha_p});
    const ArrivalRate mu_n_max = queueing::gps_service_rate(
        Share{free_n}, WorkRate{sc.cap_n}, Work{c.alpha_n});
    Time dmin = queueing::mm1_response_time_or_inf(arr1, mu_p_max) +
                queueing::mm1_response_time_or_inf(arr1, mu_n_max);
    if (!(dmin.value() < kInf)) continue;
    dmin = std::max(dmin, dmin_policy);
    const double u =
        -(c.lambda_agreed * slope * dmin.value() +
          sc.cost_per_util * c.lambda_pred * c.alpha_p / sc.cap_p) /
        static_cast<double>(G);
    if (!any_excluded_feasible || u > ubest) {
      ubest = u;
      any_excluded_feasible = true;
    }
  }
  if (!any_excluded_feasible) return true;

  const double margin = 1e-9 * std::max(1.0, std::abs(dp.score));
  for (int h = 1; h <= G; ++h) {
    const double rest = dp.totals[static_cast<std::size_t>(G - h)];
    if (rest <= opt::kDpInfeasible) continue;  // no feasible completion
    if (static_cast<double>(h) * ubest + rest >= dp.score - margin)
      return false;
  }
  return true;
}

InsertionPlan build_plan(const Client& c, const Cloud& cloud, ClientId i,
                         ClusterId k, int G,
                         const std::vector<ServerId>& cands,
                         const std::vector<std::vector<SliceOption>>& options,
                         const opt::DpResult& dp) {
  InsertionPlan plan;
  plan.cluster = k;
  // Constant part of the linearized revenue (psi sums to one).
  plan.score = c.lambda_agreed * cloud.utility_of(i).max_value() + dp.score;
  std::size_t used = 0;
  for (int g : dp.quanta) used += g > 0 ? 1 : 0;
  plan.placements.reserve(used);
  for (std::size_t idx = 0; idx < cands.size(); ++idx) {
    const int g = dp.quanta[idx];
    if (g == 0) continue;
    const SliceOption& option = options[idx][static_cast<std::size_t>(g)];
    Placement p;
    p.server = cands[idx];
    p.psi = static_cast<double>(g) / static_cast<double>(G);
    p.phi_p = option.phi_p;
    p.phi_n = option.phi_n;
    plan.placements.push_back(p);
  }
  CHECK(!plan.placements.empty());
  return plan;
}

template <class State>
std::optional<InsertionPlan> assign_distribute_impl(
    const State& state, ClientId i, ClusterId k, const AllocatorOptions& opts,
    const InsertionConstraints& constraints, InsertionStats* stats) {
  const Cloud& cloud = state.cloud();
  const Client& c = cloud.client(i);
  const auto& fn = cloud.utility_of(i);
  const int G = opts.psi_grid;
  CHECK(G >= 1);

  // Linearization anchors: price level, slope, and the share-sizing policy
  // (delay target vs cloud-wide capacity tightness).
  const double slope = fn.slope(0.0);
  const Time zc{fn.zero_crossing()};
  const ShareSizing sizing = ShareSizing::from(cloud);

  // Candidate servers in cluster order — the row order of the exact DP.
  // All scratch here is thread_local: the allocator probes tens of
  // thousands of insertions per run and these buffers dominated the
  // allocator's heap traffic. Each call fully (re)initializes what it
  // reads, so reuse is invisible to results.
  const auto& cluster_servers = cloud.cluster(k).servers;
  thread_local std::vector<ServerId> cands;
  cands.clear();
  cands.reserve(cluster_servers.size());
  bool screened = false;
  if constexpr (std::is_same_v<State, ResidualView>) {
    // Batched eq.-8 disk screen (SIMD, see ResidualView::screen_free_disk):
    // the free-disk comparison for the whole cluster in one sweep; the
    // remaining filter tests are branch-only. Same test, same order of
    // servers — the candidate list cannot differ from the scalar build.
    thread_local std::vector<std::uint8_t> disk_ok;
    if (state.screen_free_disk(k, c.disk, kEps, disk_ok)) {
      screened = true;
      for (std::size_t idx = 0; idx < cluster_servers.size(); ++idx) {
        const ServerId j = cluster_servers[idx];
        if (disk_ok[idx] == 0) continue;
        if (j == constraints.exclude) continue;
        if (!constraints.allow_inactive && !state.active(j)) continue;
        cands.push_back(j);
      }
    }
  }
  if (!screened) {
    for (ServerId j : cluster_servers)
      if (candidate_ok(state, j, c, constraints)) cands.push_back(j);
  }
  if (cands.empty()) return std::nullopt;

  thread_local Scratch scratch;
  thread_local std::vector<std::vector<SliceOption>> options;
  thread_local std::vector<std::vector<double>> scores;

  // Per-cluster attempt throttle for the pruned path: a failed
  // certification means the pruned DP was wasted work on top of the full
  // scan, and failure is sticky (it tracks how loaded and residual-diverse
  // the cluster currently is, which single moves barely change). After a
  // fallback the next 2^streak attempts on that cluster go straight to
  // the exact scan; a certified attempt resets the streak. This state is
  // invisible in results — the certified pruned solve and the full scan
  // return identical plans by construction — it only trades probe cost.
  thread_local std::vector<int> prune_skip, prune_streak;
  const int topk = opts.candidate_topk;
  if (topk > 0 && static_cast<int>(cands.size()) > topk) {
    const std::size_t kk = k.index();
    if (kk >= prune_skip.size()) {
      prune_skip.resize(kk + 1, 0);
      prune_streak.resize(kk + 1, 0);
    }
    if (opts.candidate_backoff && prune_skip[kk] > 0) {
      --prune_skip[kk];
      if (stats != nullptr) ++stats->full_solves;
    } else {
      // Top-K by the residual-capacity index, re-expressed in cluster
      // order so the pruned DP tie-breaks exactly like the full scan
      // would. A twin run (same class, activity, and bitwise free shares
      // — twins sort adjacently, highest id first) split by the K cut can
      // only be certified once it holds min(members, G) included twins,
      // so the cut self-extends past K until the run's included count
      // reaches G or the run ends: beyond G the DP can never place
      // another quantum on the group, and certified() discharges the
      // remaining (lower-id) twins as redundant.
      const auto twin_key = [&](ServerId a) {
        const auto cls =
            static_cast<std::uint64_t>(cloud.server(a).server_class.value());
        return std::array<std::uint64_t, 3>{
            (cls << 1) | (state.active(a) ? 1u : 0u),
            std::bit_cast<std::uint64_t>(state.free_phi_p(a)),
            std::bit_cast<std::uint64_t>(state.free_phi_n(a))};
      };
      thread_local std::vector<ServerId> chosen;
      chosen.clear();
      std::array<std::uint64_t, 3> run_key{};
      int run_included = 0;
      // Grow the ordered prefix on demand: the walk almost always stops
      // within a small multiple of K, so the bucketed index (see
      // ResidualView::ordered_prefix) only materializes and sorts the top
      // of the order instead of re-sorting the whole cluster. Prefixes are
      // exact, so the walk visits the same servers in the same order as
      // the historical full-order scan.
      std::size_t want = static_cast<std::size_t>(topk) * 2 + 8;
      const std::vector<ServerId>* prefix = &state.ordered_prefix(k, want);
      for (std::size_t pi = 0;; ++pi) {
        if (pi >= prefix->size()) {
          if (prefix->size() >= cluster_servers.size()) break;
          want = std::max(want * 2, prefix->size() + 1);
          prefix = &state.ordered_prefix(k, want);
          if (pi >= prefix->size()) break;
        }
        const ServerId j = (*prefix)[pi];
        if (!candidate_ok(state, j, c, constraints)) continue;
        const auto key = twin_key(j);
        const bool same_run = !chosen.empty() && key == run_key;
        if (static_cast<int>(chosen.size()) >= topk &&
            (!same_run || run_included >= G))
          break;
        if (!same_run) {
          run_key = key;
          run_included = 0;
        }
        ++run_included;
        chosen.push_back(j);
      }
      thread_local std::vector<ServerId> pruned;
      pruned.clear();
      for (ServerId j : cands)
        if (std::find(chosen.begin(), chosen.end(), j) != chosen.end())
          pruned.push_back(j);
      if (stats != nullptr) stats->last_pruned_set = pruned;

      score_rows(state, cloud, c, slope, zc, sizing, opts, G, pruned, options,
                 scores, scratch);
      const auto dp = opt::dp_distribute(scores, G);
      if (dp && certified(state, cloud, c, slope, zc, sizing, opts, G, cands,
                          pruned, *dp)) {
        if (stats != nullptr) ++stats->pruned_solves;
        prune_streak[kk] /= 2;  // decay, not reset: mid-load clusters
                                // oscillate near the certification edge
        return build_plan(c, cloud, i, k, G, pruned, options, *dp);
      }
      // Uncertified (or the pruned set alone cannot host the client): pay
      // for the exact scan. The pruned attempt is wasted work, so K trades
      // prune rate against fallback cost.
      if (stats != nullptr) ++stats->exact_fallbacks;
      prune_streak[kk] = std::min(prune_streak[kk] + 1, 14);
      prune_skip[kk] = 1 << prune_streak[kk];
    }
  } else if (stats != nullptr) {
    ++stats->full_solves;
  }

  score_rows(state, cloud, c, slope, zc, sizing, opts, G, cands, options,
             scores, scratch);
  const auto dp = opt::dp_distribute(scores, G);
  if (!dp) return std::nullopt;
  return build_plan(c, cloud, i, k, G, cands, options, *dp);
}

template <class State>
std::optional<InsertionPlan> best_insertion_impl(
    const State& state, ClientId i, const AllocatorOptions& opts,
    const InsertionConstraints& constraints, InsertionStats* stats) {
  std::optional<InsertionPlan> best;
  const int num_clusters = state.cloud().num_clusters();
  const int fanout = opts.cluster_fanout;
  if (fanout > 0 && fanout < num_clusters) {
    // Deterministic probe window (see AllocatorOptions::cluster_fanout): a
    // fixed multiplicative hash of the client id picks the window start,
    // so the probed set depends only on (client, cluster count) — never
    // on allocation state, threads or shards — and clients spread evenly
    // over the clusters.
    const auto kk = static_cast<std::uint64_t>(num_clusters);
    const std::uint64_t start =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(i.value())) *
         2654435761ull) %
        kk;
    for (int t = 0; t < fanout; ++t) {
      const ClusterId k{static_cast<int>(
          (start + static_cast<std::uint64_t>(t)) % kk)};
      auto plan =
          assign_distribute_impl(state, i, k, opts, constraints, stats);
      if (plan && (!best || plan->score > best->score)) best = std::move(plan);
    }
    return best;
  }
  for (ClusterId k : state.cloud().cluster_ids()) {
    auto plan = assign_distribute_impl(state, i, k, opts, constraints, stats);
    if (plan && (!best || plan->score > best->score)) best = std::move(plan);
  }
  return best;
}

}  // namespace

std::optional<InsertionPlan> assign_distribute(
    const Allocation& alloc, ClientId i, ClusterId k,
    const AllocatorOptions& opts, const InsertionConstraints& constraints,
    InsertionStats* stats) {
  return assign_distribute_impl(alloc, i, k, opts, constraints, stats);
}

std::optional<InsertionPlan> assign_distribute(
    const ResidualView& view, ClientId i, ClusterId k,
    const AllocatorOptions& opts, const InsertionConstraints& constraints,
    InsertionStats* stats) {
  return assign_distribute_impl(view, i, k, opts, constraints, stats);
}

std::optional<InsertionPlan> best_insertion(
    const Allocation& alloc, ClientId i, const AllocatorOptions& opts,
    const InsertionConstraints& constraints, InsertionStats* stats) {
  return best_insertion_impl(alloc, i, opts, constraints, stats);
}

std::optional<InsertionPlan> best_insertion(
    const ResidualView& view, ClientId i, const AllocatorOptions& opts,
    const InsertionConstraints& constraints, InsertionStats* stats) {
  return best_insertion_impl(view, i, opts, constraints, stats);
}

}  // namespace cloudalloc::alloc
