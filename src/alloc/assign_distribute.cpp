#include "alloc/assign_distribute.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "alloc/share_policy.h"
#include "common/check.h"
#include "common/mathutil.h"
#include "opt/dp.h"
#include "queueing/gps.h"
#include "queueing/mm1.h"

namespace cloudalloc::alloc {
namespace {

using model::Allocation;
using model::Client;
using model::ClientId;
using model::Cloud;
using model::ClusterId;
using model::Placement;
using model::ServerClass;
using model::ServerId;

/// Shares chosen for one (server, quantum-count) option plus its score.
struct SliceOption {
  double phi_p = 0.0;
  double phi_n = 0.0;
  double score = opt::kDpInfeasible;
};

/// Sizes one resource's share for a slice: the policy-preferred size
/// (min of delay-target and capacity-proportional, see share_policy.h),
/// clamped between the stability floor and the free capacity. Returns
/// nullopt when even the floor does not fit.
std::optional<double> size_share(double arrivals, double psi,
                                 double capacity, double alpha, double zc,
                                 double slack_work,
                                 const AllocatorOptions& opts,
                                 double free_share) {
  const double floor_share = queueing::gps_min_share(
      arrivals, capacity, alpha, opts.stability_headroom);
  if (floor_share > free_share + kEps) return std::nullopt;
  const double share =
      preferred_share(arrivals, psi, capacity, alpha, zc, slack_work, opts);
  return clamp(share, floor_share, free_share);
}

}  // namespace

std::optional<InsertionPlan> assign_distribute(
    const Allocation& alloc, ClientId i, ClusterId k,
    const AllocatorOptions& opts, const InsertionConstraints& constraints) {
  const Cloud& cloud = alloc.cloud();
  const Client& c = cloud.client(i);
  const auto& fn = cloud.utility_of(i);
  const int G = opts.psi_grid;
  CHECK(G >= 1);

  // Linearization anchors: price level, slope, and the share-sizing policy
  // (delay target vs cloud-wide capacity tightness).
  const double slope = fn.slope(0.0);
  const double zc = fn.zero_crossing();
  const ShareSizing sizing = ShareSizing::from(cloud);

  // Candidate servers: in cluster k, not excluded, enough free disk, and
  // (when required) already active.
  std::vector<ServerId> cands;
  for (ServerId j : cloud.cluster(k).servers) {
    if (j == constraints.exclude) continue;
    if (!constraints.allow_inactive && !alloc.active(j)) continue;
    if (alloc.free_disk(j) + kEps < c.disk) continue;
    cands.push_back(j);
  }
  if (cands.empty()) return std::nullopt;

  // Score every (server, quanta) option.
  const std::size_t width = static_cast<std::size_t>(G) + 1;
  std::vector<std::vector<SliceOption>> options(cands.size());
  std::vector<std::vector<double>> scores(
      cands.size(), std::vector<double>(width, opt::kDpInfeasible));

  for (std::size_t idx = 0; idx < cands.size(); ++idx) {
    const ServerId j = cands[idx];
    const ServerClass& sc = cloud.server_class_of(j);
    const double free_p = alloc.free_phi_p(j);
    const double free_n = alloc.free_phi_n(j);
    const bool was_active = alloc.active(j);
    options[idx].resize(width);
    scores[idx][0] = 0.0;
    options[idx][0].score = 0.0;

    for (int g = 1; g <= G; ++g) {
      const double psi = static_cast<double>(g) / static_cast<double>(G);
      const double arrivals = psi * c.lambda_pred;
      const auto phi_p = size_share(arrivals, psi, sc.cap_p, c.alpha_p, zc,
                                    sizing.slack_work_p, opts, free_p);
      const auto phi_n = size_share(arrivals, psi, sc.cap_n, c.alpha_n, zc,
                                    sizing.slack_work_n, opts, free_n);
      if (!phi_p || !phi_n) break;  // larger g only needs more capacity

      const double mu_p =
          queueing::gps_service_rate(*phi_p, sc.cap_p, c.alpha_p);
      const double mu_n =
          queueing::gps_service_rate(*phi_n, sc.cap_n, c.alpha_n);
      const double delay = queueing::mm1_response_time(arrivals, mu_p) +
                           queueing::mm1_response_time(arrivals, mu_n);

      double score = -c.lambda_agreed * slope * psi * delay;
      score -= sc.cost_per_util * psi * c.lambda_pred * c.alpha_p / sc.cap_p;
      if (!was_active) score -= sc.cost_fixed;

      const std::size_t gg = static_cast<std::size_t>(g);
      options[idx][gg] = SliceOption{*phi_p, *phi_n, score};
      scores[idx][gg] = score;
    }
  }

  const auto dp = opt::dp_distribute(scores, G);
  if (!dp) return std::nullopt;

  InsertionPlan plan;
  plan.cluster = k;
  // Constant part of the linearized revenue (psi sums to one).
  plan.score = c.lambda_agreed * fn.max_value() + dp->score;
  for (std::size_t idx = 0; idx < cands.size(); ++idx) {
    const int g = dp->quanta[idx];
    if (g == 0) continue;
    const SliceOption& option = options[idx][static_cast<std::size_t>(g)];
    Placement p;
    p.server = cands[idx];
    p.psi = static_cast<double>(g) / static_cast<double>(G);
    p.phi_p = option.phi_p;
    p.phi_n = option.phi_n;
    plan.placements.push_back(p);
  }
  CHECK(!plan.placements.empty());
  return plan;
}

std::optional<InsertionPlan> best_insertion(
    const Allocation& alloc, ClientId i, const AllocatorOptions& opts,
    const InsertionConstraints& constraints) {
  std::optional<InsertionPlan> best;
  for (ClusterId k = 0; k < alloc.cloud().num_clusters(); ++k) {
    auto plan = assign_distribute(alloc, i, k, opts, constraints);
    if (plan && (!best || plan->score > best->score)) best = std::move(plan);
  }
  return best;
}

}  // namespace cloudalloc::alloc
