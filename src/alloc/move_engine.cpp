#include "alloc/move_engine.h"

#include <vector>

#include "alloc/delta_price.h"

namespace cloudalloc::alloc {

using model::ClientId;
using model::ClusterId;
using model::Placement;

MoveEngine::Proposal MoveEngine::propose_best(
    ClientId i, const InsertionConstraints& constraints) {
  Proposal prop;
  model::ResidualView& view = state_.view();
  if (state_.ledger().is_assigned(i)) {
    const std::vector<Placement>& old_ps = state_.ledger().placements(i);
    const double vacate = removal_delta(view, i, old_ps);
    view.remove_client(i, old_ps, &undo_);
    prop.plan = best_insertion(view, i, opts_, constraints);
    if (prop.plan)
      prop.predicted = vacate + insertion_delta(view, i, prop.plan->placements) -
                       migration_penalty(opts_, old_ps, prop.plan->placements);
    view.restore(undo_);
  } else {
    prop.plan = best_insertion(view, i, opts_, constraints);
    if (prop.plan)
      prop.predicted = insertion_delta(view, i, prop.plan->placements);
  }
  return prop;
}

MoveEngine::Proposal MoveEngine::propose_into(
    ClientId i, ClusterId k, const InsertionConstraints& constraints) {
  Proposal prop;
  model::ResidualView& view = state_.view();
  if (state_.ledger().is_assigned(i)) {
    const std::vector<Placement>& old_ps = state_.ledger().placements(i);
    const double vacate = removal_delta(view, i, old_ps);
    view.remove_client(i, old_ps, &undo_);
    prop.plan = assign_distribute(view, i, k, opts_, constraints);
    if (prop.plan)
      prop.predicted = vacate + insertion_delta(view, i, prop.plan->placements) -
                       migration_penalty(opts_, old_ps, prop.plan->placements);
    view.restore(undo_);
  } else {
    prop.plan = assign_distribute(view, i, k, opts_, constraints);
    if (prop.plan)
      prop.predicted = insertion_delta(view, i, prop.plan->placements);
  }
  return prop;
}

bool MoveEngine::fits(ClientId i, const InsertionPlan& plan) const {
  constexpr double kSlack = 1e-9;
  const model::ResidualView& view = state_.view();
  const double disk = state_.cloud().client(i).disk;
  for (const Placement& p : plan.placements) {
    if (p.phi_p > view.free_phi_p(p.server) + kSlack) return false;
    if (p.phi_n > view.free_phi_n(p.server) + kSlack) return false;
    if (disk > view.free_disk(p.server) + kSlack) return false;
  }
  return true;
}

bool MoveEngine::commit(ClientId i, bool was_assigned,
                        const InsertionPlan& plan, double& profit_now,
                        double& delta) {
  const ClusterId old_cluster =
      was_assigned ? state_.ledger().cluster_of(i) : model::kNoCluster;
  std::vector<Placement> old_placements;  // materialized only here, once a
  if (was_assigned) {                     // move is attempted
    old_placements = state_.ledger().placements(i);
    state_.clear(i);
  }
  // Under migration pricing the exact gate tightens: the realized gain
  // must cover the traffic the move redirects, not merely be nonnegative.
  const double penalty = migration_penalty(opts_, old_placements, plan.placements);
  state_.assign(i, plan.cluster, plan.placements);
  const double after = state_.profit();
  if (after + 1e-12 < profit_now + penalty) {
    // Roll back through the engine: each operation resyncs the touched
    // view entries from the ledger's post-rollback aggregates, which a
    // remove/add replay would miss by ulps. No re-evaluation here — the
    // restored profit equals profit_now up to the round trip's rounding,
    // and the next exact evaluation repairs the caches anyway.
    state_.clear(i);
    if (was_assigned) state_.assign(i, old_cluster, std::move(old_placements));
    return false;
  }
  delta += after - profit_now;
  profit_now = after;
  return true;
}

double MoveEngine::apply(ClientId i, const std::optional<InsertionPlan>& plan,
                         double& profit_now) {
  if (state_.ledger().is_assigned(i)) state_.clear(i);
  if (plan) state_.assign(i, plan->cluster, plan->placements);
  const double after = state_.profit();
  const double delta = after - profit_now;
  profit_now = after;
  return delta;
}

}  // namespace cloudalloc::alloc
