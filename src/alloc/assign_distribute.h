// Assign_Distribute(i, k): the paper's per-cluster insertion evaluator.
//
// Given the current state of cluster k, it answers "if client i were
// served by this cluster, how would its traffic best split over the
// cluster's servers, what GPS shares would the slices hold, and what is
// the approximate profit?". Used by the greedy initial solution, the
// cloud-level reassignment local search, TurnON/TurnOFF reallocation, and
// every baseline that needs cluster-level allocation.
//
// Method (Section V-A): psi is discretized on a grid of G quanta. For each
// candidate server j and quantum count g the slice's shares are sized by
// the clamped closed form (stability floor <= share <= free capacity,
// targeting a fixed fraction of the client's utility zero-crossing — see
// AllocatorOptions::delay_target_fraction), yielding a score
//
//   f_j(g) = -lambda_a * s * psi_g * T_j(psi_g)       (linearized utility)
//            - P1_j * psi_g * lambda * alpha_p / Cp_j  (load cost)
//            - P0_j * [server j currently OFF]         (activation)
//
// and a dynamic program combines servers under sum_j g_j = G. Servers
// without enough free disk for m_i are excluded up front (eq. 8).
#pragma once

#include <optional>
#include <vector>

#include "alloc/options.h"
#include "model/allocation.h"

namespace cloudalloc::alloc {

/// Restrictions on which servers may host the insertion.
struct InsertionConstraints {
  model::ServerId exclude = model::kNoServer;  ///< never place here
  bool allow_inactive = true;  ///< if false, only already-ON servers
};

/// A fully-specified candidate insertion of one client into one cluster.
struct InsertionPlan {
  model::ClusterId cluster = model::kNoCluster;
  std::vector<model::Placement> placements;
  /// Approximate profit contribution (linearized revenue minus new costs);
  /// comparable across clusters for the same client.
  double score = 0.0;
};

/// Evaluates the best insertion of (currently unassigned) client i into
/// cluster k against the allocation's current state. Returns nullopt when
/// the cluster cannot feasibly host the client.
std::optional<InsertionPlan> assign_distribute(
    const model::Allocation& alloc, model::ClientId i, model::ClusterId k,
    const AllocatorOptions& opts,
    const InsertionConstraints& constraints = {});

/// Convenience: best insertion across all clusters (nullopt if none fits).
std::optional<InsertionPlan> best_insertion(
    const model::Allocation& alloc, model::ClientId i,
    const AllocatorOptions& opts,
    const InsertionConstraints& constraints = {});

}  // namespace cloudalloc::alloc
