// Assign_Distribute(i, k): the paper's per-cluster insertion evaluator.
//
// Given the current state of cluster k, it answers "if client i were
// served by this cluster, how would its traffic best split over the
// cluster's servers, what GPS shares would the slices hold, and what is
// the approximate profit?". Used by the greedy initial solution, the
// cloud-level reassignment local search, TurnON/TurnOFF reallocation, and
// every baseline that needs cluster-level allocation.
//
// Method (Section V-A): psi is discretized on a grid of G quanta. For each
// candidate server j and quantum count g the slice's shares are sized by
// the clamped closed form (stability floor <= share <= free capacity,
// targeting a fixed fraction of the client's utility zero-crossing — see
// AllocatorOptions::delay_target_fraction), yielding a score
//
//   f_j(g) = -lambda_a * s * psi_g * T_j(psi_g)       (linearized utility)
//            - P1_j * psi_g * lambda * alpha_p / Cp_j  (load cost)
//            - P0_j * [server j currently OFF]         (activation)
//
// and a dynamic program combines servers under sum_j g_j = G. Servers
// without enough free disk for m_i are excluded up front (eq. 8).
//
// Candidate pruning (AllocatorOptions::candidate_topk): instead of scoring
// every feasible server, the evaluator first solves the DP over the top-K
// servers of the cluster's insertion-candidate index (residual processing
// rate descending — see Allocation::insertion_candidates). The pruned
// result is accepted only when a per-quantum optimistic bound proves no
// excluded server could participate in any split that matches or beats it
// (strict margin), in which case the full scan would return the identical
// plan; otherwise the evaluator falls back to the exact full scan. Pruning
// is therefore a pure speedup: results are bit-identical with it on or off.
//
// Both the full Allocation and the flat ResidualView (model/residual.h)
// satisfy the state interface, so speculative probes can run against a
// cheap SoA snapshot without cloning an Allocation.
#pragma once

#include <optional>
#include <vector>

#include "alloc/options.h"
#include "model/allocation.h"

namespace cloudalloc::model {
class ResidualView;
}  // namespace cloudalloc::model

namespace cloudalloc::alloc {

/// Restrictions on which servers may host the insertion.
struct InsertionConstraints {
  model::ServerId exclude = model::kNoServer;  ///< never place here
  bool allow_inactive = true;  ///< if false, only already-ON servers
};

/// A fully-specified candidate insertion of one client into one cluster.
struct InsertionPlan {
  model::ClusterId cluster = model::kNoCluster;
  std::vector<model::Placement> placements;
  /// Approximate profit contribution (linearized revenue minus new costs);
  /// comparable across clusters for the same client.
  double score = 0.0;
};

/// Optional instrumentation of the candidate-pruning machinery; counters
/// accumulate across calls. Tests use it to assert the top-K set kept the
/// true argmax server (or that the exact fallback fired); the bench uses
/// it to report prune rates.
struct InsertionStats {
  int pruned_solves = 0;     ///< certified top-K solves (no full scan)
  int exact_fallbacks = 0;   ///< top-K attempted but certification failed
  int full_solves = 0;       ///< solved exactly without attempting top-K
  /// Pruned candidate set of the most recent top-K attempt.
  std::vector<model::ServerId> last_pruned_set;
};

/// Evaluates the best insertion of (currently unassigned) client i into
/// cluster k against the allocation's current state. Returns nullopt when
/// the cluster cannot feasibly host the client.
std::optional<InsertionPlan> assign_distribute(
    const model::Allocation& alloc, model::ClientId i, model::ClusterId k,
    const AllocatorOptions& opts, const InsertionConstraints& constraints = {},
    InsertionStats* stats = nullptr);

/// Same evaluation against a ResidualView snapshot — no Allocation needed.
std::optional<InsertionPlan> assign_distribute(
    const model::ResidualView& view, model::ClientId i, model::ClusterId k,
    const AllocatorOptions& opts, const InsertionConstraints& constraints = {},
    InsertionStats* stats = nullptr);

/// Convenience: best insertion across all clusters (nullopt if none fits).
std::optional<InsertionPlan> best_insertion(
    const model::Allocation& alloc, model::ClientId i,
    const AllocatorOptions& opts, const InsertionConstraints& constraints = {},
    InsertionStats* stats = nullptr);

/// best_insertion against a ResidualView snapshot.
std::optional<InsertionPlan> best_insertion(
    const model::ResidualView& view, model::ClientId i,
    const AllocatorOptions& opts, const InsertionConstraints& constraints = {},
    InsertionStats* stats = nullptr);

}  // namespace cloudalloc::alloc
