#include "alloc/sharded.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "alloc/assign_distribute.h"
#include "alloc/move_engine.h"
#include "alloc/scratch.h"
#include "common/check.h"
#include "common/prof.h"
#include "model/alloc_state.h"
#include "model/residual.h"

namespace cloudalloc::alloc {

using model::Allocation;
using model::ClientId;
using model::ResidualView;

namespace {

/// Clients priced per frozen snapshot. Fixed (never derived from the shard
/// or worker count) so the block partition — and with it every snapshot a
/// plan is priced against — is a pure function of the client order. Larger
/// blocks amortize the per-shard snapshot copy over more probes but price
/// staler, which costs sequential re-price fallbacks at merge time.
constexpr int kBlock = 1024;

}  // namespace

Allocation sharded_greedy_insert(const Allocation& base,
                                 const std::vector<ClientId>& order,
                                 const AllocatorOptions& opts,
                                 const dist::ParallelEval& eval) {
  // analyze: allow(allocation-copy) -- greedy-base boundary: the sharded
  // solve's settled state starts as one private copy of the base.
  model::AllocState state{base.clone()};
  MoveEngine mover(state, opts);
  const int shards = std::max(1, opts.num_shards);
  const int n = static_cast<int>(order.size());
  double profit_now = state.profit();

  std::vector<std::optional<InsertionPlan>> plans;
  for (int b0 = 0; b0 < n; b0 += kBlock) {
    const int len = std::min(kBlock, n - b0);

    // Freeze: settle the engine so the snapshot reads are pure, then price
    // the whole block against it. Each shard leases a pooled scratch view
    // refreshed to this block's snapshot (never shared between concurrent
    // shards, so the lazy candidate index stays private); every plan is a
    // pure function of the snapshot values, so neither the shard grain
    // nor the scheduling can change a single plan bit.
    {
      PROF_ZONE("sharded.price_block");
      profit_now = state.profit();
      CHECK(state.ledger().profit_settled());
      const ResidualView& frozen = state.view();
      const std::uint64_t stamp = ViewScratchPool::next_stamp();
      plans.assign(static_cast<std::size_t>(len), std::nullopt);
      const int grain = (len + shards - 1) / shards;
      eval.for_chunks(len, grain, [&](int begin, int end) {
        ViewScratchPool::Lease lease =
            ViewScratchPool::instance().acquire(frozen, stamp);
        const ResidualView& scratch = lease.view();
        for (int idx = begin; idx < end; ++idx) {
          const ClientId i = order[static_cast<std::size_t>(b0 + idx)];
          plans[static_cast<std::size_t>(idx)] =
              best_insertion(scratch, i, opts);
        }
      });
    }

    // Merge: apply sequentially in block order against the live engine.
    // Earlier merges may have consumed the capacity a snapshot plan
    // assumed, so revalidate the fit and fall back to a live re-price when
    // it no longer holds. Same admission rule as the sequential greedy:
    // every feasible client is served unless allow_rejection screens a
    // money-losing score.
    PROF_ZONE("sharded.merge_block");
    for (int idx = 0; idx < len; ++idx) {
      std::optional<InsertionPlan> plan =
          std::move(plans[static_cast<std::size_t>(idx)]);
      if (!plan) continue;
      const ClientId i = order[static_cast<std::size_t>(b0 + idx)];
      CHECK(!state.ledger().is_assigned(i));
      if (!mover.fits(i, *plan)) {
        plan = best_insertion(state.view(), i, opts);
        if (!plan) continue;
      }
      if (opts.allow_rejection && plan->score < 0.0) continue;
      mover.apply(i, plan, profit_now);
    }
  }
  return std::move(state).release();
}

}  // namespace cloudalloc::alloc
