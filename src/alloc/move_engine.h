// MoveEngine: the propose -> delta-price -> commit/rollback front end of
// the allocation-state engine (model/alloc_state.h).
//
// A proposal speculates on the engine's ResidualView with the bitwise
// Undo log (vacate the client, probe Assign_Distribute, restore) and
// prices the move with the exact telescoped delta (alloc/delta_price.h) —
// no ledger mutation, no cache repair, no clone. A commit then applies
// the move through the engine with the exact-profit accept test the
// reassignment passes have always used: the true profit may regress past
// 1e-12 only on a rollback, and `profit_now` carries the settled profit
// across moves so nothing is ever re-evaluated wholesale.
//
// The annealing baseline uses apply() instead of commit(): Metropolis
// acceptance deliberately takes downhill moves, so the exact gate is the
// caller's to decide there.
#pragma once

#include <optional>

#include "alloc/assign_distribute.h"
#include "alloc/options.h"
#include "model/alloc_state.h"

namespace cloudalloc::alloc {

class MoveEngine {
 public:
  MoveEngine(model::AllocState& state, const AllocatorOptions& opts)
      : state_(state), opts_(opts) {}

  struct Proposal {
    /// Best insertion found (nullopt: nowhere feasible to place i).
    std::optional<InsertionPlan> plan;
    /// Delta-priced profit change of the whole move (vacate + insert),
    /// net of the migration penalty when opts.migration_cost is on.
    double predicted = 0.0;
  };

  /// Best move of client i across all clusters, priced against the
  /// current state (i is vacated first when assigned; the view is
  /// bitwise-restored before returning).
  Proposal propose_best(model::ClientId i,
                        const InsertionConstraints& constraints = {});

  /// Same, but restricted to cluster k.
  Proposal propose_into(model::ClientId i, model::ClusterId k,
                        const InsertionConstraints& constraints = {});

  /// Capacity revalidation of a (possibly stale) plan against the live
  /// view; a plan priced on a snapshot may no longer fit.
  bool fits(model::ClientId i, const InsertionPlan& plan) const;

  /// Applies `plan` to client i with the exact-profit accept test
  /// (commit only if true profit does not regress past 1e-12 — raised by
  /// the move's migration_penalty when opts.migration_cost is on, so a
  /// warm-started epoch only migrates traffic that pays for itself),
  /// rolling the engine back otherwise. Updates the carried `profit_now`
  /// and accumulates the realized change into `delta`.
  bool commit(model::ClientId i, bool was_assigned, const InsertionPlan& plan,
              double& profit_now, double& delta);

  /// Unconditional apply (no accept test): moves i to `plan`, or removes
  /// i when `plan` is nullopt. Returns the exact realized delta and
  /// updates `profit_now`. For acceptance rules owned by the caller
  /// (Metropolis).
  double apply(model::ClientId i, const std::optional<InsertionPlan>& plan,
               double& profit_now);

 private:
  model::AllocState& state_;
  const AllocatorOptions& opts_;
  model::ResidualView::Undo undo_;
};

}  // namespace cloudalloc::alloc
