// Cloud-level client reassignment: the local-search move that shifts whole
// clients between clusters (Section V's "change client assignment to
// decrease the resource saturation ... and combine the clients to decrease
// the number of active servers"). The same pass, applied to a random
// allocation, is the optimizer used on every Monte-Carlo sample in the
// paper's Figure 4/5 "best found" reference.
#pragma once

#include "alloc/options.h"
#include "dist/parallel_eval.h"
#include "model/alloc_state.h"
#include "model/allocation.h"

namespace cloudalloc::alloc {

/// One pass: every client (worst-served first) is removed and re-inserted
/// into its best cluster; each move commits only if true profit improves
/// (by at least the move's migration penalty when opts.migration_cost is
/// on). Also retries clients that are currently unassigned — except those
/// outside opts.insertable, which stay the serving layer's to admit.
/// Moves are probed
/// and delta-priced against a ResidualView mirror of the allocation, so a
/// client with no (worthwhile) move costs no Allocation mutation and no
/// profit-cache repair. Returns the delta.
double reassign_pass(model::Allocation& alloc, const AllocatorOptions& opts);
double reassign_pass(model::AllocState& state, const AllocatorOptions& opts);

/// Snapshot-scored variant used by the allocator hot path: candidate moves
/// for all clients are priced concurrently against a frozen SoA snapshot
/// (ResidualView — flat vectors, no Allocation clones; read-only fan-out
/// on `eval`), then the winners are applied sequentially, re-validated
/// against the live state (capacity fit + delta-price screen + true profit
/// improvement; a stale plan falls back to a live re-price). The apply
/// order and all tie-breaks are fixed, so the result is bit-identical at
/// any thread count — including the inline default. Returns the delta.
double reassign_pass_snapshot(model::Allocation& alloc,
                              const AllocatorOptions& opts,
                              const dist::ParallelEval& eval = {});
double reassign_pass_snapshot(model::AllocState& state,
                              const AllocatorOptions& opts,
                              const dist::ParallelEval& eval = {});

/// Repeats reassign_pass until a pass yields (relatively) less than
/// opts.steady_tolerance, at most `max_rounds` times. Returns total delta.
double reassign_until_steady(model::Allocation& alloc,
                             const AllocatorOptions& opts,
                             int max_rounds = 10);
double reassign_until_steady(model::AllocState& state,
                             const AllocatorOptions& opts,
                             int max_rounds = 10);

/// Admission-control pass (only meaningful with opts.allow_rejection):
/// removes every client whose removal raises true profit (serving it costs
/// more in energy than its SLA pays). Returns the realized profit delta.
double drop_unprofitable_clients(model::Allocation& alloc,
                                 const AllocatorOptions& opts);
double drop_unprofitable_clients(model::AllocState& state,
                                 const AllocatorOptions& opts);

}  // namespace cloudalloc::alloc
