// size_share_grid: the share-policy algebra of Assign_Distribute's per-
// quantum sizing loop, batched over the whole psi grid on SIMD lanes.
//
// Bit-identity: each output element is produced by the exact operation
// chain of the scalar path (gps_min_share -> preferred_share -> clamp,
// in that order, with std::min/std::max operand order preserved by
// simd::vmin/vmax), every operation is elementwise, and this TU compiles
// with -ffp-contract=off (alloc/CMakeLists.txt) so the mul+add in the
// preferred-share numerator is never fused on the FMA-capable targets.
// The scalar tail below therefore matches the vector body bitwise, and
// both match the historical per-g loop in assign_distribute.cpp.
#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "alloc/share_policy.h"
#include "common/check.h"
#include "common/mathutil.h"
#include "common/simd.h"

namespace cloudalloc::alloc {

using units::ArrivalRate;
using units::Share;

namespace {

/// Scalar per-grid constants, hoisted once per call.
struct GridConsts {
  double lambda;       ///< client arrival rate
  double headroom;     ///< stability headroom (requests/s)
  double alpha;        ///< per-request work
  double cap;          ///< resource capacity
  double slack_work;   ///< per-client fleet slack budget
  double delay_slack;  ///< delay-target slack, +inf when no zero-crossing
  double free_share;   ///< free capacity on this server
};

template <int W>
[[gnu::always_inline]] inline void grid_w(const GridConsts& gc,
                                          const double* psi, int G,
                                          ArrivalRate* arrivals, Share* phi,
                                          double* floors) {
  int g = 1;
  if constexpr (W > 1) {
    const auto lambda = simd::splat<W>(gc.lambda);
    const auto headroom = simd::splat<W>(gc.headroom);
    const auto alpha = simd::splat<W>(gc.alpha);
    const auto cap = simd::splat<W>(gc.cap);
    const auto slack_w = simd::splat<W>(gc.slack_work);
    const auto delay_slack = simd::splat<W>(gc.delay_slack);
    const auto free_share = simd::splat<W>(gc.free_share);
    for (; g + W <= G + 1; g += W) {
      const auto p = simd::load<W>(psi + g);
      const auto arr = p * lambda;
      const auto floor_share = (arr + headroom) * alpha / cap;
      // preferred_share: slack = min(psi * budget, delay-target slack);
      // min's operand order matches the scalar std::min(slack, delay_slack).
      const auto slack = simd::vmin<W>(p * slack_w, delay_slack);
      const auto share = (arr * alpha + slack) / cap;
      // clamp(share, floor, free): lo = floor > hi ? hi : lo, then
      // min(max(x, lo), hi) — same comparisons as common/mathutil.h.
      const auto lo =
          simd::select<W>(floor_share > free_share, free_share, floor_share);
      const auto clamped =
          simd::vmin<W>(simd::vmax<W>(share, lo), free_share);
      simd::store<W>(arrivals + g, arr);
      simd::store<W>(phi + g, clamped);
      simd::store<W>(floors + g, floor_share);
    }
  }
  for (; g <= G; ++g) {
    const double arr = psi[g] * gc.lambda;
    const double floor_share = (arr + gc.headroom) * gc.alpha / gc.cap;
    const double slack = std::min(psi[g] * gc.slack_work, gc.delay_slack);
    const double share = (arr * gc.alpha + slack) / gc.cap;
    double lo = floor_share;
    if (lo > gc.free_share) lo = gc.free_share;
    arrivals[g] = ArrivalRate{arr};
    phi[g] = Share{std::min(std::max(share, lo), gc.free_share)};
    floors[g] = floor_share;
  }
}

void grid_scalar(const GridConsts& gc, const double* psi, int G,
                 ArrivalRate* arrivals, Share* phi, double* floors) {
  grid_w<1>(gc, psi, G, arrivals, phi, floors);
}

#if CLOUDALLOC_SIMD_X86
__attribute__((target("avx2"))) void grid_avx2(const GridConsts& gc,
                                               const double* psi, int G,
                                               ArrivalRate* arrivals,
                                               Share* phi, double* floors) {
  grid_w<4>(gc, psi, G, arrivals, phi, floors);
}
__attribute__((target("avx512f"))) void grid_avx512(const GridConsts& gc,
                                                    const double* psi, int G,
                                                    ArrivalRate* arrivals,
                                                    Share* phi,
                                                    double* floors) {
  grid_w<8>(gc, psi, G, arrivals, phi, floors);
}
#endif

}  // namespace

int size_share_grid(ArrivalRate lambda, int G, units::WorkRate cap,
                    units::Work alpha, units::Time zc,
                    units::WorkRate slack_work, const AllocatorOptions& opts,
                    double free_share, ArrivalRate* arrivals, Share* phi) {
  CHECK(G >= 1);
  CHECK(cap.value() > 0.0);
  CHECK(alpha.value() > 0.0);
  CHECK(lambda.value() >= 0.0);
  CHECK(opts.stability_headroom >= 0.0);

  GridConsts gc;
  gc.lambda = lambda.value();
  gc.headroom = opts.stability_headroom;
  gc.alpha = alpha.value();
  gc.cap = cap.value();
  gc.slack_work = slack_work.value();
  // preferred_share only caps by the delay-target slack for finite positive
  // zero-crossings; +inf makes the min a no-op, same as the scalar branch.
  gc.delay_slack =
      (std::isfinite(zc.value()) && zc.value() > 0.0)
          ? gc.alpha / (opts.delay_target_fraction * zc.value())
          : std::numeric_limits<double>::infinity();
  gc.free_share = free_share;

  thread_local std::vector<double> psi, floors;
  const auto width = static_cast<std::size_t>(G) + 1;
  if (psi.size() < width) {
    psi.resize(width);
    floors.resize(width);
  }
  // The psi ladder is a pure elementwise division; filled scalar, consumed
  // by every lane width identically.
  for (int g = 1; g <= G; ++g)
    psi[static_cast<std::size_t>(g)] =
        static_cast<double>(g) / static_cast<double>(G);

#if CLOUDALLOC_SIMD_X86
  switch (simd::active_width()) {
    case 8:
      grid_avx512(gc, psi.data(), G, arrivals, phi, floors.data());
      break;
    case 4:
      grid_avx2(gc, psi.data(), G, arrivals, phi, floors.data());
      break;
    default:
      grid_scalar(gc, psi.data(), G, arrivals, phi, floors.data());
      break;
  }
#else
  grid_scalar(gc, psi.data(), G, arrivals, phi, floors.data());
#endif

  // size_share's feasibility test, in grid order: the first g whose
  // stability floor exceeds the free capacity ends the feasible prefix
  // (larger g only needs more capacity).
  const double limit = free_share + kEps;
  int gmax = 0;
  for (int g = 1; g <= G; ++g) {
    if (floors[static_cast<std::size_t>(g)] > limit) break;
    gmax = g;
  }
  return gmax;
}

}  // namespace cloudalloc::alloc
