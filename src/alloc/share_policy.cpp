#include "alloc/share_policy.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace cloudalloc::alloc {
namespace {

/// Keep a sliver of slack even in overload, so stability floors plus a
/// hair of quality remain expressible.
constexpr double kMinSlackWork = 0.05;
/// Fraction of the raw fleet slack the policy hands out; the remainder is
/// mobility headroom for the local search.
constexpr double kSlackSafety = 0.8;
/// Planning utilization ceiling: when demand exceeds this fraction of
/// capacity, the policy sizes shares as if only the supportable fraction
/// of clients were planned for. Without it an overloaded fleet divides
/// its deficit across everyone, starving even the clients that admission
/// control would happily serve profitably.
constexpr double kPlanningUtilization = 0.7;

double per_client_slack(double cap, double demand, double n) {
  if (demand <= 0.0) return kSlackSafety * cap / n;
  const double demand_eff = std::min(demand, kPlanningUtilization * cap);
  const double n_eff = std::max(1.0, n * demand_eff / demand);
  return std::max(kMinSlackWork,
                  kSlackSafety * (cap - demand_eff) / n_eff);
}

}  // namespace

ShareSizing ShareSizing::from(const model::Cloud& cloud) {
  ShareSizing sizing;
  const double n = std::max(1, cloud.num_clients());
  sizing.slack_work_p = units::WorkRate{
      per_client_slack(cloud.total_cap_p(), cloud.total_demand_p(), n)};
  sizing.slack_work_n = units::WorkRate{
      per_client_slack(cloud.total_cap_n(), cloud.total_demand_n(), n)};
  return sizing;
}

// preferred_share / share_cap are inline in the header (hot path).

}  // namespace cloudalloc::alloc
