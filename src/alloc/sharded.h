// Sharded (block-synchronous) greedy construction for 100k-client scale.
//
// The historical greedy inserts clients strictly sequentially: each probe
// prices against the state left by every earlier insertion, which is
// inherently serial. This variant trades a bounded amount of pricing
// staleness for parallelism: clients are consumed in fixed-size blocks,
// every client in a block is priced with best_insertion against a FROZEN
// ResidualView snapshot of the block start (the shards — each shard
// copies the flat snapshot and probes its slice of the block on
// dist::ParallelEval), and the resulting plans are then merged
// sequentially in block order through MoveEngine: a capacity revalidation
// (fits) against the live engine, a live re-price when the snapshot plan
// no longer fits, and an unconditional apply (the greedy serves every
// feasible client; admission control stays the allow_rejection check, as
// in the sequential path).
//
// Determinism: every plan is a pure function of the frozen snapshot
// values — shard boundaries only partition WHO computes it — and the
// merge order is the fixed client order, so the resulting allocation is
// bit-identical at any shard count and any thread count. It is NOT the
// sequential greedy's allocation (block snapshots price a little staler
// than the live state); num_shards = 0 in AllocatorOptions keeps the
// historical path.
#pragma once

#include <vector>

#include "alloc/options.h"
#include "dist/parallel_eval.h"
#include "model/allocation.h"

namespace cloudalloc::alloc {

/// One sharded greedy pass over `order` starting from `base` (which
/// carries background load and possibly earlier epochs' state). Uses
/// max(1, opts.num_shards) shards per block on `eval`.
model::Allocation sharded_greedy_insert(const model::Allocation& base,
                                        const std::vector<model::ClientId>& order,
                                        const AllocatorOptions& opts,
                                        const dist::ParallelEval& eval = {});

}  // namespace cloudalloc::alloc
