#include "alloc/server_power.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "alloc/adjust_shares.h"
#include "alloc/assign_distribute.h"
#include "common/check.h"
#include "model/evaluator.h"

namespace cloudalloc::alloc {
namespace {

using model::Allocation;
using model::ClientId;
using model::Cloud;
using model::ClusterId;
using model::ServerClassId;
using model::ServerId;

/// Revenue share a server can claim: sum over hosted slices of
/// psi * lambda_agreed * U(R), minus its operating cost. TurnOFF candidates
/// are ranked by this, lowest first.
double server_value(const Allocation& alloc, ServerId j) {
  const Cloud& cloud = alloc.cloud();
  double value = 0.0;
  for (ClientId i : alloc.clients_on(j)) {
    const double r = alloc.response_time(i);
    if (!std::isfinite(r)) continue;
    for (const auto& p : alloc.placements(i)) {
      if (p.server != j) continue;
      value += p.psi * cloud.client(i).lambda_agreed *
               cloud.utility_of(i).value(r);
    }
  }
  return value - model::server_cost(alloc, j);
}

/// Clients in cluster k whose delivered utility is below the degraded
/// threshold (these are the ones a new server could help).
std::vector<ClientId> degraded_clients(const Allocation& alloc, ClusterId k,
                                       const AllocatorOptions& opts) {
  const Cloud& cloud = alloc.cloud();
  std::vector<ClientId> out;
  for (ClientId i = 0; i < cloud.num_clients(); ++i) {
    if (alloc.cluster_of(i) != k) continue;
    const auto& fn = cloud.utility_of(i);
    const double max_u = fn.max_value();
    if (max_u <= 0.0) continue;
    const double r = alloc.response_time(i);
    const double u = std::isfinite(r) ? fn.value(r) : 0.0;
    if (u < opts.degraded_utility_fraction * max_u) out.push_back(i);
  }
  // Worst-served first: they have the most to gain.
  std::sort(out.begin(), out.end(), [&](ClientId a, ClientId b) {
    return alloc.response_time(a) > alloc.response_time(b);
  });
  return out;
}

}  // namespace

double turn_on_servers(Allocation& alloc, ClusterId k,
                       const AllocatorOptions& opts) {
  const Cloud& cloud = alloc.cloud();

  // One inactive representative per server class present in this cluster.
  std::map<ServerClassId, ServerId> candidates;
  for (ServerId j : cloud.cluster(k).servers)
    if (!alloc.active(j) && !candidates.count(cloud.server(j).server_class))
      candidates.emplace(cloud.server(j).server_class, j);
  if (candidates.empty()) return 0.0;

  double total_delta = 0.0;
  for (const auto& [cls, j] : candidates) {
    (void)cls;
    const std::vector<ClientId> bidders = degraded_clients(alloc, k, opts);
    if (bidders.empty()) break;

    Allocation trial = alloc.clone();
    // Bidding phase: moves may individually lose P0 (it is sunk once the
    // first bidder lands on j), so allow per-move regressions on the trial
    // state and judge the bundle at the gate below.
    bool anyone_used_j = false;
    for (ClientId i : bidders) {
      const double before_move = model::profit(trial);
      const ClusterId old_cluster = trial.cluster_of(i);
      const auto old_placements = trial.placements(i);
      trial.clear(i);
      auto plan = assign_distribute(trial, i, k, opts);
      if (!plan) {
        trial.assign(i, old_cluster, old_placements);
        continue;
      }
      trial.assign(i, k, plan->placements);
      const bool uses_j =
          std::any_of(plan->placements.begin(), plan->placements.end(),
                      [&](const auto& p) { return p.server == j; });
      const double after_move = model::profit(trial);
      // Tolerate paying P0 of the candidate on the move that opens it.
      const double sunk = (uses_j && !anyone_used_j)
                              ? cloud.server_class_of(j).cost_fixed
                              : 0.0;
      if (after_move + sunk + 1e-12 < before_move) {
        trial.assign(i, old_cluster, old_placements);
        continue;
      }
      anyone_used_j = anyone_used_j || uses_j;
    }
    if (!anyone_used_j) continue;

    const double gate_before = model::profit(alloc);
    const double gate_after = model::profit(trial);
    if (gate_after > gate_before + 1e-12) {
      total_delta += gate_after - gate_before;
      alloc = std::move(trial);
    }
  }
  return total_delta;
}

double turn_off_servers(Allocation& alloc, ClusterId k,
                        const AllocatorOptions& opts) {
  const Cloud& cloud = alloc.cloud();
  double total_delta = 0.0;

  // Rank active, non-pinned servers by value, worst first.
  std::vector<ServerId> candidates;
  for (ServerId j : cloud.cluster(k).servers)
    if (alloc.active(j) && !cloud.server(j).background.keeps_on)
      candidates.push_back(j);
  std::sort(candidates.begin(), candidates.end(), [&](ServerId a, ServerId b) {
    return server_value(alloc, a) < server_value(alloc, b);
  });

  // Shares on healthy servers sit up to share_growth x their preferred
  // size; evicted clients only fit if that surplus is reclaimed first.
  AllocatorOptions shrink = opts;
  shrink.share_growth = 1.0;

  for (ServerId j : candidates) {
    if (!alloc.active(j)) continue;  // emptied by an earlier shutdown
    Allocation trial = alloc.clone();
    const std::vector<ClientId> evicted = trial.clients_on(j);  // copy
    InsertionConstraints constraints;
    constraints.exclude = j;
    constraints.allow_inactive = false;  // reassign onto *active* servers

    // Make room on the survivors, then evict & reinsert.
    for (ServerId other : cloud.cluster(k).servers)
      if (other != j && trial.active(other))
        adjust_resource_shares(trial, other, shrink);

    bool ok = true;
    for (ClientId i : evicted) {
      const ClusterId home = trial.cluster_of(i);
      trial.clear(i);
      auto plan = assign_distribute(trial, i, home, opts, constraints);
      if (!plan) {
        ok = false;
        break;
      }
      trial.assign(i, home, std::move(plan->placements));
    }
    if (!ok) continue;

    // Re-grow shares to the normal policy before judging the result.
    for (ServerId other : cloud.cluster(k).servers)
      if (trial.active(other)) adjust_resource_shares(trial, other, opts);

    const double gate_before = model::profit(alloc);
    const double gate_after = model::profit(trial);
    if (gate_after > gate_before + 1e-12) {
      total_delta += gate_after - gate_before;
      alloc = std::move(trial);
    }
  }
  return total_delta;
}

double adjust_server_power(Allocation& alloc, const AllocatorOptions& opts) {
  double delta = 0.0;
  for (ClusterId k = 0; k < alloc.cloud().num_clusters(); ++k) {
    if (opts.enable_turn_on) delta += turn_on_servers(alloc, k, opts);
    if (opts.enable_turn_off) delta += turn_off_servers(alloc, k, opts);
  }
  return delta;
}

}  // namespace cloudalloc::alloc
