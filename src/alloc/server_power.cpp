#include "alloc/server_power.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "alloc/adjust_shares.h"
#include "alloc/assign_distribute.h"
#include "alloc/delta_price.h"
#include "common/check.h"
#include "model/alloc_state.h"
#include "model/evaluator.h"
#include "model/residual.h"

namespace cloudalloc::alloc {
namespace {

using model::AllocState;
using model::Allocation;
using model::ClientId;
using model::Cloud;
using model::ClusterId;
using model::ServerClassId;
using model::ServerId;

/// Revenue share a server can claim: sum over hosted slices of
/// psi * lambda_agreed * U(R), minus its operating cost. TurnOFF candidates
/// are ranked by this, lowest first.
double server_value(const Allocation& alloc, ServerId j) {
  const Cloud& cloud = alloc.cloud();
  double value = 0.0;
  for (ClientId i : alloc.clients_on(j)) {
    const double r = alloc.response_time(i);
    if (!std::isfinite(r)) continue;
    for (const auto& p : alloc.placements(i)) {
      if (p.server != j) continue;
      value += p.psi * cloud.client(i).lambda_agreed *
               cloud.utility_of(i).value(r);
    }
  }
  return value - model::server_cost(alloc, j);
}

/// Clients in cluster k whose delivered utility is below the degraded
/// threshold (these are the ones a new server could help).
std::vector<ClientId> degraded_clients(const Allocation& alloc, ClusterId k,
                                       const AllocatorOptions& opts) {
  const Cloud& cloud = alloc.cloud();
  std::vector<ClientId> out;
  for (ClientId i : cloud.client_ids()) {
    if (alloc.cluster_of(i) != k) continue;
    const auto& fn = cloud.utility_of(i);
    const double max_u = fn.max_value();
    if (max_u <= 0.0) continue;
    const double r = alloc.response_time(i);
    const double u = std::isfinite(r) ? fn.value(r) : 0.0;
    if (u < opts.degraded_utility_fraction * max_u) out.push_back(i);
  }
  // Worst-served first: they have the most to gain.
  std::sort(out.begin(), out.end(), [&](ClientId a, ClientId b) {
    return alloc.response_time(a) > alloc.response_time(b);
  });
  return out;
}

}  // namespace

double turn_on_servers(AllocState& state, ClusterId k,
                       const AllocatorOptions& opts) {
  const Cloud& cloud = state.cloud();

  // One inactive representative per server class present in this cluster.
  std::map<ServerClassId, ServerId> candidates;
  for (ServerId j : cloud.cluster(k).servers)
    if (!state.ledger().active(j) &&
        !candidates.count(cloud.server(j).server_class))
      candidates.emplace(cloud.server(j).server_class, j);
  if (candidates.empty()) return 0.0;

  double total_delta = 0.0;
  for (const auto& [cls, j] : candidates) {
    (void)cls;
    const std::vector<ClientId> bidders =
        degraded_clients(state.ledger(), k, opts);
    if (bidders.empty()) break;

    // Full-fidelity trial state (clone-try-swap boundary): bids mutate the
    // branch, probes run on the branch's view, and the whole bundle is
    // adopted or dropped at the gate.
    AllocState trial = state.branch();
    // Bidding phase: moves may individually lose P0 (it is sunk once the
    // first bidder lands on j), so allow per-move regressions on the trial
    // state and judge the bundle at the gate below. Under migration
    // pricing each accepted bid also carries its redirection charge, and
    // the bundle gate must clear the accepted bids' total.
    bool anyone_used_j = false;
    double bundle_penalty = 0.0;
    for (ClientId i : bidders) {
      const double before_move = trial.profit();
      const ClusterId old_cluster = trial.ledger().cluster_of(i);
      const auto old_placements = trial.ledger().placements(i);
      trial.clear(i);
      auto plan = assign_distribute(trial.view(), i, k, opts);
      if (!plan) {
        trial.assign(i, old_cluster, old_placements);
        continue;
      }
      const double penalty =
          migration_penalty(opts, old_placements, plan->placements);
      trial.assign(i, k, plan->placements);
      const bool uses_j =
          std::any_of(plan->placements.begin(), plan->placements.end(),
                      [&](const auto& p) { return p.server == j; });
      const double after_move = trial.profit();
      // Tolerate paying P0 of the candidate on the move that opens it.
      const double sunk = (uses_j && !anyone_used_j)
                              ? cloud.server_class_of(j).cost_fixed
                              : 0.0;
      if (after_move + sunk + 1e-12 < before_move + penalty) {
        trial.assign(i, old_cluster, old_placements);
        continue;
      }
      anyone_used_j = anyone_used_j || uses_j;
      bundle_penalty += penalty;
    }
    if (!anyone_used_j) continue;

    const double gate_before = state.profit();
    const double gate_after = trial.profit();
    if (gate_after > gate_before + bundle_penalty + 1e-12) {
      total_delta += gate_after - gate_before;
      state.adopt(std::move(trial));
    }
  }
  return total_delta;
}

double turn_off_servers(AllocState& state, ClusterId k,
                        const AllocatorOptions& opts) {
  const Cloud& cloud = state.cloud();
  double total_delta = 0.0;

  // Rank active, non-pinned servers by value, worst first. Values are
  // precomputed once: server_value walks the server's hosted clients, so
  // evaluating it inside the sort comparator would cost O(C log C) passes.
  std::vector<std::pair<double, ServerId>> ranked;
  for (ServerId j : cloud.cluster(k).servers)
    if (state.ledger().active(j) && !cloud.server(j).background.keeps_on)
      ranked.emplace_back(server_value(state.ledger(), j), j);
  std::sort(ranked.begin(), ranked.end());

  // Shares on healthy servers sit up to share_growth x their preferred
  // size; evicted clients only fit if that surplus is reclaimed first.
  AllocatorOptions shrink = opts;
  shrink.share_growth = 1.0;

  // The shrunk cluster is the same for every candidate whose attempt does
  // not commit, so it is built once and shared: one branch + one share
  // sweep per pass instead of per candidate (rebuilt after a commit).
  // Shrinking the candidate itself is immaterial — its clients are evicted
  // before anything reads their shares, and its aggregates reset exactly
  // to zero when it empties.
  std::optional<AllocState> shrunk;
  const auto ensure_base = [&] {
    if (shrunk) return;
    shrunk.emplace(state.branch());
    for (ServerId other : cloud.cluster(k).servers)
      if (shrunk->ledger().active(other))
        adjust_resource_shares(*shrunk, other, shrink);
    shrunk->profit();  // settle before snapshotting
  };

  InsertionConstraints constraints;
  constraints.allow_inactive = false;  // reassign onto *active* servers

  int failures = 0;  // consecutive non-commits, for the patience exit
  for (const auto& [value, j] : ranked) {
    (void)value;
    if (opts.power_patience > 0 && failures >= opts.power_patience) break;
    if (!state.ledger().active(j)) continue;  // emptied by earlier shutdown
    ensure_base();
    constraints.exclude = j;

    // Probe the shutdown clone-free: evict and re-insert the candidate's
    // clients one at a time on a copy of the shrunk engine's view, pricing
    // each step with the delta pricer. The view mirrors the shrunk ledger
    // bitwise, so the plans transfer verbatim to the replay below.
    model::ResidualView probe = shrunk->view();
    const std::vector<ClientId> evicted =
        shrunk->ledger().clients_on(j);  // copy
    std::vector<InsertionPlan> plans;
    plans.reserve(evicted.size());
    double move_delta = 0.0;
    double eviction_penalty = 0.0;  // migration charges of the forced moves
    bool ok = true;
    for (ClientId i : evicted) {
      const std::vector<model::Placement>& old_ps =
          shrunk->ledger().placements(i);
      move_delta += removal_delta(probe, i, old_ps);
      probe.remove_client(i, old_ps);
      auto plan = assign_distribute(probe, i, shrunk->ledger().cluster_of(i),
                                    opts, constraints);
      if (!plan) {
        ok = false;
        break;
      }
      move_delta += insertion_delta(probe, i, plan->placements);
      eviction_penalty += migration_penalty(opts, old_ps, plan->placements);
      probe.add_client(i, plan->placements);
      plans.push_back(std::move(*plan));
    }
    if (!ok) {
      ++failures;
      continue;
    }

    // Screen: the shrink and re-grow sweeps on the survivors roughly
    // cancel at the gate, so the priced moves carry the decision; only
    // candidates within the margin pay for materialization.
    if (opts.power_screen_margin >= 0.0 &&
        move_delta - eviction_penalty < -opts.power_screen_margin) {
      ++failures;
      continue;
    }

    // Materialize: replay the probed plans on a branch of the shrunk
    // state, re-grow shares to the normal policy, and judge the exact
    // profit gate.
    AllocState trial = shrunk->branch();
    for (std::size_t idx = 0; idx < evicted.size(); ++idx) {
      const ClientId i = evicted[idx];
      trial.clear(i);
      trial.assign(i, plans[idx].cluster, std::move(plans[idx].placements));
    }
    for (ServerId other : cloud.cluster(k).servers)
      if (trial.ledger().active(other))
        adjust_resource_shares(trial, other, opts);

    const double gate_before = state.profit();
    const double gate_after = trial.profit();
    if (gate_after > gate_before + eviction_penalty + 1e-12) {
      total_delta += gate_after - gate_before;
      state.adopt(std::move(trial));
      shrunk.reset();
      failures = 0;
    } else {
      ++failures;
    }
  }
  return total_delta;
}

double adjust_server_power(AllocState& state, const AllocatorOptions& opts) {
  double delta = 0.0;
  for (ClusterId k : state.cloud().cluster_ids()) {
    if (opts.enable_turn_on) delta += turn_on_servers(state, k, opts);
    if (opts.enable_turn_off) delta += turn_off_servers(state, k, opts);
  }
  return delta;
}

// --- Allocation wrappers ------------------------------------------------

double turn_on_servers(Allocation& alloc, ClusterId k,
                       const AllocatorOptions& opts) {
  AllocState state(std::move(alloc));
  const double delta = turn_on_servers(state, k, opts);
  alloc = std::move(state).release();
  return delta;
}

double turn_off_servers(Allocation& alloc, ClusterId k,
                        const AllocatorOptions& opts) {
  AllocState state(std::move(alloc));
  const double delta = turn_off_servers(state, k, opts);
  alloc = std::move(state).release();
  return delta;
}

double adjust_server_power(Allocation& alloc, const AllocatorOptions& opts) {
  AllocState state(std::move(alloc));
  const double delta = adjust_server_power(state, opts);
  alloc = std::move(state).release();
  return delta;
}

}  // namespace cloudalloc::alloc
