// Share-sizing policy shared by the greedy insertion and the local
// search's share-rebalance ceiling.
//
// A slice's GPS share is its load plus *slack*; the slack determines the
// M/M/1 sojourn (T = 1/slack_rate). Two forces bound the slack:
//  * delay quality — slack_rate = 1/(theta * zc) puts the per-stage
//    sojourn at a fixed fraction theta of the client's utility
//    zero-crossing zc;
//  * fleet economy — the whole cloud only has (capacity - demand) work
//    units of slack to hand out; giving each client more than its fair
//    slice starves late-arriving clients entirely (they go unserved).
//
// preferred_share() therefore grants min(delay-target slack, per-client
// fleet slack budget), expressed in work units so the size is invariant
// to how the client's traffic is split over servers. share_cap() (the
// KKT rebalance ceiling) allows a bounded multiple, so rebalancing can
// polish shares without freezing servers at 100% utilization and blocking
// all future moves (DESIGN.md [interp]).
#pragma once

#include <algorithm>
#include <cmath>

#include "alloc/options.h"
#include "common/check.h"
#include "common/units.h"
#include "model/cloud.h"

namespace cloudalloc::alloc {

/// Cloud-wide slack budgets, one per resource: work-units/second of slack
/// a single client may claim, = safety * (total capacity - total demand)
/// / num_clients, floored at a small positive value.
struct ShareSizing {
  units::WorkRate slack_work_p{1.0};
  units::WorkRate slack_work_n{1.0};

  static ShareSizing from(const model::Cloud& cloud);
};

/// Preferred share for a slice with Poisson arrivals `arrivals` on a
/// resource of capacity `cap`, per-request work `alpha`, serving a client
/// whose utility zero-crossing is `zc` (+inf for flat utilities).
/// `slack_work` is the resource's per-client budget from ShareSizing. The
/// result is NOT clamped to the stability floor or free capacity — callers
/// do that with their local bounds.
/// `psi` is the slice's fraction of the client's traffic: the slack
/// budget is scaled by psi so a split client consumes exactly one budget
/// in total (and the resulting delay penalty for splitting steers the
/// insertion DP toward concentration, as the paper's local search does).
/// Inline: the insertion scorer evaluates this over a million times per
/// allocator run.
inline units::Share preferred_share(units::ArrivalRate arrivals, double psi,
                                    units::WorkRate cap, units::Work alpha,
                                    units::Time zc, units::WorkRate slack_work,
                                    const AllocatorOptions& opts) {
  CHECK(cap.value() > 0.0);
  CHECK(alpha.value() > 0.0);
  CHECK(psi > 0.0 && psi <= 1.0 + 1e-9);
  units::WorkRate slack = psi * slack_work;
  if (std::isfinite(zc.value()) && zc.value() > 0.0) {
    // Delay-target slack in work units: slack_rate = 1/(theta*zc), times
    // alpha to convert requests/s to work/s.
    const units::WorkRate delay_slack =
        alpha / (opts.delay_target_fraction * zc);
    slack = std::min(slack, delay_slack);
  }
  return units::Share{(arrivals * alpha + slack) / cap};
}

/// Ceiling for the share-rebalance step: opts.share_growth times the
/// preferred share.
inline units::Share share_cap(units::ArrivalRate arrivals, double psi,
                              units::WorkRate cap, units::Work alpha,
                              units::Time zc, units::WorkRate slack_work,
                              const AllocatorOptions& opts) {
  return opts.share_growth *
         preferred_share(arrivals, psi, cap, alpha, zc, slack_work, opts);
}

/// Batched form of Assign_Distribute's per-quantum share sizing: for every
/// g = 1..G it computes arrivals[g] = (g/G) * lambda and phi[g] = the
/// size_share result (stability floor, preferred size, clamp to the free
/// capacity) for one resource, and returns the longest feasible prefix
/// gmax (the floor fits the free share for every g <= gmax; feasibility is
/// monotone in g). Entries past gmax are unspecified; entry 0 is untouched.
///
/// The kernel runs width-dispatched SIMD lanes (common/simd.h) in a TU
/// compiled with -ffp-contract=off, and is operation-for-operation the
/// scalar preferred_share/gps_min_share/clamp chain — the filled entries
/// are bitwise identical to the historical per-g scalar loop at any lane
/// width. `arrivals` and `phi` must each hold at least G + 1 entries.
int size_share_grid(units::ArrivalRate lambda, int G, units::WorkRate cap,
                    units::Work alpha, units::Time zc,
                    units::WorkRate slack_work, const AllocatorOptions& opts,
                    double free_share, units::ArrivalRate* arrivals,
                    units::Share* phi);

}  // namespace cloudalloc::alloc
