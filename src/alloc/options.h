// Tuning knobs of the Resource_Alloc heuristic (Figure 3 of the paper).
// Defaults follow the paper where it is explicit (3 initial solutions) and
// DESIGN.md [interp-*] notes where it is not.
#pragma once

#include <cstdint>
#include <vector>

namespace cloudalloc::alloc {

struct AllocatorOptions {
  /// Greedy multi-start count; the paper uses 3 and keeps the best.
  int num_initial_solutions = 3;

  /// Granularity G of the psi grid in Assign_Distribute's DP.
  int psi_grid = 10;

  /// Assign_Distribute first solves its DP over only the top-K servers of
  /// the cluster's insertion-candidate index and keeps that result when a
  /// score bound certifies no excluded server could participate in (or
  /// tie) an optimal split; otherwise it falls back to the exact full
  /// scan. Results are bit-identical either way — this knob only trades
  /// probe cost against fallback rate. Excluded servers that are bitwise
  /// twins of included ones (same class, activity, and free shares) are
  /// certified redundant by construction, so clusters of same-class
  /// servers with tied residuals — the common case — prune cleanly. The
  /// selection also self-extends past K to close a twin run split by the
  /// cut, and a per-cluster backoff stops attempting where certification
  /// keeps failing, so the default can sit right at the certification
  /// floor: an optimal split uses at most min(m, G) servers, so K = G
  /// (the psi grid) is the smallest set twin certification can ever
  /// endorse. <= 0 disables pruning and always runs the full scan.
  int candidate_topk = 10;

  /// Per-cluster backoff on the pruned path: after a failed
  /// certification the next 2^streak insertions on that cluster skip the
  /// pruned attempt and go straight to the exact scan (failure tracks how
  /// residual-diverse the cluster currently is, which single moves barely
  /// change). Plans are identical either way — this only trades probe
  /// cost. Off = attempt the pruned solve on every eligible insertion
  /// (deterministic attempt accounting, used by the pruning tests).
  bool candidate_backoff = true;

  /// Required absolute service-rate slack (requests/s) per M/M/1 queue so
  /// allocations stay strictly stable (the paper's "small positive" floor
  /// of constraint (7)).
  double stability_headroom = 0.05;

  /// When sizing a fresh slice's share, aim for a per-stage sojourn time of
  /// this fraction of the client's utility zero-crossing ([interp] — the
  /// scan lost the paper's exact share-sizing constant). The effective size
  /// is the minimum of this and the capacity-proportional size (see
  /// share_policy.h), so tight clouds shrink everyone's slack.
  double delay_target_fraction = 0.15;

  /// Ceiling multiplier for Adjust_ResourceShares: a slice's share may grow
  /// to at most share_growth x its preferred size, keeping free capacity on
  /// every server so the local search can still move clients.
  double share_growth = 1.5;

  /// Local-search loop: stop after this many rounds or when a full round
  /// improves profit by less than `steady_tolerance` (relative).
  int max_local_search_rounds = 12;
  double steady_tolerance = 1e-5;

  /// Wall-clock budget for the improvement loop in milliseconds; the loop
  /// stops after the first round that exceeds it. <= 0 means unlimited.
  /// Decision epochs have deadlines — the allocation must be ready before
  /// the predictions that shaped it go stale (Section III).
  double time_budget_ms = 0.0;

  /// TurnOFF pre-screen (absolute profit units): every candidate shutdown
  /// is first priced clone-free on a ResidualView of the shrunk cluster
  /// (evictions and re-insertions through the delta pricer); the expensive
  /// materialization — clone, share re-grow, exact profit gate — runs only
  /// when that estimate is above -power_screen_margin. The estimate omits
  /// the re-grow step, so the margin absorbs how much re-growing shares
  /// can add on top of the priced moves. Negative disables the screen
  /// (every surviving candidate is materialized and gated exactly).
  double power_screen_margin = 1.0;

  /// TurnOFF early exit: candidates are probed worst-value first, and a
  /// pass over a cluster stops after this many consecutive candidates
  /// fail (eviction infeasible, screened out, or gate-rejected). The
  /// ranking means every remaining candidate carries strictly more value
  /// than the ones that just failed, so shutdown attempts on them are
  /// even less likely to pay. <= 0 probes every candidate.
  int power_patience = 4;

  // Stage toggles (the ablation bench flips these).
  bool enable_adjust_shares = true;
  bool enable_adjust_dispersion = true;
  bool enable_turn_on = true;
  bool enable_turn_off = true;
  bool enable_reassign = true;

  /// Clients whose delivered utility is below this fraction of their
  /// maximum are treated as "degraded" by TurnON and reassignment passes.
  double degraded_utility_fraction = 0.9;

  /// Admission control (extension; the paper's constraint (6) serves every
  /// client). When true, the greedy skips clients whose approximate profit
  /// contribution is negative and the local search drops clients whose
  /// removal raises true profit.
  bool allow_rejection = false;

  // --- online serving (serve::OnlineServer; Mazzucco et al.'s admission
  // and hysteresis policies live in serve/admission.h) ------------------

  /// Migration pricing for warm-started epochs: moving an already-placed
  /// client is charged migration_cost x redirected_fraction(old, new) —
  /// the fraction of its traffic leaving its current servers
  /// (model/diff.h). The charge biases the ACCEPT tests of the move-making
  /// passes (MoveEngine commits, the reassign re-price, dispersion
  /// re-splits, TurnON bids, TurnOFF eviction gates): a move must now beat
  /// the state quo by at least its migration charge. It is a decision
  /// cost only — reported profit stays the paper's model profit, so with
  /// the knob at 0 (default) every pass is bit-identical to the historical
  /// behavior. Fresh insertions and removals migrate nothing.
  double migration_cost = 0.0;

  /// Online serving: when non-null, a num_clients-sized mask of the
  /// clients the allocator may INSERT — the greedy starts filter their
  /// orders by it, and the improvement passes skip currently-unassigned
  /// clients outside it (already-placed clients are adjusted and moved
  /// normally regardless). The serving layer points this at its admitted
  /// set so batch solves and repair rounds never conjure up a client that
  /// has not arrived or was turned away. Null (default) = every client;
  /// an all-true mask is bit-identical to null. Non-owning: the caller
  /// keeps the mask alive for the allocator call.
  const std::vector<std::uint8_t>* insertable = nullptr;

  /// Worker threads for the parallel evaluation engine (multi-start greedy
  /// starts, reassign candidate scoring, distributed cluster agents).
  /// 1 = run everything on the calling thread; 0 = use the hardware
  /// concurrency. The engine's reductions are deterministic: the same seed
  /// produces a bit-identical allocation at every value of num_threads.
  int num_threads = 1;

  /// Sharded greedy construction for large populations (alloc/sharded.h):
  /// > 0 switches build_initial_solution to the block-synchronous sharded
  /// greedy, which prices blocks of clients against a frozen snapshot in
  /// `num_shards` concurrent shards and merges the plans sequentially
  /// through MoveEngine with capacity revalidation. The result is a pure
  /// function of the scenario and the block size — every plan is priced on
  /// the snapshot, never on a shard's partial state — so profits are
  /// bit-identical at ANY shard count (1, 2, 4, 8, ...) and any
  /// num_threads; the shard count only sets the fan-out grain. 0 (default)
  /// keeps the historical strictly-sequential greedy, whose results the
  /// sharded path does not reproduce (it prices against block snapshots,
  /// not the live state).
  int num_shards = 0;

  /// Insertion cluster fan-out: > 0 restricts each best_insertion probe to
  /// this many clusters, chosen by a fixed multiplicative hash of the
  /// client id (a deterministic window — the probe set depends only on
  /// the client and the cluster count, never on state, threads or
  /// shards). Cuts the per-client probe cost from O(K) to O(fanout) on
  /// cluster-rich clouds at some profit cost. 0 (default) probes every
  /// cluster, the paper's behavior.
  int cluster_fanout = 0;

  // --- distributed deployment (dist::DistributedAllocator) -------------

  /// Message-passing mode: how long the manager waits for the missing
  /// agent responses of one improvement round before skipping them
  /// (Mailbox::receive_for underneath). Also capped by whatever remains
  /// of time_budget_ms, so a dead agent cannot blow the epoch deadline.
  /// <= 0 waits indefinitely — only safe with a fault-free transport.
  double dist_round_timeout_ms = 2000.0;

  /// Consecutive silent rounds after which an agent is presumed dead and
  /// no longer waited for (its cluster keeps its last merged placements).
  /// A late response from a presumed-dead agent revives it.
  int dist_miss_threshold = 2;

  std::uint64_t seed = 1;
  bool verbose = false;
};

}  // namespace cloudalloc::alloc
