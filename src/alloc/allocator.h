// ResourceAllocator: the top-level Resource_Alloc heuristic of the paper
// (Figure 3). Multi-start greedy initial solution, then a local-search
// loop interleaving Adjust_ResourceShares, Adjust_DispersionRates,
// TurnON/TurnOFF and cloud-level reassignment until profit is steady.
//
// This is the library's primary public entry point:
//
//   cloudalloc::alloc::ResourceAllocator allocator(options);
//   auto result = allocator.run(cloud);
//   // result.allocation is feasible; result.report tells the story.
#pragma once

#include <string>
#include <vector>

#include "alloc/options.h"
#include "model/alloc_state.h"
#include "model/allocation.h"
#include "model/evaluator.h"

namespace cloudalloc::alloc {

struct RoundTrace {
  int round = 0;
  double delta_shares = 0.0;
  double delta_dispersion = 0.0;
  double delta_power = 0.0;
  double delta_reassign = 0.0;
  double profit_after = 0.0;
  /// True when the epoch deadline (options.time_budget_ms) expired mid-
  /// round: the remaining passes of this round were skipped and the loop
  /// stopped here.
  bool truncated = false;
};

struct AllocatorReport {
  double initial_profit = 0.0;
  double final_profit = 0.0;
  int rounds_run = 0;
  int unassigned_clients = 0;
  int active_servers = 0;
  double wall_seconds = 0.0;
  std::vector<RoundTrace> rounds;
};

struct AllocatorResult {
  model::Allocation allocation;
  AllocatorReport report;
};

class ResourceAllocator {
 public:
  explicit ResourceAllocator(AllocatorOptions options = {});

  const AllocatorOptions& options() const { return options_; }

  /// Runs the full heuristic from an empty allocation (plus whatever
  /// background load the cloud's servers carry).
  AllocatorResult run(const model::Cloud& cloud) const;

  /// Runs only the improvement loop on a caller-provided starting
  /// allocation (used by the Monte-Carlo harness, warm starts between
  /// decision epochs, and the Figure-5 robustness experiment).
  AllocatorResult improve(model::Allocation initial) const;

  /// In-place improvement loop for the online serving layer's warm-started
  /// epochs: runs the same rounds as improve() against the caller's live
  /// engine and leaves `state` holding the best round's allocation, so a
  /// long-lived AllocState survives the repair without ever being released
  /// or copied back. Honors the same options (migration_cost prices the
  /// moves, insertable masks the reassign retry, time_budget_ms bounds the
  /// epoch). The report's final_profit is the carried best-round scalar,
  /// exactly as improve() reports it.
  AllocatorReport improve_state(model::AllocState& state) const;

 private:
  AllocatorReport improve_state_impl(model::AllocState& state,
                                     double initial_profit) const;

  AllocatorOptions options_;
};

}  // namespace cloudalloc::alloc
