#include "alloc/initial.h"

#include <numeric>
#include <optional>
#include <utility>

#include "alloc/sharded.h"
#include "common/check.h"
#include "common/log.h"
#include "model/alloc_state.h"
#include "model/evaluator.h"

namespace cloudalloc::alloc {

using model::Allocation;
using model::ClientId;
using model::Cloud;
using model::ClusterId;

Allocation greedy_insert(const Allocation& base,
                         const std::vector<ClientId>& order,
                         const AllocatorOptions& opts) {
  // One state copy per greedy start (a documented engine boundary); every
  // insertion probe below runs against the engine view, and committed
  // insertions go through the engine so the view tracks the ledger.
  // analyze: allow(allocation-copy) -- greedy-base boundary: one copy per
  // greedy start seeds a private engine state (DESIGN.md section 9).
  model::AllocState state{base.clone()};
  for (ClientId i : order) {
    CHECK(!state.ledger().is_assigned(i));
    auto plan = best_insertion(state.view(), i, opts);
    if (!plan) continue;  // nothing can host this client; it earns nothing
    if (opts.allow_rejection && plan->score < 0.0)
      continue;  // admission control: serving would lose money
    state.assign(i, plan->cluster, std::move(plan->placements));
  }
  return std::move(state).release();
}

Allocation build_initial_solution(const Cloud& cloud,
                                  const AllocatorOptions& opts, Rng& rng,
                                  const dist::ParallelEval& eval) {
  CHECK(opts.num_initial_solutions >= 1);
  const int starts = opts.num_initial_solutions;

  // Draw every start's client order up front from the caller's stream
  // (cumulative shuffles, exactly the sequence the sequential loop used to
  // produce), so the expensive greedy passes below are pure functions of
  // their order and can run as independent pool tasks. The online-serving
  // insertable mask filters AFTER the shuffle: the RNG draw sequence (and
  // with it the all-clients result) is unchanged, absent clients are
  // simply never offered to the greedy.
  std::vector<ClientId> order;
  order.reserve(static_cast<std::size_t>(cloud.num_clients()));
  for (ClientId i : cloud.client_ids()) order.push_back(i);
  std::vector<std::vector<ClientId>> orders;
  orders.reserve(static_cast<std::size_t>(starts));
  for (int iter = 0; iter < starts; ++iter) {
    rng.shuffle(order);
    orders.push_back(order);
    if (opts.insertable != nullptr) {
      auto& filtered = orders.back();
      std::erase_if(filtered, [&](ClientId i) {
        return (*opts.insertable)[i.index()] == 0;
      });
    }
  }

  std::vector<double> profits(static_cast<std::size_t>(starts), -1e300);
  std::vector<std::optional<Allocation>> cands(
      static_cast<std::size_t>(starts));
  if (opts.num_shards > 0) {
    // Sharded mode parallelizes WITHIN a start (alloc/sharded.h), so the
    // multi-start loop runs sequentially and hands the engine to each
    // pass. Results stay bit-identical at any shard/thread count because
    // each pass is.
    for (int iter = 0; iter < starts; ++iter) {
      const auto slot = static_cast<std::size_t>(iter);
      Allocation cand =
          sharded_greedy_insert(Allocation(cloud), orders[slot], opts, eval);
      profits[slot] = model::profit(cand);
      cands[slot] = std::move(cand);
    }
  } else {
    eval.for_n(starts, [&](int iter) {
      const auto slot = static_cast<std::size_t>(iter);
      Allocation cand = greedy_insert(Allocation(cloud), orders[slot], opts);
      profits[slot] = model::profit(cand);
      cands[slot] = std::move(cand);
    });
  }

  // Deterministic argmax: highest profit, lowest start index on ties —
  // the same winner the sequential keep-first-strict-improvement loop
  // picked, at any thread count.
  std::size_t best = 0;
  for (std::size_t iter = 1; iter < profits.size(); ++iter)
    if (profits[iter] > profits[best]) best = iter;
  if (opts.verbose)
    for (std::size_t iter = 0; iter < profits.size(); ++iter)
      CLOG(kInfo) << "initial solution " << iter << ": profit "
                  << profits[iter];
  CHECK(cands[best].has_value());
  return std::move(*cands[best]);
}

Allocation build_from_assignment(const Cloud& cloud,
                                 const std::vector<ClusterId>& assignment,
                                 const AllocatorOptions& opts) {
  CHECK(static_cast<int>(assignment.size()) == cloud.num_clients());
  model::AllocState state(cloud);
  for (ClientId i : cloud.client_ids()) {
    const ClusterId k = assignment[i.index()];
    if (k == model::kNoCluster) continue;
    auto plan = assign_distribute(state.view(), i, k, opts);
    if (plan) state.assign(i, k, std::move(plan->placements));
  }
  return std::move(state).release();
}

}  // namespace cloudalloc::alloc
