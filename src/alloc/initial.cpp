#include "alloc/initial.h"

#include <numeric>

#include "common/check.h"
#include "common/log.h"
#include "model/evaluator.h"

namespace cloudalloc::alloc {

using model::Allocation;
using model::ClientId;
using model::Cloud;
using model::ClusterId;

Allocation greedy_insert(const Allocation& base,
                         const std::vector<ClientId>& order,
                         const AllocatorOptions& opts) {
  Allocation alloc = base.clone();
  for (ClientId i : order) {
    CHECK(!alloc.is_assigned(i));
    auto plan = best_insertion(alloc, i, opts);
    if (!plan) continue;  // nothing can host this client; it earns nothing
    if (opts.allow_rejection && plan->score < 0.0)
      continue;  // admission control: serving would lose money
    alloc.assign(i, plan->cluster, std::move(plan->placements));
  }
  return alloc;
}

Allocation build_initial_solution(const Cloud& cloud,
                                  const AllocatorOptions& opts, Rng& rng) {
  CHECK(opts.num_initial_solutions >= 1);
  std::vector<ClientId> order(static_cast<std::size_t>(cloud.num_clients()));
  std::iota(order.begin(), order.end(), 0);

  Allocation best(cloud);
  double best_profit = -1e300;
  for (int iter = 0; iter < opts.num_initial_solutions; ++iter) {
    rng.shuffle(order);
    Allocation cand = greedy_insert(Allocation(cloud), order, opts);
    const double cand_profit = model::profit(cand);
    if (opts.verbose)
      CLOG(kInfo) << "initial solution " << iter << ": profit " << cand_profit;
    if (cand_profit > best_profit) {
      best_profit = cand_profit;
      best = std::move(cand);
    }
  }
  return best;
}

Allocation build_from_assignment(const Cloud& cloud,
                                 const std::vector<ClusterId>& assignment,
                                 const AllocatorOptions& opts) {
  CHECK(static_cast<int>(assignment.size()) == cloud.num_clients());
  Allocation alloc(cloud);
  for (ClientId i = 0; i < cloud.num_clients(); ++i) {
    const ClusterId k = assignment[static_cast<std::size_t>(i)];
    if (k == model::kNoCluster) continue;
    auto plan = assign_distribute(alloc, i, k, opts);
    if (plan) alloc.assign(i, k, std::move(plan->placements));
  }
  return alloc;
}

}  // namespace cloudalloc::alloc
