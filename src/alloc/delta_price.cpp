#include "alloc/delta_price.h"

#include <cmath>

#include "common/mathutil.h"
#include "queueing/response_time.h"

namespace cloudalloc::alloc {
namespace {

using model::Client;
using model::ClientId;
using model::Cloud;
using model::Placement;
using model::ResidualView;
using model::ServerClass;

/// client_revenue from the placements alone (GPS isolation: no view state
/// needed). Mirrors Allocation::response_time + model::client_revenue.
double revenue_of(const Cloud& cloud, ClientId i,
                  const std::vector<Placement>& ps) {
  if (ps.empty()) return 0.0;
  const Client& c = cloud.client(i);
  std::vector<queueing::ServerSlice> slices;
  slices.reserve(ps.size());
  for (const Placement& p : ps) {
    const ServerClass& sc = cloud.server_class_of(p.server);
    slices.push_back(queueing::ServerSlice{
        p.psi, units::Share{p.phi_p}, units::Share{p.phi_n},
        units::WorkRate{sc.cap_p}, units::WorkRate{sc.cap_n}});
  }
  const double r =
      queueing::client_response_time(slices, units::ArrivalRate{c.lambda_pred},
                                     units::Work{c.alpha_p},
                                     units::Work{c.alpha_n})
          .value();
  if (!std::isfinite(r)) return 0.0;
  return c.lambda_agreed * cloud.utility_of(i).value(r);
}

/// model::server_cost's formula from raw ingredients.
double cost_of(const ServerClass& sc, bool active, double load_p) {
  if (!active) return 0.0;
  return sc.cost_fixed + sc.cost_per_util * clamp(load_p / sc.cap_p, 0.0, 1.0);
}

}  // namespace

double insertion_delta(const ResidualView& view, ClientId i,
                       const std::vector<Placement>& ps) {
  const Cloud& cloud = view.cloud();
  const Client& c = cloud.client(i);
  double delta = revenue_of(cloud, i, ps);
  for (const Placement& p : ps) {
    const ServerClass& sc = cloud.server_class_of(p.server);
    const double load_before = view.proc_load(p.server);
    const double before = cost_of(sc, view.active(p.server), load_before);
    // Matches Allocation::add_footprint's load update.
    const double load_after = load_before + p.psi * c.lambda_pred * c.alpha_p;
    const double after = cost_of(sc, true, load_after);
    delta -= after - before;
  }
  return delta;
}

double removal_delta(const ResidualView& view, ClientId i,
                     const std::vector<Placement>& ps) {
  const Cloud& cloud = view.cloud();
  const Client& c = cloud.client(i);
  double delta = -revenue_of(cloud, i, ps);
  for (const Placement& p : ps) {
    const ServerClass& sc = cloud.server_class_of(p.server);
    const bool keeps = view.keeps_on(p.server);
    const int hosted = view.hosted_clients(p.server);
    const double load_before = view.proc_load(p.server);
    const double before = cost_of(sc, hosted > 0 || keeps, load_before);
    // Matches Allocation::remove_footprint, including its reset-to-zero
    // guard when the server empties.
    const double load_after =
        hosted - 1 == 0 ? 0.0
                        : load_before - p.psi * c.lambda_pred * c.alpha_p;
    const double after = cost_of(sc, hosted - 1 > 0 || keeps, load_after);
    delta -= after - before;
  }
  return delta;
}

double replace_delta(ResidualView& view, ClientId i,
                     const std::vector<Placement>& old_ps,
                     const std::vector<Placement>& new_ps) {
  // delta = [profit(without i) - profit(old)] + [profit(new) - profit(without
  // i)]; pricing the insertion against the vacated view handles old/new
  // overlapping on a server.
  const double removal = removal_delta(view, i, old_ps);
  ResidualView::Undo undo;
  view.remove_client(i, old_ps, &undo);
  const double insertion = insertion_delta(view, i, new_ps);
  view.restore(undo);
  return removal + insertion;
}

}  // namespace cloudalloc::alloc
