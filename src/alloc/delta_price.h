// Clone-free move pricing: the exact profit delta of inserting, removing,
// or re-placing one client, computed as a pure function of a ResidualView
// and the client's placements — no Allocation mutation, no clone, no
// rollback, no cache repair.
//
// Why this is exact: under the model, client i's revenue depends only on
// its own placements (GPS shares isolate its M/M/1 queues from everyone
// else's), and a move changes server costs only on the servers i touches —
// through their processing utilization and their activation state. So the
// full-profit difference telescopes to
//
//   delta = +/- revenue_i(placements)
//           - sum_{touched j} (cost_j(after) - cost_j(before))
//
// where cost_j = x_j * (P0_j + P1_j * clamp(load_j / Cp_j, 0, 1)). The
// per-term arithmetic mirrors model/evaluator.cpp and the Allocation
// footprint updates operation-for-operation (including the zero reset when
// a server empties), so the delta agrees with the clone-and-evaluate
// oracle to rounding (tests assert 1e-9 on fuzzed scenarios).
//
// The reassignment passes use these to pre-screen moves against a shared
// snapshot before paying for an Allocation mutation, and the micro bench
// (bench/micro_kernels.cpp) measures the pricing itself against the
// clone-evaluate baseline it replaces.
#pragma once

#include <vector>

#include "alloc/options.h"
#include "model/diff.h"
#include "model/residual.h"

namespace cloudalloc::alloc {

/// Migration charge of re-placing a client from `old_ps` to `new_ps`
/// under opts.migration_cost (see the knob's comment): the decision-cost
/// term the move-making passes add to their accept thresholds when
/// warm-starting an epoch. Zero whenever the knob is off, the client was
/// unassigned, or the move redirects no traffic.
inline double migration_penalty(const AllocatorOptions& opts,
                                const std::vector<model::Placement>& old_ps,
                                const std::vector<model::Placement>& new_ps) {
  if (opts.migration_cost <= 0.0 || old_ps.empty()) return 0.0;
  return opts.migration_cost * model::redirected_fraction(old_ps, new_ps);
}

/// Profit delta of giving currently-unplaced client i the placements `ps`
/// (which must not overlap a server already hosting i in `view`).
double insertion_delta(const model::ResidualView& view, model::ClientId i,
                       const std::vector<model::Placement>& ps);

/// Profit delta of removing client i, whose current placements in `view`
/// are `ps`.
double removal_delta(const model::ResidualView& view, model::ClientId i,
                     const std::vector<model::Placement>& ps);

/// Profit delta of moving client i from `old_ps` to `new_ps` (the two may
/// overlap on servers). Internally removes i from the view to price the
/// insertion against the vacated state, then restores it bitwise — the
/// view is unchanged on return.
double replace_delta(model::ResidualView& view, model::ClientId i,
                     const std::vector<model::Placement>& old_ps,
                     const std::vector<model::Placement>& new_ps);

}  // namespace cloudalloc::alloc
