// Adjust_DispersionRates (Section V-B): the dual of Adjust_ResourceShares.
// With GPS shares frozen, one client's traffic split psi over its current
// slices is re-optimized by the convex dispersion solver. Slices driven to
// (near) zero are dropped, releasing their shares and disk — this is the
// paper's consolidation lever inside a cluster.
#pragma once

#include "alloc/options.h"
#include "model/alloc_state.h"
#include "model/allocation.h"

namespace cloudalloc::alloc {

/// Re-splits client i's traffic across its current servers. Returns the
/// realized profit delta (0 when skipped or reverted).
double adjust_dispersion_rates(model::Allocation& alloc, model::ClientId i,
                               const AllocatorOptions& opts);
double adjust_dispersion_rates(model::AllocState& state, model::ClientId i,
                               const AllocatorOptions& opts);

/// Runs the adjustment for every assigned client; returns the total delta.
double adjust_all_dispersions(model::Allocation& alloc,
                              const AllocatorOptions& opts);
double adjust_all_dispersions(model::AllocState& state,
                              const AllocatorOptions& opts);

}  // namespace cloudalloc::alloc
