// The typed event record of the discrete-event simulator.
//
// The seed simulator carried one heap-allocated std::function per event
// (captured lambdas for arrivals and completions) and dispatched by
// calling it. At "millions of users" scale that is several allocations
// per simulated request. The rebuilt core replaces the closure with a
// 16-byte tagged record; the run loop dispatches on the tag with a
// switch, and the record is stored in a slab pool (see EventQueue), so
// steady-state event traffic performs zero heap allocation.
#pragma once

#include <cstdint>

namespace cloudalloc::sim {

enum class EventKind : std::uint8_t {
  /// A request source fires: `target` is the source index. The run loop
  /// dispatches the request and re-arms the source.
  kSourceArrival = 0,
  /// A GPS station completes the in-service job of one flow: `target`
  /// is the station id, `flow` the flow index. The run loop pops the
  /// finished request (GpsStation::finish_head), routes its payload —
  /// processing stages forward into the communication stage, communication
  /// stages record the response time — and resumes the flow.
  kStationComplete = 1,
};

struct Event {
  EventKind kind = EventKind::kSourceArrival;
  std::int32_t target = 0;
  std::int32_t flow = 0;
};

}  // namespace cloudalloc::sim
