#include "sim/simulation.h"

#include "common/check.h"

namespace cloudalloc::sim {

EventId Simulation::schedule_in(double delay, std::function<void()> fn) {
  CHECK(delay >= 0.0);
  return events_.schedule(now_ + delay, std::move(fn));
}

std::size_t Simulation::run_until(double t_end) {
  std::size_t executed = 0;
  while (!events_.empty()) {
    auto next = events_.pop();
    if (!next) break;
    if (next->first > t_end) {
      // Past the horizon: put nothing back; the simulation is over. The
      // event is dropped deliberately (callers drain by passing +inf).
      now_ = t_end;
      return executed;
    }
    CHECK_MSG(next->first + 1e-9 >= now_, "time went backwards");
    now_ = next->first;
    next->second();
    ++executed;
  }
  return executed;
}

}  // namespace cloudalloc::sim
