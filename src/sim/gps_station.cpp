#include "sim/gps_station.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/mathutil.h"

namespace cloudalloc::sim {

GpsStation::GpsStation(Simulation& sim, double capacity, GpsMode mode)
    : sim_(sim), capacity_(capacity), mode_(mode) {
  CHECK(capacity > 0.0);
}

int GpsStation::add_flow(double phi, double mean_work,
                         std::function<void(double)> on_departure) {
  CHECK(phi > 0.0);
  CHECK(mean_work > 0.0);
  CHECK(on_departure != nullptr);
  phi_total_ += phi;
  CHECK_MSG(phi_total_ <= 1.0 + 1e-6, "GPS weights must sum to <= 1");
  Flow flow;
  flow.phi = phi;
  flow.mean_work = mean_work;
  flow.on_departure = std::move(on_departure);
  flows_.push_back(std::move(flow));
  return static_cast<int>(flows_.size()) - 1;
}

std::size_t GpsStation::jobs_in_system() const {
  std::size_t n = 0;
  for (const Flow& flow : flows_) n += flow.queue.size();
  return n;
}

std::size_t GpsStation::jobs_in_flow(int flow) const {
  CHECK(flow >= 0 && flow < static_cast<int>(flows_.size()));
  return flows_[static_cast<std::size_t>(flow)].queue.size();
}

double GpsStation::flow_service_rate(int flow) const {
  CHECK(flow >= 0 && flow < static_cast<int>(flows_.size()));
  const Flow& f = flows_[static_cast<std::size_t>(flow)];
  return f.phi * capacity_ / f.mean_work;
}

double GpsStation::busy_phi_sum() const {
  double s = 0.0;
  for (const Flow& flow : flows_)
    if (flow.busy) s += flow.phi;
  return s;
}

double GpsStation::rate_of(const Flow& flow, double busy_sum) const {
  if (mode_ == GpsMode::kIsolated) return flow.phi * capacity_;
  // Work-conserving GPS: the full capacity is shared over busy weights.
  CHECK(busy_sum > 0.0);
  return flow.phi / busy_sum * capacity_;
}

void GpsStation::arrive(int f, double payload) {
  CHECK(f >= 0 && f < static_cast<int>(flows_.size()));
  Flow& flow = flows_[static_cast<std::size_t>(f)];
  flow.queue.push_back(payload);
  if (flow.busy) return;  // FCFS within the flow; head keeps the server
  start_service(f);
}

void GpsStation::start_service(int f) {
  Flow& flow = flows_[static_cast<std::size_t>(f)];
  CHECK(!flow.queue.empty());
  if (mode_ == GpsMode::kIsolated) {
    flow.busy = true;
    flow.remaining = sim_.rng().exponential(1.0 / flow.mean_work);
    const double service_time = flow.remaining / (flow.phi * capacity_);
    sim_.schedule_in(service_time, [this, f] { complete(f); });
  } else {
    // Credit everyone's progress at the pre-admission rates, then admit
    // the flow (changing the rate distribution) and replan.
    sync();
    flow.busy = true;
    flow.remaining = sim_.rng().exponential(1.0 / flow.mean_work);
    reschedule();
  }
}

void GpsStation::complete(int f) {
  Flow& flow = flows_[static_cast<std::size_t>(f)];
  CHECK(flow.busy && !flow.queue.empty());
  // Credit progress at the rates that held while this flow was busy,
  // before the busy set changes.
  if (mode_ == GpsMode::kWorkConserving) sync();
  const double payload = flow.queue.front();
  flow.queue.pop_front();
  flow.busy = false;
  flow.remaining = 0.0;
  // Departure callback may trigger downstream arrivals; run it before
  // starting the next job so event ordering is deterministic.
  flow.on_departure(payload);
  if (mode_ == GpsMode::kIsolated) {
    if (!flow.queue.empty()) start_service(f);
  } else {
    if (!flow.queue.empty()) {
      flow.busy = true;
      flow.remaining = sim_.rng().exponential(1.0 / flow.mean_work);
    }
    reschedule();
  }
}

void GpsStation::sync() {
  CHECK(mode_ == GpsMode::kWorkConserving);
  const double now = sim_.now();
  const double dt = now - last_sync_;
  const double busy_sum = busy_phi_sum();
  if (dt > 0.0 && busy_sum > 0.0) {
    for (Flow& flow : flows_)
      if (flow.busy)
        flow.remaining =
            std::max(0.0, flow.remaining - rate_of(flow, busy_sum) * dt);
  }
  last_sync_ = now;
}

void GpsStation::reschedule() {
  CHECK(mode_ == GpsMode::kWorkConserving);
  const double busy_sum = busy_phi_sum();
  if (pending_ != 0) {
    sim_.cancel(pending_);
    pending_ = 0;
    pending_flow_ = -1;
  }
  if (busy_sum <= 0.0) return;

  // Next completion: the busy flow with the least time-to-finish.
  double best_dt = std::numeric_limits<double>::infinity();
  int best_flow = -1;
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    const Flow& flow = flows_[f];
    if (!flow.busy) continue;
    const double t = flow.remaining / rate_of(flow, busy_sum);
    if (t < best_dt) {
      best_dt = t;
      best_flow = static_cast<int>(f);
    }
  }
  CHECK(best_flow >= 0);
  pending_flow_ = best_flow;
  pending_ = sim_.schedule_in(best_dt, [this, best_flow] {
    pending_ = 0;
    pending_flow_ = -1;
    complete(best_flow);
  });
}

}  // namespace cloudalloc::sim
