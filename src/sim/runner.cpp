#include "sim/runner.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/stats.h"

namespace cloudalloc::sim {
namespace {

using model::Allocation;
using model::ClientId;
using model::Cloud;
using model::ServerId;

/// What to do with a finished job's payload, per (station, flow). Built
/// once at wiring time into a flat table indexed by global flow id; the
/// run loop switches on `kind`.
struct FlowAction {
  enum class Kind : std::uint8_t { kForwardToComm, kRecordResponse };
  Kind kind = Kind::kRecordResponse;
  // kForwardToComm: destination + per-job mean work booked on the server.
  GpsStation* comm = nullptr;
  std::int32_t comm_flow = -1;
  std::int32_t server = -1;
  double alpha_p = 0.0;
  // kRecordResponse: the client whose response-time sink receives it.
  std::int32_t client = -1;
};

struct Slice {
  GpsStation* proc;
  double cum_psi;  ///< cumulative for dispatch sampling
  std::int32_t proc_flow;
};

/// A client's Poisson source plus its span in the flat slice table.
struct Source {
  double lambda;
  std::int32_t slice_begin;
  std::int32_t slice_end;
};

}  // namespace

SimulationReport simulate_allocation(const Allocation& alloc,
                                     const SimOptions& opts) {
  const Cloud& cloud = alloc.cloud();
  Simulation sim(opts.seed);
  const double warmup = opts.warmup_fraction * opts.horizon;

  // Stations for servers that actually host someone: per server, the
  // processing stage then the communication stage, ids in creation
  // order. Stations are stored by value (contiguous) and share one
  // request-record slab and one flow arena, reserved up front (each
  // hosted client contributes one flow to each of its servers' stages).
  std::size_t hosting = 0;
  std::size_t total_flows = 0;
  for (ServerId j : cloud.server_ids()) {
    const std::size_t on = alloc.clients_on(j).size();
    if (on == 0) continue;
    ++hosting;
    total_flows += 2 * on;
  }
  RequestPool pool;
  std::vector<GpsStation::Flow> flow_arena;
  flow_arena.reserve(total_flows);
  std::vector<GpsStation> stations;
  stations.reserve(2 * hosting);
  std::vector<GpsStation*> proc(static_cast<std::size_t>(cloud.num_servers()),
                                nullptr);
  std::vector<GpsStation*> comm(static_cast<std::size_t>(cloud.num_servers()),
                                nullptr);
  auto make_station = [&](double capacity, int max_flows) {
    stations.emplace_back(sim, pool, flow_arena,
                          static_cast<std::int32_t>(stations.size()),
                          capacity, opts.mode, max_flows);
    return &stations.back();
  };
  for (ServerId j : cloud.server_ids()) {
    const int on = static_cast<int>(alloc.clients_on(j).size());
    if (on == 0) continue;
    const auto& sc = cloud.server_class_of(j);
    proc[j.index()] = make_station(sc.cap_p, on);
    comm[j.index()] = make_station(sc.cap_n, on);
  }

  // Response-time sinks and per-server completed-work accounting.
  std::vector<Summary> responses(
      static_cast<std::size_t>(cloud.num_clients()));
  std::vector<std::vector<double>> samples(
      static_cast<std::size_t>(cloud.num_clients()));
  std::vector<double> proc_work_done(
      static_cast<std::size_t>(cloud.num_servers()), 0.0);

  // Wire flows: per placement, a processing flow feeding a comm flow.
  // Flow indices equal the per-station add_flow order; actions are
  // collected per station first, then flattened into one table indexed
  // by flow_base[station] + flow.
  std::vector<std::vector<FlowAction>> station_actions(stations.size());
  std::vector<Slice> slices;
  std::vector<Source> sources;
  for (ClientId i : cloud.client_ids()) {
    if (!alloc.is_assigned(i)) continue;
    const auto& c = cloud.client(i);
    const std::int32_t slice_begin = static_cast<std::int32_t>(slices.size());
    double cum = 0.0;
    for (const auto& p : alloc.placements(i)) {
      GpsStation* proc_station = proc[p.server.index()];
      GpsStation* comm_station = comm[p.server.index()];
      // Communication flow: completes the request.
      const int comm_flow = comm_station->add_flow(p.phi_n, c.alpha_n);
      FlowAction record;
      record.kind = FlowAction::Kind::kRecordResponse;
      record.client = i.value();
      station_actions[static_cast<std::size_t>(comm_station->id())].push_back(
          record);
      // Processing flow: forwards into the communication stage and books
      // the (mean) work it completed on its server.
      const int proc_flow = proc_station->add_flow(p.phi_p, c.alpha_p);
      FlowAction forward;
      forward.kind = FlowAction::Kind::kForwardToComm;
      forward.comm = comm_station;
      forward.comm_flow = comm_flow;
      forward.server = p.server.value();
      forward.alpha_p = c.alpha_p;
      station_actions[static_cast<std::size_t>(proc_station->id())].push_back(
          forward);
      cum += p.psi;
      slices.push_back(
          Slice{proc_station, cum, static_cast<std::int32_t>(proc_flow)});
    }
    sources.push_back(Source{c.lambda_pred * opts.demand_factor, slice_begin,
                             static_cast<std::int32_t>(slices.size())});
  }

  // Flatten the per-station action lists: flow_base[s] + flow is the
  // global flow id, one indexed load in the completion hot path.
  std::vector<std::int32_t> flow_base(stations.size() + 1, 0);
  for (std::size_t s = 0; s < stations.size(); ++s)
    flow_base[s + 1] =
        flow_base[s] + static_cast<std::int32_t>(station_actions[s].size());
  std::vector<FlowAction> actions;
  actions.reserve(static_cast<std::size_t>(flow_base[stations.size()]));
  for (const auto& list : station_actions)
    actions.insert(actions.end(), list.begin(), list.end());

  // Poisson sources: self-re-arming arrival events per client.
  for (std::size_t s = 0; s < sources.size(); ++s)
    sim.schedule_in(
        sim.rng().exponential(sources[s].lambda),
        Event{EventKind::kSourceArrival, static_cast<std::int32_t>(s), 0});

  const bool tails = opts.collect_percentiles;
  const Slice* const slice_data = slices.data();
  const FlowAction* const action_data = actions.data();
  const std::int32_t* const flow_base_data = flow_base.data();
  // The run loop: pop typed events and dispatch on the tag. Drains
  // completely — sources stop re-arming once the clock passes the
  // generation horizon.
  Event ev;
  while (sim.next(ev)) {
    switch (ev.kind) {
      case EventKind::kSourceArrival: {
        const Source& src = sources[static_cast<std::size_t>(ev.target)];
        if (sim.now() >= opts.horizon) break;  // stop generating, drain
        const Slice* const first = slice_data + src.slice_begin;
        const Slice* const last = slice_data + src.slice_end - 1;
        const Slice* chosen = last;
        if (opts.dispatch == DispatchPolicy::kStaticPsi || first == last) {
          const double u = sim.rng().uniform() * last->cum_psi;
          for (const Slice* s = first; s != last; ++s) {
            if (u <= s->cum_psi) {
              chosen = s;
              break;
            }
          }
        } else {
          // Least expected wait over the processing stage: the cluster
          // dispatcher reacting to live backlog instead of the planned psi.
          double best_wait = std::numeric_limits<double>::infinity();
          for (const Slice* s = first; s <= last; ++s) {
            const double rate = s->proc->flow_service_rate(s->proc_flow);
            const double wait =
                static_cast<double>(s->proc->jobs_in_flow(s->proc_flow) + 1) /
                rate;
            if (wait < best_wait) {
              best_wait = wait;
              chosen = s;
            }
          }
        }
        chosen->proc->arrive(chosen->proc_flow, sim.now());
        sim.schedule_in(sim.rng().exponential(src.lambda), ev);
        break;
      }
      case EventKind::kStationComplete: {
        GpsStation& station = *(stations.data() + ev.target);
        const FlowAction& act =
            action_data[flow_base_data[ev.target] + ev.flow];
        // Pop the finished request and route it before resuming the flow,
        // so downstream service-demand draws keep the seed sim's order.
        const double start = station.finish_head(ev.flow);
        if (act.kind == FlowAction::Kind::kForwardToComm) {
          proc_work_done[static_cast<std::size_t>(act.server)] += act.alpha_p;
          act.comm->arrive(act.comm_flow, start);
        } else if (start >= warmup) {
          const double sojourn = sim.now() - start;
          responses[static_cast<std::size_t>(act.client)].add(sojourn);
          if (tails)
            samples[static_cast<std::size_t>(act.client)].push_back(sojourn);
        }
        station.resume(ev.flow);
        break;
      }
    }
  }

  SimulationReport report;
  report.events_executed = sim.executed();
  Summary errors;
  for (ClientId i : cloud.client_ids()) {
    if (!alloc.is_assigned(i)) continue;
    const Summary& s = responses[i.index()];
    ClientSimStats stats;
    stats.id = i;
    stats.completed = s.count();
    stats.mean_response = s.mean();
    stats.ci95 = s.ci95_halfwidth();
    stats.analytic_response = alloc.response_time(i);
    auto& my_samples = samples[i.index()];
    if (tails && !my_samples.empty()) {
      stats.p50 = quantile(my_samples, 0.50);
      stats.p95 = quantile(my_samples, 0.95);
      stats.p99 = quantile(my_samples, 0.99);
    }
    report.total_completed += stats.completed;
    if (stats.completed > 0 && std::isfinite(stats.analytic_response) &&
        stats.analytic_response > 0.0)
      errors.add(std::fabs(stats.mean_response - stats.analytic_response) /
                 stats.analytic_response);
    report.clients.push_back(stats);
  }
  for (ServerId j : cloud.server_ids()) {
    if (alloc.clients_on(j).empty()) continue;
    ServerSimStats stats;
    stats.id = j;
    stats.measured_util_p =
        proc_work_done[j.index()] /
        (cloud.server_class_of(j).cap_p * opts.horizon);
    stats.analytic_util_p = alloc.proc_utilization(j);
    report.servers.push_back(stats);
  }
  report.mean_abs_rel_error = errors.mean();
  return report;
}

}  // namespace cloudalloc::sim
