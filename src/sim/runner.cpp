#include "sim/runner.h"

#include <cmath>
#include <functional>
#include <limits>
#include <memory>

#include "common/check.h"
#include "common/stats.h"

namespace cloudalloc::sim {
namespace {

using model::Allocation;
using model::ClientId;
using model::Cloud;
using model::ServerId;

}  // namespace

SimulationReport simulate_allocation(const Allocation& alloc,
                                     const SimOptions& opts) {
  const Cloud& cloud = alloc.cloud();
  Simulation sim(opts.seed);
  const double warmup = opts.warmup_fraction * opts.horizon;

  // Stations for servers that actually host someone.
  std::vector<std::unique_ptr<GpsStation>> proc(
      static_cast<std::size_t>(cloud.num_servers()));
  std::vector<std::unique_ptr<GpsStation>> comm(
      static_cast<std::size_t>(cloud.num_servers()));
  for (ServerId j = 0; j < cloud.num_servers(); ++j) {
    if (alloc.clients_on(j).empty()) continue;
    const auto& sc = cloud.server_class_of(j);
    proc[static_cast<std::size_t>(j)] =
        std::make_unique<GpsStation>(sim, sc.cap_p, opts.mode);
    comm[static_cast<std::size_t>(j)] =
        std::make_unique<GpsStation>(sim, sc.cap_n, opts.mode);
  }

  // Response-time sinks and per-server completed-work accounting.
  std::vector<Summary> responses(
      static_cast<std::size_t>(cloud.num_clients()));
  std::vector<std::vector<double>> samples(
      static_cast<std::size_t>(cloud.num_clients()));
  std::vector<double> proc_work_done(
      static_cast<std::size_t>(cloud.num_servers()), 0.0);

  // Wire flows: per placement, a processing flow feeding a comm flow.
  struct Slice {
    ServerId server;
    double cum_psi;  ///< cumulative for dispatch sampling
    int proc_flow;
  };
  std::vector<std::vector<Slice>> slices(
      static_cast<std::size_t>(cloud.num_clients()));

  const bool tails = opts.collect_percentiles;
  for (ClientId i = 0; i < cloud.num_clients(); ++i) {
    if (!alloc.is_assigned(i)) continue;
    const auto& c = cloud.client(i);
    double cum = 0.0;
    for (const auto& p : alloc.placements(i)) {
      auto& proc_station = *proc[static_cast<std::size_t>(p.server)];
      auto& comm_station = *comm[static_cast<std::size_t>(p.server)];
      // Communication flow: completes the request.
      const int comm_flow = comm_station.add_flow(
          p.phi_n, c.alpha_n,
          [&responses, &samples, &sim, i, warmup, tails](double start) {
            if (start < warmup) return;
            const double sojourn = sim.now() - start;
            responses[static_cast<std::size_t>(i)].add(sojourn);
            if (tails) samples[static_cast<std::size_t>(i)].push_back(sojourn);
          });
      // Processing flow: forwards into the communication stage and books
      // the (mean) work it completed on its server.
      const ServerId server = p.server;
      const double alpha_p = c.alpha_p;
      const int proc_flow = proc_station.add_flow(
          p.phi_p, c.alpha_p,
          [&comm_station, comm_flow, &proc_work_done, server,
           alpha_p](double start) {
            proc_work_done[static_cast<std::size_t>(server)] += alpha_p;
            comm_station.arrive(comm_flow, start);
          });
      cum += p.psi;
      slices[static_cast<std::size_t>(i)].push_back(
          Slice{p.server, cum, proc_flow});
    }
  }

  // Poisson sources: self-rescheduling arrival events per client.
  struct Source {
    ClientId client;
    double lambda;
  };
  std::vector<Source> sources;
  for (ClientId i = 0; i < cloud.num_clients(); ++i)
    if (alloc.is_assigned(i))
      sources.push_back(
          Source{i, cloud.client(i).lambda_pred * opts.demand_factor});

  std::function<void(std::size_t)> fire = [&](std::size_t s) {
    const Source& src = sources[s];
    if (sim.now() >= opts.horizon) return;  // stop generating, drain
    const auto& my_slices = slices[static_cast<std::size_t>(src.client)];
    const Slice* chosen = &my_slices.back();
    if (opts.dispatch == DispatchPolicy::kStaticPsi ||
        my_slices.size() == 1) {
      const double u = sim.rng().uniform() * my_slices.back().cum_psi;
      for (const Slice& slice : my_slices) {
        if (u <= slice.cum_psi) {
          chosen = &slice;
          break;
        }
      }
    } else {
      // Least expected wait over the processing stage: the cluster
      // dispatcher reacting to live backlog instead of the planned psi.
      double best_wait = std::numeric_limits<double>::infinity();
      for (const Slice& slice : my_slices) {
        const auto& station = *proc[static_cast<std::size_t>(slice.server)];
        const double rate = station.flow_service_rate(slice.proc_flow);
        const double wait =
            static_cast<double>(station.jobs_in_flow(slice.proc_flow) + 1) /
            rate;
        if (wait < best_wait) {
          best_wait = wait;
          chosen = &slice;
        }
      }
    }
    proc[static_cast<std::size_t>(chosen->server)]->arrive(chosen->proc_flow,
                                                           sim.now());
    sim.schedule_in(sim.rng().exponential(src.lambda),
                    [&fire, s] { fire(s); });
  };
  for (std::size_t s = 0; s < sources.size(); ++s)
    sim.schedule_in(sim.rng().exponential(sources[s].lambda),
                    [&fire, s] { fire(s); });

  sim.run_until();  // drain completely

  SimulationReport report;
  Summary errors;
  for (ClientId i = 0; i < cloud.num_clients(); ++i) {
    if (!alloc.is_assigned(i)) continue;
    const Summary& s = responses[static_cast<std::size_t>(i)];
    ClientSimStats stats;
    stats.id = i;
    stats.completed = s.count();
    stats.mean_response = s.mean();
    stats.ci95 = s.ci95_halfwidth();
    stats.analytic_response = alloc.response_time(i);
    auto& my_samples = samples[static_cast<std::size_t>(i)];
    if (tails && !my_samples.empty()) {
      stats.p50 = quantile(my_samples, 0.50);
      stats.p95 = quantile(my_samples, 0.95);
      stats.p99 = quantile(my_samples, 0.99);
    }
    report.total_completed += stats.completed;
    if (stats.completed > 0 && std::isfinite(stats.analytic_response) &&
        stats.analytic_response > 0.0)
      errors.add(std::fabs(stats.mean_response - stats.analytic_response) /
                 stats.analytic_response);
    report.clients.push_back(stats);
  }
  for (ServerId j = 0; j < cloud.num_servers(); ++j) {
    if (alloc.clients_on(j).empty()) continue;
    ServerSimStats stats;
    stats.id = j;
    stats.measured_util_p =
        proc_work_done[static_cast<std::size_t>(j)] /
        (cloud.server_class_of(j).cap_p * opts.horizon);
    stats.analytic_util_p = alloc.proc_utilization(j);
    report.servers.push_back(stats);
  }
  report.mean_abs_rel_error = errors.mean();
  return report;
}

}  // namespace cloudalloc::sim
