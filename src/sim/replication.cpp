#include "sim/replication.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "dist/thread_pool.h"

namespace cloudalloc::sim {

std::vector<std::uint64_t> replication_seeds(std::uint64_t base_seed, int n) {
  CHECK(n >= 0);
  // A dedicated stream (not the base seed itself) keeps replication 0
  // decorrelated from any other user of the same seed — the allocator
  // and workload generators are typically seeded with it too.
  Rng seeder(base_seed);
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(n));
  for (auto& s : seeds) s = seeder();
  return seeds;
}

ReplicationReport run_replications(const model::Allocation& alloc,
                                   const ReplicationOptions& opts) {
  CHECK(opts.replications >= 1);
  const int R = opts.replications;
  const auto seeds =
      replication_seeds(opts.sim.seed, R);

  std::vector<SimulationReport> runs(static_cast<std::size_t>(R));
  auto run_one = [&](int r) {
    SimOptions sopts = opts.sim;
    sopts.seed = seeds[static_cast<std::size_t>(r)];
    runs[static_cast<std::size_t>(r)] = simulate_allocation(alloc, sopts);
  };
  if (opts.num_threads > 1) {
    dist::ThreadPool::shared(std::min(opts.num_threads, R))
        .parallel_for(R, run_one);
  } else {
    for (int r = 0; r < R; ++r) run_one(r);
  }

  // Merge in replication order: every replication simulates the same
  // allocation, so client/server row r lines up across runs.
  ReplicationReport report;
  report.replications = R;
  const SimulationReport& first = runs.front();
  for (const SimulationReport& run : runs) {
    CHECK(run.clients.size() == first.clients.size());
    CHECK(run.servers.size() == first.servers.size());
    report.total_completed += run.total_completed;
    report.events_executed += run.events_executed;
  }

  Summary errors;
  for (std::size_t c = 0; c < first.clients.size(); ++c) {
    ClientReplicationStats stats;
    stats.id = first.clients[c].id;
    stats.analytic_response = first.clients[c].analytic_response;
    Summary means, p50s, p95s, p99s;
    for (const SimulationReport& run : runs) {
      const ClientSimStats& cs = run.clients[c];
      stats.completed_total += cs.completed;
      if (cs.completed == 0) continue;  // no observation this replication
      means.add(cs.mean_response);
      p50s.add(cs.p50);
      p95s.add(cs.p95);
      p99s.add(cs.p99);
    }
    stats.observations = static_cast<int>(means.count());
    stats.mean_response = means.mean();
    stats.ci95 = means.ci95_halfwidth();
    stats.p50 = p50s.mean();
    stats.p95 = p95s.mean();
    stats.p99 = p99s.mean();
    if (stats.observations > 0 && std::isfinite(stats.analytic_response) &&
        stats.analytic_response > 0.0)
      errors.add(std::fabs(stats.mean_response - stats.analytic_response) /
                 stats.analytic_response);
    report.clients.push_back(stats);
  }

  for (std::size_t s = 0; s < first.servers.size(); ++s) {
    ServerReplicationStats stats;
    stats.id = first.servers[s].id;
    stats.analytic_util_p = first.servers[s].analytic_util_p;
    Summary utils;
    for (const SimulationReport& run : runs)
      utils.add(run.servers[s].measured_util_p);
    stats.measured_util_p = utils.mean();
    stats.ci95 = utils.ci95_halfwidth();
    report.servers.push_back(stats);
  }

  report.mean_abs_rel_error = errors.mean();
  return report;
}

}  // namespace cloudalloc::sim
