#include "sim/event_queue.h"

namespace cloudalloc::sim {

void EventQueue::retune() {
  std::size_t bucket_count = kMinBuckets;
  while (bucket_count < live_ * kBucketsPerLive && bucket_count < kMaxBuckets)
    bucket_count <<= 1;
  const double width = ewma_gap_ > 0.0 ? kWidthFactor * ewma_gap_ : width_;
  rebuild(bucket_count, width);
}

void EventQueue::rebuild(std::size_t bucket_count, double width) {
  // Detach every chain, recycling dead nodes and keeping live ones.
  std::vector<std::uint32_t> keep;
  keep.reserve(live_);
  for (std::uint32_t& head : heads_) {
    for (std::uint32_t cur = head; cur != kNil;) {
      const std::uint32_t next = nodes_[cur].next;
      if (nodes_[cur].live)
        keep.push_back(cur);
      else
        recycle(cur);
      cur = next;
    }
    head = kNil;
  }
  if (bucket_count != heads_.size()) {
    heads_.assign(bucket_count, kNil);
    mask_ = bucket_count - 1;
  }
  width_ = width;
  inv_width_ = 1.0 / width;
  bool any = false;
  std::uint64_t min_vb = 0;
  for (const std::uint32_t slot : keep) {
    Node& n = nodes_[slot];
    const std::uint64_t vb = vbucket_of(n.time);
    n.vb = vb;  // the width changed; re-fix the stored bucket
    if (!any || vb < min_vb) {
      min_vb = vb;
      any = true;
    }
    std::uint32_t& head = heads_[vb & mask_];
    n.next = head;
    head = slot;
  }
  cursor_ = any ? min_vb : vbucket_of(last_time_);
  entries_ = keep.size();
  pops_since_retune_ = 0;
}

void EventQueue::jump_to_min() {
  bool any = false;
  double best_time = 0.0;
  std::uint64_t best_seq = 0;
  std::uint64_t best_vb = 0;
  for (std::uint32_t& head : heads_) {
    std::uint32_t* prev = &head;
    for (std::uint32_t cur = head; cur != kNil;) {
      Node& n = nodes_[cur];
      const std::uint32_t next = n.next;
      if (!n.live) {
        *prev = next;
        recycle(cur);
        --entries_;
        cur = next;
        continue;
      }
      if (!any || n.time < best_time ||
          (n.time == best_time && n.seq < best_seq)) {
        best_time = n.time;
        best_seq = n.seq;
        best_vb = n.vb;
        any = true;
      }
      prev = &n.next;
      cur = next;
    }
  }
  if (any) cursor_ = best_vb;
}

}  // namespace cloudalloc::sim
