#include "sim/event_queue.h"

#include "common/check.h"

namespace cloudalloc::sim {

EventId EventQueue::schedule(double time, std::function<void()> fn) {
  CHECK(fn != nullptr);
  const EventId id = next_id_++;
  heap_.push(Key{time, id});
  handlers_.emplace(id, std::move(fn));
  ++live_;
  return id;
}

void EventQueue::cancel(EventId id) {
  if (handlers_.erase(id) > 0) --live_;
  // The heap key stays; pop() skips keys without handlers.
}

std::optional<std::pair<double, std::function<void()>>> EventQueue::pop() {
  while (!heap_.empty()) {
    const Key key = heap_.top();
    heap_.pop();
    auto it = handlers_.find(key.id);
    if (it == handlers_.end()) continue;  // cancelled
    std::function<void()> fn = std::move(it->second);
    handlers_.erase(it);
    --live_;
    return std::make_pair(key.time, std::move(fn));
  }
  return std::nullopt;
}

}  // namespace cloudalloc::sim
