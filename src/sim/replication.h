// Parallel independent replications of the discrete-event simulator.
//
// One simulation run yields a *within-run* confidence interval on each
// client's mean response time — correlated samples from a single sample
// path, which understate the true uncertainty. The standard methodology
// (and the one the paper's related simulation campaigns use) is R
// independent replications: each replication's mean is one observation,
// and the across-replication sample variance gives a proper CI.
//
// Replications are embarrassingly parallel, so the runner fans them out
// over a dist::ThreadPool. Per-replication seeds are derived up front
// from the base seed by drawing from a dedicated xoshiro256** stream
// (replication_seeds), and merging walks replication results in index
// order — so the report is bit-identical at 1 worker thread or N.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/runner.h"

namespace cloudalloc::sim {

struct ReplicationOptions {
  /// Per-replication simulation options; `sim.seed` is the *base* seed
  /// every replication seed is derived from.
  SimOptions sim;
  int replications = 8;
  /// Worker threads for the fan-out; <= 1 runs inline. Results do not
  /// depend on this value.
  int num_threads = 1;
};

/// Across-replication statistics for one client. `mean_response` is the
/// mean of per-replication means and `ci95` the across-replication 95%
/// half-width — one observation per replication, not per request.
struct ClientReplicationStats {
  model::ClientId id{0};
  /// Replications in which this client completed at least one measured
  /// request (only those contribute observations).
  int observations = 0;
  std::size_t completed_total = 0;
  double mean_response = 0.0;
  double ci95 = 0.0;
  double analytic_response = 0.0;
  // Means of per-replication tail percentiles; 0 when disabled.
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

struct ServerReplicationStats {
  model::ServerId id{0};
  double measured_util_p = 0.0;  ///< across-replication mean
  double ci95 = 0.0;             ///< across-replication 95% half-width
  double analytic_util_p = 0.0;
};

struct ReplicationReport {
  std::vector<ClientReplicationStats> clients;  ///< assigned clients only
  std::vector<ServerReplicationStats> servers;  ///< hosting servers only
  int replications = 0;
  std::size_t total_completed = 0;   ///< summed over replications
  std::size_t events_executed = 0;   ///< summed over replications
  /// Mean over clients of |mean_response - analytic| / analytic, on the
  /// across-replication means.
  double mean_abs_rel_error = 0.0;
};

/// The deterministic per-replication seed schedule: `n` draws from an
/// Rng seeded with `base_seed`. Exposed so tests can pin it.
std::vector<std::uint64_t> replication_seeds(std::uint64_t base_seed, int n);

/// Runs `opts.replications` independently seeded simulations of the
/// allocation (in parallel when opts.num_threads > 1) and merges them.
/// Bit-identical for a given (allocation, opts.sim, replications) at any
/// thread count.
ReplicationReport run_replications(const model::Allocation& alloc,
                                   const ReplicationOptions& opts);

}  // namespace cloudalloc::sim
