// End-to-end simulation of an allocation: Poisson request sources per
// client, probabilistic dispatch over the client's slices (psi), and the
// two pipelined GPS stages per server (processing -> communication).
// Measures per-client mean response times and compares them with the
// analytic model the optimizer trusts (eq. 1) — the model-validation
// experiment E4 in DESIGN.md.
//
// The run loop dispatches typed events with a switch (see event.h):
// arrivals pick a slice and enter the processing stage; processing
// completions forward into the communication stage; communication
// completions record the response. Routing lives in per-flow action
// records built at wiring time, not in captured closures, so a simulated
// request costs no heap allocation in steady state.
#pragma once

#include <cstdint>
#include <vector>

#include "model/allocation.h"
#include "sim/gps_station.h"

namespace cloudalloc::sim {

/// How the cluster dispatcher (Figure 2) routes each arriving request
/// over the client's slices.
enum class DispatchPolicy {
  /// Sample a slice with probability psi — the paper's analytic model.
  kStaticPsi,
  /// Route to the slice with the least expected wait
  /// ((backlog + 1) / guaranteed service rate of the processing stage) —
  /// the "proper reaction of request dispatchers" that absorbs small
  /// dynamic changes between decision epochs (Section III).
  kLeastExpectedWait,
};

struct SimOptions {
  /// Arrivals are generated on [0, horizon); the simulation then drains.
  double horizon = 2000.0;
  /// Requests arriving before warmup_fraction * horizon are not measured.
  double warmup_fraction = 0.1;
  std::uint64_t seed = 1;
  GpsMode mode = GpsMode::kIsolated;
  DispatchPolicy dispatch = DispatchPolicy::kStaticPsi;
  /// Keep every response-time sample to report tail percentiles (costs
  /// one double per completed request).
  bool collect_percentiles = true;
  /// Multiplies every client's arrival rate: simulate the *actual* demand
  /// deviating from the predicted rates the allocation was built for.
  double demand_factor = 1.0;
};

struct ClientSimStats {
  model::ClientId id{0};
  std::size_t completed = 0;
  double mean_response = 0.0;
  double ci95 = 0.0;            ///< naive within-run 95% CI half-width
  double analytic_response = 0.0;
  // Tail percentiles; 0 when collect_percentiles is off or no samples.
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

struct ServerSimStats {
  model::ServerId id{0};
  /// Measured busy-work fraction of the processing stage over the
  /// generation horizon (completed work / (capacity * horizon)); compares
  /// against Allocation::proc_utilization.
  double measured_util_p = 0.0;
  double analytic_util_p = 0.0;
};

struct SimulationReport {
  std::vector<ClientSimStats> clients;   ///< assigned clients only
  std::vector<ServerSimStats> servers;   ///< hosting servers only
  std::size_t total_completed = 0;
  /// Events the run loop dispatched (arrivals + stage completions) —
  /// the throughput denominator of the BM_Sim_* benchmarks.
  std::size_t events_executed = 0;
  /// Mean over clients of |simulated - analytic| / analytic.
  double mean_abs_rel_error = 0.0;
};

/// Simulates the allocation. Only assigned clients generate traffic.
/// Deterministic: a seed fully determines the report, and the RNG draw
/// sequence matches the pre-typed-event simulator exactly.
SimulationReport simulate_allocation(const model::Allocation& alloc,
                                     const SimOptions& opts);

}  // namespace cloudalloc::sim
