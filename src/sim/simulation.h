// Discrete-event simulation core: clock + event queue + seeded RNG.
#pragma once

#include <functional>
#include <limits>

#include "common/rng.h"
#include "sim/event_queue.h"

namespace cloudalloc::sim {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed) : rng_(seed) {}

  double now() const { return now_; }
  Rng& rng() { return rng_; }

  /// Schedules `fn` `delay` time units from now (delay >= 0).
  EventId schedule_in(double delay, std::function<void()> fn);

  void cancel(EventId id) { events_.cancel(id); }

  /// Runs events until the queue drains or the clock passes `t_end`.
  /// Returns the number of events executed.
  std::size_t run_until(double t_end = std::numeric_limits<double>::max());

 private:
  double now_ = 0.0;
  EventQueue events_;
  Rng rng_;
};

}  // namespace cloudalloc::sim
