// Discrete-event simulation core: clock + typed event queue + seeded RNG.
//
// The core is intentionally passive: it pops typed events and advances
// the clock, and the *owner* of the simulation (the allocation runner, a
// test harness) dispatches each record with a switch. That keeps the hot
// loop free of virtual calls and captured closures, and keeps all
// domain routing — which station feeds which, where responses are
// recorded — in one visible place.
#pragma once

#include <limits>
#include <optional>

#include "common/check.h"
#include "common/rng.h"
#include "sim/event_queue.h"

namespace cloudalloc::sim {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed) : rng_(seed) {}

  double now() const { return now_; }
  Rng& rng() { return rng_; }

  /// Schedules `ev` `delay` time units from now (delay >= 0).
  EventId schedule_in(double delay, const Event& ev) {
    CHECK(delay >= 0.0);
    return events_.schedule(now_ + delay, ev);
  }

  void cancel(EventId id) { events_.cancel(id); }

  bool idle() const { return events_.empty(); }

  /// Pops the earliest live event into `out` and advances the clock to
  /// it. Returns false once the queue drains or the next event lies past
  /// `t_end` (that event is dropped deliberately; callers drain by
  /// passing +inf). This is the run loop's entry point — no optionals,
  /// no copies beyond the 12-byte event itself.
  bool next(Event& out, double t_end = std::numeric_limits<double>::max()) {
    double t;
    if (!events_.pop_into(t, out)) return false;
    if (t > t_end) {
      now_ = t_end;
      return false;
    }
    CHECK_MSG(t + 1e-9 >= now_, "time went backwards");
    now_ = t;
    ++executed_;
    return true;
  }

  /// Convenience wrapper over next(Event&, double) for tests and casual
  /// callers.
  std::optional<Event> next(double t_end = std::numeric_limits<double>::max()) {
    Event ev;
    if (!next(ev, t_end)) return std::nullopt;
    return ev;
  }

  /// Dispatches events through `handler(const Event&)` until the queue
  /// drains or the clock passes `t_end`. Returns events executed.
  template <typename Handler>
  std::size_t run_until(Handler&& handler,
                        double t_end = std::numeric_limits<double>::max()) {
    const std::size_t before = executed_;
    while (auto ev = next(t_end)) handler(*ev);
    return executed_ - before;
  }

  /// Events dispatched over the simulation's lifetime.
  std::size_t executed() const { return executed_; }

 private:
  double now_ = 0.0;
  EventQueue events_;
  Rng rng_;
  std::size_t executed_ = 0;
};

}  // namespace cloudalloc::sim
