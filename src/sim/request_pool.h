// Pooled per-request records for the simulator's station queues.
//
// Each in-flight request is one {payload, next} record in a slab shared
// by all flows of a station; a flow's FCFS queue is an intrusive singly
// linked list threaded through the slab. Popped records go to a free
// list, so — like the event queue — steady-state request traffic costs
// zero heap allocation once the slab reaches its high-water size
// (std::deque, by contrast, allocates and frees blocks as queues churn).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace cloudalloc::sim {

class RequestPool {
 public:
  using Index = std::int32_t;
  static constexpr Index kNull = -1;

  /// An FCFS queue of pooled records; head is the in-service request.
  /// 12 bytes on purpose — one lives in every flow.
  struct Fifo {
    Index head = kNull;
    Index tail = kNull;
    std::int32_t size = 0;
  };

  void push(Fifo& q, double payload) {
    Index i;
    if (free_ != kNull) {
      i = free_;
      free_ = records_[static_cast<std::size_t>(i)].next;
    } else {
      i = static_cast<Index>(records_.size());
      records_.push_back(Record{});
    }
    Record& r = records_[static_cast<std::size_t>(i)];
    r.payload = payload;
    r.next = kNull;
    if (q.tail == kNull) {
      q.head = i;
    } else {
      records_[static_cast<std::size_t>(q.tail)].next = i;
    }
    q.tail = i;
    ++q.size;
  }

  double front(const Fifo& q) const {
    CHECK(q.head != kNull);
    return records_[static_cast<std::size_t>(q.head)].payload;
  }

  double pop(Fifo& q) {
    CHECK(q.head != kNull);
    const Index i = q.head;
    Record& r = records_[static_cast<std::size_t>(i)];
    const double payload = r.payload;
    q.head = r.next;
    if (q.head == kNull) q.tail = kNull;
    --q.size;
    r.next = free_;
    free_ = i;
    return payload;
  }

  /// Records ever allocated (high-water mark of in-flight requests).
  std::size_t pool_size() const { return records_.size(); }

 private:
  struct Record {
    double payload = 0.0;
    Index next = kNull;
  };

  std::vector<Record> records_;
  Index free_ = kNull;
};

}  // namespace cloudalloc::sim
