// Cancellable future-event list for the discrete-event simulator.
// A binary heap of (time, id) keys with handlers stored separately so that
// cancellation is O(1) (lazy deletion at pop).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace cloudalloc::sim {

using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Schedules `fn` at absolute `time`; later-scheduled events at the same
  /// time fire later (FIFO tie-break by id).
  EventId schedule(double time, std::function<void()> fn);

  /// Cancels a pending event; cancelling a fired/unknown id is a no-op.
  void cancel(EventId id);

  /// True when no live events remain.
  bool empty() const { return live_ == 0; }

  std::size_t size() const { return live_; }

  /// Pops the earliest live event: returns its time and runs nothing —
  /// the caller invokes the handler (so it can update the clock first).
  std::optional<std::pair<double, std::function<void()>>> pop();

 private:
  struct Key {
    double time;
    EventId id;
    bool operator>(const Key& o) const {
      if (time != o.time) return time > o.time;
      return id > o.id;
    }
  };

  std::priority_queue<Key, std::vector<Key>, std::greater<Key>> heap_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace cloudalloc::sim
