// Cancellable future-event list (FEL) for the discrete-event simulator.
//
// Typed Event records live in a node slab with a free list; the FEL
// itself is a calendar queue (Brown, CACM 1988): an array of time
// buckets of width `width_`, indexed cyclically, with a cursor that
// sweeps forward in virtual-bucket order. Each bucket is an intrusive
// singly linked chain threaded through the slab — the bucket array is
// just one contiguous array of head indices, and a scanned node carries
// its timestamp, tie-break sequence, liveness, and Event payload in one
// slab record, so the pop scan costs one load per visited node instead
// of a bucket-block load plus a dependent slab load. schedule() pushes
// onto the target chain and pop() scans the cursor's chain for the
// (time, seq) minimum — both O(1) amortized when the width tracks the
// inter-event gap, which the queue retunes from an EWMA of pop-to-pop
// gaps as the live count crosses resize thresholds. Dispatch order is
// exactly ascending (time, seq) — identical to a comparison-based heap —
// because the scan's bucket membership test recomputes the integer
// virtual bucket with the exact insertion expression, so it cannot
// disagree with where schedule() put the node.
//
// Cancellation is O(1): mark the node dead and decrement the live
// count; the node is unlinked and recycled when a scan next walks its
// chain, or when the calendar is rebuilt because dead nodes outnumber
// live ones — so a schedule/cancel-heavy workload (work-conserving GPS
// replanning) keeps bounded memory. In steady state — schedule/pop/
// cancel churn at a stable live count — no path allocates: chains, slab,
// and free list all reuse their high-water storage.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "sim/event.h"

namespace cloudalloc::sim {

/// Handle for cancellation: (slot << 32) | generation. Generations start
/// at 1, so 0 never names a live event and can serve as a "none" sentinel.
using EventId = std::uint64_t;

class EventQueue {
 public:
  EventQueue() { heads_.assign(kMinBuckets, kNil); }

  /// Schedules `ev` at absolute `time`; later-scheduled events at the
  /// same time fire later (FIFO tie-break by schedule order).
  EventId schedule(double time, const Event& ev) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(nodes_.size());
      nodes_.push_back(Node{});
    }
    Node& n = nodes_[slot];
    n.time = time;
    n.seq = next_seq_++;
    n.ev = ev;
    n.live = true;
    const std::uint64_t vb = vbucket_of(time);
    n.vb = vb;
    std::uint32_t& head = heads_[vb & mask_];
    n.next = head;
    head = slot;
    // Scheduling behind the cursor (never from the simulator, which only
    // schedules at or after "now") rewinds the sweep so nothing is missed.
    if (vb < cursor_) cursor_ = vb;
    ++live_;
    ++entries_;
    // Rebuild when the calendar falls below half its target bucket
    // count (one retune per doubling of the live count while ramping).
    if (live_ * kBucketsPerLive > 2 * heads_.size() &&
        heads_.size() < kMaxBuckets)
      retune();
    return (static_cast<std::uint64_t>(slot) << 32) | n.gen;
  }

  /// Cancels a pending event; cancelling a fired/unknown id is a no-op.
  /// Returns whether a live event was cancelled.
  bool cancel(EventId id) {
    const std::uint32_t slot = static_cast<std::uint32_t>(id >> 32);
    const std::uint32_t gen = static_cast<std::uint32_t>(id);
    if (slot >= nodes_.size()) return false;
    Node& n = nodes_[slot];
    if (n.gen != gen || !n.live) return false;
    n.live = false;  // unlinked lazily by the next scan of its chain
    --live_;
    // Bound the garbage a cancel-heavy workload can accumulate.
    if (entries_ > 2 * live_ + 64) retune();
    return true;
  }

  /// True when no live events remain.
  bool empty() const { return live_ == 0; }

  std::size_t size() const { return live_; }

  /// Pops the earliest live event into (`time_out`, `ev_out`). The
  /// caller dispatches it (so it can update the clock first).
  bool pop_into(double& time_out, Event& ev_out) {
    if (live_ == 0) return false;
    // Local copies of the slab and head-array pointers: the chain-link
    // stores below are std::uint32_t writes, which alias analysis cannot
    // prove distinct from the vectors' internal pointers, so without the
    // locals every iteration would reload them.
    Node* const nodes = nodes_.data();
    std::uint32_t* const heads = heads_.data();
    std::size_t misses = 0;
    for (;;) {
      // Sparse calendars make empty buckets the common case; skip them
      // without touching the best-candidate state.
      while (heads[cursor_ & mask_] == kNil) {
        ++cursor_;
        if (++misses > heads_.size()) {
          jump_to_min();
          misses = 0;
        }
      }
      std::uint32_t* prev = &heads[cursor_ & mask_];
      std::uint32_t best = kNil;
      std::uint32_t* best_prev = nullptr;
      double best_time = std::numeric_limits<double>::infinity();
      std::uint64_t best_seq = ~std::uint64_t{0};
      std::size_t scanned = 0;
      for (std::uint32_t cur = *prev; cur != kNil;) {
        Node& n = nodes[cur];
        const std::uint32_t next = n.next;
        if (!n.live) [[unlikely]] {  // cancelled: unlink, recycle in passing
          *prev = next;
          recycle(cur);
          --entries_;
          cur = next;
          continue;
        }
        ++scanned;
        // Bucket membership compares the virtual bucket schedule()
        // computed and stored at insert time — an integer compare that
        // cannot disagree with where the node was chained.
        if (n.vb == cursor_ &&
            (n.time < best_time ||
             (n.time == best_time && n.seq < best_seq))) {
          best = cur;
          best_prev = prev;
          best_time = n.time;
          best_seq = n.seq;
        }
        prev = &n.next;
        cur = next;
      }
      if (best != kNil) {
        Node& n = nodes[best];
        *best_prev = n.next;
        --entries_;
        time_out = n.time;
        ev_out = n.ev;
        n.live = false;
        recycle(best);
        --live_;
        const double gap = best_time - last_time_;
        last_time_ = best_time;
        if (gap > 0.0)
          ewma_gap_ =
              ewma_gap_ < 0.0 ? gap : ewma_gap_ + (gap - ewma_gap_) / 32.0;
        ++pops_since_retune_;
        // Shrink an oversized calendar, and rebuild when one bucket has
        // collected a dominant share of the entries (the width predates
        // any gap observations, so events piled up in one window).
        const bool lopsided = scanned > 16 && scanned * 4 > entries_ &&
                              ewma_gap_ > 0.0 && pops_since_retune_ > 64;
        if (lopsided || (heads_.size() > kMinBuckets &&
                         live_ * kBucketsPerLive < heads_.size() / 4))
          retune();
        return true;
      }
      ++cursor_;
      // A full lap without a hit means the next event is a sparse
      // far-future tail; jump the cursor straight to the global minimum.
      if (++misses > heads_.size()) {
        jump_to_min();
        misses = 0;
      }
    }
  }

  /// Optional-returning wrapper over pop_into, for tests and callers off
  /// the hot path.
  std::optional<std::pair<double, Event>> pop() {
    double t;
    Event ev;
    if (!pop_into(t, ev)) return std::nullopt;
    return std::make_pair(t, ev);
  }

  /// Chained nodes currently held, live plus lazily-cancelled — the
  /// memory bound the compaction policy enforces (tests assert on it).
  std::size_t entries() const { return entries_; }

  /// Slab slots ever allocated (the high-water mark of in-flight events).
  std::size_t pool_size() const { return nodes_.size(); }

 private:
  /// One slab record: chain link, payload, and ordering key together, so
  /// a pop scan touches a single record per visited node.
  struct Node {
    double time = 0.0;
    std::uint64_t vb = 0;   ///< virtual bucket, fixed at insert/rebuild
    std::uint64_t seq = 0;  ///< monotone schedule order; FIFO tie-break
    std::uint32_t next = kNil;
    std::uint32_t gen = 1;  ///< bumped on every recycle; 0 is reserved
    Event ev{};
    bool live = false;
  };

  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;
  // Calendar tuning, swept on the model-validation workload. The queue
  // deliberately over-provisions buckets (~32 per live event, width
  // ~half the mean pop-to-pop gap): pending completions spread over a
  // window hundreds of gaps wide, so a denser calendar would make every
  // chain hold nodes from many future cursor laps and each pop re-scan
  // them all. Empty-bucket misses, by contrast, are sequential reads of
  // a contiguous head array — far cheaper than chain re-scans.
  static constexpr std::size_t kBucketsPerLive = 32;
  static constexpr double kWidthFactor = 0.5;

  std::uint64_t vbucket_of(double time) const {
    // Clamps rather than overflows on absurd times; entries clamped to
    // the far bucket are still dispatched in exact (time, seq) order.
    const double v = time * inv_width_;
    constexpr double kFar = 9.0e18;
    if (!(v > 0.0)) return 0;
    return v < kFar ? static_cast<std::uint64_t>(v)
                    : static_cast<std::uint64_t>(kFar);
  }

  /// Returns an unlinked node to the free list; the generation bump
  /// invalidates any outstanding EventId naming it.
  void recycle(std::uint32_t slot) {
    Node& n = nodes_[slot];
    if (++n.gen == 0) n.gen = 1;  // keep 0 as the "none" sentinel
    free_.push_back(slot);
  }

  /// Rebuilds the calendar with a bucket count tracking the live count
  /// and a width tracking the observed inter-event gap, recycling dead
  /// nodes along the way.
  void retune();
  void rebuild(std::size_t bucket_count, double width);
  /// Repositions the cursor on the bucket of the earliest live entry.
  void jump_to_min();

  std::vector<std::uint32_t> heads_;  ///< per-bucket chain heads
  std::size_t mask_ = kMinBuckets - 1;
  double width_ = 1.0;
  double inv_width_ = 1.0;
  std::uint64_t cursor_ = 0;  ///< virtual bucket the sweep is draining
  double last_time_ = 0.0;    ///< most recently popped timestamp
  double ewma_gap_ = -1.0;    ///< EWMA of pop-to-pop gaps; < 0 = no sample
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t pops_since_retune_ = 0;
  std::size_t live_ = 0;
  std::size_t entries_ = 0;  ///< live + not-yet-recycled cancelled
};

}  // namespace cloudalloc::sim
