// A GPS-scheduled resource (one server's processing OR communication
// stage) in the discrete-event simulator.
//
// Each flow f has a GPS weight phi_f and exponentially distributed job
// work with a given mean; jobs within a flow are served FCFS. Two
// scheduling modes:
//
//  * kIsolated — flow f is served at exactly phi_f * C whenever busy.
//    This is the paper's analytic model verbatim: each flow is an
//    independent M/M/1 with rate phi*C/alpha, so simulated sojourn times
//    must match eq. (1) within sampling error (the validation bench).
//  * kWorkConserving — true GPS: capacity left idle by empty flows is
//    redistributed to busy flows in proportion to their weights, so
//    sojourn times are stochastically <= the isolated model's (the
//    analytic model is conservative; tests assert the direction).
//
// The station owns no callbacks. Completions surface as typed
// kStationComplete events carrying (station id, flow); the run loop
// answers one by calling finish_head(flow) — which pops the finished
// request and returns its payload — routing the payload itself, then
// calling resume(flow) to start the next queued job. The two-call split
// preserves the seed simulator's event ordering (and thus its exact RNG
// draw sequence): downstream arrivals triggered by the departure draw
// their service demands *before* this flow draws the next job's.
//
// The class is header-only on purpose: arrive/finish_head/resume run
// once or more per simulated event, and inlining them into the run loop
// is worth several ns/event. Request records live in a RequestPool and
// flow states in a Flow arena that the *caller* owns and shares across
// stations, so all in-flight requests — and all flow states — of a
// simulation sit in two contiguous slabs instead of many small
// per-station blocks.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.h"
#include "sim/request_pool.h"
#include "sim/simulation.h"

namespace cloudalloc::sim {

enum class GpsMode { kIsolated, kWorkConserving };

class GpsStation {
 public:
  /// Per-flow state; lives in the caller-owned arena. 64 bytes.
  struct Flow {
    RequestPool::Fifo queue;  ///< payloads, head = in service
    bool busy = false;
    double remaining = 0.0;  ///< work left on the in-service job
    double inv_mean = 1.0;   ///< 1 / mean_work
    double srv_rate = 0.0;   ///< phi * capacity (isolated service rate)
    double phi = 0.0;
    double mean_work = 1.0;
    std::uint64_t completed = 0;
  };

  /// `station_id` is the value completions carry in Event::target — the
  /// owner's index for this station. `capacity` is in work-units/second;
  /// weights of added flows must sum to <= 1 (checked as flows are
  /// added). The station claims `max_flows` contiguous slots of `arena`;
  /// the arena must be reserved to its final size up front (checked —
  /// stations keep raw pointers into it), and it and `pool` must outlive
  /// the station. Both may be shared across stations.
  GpsStation(Simulation& sim, RequestPool& pool, std::vector<Flow>& arena,
             std::int32_t station_id, double capacity, GpsMode mode,
             int max_flows)
      : sim_(sim), pool_(pool), id_(station_id), capacity_(capacity),
        mode_(mode), max_flows_(max_flows) {
    CHECK(capacity > 0.0);
    CHECK(max_flows >= 0);
    CHECK_MSG(arena.size() + static_cast<std::size_t>(max_flows) <=
                  arena.capacity(),
              "flow arena must be reserved before stations claim spans");
    arena.resize(arena.size() + static_cast<std::size_t>(max_flows));
    flows_ = arena.data() + arena.size() - static_cast<std::size_t>(max_flows);
  }

  /// Adds a flow; `mean_work` is the mean of the exponential per-job work.
  int add_flow(double phi, double mean_work) {
    CHECK(phi > 0.0);
    CHECK(mean_work > 0.0);
    CHECK_MSG(num_flows_ < max_flows_, "station flow span exhausted");
    phi_total_ += phi;
    CHECK_MSG(phi_total_ <= 1.0 + 1e-6, "GPS weights must sum to <= 1");
    Flow& flow = flows_[num_flows_];
    flow.phi = phi;
    flow.mean_work = mean_work;
    // Precomputed once so the service hot path draws and schedules with
    // no extra divides; the values are the exact doubles the expressions
    // 1.0 / mean_work and phi * capacity produce at call sites.
    flow.inv_mean = 1.0 / mean_work;
    flow.srv_rate = phi * capacity_;
    return num_flows_++;
  }

  /// Enqueues a job carrying `payload` (typically the request start time).
  void arrive(int f, double payload) {
    CHECK(f >= 0 && f < num_flows_);
    Flow& flow = flows_[f];
    pool_.push(flow.queue, payload);
    if (flow.busy) return;  // FCFS within the flow; head keeps the server
    start_service(f);
  }

  /// Answers this station's kStationComplete event: pops the in-service
  /// head of `flow` and returns its payload. The caller routes the
  /// payload, then calls resume(flow).
  double finish_head(int f) {
    CHECK(f >= 0 && f < num_flows_);
    Flow& flow = flows_[f];
    CHECK(flow.busy && flow.queue.size > 0);
    // Credit progress at the rates that held while this flow was busy,
    // before the busy set changes. The event that fired is pending_.
    if (mode_ == GpsMode::kWorkConserving) {
      sync();
      pending_ = 0;
    }
    const double payload = pool_.pop(flow.queue);
    flow.busy = false;
    flow.remaining = 0.0;
    ++flow.completed;
    return payload;
  }

  /// Starts the next queued job of `flow`, if any (and replans the
  /// pending completion in work-conserving mode).
  void resume(int f) {
    CHECK(f >= 0 && f < num_flows_);
    Flow& flow = flows_[f];
    if (mode_ == GpsMode::kIsolated) {
      if (!flow.busy && flow.queue.size > 0) start_service(f);
    } else {
      if (!flow.busy && flow.queue.size > 0) {
        flow.busy = true;
        flow.remaining = sim_.rng().exponential(flow.inv_mean);
      }
      reschedule();
    }
  }

  /// Jobs currently in this station (all flows).
  std::size_t jobs_in_system() const {
    std::size_t n = 0;
    for (int f = 0; f < num_flows_; ++f)
      n += static_cast<std::size_t>(flows_[f].queue.size);
    return n;
  }

  /// Jobs currently queued or in service on one flow.
  std::size_t jobs_in_flow(int flow) const {
    CHECK(flow >= 0 && flow < num_flows_);
    return static_cast<std::size_t>(flows_[flow].queue.size);
  }

  /// The flow's guaranteed service rate (phi * capacity / mean_work) —
  /// what a dispatcher uses to estimate expected waits.
  double flow_service_rate(int flow) const {
    CHECK(flow >= 0 && flow < num_flows_);
    const Flow& f = flows_[flow];
    return f.phi * capacity_ / f.mean_work;
  }

  /// Jobs the flow has completed over the station's lifetime.
  std::uint64_t completions(int flow) const {
    CHECK(flow >= 0 && flow < num_flows_);
    return flows_[flow].completed;
  }

  /// The id completions carry in Event::target.
  std::int32_t id() const { return id_; }

 private:
  double rate_of(const Flow& flow, double busy_sum) const {
    if (mode_ == GpsMode::kIsolated) return flow.srv_rate;
    // Work-conserving GPS: the full capacity is shared over busy weights.
    CHECK(busy_sum > 0.0);
    return flow.phi / busy_sum * capacity_;
  }

  double busy_phi_sum() const {
    double s = 0.0;
    for (int f = 0; f < num_flows_; ++f)
      if (flows_[f].busy) s += flows_[f].phi;
    return s;
  }

  void start_service(int f) {
    Flow& flow = flows_[f];
    CHECK(flow.queue.size > 0);
    if (mode_ == GpsMode::kIsolated) {
      flow.busy = true;
      flow.remaining = sim_.rng().exponential(flow.inv_mean);
      const double service_time = flow.remaining / flow.srv_rate;
      sim_.schedule_in(service_time,
                       Event{EventKind::kStationComplete, id_, f});
    } else {
      // Credit everyone's progress at the pre-admission rates, then admit
      // the flow (changing the rate distribution) and replan.
      sync();
      flow.busy = true;
      flow.remaining = sim_.rng().exponential(flow.inv_mean);
      reschedule();
    }
  }

  /// Work-conserving mode: credit elapsed service to all busy flows at the
  /// *current* busy-set rates. Must run before any busy-set change.
  void sync() {
    CHECK(mode_ == GpsMode::kWorkConserving);
    const double now = sim_.now();
    const double dt = now - last_sync_;
    const double busy_sum = busy_phi_sum();
    if (dt > 0.0 && busy_sum > 0.0) {
      for (int f = 0; f < num_flows_; ++f) {
        Flow& flow = flows_[f];
        if (!flow.busy) continue;
        const double left = flow.remaining - rate_of(flow, busy_sum) * dt;
        flow.remaining = left > 0.0 ? left : 0.0;
      }
    }
    last_sync_ = now;
  }

  /// Work-conserving mode: cancel and replan the next completion event.
  void reschedule() {
    CHECK(mode_ == GpsMode::kWorkConserving);
    const double busy_sum = busy_phi_sum();
    if (pending_ != 0) {
      sim_.cancel(pending_);
      pending_ = 0;
    }
    if (busy_sum <= 0.0) return;

    // Next completion: the busy flow with the least time-to-finish.
    double best_dt = std::numeric_limits<double>::infinity();
    int best_flow = -1;
    for (int f = 0; f < num_flows_; ++f) {
      const Flow& flow = flows_[f];
      if (!flow.busy) continue;
      const double t = flow.remaining / rate_of(flow, busy_sum);
      if (t < best_dt) {
        best_dt = t;
        best_flow = f;
      }
    }
    CHECK(best_flow >= 0);
    pending_ = sim_.schedule_in(
        best_dt, Event{EventKind::kStationComplete, id_, best_flow});
  }

  Simulation& sim_;
  RequestPool& pool_;
  std::int32_t id_;
  double capacity_;
  GpsMode mode_;
  Flow* flows_ = nullptr;  ///< this station's span of the shared arena
  int num_flows_ = 0;
  int max_flows_ = 0;
  double phi_total_ = 0.0;
  // Work-conserving bookkeeping.
  double last_sync_ = 0.0;
  EventId pending_ = 0;
};

}  // namespace cloudalloc::sim
