// A GPS-scheduled resource (one server's processing OR communication
// stage) in the discrete-event simulator.
//
// Each flow f has a GPS weight phi_f and exponentially distributed job
// work with a given mean; jobs within a flow are served FCFS. Two
// scheduling modes:
//
//  * kIsolated — flow f is served at exactly phi_f * C whenever busy.
//    This is the paper's analytic model verbatim: each flow is an
//    independent M/M/1 with rate phi*C/alpha, so simulated sojourn times
//    must match eq. (1) within sampling error (the validation bench).
//  * kWorkConserving — true GPS: capacity left idle by empty flows is
//    redistributed to busy flows in proportion to their weights, so
//    sojourn times are stochastically <= the isolated model's (the
//    analytic model is conservative; tests assert the direction).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/simulation.h"

namespace cloudalloc::sim {

enum class GpsMode { kIsolated, kWorkConserving };

class GpsStation {
 public:
  /// `capacity` in work-units/second; weights of added flows must sum to
  /// <= 1 (checked as flows are added).
  GpsStation(Simulation& sim, double capacity, GpsMode mode);

  /// `on_departure(payload)` fires when a job of this flow completes;
  /// `mean_work` is the mean of the exponential per-job work.
  int add_flow(double phi, double mean_work,
               std::function<void(double)> on_departure);

  /// Enqueues a job carrying `payload` (typically the request start time).
  void arrive(int flow, double payload);

  /// Jobs currently in this station (all flows).
  std::size_t jobs_in_system() const;

  /// Jobs currently queued or in service on one flow.
  std::size_t jobs_in_flow(int flow) const;

  /// The flow's guaranteed service rate (phi * capacity / mean_work) —
  /// what a dispatcher uses to estimate expected waits.
  double flow_service_rate(int flow) const;

 private:
  struct Flow {
    double phi = 0.0;
    double mean_work = 1.0;
    std::function<void(double)> on_departure;
    std::deque<double> queue;   ///< payloads, front = in service
    double remaining = 0.0;     ///< work left on the in-service job
    bool busy = false;
  };

  double rate_of(const Flow& flow, double busy_phi_sum) const;
  double busy_phi_sum() const;
  void start_service(int f);
  void complete(int f);
  /// Work-conserving mode: credit elapsed service to all busy flows at the
  /// *current* busy-set rates. Must run before any busy-set change.
  void sync();
  /// Work-conserving mode: cancel and replan the next completion event.
  void reschedule();

  Simulation& sim_;
  double capacity_;
  GpsMode mode_;
  std::vector<Flow> flows_;
  double phi_total_ = 0.0;
  // Work-conserving bookkeeping.
  double last_sync_ = 0.0;
  EventId pending_ = 0;
  int pending_flow_ = -1;
};

}  // namespace cloudalloc::sim
