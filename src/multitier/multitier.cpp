#include "multitier/multitier.h"

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "model/evaluator.h"
#include "workload/scenario.h"

namespace cloudalloc::multitier {

ExpandedInstance expand(const MultiTierInstance& instance) {
  // One scaled utility class per (original class, tier count) pair.
  // Utility class ids are dense, so we append scaled copies as needed.
  std::vector<model::UtilityClass> expanded_utilities =
      instance.utility_classes;
  // (original class, T) -> expanded utility class id
  std::vector<std::pair<std::pair<model::UtilityClassId, int>, model::UtilityClassId>>
      memo;
  auto scaled_class = [&](model::UtilityClassId original,
                          int tiers) -> model::UtilityClassId {
    if (tiers == 1) return original;
    for (const auto& [key, id] : memo)
      if (key.first == original && key.second == tiers) return id;
    const auto* linear = dynamic_cast<const model::LinearUtility*>(
        instance.utility_classes[original.index()]
            .fn.get());
    CHECK_MSG(linear != nullptr,
              "multi-tier expansion requires LinearUtility classes");
    model::UtilityClass scaled;
    scaled.id =
        model::UtilityClassId{static_cast<int>(expanded_utilities.size())};
    scaled.fn = std::make_shared<model::LinearUtility>(
        linear->u0() / static_cast<double>(tiers), linear->s());
    expanded_utilities.push_back(scaled);
    memo.push_back({{original, tiers}, scaled.id});
    return scaled.id;
  };

  std::vector<model::Client> expanded_clients;
  std::vector<TierRef> refs;
  std::vector<int> parent_tiers;
  parent_tiers.reserve(instance.clients.size());
  for (std::size_t p = 0; p < instance.clients.size(); ++p) {
    const MultiTierClient& parent = instance.clients[p];
    CHECK_MSG(!parent.tiers.empty(), "client needs at least one tier");
    parent_tiers.push_back(static_cast<int>(parent.tiers.size()));
    const model::UtilityClassId uc = scaled_class(
        parent.utility_class, static_cast<int>(parent.tiers.size()));
    for (std::size_t t = 0; t < parent.tiers.size(); ++t) {
      const TierDemand& tier = parent.tiers[t];
      model::Client c;
      c.id = static_cast<model::ClientId>(expanded_clients.size());
      c.utility_class = uc;
      c.lambda_agreed = parent.lambda_agreed;
      c.lambda_pred = parent.lambda_pred;
      c.alpha_p = tier.alpha_p;
      c.alpha_n = tier.alpha_n;
      c.disk = tier.disk;
      expanded_clients.push_back(c);
      refs.push_back(TierRef{static_cast<int>(p), static_cast<int>(t)});
    }
  }

  return ExpandedInstance{
      std::make_shared<const model::Cloud>(
          instance.server_classes, instance.servers, instance.clusters,
          std::move(expanded_utilities), std::move(expanded_clients)),
      std::move(refs), std::move(parent_tiers)};
}

double end_to_end_response_time(const ExpandedInstance& expanded,
                                const model::Allocation& alloc, int parent) {
  double total = 0.0;
  bool found_any = false;
  int tiers_seen = 0;
  for (model::ClientId i : expanded.cloud().client_ids()) {
    if (expanded.refs[i.index()].parent != parent) continue;
    found_any = true;
    ++tiers_seen;
    if (!alloc.is_assigned(i))
      return std::numeric_limits<double>::infinity();
    const double r = alloc.response_time(i);
    if (!std::isfinite(r)) return r;
    total += r;
  }
  CHECK_MSG(found_any, "unknown parent id");
  CHECK(tiers_seen ==
        expanded.parent_tiers[static_cast<std::size_t>(parent)]);
  return total;
}

double multitier_profit(const MultiTierInstance& instance,
                        const ExpandedInstance& expanded,
                        const model::Allocation& alloc) {
  double revenue = 0.0;
  for (std::size_t p = 0; p < instance.clients.size(); ++p) {
    const double r =
        end_to_end_response_time(expanded, alloc, static_cast<int>(p));
    if (!std::isfinite(r)) continue;  // a tier unserved/unstable: no revenue
    const MultiTierClient& parent = instance.clients[p];
    const auto& fn =
        *instance.utility_classes[parent.utility_class.index()].fn;
    revenue += parent.lambda_agreed * fn.value(r);
  }
  double cost = 0.0;
  for (model::ServerId j : expanded.cloud().server_ids())
    cost += model::server_cost(alloc, j);
  return revenue - cost;
}

MultiTierResult allocate(const MultiTierInstance& instance,
                         const alloc::AllocatorOptions& options) {
  ExpandedInstance expanded = expand(instance);
  alloc::ResourceAllocator allocator(options);
  auto result = allocator.run(expanded.cloud());

  MultiTierResult out{std::move(expanded), std::move(result.allocation),
                      /*profit=*/0.0, std::move(result.report)};
  out.profit = multitier_profit(instance, out.expanded, out.allocation);
  return out;
}

MultiTierInstance make_multitier_scenario(int num_clients, int tiers_lo,
                                          int tiers_hi, std::uint64_t seed) {
  CHECK(num_clients >= 1);
  CHECK(tiers_lo >= 1 && tiers_lo <= tiers_hi);

  // Reuse the paper's topology + utility classes from the single-tier
  // generator, then replace its clients with multi-tier ones whose summed
  // demand matches the single-tier ranges.
  workload::ScenarioParams params;
  params.num_clients = 1;  // placeholder client, discarded below
  const model::Cloud base = workload::make_scenario(params, seed);

  MultiTierInstance instance;
  instance.server_classes = base.server_classes();
  instance.servers = base.servers();
  instance.clusters = base.clusters();
  instance.utility_classes = base.utility_classes();

  Rng rng(seed ^ 0x6D756C7469ull);  // distinct stream from the topology
  for (int i = 0; i < num_clients; ++i) {
    MultiTierClient client;
    client.id = i;
    client.utility_class = static_cast<model::UtilityClassId>(
        rng.uniform_int(0,
                        static_cast<std::int64_t>(
                            instance.utility_classes.size()) -
                            1));
    client.lambda_agreed = rng.uniform(params.lambda_lo, params.lambda_hi);
    client.lambda_pred = client.lambda_agreed;
    const int tiers = static_cast<int>(rng.uniform_int(tiers_lo, tiers_hi));
    const double total_alpha_p = rng.uniform(params.alpha_lo, params.alpha_hi);
    const double total_alpha_n = rng.uniform(params.alpha_lo, params.alpha_hi);
    const double total_disk = rng.uniform(params.disk_lo, params.disk_hi);
    // Random positive split of the totals over the tiers.
    std::vector<double> weights(static_cast<std::size_t>(tiers));
    double weight_sum = 0.0;
    for (auto& w : weights) {
      w = rng.uniform(0.5, 1.5);
      weight_sum += w;
    }
    for (int t = 0; t < tiers; ++t) {
      const double frac = weights[static_cast<std::size_t>(t)] / weight_sum;
      TierDemand tier;
      tier.alpha_p = std::max(0.05, total_alpha_p * frac);
      tier.alpha_n = std::max(0.05, total_alpha_n * frac);
      tier.disk = total_disk * frac;
      client.tiers.push_back(tier);
    }
    instance.clients.push_back(std::move(client));
  }
  return instance;
}

}  // namespace cloudalloc::multitier
