// Multi-tier application support — the paper's stated future work ("the
// model will be expanded to deployment of complex multi-tier applications
// in a cloud computing infrastructure", Section VII; realized by the
// authors in their CLOUD'11 follow-up).
//
// A multi-tier client's requests flow through T tiers (web -> app -> db);
// every tier has its own processing/communication work and disk footprint,
// holds its own placements, and the stages pipeline, so the end-to-end
// mean response time is the sum of the tiers' response times. The SLA
// utility applies to that end-to-end time.
//
// Reduction: for the linear utilities the paper optimizes,
//     lambda_a * (u0 - s * sum_t R_t) = sum_t lambda_a * (u0/T - s * R_t),
// so a T-tier client is *exactly* equivalent (in the linear region) to T
// independent single-tier clients that each carry the full request rate,
// the tier's demand, and a utility of (u0/T, s). We therefore expand a
// multi-tier instance into an ordinary model::Cloud, run the unmodified
// Resource_Alloc heuristic, and evaluate the true (clipped, end-to-end)
// profit on the expansion map. Clipping differs only when a tier is driven
// past its scaled zero-crossing, where the expansion is conservative.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "alloc/allocator.h"
#include "model/allocation.h"
#include "model/cloud.h"

namespace cloudalloc::multitier {

/// One tier's demand profile.
struct TierDemand {
  double alpha_p = 1.0;  ///< processing work per request
  double alpha_n = 1.0;  ///< communication work per request
  double disk = 0.0;     ///< disk footprint per hosting server
};

/// A client whose requests traverse `tiers` in sequence.
struct MultiTierClient {
  int id = 0;
  model::UtilityClassId utility_class{0};
  double lambda_agreed = 1.0;
  double lambda_pred = 1.0;
  std::vector<TierDemand> tiers;
};

/// A multi-tier optimization instance: the physical cloud's topology plus
/// multi-tier clients. Utility classes must be LinearUtility (the paper's
/// optimized form; the expansion scales u0 by 1/T).
struct MultiTierInstance {
  std::vector<model::ServerClass> server_classes;
  std::vector<model::Server> servers;
  std::vector<model::Cluster> clusters;
  std::vector<model::UtilityClass> utility_classes;
  std::vector<MultiTierClient> clients;
};

/// Maps each expanded (single-tier) client back to its parent and tier.
struct TierRef {
  int parent = 0;
  int tier = 0;
};

struct ExpandedInstance {
  /// One expanded client per (parent, tier). Held behind a shared_ptr so
  /// the Cloud's address is stable under moves — Allocation objects keep a
  /// pointer to it.
  std::shared_ptr<const model::Cloud> cloud_ptr;
  std::vector<TierRef> refs;      ///< indexed by expanded ClientId
  std::vector<int> parent_tiers;  ///< tier count per parent

  const model::Cloud& cloud() const { return *cloud_ptr; }
};

/// Builds the equivalent single-tier Cloud (see the reduction above).
ExpandedInstance expand(const MultiTierInstance& instance);

/// End-to-end response time of parent `p` under an allocation of the
/// expanded cloud: sum of its tiers' response times; +inf if any tier is
/// unassigned or unstable.
double end_to_end_response_time(const ExpandedInstance& expanded,
                                const model::Allocation& alloc, int parent);

/// True multi-tier profit: per-parent clipped utility of the end-to-end
/// response time, minus the usual server operation costs.
double multitier_profit(const MultiTierInstance& instance,
                        const ExpandedInstance& expanded,
                        const model::Allocation& alloc);

struct MultiTierResult {
  ExpandedInstance expanded;
  model::Allocation allocation;  ///< over expanded.cloud
  double profit = 0.0;           ///< true end-to-end profit
  alloc::AllocatorReport report; ///< the inner allocator's trace
};

/// Expands, runs Resource_Alloc, and evaluates the true profit.
MultiTierResult allocate(const MultiTierInstance& instance,
                         const alloc::AllocatorOptions& options = {});

/// Random multi-tier scenario on the Section VI topology: every client
/// gets `tiers_lo..tiers_hi` tiers whose summed demand matches the paper's
/// single-tier client ranges.
MultiTierInstance make_multitier_scenario(int num_clients, int tiers_lo,
                                          int tiers_hi, std::uint64_t seed);

}  // namespace cloudalloc::multitier
