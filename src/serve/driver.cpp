#include "serve/driver.h"

#include <cmath>
#include <vector>

#include "common/check.h"

namespace cloudalloc::serve {
namespace {

std::vector<double> predicted_rates(const model::Cloud& cloud) {
  std::vector<double> rates;
  rates.reserve(static_cast<std::size_t>(cloud.num_clients()));
  for (const auto& client : cloud.clients())
    rates.push_back(client.lambda_pred);
  return rates;
}

}  // namespace

OnlineDriver::OnlineDriver(model::Cloud universe,
                           const std::vector<model::ClientId>& initially_present,
                           const epoch::RatePredictor& prototype,
                           DriverOptions options)
    : options_(options),
      server_(std::move(universe), initially_present, options.server),
      bank_(prototype, predicted_rates(server_.cloud())) {
  CHECK(options_.demand_change_drift >= 0.0);
}

EpochStats OnlineDriver::step(const std::vector<workload::ChurnEvent>& churn,
                              const std::vector<double>& observed_rates) {
  const model::Cloud& cloud = server_.cloud();
  CHECK(static_cast<int>(observed_rates.size()) == cloud.num_clients());
  bank_.observe_all(observed_rates);

  // Clients the external stream already touches keep their stream-given
  // rates; predictor drift must not double-apply on top of them.
  std::vector<std::uint8_t> mentioned(
      static_cast<std::size_t>(cloud.num_clients()), 0);
  for (const workload::ChurnEvent& event : churn)
    mentioned[event.client.index()] = 1;

  // Server-applied order: departures, demand changes, arrivals. Derived
  // drift events slot into the middle band, after the external demand
  // changes (stable, id-ordered).
  std::vector<workload::ChurnEvent> events;
  events.reserve(churn.size());
  for (const workload::ChurnEvent& event : churn)
    if (event.kind == workload::ChurnEvent::Kind::kDeparture)
      events.push_back(event);
  for (const workload::ChurnEvent& event : churn)
    if (event.kind == workload::ChurnEvent::Kind::kDemandChange)
      events.push_back(event);
  for (model::ClientId i : cloud.client_ids()) {
    if (mentioned[i.index()] || !server_.is_present(i)) continue;
    const double current = cloud.client(i).lambda_pred;
    const double predicted = bank_.predict(static_cast<int>(i.index()));
    const double drift =
        std::fabs(predicted - current) / std::max(current, 1e-9);
    if (drift <= options_.demand_change_drift) continue;
    events.push_back(
        {workload::ChurnEvent::Kind::kDemandChange, i, predicted});
  }
  for (const workload::ChurnEvent& event : churn)
    if (event.kind == workload::ChurnEvent::Kind::kArrival)
      events.push_back(event);

  return server_.step(events);
}

}  // namespace cloudalloc::serve
