#include "serve/admission.h"

#include "common/check.h"

namespace cloudalloc::serve {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  CHECK(options_.hysteresis >= 0.0);
}

double AdmissionController::current_bar() const {
  return options_.threshold + (rejecting_ ? options_.hysteresis : 0.0);
}

AdmissionDecision AdmissionController::decide(model::ClientId client,
                                              double marginal_profit) {
  AdmissionDecision decision;
  decision.client = client;
  decision.marginal_profit = marginal_profit;
  decision.bar = current_bar();
  decision.admitted =
      marginal_profit > kInfeasible && marginal_profit >= decision.bar;
  if (decision.admitted) {
    ++admitted_;
    rejecting_ = false;
  } else {
    ++rejected_;
    rejecting_ = true;
  }
  log_.push_back(decision);
  return decision;
}

}  // namespace cloudalloc::serve
