// Profit-aware admission control for the online serving layer.
//
// Each arriving client is priced by the delta pricer (its marginal profit
// at the best feasible placement) and admitted only when that marginal
// clears a configurable bar. The bar carries hysteresis in the style of
// Mazzucco & Mitrani's admission policies for service streams: after a
// rejection the controller enters a "rejecting" regime where the bar is
// raised by `hysteresis`, so a marginal that hovers exactly at the
// threshold cannot flap the system between admit and reject on every
// arrival — it takes a clearly profitable client to re-open the door.
#pragma once

#include <vector>

#include "model/types.h"

namespace cloudalloc::serve {

struct AdmissionOptions {
  /// Minimum delta-priced marginal profit an arrival must clear. Zero
  /// admits anything that does not lose money (the batch optimizer's own
  /// allow_rejection gate); positive reserves capacity for better-paying
  /// future arrivals.
  double threshold = 0.0;
  /// Extra bar while in the rejecting regime (entered on a rejection,
  /// left on an admission). Zero disables hysteresis.
  double hysteresis = 0.0;
};

struct AdmissionDecision {
  model::ClientId client;
  /// Delta-priced profit of serving this client at its best placement
  /// (kInfeasible when nothing can host it).
  double marginal_profit = 0.0;
  /// The bar in force when the decision was made.
  double bar = 0.0;
  bool admitted = false;
};

class AdmissionController {
 public:
  /// Sentinel marginal for arrivals with no feasible placement; always
  /// rejected, and recorded as such in the decision log.
  static constexpr double kInfeasible = -1e300;

  explicit AdmissionController(AdmissionOptions options = {});

  /// Prices one arrival against the current bar, records the decision,
  /// and updates the hysteresis regime. Pure function of the decision
  /// sequence — bit-identical across thread counts by construction.
  AdmissionDecision decide(model::ClientId client, double marginal_profit);

  /// The bar the next decision will face.
  double current_bar() const;

  const std::vector<AdmissionDecision>& log() const { return log_; }
  int admitted() const { return admitted_; }
  int rejected() const { return rejected_; }

 private:
  AdmissionOptions options_;
  bool rejecting_ = false;
  int admitted_ = 0;
  int rejected_ = 0;
  std::vector<AdmissionDecision> log_;
};

}  // namespace cloudalloc::serve
