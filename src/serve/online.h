// OnlineServer: the online serving layer over the per-epoch optimizer.
//
// The batch pipeline (epoch::Controller) rebuilds the world and re-solves
// every epoch. This layer instead keeps ONE long-lived allocation engine
// (model::AllocState) over a fixed "universe" cloud of every client that
// could ever show up, and advances it by applying typed churn events
// between epochs:
//
//   - ClientArrived: the arrival is priced by the delta pricer (its
//     marginal profit at the best feasible placement, MoveEngine::
//     propose_best) and admitted or rejected by the AdmissionController's
//     threshold + hysteresis bar. Admitted clients are placed through the
//     engine; rejected ones stay present but unserved.
//   - ClientDeparted: an exact delta-priced removal.
//   - DemandChanged: the client is vacated, its predicted rate rewritten
//     in place (Cloud::set_lambda_pred — legal only while unassigned),
//     and the cheaper of "stay" (identical placements, no redirection)
//     and "move" (best re-placement, charged migration_penalty against
//     the old placements) is applied. Rate changes for present-but-
//     unserved clients are re-offered to admission at the new price.
//
// After the events, the epoch warm-starts the repair loop from the carried
// allocation (ResourceAllocator::improve_state with a small round budget
// and migration-aware move pricing), falling back to a full batch re-solve
// only when a trigger fires: cumulative churn since the last full solve
// exceeds a fraction of the serving population, or carried profit falls a
// configured gap below its peak since that solve. A zero-churn epoch takes
// a fast path that touches nothing — which is what makes the warm path
// bit-identical to the batch solve in the no-churn limit (pinned by
// tests/test_online.cpp).
//
// Membership is three masks over the universe:
//   present_  — in the system (arrived, not departed),
//   admitted_ — entitled to service (cleared on departure; a full
//               re-solve resets it to the solver's own admission picks),
//   serving_  — currently assigned in the ledger (derived).
// Warm repair may only (re)insert admitted clients; a full re-solve may
// insert anyone present (the batch optimizer's allow_rejection gate is
// the admission decision there).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "alloc/allocator.h"
#include "model/alloc_state.h"
#include "model/cloud.h"
#include "model/diff.h"
#include "serve/admission.h"
#include "workload/churn.h"

namespace cloudalloc::alloc {
class MoveEngine;  // alloc/move_engine.h; only referenced here
}

namespace cloudalloc::serve {

struct OnlineOptions {
  /// Base allocator configuration. migration_cost prices warm-epoch moves;
  /// it is forced to zero for cold solves and full re-solves (a batch plan
  /// redirects no live traffic — realized migration is REPORTED via the
  /// epoch diff, never charged to the batch objective).
  alloc::AllocatorOptions alloc;
  AdmissionOptions admission;
  /// Local-search round budget of a warm-started epoch's repair loop
  /// (replaces alloc.max_local_search_rounds on the warm path only).
  int repair_rounds = 2;
  /// Full re-solve when events applied since the last full solve exceed
  /// this fraction of the serving population.
  double resolve_churn_fraction = 0.5;
  /// Full re-solve when carried profit drops below (1 - gap) x the peak
  /// profit seen since the last full solve.
  double resolve_profit_gap = 0.10;
};

struct EpochStats {
  int epoch = 0;
  int arrivals = 0;
  /// Admission decisions this epoch (arrivals plus re-offered demand
  /// changes of unserved clients).
  int admitted = 0;
  int rejected = 0;
  int departures = 0;
  int demand_changes = 0;
  bool full_resolve = false;
  int rounds_run = 0;  ///< repair rounds (warm) or solve rounds (full)
  int present = 0;
  int serving = 0;
  double profit = 0.0;  ///< carried scalar, exactly as the reports track it
  /// Migration accounting vs the previous epoch's placements.
  model::AllocationDiff diff;
  double wall_ms = 0.0;
};

class OnlineServer {
 public:
  /// Takes ownership of the universe cloud. `initially_present` are in
  /// the system at epoch 0; everyone else is an arrival candidate.
  OnlineServer(model::Cloud universe,
               const std::vector<model::ClientId>& initially_present,
               OnlineOptions options = {});

  const model::Cloud& cloud() const { return *cloud_; }

  /// The allocation currently in force (valid after start()).
  const model::Allocation& allocation() const { return state_->ledger(); }

  /// Carried profit scalar of the allocation in force.
  double profit() const { return carried_profit_; }

  bool is_present(model::ClientId i) const { return present_[i.index()] != 0; }
  bool is_serving(model::ClientId i) const { return serving_[i.index()] != 0; }
  int num_present() const;
  int num_serving() const;

  /// Epoch 0: cold batch solve over the initially-present set. With every
  /// client present this is bit-identical to ResourceAllocator::run on
  /// the same cloud and options.
  EpochStats start();

  /// Advances one epoch: applies `events` through the engine, then warm-
  /// repairs or fully re-solves per the triggers above. An empty event
  /// list takes the zero-churn fast path (no repair, profit carried).
  EpochStats step(const std::vector<workload::ChurnEvent>& events);

  const std::vector<EpochStats>& history() const { return history_; }
  const AdmissionController& admission() const { return admission_; }

 private:
  void apply_event(const workload::ChurnEvent& event,
                   alloc::MoveEngine& engine,
                   const alloc::AllocatorOptions& event_opts,
                   double& profit_now, EpochStats& stats);
  /// Prices client i's best placement and runs it through admission;
  /// places it on admit. Shared by arrivals and re-offered rate changes.
  void offer_to_admission(model::ClientId i, alloc::MoveEngine& engine,
                          double& profit_now, EpochStats& stats);
  /// Batch solve over the present set; replaces the engine state.
  alloc::AllocatorReport full_solve();
  void refresh_serving_mask();

  OnlineOptions options_;
  std::unique_ptr<model::Cloud> cloud_;
  std::unique_ptr<model::AllocState> state_;
  std::vector<std::uint8_t> present_;
  std::vector<std::uint8_t> admitted_;
  std::vector<std::uint8_t> serving_;
  AdmissionController admission_;
  double carried_profit_ = 0.0;
  double peak_profit_ = 0.0;    ///< since the last full solve
  int churn_since_resolve_ = 0;
  std::vector<EpochStats> history_;
  int epoch_ = 0;
};

}  // namespace cloudalloc::serve
