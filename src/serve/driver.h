// OnlineDriver: the online counterpart of epoch::Controller. It owns an
// OnlineServer plus the same per-client prediction machinery the batch
// controller uses (epoch::PredictorBank) and closes the loop from
// measurements to events: each epoch it feeds the observed arrival rates
// to the bank, turns material prediction drift on present clients into
// DemandChanged events, merges them with the external churn stream
// (arrivals and departures come from the outside world; rate drift comes
// from the predictors), and steps the server.
#pragma once

#include <vector>

#include "epoch/predictor.h"
#include "serve/online.h"
#include "workload/churn.h"

namespace cloudalloc::serve {

struct DriverOptions {
  OnlineOptions server;
  /// Relative drift |predicted - current| / current above which a present
  /// client's new prediction becomes a DemandChanged event. Re-pricing a
  /// client has a cost; sub-threshold drift is treated as noise.
  double demand_change_drift = 0.10;
};

class OnlineDriver {
 public:
  OnlineDriver(model::Cloud universe,
               const std::vector<model::ClientId>& initially_present,
               const epoch::RatePredictor& prototype,
               DriverOptions options = {});

  const OnlineServer& server() const { return server_; }

  /// Epoch 0: cold solve over the initially-present set.
  EpochStats start() { return server_.start(); }

  /// One epoch: observe -> predict -> derive DemandChanged events for
  /// drifted present clients (skipping any client `churn` already
  /// mentions) -> apply departures, demand changes, then arrivals.
  /// `observed_rates[i]` is client i's measured rate over the epoch that
  /// just ended (absent clients' entries are fed to their predictors too,
  /// so a returning client re-enters with a warm forecast).
  EpochStats step(const std::vector<workload::ChurnEvent>& churn,
                  const std::vector<double>& observed_rates);

 private:
  DriverOptions options_;
  OnlineServer server_;
  epoch::PredictorBank bank_;
};

}  // namespace cloudalloc::serve
