#include "serve/online.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "alloc/delta_price.h"
#include "alloc/move_engine.h"
#include "common/check.h"
#include "common/prof.h"

namespace cloudalloc::serve {
namespace {

using alloc::AllocatorOptions;
using alloc::MoveEngine;
using model::ClientId;
using model::ClusterId;
using model::Placement;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

OnlineServer::OnlineServer(model::Cloud universe,
                           const std::vector<ClientId>& initially_present,
                           OnlineOptions options)
    : options_(options),
      cloud_(std::make_unique<model::Cloud>(std::move(universe))),
      present_(static_cast<std::size_t>(cloud_->num_clients()), 0),
      admitted_(static_cast<std::size_t>(cloud_->num_clients()), 0),
      serving_(static_cast<std::size_t>(cloud_->num_clients()), 0),
      admission_(options.admission) {
  CHECK(options_.repair_rounds >= 1);
  CHECK(options_.resolve_churn_fraction > 0.0);
  CHECK(options_.resolve_profit_gap > 0.0);
  for (ClientId i : initially_present) {
    CHECK(i.valid() && i.value() < cloud_->num_clients());
    present_[i.index()] = 1;
  }
}

int OnlineServer::num_present() const {
  int n = 0;
  for (std::uint8_t p : present_) n += p;
  return n;
}

int OnlineServer::num_serving() const {
  int n = 0;
  for (std::uint8_t s : serving_) n += s;
  return n;
}

void OnlineServer::refresh_serving_mask() {
  for (ClientId i : cloud_->client_ids())
    serving_[i.index()] = state_->ledger().is_assigned(i) ? 1 : 0;
}

alloc::AllocatorReport OnlineServer::full_solve() {
  PROF_ZONE("serve.full_solve");
  AllocatorOptions cold = options_.alloc;
  cold.insertable = &present_;
  cold.migration_cost = 0.0;  // batch plans redirect no live traffic
  const alloc::ResourceAllocator allocator(cold);
  alloc::AllocatorResult result = allocator.run(*cloud_);
  state_ = std::make_unique<model::AllocState>(std::move(result.allocation));
  carried_profit_ = result.report.final_profit;
  peak_profit_ = carried_profit_;
  churn_since_resolve_ = 0;
  refresh_serving_mask();
  // The batch optimizer's allow_rejection gate IS the admission decision
  // on this path: entitlement resets to whoever it chose to serve.
  admitted_ = serving_;
  return result.report;
}

EpochStats OnlineServer::start() {
  CHECK_MSG(epoch_ == 0, "start() only once");
  const auto t0 = Clock::now();
  const alloc::AllocatorReport report = full_solve();

  EpochStats stats;
  stats.epoch = 0;
  stats.full_resolve = true;
  stats.rounds_run = report.rounds_run;
  stats.present = num_present();
  stats.serving = num_serving();
  stats.profit = carried_profit_;
  stats.diff.arrived = stats.serving;  // everything placed is new
  stats.wall_ms = ms_since(t0);
  history_.push_back(stats);
  epoch_ = 1;
  return stats;
}

void OnlineServer::offer_to_admission(ClientId i, MoveEngine& engine,
                                      double& profit_now, EpochStats& stats) {
  const MoveEngine::Proposal prop = engine.propose_best(i);
  const double marginal =
      prop.plan ? prop.predicted : AdmissionController::kInfeasible;
  const AdmissionDecision decision = admission_.decide(i, marginal);
  if (decision.admitted) {
    admitted_[i.index()] = 1;
    engine.apply(i, *prop.plan, profit_now);
    serving_[i.index()] = 1;
    ++stats.admitted;
  } else {
    ++stats.rejected;
  }
}

void OnlineServer::apply_event(const workload::ChurnEvent& event,
                               MoveEngine& engine,
                               const AllocatorOptions& event_opts,
                               double& profit_now, EpochStats& stats) {
  const ClientId i = event.client;
  switch (event.kind) {
    case workload::ChurnEvent::Kind::kDeparture: {
      CHECK(present_[i.index()]);
      if (state_->ledger().is_assigned(i))
        engine.apply(i, std::nullopt, profit_now);
      present_[i.index()] = 0;
      admitted_[i.index()] = 0;
      serving_[i.index()] = 0;
      ++stats.departures;
      return;
    }
    case workload::ChurnEvent::Kind::kArrival: {
      CHECK(!present_[i.index()]);
      CHECK(!state_->ledger().is_assigned(i));
      present_[i.index()] = 1;
      cloud_->set_lambda_pred(i, event.rate);
      ++stats.arrivals;
      offer_to_admission(i, engine, profit_now, stats);
      return;
    }
    case workload::ChurnEvent::Kind::kDemandChange: {
      CHECK(present_[i.index()]);
      ++stats.demand_changes;
      if (!state_->ledger().is_assigned(i)) {
        // Unserved: rewrite the rate (legal while unassigned). Entitled
        // clients wait for the repair loop to re-place them; the rest are
        // re-offered to admission at the new price.
        cloud_->set_lambda_pred(i, event.rate);
        if (!admitted_[i.index()])
          offer_to_admission(i, engine, profit_now, stats);
        return;
      }
      // Serving: vacate exactly, rewrite the rate, then take the cheaper
      // of staying put (identical placements — no traffic redirected, no
      // penalty) and the best re-placement net of its migration charge
      // against the placements the client actually occupied.
      const ClusterId old_cluster = state_->ledger().cluster_of(i);
      std::vector<Placement> old_ps = state_->ledger().placements(i);
      engine.apply(i, std::nullopt, profit_now);
      cloud_->set_lambda_pred(i, event.rate);
      const MoveEngine::Proposal prop = engine.propose_best(i);
      const double stay_score =
          alloc::insertion_delta(state_->view(), i, old_ps);
      const double move_score =
          prop.plan ? prop.predicted - alloc::migration_penalty(
                                           event_opts, old_ps,
                                           prop.plan->placements)
                    : AdmissionController::kInfeasible;
      if (prop.plan && move_score > stay_score + 1e-12) {
        engine.apply(i, *prop.plan, profit_now);
      } else {
        engine.apply(i,
                     alloc::InsertionPlan{old_cluster, std::move(old_ps),
                                          stay_score},
                     profit_now);
      }
      return;
    }
  }
}

EpochStats OnlineServer::step(const std::vector<workload::ChurnEvent>& events) {
  CHECK_MSG(epoch_ >= 1, "call start() first");
  PROF_ZONE("serve.step");
  const auto t0 = Clock::now();
  EpochStats stats;
  stats.epoch = epoch_;
  const model::AllocState::Checkpoint prev =
      state_->checkpoint(carried_profit_);

  if (events.empty()) {
    // Zero-churn fast path: nothing to apply, nothing to repair. The
    // carried state and profit pass through untouched — this is the
    // bit-identity anchor of the warm path.
    stats.present = num_present();
    stats.serving = num_serving();
    stats.profit = carried_profit_;
    stats.diff.unchanged = stats.serving;
    stats.wall_ms = ms_since(t0);
    history_.push_back(stats);
    ++epoch_;
    return stats;
  }

  {
    PROF_ZONE("serve.apply_events");
    const AllocatorOptions event_opts = options_.alloc;
    MoveEngine engine(*state_, event_opts);
    double profit_now = state_->profit();
    for (const workload::ChurnEvent& event : events)
      apply_event(event, engine, event_opts, profit_now, stats);
    carried_profit_ = profit_now;
  }
  churn_since_resolve_ += static_cast<int>(events.size());
  refresh_serving_mask();

  const double churn_fraction =
      static_cast<double>(churn_since_resolve_) /
      static_cast<double>(std::max(1, num_serving()));
  const bool full =
      churn_fraction > options_.resolve_churn_fraction ||
      carried_profit_ < (1.0 - options_.resolve_profit_gap) * peak_profit_;
  if (full) {
    const alloc::AllocatorReport report = full_solve();
    stats.full_resolve = true;
    stats.rounds_run = report.rounds_run;
  } else {
    PROF_ZONE("serve.warm_repair");
    AllocatorOptions warm = options_.alloc;
    warm.insertable = &admitted_;
    warm.max_local_search_rounds = options_.repair_rounds;
    const alloc::ResourceAllocator allocator(warm);
    const alloc::AllocatorReport report = allocator.improve_state(*state_);
    carried_profit_ = report.final_profit;
    stats.rounds_run = report.rounds_run;
    refresh_serving_mask();
    peak_profit_ = std::max(peak_profit_, carried_profit_);
  }

  stats.present = num_present();
  stats.serving = num_serving();
  stats.profit = carried_profit_;
  stats.diff = model::diff_allocations(prev, state_->ledger());
  stats.wall_ms = ms_since(t0);
  history_.push_back(stats);
  ++epoch_;
  return stats;
}

}  // namespace cloudalloc::serve
