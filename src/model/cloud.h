// Immutable description of one decision epoch's optimization instance:
// topology (clusters, servers, server classes), client population, and
// utility classes. Validated once at construction; the allocator and
// evaluators then index into it freely.
#pragma once

#include <memory>
#include <vector>

#include "model/entities.h"
#include "model/utility.h"

namespace cloudalloc::model {

class Cloud {
 public:
  /// Validates cross-references (every server's cluster/class exists, ids
  /// are dense and match vector positions, parameters are in-domain) and
  /// aborts via CHECK on programmer error.
  Cloud(std::vector<ServerClass> server_classes, std::vector<Server> servers,
        std::vector<Cluster> clusters, std::vector<UtilityClass> utility_classes,
        std::vector<Client> clients);

  const std::vector<ServerClass>& server_classes() const {
    return server_classes_;
  }
  const std::vector<Server>& servers() const { return servers_; }
  const std::vector<Cluster>& clusters() const { return clusters_; }
  const std::vector<UtilityClass>& utility_classes() const {
    return utility_classes_;
  }
  const std::vector<Client>& clients() const { return clients_; }

  int num_clients() const { return static_cast<int>(clients_.size()); }
  int num_servers() const { return static_cast<int>(servers_.size()); }
  int num_clusters() const { return static_cast<int>(clusters_.size()); }

  /// Typed id ranges for loops over the populations:
  /// `for (ClientId i : cloud.client_ids())`.
  IdRange<ClientId> client_ids() const {
    return id_range<ClientId>(clients_.size());
  }
  IdRange<ServerId> server_ids() const {
    return id_range<ServerId>(servers_.size());
  }
  IdRange<ClusterId> cluster_ids() const {
    return id_range<ClusterId>(clusters_.size());
  }
  IdRange<ServerClassId> server_class_ids() const {
    return id_range<ServerClassId>(server_classes_.size());
  }
  IdRange<UtilityClassId> utility_class_ids() const {
    return id_range<UtilityClassId>(utility_classes_.size());
  }

  /// Online-serving hook: rewrites client i's predicted arrival rate in
  /// place (the demand-drift dimension of a churn stream) and keeps the
  /// total_demand aggregates in sync. The contract is allocation-state
  /// safety, not immutability: the client must be UNASSIGNED in every live
  /// Allocation / ResidualView over this cloud when the rate changes —
  /// their per-server load aggregates bake in lambda_pred at assign time
  /// and would silently go stale otherwise. The serving layer's
  /// remove -> set_lambda_pred -> re-insert sequence honors this.
  /// `lambda` must be finite and > 0. lambda_agreed stays contractual.
  void set_lambda_pred(ClientId i, double lambda);

  const Client& client(ClientId i) const;
  const Server& server(ServerId j) const;
  const Cluster& cluster(ClusterId k) const;
  const ServerClass& server_class_of(ServerId j) const;
  const UtilityFunction& utility_of(ClientId i) const;

  /// Total processing capacity across all servers (background excluded).
  double total_cap_p() const { return total_cap_p_; }
  double total_cap_n() const { return total_cap_n_; }
  /// Sum of predicted demand lambda_pred * alpha over clients, per resource.
  double total_demand_p() const { return total_demand_p_; }
  double total_demand_n() const { return total_demand_n_; }

 private:
  std::vector<ServerClass> server_classes_;
  std::vector<Server> servers_;
  std::vector<Cluster> clusters_;
  std::vector<UtilityClass> utility_classes_;
  std::vector<Client> clients_;
  double total_cap_p_ = 0.0;
  double total_cap_n_ = 0.0;
  double total_demand_p_ = 0.0;
  double total_demand_n_ = 0.0;
};

}  // namespace cloudalloc::model
