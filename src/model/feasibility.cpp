#include "model/feasibility.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "queueing/gps.h"
#include "queueing/mm1.h"

namespace cloudalloc::model {

std::string Violation::describe() const {
  std::ostringstream os;
  switch (kind) {
    case ViolationKind::kShareOverflowP:
      os << "processing shares on server " << server.value() << " exceed 1 by "
         << magnitude;
      break;
    case ViolationKind::kShareOverflowN:
      os << "communication shares on server " << server.value() << " exceed 1 by "
         << magnitude;
      break;
    case ViolationKind::kDiskOverflow:
      os << "disk on server " << server.value() << " exceeds capacity by "
         << magnitude;
      break;
    case ViolationKind::kPsiNotOne:
      os << "client " << client.value() << " psi sums to 1" << (magnitude >= 0 ? "+" : "")
         << magnitude;
      break;
    case ViolationKind::kCrossCluster:
      os << "client " << client.value() << " has a placement on server " << server.value()
         << " outside its cluster";
      break;
    case ViolationKind::kUnstableQueue:
      os << "client " << client.value() << " on server " << server.value()
         << " has an unstable queue (slack " << magnitude << ")";
      break;
    case ViolationKind::kNegativeVariable:
      os << "client " << client.value() << " on server " << server.value()
         << " has a negative variable " << magnitude;
      break;
  }
  return os.str();
}

std::vector<Violation> check_feasibility(const Allocation& alloc, double tol) {
  const Cloud& cloud = alloc.cloud();
  std::vector<Violation> out;

  for (ServerId j : cloud.server_ids()) {
    const double over_p = alloc.used_phi_p(j) - 1.0;
    if (over_p > tol)
      out.push_back({ViolationKind::kShareOverflowP, kNoClient, j, over_p});
    const double over_n = alloc.used_phi_n(j) - 1.0;
    if (over_n > tol)
      out.push_back({ViolationKind::kShareOverflowN, kNoClient, j, over_n});
    const double over_m = alloc.used_disk(j) - cloud.server_class_of(j).cap_m;
    if (over_m > tol)
      out.push_back({ViolationKind::kDiskOverflow, kNoClient, j, over_m});
  }

  for (ClientId i : cloud.client_ids()) {
    if (!alloc.is_assigned(i)) continue;
    const Client& c = cloud.client(i);
    const ClusterId k = alloc.cluster_of(i);
    double psi_sum = 0.0;
    for (const Placement& p : alloc.placements(i)) {
      psi_sum += p.psi;
      if (cloud.server(p.server).cluster != k)
        out.push_back({ViolationKind::kCrossCluster, i, p.server, 0.0});
      if (p.psi < -tol || p.phi_p < -tol || p.phi_n < -tol)
        out.push_back({ViolationKind::kNegativeVariable, i, p.server,
                       std::min({p.psi, p.phi_p, p.phi_n})});
      const ServerClass& sc = cloud.server_class_of(p.server);
      const units::ArrivalRate arrivals =
          p.psi * units::ArrivalRate{c.lambda_pred};
      const units::ArrivalRate mu_p = queueing::gps_service_rate(
          units::Share{p.phi_p}, units::WorkRate{sc.cap_p},
          units::Work{c.alpha_p});
      const units::ArrivalRate mu_n = queueing::gps_service_rate(
          units::Share{p.phi_n}, units::WorkRate{sc.cap_n},
          units::Work{c.alpha_n});
      if (!queueing::mm1_stable(arrivals, mu_p))
        out.push_back({ViolationKind::kUnstableQueue, i, p.server,
                       (mu_p - arrivals).value()});
      if (!queueing::mm1_stable(arrivals, mu_n))
        out.push_back({ViolationKind::kUnstableQueue, i, p.server,
                       (mu_n - arrivals).value()});
    }
    if (std::fabs(psi_sum - 1.0) > tol)
      out.push_back({ViolationKind::kPsiNotOne, i, kNoServer, psi_sum - 1.0});
  }
  return out;
}

bool is_feasible(const Allocation& alloc, double tol) {
  return check_feasibility(alloc, tol).empty();
}

}  // namespace cloudalloc::model
