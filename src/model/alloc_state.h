// AllocState: the transactional allocation-state engine.
//
// One AllocState owns BOTH state representations the heuristic needs and
// keeps them bitwise-synchronized behind a single mutation API:
//
//   - the `ledger` Allocation — authoritative placements, incremental
//     profit caches, and the materialization/serialization surface, and
//   - the `view` ResidualView — the flat SoA residual arrays every
//     speculative probe (Assign_Distribute, delta pricing) runs against.
//
// The lifecycle every layer follows is propose -> delta-price -> commit /
// rollback: speculation happens on the view with the bitwise Undo log
// (remove_client/add_client/restore round-trips are lossless), and only a
// committed move goes through assign()/clear(), which mutate the ledger
// and then resync the touched servers' view entries from it — resync
// rather than replay, because the ledger's own remove/add arithmetic can
// drift by ulps while the view's restore is exact. A view probe against a
// synced engine is therefore bit-identical to probing the ledger itself
// (the accessors evaluate the same expressions over the same bits).
//
// Copies happen only at documented boundaries:
//   - branch()/adopt(): full-fidelity trial states for clone-try-swap
//     phases (TurnON/TurnOFF). A branch carries the ledger's exact cache
//     state, so a swapped-in branch is bitwise what mutating in place and
//     rolling forward would have produced.
//   - checkpoint()/materialize(): best-so-far tracking. A Checkpoint is
//     placements + the tracked profit scalar only — no caches, no
//     aggregates, no candidate orders — and materialize() rebuilds a
//     plain Allocation from it at report/serialize boundaries. The
//     materialized allocation's incrementally-derived aggregates may
//     differ from the historical state by ulps (summation order), which
//     is why the profit REPORTED for a checkpoint is the carried scalar,
//     not a re-evaluation.
//
// Invariant contract: aggregates_consistent() revalidates the engine
// against a from-scratch recomputation — ledger aggregates within a
// relative tolerance of recomputed sums (incremental maintenance may
// drift by ulps; emptied servers reset exactly), and the view bitwise
// equal to the ledger. check_invariants() CHECKs it (always compiled);
// debug_check_invariants() is the NDEBUG-gated form the allocator and the
// distributed manager call at phase boundaries.
#pragma once

#include <vector>

#include "model/allocation.h"
#include "model/residual.h"

namespace cloudalloc::model {

class AllocState {
 public:
  /// Empty state over `cloud`.
  explicit AllocState(const Cloud& cloud) : ledger_(cloud), view_(ledger_) {}

  /// Adopts an existing allocation as the ledger (no copy when moved in).
  explicit AllocState(Allocation ledger)
      : ledger_(std::move(ledger)), view_(ledger_) {}

  AllocState(AllocState&&) = default;
  AllocState& operator=(AllocState&&) = default;

  const Cloud& cloud() const { return ledger_.cloud(); }

  /// Authoritative read surface: placements, response times, profit
  /// caches. Mutate only through the engine.
  const Allocation& ledger() const { return ledger_; }

  /// The SoA probe surface. Mutable access is for SPECULATION ONLY:
  /// remove_client/add_client excursions must be bitwise undone
  /// (restore()) before the next engine operation, or the view desyncs.
  ResidualView& view() { return view_; }
  const ResidualView& view() const { return view_; }

  // --- committed mutations (ledger + view stay in lockstep) --------------

  /// Allocation::assign + resync of every touched server's view entry.
  void assign(ClientId i, ClusterId k, std::vector<Placement> ps);

  /// Allocation::clear + resync.
  void clear(ClientId i);

  /// model::profit(ledger) — settles the ledger's caches. Call sites map
  /// 1:1 onto the pre-engine profit calls: the cache-repair sequence (and
  /// with it the rebase schedule) is part of the bit-identity contract.
  double profit();

  // --- trial states (clone-try-swap boundaries) --------------------------

  /// Full-fidelity copy — ledger caches and view included — for phases
  /// that speculate on a whole trial state and swap it in on success.
  AllocState branch() const { return AllocState(*this); }

  /// Swaps a branch in (the engine equivalent of `alloc = std::move(t)`).
  void adopt(AllocState&& other) {
    ledger_ = std::move(other.ledger_);
    view_ = std::move(other.view_);
  }

  // --- placement checkpoints (best-so-far tracking) ----------------------

  /// Placements plus the tracked profit scalar; far cheaper than an
  /// Allocation clone (no caches, no per-server lists, no index).
  struct Checkpoint {
    std::vector<ClusterId> cluster_of;
    std::vector<std::vector<Placement>> placements;
    double profit = 0.0;
  };

  Checkpoint checkpoint(double profit) const;

  /// Rebuilds a plain Allocation from a checkpoint — the only place the
  /// engine hands out allocation-state copies (report/serialize
  /// boundaries). See the class comment on ulp-level aggregate drift.
  Allocation materialize(const Checkpoint& ckpt) const;

  /// Steals the ledger (engine is dead afterwards).
  Allocation release() && { return std::move(ledger_); }

  // --- invariant checker -------------------------------------------------

  /// From-scratch revalidation: recomputed per-server sums vs the
  /// ledger's incremental aggregates (relative tolerance `tol`), hosted
  /// counts exact, and the view bitwise equal to the ledger.
  bool aggregates_consistent(double tol = 1e-9) const;

  /// CHECK(aggregates_consistent()) — always compiled.
  void check_invariants() const;

  /// Phase-boundary form: compiled out under NDEBUG (release builds).
  void debug_check_invariants() const {
#ifndef NDEBUG
    check_invariants();
#endif
  }

  /// Test hook: perturbs one ledger aggregate so invariant tests can
  /// prove the checker trips. Never called outside tests.
  void corrupt_aggregate_for_test(ServerId j, double delta);

 private:
  AllocState(const AllocState&) = default;

  Allocation ledger_;
  ResidualView view_;
  std::vector<ServerId> touched_;  ///< scratch for resync batching
};

}  // namespace cloudalloc::model
