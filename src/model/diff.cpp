#include "model/diff.h"

#include <algorithm>

#include "common/check.h"

namespace cloudalloc::model {

double redirected_fraction(const std::vector<Placement>& old_ps,
                           const std::vector<Placement>& new_ps) {
  if (old_ps.empty()) return 0.0;
  double moved = 0.0;
  for (const Placement& o : old_ps) {
    double kept = 0.0;
    for (const Placement& n : new_ps)
      if (n.server == o.server) {
        kept = n.psi;
        break;
      }
    moved += std::max(0.0, o.psi - kept);
  }
  return std::min(moved, 1.0);
}

namespace {

/// Bitwise placement equality — the diff's "unchanged" means no state bit
/// of the slice moved, matching the engine's exact-restore contract.
bool same_placements(const std::vector<Placement>& a,
                     const std::vector<Placement>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t idx = 0; idx < a.size(); ++idx) {
    if (a[idx].server != b[idx].server || a[idx].psi != b[idx].psi ||
        a[idx].phi_p != b[idx].phi_p || a[idx].phi_n != b[idx].phi_n)
      return false;
  }
  return true;
}

}  // namespace

AllocationDiff diff_allocations(const AllocState::Checkpoint& prev,
                                const Allocation& next) {
  const Cloud& cloud = next.cloud();
  CHECK(static_cast<int>(prev.placements.size()) == cloud.num_clients());
  AllocationDiff d;
  for (ClientId i : cloud.client_ids()) {
    const std::vector<Placement>& before = prev.placements[i.index()];
    const bool was = !before.empty();
    const bool now = next.is_assigned(i);
    if (!was && !now) continue;
    if (!was) {
      ++d.arrived;
    } else if (!now) {
      ++d.departed;
    } else if (same_placements(before, next.placements(i))) {
      ++d.unchanged;
    } else {
      const double frac = redirected_fraction(before, next.placements(i));
      if (frac > 0.0) {
        ++d.moved;
        d.redirected += frac;
      } else {
        ++d.resized;
      }
    }
  }
  return d;
}

}  // namespace cloudalloc::model
