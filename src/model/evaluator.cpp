#include "model/evaluator.h"

#include <cmath>

#include "common/units.h"
#include <limits>

namespace cloudalloc::model {

double client_revenue(const Allocation& alloc, ClientId i) {
  if (!alloc.is_assigned(i)) return 0.0;
  const units::Time r{alloc.response_time(i)};
  if (!std::isfinite(r.value())) return 0.0;
  const Client& c = alloc.cloud().client(i);
  // Eq. (2) revenue line, dimension-checked: (requests/time) * (money/
  // request) is the only product that exists, so transposing the agreed
  // rate and the utility price cannot compile.
  const units::PricePerRequest u{alloc.cloud().utility_of(i).value(r.value())};
  return (units::ArrivalRate{c.lambda_agreed} * u).value();
}

double server_cost(const Allocation& alloc, ServerId j) {
  if (!alloc.active(j)) return 0.0;
  const ServerClass& sc = alloc.cloud().server_class_of(j);
  const units::MoneyRate fixed{sc.cost_fixed};
  const units::MoneyRate variable{sc.cost_per_util * alloc.proc_utilization(j)};
  return (fixed + variable).value();
}

ProfitBreakdown evaluate(const Allocation& alloc) {
  const Cloud& cloud = alloc.cloud();
  ProfitBreakdown out;
  out.clients.reserve(static_cast<std::size_t>(cloud.num_clients()));
  for (ClientId i : cloud.client_ids()) {
    ClientOutcome co;
    co.id = i;
    co.assigned = alloc.is_assigned(i);
    co.response_time = alloc.response_time(i);
    co.utility = (co.assigned && std::isfinite(co.response_time))
                     ? cloud.utility_of(i).value(co.response_time)
                     : 0.0;
    co.revenue = co.utility * cloud.client(i).lambda_agreed;
    out.revenue += co.revenue;
    out.clients.push_back(co);
  }
  out.servers.reserve(static_cast<std::size_t>(cloud.num_servers()));
  for (ServerId j : cloud.server_ids()) {
    ServerOutcome so;
    so.id = j;
    so.active = alloc.active(j);
    so.utilization_p = alloc.proc_utilization(j);
    so.cost = server_cost(alloc, j);
    if (so.active) ++out.active_servers;
    out.cost += so.cost;
    out.servers.push_back(so);
  }
  out.profit = out.revenue - out.cost;
  return out;
}

double profit(const Allocation& alloc) {
  // Incremental: only entries dirtied since the last call are recomputed.
  // evaluate() above stays a from-scratch recomputation, so the two act
  // as independent implementations that tests cross-check.
  return alloc.cached_profit();
}

}  // namespace cloudalloc::model
