#include "model/evaluator.h"

#include <cmath>
#include <limits>

namespace cloudalloc::model {

double client_revenue(const Allocation& alloc, ClientId i) {
  if (!alloc.is_assigned(i)) return 0.0;
  const double r = alloc.response_time(i);
  if (!std::isfinite(r)) return 0.0;
  const Client& c = alloc.cloud().client(i);
  return c.lambda_agreed * alloc.cloud().utility_of(i).value(r);
}

double server_cost(const Allocation& alloc, ServerId j) {
  if (!alloc.active(j)) return 0.0;
  const ServerClass& sc = alloc.cloud().server_class_of(j);
  return sc.cost_fixed + sc.cost_per_util * alloc.proc_utilization(j);
}

ProfitBreakdown evaluate(const Allocation& alloc) {
  const Cloud& cloud = alloc.cloud();
  ProfitBreakdown out;
  out.clients.reserve(static_cast<std::size_t>(cloud.num_clients()));
  for (ClientId i = 0; i < cloud.num_clients(); ++i) {
    ClientOutcome co;
    co.id = i;
    co.assigned = alloc.is_assigned(i);
    co.response_time = alloc.response_time(i);
    co.utility = (co.assigned && std::isfinite(co.response_time))
                     ? cloud.utility_of(i).value(co.response_time)
                     : 0.0;
    co.revenue = co.utility * cloud.client(i).lambda_agreed;
    out.revenue += co.revenue;
    out.clients.push_back(co);
  }
  out.servers.reserve(static_cast<std::size_t>(cloud.num_servers()));
  for (ServerId j = 0; j < cloud.num_servers(); ++j) {
    ServerOutcome so;
    so.id = j;
    so.active = alloc.active(j);
    so.utilization_p = alloc.proc_utilization(j);
    so.cost = server_cost(alloc, j);
    if (so.active) ++out.active_servers;
    out.cost += so.cost;
    out.servers.push_back(so);
  }
  out.profit = out.revenue - out.cost;
  return out;
}

double profit(const Allocation& alloc) {
  // Incremental: only entries dirtied since the last call are recomputed.
  // evaluate() above stays a from-scratch recomputation, so the two act
  // as independent implementations that tests cross-check.
  return alloc.cached_profit();
}

}  // namespace cloudalloc::model
