// JSON (de)serialization for the system model: scenarios (Cloud) and
// solutions (Allocation) become portable, diffable artifacts — run an
// experiment, save both, reload them elsewhere, and re-audit or re-simulate
// the exact same state.
//
// Format versioning: every document carries {"format": "...", "version": 1}.
// Utility functions serialize by shape ("linear" with u0/s, "step" with
// thresholds/values).
#pragma once

#include <optional>
#include <string>

#include "common/json.h"
#include "model/allocation.h"
#include "model/cloud.h"

namespace cloudalloc::model {

/// Cloud -> JSON document (stable, human-readable with dump(2)).
Json cloud_to_json(const Cloud& cloud);

/// JSON -> Cloud. Returns nullopt (and a message in *error) on schema
/// violations; parameter-domain violations still CHECK inside Cloud's
/// constructor, as they are programmer errors on a trusted document.
std::optional<Cloud> cloud_from_json(const Json& doc,
                                     std::string* error = nullptr);

/// One placement slice -> JSON ({server, psi, phi_p, phi_n}). Doubles are
/// emitted round-trip exactly (%.17g), so encode/decode is bitwise
/// lossless — the dist wire codec relies on this for cross-mode parity.
Json placement_to_json(const Placement& p);

/// JSON -> Placement. Structural validation only (fields present and
/// numeric, server id non-negative); cloud-dependent checks (id range,
/// cluster membership, psi domain) stay with the caller, which knows the
/// cloud. Returns nullopt (and a message in *error) on malformed nodes.
std::optional<Placement> placement_from_json(const Json& node,
                                             std::string* error = nullptr);

/// Allocation (placements + cluster map) -> JSON. The document references
/// the cloud's client/server ids, not its contents.
Json allocation_to_json(const Allocation& alloc);

/// JSON -> Allocation bound to `cloud`. Validates id ranges and placement
/// invariants (via Allocation::assign's checks) against that cloud.
std::optional<Allocation> allocation_from_json(const Cloud& cloud,
                                               const Json& doc,
                                               std::string* error = nullptr);

/// Whole-file helpers.
bool save_text_file(const std::string& path, const std::string& contents);
std::optional<std::string> load_text_file(const std::string& path);

}  // namespace cloudalloc::model
