// Mutable allocation state for one decision epoch: which cluster serves
// each client (y), how the client's traffic is dispersed over servers
// (psi), and the GPS shares it holds on each server (phi_p, phi_n).
//
// Allocation maintains per-server aggregates (used shares, disk, processing
// load, hosted clients) incrementally so the heuristic's inner loops stay
// O(changed placements), and exposes the derived quantities the model
// needs: server activity x_j, utilization, and client response times.
//
// Concurrency (the frozen-snapshot contract used by the parallel
// evaluation engine): Allocation is not internally synchronized. The
// profit cache makes cached_profit() a const-but-mutating repair, so a
// shared instance is safe for concurrent const access ONLY once the cache
// is settled — call model::profit(a) once, then profit_settled() holds and
// every const accessor (is_assigned, cluster_of, placements,
// response_time, the server aggregates, active, clients_on, clone) is a
// pure read. The per-cluster insertion-candidate index is the same kind of
// const-but-mutating lazy cache: insertion_candidates(k) rebuilds the
// cluster's order if assign/clear dirtied it, so parallel callers must
// settle it first (constructing a ResidualView does, for every cluster).
// Workers that need to mutate or re-price must clone() the settled
// snapshot and work on the private copy. Parallel call sites
// CHECK(profit_settled()) before fanning out.
#pragma once

#include <vector>

#include "model/cloud.h"
#include "queueing/response_time.h"

namespace cloudalloc::model {

/// One client's slice on one server.
struct Placement {
  ServerId server = kNoServer;
  double psi = 0.0;    ///< fraction of the client's requests sent to `server`
  double phi_p = 0.0;  ///< GPS share of the server's processing capacity
  double phi_n = 0.0;  ///< GPS share of the server's communication capacity
};

class Allocation {
 public:
  explicit Allocation(const Cloud& cloud);

  const Cloud& cloud() const { return *cloud_; }

  // --- client-side state ------------------------------------------------

  bool is_assigned(ClientId i) const;
  ClusterId cluster_of(ClientId i) const;
  const std::vector<Placement>& placements(ClientId i) const;

  /// Replaces client i's entire assignment. Every placement must reference
  /// a distinct server of cluster `k`, have psi in (0,1] summing to ~1, and
  /// non-negative shares. Aggregates are updated incrementally.
  void assign(ClientId i, ClusterId k, std::vector<Placement> ps);

  /// Removes client i from the system (no cluster, no placements).
  void clear(ClientId i);

  /// Mean response time of client i under the analytic GPS/M-M-1 model;
  /// +infinity if unstable, and +infinity for unassigned clients (callers
  /// treat unassigned revenue as zero before consulting this).
  double response_time(ClientId i) const;

  // --- server-side aggregates (background load included) -----------------

  double used_phi_p(ServerId j) const;
  double used_phi_n(ServerId j) const;
  double used_disk(ServerId j) const;
  double free_phi_p(ServerId j) const { return 1.0 - used_phi_p(j); }
  double free_phi_n(ServerId j) const { return 1.0 - used_phi_n(j); }
  double free_disk(ServerId j) const;

  /// Sum over hosted clients of psi*lambda_pred*alpha_p (offered processing
  /// work per unit time), which divided by Cp is the utilization that P1
  /// multiplies.
  double proc_load(ServerId j) const;
  double proc_utilization(ServerId j) const;

  /// x_j: a server is ON iff it hosts at least one placement or its
  /// background load keeps it on.
  bool active(ServerId j) const;

  /// Clients with psi > 0 on server j (unordered).
  const std::vector<ClientId>& clients_on(ServerId j) const;

  int num_active_servers() const;

  /// Insertion-candidate index: cluster k's servers ordered most-promising
  /// first for a fresh insertion — residual processing rate
  /// (free_phi_p * Cp) descending, then marginal power cost (P1 / Cp)
  /// ascending, then id DESCENDING (deterministic, and aligned with the
  /// grouped-knapsack DP whose tie resolution favors later-scanned rows;
  /// see the comment at the comparator). assign/clear dirty the touched
  /// clusters and the order is rebuilt lazily here, so churn costs nothing
  /// until the next probe. The order is advisory: Assign_Distribute uses
  /// it to pick a pruned top-K candidate set and certifies the result
  /// against a score bound (see alloc/assign_distribute.h), so staleness
  /// within a probe is harmless.
  const std::vector<ServerId>& insertion_candidates(ClusterId k) const;

  /// ResidualView-compatible prefix query (see ResidualView::ordered_prefix):
  /// the Allocation index always materializes the full order, so any prefix
  /// request returns the whole thing. Lets the pruned selection template in
  /// assign_distribute grow prefixes against either state type.
  const std::vector<ServerId>& ordered_prefix(ClusterId k,
                                              std::size_t /*n*/) const {
    return insertion_candidates(k);
  }

  /// Deep-copy snapshot/restore used by the local search to evaluate
  /// speculative moves (TurnOFF etc.) and roll back cheaply.
  Allocation clone() const { return *this; }

  /// Total profit (eq. 2), maintained incrementally: a mutation of client
  /// i only dirties i's revenue and the touched servers' costs, so after
  /// local moves this is O(changed entries) instead of O(N + J). The
  /// scratch-recomputing model::evaluate() is the independent oracle;
  /// tests assert they always agree.
  double cached_profit() const;

  /// True when no cache repairs are pending: every const accessor is then
  /// a pure read and the instance may be shared across threads as a frozen
  /// snapshot (see the class comment). Established by calling
  /// cached_profit() / model::profit() after the last mutation.
  bool profit_settled() const {
    return dirty_clients_.empty() && dirty_servers_.empty();
  }

 private:
  friend class ResidualView;
  friend class AllocState;

  struct ServerAgg {
    double phi_p = 0.0;
    double phi_n = 0.0;
    double disk = 0.0;
    double load_p = 0.0;
    std::vector<ClientId> clients;
  };

  void remove_footprint(ClientId i);
  void add_footprint(ClientId i);
  void mark_client_dirty(ClientId i);
  void mark_server_dirty(ServerId j);

  const Cloud* cloud_;
  IdVector<ClientId, ClusterId> cluster_of_;
  IdVector<ClientId, std::vector<Placement>> placements_;
  IdVector<ServerId, ServerAgg> server_;

  // Incremental-profit caches. `profit_total_` always equals the sum of
  // the *cached* values; repairing a dirty entry adjusts the total by the
  // delta, so the invariant survives partial repairs.
  mutable IdVector<ClientId, double> revenue_cache_;
  mutable IdVector<ServerId, double> cost_cache_;
  mutable std::vector<ClientId> dirty_clients_;
  mutable std::vector<ServerId> dirty_servers_;
  mutable IdVector<ClientId, bool> client_dirty_;
  mutable IdVector<ServerId, bool> server_dirty_;
  mutable double profit_total_ = 0.0;
  mutable std::size_t repairs_ = 0;  ///< since the last drift rebase

  // Lazy per-cluster candidate index (see insertion_candidates).
  mutable IdVector<ClusterId, std::vector<ServerId>> cand_order_;
  mutable IdVector<ClusterId, bool> cand_dirty_;
};

}  // namespace cloudalloc::model
