#include "model/alloc_state.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/check.h"
#include "model/evaluator.h"

namespace cloudalloc::model {

void AllocState::assign(ClientId i, ClusterId k, std::vector<Placement> ps) {
  touched_.clear();
  for (const Placement& p : ledger_.placements(i)) touched_.push_back(p.server);
  for (const Placement& p : ps) touched_.push_back(p.server);
  ledger_.assign(i, k, std::move(ps));
  for (ServerId j : touched_) view_.resync_server(ledger_, j);
}

void AllocState::clear(ClientId i) {
  touched_.clear();
  for (const Placement& p : ledger_.placements(i)) touched_.push_back(p.server);
  ledger_.clear(i);
  for (ServerId j : touched_) view_.resync_server(ledger_, j);
}

double AllocState::profit() { return model::profit(ledger_); }

AllocState::Checkpoint AllocState::checkpoint(double profit) const {
  Checkpoint ckpt;
  ckpt.cluster_of = ledger_.cluster_of_;
  ckpt.placements = ledger_.placements_;
  ckpt.profit = profit;
  return ckpt;
}

Allocation AllocState::materialize(const Checkpoint& ckpt) const {
  Allocation alloc(cloud());
  for (std::size_t ii = 0; ii < ckpt.placements.size(); ++ii) {
    if (ckpt.cluster_of[ii] == kNoCluster) continue;
    alloc.assign(static_cast<ClientId>(ii), ckpt.cluster_of[ii],
                 std::vector<Placement>(ckpt.placements[ii]));
  }
  return alloc;
}

bool AllocState::aggregates_consistent(double tol) const {
  const Cloud& cloud = ledger_.cloud();
  const auto num_servers = static_cast<std::size_t>(cloud.num_servers());
  std::vector<double> phi_p(num_servers, 0.0), phi_n(num_servers, 0.0),
      disk(num_servers, 0.0), load_p(num_servers, 0.0);
  std::vector<int> hosted(num_servers, 0);
  for (ClientId i = 0; i < cloud.num_clients(); ++i) {
    if (!ledger_.is_assigned(i)) continue;
    const Client& c = cloud.client(i);
    for (const Placement& p : ledger_.placements(i)) {
      const auto jj = static_cast<std::size_t>(p.server);
      phi_p[jj] += p.phi_p;
      phi_n[jj] += p.phi_n;
      disk[jj] += c.disk;
      load_p[jj] += p.psi * c.lambda_pred * c.alpha_p;
      ++hosted[jj];
    }
  }
  // Recomputed sums vs incrementally-maintained ledger aggregates: a
  // relative tolerance absorbs summation-order ulps (emptied servers are
  // reset to exactly 0.0 on both sides, so zero compares exactly).
  const auto close = [tol](double a, double b) {
    return std::abs(a - b) <=
           tol * std::max({1.0, std::abs(a), std::abs(b)});
  };
  for (std::size_t jj = 0; jj < num_servers; ++jj) {
    const Allocation::ServerAgg& agg = ledger_.server_[jj];
    if (static_cast<int>(agg.clients.size()) != hosted[jj]) return false;
    if (!close(agg.phi_p, phi_p[jj]) || !close(agg.phi_n, phi_n[jj]) ||
        !close(agg.disk, disk[jj]) || !close(agg.load_p, load_p[jj]))
      return false;
    // The view mirrors the ledger bit-for-bit — any difference means a
    // missed resync, which silently corrupts every subsequent probe.
    if (view_.used_p_[jj] != agg.phi_p || view_.used_n_[jj] != agg.phi_n ||
        view_.used_disk_[jj] != agg.disk ||
        view_.load_p_[jj] != agg.load_p ||
        view_.hosted_[jj] != static_cast<int>(agg.clients.size()))
      return false;
  }
  return true;
}

void AllocState::check_invariants() const {
  CHECK_MSG(aggregates_consistent(),
            "AllocState aggregates diverged from a from-scratch "
            "recomputation (or the view desynced from the ledger)");
}

void AllocState::corrupt_aggregate_for_test(ServerId j, double delta) {
  ledger_.server_[static_cast<std::size_t>(j)].phi_p += delta;
}

}  // namespace cloudalloc::model
