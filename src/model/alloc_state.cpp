#include "model/alloc_state.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/check.h"
#include "model/evaluator.h"

namespace cloudalloc::model {

void AllocState::assign(ClientId i, ClusterId k, std::vector<Placement> ps) {
  touched_.clear();
  for (const Placement& p : ledger_.placements(i)) touched_.push_back(p.server);
  for (const Placement& p : ps) touched_.push_back(p.server);
  ledger_.assign(i, k, std::move(ps));
  for (ServerId j : touched_) view_.resync_server(ledger_, j);
}

void AllocState::clear(ClientId i) {
  touched_.clear();
  for (const Placement& p : ledger_.placements(i)) touched_.push_back(p.server);
  ledger_.clear(i);
  for (ServerId j : touched_) view_.resync_server(ledger_, j);
}

double AllocState::profit() { return model::profit(ledger_); }

AllocState::Checkpoint AllocState::checkpoint(double profit) const {
  Checkpoint ckpt;
  ckpt.cluster_of = ledger_.cluster_of_.raw();
  ckpt.placements = ledger_.placements_.raw();
  ckpt.profit = profit;
  return ckpt;
}

Allocation AllocState::materialize(const Checkpoint& ckpt) const {
  Allocation alloc(cloud());
  for (std::size_t ii = 0; ii < ckpt.placements.size(); ++ii) {
    if (ckpt.cluster_of[ii] == kNoCluster) continue;
    alloc.assign(ClientId{static_cast<int>(ii)}, ckpt.cluster_of[ii],
                 std::vector<Placement>(ckpt.placements[ii]));
  }
  return alloc;
}

bool AllocState::aggregates_consistent(double tol) const {
  const Cloud& cloud = ledger_.cloud();
  const auto num_servers = static_cast<std::size_t>(cloud.num_servers());
  std::vector<double> phi_p(num_servers, 0.0), phi_n(num_servers, 0.0),
      disk(num_servers, 0.0), load_p(num_servers, 0.0);
  std::vector<int> hosted(num_servers, 0);
  for (ClientId i : cloud.client_ids()) {
    if (!ledger_.is_assigned(i)) continue;
    const Client& c = cloud.client(i);
    for (const Placement& p : ledger_.placements(i)) {
      const auto jj = p.server.index();
      phi_p[jj] += p.phi_p;
      phi_n[jj] += p.phi_n;
      disk[jj] += c.disk;
      load_p[jj] += p.psi * c.lambda_pred * c.alpha_p;
      ++hosted[jj];
    }
  }
  // Recomputed sums vs incrementally-maintained ledger aggregates: a
  // relative tolerance absorbs summation-order ulps (emptied servers are
  // reset to exactly 0.0 on both sides, so zero compares exactly).
  const auto close = [tol](double a, double b) {
    return std::abs(a - b) <=
           tol * std::max({1.0, std::abs(a), std::abs(b)});
  };
  for (ServerId j : cloud.server_ids()) {
    const auto jj = j.index();
    const Allocation::ServerAgg& agg = ledger_.server_[j];
    if (static_cast<int>(agg.clients.size()) != hosted[jj]) return false;
    if (!close(agg.phi_p, phi_p[jj]) || !close(agg.phi_n, phi_n[jj]) ||
        !close(agg.disk, disk[jj]) || !close(agg.load_p, load_p[jj]))
      return false;
    // The view mirrors the ledger bit-for-bit — any difference means a
    // missed resync, which silently corrupts every subsequent probe.
    if (view_.used_p_[j] != agg.phi_p || view_.used_n_[j] != agg.phi_n ||
        view_.used_disk_[j] != agg.disk || view_.load_p_[j] != agg.load_p ||
        view_.hosted_[j] != static_cast<int>(agg.clients.size()))
      return false;
  }
  return true;
}

void AllocState::check_invariants() const {
  CHECK_MSG(aggregates_consistent(),
            "AllocState aggregates diverged from a from-scratch "
            "recomputation (or the view desynced from the ledger)");
}

void AllocState::corrupt_aggregate_for_test(ServerId j, double delta) {
  ledger_.server_[j].phi_p += delta;
}

}  // namespace cloudalloc::model
