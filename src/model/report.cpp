#include "model/report.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <vector>

namespace cloudalloc::model {

std::string summary_line(const ProfitBreakdown& breakdown, int num_servers) {
  int unserved = 0;
  for (const auto& c : breakdown.clients)
    if (!c.assigned) ++unserved;
  std::ostringstream os;
  os << "profit " << Table::num(breakdown.profit, 2) << " (revenue "
     << Table::num(breakdown.revenue, 2) << " - cost "
     << Table::num(breakdown.cost, 2) << "), servers "
     << breakdown.active_servers << "/" << num_servers << " active, clients "
     << breakdown.clients.size() - static_cast<std::size_t>(unserved) << "/"
     << breakdown.clients.size() << " served";
  return os.str();
}

Table client_table(const ProfitBreakdown& breakdown,
                   const ReportOptions& options) {
  std::vector<const ClientOutcome*> rows;
  rows.reserve(breakdown.clients.size());
  for (const auto& c : breakdown.clients) rows.push_back(&c);
  std::sort(rows.begin(), rows.end(),
            [](const ClientOutcome* a, const ClientOutcome* b) {
              // Unserved first, then slowest first.
              if (a->assigned != b->assigned) return !a->assigned;
              return a->response_time > b->response_time;
            });
  if (options.max_clients > 0 &&
      rows.size() > static_cast<std::size_t>(options.max_clients))
    rows.resize(static_cast<std::size_t>(options.max_clients));

  Table table({"client", "response_time", "utility", "revenue"});
  for (const ClientOutcome* c : rows) {
    if (!c->assigned) {
      table.add_row({std::to_string(c->id.value()), "unserved", "0", "0"});
      continue;
    }
    table.add_row({std::to_string(c->id.value()),
                   std::isfinite(c->response_time)
                       ? Table::num(c->response_time, options.precision)
                       : "unstable",
                   Table::num(c->utility, options.precision),
                   Table::num(c->revenue, 2)});
  }
  return table;
}

Table server_table(const ProfitBreakdown& breakdown,
                   const ReportOptions& options) {
  Table table({"server", "utilization_p", "cost"});
  for (const auto& s : breakdown.servers) {
    if (!s.active) continue;
    table.add_row({std::to_string(s.id.value()),
                   Table::num(s.utilization_p, options.precision),
                   Table::num(s.cost, 2)});
  }
  return table;
}

void print_report(std::ostream& os, const ProfitBreakdown& breakdown,
                  int num_servers, const ReportOptions& options) {
  os << summary_line(breakdown, num_servers) << "\n\n";
  client_table(breakdown, options).print(os);
  if (options.include_servers) {
    os << "\n";
    server_table(breakdown, options).print(os);
  }
}

}  // namespace cloudalloc::model
