// Shared identifier types for the cloud model.
//
// Ids are dense indices into the owning Cloud's vectors (client i is
// cloud.clients()[i], and so on); signed so that -1 can mean "none".
#pragma once

namespace cloudalloc::model {

using ClientId = int;
using ServerId = int;
using ClusterId = int;
using ServerClassId = int;
using UtilityClassId = int;

inline constexpr ClientId kNoClient = -1;
inline constexpr ServerId kNoServer = -1;
inline constexpr ClusterId kNoCluster = -1;

}  // namespace cloudalloc::model
