// Shared identifier types for the cloud model.
//
// Ids are dense indices into the owning Cloud's vectors (client i is
// cloud.clients()[i.index()], and so on). Each family is a distinct
// Id<Tag> strong type (common/strong_id.h): constructing one from a raw
// index is explicit, mixing families does not compile, and a
// default-constructed id is the invalid sentinel kNone (-1).
#pragma once

#include "common/strong_id.h"

namespace cloudalloc::model {

struct ClientTag {};
struct ServerTag {};
struct ClusterTag {};
struct ServerClassTag {};
struct UtilityClassTag {};

using ClientId = Id<ClientTag>;
using ServerId = Id<ServerTag>;
using ClusterId = Id<ClusterTag>;
using ServerClassId = Id<ServerClassTag>;
using UtilityClassId = Id<UtilityClassTag>;

inline constexpr ClientId kNoClient = ClientId::kNone;
inline constexpr ServerId kNoServer = ServerId::kNone;
inline constexpr ClusterId kNoCluster = ClusterId::kNone;
inline constexpr ServerClassId kNoServerClass = ServerClassId::kNone;
inline constexpr UtilityClassId kNoUtilityClass = UtilityClassId::kNone;

// The ids must stay layout-identical to the ints they replaced: they are
// memcpy'd through snapshots and indexed in the hot SoA loops.
static_assert(sizeof(ClientId) == sizeof(int));
static_assert(alignof(ServerId) == alignof(int));

}  // namespace cloudalloc::model
