// Profit evaluation: the paper's objective (eq. 2)
//
//   profit = sum_i lambda_agreed(i) * U_{c(i)}(R(i))
//          - sum_j x(j) * (P0(j) + P1(j) * u_p(j))
//
// Unassigned clients earn zero revenue. Clients whose allocation is
// unstable (infinite response time) also earn zero — the allocator never
// produces such allocations, but speculative states during search may.
#pragma once

#include <vector>

#include "model/allocation.h"

namespace cloudalloc::model {

struct ClientOutcome {
  ClientId id{0};
  bool assigned = false;
  double response_time = 0.0;  ///< +inf when unassigned/unstable
  double utility = 0.0;        ///< price per unit of agreed rate
  double revenue = 0.0;        ///< lambda_agreed * utility
};

struct ServerOutcome {
  ServerId id{0};
  bool active = false;
  double utilization_p = 0.0;
  double cost = 0.0;  ///< P0 + P1 * utilization while active, else 0
};

struct ProfitBreakdown {
  double revenue = 0.0;
  double cost = 0.0;
  double profit = 0.0;
  int active_servers = 0;
  std::vector<ClientOutcome> clients;
  std::vector<ServerOutcome> servers;
};

/// Full per-entity breakdown (used by reports, examples, tests).
ProfitBreakdown evaluate(const Allocation& alloc);

/// Fast path: the scalar objective only.
double profit(const Allocation& alloc);

/// Revenue of a single client under the current allocation.
double client_revenue(const Allocation& alloc, ClientId i);

/// Operating cost of a single server under the current allocation.
double server_cost(const Allocation& alloc, ServerId j);

}  // namespace cloudalloc::model
