// Constraint checking for allocations, mirroring constraints (3)-(12) of
// the paper. The allocator guarantees feasibility by construction; this
// module provides the independent audit used by tests, the property
// suites, and the examples' final reports.
#pragma once

#include <string>
#include <vector>

#include "model/allocation.h"

namespace cloudalloc::model {

enum class ViolationKind {
  kShareOverflowP,    ///< sum of phi_p on a server exceeds 1      (eq. 4)
  kShareOverflowN,    ///< sum of phi_n on a server exceeds 1      (eq. 5)
  kDiskOverflow,      ///< disk packed on a server exceeds Cm      (eq. 8)
  kPsiNotOne,         ///< client's psi over its cluster not 1     (eq. 6)
  kCrossCluster,      ///< placement outside the assigned cluster  (eq. 6)
  kUnstableQueue,     ///< some slice has arrivals >= service rate (eq. 7)
  kNegativeVariable,  ///< psi/phi below 0                         (eq. 12)
};

struct Violation {
  ViolationKind kind;
  ClientId client = kNoClient;  ///< involved client, if any
  ServerId server = kNoServer;  ///< involved server, if any
  double magnitude = 0.0;       ///< how far past the bound
  std::string describe() const;
};

/// Audits the allocation against all model constraints; empty means
/// feasible. `tol` absorbs floating-point slack.
std::vector<Violation> check_feasibility(const Allocation& alloc,
                                         double tol = 1e-6);

/// Convenience for tests.
bool is_feasible(const Allocation& alloc, double tol = 1e-6);

}  // namespace cloudalloc::model
