// ResidualView: a flat SoA snapshot of the per-server residual state an
// insertion probe needs — free shares, free disk, offered processing load,
// and hosted-client counts — detached from the full Allocation.
//
// The view exists so the heuristic's hot loops (Assign_Distribute probing,
// reassignment move pricing) can speculate WITHOUT cloning an Allocation:
// copying a view is a handful of flat vector copies (no per-client
// placement vectors, no profit caches), and removing/re-adding one
// client's footprint is O(#placements) on plain arrays. The arithmetic
// mirrors Allocation's aggregate maintenance operation-for-operation
// (including the reset-to-zero guard when a server empties), so a view
// kept in sync with an Allocation reports bit-identical residuals.
//
// Exact rollback: add_client/remove_client optionally record the touched
// entries in an Undo; restore() writes the saved values back verbatim, so
// a speculate-then-restore cycle is bitwise lossless (a -= x; a += x; is
// not). The reassignment passes lean on this to probe hundreds of clients
// against one shared view copy without accumulating drift.
//
// Candidate index: each cluster carries a hierarchical (bucketed) residual
// index over its servers, ordered by the exact insertion-candidate
// comparator (rate = free_phi_p * cap_p DESC, marginal cost ASC, id DESC —
// the same keys as Allocation::insertion_candidates). Servers hash into
// rate buckets; a query materializes an exactly-ordered prefix by sorting
// only the buckets it actually consumes, and a mutation re-buckets only
// the touched servers — so maintaining and querying the top of the order
// stays sub-linear in the cluster's server count instead of re-sorting
// the whole cluster after every move. ordered_prefix() is the primary
// query; insertion_candidates() is the full-order special case.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "model/allocation.h"

namespace cloudalloc::model {

class ResidualView {
 public:
  /// Captures the allocation's current server aggregates and settles its
  /// per-cluster insertion-candidate orders (parallel phases snapshot an
  /// Allocation and then probe it concurrently; settling here keeps those
  /// reads pure). The view does not observe later mutations of `alloc`;
  /// callers keep it in sync via add_client/remove_client or rebuild it.
  explicit ResidualView(const Allocation& alloc);

  /// Copies the residual arrays but NOT the candidate index: the copy
  /// starts with an empty (lazily rebuilt) index. Scratch copies in the
  /// snapshot phases touch a handful of clusters each, and rebuilding
  /// those on demand is far cheaper than cloning every cluster's bucket
  /// structure — and a freshly built index produces the exact same order
  /// as an incrementally maintained one, so results cannot differ.
  ResidualView(const ResidualView& other);
  ResidualView& operator=(const ResidualView& other);
  ResidualView(ResidualView&&) = default;
  ResidualView& operator=(ResidualView&&) = default;

  const Cloud& cloud() const { return *cloud_; }

  // --- read API (mirrors the Allocation accessors the probes use) --------

  double free_phi_p(ServerId j) const {
    return 1.0 - (used_p_[j] + bg_p_[j]);
  }
  double free_phi_n(ServerId j) const {
    return 1.0 - (used_n_[j] + bg_n_[j]);
  }
  double free_disk(ServerId j) const {
    return cap_m_[j] - (used_disk_[j] + bg_disk_[j]);
  }
  double proc_load(ServerId j) const { return load_p_[j]; }
  bool active(ServerId j) const {
    return hosted_[j] > 0 || keeps_on_[j] != 0;
  }
  int hosted_clients(ServerId j) const { return hosted_[j]; }
  bool keeps_on(ServerId j) const { return keeps_on_[j] != 0; }

  /// The first min(n, cluster size) servers of cluster k in the exact
  /// insertion-candidate order (see the class comment), materialized from
  /// the bucketed index; the returned vector may be longer than n. Like
  /// the Allocation index this is a const-but-mutating lazy cache, so
  /// views must not be shared across threads while probing — copy one per
  /// worker instead. The order is advisory (pruning with an exact
  /// fallback); staleness mid-speculation costs prune quality, never
  /// correctness.
  const std::vector<ServerId>& ordered_prefix(ClusterId k,
                                              std::size_t n) const;

  /// Full candidate order of cluster k — ordered_prefix over the whole
  /// cluster.
  const std::vector<ServerId>& insertion_candidates(ClusterId k) const;

  /// Batched eq.-8 free-disk screen over cluster k's servers (SIMD lanes,
  /// common/simd.h): ok[idx] = free_disk(servers[idx]) + eps >= need for
  /// idx in cluster order, resizing `ok` to the cluster size. Returns
  /// false — leaving `ok` untouched — when the cluster's server ids are
  /// not one contiguous ascending range (the scenario generators build
  /// contiguous clusters; hand-built clouds may not), in which case the
  /// caller falls back to per-server free_disk() tests. The comparison is
  /// the scalar test's exact operation chain, so the mask never admits or
  /// drops a server the scalar filter would not.
  bool screen_free_disk(ClusterId k, double need, double eps,
                        std::vector<std::uint8_t>& ok) const;

  // --- speculative mutation with exact rollback ---------------------------

  /// Saved per-server state for bitwise-exact restore. Reusable across
  /// calls; each record call clears it first.
  struct Undo {
    struct Entry {
      ServerId server = kNoServer;
      double used_p = 0.0;
      double used_n = 0.0;
      double used_disk = 0.0;
      double load_p = 0.0;
      int hosted = 0;
    };
    std::vector<Entry> entries;
  };

  /// Removes client i's footprint (`ps` must be its current placements in
  /// this view). Mirrors Allocation::remove_footprint's arithmetic.
  void remove_client(ClientId i, const std::vector<Placement>& ps,
                     Undo* undo = nullptr);

  /// Adds client i's footprint. Mirrors Allocation::add_footprint.
  void add_client(ClientId i, const std::vector<Placement>& ps,
                  Undo* undo = nullptr);

  /// Writes the saved entries back verbatim (bitwise-exact rollback).
  void restore(const Undo& undo);

  /// Re-copies server j's aggregates from `alloc`, making the view bitwise
  /// equal to the allocation for that server. Callers that mirror an
  /// Allocation use this after a rollback on the allocation side: the
  /// allocation's remove/add round trip does not restore its aggregates to
  /// the last bit, so mirroring the ops would leave the view on the
  /// pre-rollback values instead of the allocation's actual (drifted) ones.
  void resync_server(const Allocation& alloc, ServerId j);

 private:
  friend class AllocState;

  /// Rate buckets per cluster. 16 keeps the dirty-rebucket bookkeeping in
  /// one machine word and the per-bucket sorts a few elements deep on the
  /// paper-sized clusters while still cutting large clusters' sorts ~16x.
  static constexpr int kNumBuckets = 16;

  /// Per-cluster bucketed candidate index. Buckets partition the servers
  /// by quantized rate key (monotone: a strictly larger rate never lands
  /// in a later bucket, and equal rates always share a bucket), so
  /// concatenating the buckets in order, each sorted by the exact
  /// comparator, reproduces the exact full order. `prefix` caches the
  /// materialized front; `dirty` holds servers whose rate changed since
  /// they were bucketed.
  struct ClusterIndex {
    bool built = false;
    std::uint32_t unsorted = 0;  ///< bit b: buckets[b] needs sorting
    std::array<std::vector<ServerId>, kNumBuckets> buckets;
    std::vector<ServerId> prefix;
    int prefix_buckets = 0;  ///< buckets already consumed into prefix
    std::vector<ServerId> dirty;
    double inv_scale = 0.0;  ///< kNumBuckets / max possible rate
  };

  void record(const std::vector<Placement>& ps, Undo* undo) const;
  void mark_server_dirty(ServerId j);
  int bucket_for(ServerId j, const ClusterIndex& ix) const;
  void build_index(ClusterId k) const;
  void flush_dirty(ClusterId k) const;

  const Cloud* cloud_;
  // Mutable residual state (client-only aggregates, background excluded —
  // exactly Allocation::ServerAgg's representation).
  IdVector<ServerId, double> used_p_, used_n_, used_disk_, load_p_;
  IdVector<ServerId, int> hosted_;
  // Immutable per-server constants, flattened for locality.
  IdVector<ServerId, double> bg_p_, bg_n_, bg_disk_, cap_m_;
  IdVector<ServerId, std::uint8_t> keeps_on_;
  // Immutable per-server sort-key constants (class capacity and marginal
  // cost) and per-cluster contiguous-range bases (first server id, or -1).
  IdVector<ServerId, double> cap_p_, marg_;
  IdVector<ClusterId, int> contig_base_;
  // Lazy hierarchical candidate index (see ordered_prefix).
  mutable IdVector<ClusterId, ClusterIndex> index_;
  mutable IdVector<ServerId, std::int8_t> bucket_of_;
  mutable IdVector<ServerId, std::uint8_t> dirty_flag_;
};

}  // namespace cloudalloc::model
