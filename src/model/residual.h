// ResidualView: a flat SoA snapshot of the per-server residual state an
// insertion probe needs — free shares, free disk, offered processing load,
// and hosted-client counts — detached from the full Allocation.
//
// The view exists so the heuristic's hot loops (Assign_Distribute probing,
// reassignment move pricing) can speculate WITHOUT cloning an Allocation:
// copying a view is a handful of flat vector copies (no per-client
// placement vectors, no profit caches), and removing/re-adding one
// client's footprint is O(#placements) on plain arrays. The arithmetic
// mirrors Allocation's aggregate maintenance operation-for-operation
// (including the reset-to-zero guard when a server empties), so a view
// kept in sync with an Allocation reports bit-identical residuals.
//
// Exact rollback: add_client/remove_client optionally record the touched
// entries in an Undo; restore() writes the saved values back verbatim, so
// a speculate-then-restore cycle is bitwise lossless (a -= x; a += x; is
// not). The reassignment passes lean on this to probe hundreds of clients
// against one shared view copy without accumulating drift.
#pragma once

#include <cstdint>
#include <vector>

#include "model/allocation.h"

namespace cloudalloc::model {

class ResidualView {
 public:
  /// Captures the allocation's current server aggregates and its
  /// per-cluster insertion-candidate orders (settling that index). The
  /// view does not observe later mutations of `alloc`; callers keep it in
  /// sync via add_client/remove_client or rebuild it.
  explicit ResidualView(const Allocation& alloc);

  const Cloud& cloud() const { return *cloud_; }

  // --- read API (mirrors the Allocation accessors the probes use) --------

  double free_phi_p(ServerId j) const {
    return 1.0 - (used_p_[j] + bg_p_[j]);
  }
  double free_phi_n(ServerId j) const {
    return 1.0 - (used_n_[j] + bg_n_[j]);
  }
  double free_disk(ServerId j) const {
    return cap_m_[j] - (used_disk_[j] + bg_disk_[j]);
  }
  double proc_load(ServerId j) const { return load_p_[j]; }
  bool active(ServerId j) const {
    return hosted_[j] > 0 || keeps_on_[j] != 0;
  }
  int hosted_clients(ServerId j) const { return hosted_[j]; }
  bool keeps_on(ServerId j) const { return keeps_on_[j] != 0; }

  /// Candidate order seeded from the source allocation at construction
  /// and lazily re-sorted (same comparator as
  /// Allocation::insertion_candidates, over this view's residuals) after
  /// mutations dirty a cluster. Like the Allocation index this is a
  /// const-but-mutating lazy cache, so views must not be shared across
  /// threads while probing — copy one per worker instead. The order is
  /// advisory (pruning with an exact fallback); staleness mid-speculation
  /// costs prune quality, never correctness.
  const std::vector<ServerId>& insertion_candidates(ClusterId k) const;

  // --- speculative mutation with exact rollback ---------------------------

  /// Saved per-server state for bitwise-exact restore. Reusable across
  /// calls; each record call clears it first.
  struct Undo {
    struct Entry {
      ServerId server = kNoServer;
      double used_p = 0.0;
      double used_n = 0.0;
      double used_disk = 0.0;
      double load_p = 0.0;
      int hosted = 0;
    };
    std::vector<Entry> entries;
  };

  /// Removes client i's footprint (`ps` must be its current placements in
  /// this view). Mirrors Allocation::remove_footprint's arithmetic.
  void remove_client(ClientId i, const std::vector<Placement>& ps,
                     Undo* undo = nullptr);

  /// Adds client i's footprint. Mirrors Allocation::add_footprint.
  void add_client(ClientId i, const std::vector<Placement>& ps,
                  Undo* undo = nullptr);

  /// Writes the saved entries back verbatim (bitwise-exact rollback).
  void restore(const Undo& undo);

  /// Re-copies server j's aggregates from `alloc`, making the view bitwise
  /// equal to the allocation for that server. Callers that mirror an
  /// Allocation use this after a rollback on the allocation side: the
  /// allocation's remove/add round trip does not restore its aggregates to
  /// the last bit, so mirroring the ops would leave the view on the
  /// pre-rollback values instead of the allocation's actual (drifted) ones.
  void resync_server(const Allocation& alloc, ServerId j);

 private:
  friend class AllocState;

  void record(const std::vector<Placement>& ps, Undo* undo) const;
  void mark_cand_dirty(ServerId j) {
    cand_dirty_[cloud_->server(j).cluster] = 1;
  }

  const Cloud* cloud_;
  // Mutable residual state (client-only aggregates, background excluded —
  // exactly Allocation::ServerAgg's representation).
  IdVector<ServerId, double> used_p_, used_n_, used_disk_, load_p_;
  IdVector<ServerId, int> hosted_;
  // Immutable per-server constants, flattened for locality.
  IdVector<ServerId, double> bg_p_, bg_n_, bg_disk_, cap_m_;
  IdVector<ServerId, std::uint8_t> keeps_on_;
  // Lazy per-cluster candidate index (see insertion_candidates).
  mutable IdVector<ClusterId, std::vector<ServerId>> cand_order_;
  mutable IdVector<ClusterId, std::uint8_t> cand_dirty_;
};

}  // namespace cloudalloc::model
