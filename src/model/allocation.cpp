#include "model/allocation.h"

#include <algorithm>
#include <limits>
#include <set>

#include "common/check.h"
#include "common/mathutil.h"
#include "model/evaluator.h"

namespace cloudalloc::model {

Allocation::Allocation(const Cloud& cloud)
    : cloud_(&cloud),
      cluster_of_(static_cast<std::size_t>(cloud.num_clients()), kNoCluster),
      placements_(static_cast<std::size_t>(cloud.num_clients())),
      server_(static_cast<std::size_t>(cloud.num_servers())),
      revenue_cache_(static_cast<std::size_t>(cloud.num_clients()), 0.0),
      cost_cache_(static_cast<std::size_t>(cloud.num_servers()), 0.0),
      client_dirty_(static_cast<std::size_t>(cloud.num_clients()), false),
      server_dirty_(static_cast<std::size_t>(cloud.num_servers()), false),
      cand_order_(static_cast<std::size_t>(cloud.num_clusters())),
      cand_dirty_(static_cast<std::size_t>(cloud.num_clusters()), true) {
  // Empty clients earn 0 (cached correctly already); background-pinned
  // servers cost even when empty, so start those dirty.
  for (ServerId j : cloud.server_ids())
    if (cloud.server(j).background.keeps_on) mark_server_dirty(j);
}

bool Allocation::is_assigned(ClientId i) const {
  return cluster_of(i) != kNoCluster;
}

ClusterId Allocation::cluster_of(ClientId i) const {
  CHECK(i.valid() && i.value() < cloud_->num_clients());
  return cluster_of_[i];
}

const std::vector<Placement>& Allocation::placements(ClientId i) const {
  CHECK(i.valid() && i.value() < cloud_->num_clients());
  return placements_[i];
}

void Allocation::assign(ClientId i, ClusterId k, std::vector<Placement> ps) {
  CHECK(i.valid() && i.value() < cloud_->num_clients());
  CHECK(k.valid() && k.value() < cloud_->num_clusters());
  CHECK_MSG(!ps.empty(), "assign needs at least one placement");
  double psi_sum = 0.0;
  std::set<ServerId> seen;
  for (const Placement& p : ps) {
    CHECK(p.server.valid() && p.server.value() < cloud_->num_servers());
    CHECK_MSG(cloud_->server(p.server).cluster == k,
              "placement must stay in the assigned cluster");
    CHECK_MSG(seen.insert(p.server).second, "one placement per server");
    CHECK_MSG(p.psi > 0.0 && p.psi <= 1.0 + kEps, "psi in (0,1]");
    CHECK(p.phi_p >= 0.0 && p.phi_n >= 0.0);
    psi_sum += p.psi;
  }
  CHECK_MSG(near(psi_sum, 1.0, 1e-6), "psi must sum to 1 over the cluster");

  remove_footprint(i);
  cluster_of_[i] = k;
  placements_[i] = std::move(ps);
  add_footprint(i);
}

void Allocation::clear(ClientId i) {
  CHECK(i.valid() && i.value() < cloud_->num_clients());
  remove_footprint(i);
  cluster_of_[i] = kNoCluster;
  placements_[i].clear();
}

void Allocation::mark_client_dirty(ClientId i) {
  if (client_dirty_[i]) return;
  client_dirty_[i] = true;
  dirty_clients_.push_back(i);
}

void Allocation::mark_server_dirty(ServerId j) {
  cand_dirty_[cloud_->server(j).cluster] = true;
  if (server_dirty_[j]) return;
  server_dirty_[j] = true;
  dirty_servers_.push_back(j);
}

void Allocation::remove_footprint(ClientId i) {
  const Client& c = cloud_->client(i);
  mark_client_dirty(i);
  for (const Placement& p : placements_[i]) {
    mark_server_dirty(p.server);
  }
  for (const Placement& p : placements_[i]) {
    ServerAgg& agg = server_[p.server];
    agg.phi_p -= p.phi_p;
    agg.phi_n -= p.phi_n;
    agg.disk -= c.disk;
    agg.load_p -= p.psi * c.lambda_pred * c.alpha_p;
    auto it = std::find(agg.clients.begin(), agg.clients.end(), i);
    CHECK(it != agg.clients.end());
    *it = agg.clients.back();
    agg.clients.pop_back();
    // Guard drift from repeated add/remove cycles.
    if (agg.clients.empty()) {
      agg.phi_p = agg.phi_n = agg.disk = agg.load_p = 0.0;
    }
  }
}

void Allocation::add_footprint(ClientId i) {
  const Client& c = cloud_->client(i);
  mark_client_dirty(i);
  for (const Placement& p : placements_[i]) {
    mark_server_dirty(p.server);
    ServerAgg& agg = server_[p.server];
    agg.phi_p += p.phi_p;
    agg.phi_n += p.phi_n;
    agg.disk += c.disk;
    agg.load_p += p.psi * c.lambda_pred * c.alpha_p;
    agg.clients.push_back(i);
  }
}

double Allocation::response_time(ClientId i) const {
  if (!is_assigned(i)) return std::numeric_limits<double>::infinity();
  const Client& c = cloud_->client(i);
  std::vector<queueing::ServerSlice> slices;
  slices.reserve(placements(i).size());
  for (const Placement& p : placements(i)) {
    const ServerClass& sc = cloud_->server_class_of(p.server);
    slices.push_back(queueing::ServerSlice{
        p.psi, units::Share{p.phi_p}, units::Share{p.phi_n},
        units::WorkRate{sc.cap_p}, units::WorkRate{sc.cap_n}});
  }
  return queueing::client_response_time(slices, units::ArrivalRate{c.lambda_pred},
                                        units::Work{c.alpha_p},
                                        units::Work{c.alpha_n})
      .value();
}

double Allocation::used_phi_p(ServerId j) const {
  CHECK(j.valid() && j.value() < cloud_->num_servers());
  return server_[j].phi_p +
         cloud_->server(j).background.phi_p;
}

double Allocation::used_phi_n(ServerId j) const {
  CHECK(j.valid() && j.value() < cloud_->num_servers());
  return server_[j].phi_n +
         cloud_->server(j).background.phi_n;
}

double Allocation::used_disk(ServerId j) const {
  CHECK(j.valid() && j.value() < cloud_->num_servers());
  return server_[j].disk +
         cloud_->server(j).background.disk;
}

double Allocation::free_disk(ServerId j) const {
  return cloud_->server_class_of(j).cap_m - used_disk(j);
}

double Allocation::proc_load(ServerId j) const {
  CHECK(j.valid() && j.value() < cloud_->num_servers());
  return server_[j].load_p;
}

double Allocation::proc_utilization(ServerId j) const {
  const double cap = cloud_->server_class_of(j).cap_p;
  return clamp(proc_load(j) / cap, 0.0, 1.0);
}

bool Allocation::active(ServerId j) const {
  CHECK(j.valid() && j.value() < cloud_->num_servers());
  return !server_[j].clients.empty() ||
         cloud_->server(j).background.keeps_on;
}

const std::vector<ClientId>& Allocation::clients_on(ServerId j) const {
  CHECK(j.valid() && j.value() < cloud_->num_servers());
  return server_[j].clients;
}

double Allocation::cached_profit() const {
  for (ClientId i : dirty_clients_) {
    const double fresh = client_revenue(*this, i);
    profit_total_ += fresh - revenue_cache_[i];
    revenue_cache_[i] = fresh;
    client_dirty_[i] = false;
  }
  repairs_ += dirty_clients_.size();
  dirty_clients_.clear();
  for (ServerId j : dirty_servers_) {
    const double fresh = server_cost(*this, j);
    profit_total_ -= fresh - cost_cache_[j];
    cost_cache_[j] = fresh;
    server_dirty_[j] = false;
  }
  repairs_ += dirty_servers_.size();
  dirty_servers_.clear();
  // The running total accumulates one rounding error per repair; rebase
  // from the (exact) caches periodically so drift cannot build up into
  // the local search's improvement epsilons.
  if (repairs_ >= 4096) {
    repairs_ = 0;
    double total = 0.0;
    for (double r : revenue_cache_) total += r;
    for (double cost : cost_cache_) total -= cost;
    profit_total_ = total;
  }
  return profit_total_;
}

const std::vector<ServerId>& Allocation::insertion_candidates(
    ClusterId k) const {
  CHECK(k.valid() && k.value() < cloud_->num_clusters());
  if (cand_dirty_[k]) {
    auto& order = cand_order_[k];
    const auto& servers = cloud_->cluster(k).servers;
    // Decorate-sort-undecorate: the keys are computed once per server
    // (the marginal-cost key divides), not once per comparison — the
    // rebuild runs on every probe that touched the cluster, so comparator
    // cost is the whole cost. The comparisons match the direct form
    // bitwise: identical expressions, identical ordering.
    struct CandKey {
      double rate;
      double marg;
      ServerId id;
    };
    thread_local std::vector<CandKey> keys;
    keys.clear();
    keys.reserve(servers.size());
    for (ServerId j : servers) {
      const ServerClass& sc = cloud_->server_class_of(j);
      keys.push_back(
          CandKey{free_phi_p(j) * sc.cap_p, sc.marginal_cost(), j});
    }
    std::sort(keys.begin(), keys.end(), [](const CandKey& a,
                                           const CandKey& b) {
      if (a.rate != b.rate) return a.rate > b.rate;
      if (a.marg != b.marg) return a.marg < b.marg;
      // Id DESCENDING: among servers whose score rows are bitwise twins,
      // the grouped-knapsack DP's strictly-greater update lets the
      // later-scanned row (= higher id, clusters list servers ascending)
      // steal tied quanta, so the exact traceback lands on the highest
      // ids. Ranking twins high-id-first makes the pruned top-K prefix
      // coincide with the servers the exact solve would pick, which is
      // what lets certified() treat excluded lower-id twins as redundant.
      return a.id > b.id;
    });
    order.clear();
    for (const CandKey& key : keys) order.push_back(key.id);
    cand_dirty_[k] = false;
  }
  return cand_order_[k];
}

int Allocation::num_active_servers() const {
  int n = 0;
  for (ServerId j : cloud_->server_ids())
    if (active(j)) ++n;
  return n;
}

}  // namespace cloudalloc::model
