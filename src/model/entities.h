// Plain data records describing the cloud: server classes, servers,
// clusters, and clients. These carry no invariants beyond what Cloud
// validates at construction, so they are open structs (Core Guidelines
// C.2: use struct if members can vary independently).
#pragma once

#include <string>
#include <vector>

#include "model/types.h"

namespace cloudalloc::model {

/// A hardware class: capacities in normalized units and the operation
/// cost model  cost = P0 + P1 * processing_utilization  while ON.
struct ServerClass {
  ServerClassId id{0};
  std::string name;
  double cap_p = 1.0;        ///< processing capacity Cp
  double cap_n = 1.0;        ///< communication capacity Cn
  double cap_m = 1.0;        ///< local disk capacity Cm
  double cost_fixed = 0.0;   ///< P0, paid while the server is ON
  double cost_per_util = 0.0;///< P1, times processing utilization in [0,1]

  /// Energy price of one unit of delivered processing rate (P1 / Cp) —
  /// the cost tie-break key of the insertion-candidate index.
  double marginal_cost() const { return cost_per_util / cap_p; }
};

/// Resources on a server already committed before this decision epoch
/// (e.g. clients carried over, or non-cloud workloads): they shrink the
/// capacity available to the allocator. `keeps_on` marks the server as
/// active regardless of new placements, so its fixed cost is sunk.
struct BackgroundLoad {
  double phi_p = 0.0;   ///< pre-committed processing share in [0,1]
  double phi_n = 0.0;   ///< pre-committed communication share in [0,1]
  double disk = 0.0;    ///< pre-committed disk (absolute units)
  bool keeps_on = false;
};

/// One physical machine, owned by exactly one cluster.
struct Server {
  ServerId id{0};
  ClusterId cluster = kNoCluster;
  ServerClassId server_class{0};
  BackgroundLoad background;
};

/// A cluster is a named set of servers behind one request dispatcher.
struct Cluster {
  ClusterId id{0};
  std::string name;
  std::vector<ServerId> servers;
};

/// An application (client) with its SLA contract and demand profile.
struct Client {
  ClientId id{0};
  UtilityClassId utility_class{0};
  double lambda_pred = 1.0;    ///< predicted arrival rate, drives allocation
  double lambda_agreed = 1.0;  ///< contractual arrival rate, drives revenue
  double alpha_p = 1.0;        ///< mean processing work per request
  double alpha_n = 1.0;        ///< mean communication work per request
  double disk = 0.0;           ///< constant disk requirement m_i per server hosting it
};

}  // namespace cloudalloc::model
