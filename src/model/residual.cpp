#include "model/residual.h"

#include <algorithm>

#include "common/check.h"

namespace cloudalloc::model {

ResidualView::ResidualView(const Allocation& alloc) : cloud_(alloc.cloud_) {
  const auto num_servers = static_cast<std::size_t>(cloud_->num_servers());
  used_p_.resize(num_servers);
  used_n_.resize(num_servers);
  used_disk_.resize(num_servers);
  load_p_.resize(num_servers);
  hosted_.resize(num_servers);
  bg_p_.resize(num_servers);
  bg_n_.resize(num_servers);
  bg_disk_.resize(num_servers);
  cap_m_.resize(num_servers);
  keeps_on_.resize(num_servers);
  for (std::size_t jj = 0; jj < num_servers; ++jj) {
    const auto j = static_cast<ServerId>(jj);
    const Allocation::ServerAgg& agg = alloc.server_[jj];
    used_p_[jj] = agg.phi_p;
    used_n_[jj] = agg.phi_n;
    used_disk_[jj] = agg.disk;
    load_p_[jj] = agg.load_p;
    hosted_[jj] = static_cast<int>(agg.clients.size());
    const BackgroundLoad& bg = cloud_->server(j).background;
    bg_p_[jj] = bg.phi_p;
    bg_n_[jj] = bg.phi_n;
    bg_disk_[jj] = bg.disk;
    cap_m_[jj] = cloud_->server_class_of(j).cap_m;
    keeps_on_[jj] = bg.keeps_on ? 1 : 0;
  }
  cand_order_.reserve(static_cast<std::size_t>(cloud_->num_clusters()));
  for (ClusterId k = 0; k < cloud_->num_clusters(); ++k)
    cand_order_.push_back(alloc.insertion_candidates(k));
  cand_dirty_.assign(static_cast<std::size_t>(cloud_->num_clusters()), 0);
}

const std::vector<ServerId>& ResidualView::insertion_candidates(
    ClusterId k) const {
  CHECK(k >= 0 && k < cloud_->num_clusters());
  const auto kk = static_cast<std::size_t>(k);
  if (cand_dirty_[kk]) {
    // Bitwise the same keys and ordering as Allocation's rebuild; a view
    // in sync with an allocation therefore rebuilds the same order. Same
    // decorate-sort-undecorate as there: keys once per server, not once
    // per comparison.
    auto& order = cand_order_[kk];
    struct CandKey {
      double rate;
      double marg;
      ServerId id;
    };
    thread_local std::vector<CandKey> keys;
    keys.clear();
    keys.reserve(order.size());
    for (ServerId j : cloud_->cluster(k).servers) {
      const ServerClass& sc = cloud_->server_class_of(j);
      keys.push_back(
          CandKey{free_phi_p(j) * sc.cap_p, sc.marginal_cost(), j});
    }
    std::sort(keys.begin(), keys.end(), [](const CandKey& a,
                                           const CandKey& b) {
      if (a.rate != b.rate) return a.rate > b.rate;
      if (a.marg != b.marg) return a.marg < b.marg;
      return a.id > b.id;  // id DESC — see the Allocation comparator
    });
    order.clear();
    for (const CandKey& key : keys) order.push_back(key.id);
    cand_dirty_[kk] = 0;
  }
  return cand_order_[kk];
}

void ResidualView::record(const std::vector<Placement>& ps,
                          Undo* undo) const {
  if (undo == nullptr) return;
  undo->entries.clear();
  undo->entries.reserve(ps.size());
  for (const Placement& p : ps) {
    const auto jj = static_cast<std::size_t>(p.server);
    undo->entries.push_back(Undo::Entry{p.server, used_p_[jj], used_n_[jj],
                                        used_disk_[jj], load_p_[jj],
                                        hosted_[jj]});
  }
}

void ResidualView::remove_client(ClientId i, const std::vector<Placement>& ps,
                                 Undo* undo) {
  const Client& c = cloud_->client(i);
  record(ps, undo);
  for (const Placement& p : ps) {
    const auto jj = static_cast<std::size_t>(p.server);
    CHECK(hosted_[jj] > 0);
    used_p_[jj] -= p.phi_p;
    used_n_[jj] -= p.phi_n;
    used_disk_[jj] -= c.disk;
    load_p_[jj] -= p.psi * c.lambda_pred * c.alpha_p;
    --hosted_[jj];
    // Mirror Allocation::remove_footprint's drift guard exactly.
    if (hosted_[jj] == 0) {
      used_p_[jj] = used_n_[jj] = used_disk_[jj] = load_p_[jj] = 0.0;
    }
    mark_cand_dirty(p.server);
  }
}

void ResidualView::add_client(ClientId i, const std::vector<Placement>& ps,
                              Undo* undo) {
  const Client& c = cloud_->client(i);
  record(ps, undo);
  for (const Placement& p : ps) {
    const auto jj = static_cast<std::size_t>(p.server);
    used_p_[jj] += p.phi_p;
    used_n_[jj] += p.phi_n;
    used_disk_[jj] += c.disk;
    load_p_[jj] += p.psi * c.lambda_pred * c.alpha_p;
    ++hosted_[jj];
    mark_cand_dirty(p.server);
  }
}

void ResidualView::resync_server(const Allocation& alloc, ServerId j) {
  const auto jj = static_cast<std::size_t>(j);
  const Allocation::ServerAgg& agg = alloc.server_[jj];
  used_p_[jj] = agg.phi_p;
  used_n_[jj] = agg.phi_n;
  used_disk_[jj] = agg.disk;
  load_p_[jj] = agg.load_p;
  hosted_[jj] = static_cast<int>(agg.clients.size());
  mark_cand_dirty(j);
}

void ResidualView::restore(const Undo& undo) {
  for (const Undo::Entry& e : undo.entries) {
    const auto jj = static_cast<std::size_t>(e.server);
    used_p_[jj] = e.used_p;
    used_n_[jj] = e.used_n;
    used_disk_[jj] = e.used_disk;
    load_p_[jj] = e.load_p;
    hosted_[jj] = e.hosted;
    mark_cand_dirty(e.server);
  }
}

}  // namespace cloudalloc::model
