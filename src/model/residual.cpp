#include "model/residual.h"

#include <algorithm>

#include "common/check.h"

namespace cloudalloc::model {

ResidualView::ResidualView(const Allocation& alloc) : cloud_(alloc.cloud_) {
  const auto num_servers = static_cast<std::size_t>(cloud_->num_servers());
  used_p_.resize(num_servers);
  used_n_.resize(num_servers);
  used_disk_.resize(num_servers);
  load_p_.resize(num_servers);
  hosted_.resize(num_servers);
  bg_p_.resize(num_servers);
  bg_n_.resize(num_servers);
  bg_disk_.resize(num_servers);
  cap_m_.resize(num_servers);
  keeps_on_.resize(num_servers);
  for (ServerId j : cloud_->server_ids()) {
    const Allocation::ServerAgg& agg = alloc.server_[j];
    used_p_[j] = agg.phi_p;
    used_n_[j] = agg.phi_n;
    used_disk_[j] = agg.disk;
    load_p_[j] = agg.load_p;
    hosted_[j] = static_cast<int>(agg.clients.size());
    const BackgroundLoad& bg = cloud_->server(j).background;
    bg_p_[j] = bg.phi_p;
    bg_n_[j] = bg.phi_n;
    bg_disk_[j] = bg.disk;
    cap_m_[j] = cloud_->server_class_of(j).cap_m;
    keeps_on_[j] = bg.keeps_on ? 1 : 0;
  }
  cand_order_.raw().reserve(static_cast<std::size_t>(cloud_->num_clusters()));
  for (ClusterId k : cloud_->cluster_ids())
    cand_order_.push_back(alloc.insertion_candidates(k));
  cand_dirty_.assign(static_cast<std::size_t>(cloud_->num_clusters()), 0);
}

const std::vector<ServerId>& ResidualView::insertion_candidates(
    ClusterId k) const {
  CHECK(k.valid() && k.value() < cloud_->num_clusters());
  if (cand_dirty_[k]) {
    // Bitwise the same keys and ordering as Allocation's rebuild; a view
    // in sync with an allocation therefore rebuilds the same order. Same
    // decorate-sort-undecorate as there: keys once per server, not once
    // per comparison.
    auto& order = cand_order_[k];
    struct CandKey {
      double rate;
      double marg;
      ServerId id;
    };
    thread_local std::vector<CandKey> keys;
    keys.clear();
    keys.reserve(order.size());
    for (ServerId j : cloud_->cluster(k).servers) {
      const ServerClass& sc = cloud_->server_class_of(j);
      keys.push_back(
          CandKey{free_phi_p(j) * sc.cap_p, sc.marginal_cost(), j});
    }
    std::sort(keys.begin(), keys.end(), [](const CandKey& a,
                                           const CandKey& b) {
      if (a.rate != b.rate) return a.rate > b.rate;
      if (a.marg != b.marg) return a.marg < b.marg;
      return a.id > b.id;  // id DESC — see the Allocation comparator
    });
    order.clear();
    for (const CandKey& key : keys) order.push_back(key.id);
    cand_dirty_[k] = 0;
  }
  return cand_order_[k];
}

void ResidualView::record(const std::vector<Placement>& ps,
                          Undo* undo) const {
  if (undo == nullptr) return;
  undo->entries.clear();
  undo->entries.reserve(ps.size());
  for (const Placement& p : ps) {
        undo->entries.push_back(Undo::Entry{p.server, used_p_[p.server], used_n_[p.server],
                                        used_disk_[p.server], load_p_[p.server],
                                        hosted_[p.server]});
  }
}

void ResidualView::remove_client(ClientId i, const std::vector<Placement>& ps,
                                 Undo* undo) {
  const Client& c = cloud_->client(i);
  record(ps, undo);
  for (const Placement& p : ps) {
        CHECK(hosted_[p.server] > 0);
    used_p_[p.server] -= p.phi_p;
    used_n_[p.server] -= p.phi_n;
    used_disk_[p.server] -= c.disk;
    load_p_[p.server] -= p.psi * c.lambda_pred * c.alpha_p;
    --hosted_[p.server];
    // Mirror Allocation::remove_footprint's drift guard exactly.
    if (hosted_[p.server] == 0) {
      used_p_[p.server] = used_n_[p.server] = used_disk_[p.server] = load_p_[p.server] = 0.0;
    }
    mark_cand_dirty(p.server);
  }
}

void ResidualView::add_client(ClientId i, const std::vector<Placement>& ps,
                              Undo* undo) {
  const Client& c = cloud_->client(i);
  record(ps, undo);
  for (const Placement& p : ps) {
        used_p_[p.server] += p.phi_p;
    used_n_[p.server] += p.phi_n;
    used_disk_[p.server] += c.disk;
    load_p_[p.server] += p.psi * c.lambda_pred * c.alpha_p;
    ++hosted_[p.server];
    mark_cand_dirty(p.server);
  }
}

void ResidualView::resync_server(const Allocation& alloc, ServerId j) {
  const Allocation::ServerAgg& agg = alloc.server_[j];
  used_p_[j] = agg.phi_p;
  used_n_[j] = agg.phi_n;
  used_disk_[j] = agg.disk;
  load_p_[j] = agg.load_p;
  hosted_[j] = static_cast<int>(agg.clients.size());
  mark_cand_dirty(j);
}

void ResidualView::restore(const Undo& undo) {
  for (const Undo::Entry& e : undo.entries) {
        used_p_[e.server] = e.used_p;
    used_n_[e.server] = e.used_n;
    used_disk_[e.server] = e.used_disk;
    load_p_[e.server] = e.load_p;
    hosted_[e.server] = e.hosted;
    mark_cand_dirty(e.server);
  }
}

}  // namespace cloudalloc::model
