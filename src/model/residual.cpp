#include "model/residual.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "common/simd.h"

namespace cloudalloc::model {

namespace {

// --- free-disk screen kernel (see ResidualView::screen_free_disk) --------
//
// free[i] = cap_m[i] - (used_disk[i] + bg_disk[i]) — the exact expression
// chain of the scalar free_disk() accessor, elementwise over a contiguous
// server range. Subtraction/addition only (no multiply), so there is no
// FMA-contraction hazard at any lane width; bit-identity needs no special
// flags here, only identical operation order, which the template body
// guarantees for the vector main loop and the scalar tail alike.

template <int W>
[[gnu::always_inline]] inline void free_disk_w(const double* cap,
                                               const double* used,
                                               const double* bg,
                                               std::size_t n, double* out) {
  std::size_t i = 0;
  if constexpr (W > 1) {
    for (; i + W <= n; i += W) {
      const auto c = simd::load<W>(cap + i);
      const auto u = simd::load<W>(used + i);
      const auto b = simd::load<W>(bg + i);
      simd::store<W>(out + i, c - (u + b));
    }
  }
  for (; i < n; ++i) out[i] = cap[i] - (used[i] + bg[i]);
}

void free_disk_scalar(const double* cap, const double* used, const double* bg,
                      std::size_t n, double* out) {
  free_disk_w<1>(cap, used, bg, n, out);
}

#if CLOUDALLOC_SIMD_X86
__attribute__((target("avx2"))) void free_disk_avx2(const double* cap,
                                                    const double* used,
                                                    const double* bg,
                                                    std::size_t n,
                                                    double* out) {
  free_disk_w<4>(cap, used, bg, n, out);
}
__attribute__((target("avx512f"))) void free_disk_avx512(const double* cap,
                                                         const double* used,
                                                         const double* bg,
                                                         std::size_t n,
                                                         double* out) {
  free_disk_w<8>(cap, used, bg, n, out);
}
#endif

void free_disk_batch(const double* cap, const double* used, const double* bg,
                     std::size_t n, double* out) {
#if CLOUDALLOC_SIMD_X86
  switch (simd::active_width()) {
    case 8:
      free_disk_avx512(cap, used, bg, n, out);
      return;
    case 4:
      free_disk_avx2(cap, used, bg, n, out);
      return;
    default:
      break;
  }
#endif
  free_disk_scalar(cap, used, bg, n, out);
}

}  // namespace

ResidualView::ResidualView(const Allocation& alloc) : cloud_(alloc.cloud_) {
  const auto num_servers = static_cast<std::size_t>(cloud_->num_servers());
  used_p_.resize(num_servers);
  used_n_.resize(num_servers);
  used_disk_.resize(num_servers);
  load_p_.resize(num_servers);
  hosted_.resize(num_servers);
  bg_p_.resize(num_servers);
  bg_n_.resize(num_servers);
  bg_disk_.resize(num_servers);
  cap_m_.resize(num_servers);
  keeps_on_.resize(num_servers);
  cap_p_.resize(num_servers);
  marg_.resize(num_servers);
  for (ServerId j : cloud_->server_ids()) {
    const Allocation::ServerAgg& agg = alloc.server_[j];
    used_p_[j] = agg.phi_p;
    used_n_[j] = agg.phi_n;
    used_disk_[j] = agg.disk;
    load_p_[j] = agg.load_p;
    hosted_[j] = static_cast<int>(agg.clients.size());
    const BackgroundLoad& bg = cloud_->server(j).background;
    bg_p_[j] = bg.phi_p;
    bg_n_[j] = bg.phi_n;
    bg_disk_[j] = bg.disk;
    cap_m_[j] = cloud_->server_class_of(j).cap_m;
    keeps_on_[j] = bg.keeps_on ? 1 : 0;
    const ServerClass& sc = cloud_->server_class_of(j);
    cap_p_[j] = sc.cap_p;
    marg_[j] = sc.marginal_cost();
  }
  const auto num_clusters = static_cast<std::size_t>(cloud_->num_clusters());
  contig_base_.resize(num_clusters);
  for (ClusterId k : cloud_->cluster_ids()) {
    const auto& servers = cloud_->cluster(k).servers;
    int base = servers.empty() ? -1 : static_cast<int>(servers.front().value());
    for (std::size_t idx = 0; idx < servers.size() && base >= 0; ++idx) {
      if (servers[idx].value() !=
          static_cast<ServerId::value_type>(base) +
              static_cast<ServerId::value_type>(idx)) {
        base = -1;
      }
    }
    contig_base_[k] = base;
  }
  index_.resize(num_clusters);
  bucket_of_.assign(num_servers, 0);
  dirty_flag_.assign(num_servers, 0);
  // Settle the allocation's own candidate index so later concurrent reads
  // of the frozen `alloc` are pure (the view builds its own index lazily
  // from its — currently bitwise-equal — residual state).
  for (ClusterId k : cloud_->cluster_ids()) {
    (void)alloc.insertion_candidates(k);
  }
}

ResidualView::ResidualView(const ResidualView& other)
    : cloud_(other.cloud_),
      used_p_(other.used_p_),
      used_n_(other.used_n_),
      used_disk_(other.used_disk_),
      load_p_(other.load_p_),
      hosted_(other.hosted_),
      bg_p_(other.bg_p_),
      bg_n_(other.bg_n_),
      bg_disk_(other.bg_disk_),
      cap_m_(other.cap_m_),
      keeps_on_(other.keeps_on_),
      cap_p_(other.cap_p_),
      marg_(other.marg_),
      contig_base_(other.contig_base_),
      index_(other.index_.size()),
      bucket_of_(other.bucket_of_.size(), 0),
      dirty_flag_(other.dirty_flag_.size(), 0) {}

ResidualView& ResidualView::operator=(const ResidualView& other) {
  if (this == &other) return *this;
  cloud_ = other.cloud_;
  used_p_ = other.used_p_;
  used_n_ = other.used_n_;
  used_disk_ = other.used_disk_;
  load_p_ = other.load_p_;
  hosted_ = other.hosted_;
  bg_p_ = other.bg_p_;
  bg_n_ = other.bg_n_;
  bg_disk_ = other.bg_disk_;
  cap_m_ = other.cap_m_;
  keeps_on_ = other.keeps_on_;
  cap_p_ = other.cap_p_;
  marg_ = other.marg_;
  contig_base_ = other.contig_base_;
  // Drop, don't copy, the index: rebuilt lazily (see the header). Reset in
  // place rather than assign() so a reused scratch view keeps its bucket
  // vector capacity across refreshes — build_index then allocates nothing.
  index_.resize(other.index_.size());
  for (ClusterIndex& ix : index_) {
    ix.built = false;
    ix.unsorted = 0;
    for (auto& bucket : ix.buckets) bucket.clear();
    ix.prefix.clear();
    ix.prefix_buckets = 0;
    ix.dirty.clear();
    ix.inv_scale = 0.0;
  }
  bucket_of_.assign(other.bucket_of_.size(), 0);
  dirty_flag_.assign(other.dirty_flag_.size(), 0);
  return *this;
}

int ResidualView::bucket_for(ServerId j, const ClusterIndex& ix) const {
  const double t = (free_phi_p(j) * cap_p_[j]) * ix.inv_scale;
  // Truncate-and-clamp quantization. Monotone in the rate (a larger rate
  // never quantizes lower), so bucket order respects rate order and equal
  // rates always share a bucket — the exactness precondition.
  int q = 0;
  if (t >= static_cast<double>(kNumBuckets - 1)) {
    q = kNumBuckets - 1;
  } else if (t > 0.0) {
    q = static_cast<int>(t);
  }
  return kNumBuckets - 1 - q;  // bucket 0 holds the largest rates
}

void ResidualView::build_index(ClusterId k) const {
  ClusterIndex& ix = index_[k];
  const auto& servers = cloud_->cluster(k).servers;
  double max_rate = 0.0;
  for (ServerId j : servers) max_rate = std::max(max_rate, cap_p_[j]);
  // free_phi_p <= 1, so cap_p bounds every possible rate: the scale is a
  // per-cluster constant and never needs recomputing as shares move.
  ix.inv_scale =
      max_rate > 0.0 ? static_cast<double>(kNumBuckets) / max_rate : 0.0;
  for (auto& bucket : ix.buckets) bucket.clear();
  for (ServerId j : servers) {
    const int b = bucket_for(j, ix);
    bucket_of_[j] = static_cast<std::int8_t>(b);
    dirty_flag_[j] = 0;
    ix.buckets[static_cast<std::size_t>(b)].push_back(j);
  }
  ix.unsorted = (1u << kNumBuckets) - 1u;
  ix.prefix.clear();
  ix.prefix_buckets = 0;
  ix.dirty.clear();
  ix.built = true;
}

void ResidualView::flush_dirty(ClusterId k) const {
  ClusterIndex& ix = index_[k];
  if (ix.dirty.empty()) return;
  int lowest = kNumBuckets;
  for (ServerId j : ix.dirty) {
    dirty_flag_[j] = 0;
    const int ob = bucket_of_[j];
    const int nb = bucket_for(j, ix);
    if (nb != ob) {
      auto& old_bucket = ix.buckets[static_cast<std::size_t>(ob)];
      // Swap-pop: pre-sort bucket contents are order-free, and the bucket
      // is marked unsorted below.
      auto it = std::find(old_bucket.begin(), old_bucket.end(), j);
      CHECK(it != old_bucket.end());
      *it = old_bucket.back();
      old_bucket.pop_back();
      ix.buckets[static_cast<std::size_t>(nb)].push_back(j);
      bucket_of_[j] = static_cast<std::int8_t>(nb);
      ix.unsorted |= (1u << ob) | (1u << nb);
      lowest = std::min(lowest, std::min(ob, nb));
    } else {
      ix.unsorted |= 1u << ob;
      lowest = std::min(lowest, ob);
    }
  }
  ix.dirty.clear();
  if (lowest < ix.prefix_buckets) {
    ix.prefix.clear();
    ix.prefix_buckets = 0;
  }
}

const std::vector<ServerId>& ResidualView::ordered_prefix(ClusterId k,
                                                          std::size_t n) const {
  CHECK(k.valid() && k.value() < cloud_->num_clusters());
  ClusterIndex& ix = index_[k];
  if (!ix.built) {
    build_index(k);
  } else {
    flush_dirty(k);
  }
  const auto& servers = cloud_->cluster(k).servers;
  const std::size_t target = std::min(n, servers.size());
  while (ix.prefix.size() < target && ix.prefix_buckets < kNumBuckets) {
    const int b = ix.prefix_buckets;
    auto& bucket = ix.buckets[static_cast<std::size_t>(b)];
    if ((ix.unsorted >> b) & 1u) {
      if (bucket.size() > 1) {
        // Bitwise the same keys and ordering as Allocation's full rebuild;
        // concatenating buckets sorted this way reproduces the exact full
        // order (see ClusterIndex). Decorate-sort as there: keys once per
        // server, not once per comparison.
        struct CandKey {
          double rate;
          double marg;
          ServerId id;
        };
        thread_local std::vector<CandKey> keys;
        keys.clear();
        keys.reserve(bucket.size());
        for (ServerId j : bucket) {
          keys.push_back(CandKey{free_phi_p(j) * cap_p_[j], marg_[j], j});
        }
        std::sort(keys.begin(), keys.end(),
                  [](const CandKey& a, const CandKey& b2) {
                    if (a.rate != b2.rate) return a.rate > b2.rate;
                    if (a.marg != b2.marg) return a.marg < b2.marg;
                    return a.id > b2.id;  // id DESC — see Allocation
                  });
        for (std::size_t idx = 0; idx < bucket.size(); ++idx) {
          bucket[idx] = keys[idx].id;
        }
      }
      ix.unsorted &= ~(1u << b);
    }
    ix.prefix.insert(ix.prefix.end(), bucket.begin(), bucket.end());
    ++ix.prefix_buckets;
  }
  return ix.prefix;
}

const std::vector<ServerId>& ResidualView::insertion_candidates(
    ClusterId k) const {
  return ordered_prefix(k, cloud_->cluster(k).servers.size());
}

bool ResidualView::screen_free_disk(ClusterId k, double need, double eps,
                                    std::vector<std::uint8_t>& ok) const {
  const int base = contig_base_[k];
  if (base < 0) return false;
  const std::size_t n = cloud_->cluster(k).servers.size();
  ok.resize(n);
  const auto b = static_cast<std::size_t>(base);
  thread_local std::vector<double> free_buf;
  if (free_buf.size() < n) free_buf.resize(n);
  free_disk_batch(cap_m_.data() + b, used_disk_.data() + b,
                  bg_disk_.data() + b, n, free_buf.data());
  // Negated form of the scalar reject test (free + eps < need), the exact
  // comparison candidate_ok performs.
  for (std::size_t idx = 0; idx < n; ++idx) {
    ok[idx] = (free_buf[idx] + eps < need) ? 0 : 1;
  }
  return true;
}

void ResidualView::mark_server_dirty(ServerId j) {
  const ClusterId k = cloud_->server(j).cluster;
  ClusterIndex& ix = index_[k];
  if (!ix.built) return;  // nothing cached; the lazy build sees fresh state
  if (!dirty_flag_[j]) {
    dirty_flag_[j] = 1;
    ix.dirty.push_back(j);
  }
}

void ResidualView::record(const std::vector<Placement>& ps,
                          Undo* undo) const {
  if (undo == nullptr) return;
  undo->entries.clear();
  undo->entries.reserve(ps.size());
  for (const Placement& p : ps) {
    undo->entries.push_back(Undo::Entry{p.server, used_p_[p.server],
                                        used_n_[p.server],
                                        used_disk_[p.server],
                                        load_p_[p.server], hosted_[p.server]});
  }
}

void ResidualView::remove_client(ClientId i, const std::vector<Placement>& ps,
                                 Undo* undo) {
  const Client& c = cloud_->client(i);
  record(ps, undo);
  for (const Placement& p : ps) {
    CHECK(hosted_[p.server] > 0);
    used_p_[p.server] -= p.phi_p;
    used_n_[p.server] -= p.phi_n;
    used_disk_[p.server] -= c.disk;
    load_p_[p.server] -= p.psi * c.lambda_pred * c.alpha_p;
    --hosted_[p.server];
    // Mirror Allocation::remove_footprint's drift guard exactly.
    if (hosted_[p.server] == 0) {
      used_p_[p.server] = used_n_[p.server] = used_disk_[p.server] =
          load_p_[p.server] = 0.0;
    }
    mark_server_dirty(p.server);
  }
}

void ResidualView::add_client(ClientId i, const std::vector<Placement>& ps,
                              Undo* undo) {
  const Client& c = cloud_->client(i);
  record(ps, undo);
  for (const Placement& p : ps) {
    used_p_[p.server] += p.phi_p;
    used_n_[p.server] += p.phi_n;
    used_disk_[p.server] += c.disk;
    load_p_[p.server] += p.psi * c.lambda_pred * c.alpha_p;
    ++hosted_[p.server];
    mark_server_dirty(p.server);
  }
}

void ResidualView::resync_server(const Allocation& alloc, ServerId j) {
  const Allocation::ServerAgg& agg = alloc.server_[j];
  used_p_[j] = agg.phi_p;
  used_n_[j] = agg.phi_n;
  used_disk_[j] = agg.disk;
  load_p_[j] = agg.load_p;
  hosted_[j] = static_cast<int>(agg.clients.size());
  mark_server_dirty(j);
}

void ResidualView::restore(const Undo& undo) {
  for (const Undo::Entry& e : undo.entries) {
    used_p_[e.server] = e.used_p;
    used_n_[e.server] = e.used_n;
    used_disk_[e.server] = e.used_disk;
    load_p_[e.server] = e.load_p;
    hosted_[e.server] = e.hosted;
    mark_server_dirty(e.server);
  }
}

}  // namespace cloudalloc::model
