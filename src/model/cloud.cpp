#include "model/cloud.h"

#include <cmath>
#include <set>

#include "common/check.h"

namespace cloudalloc::model {

Cloud::Cloud(std::vector<ServerClass> server_classes,
             std::vector<Server> servers, std::vector<Cluster> clusters,
             std::vector<UtilityClass> utility_classes,
             std::vector<Client> clients)
    : server_classes_(std::move(server_classes)),
      servers_(std::move(servers)),
      clusters_(std::move(clusters)),
      utility_classes_(std::move(utility_classes)),
      clients_(std::move(clients)) {
  for (std::size_t s = 0; s < server_classes_.size(); ++s) {
    const ServerClass& sc = server_classes_[s];
    CHECK_MSG(sc.id == ServerClassId{static_cast<int>(s)}, "dense server-class ids");
    CHECK(sc.cap_p > 0.0);
    CHECK(sc.cap_n > 0.0);
    CHECK(sc.cap_m >= 0.0);
    CHECK(sc.cost_fixed >= 0.0);
    CHECK(sc.cost_per_util >= 0.0);
  }
  for (std::size_t u = 0; u < utility_classes_.size(); ++u) {
    CHECK_MSG(utility_classes_[u].id == UtilityClassId{static_cast<int>(u)},
              "dense utility-class ids");
    CHECK_MSG(utility_classes_[u].fn != nullptr, "utility class needs a fn");
  }
  std::set<ServerId> seen_servers;
  for (std::size_t k = 0; k < clusters_.size(); ++k) {
    const Cluster& cl = clusters_[k];
    CHECK_MSG(cl.id == ClusterId{static_cast<int>(k)}, "dense cluster ids");
    for (ServerId j : cl.servers) {
      CHECK(j.valid() && j.value() < num_servers());
      CHECK_MSG(seen_servers.insert(j).second,
                "a server belongs to exactly one cluster");
      CHECK_MSG(servers_[j.index()].cluster == cl.id,
                "server.cluster must match owning cluster");
    }
  }
  for (std::size_t j = 0; j < servers_.size(); ++j) {
    const Server& sv = servers_[j];
    CHECK_MSG(sv.id == ServerId{static_cast<int>(j)}, "dense server ids");
    CHECK(sv.server_class.valid() &&
          sv.server_class.index() < server_classes_.size());
    CHECK_MSG(seen_servers.count(sv.id) == 1,
              "every server must be listed in its cluster");
    CHECK(sv.background.phi_p >= 0.0 && sv.background.phi_p <= 1.0);
    CHECK(sv.background.phi_n >= 0.0 && sv.background.phi_n <= 1.0);
    CHECK(sv.background.disk >= 0.0);
  }
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    const Client& c = clients_[i];
    CHECK_MSG(c.id == ClientId{static_cast<int>(i)}, "dense client ids");
    CHECK(c.utility_class.valid() &&
          c.utility_class.index() < utility_classes_.size());
    CHECK(c.lambda_pred > 0.0);
    CHECK(c.lambda_agreed > 0.0);
    CHECK(c.alpha_p > 0.0);
    CHECK(c.alpha_n > 0.0);
    CHECK(c.disk >= 0.0);
  }
  for (const Server& sv : servers_) {
    const ServerClass& sc =
        server_classes_[sv.server_class.index()];
    total_cap_p_ += sc.cap_p;
    total_cap_n_ += sc.cap_n;
  }
  for (const Client& c : clients_) {
    total_demand_p_ += c.lambda_pred * c.alpha_p;
    total_demand_n_ += c.lambda_pred * c.alpha_n;
  }
}

void Cloud::set_lambda_pred(ClientId i, double lambda) {
  CHECK(i.valid() && i.value() < num_clients());
  CHECK_MSG(std::isfinite(lambda) && lambda > 0.0,
            "predicted rates must be finite and positive");
  Client& c = clients_[i.index()];
  total_demand_p_ += (lambda - c.lambda_pred) * c.alpha_p;
  total_demand_n_ += (lambda - c.lambda_pred) * c.alpha_n;
  c.lambda_pred = lambda;
}

const Client& Cloud::client(ClientId i) const {
  CHECK(i.valid() && i.value() < num_clients());
  return clients_[i.index()];
}

const Server& Cloud::server(ServerId j) const {
  CHECK(j.valid() && j.value() < num_servers());
  return servers_[j.index()];
}

const Cluster& Cloud::cluster(ClusterId k) const {
  CHECK(k.valid() && k.value() < num_clusters());
  return clusters_[k.index()];
}

const ServerClass& Cloud::server_class_of(ServerId j) const {
  return server_classes_[server(j).server_class.index()];
}

const UtilityFunction& Cloud::utility_of(ClientId i) const {
  return *utility_classes_[client(i).utility_class.index()].fn;
}

}  // namespace cloudalloc::model
