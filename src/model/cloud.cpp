#include "model/cloud.h"

#include <set>

#include "common/check.h"

namespace cloudalloc::model {

Cloud::Cloud(std::vector<ServerClass> server_classes,
             std::vector<Server> servers, std::vector<Cluster> clusters,
             std::vector<UtilityClass> utility_classes,
             std::vector<Client> clients)
    : server_classes_(std::move(server_classes)),
      servers_(std::move(servers)),
      clusters_(std::move(clusters)),
      utility_classes_(std::move(utility_classes)),
      clients_(std::move(clients)) {
  for (std::size_t s = 0; s < server_classes_.size(); ++s) {
    const ServerClass& sc = server_classes_[s];
    CHECK_MSG(sc.id == static_cast<ServerClassId>(s), "dense server-class ids");
    CHECK(sc.cap_p > 0.0);
    CHECK(sc.cap_n > 0.0);
    CHECK(sc.cap_m >= 0.0);
    CHECK(sc.cost_fixed >= 0.0);
    CHECK(sc.cost_per_util >= 0.0);
  }
  for (std::size_t u = 0; u < utility_classes_.size(); ++u) {
    CHECK_MSG(utility_classes_[u].id == static_cast<UtilityClassId>(u),
              "dense utility-class ids");
    CHECK_MSG(utility_classes_[u].fn != nullptr, "utility class needs a fn");
  }
  std::set<ServerId> seen_servers;
  for (std::size_t k = 0; k < clusters_.size(); ++k) {
    const Cluster& cl = clusters_[k];
    CHECK_MSG(cl.id == static_cast<ClusterId>(k), "dense cluster ids");
    for (ServerId j : cl.servers) {
      CHECK(j >= 0 && j < num_servers());
      CHECK_MSG(seen_servers.insert(j).second,
                "a server belongs to exactly one cluster");
      CHECK_MSG(servers_[static_cast<std::size_t>(j)].cluster == cl.id,
                "server.cluster must match owning cluster");
    }
  }
  for (std::size_t j = 0; j < servers_.size(); ++j) {
    const Server& sv = servers_[j];
    CHECK_MSG(sv.id == static_cast<ServerId>(j), "dense server ids");
    CHECK(sv.server_class >= 0 &&
          sv.server_class < static_cast<ServerClassId>(server_classes_.size()));
    CHECK_MSG(seen_servers.count(sv.id) == 1,
              "every server must be listed in its cluster");
    CHECK(sv.background.phi_p >= 0.0 && sv.background.phi_p <= 1.0);
    CHECK(sv.background.phi_n >= 0.0 && sv.background.phi_n <= 1.0);
    CHECK(sv.background.disk >= 0.0);
  }
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    const Client& c = clients_[i];
    CHECK_MSG(c.id == static_cast<ClientId>(i), "dense client ids");
    CHECK(c.utility_class >= 0 &&
          c.utility_class <
              static_cast<UtilityClassId>(utility_classes_.size()));
    CHECK(c.lambda_pred > 0.0);
    CHECK(c.lambda_agreed > 0.0);
    CHECK(c.alpha_p > 0.0);
    CHECK(c.alpha_n > 0.0);
    CHECK(c.disk >= 0.0);
  }
  for (const Server& sv : servers_) {
    const ServerClass& sc =
        server_classes_[static_cast<std::size_t>(sv.server_class)];
    total_cap_p_ += sc.cap_p;
    total_cap_n_ += sc.cap_n;
  }
  for (const Client& c : clients_) {
    total_demand_p_ += c.lambda_pred * c.alpha_p;
    total_demand_n_ += c.lambda_pred * c.alpha_n;
  }
}

const Client& Cloud::client(ClientId i) const {
  CHECK(i >= 0 && i < num_clients());
  return clients_[static_cast<std::size_t>(i)];
}

const Server& Cloud::server(ServerId j) const {
  CHECK(j >= 0 && j < num_servers());
  return servers_[static_cast<std::size_t>(j)];
}

const Cluster& Cloud::cluster(ClusterId k) const {
  CHECK(k >= 0 && k < num_clusters());
  return clusters_[static_cast<std::size_t>(k)];
}

const ServerClass& Cloud::server_class_of(ServerId j) const {
  return server_classes_[static_cast<std::size_t>(server(j).server_class)];
}

const UtilityFunction& Cloud::utility_of(ClientId i) const {
  return *utility_classes_[static_cast<std::size_t>(client(i).utility_class)]
              .fn;
}

}  // namespace cloudalloc::model
