// Human-readable reports over evaluation results: the shared pretty-
// printing used by examples and the CLI tool, kept in the library so that
// downstream users get the same tables without rebuilding them.
#pragma once

#include <iosfwd>
#include <string>

#include "common/table.h"
#include "model/evaluator.h"

namespace cloudalloc::model {

struct ReportOptions {
  /// Print at most this many client rows (worst response times first);
  /// <= 0 prints all.
  int max_clients = 0;
  /// Include the per-server table (active servers only).
  bool include_servers = false;
  int precision = 3;
};

/// One-line executive summary: profit, revenue, cost, fleet usage.
std::string summary_line(const ProfitBreakdown& breakdown, int num_servers);

/// Client table: id, cluster-of omitted (not in the breakdown), response
/// time, utility, revenue; unserved clients marked. Sorted worst-first.
Table client_table(const ProfitBreakdown& breakdown,
                   const ReportOptions& options = {});

/// Active-server table: id, utilization, cost.
Table server_table(const ProfitBreakdown& breakdown,
                   const ReportOptions& options = {});

/// Prints summary + client table (+ server table when configured).
void print_report(std::ostream& os, const ProfitBreakdown& breakdown,
                  int num_servers, const ReportOptions& options = {});

}  // namespace cloudalloc::model
