#include "model/utility.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/mathutil.h"

namespace cloudalloc::model {

LinearUtility::LinearUtility(double u0, double s) : u0_(u0), s_(s) {
  CHECK(u0 >= 0.0);
  CHECK(s >= 0.0);
}

double LinearUtility::value(double r) const {
  CHECK(r >= 0.0);
  return clamp(u0_ - s_ * r, 0.0, u0_);
}

double LinearUtility::slope(double r) const {
  CHECK(r >= 0.0);
  if (s_ == 0.0) return 0.0;
  return r <= zero_crossing() ? s_ : 0.0;
}

double LinearUtility::zero_crossing() const {
  if (s_ == 0.0) return std::numeric_limits<double>::infinity();
  return u0_ / s_;
}

std::unique_ptr<UtilityFunction> LinearUtility::clone() const {
  return std::make_unique<LinearUtility>(*this);
}

StepUtility::StepUtility(std::vector<double> thresholds,
                         std::vector<double> values)
    : thresholds_(std::move(thresholds)), values_(std::move(values)) {
  CHECK_MSG(!thresholds_.empty(), "StepUtility needs at least one step");
  CHECK(thresholds_.size() == values_.size());
  for (std::size_t b = 0; b < thresholds_.size(); ++b) {
    CHECK(thresholds_[b] > 0.0);
    CHECK(values_[b] > 0.0);
    if (b > 0) {
      CHECK_MSG(thresholds_[b] > thresholds_[b - 1],
                "thresholds must increase");
      CHECK_MSG(values_[b] < values_[b - 1], "values must decrease");
    }
  }
}

double StepUtility::value(double r) const {
  CHECK(r >= 0.0);
  for (std::size_t b = 0; b < thresholds_.size(); ++b)
    if (r <= thresholds_[b]) return values_[b];
  return 0.0;
}

double StepUtility::slope(double r) const {
  CHECK(r >= 0.0);
  if (r > zero_crossing()) return 0.0;
  return max_value() / zero_crossing();
}

double StepUtility::max_value() const { return values_.front(); }

double StepUtility::zero_crossing() const { return thresholds_.back(); }

std::unique_ptr<UtilityFunction> StepUtility::clone() const {
  return std::make_unique<StepUtility>(*this);
}

TailLatencyUtility::TailLatencyUtility(
    std::shared_ptr<const UtilityFunction> inner, double percentile)
    : inner_(std::move(inner)),
      percentile_(percentile),
      scale_(-std::log(1.0 - percentile)) {
  CHECK_MSG(inner_ != nullptr, "TailLatencyUtility needs an inner utility");
  CHECK(percentile > 0.0 && percentile < 1.0);
}

double TailLatencyUtility::value(double r) const {
  CHECK(r >= 0.0);
  return inner_->value(r * scale_);
}

double TailLatencyUtility::slope(double r) const {
  CHECK(r >= 0.0);
  // d/dr inner(r * scale) = scale * inner'(r * scale).
  return scale_ * inner_->slope(r * scale_);
}

double TailLatencyUtility::max_value() const { return inner_->max_value(); }

double TailLatencyUtility::zero_crossing() const {
  return inner_->zero_crossing() / scale_;
}

std::unique_ptr<UtilityFunction> TailLatencyUtility::clone() const {
  return std::make_unique<TailLatencyUtility>(inner_, percentile_);
}

}  // namespace cloudalloc::model
