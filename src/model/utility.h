// SLA utility (price) functions: non-increasing functions of a client's
// mean response time, as defined by the client's utility class.
//
// The paper's derivations rely on a linear form u0 - s*R (clipped to stay
// non-negative), which LinearUtility provides. StepUtility implements the
// discrete "staircase" SLAs mentioned for related formulations; the
// optimizer handles it through its secant slope.
#pragma once

#include <memory>
#include <vector>

#include "model/types.h"

namespace cloudalloc::model {

/// Interface of a non-increasing, non-negative price of response time.
class UtilityFunction {
 public:
  virtual ~UtilityFunction() = default;

  /// Price paid per unit of agreed request rate at mean response time `r`.
  /// Must be non-increasing in r and >= 0.
  virtual double value(double r) const = 0;

  /// Magnitude of the (sub)gradient at `r` — the "utility slope" the
  /// heuristic uses to linearize the objective. Non-negative.
  virtual double slope(double r) const = 0;

  /// Price at r -> 0+ (the most a client can ever pay).
  virtual double max_value() const = 0;

  /// Largest response time with a strictly positive price; the allocator
  /// treats clients past this point as earning nothing.
  virtual double zero_crossing() const = 0;

  virtual std::unique_ptr<UtilityFunction> clone() const = 0;
};

/// U(r) = clamp(u0 - s*r, 0, u0).
class LinearUtility final : public UtilityFunction {
 public:
  /// Requires u0 >= 0 and s >= 0.
  LinearUtility(double u0, double s);

  double value(double r) const override;
  double slope(double r) const override;
  double max_value() const override { return u0_; }
  double zero_crossing() const override;
  std::unique_ptr<UtilityFunction> clone() const override;

  double u0() const { return u0_; }
  double s() const { return s_; }

 private:
  double u0_;
  double s_;
};

/// Staircase SLA: value(r) = values[b] for the first threshold r <=
/// thresholds[b]; 0 past the last threshold. Thresholds strictly
/// increasing, values strictly decreasing and positive.
class StepUtility final : public UtilityFunction {
 public:
  StepUtility(std::vector<double> thresholds, std::vector<double> values);

  double value(double r) const override;
  /// Secant slope from (0, max_value) to (zero_crossing, 0) — a usable
  /// linearization for the heuristic's interior optimizations.
  double slope(double r) const override;
  double max_value() const override;
  double zero_crossing() const override;
  std::unique_ptr<UtilityFunction> clone() const override;

  const std::vector<double>& thresholds() const { return thresholds_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> thresholds_;
  std::vector<double> values_;
};

/// Prices a tail percentile of the response time instead of the mean —
/// how real SLAs are written ("p95 under 300 ms"). In the model every
/// single-slice sojourn is exponential, so the p-quantile is exactly
/// -ln(1-p) times the mean (see queueing::mm1_response_quantile); this
/// class wraps an inner mean-based utility and evaluates it at that
/// scaled mean. For split clients (hypoexponential sojourns) the scaling
/// overestimates the tail, so the pricing is conservative for the
/// provider; the simulator's measured percentiles quantify the slack.
class TailLatencyUtility final : public UtilityFunction {
 public:
  /// Requires an inner utility and a percentile in (0, 1).
  TailLatencyUtility(std::shared_ptr<const UtilityFunction> inner,
                     double percentile);

  double value(double r) const override;
  double slope(double r) const override;
  double max_value() const override;
  double zero_crossing() const override;
  std::unique_ptr<UtilityFunction> clone() const override;

  double percentile() const { return percentile_; }
  double scale() const { return scale_; }  ///< -ln(1 - percentile)
  const UtilityFunction& inner() const { return *inner_; }
  std::shared_ptr<const UtilityFunction> inner_ptr() const { return inner_; }

 private:
  std::shared_ptr<const UtilityFunction> inner_;
  double percentile_;
  double scale_;
};

/// A utility class shared by many clients (5 classes in the paper's setup).
struct UtilityClass {
  UtilityClassId id{0};
  std::shared_ptr<const UtilityFunction> fn;
};

}  // namespace cloudalloc::model
