#include "model/serialize.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace cloudalloc::model {
namespace {

Json utility_to_json(const UtilityFunction& fn) {
  if (const auto* linear = dynamic_cast<const LinearUtility*>(&fn)) {
    JsonObject o;
    o.emplace("kind", "linear");
    o.emplace("u0", linear->u0());
    o.emplace("s", linear->s());
    return Json(std::move(o));
  }
  if (const auto* tail = dynamic_cast<const TailLatencyUtility*>(&fn)) {
    JsonObject o;
    o.emplace("kind", "tail");
    o.emplace("percentile", tail->percentile());
    o.emplace("inner", utility_to_json(tail->inner()));
    return Json(std::move(o));
  }
  const auto* step = dynamic_cast<const StepUtility*>(&fn);
  CHECK_MSG(step != nullptr, "unknown utility kind for serialization");
  JsonObject o;
  o.emplace("kind", "step");
  JsonArray thresholds, values;
  for (double t : step->thresholds()) thresholds.emplace_back(t);
  for (double v : step->values()) values.emplace_back(v);
  o.emplace("thresholds", std::move(thresholds));
  o.emplace("values", std::move(values));
  return Json(std::move(o));
}

/// Structural reader over untrusted documents: every accessor degrades to
/// a recorded error instead of a CHECK, so corrupted files reject cleanly.
class Reader {
 public:
  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  void fail(const std::string& message) {
    if (ok_) {
      ok_ = false;
      error_ = message;
    }
  }

  double num(const Json& node, const char* key) {
    const Json* v = node.find(key);
    if (v == nullptr || !v->is_number()) {
      fail(std::string("missing/invalid number: ") + key);
      return 0.0;
    }
    return v->as_number();
  }

  int integer(const Json& node, const char* key) {
    const double d = num(node, key);
    if (ok_ && d != static_cast<double>(static_cast<long long>(d)))
      fail(std::string("not an integer: ") + key);
    return static_cast<int>(d);
  }

  std::string str(const Json& node, const char* key) {
    const Json* v = node.find(key);
    if (v == nullptr || !v->is_string()) {
      fail(std::string("missing/invalid string: ") + key);
      return {};
    }
    return v->as_string();
  }

  bool boolean(const Json& node, const char* key) {
    const Json* v = node.find(key);
    if (v == nullptr || !v->is_bool()) {
      fail(std::string("missing/invalid bool: ") + key);
      return false;
    }
    return v->as_bool();
  }

  const JsonArray& array(const Json& node, const char* key) {
    static const JsonArray kEmpty;
    const Json* v = node.find(key);
    if (v == nullptr || !v->is_array()) {
      fail(std::string("missing/invalid array: ") + key);
      return kEmpty;
    }
    return v->as_array();
  }

 private:
  bool ok_ = true;
  std::string error_;
};

std::shared_ptr<const UtilityFunction> utility_from_json(const Json& doc,
                                                         Reader& reader) {
  const std::string kind = reader.str(doc, "kind");
  if (!reader.ok()) return nullptr;
  if (kind == "linear") {
    const double u0 = reader.num(doc, "u0");
    const double s = reader.num(doc, "s");
    if (!reader.ok()) return nullptr;
    if (u0 < 0.0 || s < 0.0) {
      reader.fail("linear utility parameters out of domain");
      return nullptr;
    }
    return std::make_shared<LinearUtility>(u0, s);
  }
  if (kind == "tail") {
    const double percentile = reader.num(doc, "percentile");
    const Json* inner = doc.find("inner");
    if (!reader.ok() || inner == nullptr || percentile <= 0.0 ||
        percentile >= 1.0) {
      reader.fail("tail utility parameters out of domain");
      return nullptr;
    }
    auto inner_fn = utility_from_json(*inner, reader);
    if (!reader.ok() || inner_fn == nullptr) return nullptr;
    return std::make_shared<TailLatencyUtility>(std::move(inner_fn),
                                                percentile);
  }
  if (kind == "step") {
    std::vector<double> thresholds, values;
    for (const auto& t : reader.array(doc, "thresholds")) {
      if (!t.is_number()) {
        reader.fail("step threshold not a number");
        return nullptr;
      }
      thresholds.push_back(t.as_number());
    }
    for (const auto& v : reader.array(doc, "values")) {
      if (!v.is_number()) {
        reader.fail("step value not a number");
        return nullptr;
      }
      values.push_back(v.as_number());
    }
    if (!reader.ok()) return nullptr;
    // Pre-validate what StepUtility's constructor CHECKs.
    if (thresholds.empty() || thresholds.size() != values.size()) {
      reader.fail("step utility shape invalid");
      return nullptr;
    }
    for (std::size_t b = 0; b < thresholds.size(); ++b) {
      const bool ordered =
          thresholds[b] > 0.0 && values[b] > 0.0 &&
          (b == 0 || (thresholds[b] > thresholds[b - 1] &&
                      values[b] < values[b - 1]));
      if (!ordered) {
        reader.fail("step utility not strictly monotone");
        return nullptr;
      }
    }
    return std::make_shared<StepUtility>(std::move(thresholds),
                                         std::move(values));
  }
  reader.fail("unknown utility kind");
  return nullptr;
}

}  // namespace

Json cloud_to_json(const Cloud& cloud) {
  JsonObject root;
  root.emplace("format", "cloudalloc.cloud");
  root.emplace("version", 1);

  JsonArray classes;
  for (const auto& sc : cloud.server_classes()) {
    JsonObject o;
    o.emplace("id", sc.id.value());
    o.emplace("name", sc.name);
    o.emplace("cap_p", sc.cap_p);
    o.emplace("cap_n", sc.cap_n);
    o.emplace("cap_m", sc.cap_m);
    o.emplace("cost_fixed", sc.cost_fixed);
    o.emplace("cost_per_util", sc.cost_per_util);
    classes.emplace_back(std::move(o));
  }
  root.emplace("server_classes", std::move(classes));

  JsonArray servers;
  for (const auto& sv : cloud.servers()) {
    JsonObject o;
    o.emplace("id", sv.id.value());
    o.emplace("cluster", sv.cluster.value());
    o.emplace("server_class", sv.server_class.value());
    if (sv.background.phi_p != 0.0 || sv.background.phi_n != 0.0 ||
        sv.background.disk != 0.0 || sv.background.keeps_on) {
      JsonObject b;
      b.emplace("phi_p", sv.background.phi_p);
      b.emplace("phi_n", sv.background.phi_n);
      b.emplace("disk", sv.background.disk);
      b.emplace("keeps_on", sv.background.keeps_on);
      o.emplace("background", std::move(b));
    }
    servers.emplace_back(std::move(o));
  }
  root.emplace("servers", std::move(servers));

  JsonArray clusters;
  for (const auto& cl : cloud.clusters()) {
    JsonObject o;
    o.emplace("id", cl.id.value());
    o.emplace("name", cl.name);
    JsonArray members;
    for (ServerId j : cl.servers) members.emplace_back(j.value());
    o.emplace("servers", std::move(members));
    clusters.emplace_back(std::move(o));
  }
  root.emplace("clusters", std::move(clusters));

  JsonArray utilities;
  for (const auto& uc : cloud.utility_classes()) {
    JsonObject o;
    o.emplace("id", uc.id.value());
    o.emplace("fn", utility_to_json(*uc.fn));
    utilities.emplace_back(std::move(o));
  }
  root.emplace("utility_classes", std::move(utilities));

  JsonArray clients;
  for (const auto& c : cloud.clients()) {
    JsonObject o;
    o.emplace("id", c.id.value());
    o.emplace("utility_class", c.utility_class.value());
    o.emplace("lambda_pred", c.lambda_pred);
    o.emplace("lambda_agreed", c.lambda_agreed);
    o.emplace("alpha_p", c.alpha_p);
    o.emplace("alpha_n", c.alpha_n);
    o.emplace("disk", c.disk);
    clients.emplace_back(std::move(o));
  }
  root.emplace("clients", std::move(clients));
  return Json(std::move(root));
}

std::optional<Cloud> cloud_from_json(const Json& doc, std::string* error) {
  auto fail = [error](const std::string& message) -> std::optional<Cloud> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  const Json* format = doc.find("format");
  if (format == nullptr || !format->is_string() ||
      format->as_string() != "cloudalloc.cloud")
    return fail("not a cloudalloc.cloud document");

  Reader reader;
  std::vector<ServerClass> server_classes;
  for (const auto& node : reader.array(doc, "server_classes")) {
    ServerClass sc;
    sc.id = ServerClassId{reader.integer(node, "id")};
    sc.name = reader.str(node, "name");
    sc.cap_p = reader.num(node, "cap_p");
    sc.cap_n = reader.num(node, "cap_n");
    sc.cap_m = reader.num(node, "cap_m");
    sc.cost_fixed = reader.num(node, "cost_fixed");
    sc.cost_per_util = reader.num(node, "cost_per_util");
    if (!reader.ok()) return fail(reader.error());
    // Pre-validate what Cloud's constructor CHECKs, so untrusted files
    // reject instead of aborting.
    if (sc.id != ServerClassId{static_cast<int>(server_classes.size())} ||
        sc.cap_p <= 0.0 || sc.cap_n <= 0.0 || sc.cap_m < 0.0 ||
        sc.cost_fixed < 0.0 || sc.cost_per_util < 0.0)
      return fail("server class out of domain");
    server_classes.push_back(std::move(sc));
  }

  std::vector<Server> servers;
  for (const auto& node : reader.array(doc, "servers")) {
    Server sv;
    sv.id = ServerId{reader.integer(node, "id")};
    sv.cluster = ClusterId{reader.integer(node, "cluster")};
    sv.server_class = ServerClassId{reader.integer(node, "server_class")};
    if (const Json* b = node.find("background")) {
      sv.background.phi_p = reader.num(*b, "phi_p");
      sv.background.phi_n = reader.num(*b, "phi_n");
      sv.background.disk = reader.num(*b, "disk");
      sv.background.keeps_on = reader.boolean(*b, "keeps_on");
    }
    if (!reader.ok()) return fail(reader.error());
    if (sv.id != ServerId{static_cast<int>(servers.size())} ||
        !sv.server_class.valid() ||
        sv.server_class.index() >= server_classes.size() ||
        sv.background.phi_p < 0.0 || sv.background.phi_p > 1.0 ||
        sv.background.phi_n < 0.0 || sv.background.phi_n > 1.0 ||
        sv.background.disk < 0.0)
      return fail("server out of domain");
    servers.push_back(sv);
  }

  std::vector<Cluster> clusters;
  std::vector<bool> server_seen(servers.size(), false);
  for (const auto& node : reader.array(doc, "clusters")) {
    Cluster cl;
    cl.id = ClusterId{reader.integer(node, "id")};
    cl.name = reader.str(node, "name");
    for (const auto& member : reader.array(node, "servers")) {
      if (!member.is_number()) return fail("cluster member not an id");
      cl.servers.push_back(ServerId{static_cast<int>(member.as_number())});
    }
    if (!reader.ok()) return fail(reader.error());
    if (cl.id != ClusterId{static_cast<int>(clusters.size())})
      return fail("cluster ids not dense");
    for (ServerId j : cl.servers) {
      if (!j.valid() || j.index() >= servers.size())
        return fail("cluster references unknown server");
      if (server_seen[j.index()]) return fail("server in two clusters");
      server_seen[j.index()] = true;
      if (servers[j.index()].cluster != cl.id)
        return fail("server/cluster mismatch");
    }
    clusters.push_back(std::move(cl));
  }
  for (std::size_t j = 0; j < servers.size(); ++j)
    if (!server_seen[j]) return fail("server not listed in any cluster");

  std::vector<UtilityClass> utility_classes;
  for (const auto& node : reader.array(doc, "utility_classes")) {
    UtilityClass uc;
    uc.id = UtilityClassId{reader.integer(node, "id")};
    const Json* fn = node.find("fn");
    if (fn == nullptr) return fail("utility class missing fn");
    uc.fn = utility_from_json(*fn, reader);
    if (!reader.ok()) return fail(reader.error());
    if (uc.id != UtilityClassId{static_cast<int>(utility_classes.size())})
      return fail("utility class ids not dense");
    utility_classes.push_back(std::move(uc));
  }

  std::vector<Client> clients;
  for (const auto& node : reader.array(doc, "clients")) {
    Client c;
    c.id = ClientId{reader.integer(node, "id")};
    c.utility_class = UtilityClassId{reader.integer(node, "utility_class")};
    c.lambda_pred = reader.num(node, "lambda_pred");
    c.lambda_agreed = reader.num(node, "lambda_agreed");
    c.alpha_p = reader.num(node, "alpha_p");
    c.alpha_n = reader.num(node, "alpha_n");
    c.disk = reader.num(node, "disk");
    if (!reader.ok()) return fail(reader.error());
    if (c.id != ClientId{static_cast<int>(clients.size())} ||
        !c.utility_class.valid() ||
        c.utility_class.index() >= utility_classes.size() ||
        c.lambda_pred <= 0.0 || c.lambda_agreed <= 0.0 || c.alpha_p <= 0.0 ||
        c.alpha_n <= 0.0 || c.disk < 0.0)
      return fail("client out of domain");
    clients.push_back(c);
  }
  if (!reader.ok()) return fail(reader.error());

  return Cloud(std::move(server_classes), std::move(servers),
               std::move(clusters), std::move(utility_classes),
               std::move(clients));
}

Json placement_to_json(const Placement& p) {
  JsonObject pj;
  pj.emplace("server", p.server.value());
  pj.emplace("psi", p.psi);
  pj.emplace("phi_p", p.phi_p);
  pj.emplace("phi_n", p.phi_n);
  return Json(std::move(pj));
}

std::optional<Placement> placement_from_json(const Json& node,
                                             std::string* error) {
  Reader reader;
  Placement p;
  p.server = ServerId{reader.integer(node, "server")};
  p.psi = reader.num(node, "psi");
  p.phi_p = reader.num(node, "phi_p");
  p.phi_n = reader.num(node, "phi_n");
  if (reader.ok() && !p.server.valid()) reader.fail("negative server id");
  if (!reader.ok()) {
    if (error != nullptr) *error = reader.error();
    return std::nullopt;
  }
  return p;
}

Json allocation_to_json(const Allocation& alloc) {
  JsonObject root;
  root.emplace("format", "cloudalloc.allocation");
  root.emplace("version", 1);
  JsonArray clients;
  for (ClientId i : alloc.cloud().client_ids()) {
    if (!alloc.is_assigned(i)) continue;
    JsonObject o;
    o.emplace("client", i.value());
    o.emplace("cluster", alloc.cluster_of(i).value());
    JsonArray placements;
    for (const auto& p : alloc.placements(i))
      placements.emplace_back(placement_to_json(p));
    o.emplace("placements", std::move(placements));
    clients.emplace_back(std::move(o));
  }
  root.emplace("assignments", std::move(clients));
  return Json(std::move(root));
}

std::optional<Allocation> allocation_from_json(const Cloud& cloud,
                                               const Json& doc,
                                               std::string* error) {
  auto fail = [error](const char* message) -> std::optional<Allocation> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  const Json* format = doc.find("format");
  if (format == nullptr || !format->is_string() ||
      format->as_string() != "cloudalloc.allocation")
    return fail("not a cloudalloc.allocation document");
  const Json* assignments = doc.find("assignments");
  if (assignments == nullptr || !assignments->is_array())
    return fail("missing assignments");

  Reader reader;
  Allocation alloc(cloud);
  for (const auto& node : assignments->as_array()) {
    const ClientId i{reader.integer(node, "client")};
    const ClusterId k{reader.integer(node, "cluster")};
    if (!reader.ok()) return fail(reader.error().c_str());
    if (!i.valid() || i.value() >= cloud.num_clients()) return fail("client id range");
    if (!k.valid() || k.value() >= cloud.num_clusters()) return fail("cluster id range");
    if (alloc.is_assigned(i)) return fail("client assigned twice");
    std::vector<Placement> placements;
    double psi_sum = 0.0;
    for (const auto& pj : reader.array(node, "placements")) {
      std::string perr;
      const auto parsed = placement_from_json(pj, &perr);
      if (!parsed) return fail(perr.c_str());
      const Placement p = *parsed;
      // Pre-validate what Allocation::assign CHECKs.
      if (!p.server.valid() || p.server.value() >= cloud.num_servers())
        return fail("server id range");
      if (cloud.server(p.server).cluster != k)
        return fail("placement outside assigned cluster");
      if (p.psi <= 0.0 || p.psi > 1.0 + 1e-9 || p.phi_p < 0.0 ||
          p.phi_n < 0.0)
        return fail("placement values out of domain");
      for (const Placement& existing : placements)
        if (existing.server == p.server)
          return fail("duplicate placement server");
      psi_sum += p.psi;
      placements.push_back(p);
    }
    if (placements.empty() || std::fabs(psi_sum - 1.0) > 1e-6)
      return fail("psi does not sum to one");
    alloc.assign(i, k, std::move(placements));
  }
  return alloc;
}

bool save_text_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << contents;
  return static_cast<bool>(out);
}

std::optional<std::string> load_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace cloudalloc::model
