// Allocation diffing and migration accounting for the online serving
// layer: how two epochs' placements differ, and how much client traffic a
// move redirects. The serving layer prices moves with a migration-cost
// term (AllocatorOptions::migration_cost) proportional to the redirected
// fraction, and reports per-epoch migration volume from the diff; the
// churn bench's reallocation columns come from here too.
#pragma once

#include "model/alloc_state.h"
#include "model/allocation.h"

namespace cloudalloc::model {

/// Fraction of a client's traffic redirected away from its old servers by
/// moving from `old_ps` to `new_ps`: sum over old servers of
/// max(0, psi_old - psi_new-on-that-server). 0 when nothing moves (psi and
/// server set unchanged), 1 when every request lands somewhere new — and
/// for a full removal (`new_ps` empty). Share-only changes (phi resized,
/// psi and servers untouched) are free: GPS shares are a scheduler weight,
/// not placed state.
double redirected_fraction(const std::vector<Placement>& old_ps,
                           const std::vector<Placement>& new_ps);

/// Per-client classification of how `next` differs from the placements
/// checkpointed in `prev` (an AllocState::Checkpoint: exactly the
/// cluster-of and placement vectors of the earlier epoch).
struct AllocationDiff {
  int arrived = 0;    ///< unassigned before, assigned now
  int departed = 0;   ///< assigned before, unassigned now
  int moved = 0;      ///< assigned in both with psi redirected (> 0)
  int resized = 0;    ///< assigned in both, only shares (phi) changed
  int unchanged = 0;  ///< assigned in both, placements bitwise equal
  /// Sum over moved clients of redirected_fraction — "whole clients'
  /// worth of traffic migrated" between the two epochs.
  double redirected = 0.0;
};

AllocationDiff diff_allocations(const AllocState::Checkpoint& prev,
                                const Allocation& next);

}  // namespace cloudalloc::model
