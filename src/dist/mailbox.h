// Blocking MPMC mailbox used for manager <-> cluster-agent messages.
// Closing the mailbox wakes all receivers; receive() then returns nullopt.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace cloudalloc::dist {

template <typename T>
class Mailbox {
 public:
  /// Enqueues a message; returns false if the mailbox is closed.
  bool send(T message) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      queue_.push_back(std::move(message));
      ++sent_;
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until a message arrives or the mailbox closes.
  std::optional<T> receive() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T message = std::move(queue_.front());
    queue_.pop_front();
    return message;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Total messages ever sent (the "limited communication" the paper
  /// trades for the K-fold speedup; reported by the speedup bench).
  std::size_t messages_sent() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return sent_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  std::size_t sent_ = 0;
  bool closed_ = false;
};

}  // namespace cloudalloc::dist
