// Blocking MPMC mailbox used for manager <-> cluster-agent channels.
//
// Close semantics: close() wakes every blocked receiver; messages already
// queued at close time still drain (receive keeps returning them), and
// only an empty+closed mailbox yields nullopt. send() on a closed mailbox
// is refused and returns false — callers MUST consume that result: the
// transport layer maps it to "peer is gone" (crashed agent / finished
// manager) and the liveness bookkeeping depends on it. messages_sent()
// counts successful enqueues only and is the single source of truth for
// message accounting (DistributedReport::messages sums it per channel —
// there is no hand-computed estimate anywhere).
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace cloudalloc::dist {

template <typename T>
class Mailbox {
 public:
  /// Enqueues a message; returns false (and drops it) iff the mailbox is
  /// closed. Do not ignore the result — see the header comment.
  [[nodiscard]] bool send(T message) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      queue_.push_back(std::move(message));
      ++sent_;
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until a message arrives or the mailbox closes; nullopt only
  /// when closed AND drained.
  std::optional<T> receive() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    return take_locked();
  }

  /// Bounded receive: blocks up to `timeout` for a message. nullopt means
  /// the wait timed out or the mailbox is closed-and-drained — callers
  /// that must distinguish can consult closed(). A message that is
  /// already queued is returned immediately regardless of timeout.
  template <typename Rep, typename Period>
  std::optional<T> receive_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, timeout,
                 [this] { return closed_ || !queue_.empty(); });
    return take_locked();
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Total successful sends ever (the "limited communication" the paper
  /// trades for the K-fold speedup; summed into DistributedReport).
  std::size_t messages_sent() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return sent_;
  }

 private:
  std::optional<T> take_locked() {
    if (queue_.empty()) return std::nullopt;
    T message = std::move(queue_.front());
    queue_.pop_front();
    return message;
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  std::size_t sent_ = 0;
  bool closed_ = false;
};

}  // namespace cloudalloc::dist
