// Blocking MPMC mailbox used for manager <-> cluster-agent channels.
//
// Close semantics: close() wakes every blocked receiver; messages already
// queued at close time still drain (receive keeps returning them), and
// only an empty+closed mailbox yields nullopt. send() on a closed mailbox
// is refused and returns false — callers MUST consume that result: the
// transport layer maps it to "peer is gone" (crashed agent / finished
// manager) and the liveness bookkeeping depends on it. messages_sent()
// counts successful enqueues only and is the single source of truth for
// message accounting (DistributedReport::messages sums it per channel —
// there is no hand-computed estimate anywhere).
//
// Lock discipline is a compile-time contract: every field is GUARDED_BY
// mutex_ and clang -Wthread-safety rejects any access outside a
// sync::MutexLock scope (see common/sync.h).
#pragma once

#include <chrono>
#include <deque>
#include <optional>

#include "common/sync.h"

namespace cloudalloc::dist {

template <typename T>
class Mailbox {
 public:
  /// Enqueues a message; returns false (and drops it) iff the mailbox is
  /// closed. Do not ignore the result — see the header comment.
  [[nodiscard]] bool send(T message) {
    {
      sync::MutexLock lock(mutex_);
      if (closed_) return false;
      queue_.push_back(std::move(message));
      ++sent_;
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until a message arrives or the mailbox closes; nullopt only
  /// when closed AND drained.
  std::optional<T> receive() {
    sync::MutexLock lock(mutex_);
    while (!closed_ && queue_.empty()) cv_.wait(lock);
    return take_locked();
  }

  /// Bounded receive: blocks up to `timeout` for a message. nullopt means
  /// the wait timed out or the mailbox is closed-and-drained — callers
  /// that must distinguish can consult closed(). A message that is
  /// already queued is returned immediately regardless of timeout.
  template <typename Rep, typename Period>
  std::optional<T> receive_for(std::chrono::duration<Rep, Period> timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    sync::MutexLock lock(mutex_);
    while (!closed_ && queue_.empty()) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
    }
    return take_locked();
  }

  void close() {
    {
      sync::MutexLock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    sync::MutexLock lock(mutex_);
    return closed_;
  }

  /// Total successful sends ever (the "limited communication" the paper
  /// trades for the K-fold speedup; summed into DistributedReport).
  std::size_t messages_sent() const {
    sync::MutexLock lock(mutex_);
    return sent_;
  }

 private:
  std::optional<T> take_locked() REQUIRES(mutex_) {
    if (queue_.empty()) return std::nullopt;
    T message = std::move(queue_.front());
    queue_.pop_front();
    return message;
  }

  mutable sync::Mutex mutex_;
  sync::CondVar cv_;
  std::deque<T> queue_ GUARDED_BY(mutex_);
  std::size_t sent_ GUARDED_BY(mutex_) = 0;
  bool closed_ GUARDED_BY(mutex_) = false;
};

}  // namespace cloudalloc::dist
