// ParallelEval: the allocator-facing façade of the parallel evaluation
// engine. It runs deterministic index/chunk fan-outs either inline (no
// pool, the default) or on a dist::ThreadPool, with the invariant that the
// work decomposition depends only on the problem size — never on the
// worker count — so any reduction over per-task results is bit-identical
// at every thread count, including 1.
//
// Seed-splitting convention (see DESIGN.md "Threading model"): a caller
// that needs randomness per task draws one 64-bit seed per task from its
// own Rng *before* the fan-out, in task-index order, and each task seeds a
// private Rng from its slot. The parent stream therefore advances the same
// way regardless of how the tasks are scheduled.
#pragma once

#include <functional>

#include "dist/thread_pool.h"

namespace cloudalloc::dist {

class ParallelEval {
 public:
  /// Inline engine: fan-outs run on the calling thread.
  ParallelEval() = default;

  /// Pool-backed engine; `pool` may be null (inline) and must outlive this.
  explicit ParallelEval(ThreadPool* pool) : pool_(pool) {}

  bool parallel() const { return pool_ != nullptr && pool_->num_workers() > 1; }
  int num_workers() const { return parallel() ? pool_->num_workers() : 1; }

  /// Runs fn(0..n-1); one task per index. Blocks until all complete.
  void for_n(int n, const std::function<void(int)>& fn) const {
    if (parallel()) {
      pool_->parallel_for(n, fn);
    } else {
      for (int i = 0; i < n; ++i) fn(i);
    }
  }

  /// Runs fn(begin, end) over chunks of `grain` consecutive indices. Chunk
  /// boundaries are identical inline and pooled, so per-chunk scratch state
  /// cannot leak scheduling into results.
  void for_chunks(int n, int grain,
                  const std::function<void(int, int)>& fn) const {
    if (parallel()) {
      pool_->parallel_for_chunked(n, grain, fn);
    } else {
      for (int begin = 0; begin < n; begin += grain)
        fn(begin, begin + grain < n ? begin + grain : n);
    }
  }

 private:
  ThreadPool* pool_ = nullptr;
};

}  // namespace cloudalloc::dist
