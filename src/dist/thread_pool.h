// Fixed-size worker pool used to emulate the paper's parallel cluster
// agents on one machine. Deliberately minimal: submit() plus a blocking
// parallel_for; no work stealing, no priorities.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace cloudalloc::dist {

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Enqueues a task; the future resolves when it has run.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(0..n-1) across the pool and blocks until all complete.
  void parallel_for(int n, const std::function<void(int)>& fn);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> threads_;
  bool stopping_ = false;
};

}  // namespace cloudalloc::dist
