// Fixed-size worker pool used to emulate the paper's parallel cluster
// agents on one machine, and to run the allocator's parallel evaluation
// fan-outs (multi-start greedy, reassign candidate scoring). Deliberately
// minimal: submit() plus blocking parallel_for variants; no work stealing,
// no priorities.
//
// Exception contract: the parallel_for variants drain (join) every task
// before propagating the first stored exception, so a throwing task can
// never race the caller's destroyed captures.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace cloudalloc::dist {

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(threads_.size()); }
  int workers() const { return num_workers(); }

  /// Enqueues a task; the future resolves when it has run.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(0..n-1) across the pool and blocks until all complete. Every
  /// task is drained before the lowest-index stored exception is rethrown.
  /// Must not be called from a worker thread (the nested wait would
  /// deadlock once all workers block).
  void parallel_for(int n, const std::function<void(int)>& fn);

  /// Chunked variant: fn(begin, end) over ranges of `grain` consecutive
  /// indices (last chunk may be shorter). Chunk boundaries depend only on
  /// (n, grain) — never on the worker count — so per-chunk state (RNG
  /// streams, scratch copies) yields bit-identical results at any pool
  /// size. Same drain-before-rethrow contract as parallel_for.
  void parallel_for_chunked(int n, int grain,
                            const std::function<void(int, int)>& fn);

  /// Drains all queued tasks and joins the workers. Idempotent; the
  /// destructor calls it. submit() after shutdown() is a programmer error.
  void shutdown();

 private:
  void worker_loop();
  bool on_worker_thread() const;
  void drain_all(std::vector<std::future<void>>& futures);

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> threads_;
  bool stopping_ = false;
};

}  // namespace cloudalloc::dist
