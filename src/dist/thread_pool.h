// Work-stealing job system used to emulate the paper's parallel cluster
// agents on one machine and to run the allocator's parallel evaluation
// fan-outs (multi-start greedy, snapshot reassign, sharded pricing).
//
// Execution model: each worker owns a deque of small POD task records
// backed by its own arena (common/arena.h) — no per-task heap allocation
// and no type erasure on the fan-out path (the caller's std::function is
// created once per fan-out and shared by reference; each task is a
// {kind, range, batch, fn} record). The owner pushes and pops at the
// tail (LIFO, cache-warm); idle workers steal from the head of a random
// victim's deque (FIFO, oldest first). A blocked fan-out caller — worker
// or external thread — helps execute tasks instead of sleeping, which is
// also what makes nested parallel_for from a worker thread legal: the
// worker runs its own chunks and steals the rest back, it never parks
// with work outstanding.
//
// Determinism contract (unchanged from the original pool): chunk
// boundaries are a pure function of (n, grain) — never of the worker
// count or the scheduling — so per-chunk state (RNG streams, scratch
// copies) yields bit-identical results at any pool size, including the
// inline path. Stealing changes WHERE a chunk runs, never what it
// computes.
//
// Exception contract: the parallel_for variants drain (run) every task
// before propagating the lowest-index stored exception, so a throwing
// task can never race the caller's destroyed captures.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/arena.h"
#include "common/sync.h"

namespace cloudalloc::dist {

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(threads_.size()); }
  int workers() const { return num_workers(); }

  /// Process-wide reusable pool with `workers` threads: repeated solves
  /// (online epochs, benches, the distributed manager's rounds) share one
  /// warm pool per worker count instead of paying thread spawn/join per
  /// call. Pools live until process exit; concurrent fan-outs from
  /// different callers are safe (batches are independent).
  static ThreadPool& shared(int workers);

  /// Enqueues a task; the future resolves when it has run. This is the
  /// cold-path entry (tests, one-off jobs): the callable is heap-boxed.
  /// Fan-outs go through parallel_for*, which allocate nothing per task.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(0..n-1) across the pool and blocks until all complete; the
  /// calling thread helps execute. Every task is drained before the
  /// lowest-index stored exception is rethrown. Safe to call from a
  /// worker thread (nested fan-outs run to completion via helping).
  void parallel_for(int n, const std::function<void(int)>& fn);

  /// Chunked variant: fn(begin, end) over ranges of `grain` consecutive
  /// indices (last chunk may be shorter). Chunk boundaries depend only on
  /// (n, grain) — see the determinism contract above. Same
  /// drain-before-rethrow contract as parallel_for.
  void parallel_for_chunked(int n, int grain,
                            const std::function<void(int, int)>& fn);

  /// Drains all queued tasks and joins the workers. Idempotent; the
  /// destructor calls it. submit() after shutdown() is a programmer error.
  void shutdown();

 private:
  struct Batch;

  /// One schedulable unit. POD: lives inline in the deque rings.
  struct Task {
    enum class Kind : std::uint8_t { kIndex, kChunk, kHeap };
    Kind kind;
    int begin = 0;    ///< kIndex: the index; kChunk: range start
    int end = 0;      ///< kChunk: range end (exclusive)
    int slot = 0;     ///< error-slot ordinal within the batch
    Batch* batch = nullptr;
    const void* fn = nullptr;  ///< caller's std::function, by pointer
    void* heap = nullptr;      ///< kHeap: boxed packaged_task
  };

  /// Per-worker deque: a mutex-guarded ring of Task records whose storage
  /// grows from the worker's arena. Owner end = tail, thief end = head.
  /// Every field — including the arena the ring grows from — is touched
  /// only under `mutex`, and the annotations make that a compile-time
  /// contract under clang -Wthread-safety.
  struct Deque {
    sync::Mutex mutex;
    common::Arena arena GUARDED_BY(mutex);
    Task* ring GUARDED_BY(mutex) = nullptr;
    std::size_t capacity GUARDED_BY(mutex) = 0;  ///< power of two
    std::size_t head GUARDED_BY(mutex) = 0;      ///< steal end (FIFO)
    std::size_t tail GUARDED_BY(mutex) = 0;      ///< owner end (LIFO)

    // false when ring must grow first
    bool push(const Task& task) REQUIRES(mutex);
    void grow_and_push(const Task& task) REQUIRES(mutex);
  };

  void worker_loop(int self);
  /// Pops from own deque (workers) then sweeps victims from a per-thread
  /// random start. Returns false when every deque came up empty.
  bool try_run_one(int self);
  void run_task(const Task& task);
  void enqueue(const Task& task, int self);
  void help_until_done(Batch& batch, int self);
  void fan_out(int tasks, Task::Kind kind, int grain, const void* fn);

  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<std::thread> threads_;
  std::atomic<int> pending_{0};  ///< tasks enqueued and not yet taken
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint32_t> scatter_{0};  ///< external-push round robin
  sync::Mutex sleep_mutex_;
  sync::CondVar sleep_cv_;
};

/// Maps an options-level thread count to a worker count: 0 means "use the
/// hardware concurrency", anything else is clamped to at least 1.
inline int resolve_workers(int num_threads) {
  if (num_threads > 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace cloudalloc::dist
