#include "dist/manager.h"

#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <numeric>
#include <optional>
#include <thread>
#include <variant>
#include <vector>

#include "alloc/reassign.h"
#include "common/check.h"
#include "common/rng.h"
#include "dist/cluster_agent.h"
#include "dist/mailbox.h"
#include "model/evaluator.h"

namespace cloudalloc::dist {
namespace {

using model::Allocation;
using model::ClientId;
using model::Cloud;
using model::ClusterId;

struct EvaluateRequest {
  ClientId client;
  const Allocation* snapshot;
};
struct ImproveRequest {
  const Allocation* snapshot;
};
using AgentRequest = std::variant<EvaluateRequest, ImproveRequest>;

struct EvaluateResponse {
  ClusterId cluster;
  std::optional<alloc::InsertionPlan> plan;
};
struct ImproveResponse {
  ClusterImprovement improvement;
};
using AgentResponse = std::variant<EvaluateResponse, ImproveResponse>;

/// One agent thread: drain the request mailbox until it closes.
void agent_main(ClusterAgent agent, Mailbox<AgentRequest>& inbox,
                Mailbox<AgentResponse>& outbox) {
  for (;;) {
    auto request = inbox.receive();
    if (!request) return;
    if (const auto* ev = std::get_if<EvaluateRequest>(&*request)) {
      outbox.send(AgentResponse{EvaluateResponse{
          agent.cluster(), agent.evaluate_insertion(*ev->snapshot,
                                                    ev->client)}});
    } else {
      const auto& imp = std::get<ImproveRequest>(*request);
      outbox.send(AgentResponse{ImproveResponse{agent.improve(*imp.snapshot)}});
    }
  }
}

}  // namespace

DistributedAllocator::DistributedAllocator(DistributedOptions options)
    : options_(options) {}

DistributedResult DistributedAllocator::run(const Cloud& cloud) const {
  const auto start = std::chrono::steady_clock::now();
  const alloc::AllocatorOptions& aopts = options_.alloc;
  const int K = cloud.num_clusters();

  // Spin up one agent (thread + mailbox) per cluster.
  std::vector<std::unique_ptr<Mailbox<AgentRequest>>> inboxes;
  Mailbox<AgentResponse> responses;
  std::vector<std::thread> threads;
  inboxes.reserve(static_cast<std::size_t>(K));
  for (ClusterId k = 0; k < K; ++k) {
    inboxes.push_back(std::make_unique<Mailbox<AgentRequest>>());
    threads.emplace_back(agent_main, ClusterAgent(k, aopts),
                         std::ref(*inboxes.back()), std::ref(responses));
  }
  auto shutdown = [&] {
    for (auto& inbox : inboxes) inbox->close();
    for (auto& t : threads) t.join();
  };

  // --- multi-start greedy initial solution (parallel per-client fan-out).
  Rng rng(aopts.seed);
  std::vector<ClientId> order(static_cast<std::size_t>(cloud.num_clients()));
  std::iota(order.begin(), order.end(), 0);

  Allocation best(cloud);
  double best_profit = -1e300;
  for (int iter = 0; iter < aopts.num_initial_solutions; ++iter) {
    rng.shuffle(order);
    Allocation current(cloud);
    for (ClientId i : order) {
      for (ClusterId k = 0; k < K; ++k)
        inboxes[static_cast<std::size_t>(k)]->send(
            AgentRequest{EvaluateRequest{i, &current}});
      // Collect all K bids; order by cluster id for deterministic ties.
      std::map<ClusterId, std::optional<alloc::InsertionPlan>> bids;
      for (int r = 0; r < K; ++r) {
        auto response = responses.receive();
        CHECK(response.has_value());
        auto& ev = std::get<EvaluateResponse>(*response);
        bids.emplace(ev.cluster, std::move(ev.plan));
      }
      std::optional<alloc::InsertionPlan> winner;
      for (auto& [k, plan] : bids) {
        (void)k;
        if (plan && (!winner || plan->score > winner->score))
          winner = std::move(plan);
      }
      if (winner)
        current.assign(i, winner->cluster, std::move(winner->placements));
    }
    const double p = model::profit(current);
    if (p > best_profit) {
      best_profit = p;
      best = std::move(current);
    }
  }

  DistributedReport report;
  report.initial_profit = best_profit;

  // --- improvement rounds: parallel cluster-local stages + sequential
  // cross-cluster reassignment.
  Allocation alloc = std::move(best);
  double profit_now = best_profit;
  for (int round = 0; round < aopts.max_local_search_rounds; ++round) {
    const Allocation snapshot = alloc.clone();  // frozen for this round
    for (ClusterId k = 0; k < K; ++k)
      inboxes[static_cast<std::size_t>(k)]->send(
          AgentRequest{ImproveRequest{&snapshot}});
    std::map<ClusterId, ClusterImprovement> improvements;
    for (int r = 0; r < K; ++r) {
      auto response = responses.receive();
      CHECK(response.has_value());
      auto& imp = std::get<ImproveResponse>(*response).improvement;
      improvements.emplace(imp.cluster, std::move(imp));
    }
    for (auto& [k, improvement] : improvements) {
      for (auto& [i, placements] : improvement.placements) {
        if (placements.empty())
          alloc.clear(i);
        else
          alloc.assign(i, k, std::move(placements));
      }
    }
    if (aopts.enable_reassign) alloc::reassign_pass(alloc, aopts);

    const double profit_after = model::profit(alloc);
    const double gain = profit_after - profit_now;
    profit_now = profit_after;
    report.rounds_run = round + 1;
    if (gain <=
        aopts.steady_tolerance * std::max(std::fabs(profit_now), 1.0))
      break;
  }

  shutdown();
  report.final_profit = profit_now;
  for (const auto& inbox : inboxes) report.messages += inbox->messages_sent();
  report.messages += responses.messages_sent();
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return DistributedResult{std::move(alloc), report};
}

}  // namespace cloudalloc::dist
