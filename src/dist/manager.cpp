#include "dist/manager.h"

#include <chrono>
#include <cmath>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "alloc/initial.h"
#include "alloc/reassign.h"
#include "common/check.h"
#include "common/rng.h"
#include "dist/cluster_agent.h"
#include "dist/parallel_eval.h"
#include "dist/thread_pool.h"
#include "model/alloc_state.h"
#include "model/evaluator.h"

namespace cloudalloc::dist {

using model::Allocation;
using model::ClientId;
using model::Cloud;
using model::ClusterId;

DistributedAllocator::DistributedAllocator(DistributedOptions options)
    : options_(options) {}

DistributedResult DistributedAllocator::run(const Cloud& cloud) const {
  const auto start = std::chrono::steady_clock::now();
  const alloc::AllocatorOptions& aopts = options_.alloc;
  const int K = cloud.num_clusters();

  // Pool-managed agents: the worker count bounds real parallelism even
  // when K >> cores; with one worker everything runs inline.
  const int workers = resolve_workers(aopts.num_threads);
  std::unique_ptr<ThreadPool> pool =
      workers > 1 ? std::make_unique<ThreadPool>(workers) : nullptr;
  const ParallelEval eval(pool.get());

  DistributedReport report;

  // --- multi-start greedy initial solution: the independent starts run as
  // pool tasks through the same engine as the sequential allocator, so the
  // two modes commit identical initial solutions.
  Rng rng(aopts.seed);
  model::AllocState state(
      alloc::build_initial_solution(cloud, aopts, rng, eval));
  double best_profit = state.profit();
  report.initial_profit = best_profit;
  // Each greedy insertion asks all K agents for a bid and collects K
  // responses in the message-passing deployment.
  report.messages += static_cast<std::size_t>(aopts.num_initial_solutions) *
                     static_cast<std::size_t>(cloud.num_clients()) *
                     static_cast<std::size_t>(2 * K);

  // --- improvement rounds: parallel cluster-local stages against the
  // settled engine ledger (frozen for the round — the merge only starts
  // after every agent returned) + sequential cross-cluster reassignment.
  // A round can dip (the share rebalance inside the agents is
  // unconditional), so track the best state ever seen as an engine
  // checkpoint and materialize it once at the end, exactly as
  // ResourceAllocator::improve_impl does. No per-round Allocation clones:
  // each agent copies the snapshot privately (the message-passing model's
  // inherent boundary), and best/working state live in the one engine.
  model::AllocState::Checkpoint best = state.checkpoint(best_profit);
  int stalled_rounds = 0;
  for (int round = 0; round < aopts.max_local_search_rounds; ++round) {
    (void)state.profit();  // settle caches: pure reads from here
    CHECK(state.ledger().profit_settled());
    std::vector<std::optional<ClusterImprovement>> improvements(
        static_cast<std::size_t>(K));
    eval.for_n(K, [&](int k) {
      ClusterAgent agent(static_cast<ClusterId>(k), aopts);
      improvements[static_cast<std::size_t>(k)] =
          agent.improve(state.ledger());
    });
    report.messages += static_cast<std::size_t>(2 * K);

    // Merge in cluster order (deterministic at any thread count).
    for (int k = 0; k < K; ++k) {
      auto& improvement = improvements[static_cast<std::size_t>(k)];
      CHECK(improvement.has_value());
      for (auto& [i, placements] : improvement->placements) {
        if (placements.empty())
          state.clear(i);
        else
          state.assign(i, static_cast<ClusterId>(k), std::move(placements));
      }
    }
    if (aopts.enable_reassign) alloc::reassign_pass_snapshot(state, aopts, eval);
    state.debug_check_invariants();

    const double profit_after = state.profit();
    report.round_profits.push_back(profit_after);
    report.rounds_run = round + 1;
    const double significant =
        aopts.steady_tolerance * std::max(std::fabs(best_profit), 1.0);
    if (profit_after > best_profit + significant) {
      stalled_rounds = 0;
    } else {
      ++stalled_rounds;
    }
    if (profit_after > best_profit) {
      best_profit = profit_after;
      best = state.checkpoint(profit_after);
    }
    // Dips can precede a recovering round; stop only after two rounds
    // without a new best.
    if (stalled_rounds >= 2) break;
  }

  report.final_profit = best_profit;
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return DistributedResult{state.materialize(best), report};
}

}  // namespace cloudalloc::dist
