#include "dist/manager.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "alloc/initial.h"
#include "alloc/reassign.h"
#include "common/check.h"
#include "common/rng.h"
#include "dist/cluster_agent.h"
#include "dist/codec.h"
#include "dist/parallel_eval.h"
#include "dist/protocol.h"
#include "dist/thread_pool.h"
#include "dist/transport.h"
#include "model/alloc_state.h"
#include "model/evaluator.h"

namespace cloudalloc::dist {

using model::Allocation;
using model::ClientId;
using model::Cloud;
using model::ClusterId;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Shared improvement-loop bookkeeping: best-checkpoint tracking, stall
/// detection, and the epoch-deadline contract both modes honor.
struct LoopState {
  model::AllocState state;
  model::AllocState::Checkpoint best;
  double best_profit;
  int stalled_rounds = 0;
  Clock::time_point start;

  LoopState(Allocation initial, double profit, Clock::time_point t0)
      : state(std::move(initial)),
        best(state.checkpoint(profit)),
        best_profit(profit),
        start(t0) {}

  /// The epoch deadline, mirroring allocator.cpp's between-passes check:
  /// the distributed loop checks it between rounds (the round is the
  /// distributed mode's indivisible unit of work).
  bool over_budget(const alloc::AllocatorOptions& opts) const {
    return opts.time_budget_ms > 0.0 &&
           ms_since(start) >= opts.time_budget_ms;
  }

  /// Profit accounting after a merged round; returns true when the loop
  /// should stop (two rounds without a new best).
  bool note_round(double profit_after, const alloc::AllocatorOptions& opts,
                  DistributedReport& report, int round) {
    report.round_profits.push_back(profit_after);
    report.rounds_run = round + 1;
    const double significant =
        opts.steady_tolerance * std::max(std::fabs(best_profit), 1.0);
    if (profit_after > best_profit + significant) {
      stalled_rounds = 0;
    } else {
      ++stalled_rounds;
    }
    if (profit_after > best_profit) {
      best_profit = profit_after;
      best = state.checkpoint(profit_after);
    }
    // Dips can precede a recovering round; stop only after two rounds
    // without a new best.
    return stalled_rounds >= 2;
  }
};

/// Debug-mode audit of an agent's self-reported profit_delta against the
/// delta the merge actually realized on the manager's ledger. Profit is
/// separable by cluster (clients and servers belong to exactly one), so
/// the two must agree up to summation-order ulps; a stale or duplicated
/// improvement that slipped past the sequence checks would show up here
/// as a gross mismatch instead of silently corrupting round accounting.
void debug_cross_check_delta(model::AllocState& state, double before,
                             double reported_delta, ClusterId k) {
#ifndef NDEBUG
  const double realized = state.profit() - before;
  const double tol =
      1e-6 * std::max({std::fabs(realized), std::fabs(reported_delta), 1.0});
  CHECK_MSG(std::fabs(realized - reported_delta) <= tol,
            "cluster improvement accounting mismatch (stale/duplicated "
            "message merged?)");
  (void)k;
#else
  (void)state;
  (void)before;
  (void)reported_delta;
  (void)k;
#endif
}

/// Applies one agent's improvement rows to the engine (shared merge path
/// of both modes; cluster order = deterministic).
void merge_improvement(model::AllocState& state,
                       const protocol::ClusterImprovement& improvement,
                       ClusterId k) {
#ifndef NDEBUG
  const double before = state.profit();
#else
  const double before = 0.0;
#endif
  for (const protocol::ClientPlacements& row : improvement.placements) {
    if (row.cluster == model::kNoCluster || row.placements.empty())
      state.clear(row.client);
    else
      state.assign(row.client, k,
                   std::vector<model::Placement>(row.placements));
  }
  debug_cross_check_delta(state, before, improvement.profit_delta, k);
}

/// Bitwise row identity: same cluster and the same slices, double for
/// double. The delta composer uses it to ship only real changes.
bool rows_equal(const protocol::ClientPlacements& a,
                const protocol::ClientPlacements& b) {
  if (a.cluster != b.cluster || a.placements.size() != b.placements.size())
    return false;
  for (std::size_t s = 0; s < a.placements.size(); ++s) {
    const model::Placement& pa = a.placements[s];
    const model::Placement& pb = b.placements[s];
    if (pa.server != pb.server || pa.psi != pb.psi || pa.phi_p != pb.phi_p ||
        pa.phi_n != pb.phi_n)
      return false;
  }
  return true;
}

/// Placement rows of the full ledger, dense in client id — the snapshot
/// both modes rebuild agent copies from.
std::vector<protocol::ClientPlacements> ledger_rows(const Allocation& ledger) {
  std::vector<protocol::ClientPlacements> rows;
  const Cloud& cloud = ledger.cloud();
  rows.resize(static_cast<std::size_t>(cloud.num_clients()));
  for (ClientId i : cloud.client_ids()) {
    protocol::ClientPlacements& row = rows[static_cast<std::size_t>(i.index())];
    row.client = i;
    if (!ledger.is_assigned(i)) continue;
    row.cluster = ledger.cluster_of(i);
    row.placements = ledger.placements(i);
  }
  return rows;
}

}  // namespace

DistributedAllocator::DistributedAllocator(DistributedOptions options)
    : options_(options) {}

DistributedResult DistributedAllocator::run(const Cloud& cloud) const {
  return options_.mode == DistMode::kSharedMemory
             ? run_shared_memory(cloud)
             : run_message_passing(cloud);
}

// --- shared-memory mode (pool tasks, zero-copy snapshots) ----------------

DistributedResult DistributedAllocator::run_shared_memory(
    const Cloud& cloud) const {
  const auto start = Clock::now();
  const alloc::AllocatorOptions& aopts = options_.alloc;
  const int K = cloud.num_clusters();

  // Pool-managed agents: the worker count bounds real parallelism even
  // when K >> cores; with one worker everything runs inline. The shared
  // pool keeps its workers warm across repeated runs (benches, epochs)
  // instead of spawning and joining threads per call.
  const int workers = resolve_workers(aopts.num_threads);
  ThreadPool* pool = workers > 1 ? &ThreadPool::shared(workers) : nullptr;
  const ParallelEval eval(pool);

  DistributedReport report;

  // --- multi-start greedy initial solution: the independent starts run as
  // pool tasks through the same engine as the sequential allocator, so the
  // two modes commit identical initial solutions.
  Rng rng(aopts.seed);
  Allocation initial = alloc::build_initial_solution(cloud, aopts, rng, eval);
  const double p0 = model::profit(initial);
  LoopState loop(std::move(initial), p0, start);
  report.initial_profit = p0;

  // --- improvement rounds: parallel cluster-local stages against a
  // frozen snapshot + sequential cross-cluster reassignment. The snapshot
  // is REBUILT from placement rows (not the live ledger) so the agents'
  // inputs are bitwise what the message-passing mode's replicas rebuild —
  // the cross-mode parity contract.
  for (int round = 0; round < aopts.max_local_search_rounds; ++round) {
    Allocation snapshot =
        protocol::rebuild_allocation(cloud, ledger_rows(loop.state.ledger()));
    (void)model::profit(snapshot);  // settle: pure reads from here
    CHECK(snapshot.profit_settled());
    std::vector<std::optional<protocol::ClusterImprovement>> improvements(
        static_cast<std::size_t>(K));
    eval.for_n(K, [&](int k) {
      ClusterAgent agent(ClusterId{k}, aopts);
      improvements[static_cast<std::size_t>(k)] = agent.improve(snapshot);
    });

    // Merge in cluster order (deterministic at any thread count).
    for (int k = 0; k < K; ++k) {
      auto& improvement = improvements[static_cast<std::size_t>(k)];
      CHECK(improvement.has_value());
      merge_improvement(loop.state, *improvement, ClusterId{k});
    }
    if (aopts.enable_reassign)
      alloc::reassign_pass_snapshot(loop.state, aopts, eval);
    loop.state.debug_check_invariants();

    const bool stop =
        loop.note_round(loop.state.profit(), aopts, report, round);
    // The epoch deadline: one long round must not start another
    // (mirrors allocator.cpp's between-passes over_budget checks).
    if (loop.over_budget(aopts)) {
      report.truncated = true;
      break;
    }
    if (stop) break;
  }

  report.final_profit = loop.best_profit;
  report.wall_seconds =
      std::chrono::duration<double>(Clock::now() - loop.start).count();
  return DistributedResult{loop.state.materialize(loop.best), report};
}

// --- message-passing mode (actor threads over a Transport) ---------------

DistributedResult DistributedAllocator::run_message_passing(
    const Cloud& cloud) const {
  const auto start = Clock::now();
  const alloc::AllocatorOptions& aopts = options_.alloc;
  const int K = cloud.num_clusters();
  // Epoch id: identifies this decision epoch in every message. Truncated
  // to 32 bits so it survives the JSON double round trip exactly.
  const std::uint64_t epoch =
      static_cast<std::uint32_t>(aopts.seed ^ (aopts.seed >> 32));

  std::unique_ptr<Transport> transport =
      std::make_unique<ChannelTransport>(K);
  if (options_.faults.any())
    transport = std::make_unique<FaultyTransport>(std::move(transport),
                                                  options_.faults);

  // Dedicated actor threads — the agents of Figure 1. They share the
  // immutable Cloud (static problem data); all allocation state reaches
  // them as encoded deltas.
  std::vector<std::thread> actors;
  actors.reserve(static_cast<std::size_t>(K));
  for (int k = 0; k < K; ++k)
    actors.emplace_back([&cloud, aopts, epoch, k, t = transport.get()] {
      AgentActor(cloud, ClusterId{k}, aopts, epoch, t).run();
    });
  // Whatever happens below, the channels close and the actors join.
  struct Shutdown {
    Transport* transport;
    std::vector<std::thread>* actors;
    ~Shutdown() {
      transport->close_all();
      for (std::thread& t : *actors) t.join();
    }
  } shutdown{transport.get(), &actors};

  DistributedReport report;

  // Multi-start greedy initial solution, manager-local (identical to the
  // sequential allocator; the remote-bid deployment of this phase exists
  // in the protocol — see BidRequest — and is exercised by the protocol
  // tests and the online layer, not by this batch entry point).
  const int workers = resolve_workers(aopts.num_threads);
  ThreadPool* pool = workers > 1 ? &ThreadPool::shared(workers) : nullptr;
  {
    const ParallelEval eval(pool);
    Rng rng(aopts.seed);
    Allocation initial = alloc::build_initial_solution(cloud, aopts, rng, eval);
    const double p0 = model::profit(initial);
    report.initial_profit = p0;

    LoopState loop(std::move(initial), p0, start);

    // Versioned replication state: one bump per merged change set. The
    // initial solution is version 1; every client it touched is stamped.
    std::int64_t version = 1;
    std::vector<std::int64_t> client_version(
        static_cast<std::size_t>(cloud.num_clients()), 0);
    std::vector<protocol::ClientPlacements> shipped_rows =
        ledger_rows(loop.state.ledger());
    for (ClientId i : cloud.client_ids())
      if (loop.state.ledger().is_assigned(i))
        client_version[static_cast<std::size_t>(i.index())] = 1;
    std::vector<std::int64_t> acked(static_cast<std::size_t>(K), 0);
    std::vector<int> misses(static_cast<std::size_t>(K), 0);
    std::vector<char> dead(static_cast<std::size_t>(K), 0);

    const auto compose_delta = [&](int k) {
      protocol::StateDelta delta;
      delta.base_version = acked[static_cast<std::size_t>(k)];
      delta.target_version = version;
      const Allocation& ledger = loop.state.ledger();
      for (ClientId i : cloud.client_ids()) {
        const auto idx = static_cast<std::size_t>(i.index());
        if (client_version[idx] <= delta.base_version) continue;
        protocol::ClientPlacements row;
        row.client = i;
        if (ledger.is_assigned(i)) {
          row.cluster = ledger.cluster_of(i);
          row.placements = ledger.placements(i);
        }
        delta.changes.push_back(std::move(row));
      }
      return delta;
    };

    for (int round = 0; round < aopts.max_local_search_rounds; ++round) {
      // --- broadcast this round's ImproveRequests.
      for (int k = 0; k < K; ++k) {
        if (dead[static_cast<std::size_t>(k)]) continue;
        protocol::ImproveRequest req;
        req.epoch = epoch;
        req.round = round;
        req.cluster = ClusterId{k};
        req.delta = compose_delta(k);
        if (!transport->send_to_agent(
                k, codec::encode(protocol::AgentMessage{std::move(req)}))) {
          // Refused send = closed channel = crashed agent. Skip-and-
          // continue; its cluster keeps its last merged placements.
          dead[static_cast<std::size_t>(k)] = 1;
          ++report.agents_presumed_dead;
        }
      }

      // --- collect responses under the per-round deadline.
      std::vector<std::optional<protocol::ImproveResponse>> got(
          static_cast<std::size_t>(K));
      int expected = 0;
      for (int k = 0; k < K; ++k)
        if (!dead[static_cast<std::size_t>(k)]) ++expected;
      int received = 0;
      // The response timeout is additionally capped by the remaining
      // epoch budget: a silent agent must not blow the deadline.
      double wait_ms = aopts.dist_round_timeout_ms;
      if (aopts.time_budget_ms > 0.0) {
        const double remaining = aopts.time_budget_ms - ms_since(start);
        wait_ms = wait_ms <= 0.0 ? remaining : std::min(wait_ms, remaining);
        if (wait_ms < 1.0) wait_ms = 1.0;  // drain what already arrived
      }
      const auto round_deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 wait_ms > 0.0 ? wait_ms : 0.0));
      while (received < expected) {
        double remaining_ms = -1.0;
        if (wait_ms > 0.0) {
          remaining_ms = std::chrono::duration<double, std::milli>(
                             round_deadline - Clock::now())
                             .count();
          if (remaining_ms <= 0.0) break;
        }
        auto envelope = transport->manager_receive_for(remaining_ms);
        if (!envelope) break;  // timed out (or transport torn down)
        auto message = codec::decode_manager_message(envelope->bytes);
        if (!message) {
          ++report.stale_messages;  // undecodable frame
          continue;
        }
        const auto* resp = std::get_if<protocol::ImproveResponse>(&*message);
        if (resp == nullptr) {  // a BidResponse has no business here
          ++report.stale_messages;
          continue;
        }
        const auto k = static_cast<std::size_t>(resp->cluster.index());
        if (resp->epoch != epoch || k >= got.size()) {
          ++report.stale_messages;
          continue;
        }
        // Versions are monotone on the agent, so folding ANY response's
        // version into the ack is safe — even a stale round's.
        acked[k] = std::max(acked[k], resp->state_version);
        if (resp->round != round || got[k].has_value()) {
          ++report.stale_messages;  // late duplicate or wrong round
          continue;
        }
        got[k] = *resp;
        if (!dead[k]) ++received;
      }

      // --- idempotent merge in cluster order; skip-and-continue for the
      // missing. `applied == false` means the agent could not reach this
      // round's base state — its improvement does not exist; rebase next
      // round from the version it reported.
      for (int k = 0; k < K; ++k) {
        const auto idx = static_cast<std::size_t>(k);
        if (got[idx].has_value() && got[idx]->applied) {
          merge_improvement(loop.state, got[idx]->improvement, ClusterId{k});
          acked[idx] = version;  // it reached target and we merged it
          misses[idx] = 0;
          dead[idx] = 0;  // a response revives a presumed-dead agent
        } else if (!dead[idx]) {
          ++report.responses_missed;
          if (!got[idx].has_value() &&
              ++misses[idx] >= aopts.dist_miss_threshold) {
            dead[idx] = 1;
            ++report.agents_presumed_dead;
          }
        }
      }
      if (aopts.enable_reassign) {
        const ParallelEval reassign_eval(pool);
        alloc::reassign_pass_snapshot(loop.state, aopts, reassign_eval);
      }
      loop.state.debug_check_invariants();

      // One version bump per round; stamp exactly the clients whose rows
      // the merge or the reassign pass rewrote (bitwise row diff against
      // what was last shipped), so the next deltas carry precisely the
      // changes and nothing else.
      ++version;
      {
        std::vector<protocol::ClientPlacements> now =
            ledger_rows(loop.state.ledger());
        for (ClientId i : cloud.client_ids()) {
          const auto idx = static_cast<std::size_t>(i.index());
          if (!rows_equal(now[idx], shipped_rows[idx])) {
            client_version[idx] = version;
            shipped_rows[idx] = std::move(now[idx]);
          }
        }
      }

      const bool stop =
          loop.note_round(loop.state.profit(), aopts, report, round);
      // Satellite bugfix: DistributedAllocator::run previously ignored
      // time_budget_ms entirely. Check between rounds, exactly like the
      // sequential allocator checks between passes (allocator.cpp).
      if (loop.over_budget(aopts)) {
        report.truncated = true;
        break;
      }
      if (stop) break;
    }

    // Polite shutdown (the Shutdown guard above also closes channels for
    // the crash/exception paths). Refused sends just mean the agent is
    // already gone.
    for (int k = 0; k < K; ++k)
      (void)transport->send_to_agent(
          k, codec::encode(protocol::AgentMessage{protocol::Shutdown{epoch}}));

    report.final_profit = loop.best_profit;
    const TransportStats stats = transport->stats();
    report.messages = stats.messages;
    report.bytes = stats.bytes;
    report.wall_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    return DistributedResult{loop.state.materialize(loop.best), report};
  }
}

}  // namespace cloudalloc::dist
