// A cluster-level resource manager (the paper's "local agent"). Each agent
// owns one cluster and can (a) price a client insertion against a snapshot
// of the global state and (b) run the cluster-local improvement stages.
// Because every client is served by exactly one cluster, profit is
// separable by cluster, so agents can work on snapshots concurrently and
// the manager can merge their results without conflicts.
//
// ClusterAgent is the pure compute core (snapshot in, improvement out);
// AgentActor wraps it in a message-driven loop over a Transport channel —
// the form the paper's architecture actually calls for. Both deployment
// modes feed the core snapshots rebuilt by protocol::rebuild_allocation,
// so a fault-free message-passing run is bit-identical to the
// shared-memory run.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "alloc/assign_distribute.h"
#include "alloc/options.h"
#include "dist/protocol.h"
#include "model/allocation.h"

namespace cloudalloc::dist {

class Transport;

class ClusterAgent {
 public:
  ClusterAgent(model::ClusterId cluster, alloc::AllocatorOptions opts)
      : cluster_(cluster), opts_(opts) {}

  model::ClusterId cluster() const { return cluster_; }

  /// Prices inserting client i into this agent's cluster against the
  /// snapshot (Assign_Distribute run remotely).
  std::optional<alloc::InsertionPlan> evaluate_insertion(
      const model::Allocation& snapshot, model::ClientId i,
      const alloc::InsertionConstraints& constraints = {}) const;

  /// Runs Adjust_ResourceShares on the cluster's servers,
  /// Adjust_DispersionRates on its clients, and TurnON/TurnOFF, all on a
  /// private copy of the snapshot; returns the cluster's new placements.
  protocol::ClusterImprovement improve(const model::Allocation& snapshot) const;

 private:
  model::ClusterId cluster_;
  alloc::AllocatorOptions opts_;
};

/// The message-driven agent: a replica of the global placements (version-
/// stamped, delta-updated), a ClusterAgent core, and a receive loop that
/// services BidRequest / ImproveRequest / Shutdown until its channel
/// closes. Runs on a dedicated thread owned by the manager.
///
/// Loss tolerance is local and simple:
///   - a delta the replica cannot apply (missed base) is refused, and the
///     response reports the version the replica actually holds so the
///     manager can rebase;
///   - a duplicated improve round is answered by resending the cached
///     encoded response verbatim (idempotence), never by re-running the
///     stages on a regressed replica;
///   - a stale delta (target not ahead of the replica) never mutates it.
class AgentActor {
 public:
  AgentActor(const model::Cloud& cloud, model::ClusterId cluster,
             alloc::AllocatorOptions opts, std::uint64_t epoch,
             Transport* transport);

  /// Blocks servicing messages until the channel closes or a Shutdown
  /// for this epoch arrives. Safe to call exactly once.
  void run();

  std::int64_t state_version() const { return version_; }

 private:
  void handle_bid(const protocol::BidRequest& req);
  void handle_improve(const protocol::ImproveRequest& req);
  /// Applies a delta if it moves the replica forward; afterwards the
  /// replica is at the request's target iff the return value is true.
  bool apply_delta(const protocol::StateDelta& delta);
  model::Allocation rebuild() const;
  /// False when the manager is gone — the loop should wind down.
  bool respond(const protocol::ManagerMessage& message);

  const model::Cloud& cloud_;
  ClusterAgent agent_;
  model::ClusterId cluster_;
  std::uint64_t epoch_;
  Transport* transport_;

  std::vector<protocol::ClientPlacements> replica_;  ///< dense by client id
  std::int64_t version_ = 0;
  std::map<int, std::string> improve_cache_;  ///< round -> encoded response
  bool manager_gone_ = false;
};

}  // namespace cloudalloc::dist
