// A cluster-level resource manager (the paper's "local agent"). Each agent
// owns one cluster and can (a) price a client insertion against a frozen
// snapshot of the global state and (b) run the cluster-local improvement
// stages. Because every client is served by exactly one cluster, profit is
// separable by cluster, so agents can work on snapshots concurrently and
// the manager can merge their results without conflicts.
#pragma once

#include <utility>
#include <vector>

#include "alloc/assign_distribute.h"
#include "alloc/options.h"
#include "model/allocation.h"

namespace cloudalloc::dist {

/// Result of a cluster-local improvement: the new placements of the
/// agent's clients (empty placements = client left unassigned by a failed
/// reinsertion — the manager's global pass will retry it).
struct ClusterImprovement {
  model::ClusterId cluster = model::kNoCluster;
  std::vector<std::pair<model::ClientId, std::vector<model::Placement>>>
      placements;
  double profit_delta = 0.0;
};

class ClusterAgent {
 public:
  ClusterAgent(model::ClusterId cluster, alloc::AllocatorOptions opts)
      : cluster_(cluster), opts_(opts) {}

  model::ClusterId cluster() const { return cluster_; }

  /// Prices inserting client i into this agent's cluster against the
  /// snapshot (Assign_Distribute run remotely).
  std::optional<alloc::InsertionPlan> evaluate_insertion(
      const model::Allocation& snapshot, model::ClientId i,
      const alloc::InsertionConstraints& constraints = {}) const;

  /// Runs Adjust_ResourceShares on the cluster's servers,
  /// Adjust_DispersionRates on its clients, and TurnON/TurnOFF, all on a
  /// private copy of the snapshot; returns the cluster's new placements.
  ClusterImprovement improve(const model::Allocation& snapshot) const;

 private:
  model::ClusterId cluster_;
  alloc::AllocatorOptions opts_;
};

}  // namespace cloudalloc::dist
