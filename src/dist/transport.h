// Transport seam between the manager and its cluster agents: K duplex
// channels carrying encoded protocol bytes (dist/codec.h). Nothing but
// bytes crosses a channel — the seam is exactly what a socket layer would
// replace for multi-process / multi-node deployment.
//
// Implementations:
//   - ChannelTransport: in-process Mailbox channels, reliable FIFO.
//   - FaultyTransport: a decorator over any Transport that injects
//     seeded drops, delays (which double as reordering), duplicates, and
//     permanent agent crashes. All fault decisions are drawn from
//     per-edge RNG streams advanced only by that edge's (single) sending
//     thread, so a given FaultPlan seed produces the same fault schedule
//     on every run — the fault-sweep tests assert the merged profit is a
//     pure function of (cloud, options, plan).
//
// Threading contract: send_to_agent(k, ...) is called only by the manager
// thread; send_to_manager(k, ...) only by agent k's thread;
// agent_receive(k) only by agent k's thread. manager_receive_for is
// manager-thread-only. Counters are internally synchronized.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/sync.h"
#include "dist/mailbox.h"

namespace cloudalloc::dist {

/// A message delivered to the manager, tagged with the sending agent.
struct ManagerEnvelope {
  int from = -1;
  std::string bytes;
};

/// Aggregate transport accounting. `messages`/`bytes` count successful
/// send calls at the API the protocol code talks to (for FaultyTransport
/// that is *attempted* traffic: a dropped message was still sent by its
/// sender); the fault counters record what the decorator did to it.
struct TransportStats {
  std::size_t messages = 0;
  std::size_t bytes = 0;
  std::size_t dropped = 0;
  std::size_t duplicated = 0;
  std::size_t delayed = 0;
  int crashed_agents = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual int num_agents() const = 0;

  /// Manager -> agent k. False means agent k's channel is closed (the
  /// agent crashed or shut down) — the caller must treat k as dead.
  [[nodiscard]] virtual bool send_to_agent(int k, std::string bytes) = 0;

  /// Agent k -> manager. False means the manager's channel is closed
  /// (the run is over) — the agent should wind down.
  [[nodiscard]] virtual bool send_to_manager(int k, std::string bytes) = 0;

  /// Agent k's blocking receive; nullopt = channel closed and drained
  /// (the actor loop's exit condition).
  virtual std::optional<std::string> agent_receive(int k) = 0;

  /// Manager receive with a per-call timeout; `timeout_ms <= 0` blocks
  /// indefinitely. nullopt = timed out (or transport closed).
  virtual std::optional<ManagerEnvelope> manager_receive_for(
      double timeout_ms) = 0;

  /// Permanently closes agent k's inbound channel (crash injection and
  /// targeted shutdown); sends to k then fail, agent_receive(k) drains.
  virtual void close_agent(int k) = 0;

  /// Closes every channel; all actors unblock and exit.
  virtual void close_all() = 0;

  virtual TransportStats stats() const = 0;
};

/// Reliable in-process transport: one Mailbox per agent plus one shared
/// manager inbox. messages_sent() of the underlying mailboxes is the
/// single source of truth for TransportStats::messages.
class ChannelTransport : public Transport {
 public:
  explicit ChannelTransport(int num_agents);

  int num_agents() const override {
    return static_cast<int>(agent_inbox_.size());
  }
  [[nodiscard]] bool send_to_agent(int k, std::string bytes) override;
  [[nodiscard]] bool send_to_manager(int k, std::string bytes) override;
  std::optional<std::string> agent_receive(int k) override;
  std::optional<ManagerEnvelope> manager_receive_for(
      double timeout_ms) override;
  void close_agent(int k) override;
  void close_all() override;
  TransportStats stats() const override;

 private:
  std::vector<std::unique_ptr<Mailbox<std::string>>> agent_inbox_;
  Mailbox<ManagerEnvelope> manager_inbox_;
  // Byte counters only; message counts come from the mailboxes.
  mutable sync::Mutex bytes_mutex_;
  std::size_t bytes_ GUARDED_BY(bytes_mutex_) = 0;
};

/// Seeded fault-injection plan. All-zero probabilities = transparent
/// pass-through. Probabilities are per message; crash selection is per
/// agent, decided up front from `seed`.
struct FaultPlan {
  std::uint64_t seed = 0;
  /// P(message silently vanishes). The sender still sees success.
  double drop_prob = 0.0;
  /// P(message is delivered twice back to back).
  double duplicate_prob = 0.0;
  /// P(message is held back and released only after `delay_span` later
  /// sends traverse the same edge) — this is also the reordering knob,
  /// since the held message is overtaken by everything sent meanwhile. A
  /// held message with no follow-up traffic on its edge is flushed when
  /// the transport closes, i.e. it behaves like a drop for that round.
  double delay_prob = 0.0;
  int delay_span = 2;
  /// P(a given agent permanently crashes); a crashing agent's channel is
  /// closed after `crash_after_deliveries` messages have reached it.
  double crash_prob = 0.0;
  int crash_after_deliveries = 2;

  bool any() const {
    return drop_prob > 0.0 || duplicate_prob > 0.0 || delay_prob > 0.0 ||
           crash_prob > 0.0;
  }
};

/// Decorator injecting FaultPlan faults into an inner transport. See the
/// file comment for the determinism argument.
class FaultyTransport : public Transport {
 public:
  FaultyTransport(std::unique_ptr<Transport> inner, FaultPlan plan);

  int num_agents() const override { return inner_->num_agents(); }
  [[nodiscard]] bool send_to_agent(int k, std::string bytes) override;
  [[nodiscard]] bool send_to_manager(int k, std::string bytes) override;
  std::optional<std::string> agent_receive(int k) override;
  std::optional<ManagerEnvelope> manager_receive_for(
      double timeout_ms) override;
  void close_agent(int k) override;
  void close_all() override;
  TransportStats stats() const override;

 private:
  // One fault lane per directed edge; owned by that edge's sending
  // thread (manager thread for ->agent lanes, agent k for ->manager).
  struct Lane {
    Rng rng{0};
    std::vector<std::pair<int, std::string>> held;  ///< (sends left, bytes)
  };

  enum class Fate { kDeliver, kDrop, kDuplicate, kDelay };
  Fate decide(Lane& lane);
  /// Ships one message on an edge: decides its fate, releases any held
  /// messages that come due, performs the inner sends.
  bool ship(Lane& lane, std::string bytes,
            const std::function<bool(std::string)>& deliver);
  void note_delivery_to_agent(int k);

  std::unique_ptr<Transport> inner_;
  FaultPlan plan_;
  std::vector<Lane> to_agent_;    ///< manager -> agent k
  std::vector<Lane> to_manager_;  ///< agent k -> manager
  std::vector<char> crashes_;     ///< per-agent: crash scheduled?
  std::vector<int> delivered_;    ///< deliveries seen by agent k so far
  std::vector<char> crashed_;     ///< crash already executed
  mutable sync::Mutex stats_mutex_;
  /// Attempted traffic + fault counters.
  TransportStats local_ GUARDED_BY(stats_mutex_);
};

}  // namespace cloudalloc::dist
