#include "dist/transport.h"

#include <chrono>

#include "common/check.h"

namespace cloudalloc::dist {

// --- ChannelTransport ----------------------------------------------------

ChannelTransport::ChannelTransport(int num_agents) {
  CHECK(num_agents >= 0);
  agent_inbox_.reserve(static_cast<std::size_t>(num_agents));
  for (int k = 0; k < num_agents; ++k)
    agent_inbox_.push_back(std::make_unique<Mailbox<std::string>>());
}

bool ChannelTransport::send_to_agent(int k, std::string bytes) {
  CHECK(k >= 0 && k < num_agents());
  const std::size_t n = bytes.size();
  if (!agent_inbox_[static_cast<std::size_t>(k)]->send(std::move(bytes)))
    return false;
  sync::MutexLock lock(bytes_mutex_);
  bytes_ += n;
  return true;
}

bool ChannelTransport::send_to_manager(int k, std::string bytes) {
  CHECK(k >= 0 && k < num_agents());
  const std::size_t n = bytes.size();
  if (!manager_inbox_.send(ManagerEnvelope{k, std::move(bytes)}))
    return false;
  sync::MutexLock lock(bytes_mutex_);
  bytes_ += n;
  return true;
}

std::optional<std::string> ChannelTransport::agent_receive(int k) {
  CHECK(k >= 0 && k < num_agents());
  return agent_inbox_[static_cast<std::size_t>(k)]->receive();
}

std::optional<ManagerEnvelope> ChannelTransport::manager_receive_for(
    double timeout_ms) {
  if (timeout_ms <= 0.0) return manager_inbox_.receive();
  return manager_inbox_.receive_for(
      std::chrono::duration<double, std::milli>(timeout_ms));
}

void ChannelTransport::close_agent(int k) {
  CHECK(k >= 0 && k < num_agents());
  agent_inbox_[static_cast<std::size_t>(k)]->close();
}

void ChannelTransport::close_all() {
  for (auto& box : agent_inbox_) box->close();
  manager_inbox_.close();
}

TransportStats ChannelTransport::stats() const {
  TransportStats s;
  // messages_sent() of the channels is the single source of truth.
  for (const auto& box : agent_inbox_) s.messages += box->messages_sent();
  s.messages += manager_inbox_.messages_sent();
  sync::MutexLock lock(bytes_mutex_);
  s.bytes = bytes_;
  return s;
}

// --- FaultyTransport -----------------------------------------------------

namespace {
/// Distinct, stable stream ids per directed edge.
std::uint64_t lane_seed(std::uint64_t seed, int k, bool to_agent) {
  return seed * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(k) * 2 +
         (to_agent ? 0 : 1) + 1;
}
}  // namespace

FaultyTransport::FaultyTransport(std::unique_ptr<Transport> inner,
                                 FaultPlan plan)
    : inner_(std::move(inner)), plan_(plan) {
  const int K = inner_->num_agents();
  to_agent_.reserve(static_cast<std::size_t>(K));
  to_manager_.reserve(static_cast<std::size_t>(K));
  Rng crash_rng(plan_.seed * 0x2545F4914F6CDD1Dull + 0xDA3E39CB94B95BDBull);
  for (int k = 0; k < K; ++k) {
    to_agent_.push_back(Lane{Rng(lane_seed(plan_.seed, k, true)), {}});
    to_manager_.push_back(Lane{Rng(lane_seed(plan_.seed, k, false)), {}});
    crashes_.push_back(plan_.crash_prob > 0.0 &&
                       crash_rng.uniform() < plan_.crash_prob);
  }
  delivered_.assign(static_cast<std::size_t>(K), 0);
  crashed_.assign(static_cast<std::size_t>(K), 0);
}

FaultyTransport::Fate FaultyTransport::decide(Lane& lane) {
  // One draw per knob keeps the stream layout stable as knobs toggle.
  const double d_drop = lane.rng.uniform();
  const double d_dup = lane.rng.uniform();
  const double d_delay = lane.rng.uniform();
  if (d_drop < plan_.drop_prob) return Fate::kDrop;
  if (d_dup < plan_.duplicate_prob) return Fate::kDuplicate;
  if (d_delay < plan_.delay_prob) return Fate::kDelay;
  return Fate::kDeliver;
}

bool FaultyTransport::ship(Lane& lane, std::string bytes,
                          const std::function<bool(std::string)>& deliver) {
  const Fate fate = decide(lane);
  bool ok = true;
  switch (fate) {
    case Fate::kDrop: {
      sync::MutexLock lock(stats_mutex_);
      ++local_.dropped;
      break;  // sender still sees success
    }
    case Fate::kDuplicate: {
      {
        sync::MutexLock lock(stats_mutex_);
        ++local_.duplicated;
      }
      ok = deliver(bytes);
      if (ok) ok = deliver(std::move(bytes));
      break;
    }
    case Fate::kDelay: {
      {
        sync::MutexLock lock(stats_mutex_);
        ++local_.delayed;
      }
      lane.held.emplace_back(plan_.delay_span, std::move(bytes));
      break;  // released by later traffic on this lane
    }
    case Fate::kDeliver:
      ok = deliver(std::move(bytes));
      break;
  }
  // Age held messages and release the ones that come due — after the
  // current message, which is what makes a delay a reordering.
  for (std::size_t i = 0; i < lane.held.size();) {
    if (--lane.held[i].first <= 0) {
      // Ignore delivery failure of a stale release: the peer may be gone.
      (void)deliver(std::move(lane.held[i].second));
      lane.held.erase(lane.held.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  return ok;
}

void FaultyTransport::note_delivery_to_agent(int k) {
  const auto idx = static_cast<std::size_t>(k);
  if (!crashes_[idx] || crashed_[idx]) return;
  if (++delivered_[idx] >= plan_.crash_after_deliveries) {
    crashed_[idx] = 1;
    inner_->close_agent(k);
    sync::MutexLock lock(stats_mutex_);
    ++local_.crashed_agents;
  }
}

bool FaultyTransport::send_to_agent(int k, std::string bytes) {
  CHECK(k >= 0 && k < num_agents());
  const std::size_t n = bytes.size();
  const bool ok = ship(
      to_agent_[static_cast<std::size_t>(k)], std::move(bytes),
      [this, k](std::string b) {
        if (!inner_->send_to_agent(k, std::move(b))) return false;
        note_delivery_to_agent(k);
        return true;
      });
  sync::MutexLock lock(stats_mutex_);
  ++local_.messages;
  local_.bytes += n;
  return ok;
}

bool FaultyTransport::send_to_manager(int k, std::string bytes) {
  CHECK(k >= 0 && k < num_agents());
  const std::size_t n = bytes.size();
  const bool ok =
      ship(to_manager_[static_cast<std::size_t>(k)], std::move(bytes),
           [this, k](std::string b) {
             return inner_->send_to_manager(k, std::move(b));
           });
  sync::MutexLock lock(stats_mutex_);
  ++local_.messages;
  local_.bytes += n;
  return ok;
}

std::optional<std::string> FaultyTransport::agent_receive(int k) {
  return inner_->agent_receive(k);
}

std::optional<ManagerEnvelope> FaultyTransport::manager_receive_for(
    double timeout_ms) {
  return inner_->manager_receive_for(timeout_ms);
}

void FaultyTransport::close_agent(int k) { inner_->close_agent(k); }

void FaultyTransport::close_all() { inner_->close_all(); }

TransportStats FaultyTransport::stats() const {
  sync::MutexLock lock(stats_mutex_);
  return local_;
}

}  // namespace cloudalloc::dist
