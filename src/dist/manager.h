// The central manager: the distributed counterpart of ResourceAllocator.
//
// One agent thread per cluster consumes requests from its mailbox and
// posts responses to the manager's shared mailbox (Figure 1's topology).
// The greedy initial solution parallelizes the K Assign_Distribute calls
// per client; the improvement loop parallelizes the cluster-local stages
// and keeps only the cross-cluster reassignment sequential — the source of
// the ~K-fold decision-time reduction claimed in Section VI.
//
// Determinism: given equal options/seed the distributed run commits the
// same decisions as the sequential allocator (responses are collected and
// ordered by cluster id before any tie-break), which tests assert.
#pragma once

#include <cstddef>

#include "alloc/allocator.h"
#include "alloc/options.h"
#include "model/allocation.h"

namespace cloudalloc::dist {

struct DistributedOptions {
  alloc::AllocatorOptions alloc;
};

struct DistributedReport {
  double initial_profit = 0.0;
  double final_profit = 0.0;
  int rounds_run = 0;
  std::size_t messages = 0;  ///< total mailbox traffic, both directions
  double wall_seconds = 0.0;
};

struct DistributedResult {
  model::Allocation allocation;
  DistributedReport report;
};

class DistributedAllocator {
 public:
  explicit DistributedAllocator(DistributedOptions options = {});

  DistributedResult run(const model::Cloud& cloud) const;

 private:
  DistributedOptions options_;
};

}  // namespace cloudalloc::dist
