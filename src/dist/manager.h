// The central manager: the distributed counterpart of ResourceAllocator.
//
// Two deployment modes share one improvement-loop skeleton:
//
//   kMessagePassing (default) — the paper's architecture made real. One
//   dedicated thread per cluster runs an AgentActor servicing typed,
//   serialized messages (dist/protocol.h) over a Transport; the manager
//   broadcasts versioned state deltas, collects ImproveResponses under a
//   per-round timeout (Mailbox::receive_for underneath), and merges them
//   idempotently keyed on (epoch, round, cluster). No Allocation pointer
//   crosses a channel — snapshots travel as encoded deltas, and each
//   agent rebuilds its private copy from its replica. Faults (drops,
//   delays, duplicates, reordering, agent crashes — see FaultPlan) cost
//   coverage for a round, never correctness: a missing agent is skipped
//   and retried via a rebased delta, stale/duplicated responses are
//   discarded by sequence number, and the best-round checkpoint
//   guarantees the returned allocation never falls below the best
//   completed round.
//
//   kSharedMemory — the original pool-managed mode: agents run as tasks
//   over a frozen snapshot rebuilt from the same placement rows the
//   message mode would serialize. Kept as the zero-copy fast path and as
//   the parity oracle: with a fault-free transport the two modes are
//   bit-identical (pinned by tests at 1/4/8 threads).
//
// Determinism: every fan-out writes results into per-agent slots and
// every merge walks those slots in cluster order, so given equal
// options/seed (and fault plan) the run is a pure function of
// (cloud, options) at any thread count.
//
// The epoch deadline (options.alloc.time_budget_ms) is honored between
// rounds exactly as ResourceAllocator honors it between passes, and the
// per-round response timeout is additionally capped by the remaining
// budget, so a crashed agent cannot make the manager blow the epoch.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "alloc/allocator.h"
#include "alloc/options.h"
#include "dist/transport.h"
#include "model/allocation.h"

namespace cloudalloc::dist {

enum class DistMode {
  kMessagePassing,  ///< serialized protocol over a Transport (default)
  kSharedMemory,    ///< in-process pool tasks, zero-copy snapshots
};

struct DistributedOptions {
  DistributedOptions() = default;
  /// Converting constructor: the overwhelmingly common call shape is
  /// "these allocator knobs, default deployment" — keep
  /// `DistributedAllocator(opts)` working without partial-aggregate
  /// warnings now that there are more fields.
  DistributedOptions(alloc::AllocatorOptions alloc_options)
      : alloc(std::move(alloc_options)) {}

  alloc::AllocatorOptions alloc;
  DistMode mode = DistMode::kMessagePassing;
  /// Fault injection for kMessagePassing (ignored by kSharedMemory).
  /// Any non-zero probability wraps the channel transport in a seeded
  /// FaultyTransport.
  FaultPlan faults;
};

struct DistributedReport {
  double initial_profit = 0.0;
  /// Best profit seen across the initial solution and every improvement
  /// round; the returned allocation realizes exactly this value even when
  /// a later round dipped below it.
  double final_profit = 0.0;
  int rounds_run = 0;
  /// Profit after each improvement round, in round order. A trailing value
  /// below an earlier one is a "dipped" round; the regression suite uses
  /// this to pin the best-seen tracking.
  std::vector<double> round_profits;
  /// True when the epoch deadline (alloc.time_budget_ms) stopped the
  /// improvement loop before it converged or exhausted its rounds; the
  /// returned allocation is still the best completed checkpoint.
  bool truncated = false;
  /// Real messages sent over the transport (TransportStats::messages —
  /// the mailboxes' messages_sent() is the single source of truth; there
  /// is no modeled estimate). Zero in kSharedMemory mode, where nothing
  /// crosses a channel.
  std::size_t messages = 0;
  /// Serialized payload bytes over the transport (0 in kSharedMemory).
  std::size_t bytes = 0;
  /// Round-responses that never arrived (timeouts: dropped requests or
  /// responses, crashed or presumed-dead agents).
  int responses_missed = 0;
  /// Messages discarded by the idempotent merge (duplicate or
  /// wrong-round/epoch responses) plus undecodable frames.
  std::size_t stale_messages = 0;
  /// Agents the manager declared dead (failed send or
  /// dist_miss_threshold consecutive silent rounds).
  int agents_presumed_dead = 0;
  double wall_seconds = 0.0;
};

struct DistributedResult {
  model::Allocation allocation;
  DistributedReport report;
};

class DistributedAllocator {
 public:
  explicit DistributedAllocator(DistributedOptions options = {});

  DistributedResult run(const model::Cloud& cloud) const;

 private:
  DistributedResult run_shared_memory(const model::Cloud& cloud) const;
  DistributedResult run_message_passing(const model::Cloud& cloud) const;

  DistributedOptions options_;
};

}  // namespace cloudalloc::dist
