// The central manager: the distributed counterpart of ResourceAllocator.
//
// Cluster agents are pool-managed tasks, not dedicated threads: the
// manager owns one ThreadPool of options.alloc.num_threads workers
// (0 = hardware concurrency) and fans each phase out as tasks, so
// K clusters >> cores no longer oversubscribes the machine. The
// multi-start greedy initial solution runs the independent starts as pool
// tasks (the same engine as the sequential allocator, so the two commit
// identical initial solutions); the improvement loop runs the K
// cluster-local stages as tasks against a frozen snapshot and keeps only
// the cross-cluster reassignment apply-phase sequential — the source of
// the ~K-fold decision-time reduction claimed in Section VI.
//
// Determinism: every fan-out writes results into per-task slots and every
// reduction/apply walks those slots in a fixed order, so given equal
// options/seed the run is a pure function of (cloud, options) at any
// thread count — tests assert bit-identical allocations across counts.
#pragma once

#include <cstddef>
#include <vector>

#include "alloc/allocator.h"
#include "alloc/options.h"
#include "model/allocation.h"

namespace cloudalloc::dist {

struct DistributedOptions {
  alloc::AllocatorOptions alloc;
};

struct DistributedReport {
  double initial_profit = 0.0;
  /// Best profit seen across the initial solution and every improvement
  /// round; the returned allocation realizes exactly this value even when
  /// a later round dipped below it.
  double final_profit = 0.0;
  int rounds_run = 0;
  /// Profit after each improvement round, in round order. A trailing value
  /// below an earlier one is a "dipped" round; the regression suite uses
  /// this to pin the best-seen tracking.
  std::vector<double> round_profits;
  /// Request/response pairs the equivalent message-passing deployment
  /// would exchange (the "limited communication" the paper trades for the
  /// K-fold speedup): 2K per greedy insertion, 2K per improvement round.
  std::size_t messages = 0;
  double wall_seconds = 0.0;
};

struct DistributedResult {
  model::Allocation allocation;
  DistributedReport report;
};

class DistributedAllocator {
 public:
  explicit DistributedAllocator(DistributedOptions options = {});

  DistributedResult run(const model::Cloud& cloud) const;

 private:
  DistributedOptions options_;
};

}  // namespace cloudalloc::dist
