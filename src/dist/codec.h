// Wire codec for the dist protocol: protocol structs <-> JSON <-> bytes.
//
// Built on common/json (whose number emission is %.17g, i.e. doubles
// round-trip bit-exactly) and model/serialize's placement helpers, so an
// encode/decode round trip reproduces every psi/phi/score bitwise — the
// foundation of the "message-passing mode is bit-identical to the
// shared-memory mode" guarantee.
//
// Decoding is defensive: a malformed or truncated buffer yields nullopt
// (with a diagnostic in *error), never a CHECK — a faulty transport must
// not be able to crash the manager or an agent.
#pragma once

#include <optional>
#include <string>

#include "dist/protocol.h"

namespace cloudalloc::dist::codec {

/// Message -> compact JSON bytes (self-describing via a "type" field).
std::string encode(const protocol::AgentMessage& message);
std::string encode(const protocol::ManagerMessage& message);

/// Bytes -> message; nullopt on malformed input.
std::optional<protocol::AgentMessage> decode_agent_message(
    const std::string& bytes, std::string* error = nullptr);
std::optional<protocol::ManagerMessage> decode_manager_message(
    const std::string& bytes, std::string* error = nullptr);

}  // namespace cloudalloc::dist::codec
